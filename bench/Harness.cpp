//===- bench/Harness.cpp - shared experiment harness ---------------------------===//

#include "bench/Harness.h"

#include "interp/Checksum.h"
#include "obs/Flight.h"
#include "obs/Metrics.h"
#include "support/Format.h"
#include "vir/Compile.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unistd.h>

using namespace lv;
using namespace lv::bench;

int TestCorpus::firstPlausible(int K) const {
  int N = std::min<int>(K, static_cast<int>(Samples.size()));
  for (int I = 0; I < N; ++I)
    if (Samples[static_cast<size_t>(I)].Plausible)
      return I;
  return -1;
}

bool TestCorpus::allFailCompile(int K) const {
  int N = std::min<int>(K, static_cast<int>(Samples.size()));
  for (int I = 0; I < N; ++I)
    if (Samples[static_cast<size_t>(I)].Compiles)
      return false;
  return true;
}

BenchOptions lv::bench::parseBenchArgs(int argc, char **argv) {
  BenchOptions Opt;
  // Matches `--flag value` and `--flag=value`; returns nullptr otherwise.
  auto match = [&](int &I, const char *Flag) -> const char * {
    size_t Len = std::strlen(Flag);
    if (std::strcmp(argv[I], Flag) == 0 && I + 1 < argc)
      return argv[++I];
    if (std::strncmp(argv[I], Flag, Len) == 0 && argv[I][Len] == '=')
      return argv[I] + Len + 1;
    return nullptr;
  };
  for (int I = 1; I < argc; ++I) {
    if (const char *Value = match(I, "--jobs")) {
      Opt.Jobs = std::atoi(Value);
      Opt.JobsSet = true;
      if (Opt.Jobs < 1) {
        // A recognized flag with a bad value must fail loudly, not quietly
        // neuter a parallel-speedup gate.
        std::fprintf(stderr,
                     "invalid --jobs value '%s' (want integer >= 1)\n",
                     Value);
        std::exit(2);
      }
    } else if (const char *Value = match(I, "--trace")) {
      Opt.TracePath = Value;
    } else if (const char *Value = match(I, "--metrics")) {
      Opt.MetricsPath = Value;
    } else if (const char *Value = match(I, "--store")) {
      Opt.StorePath = Value;
      if (Opt.StorePath.empty()) {
        std::fprintf(stderr, "invalid --store value (want a directory)\n");
        std::exit(2);
      }
    }
    // Other args are ignored (gtest/benchmark flags etc.)
  }
  if (!Opt.TracePath.empty()) {
    obs::setTracingEnabled(true);
    obs::setFlightEnabled(true);
  }
  return Opt;
}

bool lv::bench::writeObsArtifacts(const BenchOptions &Opt) {
  bool Ok = true;
  if (!Opt.TracePath.empty()) {
    if (obs::writeTraceChromeJson(Opt.TracePath))
      std::printf("trace written to %s\n", Opt.TracePath.c_str());
    else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   Opt.TracePath.c_str());
      Ok = false;
    }
  }
  if (!Opt.MetricsPath.empty()) {
    if (obs::writeMetricsJson(Opt.MetricsPath))
      std::printf("metrics written to %s\n", Opt.MetricsPath.c_str());
    else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   Opt.MetricsPath.c_str());
      Ok = false;
    }
  }
  return Ok;
}

namespace {

/// Process-wide tally of every service's cache/store counters (fed by
/// noteServiceStats, drained into the writeBenchJson envelope).
struct ServiceStatTally {
  std::mutex M;
  svc::CacheStats Cache;
  store::StoreStats Store;
  svc::VectorizerService::ResilienceStats Resilience;
  support::BreakerStats Breaker;
};

ServiceStatTally &statTally() {
  static ServiceStatTally T;
  return T;
}

} // namespace

void lv::bench::noteServiceStats(const svc::VectorizerService &Service) {
  svc::CacheStats C = Service.cacheStats();
  ServiceStatTally &T = statTally();
  std::lock_guard<std::mutex> L(T.M);
  T.Cache.Hits += C.Hits;
  T.Cache.Misses += C.Misses;
  T.Cache.Bypassed += C.Bypassed;
  T.Cache.Entries += C.Entries;
  if (const store::ResultStore *S = Service.resultStore())
    T.Store.add(S->stats());
  svc::VectorizerService::ResilienceStats R = Service.resilienceStats();
  T.Resilience.Retries += R.Retries;
  T.Resilience.Timeouts += R.Timeouts;
  T.Resilience.Degraded += R.Degraded;
  T.Resilience.ClientTransient += R.ClientTransient;
  T.Resilience.ClientPermanent += R.ClientPermanent;
  T.Resilience.Internal += R.Internal;
  T.Resilience.Shed += R.Shed;
  T.Resilience.JournalReplayed += R.JournalReplayed;
  support::BreakerStats B = Service.breakerStats();
  T.Breaker.Admitted += B.Admitted;
  T.Breaker.Rejected += B.Rejected;
  T.Breaker.Trips += B.Trips;
  T.Breaker.Probes += B.Probes;
  T.Breaker.Reclosed += B.Reclosed;
}

bool lv::bench::writeBenchJson(const std::string &BenchName,
                               const BenchOptions &Opt,
                               const std::string &PayloadMembers,
                               const std::string &Path) {
  char Host[256] = "unknown";
  gethostname(Host, sizeof(Host) - 1);
  std::string J = "{\n";
  appendf(J, "  \"schema_version\": 2,\n");
  appendf(J, "  \"bench\": \"%s\",\n", BenchName.c_str());
  appendf(J, "  \"host\": {\"hostname\": \"%s\", \"hardware_threads\": %u},\n",
          Host, std::thread::hardware_concurrency());
  appendf(J, "  \"jobs\": %d,\n", Opt.Jobs);
  {
    ServiceStatTally &T = statTally();
    std::lock_guard<std::mutex> L(T.M);
    appendf(J,
            "  \"verdict_cache\": {\"hits\": %llu, \"misses\": %llu, "
            "\"bypassed\": %llu},\n",
            static_cast<unsigned long long>(T.Cache.Hits),
            static_cast<unsigned long long>(T.Cache.Misses),
            static_cast<unsigned long long>(T.Cache.Bypassed));
    appendf(J,
            "  \"store\": {\"hits\": %llu, \"misses\": %llu, "
            "\"writes\": %llu, \"corrupt_skipped\": %llu, "
            "\"version_skipped\": %llu, \"append_failed\": %llu, "
            "\"read_failed\": %llu},\n",
            static_cast<unsigned long long>(T.Store.Hits),
            static_cast<unsigned long long>(T.Store.Misses),
            static_cast<unsigned long long>(T.Store.Writes),
            static_cast<unsigned long long>(T.Store.CorruptSkipped),
            static_cast<unsigned long long>(T.Store.VersionSkipped),
            static_cast<unsigned long long>(T.Store.AppendFailed),
            static_cast<unsigned long long>(T.Store.ReadFailed));
    appendf(J,
            "  \"resilience\": {\"retries\": %llu, \"timeouts\": %llu, "
            "\"degraded\": %llu, \"client_transient\": %llu, "
            "\"client_permanent\": %llu, \"internal\": %llu, "
            "\"shed\": %llu, \"journal_replayed\": %llu},\n",
            static_cast<unsigned long long>(T.Resilience.Retries),
            static_cast<unsigned long long>(T.Resilience.Timeouts),
            static_cast<unsigned long long>(T.Resilience.Degraded),
            static_cast<unsigned long long>(T.Resilience.ClientTransient),
            static_cast<unsigned long long>(T.Resilience.ClientPermanent),
            static_cast<unsigned long long>(T.Resilience.Internal),
            static_cast<unsigned long long>(T.Resilience.Shed),
            static_cast<unsigned long long>(T.Resilience.JournalReplayed));
    appendf(J,
            "  \"breaker\": {\"admitted\": %llu, \"rejected\": %llu, "
            "\"trips\": %llu, \"probes\": %llu, \"reclosed\": %llu},\n",
            static_cast<unsigned long long>(T.Breaker.Admitted),
            static_cast<unsigned long long>(T.Breaker.Rejected),
            static_cast<unsigned long long>(T.Breaker.Trips),
            static_cast<unsigned long long>(T.Breaker.Probes),
            static_cast<unsigned long long>(T.Breaker.Reclosed));
  }
  J += PayloadMembers;
  J += "\n}\n";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "failed to open %s\n", Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(J.data(), 1, J.size(), F);
  std::fclose(F);
  if (Written != J.size())
    return false;
  std::printf("json mirror written to %s\n", Path.c_str());
  return true;
}

uint64_t lv::bench::sumSpanArg(const std::vector<obs::TraceEvent> &Events,
                               const char *Name, const char *Key) {
  uint64_t Sum = 0;
  for (const obs::TraceEvent &Ev : Events) {
    if (std::strcmp(Ev.Name, Name) != 0)
      continue;
    for (const obs::TraceArg &A : Ev.Args)
      if (std::strcmp(A.Key, Key) == 0)
        Sum += A.Val;
  }
  return Sum;
}

size_t lv::bench::countSpans(const std::vector<obs::TraceEvent> &Events,
                             const char *Name) {
  size_t N = 0;
  for (const obs::TraceEvent &Ev : Events)
    N += std::strcmp(Ev.Name, Name) == 0 ? 1 : 0;
  return N;
}

std::vector<TestCorpus>
lv::bench::buildCorpusFor(const std::vector<const tsvc::TsvcTest *> &Tests,
                          int K, uint64_t Seed, int Jobs,
                          const std::string &StorePath) {
  svc::ServiceConfig SC;
  SC.Workers = Jobs;
  SC.StorePath = StorePath;
  svc::VectorizerService Service(SC);
  std::vector<svc::Request> Batch;
  Batch.reserve(Tests.size());
  for (const tsvc::TsvcTest *T : Tests) {
    svc::Request R;
    R.Mode = svc::RunMode::Sample;
    R.Name = T->Name;
    R.ScalarSource = T->Source;
    R.Seed = Seed;
    R.SampleCount = K;
    Batch.push_back(std::move(R));
  }
  std::vector<svc::Ticket> Tickets = Service.submitBatch(std::move(Batch));
  std::vector<TestCorpus> Out;
  Out.reserve(Tests.size());
  for (size_t I = 0; I < Tickets.size(); ++I) {
    // Poll via the timed wait: a wedged task surfaces as a liveness note
    // instead of a silent hang (nothing here ever abandons the task —
    // waitFor's null return just means "still running, ask again").
    const svc::Outcome *OP;
    while (!(OP = Service.waitFor(Tickets[I], 60'000'000'000ULL)))
      std::fprintf(stderr, "buildCorpus: still waiting on '%s'\n",
                   Tests[I]->Name.c_str());
    const svc::Outcome &O = *OP;
    if (O.Failed) {
      std::fprintf(stderr, "buildCorpus: task '%s' failed (%s): %s\n",
                   O.Name.c_str(), svc::failureKindName(O.Failure),
                   O.Error.c_str());
      std::exit(1);
    }
    TestCorpus TC;
    TC.Test = Tests[I];
    TC.Samples.reserve(O.Samples.size());
    for (const svc::SampleVerdict &V : O.Samples) {
      CandidateRecord R;
      R.Source = V.Source;
      R.Compiles = V.Compiles;
      R.Plausible = V.Plausible;
      TC.Samples.push_back(std::move(R));
    }
    Out.push_back(std::move(TC));
  }
  noteServiceStats(Service);
  return Out;
}

std::vector<TestCorpus> lv::bench::buildCorpus(int K, uint64_t Seed, int Jobs,
                                               const std::string &StorePath) {
  std::vector<const tsvc::TsvcTest *> Tests;
  Tests.reserve(tsvc::suite().size());
  for (const tsvc::TsvcTest &T : tsvc::suite())
    Tests.push_back(&T);
  return buildCorpusFor(Tests, K, Seed, Jobs, StorePath);
}

ChecksumTally lv::bench::tallyAt(const std::vector<TestCorpus> &Corpus,
                                 int K) {
  ChecksumTally T;
  for (const TestCorpus &TC : Corpus) {
    if (TC.firstPlausible(K) >= 0)
      ++T.Plausible;
    else if (TC.allFailCompile(K))
      ++T.CannotCompile;
    else
      ++T.NotEquivalent;
  }
  return T;
}

std::vector<FunnelRecord>
lv::bench::runFunnel(const std::vector<TestCorpus> &Corpus,
                     const core::EquivConfig &Cfg, int Jobs,
                     const std::string &StorePath,
                     ServiceRunStats *StatsOut) {
  svc::ServiceConfig SC;
  SC.Workers = Jobs;
  // A/B funnel runs re-verify the same pairs under different backends;
  // cached replays would report the first backend's work as the second's.
  // With a store attached the cache stays on — replaying persisted
  // verdicts is exactly what a warm-start measurement measures.
  SC.EnableVerdictCache = !StorePath.empty();
  SC.StorePath = StorePath;
  svc::VectorizerService Service(SC);

  std::vector<FunnelRecord> Out(Corpus.size());
  std::vector<svc::Ticket> Tickets;
  std::vector<size_t> TicketSlot;
  for (size_t I = 0; I < Corpus.size(); ++I) {
    const TestCorpus &TC = Corpus[I];
    FunnelRecord &R = Out[I];
    R.Name = TC.Test->Name;
    int Idx = TC.firstPlausible(static_cast<int>(TC.Samples.size()));
    R.HadPlausible = Idx >= 0;
    if (!R.HadPlausible)
      continue;
    svc::Request Req;
    Req.Mode = svc::RunMode::Verify;
    Req.Name = TC.Test->Name;
    Req.ScalarSource = TC.Test->Source;
    Req.CandidateSource = TC.Samples[static_cast<size_t>(Idx)].Source;
    Req.Equiv = Cfg;
    Tickets.push_back(Service.submit(std::move(Req)));
    TicketSlot.push_back(I);
  }
  for (size_t I = 0; I < Tickets.size(); ++I) {
    const svc::Outcome *OP;
    while (!(OP = Service.waitFor(Tickets[I], 60'000'000'000ULL)))
      std::fprintf(stderr, "runFunnel: still waiting on '%s'\n",
                   Out[TicketSlot[I]].Name.c_str());
    const svc::Outcome &O = *OP;
    if (O.Failed) {
      std::fprintf(stderr, "runFunnel: task '%s' failed (%s): %s\n",
                   O.Name.c_str(), svc::failureKindName(O.Failure),
                   O.Error.c_str());
      std::exit(1);
    }
    Out[TicketSlot[I]].Result = O.Equiv;
    Out[TicketSlot[I]].Alive2Work = O.Alive2Work;
    Out[TicketSlot[I]].CUnrollWork = O.CUnrollWork;
    Out[TicketSlot[I]].SplitWork = O.SplitWork;
    Out[TicketSlot[I]].ChecksumWork = O.ChecksumWork;
  }
  if (StatsOut) {
    StatsOut->Cache = Service.cacheStats();
    if (const store::ResultStore *S = Service.resultStore())
      StatsOut->Store = S->stats();
    else
      StatsOut->Store = store::StoreStats();
  }
  noteServiceStats(Service);
  return Out;
}

void lv::bench::printHeader(const std::string &Title) {
  std::printf("\n==== %s ====\n", Title.c_str());
}

void lv::bench::printRow3(const char *Label, const std::string &Paper,
                          const std::string &Measured) {
  std::printf("  %-34s %14s %14s\n", Label, Paper.c_str(), Measured.c_str());
}
