//===- bench/Harness.cpp - shared experiment harness ---------------------------===//

#include "bench/Harness.h"

#include "interp/Checksum.h"
#include "support/Format.h"
#include "vir/Compile.h"

#include <cstdio>

using namespace lv;
using namespace lv::bench;

int TestCorpus::firstPlausible(int K) const {
  int N = std::min<int>(K, static_cast<int>(Samples.size()));
  for (int I = 0; I < N; ++I)
    if (Samples[static_cast<size_t>(I)].Plausible)
      return I;
  return -1;
}

bool TestCorpus::allFailCompile(int K) const {
  int N = std::min<int>(K, static_cast<int>(Samples.size()));
  for (int I = 0; I < N; ++I)
    if (Samples[static_cast<size_t>(I)].Compiles)
      return false;
  return true;
}

std::vector<TestCorpus> lv::bench::buildCorpus(int K, uint64_t Seed) {
  std::vector<TestCorpus> Out;
  llm::SimulatedLLM Model(Seed);
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    TestCorpus TC;
    TC.Test = &T;
    vir::CompileResult SC = vir::compileFunction(T.Source);
    llm::Prompt P;
    P.ScalarSource = T.Source;
    for (int I = 0; I < K; ++I) {
      llm::Completion C = Model.complete(P, static_cast<uint64_t>(I));
      CandidateRecord R;
      R.Source = C.Source;
      vir::CompileResult VC = vir::compileFunction(C.Source);
      R.Compiles = VC.ok();
      if (R.Compiles && SC.ok() &&
          C.Source.find("_mm256_") != std::string::npos) {
        interp::ChecksumOutcome O = interp::runChecksumTest(*SC.Fn, *VC.Fn);
        R.Plausible = O.Verdict == interp::TestVerdict::Plausible;
      }
      TC.Samples.push_back(std::move(R));
    }
    Out.push_back(std::move(TC));
  }
  return Out;
}

ChecksumTally lv::bench::tallyAt(const std::vector<TestCorpus> &Corpus,
                                 int K) {
  ChecksumTally T;
  for (const TestCorpus &TC : Corpus) {
    if (TC.firstPlausible(K) >= 0)
      ++T.Plausible;
    else if (TC.allFailCompile(K))
      ++T.CannotCompile;
    else
      ++T.NotEquivalent;
  }
  return T;
}

std::vector<FunnelRecord>
lv::bench::runFunnel(const std::vector<TestCorpus> &Corpus,
                     const core::EquivConfig &Cfg) {
  std::vector<FunnelRecord> Out;
  for (const TestCorpus &TC : Corpus) {
    FunnelRecord R;
    R.Name = TC.Test->Name;
    int Idx = TC.firstPlausible(static_cast<int>(TC.Samples.size()));
    R.HadPlausible = Idx >= 0;
    if (R.HadPlausible)
      R.Result = core::checkEquivalence(
          TC.Test->Source, TC.Samples[static_cast<size_t>(Idx)].Source, Cfg);
    Out.push_back(std::move(R));
  }
  return Out;
}

void lv::bench::printHeader(const std::string &Title) {
  std::printf("\n==== %s ====\n", Title.c_str());
}

void lv::bench::printRow3(const char *Label, const std::string &Paper,
                          const std::string &Measured) {
  std::printf("  %-34s %14s %14s\n", Label, Paper.c_str(), Measured.c_str());
}
