//===- bench/Harness.h - shared experiment harness --------------*- C++ -*-===//
///
/// \file
/// Shared machinery for the paper-reproduction benchmarks: completion
/// corpus generation (the simulated GPT-4 sampled k times per TSVC test),
/// checksum classification, the Algorithm-1 funnel, and table printing.
/// Every experiment binary reports "paper" vs "measured" columns so
/// EXPERIMENTS.md can be regenerated from the bench output.
///
//===----------------------------------------------------------------------===//

#ifndef LV_BENCH_HARNESS_H
#define LV_BENCH_HARNESS_H

#include "core/Equivalence.h"
#include "llm/Client.h"
#include "obs/Trace.h"
#include "store/Store.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lv {
namespace bench {

/// Global experiment seed (fixed for reproducibility).
inline constexpr uint64_t ExperimentSeed = 0xC60;

/// Shared bench flags. Every experiment binary accepts `--jobs N`
/// (service worker count); results are verdict-identical at any N — see
/// the svc determinism contract — so N only moves wall time. Worker
/// count is recorded next to wall times in the BENCH_*.json mirrors.
/// `--trace <file>` enables span tracing plus the flight recorder and
/// writes Chrome trace-event JSON at exit; `--metrics <file>` scrapes the
/// obs metrics registry to a file (both via writeObsArtifacts).
/// `--store DIR` points the service layer at a persistent result store
/// (store/Store.h): verdicts and compiled bytecode persist across
/// processes, so a second run of the same bench starts warm. Verdicts are
/// replay-identical by the store's exactness contract, so --store only
/// moves wall time, never a verdict.
struct BenchOptions {
  int Jobs = 1;
  bool JobsSet = false; ///< --jobs appeared explicitly on the command line.
  std::string TracePath;   ///< --trace: Chrome trace-event JSON output.
  std::string MetricsPath; ///< --metrics: metrics registry JSON output.
  std::string StorePath;   ///< --store: persistent result-store directory.
};

/// Parses shared flags; unknown arguments are ignored. A `--trace` flag
/// switches tracing and the flight recorder on for the whole run.
BenchOptions parseBenchArgs(int argc, char **argv);

/// Writes the trace and/or metrics artifacts requested by \p Opt (no-op
/// for unset paths). Returns false when any requested write failed.
bool writeObsArtifacts(const BenchOptions &Opt);

/// The one shared BENCH_*.json writer: every bench emits
///   {"schema_version": 2, "bench": <name>,
///    "host": {"hostname", "hardware_threads"}, "jobs": N,
///    "verdict_cache": {...}, "store": {...}, <payload>}
/// where \p PayloadMembers is the bench-specific body — pre-rendered JSON
/// object members without the surrounding braces (the caller owns its
/// schema; this writer owns the envelope). The verdict_cache/store members
/// aggregate every service instance reported via noteServiceStats, so
/// cold/warm runs are auditable from the JSON alone. Returns false on I/O
/// failure. (bench_smt_core is the one exception: google-benchmark emits
/// its JSON directly via --benchmark_out.)
bool writeBenchJson(const std::string &BenchName, const BenchOptions &Opt,
                    const std::string &PayloadMembers,
                    const std::string &Path);

/// Folds one service's verdict-cache counters (and, when a store is
/// attached, its store counters) into the process-wide tally exported in
/// the writeBenchJson envelope. buildCorpus/runFunnel call this for the
/// services they own; drivers with hand-built services call it before
/// destroying them.
void noteServiceStats(const svc::VectorizerService &Service);

/// Per-run service statistics (for bench gates that need one specific
/// run's counters rather than the process-wide envelope tally).
struct ServiceRunStats {
  svc::CacheStats Cache;
  store::StoreStats Store; ///< Zero when no store was attached.
};

/// Sums integer argument \p Key over every snapshot event named \p Name
/// (all categories). The bench parity gates use this to compare per-stage
/// span sums against the StageSatWork/StageInterpWork tallies.
uint64_t sumSpanArg(const std::vector<obs::TraceEvent> &Events,
                    const char *Name, const char *Key);

/// Number of snapshot events named \p Name.
size_t countSpans(const std::vector<obs::TraceEvent> &Events,
                  const char *Name);

/// One sampled completion with its checksum classification.
struct CandidateRecord {
  std::string Source;
  bool Compiles = false;
  bool Plausible = false;
};

/// All samples for one TSVC test.
struct TestCorpus {
  const tsvc::TsvcTest *Test = nullptr;
  std::vector<CandidateRecord> Samples;

  /// Index of the first plausible sample in the first \p K, or -1.
  int firstPlausible(int K) const;
  /// True if every one of the first \p K samples failed to compile.
  bool allFailCompile(int K) const;
};

/// Samples \p K completions for every TSVC test (single LLM invocation per
/// sample, no feedback — the paper's "code completions" setting of §4.1.1)
/// and classifies each with checksum testing. Dispatches one Sample-mode
/// service request per test across \p Jobs workers; the corpus is
/// bit-identical at any job count.
std::vector<TestCorpus> buildCorpus(int K, uint64_t Seed = ExperimentSeed,
                                    int Jobs = 1,
                                    const std::string &StorePath = "");

/// buildCorpus restricted to an explicit test list (ablation slices).
/// \p StorePath (optional) attaches a persistent result store to the
/// sampling service, so classification outcomes persist across runs.
std::vector<TestCorpus>
buildCorpusFor(const std::vector<const tsvc::TsvcTest *> &Tests, int K,
               uint64_t Seed = ExperimentSeed, int Jobs = 1,
               const std::string &StorePath = "");

/// Table-2 style classification for a given k.
struct ChecksumTally {
  int Plausible = 0;
  int NotEquivalent = 0;
  int CannotCompile = 0;
};
ChecksumTally tallyAt(const std::vector<TestCorpus> &Corpus, int K);

/// Per-test funnel record for Table 3.
struct FunnelRecord {
  std::string Name;
  bool HadPlausible = false;
  core::EquivResult Result;
  /// Per-stage SAT-work aggregates from the service Outcome.
  svc::StageSatWork Alive2Work, CUnrollWork, SplitWork;
  /// Testing-stage interpreter work from the service Outcome.
  svc::StageInterpWork ChecksumWork;
};

/// Runs Algorithm 1 on the first plausible candidate of each test, one
/// Verify-mode service request per plausible test across \p Jobs workers.
/// Verdict-identical at any job count. Without a store the verdict cache
/// is disabled so A/B reruns with different backends measure real work;
/// with \p StorePath set the cache (and its persistent backing) is enabled
/// — that is the point of a warm-start measurement. \p StatsOut (optional)
/// receives this run's cache/store counters.
std::vector<FunnelRecord> runFunnel(const std::vector<TestCorpus> &Corpus,
                                    const core::EquivConfig &Cfg,
                                    int Jobs = 1,
                                    const std::string &StorePath = "",
                                    ServiceRunStats *StatsOut = nullptr);

/// Pretty-printing helpers (stdout).
void printHeader(const std::string &Title);
void printRow3(const char *Label, const std::string &Paper,
               const std::string &Measured);

} // namespace bench
} // namespace lv

#endif // LV_BENCH_HARNESS_H
