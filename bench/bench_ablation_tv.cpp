//===- bench/bench_ablation_tv.cpp - verification ablations -------------------===//
//
// Ablation study for the design choices DESIGN.md calls out:
//  1. disabling C-level unrolling (paper §3.2) and spatial splitting
//     (§3.3) individually, measuring the verified/refuted counts;
//  2. sweeping the SAT conflict budget to show the funnel's sensitivity to
//     the timeout knob (the paper's Inconclusive totals are an artifact of
//     Alive2's resource limits, reproduced here organically).
//
// Runs on a fixed 40-test slice of the dataset to stay fast.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "support/Format.h"

#include <cstdio>

using namespace lv;
using namespace lv::bench;

namespace {

struct Counts {
  int Eq = 0, Neq = 0, Inc = 0;
};

Counts runSlice(const std::vector<TestCorpus> &Corpus,
                const core::EquivConfig &Cfg, int Jobs,
                const std::string &StorePath) {
  Counts C;
  // Each ablation config has a distinct configHash, so a shared store
  // never leaks a verdict from one slice into another.
  std::vector<FunnelRecord> F = runFunnel(Corpus, Cfg, Jobs, StorePath);
  for (const FunnelRecord &R : F) {
    if (!R.HadPlausible)
      continue;
    switch (R.Result.Final) {
    case core::EquivResult::Equivalent: ++C.Eq; break;
    case core::EquivResult::Inequivalent: ++C.Neq; break;
    default: ++C.Inc; break;
    }
  }
  return C;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  printHeader("Ablation: domain-specific verification techniques");
  std::printf("  building candidate corpus for the ablation slice "
              "(--jobs %d)...\n",
              Opt.Jobs);
  // Same 12 tests the corpus slicing used to pick (every 11th), but the
  // service now only samples those, not all 149.
  std::vector<TestCorpus> Slice =
      buildCorpusFor(tsvc::suiteSample(11, 12), 30, ExperimentSeed,
                     Opt.Jobs, Opt.StorePath);

  core::EquivConfig Base;
  Base.ScalarMax = 8;
  Base.MaxTerms = 120'000;
  Base.Alive2Budget = 500;
  Base.CUnrollBudget = 2'000;
  Base.SplitBudget = 300;

  struct Config {
    const char *Name;
    bool A2, CU, SP;
  };
  const Config Configs[] = {
      {"full pipeline", true, true, true},
      {"without C-unroll", true, false, true},
      {"without splitting", true, true, false},
      {"Alive2-unroll only", true, false, false},
  };
  std::printf("\n  %-22s %8s %8s %8s\n", "configuration", "equiv",
              "notequiv", "inconcl");
  Counts FullC{};
  Counts A2Only{};
  for (const Config &Cf : Configs) {
    core::EquivConfig Cfg = Base;
    Cfg.EnableAlive2 = Cf.A2;
    Cfg.EnableCUnroll = Cf.CU;
    Cfg.EnableSplitting = Cf.SP;
    Counts C = runSlice(Slice, Cfg, Opt.Jobs, Opt.StorePath);
    std::printf("  %-22s %8d %8d %8d\n", Cf.Name, C.Eq, C.Neq, C.Inc);
    if (std::string(Cf.Name) == "full pipeline")
      FullC = C;
    if (std::string(Cf.Name) == "Alive2-unroll only")
      A2Only = C;
  }

  printHeader("Ablation: SAT conflict-budget sweep (full pipeline)");
  std::printf("\n  %-12s %8s %8s %8s\n", "budget", "equiv", "notequiv",
              "inconcl");
  for (uint64_t Budget : {200ULL, 1'000ULL, 4'000ULL, 16'000ULL}) {
    core::EquivConfig Cfg = Base;
    Cfg.Alive2Budget = Budget;
    Cfg.CUnrollBudget = Budget * 2;
    Cfg.SplitBudget = Budget;
    Counts C = runSlice(Slice, Cfg, Opt.Jobs, Opt.StorePath);
    std::printf("  %-12llu %8d %8d %8d\n",
                static_cast<unsigned long long>(Budget), C.Eq, C.Neq,
                C.Inc);
  }

  bool ShapeOk = FullC.Eq >= A2Only.Eq && FullC.Inc <= A2Only.Inc;
  std::printf("\n  shape (domain-specific stages reduce inconclusives): "
              "%s\n",
              ShapeOk ? "OK" : "MISMATCH");
  return ShapeOk ? 0 : 1;
}
