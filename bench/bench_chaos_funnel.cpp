//===- bench/bench_chaos_funnel.cpp - fault-injection funnel gates ------------===//
//
// The chaos harness: drives the TSVC pipeline funnel through
// svc::VectorizerService under escalating injected transport faults
// (llm/Chaos.h) and storage faults (store::ChaosFileHooks), gating the
// fault-tolerance contract of src/svc/README.md "Failure model":
//
//   * no crash at any fault rate — every injected fault ends as a
//     classified Outcome, never an escaped exception;
//   * zero-chaos runs are debugString-bit-identical at 1/2/8 workers
//     (chaos plumbing must not perturb the determinism contract);
//   * absorbed transient faults are invisible: a task that succeeded
//     after retries is bit-identical (modulo the resilience tally line)
//     to the fault-free run of the same schedule;
//   * every failed task carries a non-None FailureKind;
//   * no task outlives its deadline by more than the cooperative-
//     checkpoint grace, and the whole batch lands within a harness
//     budget enforced via waitBatchFor;
//   * a store whose log dies mid-run degrades to memory-only with the
//     failure counted, without changing a single verdict.
//
// `--smoke` shrinks the suite slice and fault ladder for CI.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "store/Store.h"
#include "support/Format.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace lv;
using namespace lv::bench;

namespace {

int GateFailures = 0;

void gate(bool Ok, const std::string &What) {
  std::printf("  [%s] %s\n", Ok ? "PASS" : "FAIL", What.c_str());
  if (!Ok)
    ++GateFailures;
}

/// debugString minus the ` resilience:` tally line — the one line the
/// failure model *expects* to differ between an absorbed-fault run and a
/// fault-free run (retry counts live there).
std::string stripResilience(const std::string &S) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Eol = S.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = S.size() - 1;
    if (S.compare(Pos, 13, " resilience: ") != 0)
      Out.append(S, Pos, Eol - Pos + 1);
    Pos = Eol + 1;
  }
  return Out;
}

struct ArmResult {
  std::vector<svc::Outcome> Outcomes;
  svc::VectorizerService::ResilienceStats Stats;
  bool BudgetHit = false; ///< A task outlived the harness wait budget.
};

struct ArmSpec {
  int Workers = 2;
  llm::ChaosConfig Chaos;
  uint64_t DeadlineNanos = 0;
  int ClientRetries = 2;
  uint64_t BackoffNanos = 0; ///< 0 in gates: backoff only stretches wall.
  uint64_t HarnessBudgetNanos = 600'000'000'000ULL;
  std::string StorePath;
};

/// One pipeline run of \p Tests under \p Spec. Collection goes through
/// waitBatchFor so a task that somehow outlives its deadline turns into a
/// gate failure instead of a hang (we then wait() it out — the budgets
/// below it are finite — so teardown stays clean).
ArmResult runArm(const std::vector<const tsvc::TsvcTest *> &Tests,
                 const ArmSpec &Spec, const core::EquivConfig &Equiv,
                 int MaxAttempts) {
  svc::ServiceConfig SC;
  SC.Workers = Spec.Workers;
  SC.Chaos = Spec.Chaos;
  SC.ClientRetries = Spec.ClientRetries;
  SC.RetryBackoffNanos = Spec.BackoffNanos;
  SC.StorePath = Spec.StorePath;
  svc::VectorizerService Service(SC);

  std::vector<svc::Request> Batch;
  Batch.reserve(Tests.size());
  for (const tsvc::TsvcTest *T : Tests) {
    svc::Request R;
    R.Mode = svc::RunMode::Pipeline;
    R.Name = T->Name;
    R.ScalarSource = T->Source;
    R.Seed = ExperimentSeed;
    R.Fsm.MaxAttempts = MaxAttempts;
    R.Equiv = Equiv;
    R.DeadlineNanos = Spec.DeadlineNanos;
    Batch.push_back(std::move(R));
  }
  std::vector<svc::Ticket> Tickets = Service.submitBatch(std::move(Batch));

  ArmResult Out;
  std::vector<const svc::Outcome *> Ptrs =
      Service.waitBatchFor(Tickets, Spec.HarnessBudgetNanos);
  for (size_t I = 0; I < Tickets.size(); ++I) {
    const svc::Outcome *O = Ptrs[I];
    if (!O) {
      Out.BudgetHit = true;
      O = &Service.wait(Tickets[I]);
    }
    Out.Outcomes.push_back(*O);
  }
  Out.Stats = Service.resilienceStats();
  noteServiceStats(Service);
  return Out;
}

std::string armJson(const char *Name, const ArmResult &A) {
  uint64_t Failed = 0;
  for (const svc::Outcome &O : A.Outcomes)
    Failed += O.Failed ? 1 : 0;
  std::string J;
  appendf(J,
          "    {\"arm\": \"%s\", \"tasks\": %zu, \"failed\": %llu, "
          "\"retries\": %llu, \"timeouts\": %llu, \"degraded\": %llu, "
          "\"client_transient\": %llu, \"client_permanent\": %llu, "
          "\"internal\": %llu}",
          Name, A.Outcomes.size(), static_cast<unsigned long long>(Failed),
          static_cast<unsigned long long>(A.Stats.Retries),
          static_cast<unsigned long long>(A.Stats.Timeouts),
          static_cast<unsigned long long>(A.Stats.Degraded),
          static_cast<unsigned long long>(A.Stats.ClientTransient),
          static_cast<unsigned long long>(A.Stats.ClientPermanent),
          static_cast<unsigned long long>(A.Stats.Internal));
  return J;
}

/// Failure-classification invariants every arm must satisfy.
void gateClassified(const char *Arm, const ArmResult &A) {
  bool Consistent = true;
  for (const svc::Outcome &O : A.Outcomes)
    if (O.Failed != (O.Failure != svc::FailureKind::None))
      Consistent = false;
  gate(Consistent,
       format("%s: Failed <=> classified FailureKind on every task", Arm));
  gate(!A.BudgetHit, format("%s: batch landed within the harness budget",
                            Arm));
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;

  // Slice and budgets. The equivalence budgets are deliberately modest:
  // chaos gates exercise the failure plumbing, not verdict power, and
  // every arm shares one config so comparisons stay apples-to-apples.
  std::vector<const tsvc::TsvcTest *> Tests =
      Smoke ? tsvc::suiteSample(20, 6) : tsvc::suiteSample(6, 25);
  core::EquivConfig Equiv;
  Equiv.Alive2Budget = Smoke ? 2'000 : 10'000;
  Equiv.CUnrollBudget = Smoke ? 2'000 : 10'000;
  Equiv.SplitBudget = Smoke ? 1'000 : 5'000;
  Equiv.MaxTerms = 200'000;
  int MaxAttempts = Smoke ? 2 : 4;
  uint64_t Deadline = Smoke ? 2'000'000'000ULL : 10'000'000'000ULL;
  uint64_t Grace = Smoke ? 5'000'000'000ULL : 15'000'000'000ULL;

  printHeader("arm 0: fault-free baseline + worker-count parity");
  ArmSpec Base;
  Base.Workers = 1;
  ArmResult Baseline = runArm(Tests, Base, Equiv, MaxAttempts);
  gateClassified("baseline", Baseline);
  {
    bool NoneFailed = true;
    for (const svc::Outcome &O : Baseline.Outcomes)
      NoneFailed = NoneFailed && !O.Failed;
    gate(NoneFailed, "baseline: zero-chaos run has no failed tasks");
  }
  for (int W : {2, 8}) {
    ArmSpec S = Base;
    S.Workers = W;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    bool Identical = R.Outcomes.size() == Baseline.Outcomes.size();
    for (size_t I = 0; Identical && I < R.Outcomes.size(); ++I)
      Identical = svc::debugString(R.Outcomes[I]) ==
                  svc::debugString(Baseline.Outcomes[I]);
    gate(Identical,
         format("parity: %d workers debugString-identical to 1 worker", W));
  }

  printHeader("arm 1: scripted transient fault, absorbed by retry");
  // Call 0 of every task's client faults once; with retries available the
  // task re-runs the FSM on the same client, whose schedule has consumed
  // the fault, so the surviving run replays the fault-free stream.
  ArmSpec Script;
  Script.Workers = 2;
  Script.Chaos.TransientCallScript = {0};
  ArmResult Absorbed = runArm(Tests, Script, Equiv, MaxAttempts);
  gateClassified("absorbed", Absorbed);
  {
    bool AllRetried = true, AllIdentical = true;
    for (size_t I = 0; I < Absorbed.Outcomes.size(); ++I) {
      const svc::Outcome &O = Absorbed.Outcomes[I];
      AllRetried = AllRetried && !O.Failed && O.Retries == 1;
      AllIdentical = AllIdentical &&
                     stripResilience(svc::debugString(O)) ==
                         stripResilience(
                             svc::debugString(Baseline.Outcomes[I]));
    }
    gate(AllRetried, "absorbed: every task succeeded with exactly 1 retry");
    gate(AllIdentical, "absorbed: every task bit-identical to fault-free "
                       "run modulo the resilience line");
  }

  printHeader("arm 2: escalating random faults + per-task deadlines");
  std::vector<double> Ladder =
      Smoke ? std::vector<double>{0.4} : std::vector<double>{0.1, 0.3, 0.6};
  std::vector<ArmResult> LadderResults;
  for (double Rate : Ladder) {
    ArmSpec S;
    S.Workers = Smoke ? 2 : 4;
    S.Chaos.TransientRate = 0.5 * Rate;
    S.Chaos.PermanentRate = 0.15 * Rate;
    S.Chaos.TruncateRate = 0.2 * Rate;
    S.Chaos.GarbageRate = 0.2 * Rate;
    S.Chaos.LatencyRate = 0.2 * Rate;
    // A latency fault parks the client well past the deadline: the
    // cancellable sleep is how TimedOut gets exercised deterministically.
    S.Chaos.LatencyNanos = Deadline * 4;
    S.DeadlineNanos = Deadline;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    std::string Arm = format("chaos rate=%.2f", Rate);
    gateClassified(Arm.c_str(), R);
    bool DeadlineHeld = true;
    for (const svc::Outcome &O : R.Outcomes)
      if (O.Failure == svc::FailureKind::TimedOut &&
          O.WallNanos > Deadline + Grace) {
        DeadlineHeld = false;
        std::fprintf(stderr,
                     "    overrun: %s wall=%.2fs deadline=%.2fs err=%s\n",
                     O.Name.c_str(), O.WallNanos * 1e-9, Deadline * 1e-9,
                     O.Error.c_str());
      }
    gate(DeadlineHeld,
         Arm + ": no timed-out task overran deadline + checkpoint grace");
    LadderResults.push_back(std::move(R));
  }

  printHeader("arm 3: storage faults degrade to memory-only");
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "lv_chaos_bench_store").string();
  std::error_code EC;
  fs::remove_all(Dir, EC);
  {
    // Let the first append through, fail every later one: the run keeps
    // going memory-only and verdicts match the storeless baseline.
    std::atomic<int> Appends{0};
    store::ChaosFileHooks H;
    H.FailAppend = [&Appends] { return ++Appends > 1; };
    store::setChaosFileHooks(H);
    ArmSpec S;
    S.Workers = 2;
    S.StorePath = Dir;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    store::setChaosFileHooks(store::ChaosFileHooks());
    gateClassified("store-chaos", R);
    bool Identical = true;
    for (size_t I = 0; I < R.Outcomes.size(); ++I)
      Identical = Identical && svc::debugString(R.Outcomes[I]) ==
                                   svc::debugString(Baseline.Outcomes[I]);
    gate(Identical, "store-chaos: verdicts identical to storeless baseline");
    gate(Appends.load() > 1, "store-chaos: append failures were injected");
  }
  {
    // A load failure on reopen must serve from empty without touching the
    // (partial) log left by the previous phase.
    store::ChaosFileHooks H;
    std::atomic<bool> Once{true};
    H.FailLoad = [&Once] { return Once.exchange(false); };
    store::setChaosFileHooks(H);
    store::ResultStore Reopened(Dir);
    store::setChaosFileHooks(store::ChaosFileHooks());
    gate(Reopened.stats().ReadFailed == 1 && !Reopened.ok(),
         "store-chaos: failed load counted and store degraded");
    store::ResultStore Clean(Dir);
    gate(Clean.ok() && Clean.stats().ReadFailed == 0,
         "store-chaos: log survived the failed load and reopens cleanly");
  }
  fs::remove_all(Dir, EC);

  // JSON mirror.
  std::string Payload = "  \"smoke\": ";
  Payload += Smoke ? "true" : "false";
  appendf(Payload, ",\n  \"tests\": %zu,\n  \"gate_failures\": %d,\n",
          Tests.size(), GateFailures);
  Payload += "  \"arms\": [\n";
  Payload += armJson("baseline", Baseline) + ",\n";
  Payload += armJson("absorbed", Absorbed);
  for (size_t I = 0; I < LadderResults.size(); ++I) {
    Payload += ",\n";
    Payload += armJson(format("chaos_%.2f", Ladder[I]).c_str(),
                       LadderResults[I]);
  }
  Payload += "\n  ]";
  writeBenchJson("chaos_funnel", Opt, Payload, "BENCH_chaos.json");
  writeObsArtifacts(Opt);

  if (GateFailures) {
    std::fprintf(stderr, "bench_chaos_funnel: %d gate(s) FAILED\n",
                 GateFailures);
    return 1;
  }
  std::printf("\nbench_chaos_funnel: all gates passed\n");
  return 0;
}
