//===- bench/bench_chaos_funnel.cpp - fault-injection funnel gates ------------===//
//
// The chaos harness: drives the TSVC pipeline funnel through
// svc::VectorizerService under escalating injected transport faults
// (llm/Chaos.h) and storage faults (store::ChaosFileHooks), gating the
// fault-tolerance contract of src/svc/README.md "Failure model":
//
//   * no crash at any fault rate — every injected fault ends as a
//     classified Outcome, never an escaped exception;
//   * zero-chaos runs are debugString-bit-identical at 1/2/8 workers
//     (chaos plumbing must not perturb the determinism contract);
//   * absorbed transient faults are invisible: a task that succeeded
//     after retries is bit-identical (modulo the resilience tally line)
//     to the fault-free run of the same schedule;
//   * every failed task carries a non-None FailureKind;
//   * no task outlives its deadline by more than the cooperative-
//     checkpoint grace, and the whole batch lands within a harness
//     budget enforced via waitBatchFor;
//   * a store whose log dies mid-run degrades to memory-only with the
//     failure counted, without changing a single verdict.
//
// `--smoke` shrinks the suite slice and fault ladder for CI.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "store/Store.h"
#include "support/Format.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace lv;
using namespace lv::bench;

namespace {

int GateFailures = 0;

void gate(bool Ok, const std::string &What) {
  std::printf("  [%s] %s\n", Ok ? "PASS" : "FAIL", What.c_str());
  if (!Ok)
    ++GateFailures;
}

/// debugString minus the ` resilience:` tally line — the one line the
/// failure model *expects* to differ between an absorbed-fault run and a
/// fault-free run (retry counts live there).
std::string stripResilience(const std::string &S) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Eol = S.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = S.size() - 1;
    if (S.compare(Pos, 13, " resilience: ") != 0)
      Out.append(S, Pos, Eol - Pos + 1);
    Pos = Eol + 1;
  }
  return Out;
}

struct ArmResult {
  std::vector<svc::Outcome> Outcomes;
  svc::VectorizerService::ResilienceStats Stats;
  support::BreakerStats Breaker;
  bool BudgetHit = false; ///< A task outlived the harness wait budget.
};

struct ArmSpec {
  int Workers = 2;
  llm::ChaosConfig Chaos;
  uint64_t DeadlineNanos = 0;
  int ClientRetries = 2;
  uint64_t BackoffNanos = 0; ///< 0 in gates: backoff only stretches wall.
  uint64_t HarnessBudgetNanos = 600'000'000'000ULL;
  std::string StorePath;
  // Overload / recovery knobs (PR 10).
  size_t MaxQueueDepth = 0; ///< 0 = unbounded.
  svc::ServiceConfig::AdmissionPolicy Admission =
      svc::ServiceConfig::AdmissionPolicy::Shed;
  support::BreakerConfig Breaker;
  uint64_t HedgeAfterCalls = 0;
  std::string JournalPath;
  bool UsePriorities = false; ///< Priority = submit index % 3.
};

/// --store DIR: every arm that does not pin its own store directory (the
/// storage-chaos arm does) runs against this one, so a killed run's torn
/// on-disk state is exactly what the CI re-run must salvage.
std::string DefaultStorePath;

svc::ServiceConfig makeConfig(const ArmSpec &Spec) {
  svc::ServiceConfig SC;
  SC.Workers = Spec.Workers;
  SC.Chaos = Spec.Chaos;
  SC.ClientRetries = Spec.ClientRetries;
  SC.RetryBackoffNanos = Spec.BackoffNanos;
  SC.StorePath = Spec.StorePath.empty() ? DefaultStorePath : Spec.StorePath;
  SC.MaxQueueDepth = Spec.MaxQueueDepth;
  SC.Admission = Spec.Admission;
  SC.Breaker = Spec.Breaker;
  SC.HedgeAfterCalls = Spec.HedgeAfterCalls;
  SC.JournalPath = Spec.JournalPath;
  return SC;
}

std::vector<svc::Request>
makeBatch(const std::vector<const tsvc::TsvcTest *> &Tests,
          const ArmSpec &Spec, const core::EquivConfig &Equiv,
          int MaxAttempts) {
  std::vector<svc::Request> Batch;
  Batch.reserve(Tests.size());
  for (size_t I = 0; I < Tests.size(); ++I) {
    svc::Request R;
    R.Mode = svc::RunMode::Pipeline;
    R.Name = Tests[I]->Name;
    R.ScalarSource = Tests[I]->Source;
    R.Seed = ExperimentSeed;
    R.Fsm.MaxAttempts = MaxAttempts;
    R.Equiv = Equiv;
    R.DeadlineNanos = Spec.DeadlineNanos;
    if (Spec.UsePriorities)
      R.Priority = static_cast<int>(I % 3);
    Batch.push_back(std::move(R));
  }
  return Batch;
}

/// One pipeline run of \p Tests under \p Spec. Collection goes through
/// waitBatchFor so a task that somehow outlives its deadline turns into a
/// gate failure instead of a hang (we then wait() it out — the budgets
/// below it are finite — so teardown stays clean).
ArmResult runArm(const std::vector<const tsvc::TsvcTest *> &Tests,
                 const ArmSpec &Spec, const core::EquivConfig &Equiv,
                 int MaxAttempts) {
  svc::VectorizerService Service(makeConfig(Spec));
  std::vector<svc::Ticket> Tickets =
      Service.submitBatch(makeBatch(Tests, Spec, Equiv, MaxAttempts));

  ArmResult Out;
  std::vector<svc::VectorizerService::TaskStatus> Sts =
      Service.waitBatchFor(Tickets, Spec.HarnessBudgetNanos);
  for (size_t I = 0; I < Tickets.size(); ++I) {
    const svc::Outcome *O = Sts[I].Out;
    if (!O) {
      Out.BudgetHit = true;
      O = &Service.wait(Tickets[I]);
    }
    Out.Outcomes.push_back(*O);
  }
  Out.Stats = Service.resilienceStats();
  Out.Breaker = Service.breakerStats();
  noteServiceStats(Service);
  return Out;
}

std::string armJson(const char *Name, const ArmResult &A) {
  uint64_t Failed = 0;
  for (const svc::Outcome &O : A.Outcomes)
    Failed += O.Failed ? 1 : 0;
  std::string J;
  appendf(J,
          "    {\"arm\": \"%s\", \"tasks\": %zu, \"failed\": %llu, "
          "\"retries\": %llu, \"timeouts\": %llu, \"degraded\": %llu, "
          "\"client_transient\": %llu, \"client_permanent\": %llu, "
          "\"internal\": %llu, \"shed\": %llu, \"journal_replayed\": %llu, "
          "\"breaker_trips\": %llu, \"breaker_rejected\": %llu}",
          Name, A.Outcomes.size(), static_cast<unsigned long long>(Failed),
          static_cast<unsigned long long>(A.Stats.Retries),
          static_cast<unsigned long long>(A.Stats.Timeouts),
          static_cast<unsigned long long>(A.Stats.Degraded),
          static_cast<unsigned long long>(A.Stats.ClientTransient),
          static_cast<unsigned long long>(A.Stats.ClientPermanent),
          static_cast<unsigned long long>(A.Stats.Internal),
          static_cast<unsigned long long>(A.Stats.Shed),
          static_cast<unsigned long long>(A.Stats.JournalReplayed),
          static_cast<unsigned long long>(A.Breaker.Trips),
          static_cast<unsigned long long>(A.Breaker.Rejected));
  return J;
}

/// Failure-classification invariants every arm must satisfy.
void gateClassified(const char *Arm, const ArmResult &A) {
  bool Consistent = true;
  for (const svc::Outcome &O : A.Outcomes)
    if (O.Failed != (O.Failure != svc::FailureKind::None))
      Consistent = false;
  gate(Consistent,
       format("%s: Failed <=> classified FailureKind on every task", Arm));
  gate(!A.BudgetHit, format("%s: batch landed within the harness budget",
                            Arm));
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  DefaultStorePath = Opt.StorePath;
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;

  // Slice and budgets. The equivalence budgets are deliberately modest:
  // chaos gates exercise the failure plumbing, not verdict power, and
  // every arm shares one config so comparisons stay apples-to-apples.
  std::vector<const tsvc::TsvcTest *> Tests =
      Smoke ? tsvc::suiteSample(20, 6) : tsvc::suiteSample(6, 25);
  core::EquivConfig Equiv;
  Equiv.Alive2Budget = Smoke ? 2'000 : 10'000;
  Equiv.CUnrollBudget = Smoke ? 2'000 : 10'000;
  Equiv.SplitBudget = Smoke ? 1'000 : 5'000;
  Equiv.MaxTerms = 200'000;
  int MaxAttempts = Smoke ? 2 : 4;
  uint64_t Deadline = Smoke ? 2'000'000'000ULL : 10'000'000'000ULL;
  uint64_t Grace = Smoke ? 5'000'000'000ULL : 15'000'000'000ULL;

  printHeader("arm 0: fault-free baseline + worker-count parity");
  ArmSpec Base;
  Base.Workers = 1;
  ArmResult Baseline = runArm(Tests, Base, Equiv, MaxAttempts);
  gateClassified("baseline", Baseline);
  {
    bool NoneFailed = true;
    for (const svc::Outcome &O : Baseline.Outcomes)
      NoneFailed = NoneFailed && !O.Failed;
    gate(NoneFailed, "baseline: zero-chaos run has no failed tasks");
  }
  for (int W : {2, 8}) {
    ArmSpec S = Base;
    S.Workers = W;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    bool Identical = R.Outcomes.size() == Baseline.Outcomes.size();
    for (size_t I = 0; Identical && I < R.Outcomes.size(); ++I)
      Identical = svc::debugString(R.Outcomes[I]) ==
                  svc::debugString(Baseline.Outcomes[I]);
    gate(Identical,
         format("parity: %d workers debugString-identical to 1 worker", W));
  }

  printHeader("arm 1: scripted transient fault, absorbed by retry");
  // Call 0 of every task's client faults once; with retries available the
  // task re-runs the FSM on the same client, whose schedule has consumed
  // the fault, so the surviving run replays the fault-free stream.
  ArmSpec Script;
  Script.Workers = 2;
  Script.Chaos.TransientCallScript = {0};
  ArmResult Absorbed = runArm(Tests, Script, Equiv, MaxAttempts);
  gateClassified("absorbed", Absorbed);
  {
    bool AllRetried = true, AllIdentical = true;
    for (size_t I = 0; I < Absorbed.Outcomes.size(); ++I) {
      const svc::Outcome &O = Absorbed.Outcomes[I];
      AllRetried = AllRetried && !O.Failed && O.Retries == 1;
      AllIdentical = AllIdentical &&
                     stripResilience(svc::debugString(O)) ==
                         stripResilience(
                             svc::debugString(Baseline.Outcomes[I]));
    }
    gate(AllRetried, "absorbed: every task succeeded with exactly 1 retry");
    gate(AllIdentical, "absorbed: every task bit-identical to fault-free "
                       "run modulo the resilience line");
  }

  printHeader("arm 2: escalating random faults + per-task deadlines");
  std::vector<double> Ladder =
      Smoke ? std::vector<double>{0.4} : std::vector<double>{0.1, 0.3, 0.6};
  std::vector<ArmResult> LadderResults;
  for (double Rate : Ladder) {
    ArmSpec S;
    S.Workers = Smoke ? 2 : 4;
    S.Chaos.TransientRate = 0.5 * Rate;
    S.Chaos.PermanentRate = 0.15 * Rate;
    S.Chaos.TruncateRate = 0.2 * Rate;
    S.Chaos.GarbageRate = 0.2 * Rate;
    S.Chaos.LatencyRate = 0.2 * Rate;
    // A latency fault parks the client well past the deadline: the
    // cancellable sleep is how TimedOut gets exercised deterministically.
    S.Chaos.LatencyNanos = Deadline * 4;
    S.DeadlineNanos = Deadline;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    std::string Arm = format("chaos rate=%.2f", Rate);
    gateClassified(Arm.c_str(), R);
    bool DeadlineHeld = true;
    for (const svc::Outcome &O : R.Outcomes)
      if (O.Failure == svc::FailureKind::TimedOut &&
          O.WallNanos > Deadline + Grace) {
        DeadlineHeld = false;
        std::fprintf(stderr,
                     "    overrun: %s wall=%.2fs deadline=%.2fs err=%s\n",
                     O.Name.c_str(), O.WallNanos * 1e-9, Deadline * 1e-9,
                     O.Error.c_str());
      }
    gate(DeadlineHeld,
         Arm + ": no timed-out task overran deadline + checkpoint grace");
    LadderResults.push_back(std::move(R));
  }

  printHeader("arm 3: storage faults degrade to memory-only");
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() / "lv_chaos_bench_store").string();
  std::error_code EC;
  fs::remove_all(Dir, EC);
  {
    // Let the first append through, fail every later one: the run keeps
    // going memory-only and verdicts match the storeless baseline.
    std::atomic<int> Appends{0};
    store::ChaosFileHooks H;
    H.FailAppend = [&Appends] { return ++Appends > 1; };
    store::setChaosFileHooks(H);
    ArmSpec S;
    S.Workers = 2;
    S.StorePath = Dir;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    store::setChaosFileHooks(store::ChaosFileHooks());
    gateClassified("store-chaos", R);
    bool Identical = true;
    for (size_t I = 0; I < R.Outcomes.size(); ++I)
      Identical = Identical && svc::debugString(R.Outcomes[I]) ==
                                   svc::debugString(Baseline.Outcomes[I]);
    gate(Identical, "store-chaos: verdicts identical to storeless baseline");
    gate(Appends.load() > 1, "store-chaos: append failures were injected");
  }
  {
    // A load failure on reopen must serve from empty without touching the
    // (partial) log left by the previous phase.
    store::ChaosFileHooks H;
    std::atomic<bool> Once{true};
    H.FailLoad = [&Once] { return Once.exchange(false); };
    store::setChaosFileHooks(H);
    store::ResultStore Reopened(Dir);
    store::setChaosFileHooks(store::ChaosFileHooks());
    gate(Reopened.stats().ReadFailed == 1 && !Reopened.ok(),
         "store-chaos: failed load counted and store degraded");
    store::ResultStore Clean(Dir);
    gate(Clean.ok() && Clean.stats().ReadFailed == 0,
         "store-chaos: log survived the failed load and reopens cleanly");
  }
  fs::remove_all(Dir, EC);

  printHeader("arm 4: 4x overload — deterministic priority shedding");
  // The batch is 4x the admission queue: admission happens under one lock
  // hold, so exactly N - depth tasks lose (evict-weakest by priority, ties
  // keep the earlier submission) and the shed set is a pure function of
  // batch content — identical at every worker count.
  ArmSpec Over;
  Over.UsePriorities = true;
  Over.MaxQueueDepth = Tests.size() / 4 > 0 ? Tests.size() / 4 : 1;
  size_t ExpectShed = Tests.size() - Over.MaxQueueDepth;
  Over.Workers = 1;
  ArmResult OverBase = runArm(Tests, Over, Equiv, MaxAttempts);
  gateClassified("overload", OverBase);
  auto shedNames = [](const ArmResult &A) {
    std::vector<std::string> N;
    for (const svc::Outcome &O : A.Outcomes)
      if (O.Failure == svc::FailureKind::Shed)
        N.push_back(O.Name);
    return N;
  };
  std::vector<std::string> ShedSet = shedNames(OverBase);
  gate(ShedSet.size() == ExpectShed,
       format("overload: exactly %zu of %zu tasks shed (queue depth %zu)",
              ExpectShed, Tests.size(), Over.MaxQueueDepth));
  {
    bool SurvivorsClean = true;
    for (size_t I = 0; I < OverBase.Outcomes.size(); ++I)
      if (OverBase.Outcomes[I].Failure != svc::FailureKind::Shed)
        SurvivorsClean = SurvivorsClean &&
                         svc::debugString(OverBase.Outcomes[I]) ==
                             svc::debugString(Baseline.Outcomes[I]);
    gate(SurvivorsClean,
         "overload: surviving tasks bit-identical to the unloaded baseline");
  }
  for (int W : {2, 8}) {
    ArmSpec S = Over;
    S.Workers = W;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    gate(shedNames(R) == ShedSet,
         format("overload: %d workers shed the identical task set", W));
  }
  {
    // Block policy under the same overload: nobody is shed, nobody is
    // lost, and the submitter never deadlocks against the workers.
    ArmSpec Block = Over;
    Block.Workers = 2;
    Block.Admission = svc::ServiceConfig::AdmissionPolicy::Block;
    ArmResult R = runArm(Tests, Block, Equiv, MaxAttempts);
    gateClassified("overload-block", R);
    bool NoneShed = true, Identical = true;
    for (size_t I = 0; I < R.Outcomes.size(); ++I) {
      NoneShed =
          NoneShed && R.Outcomes[I].Failure != svc::FailureKind::Shed;
      Identical = Identical && svc::debugString(R.Outcomes[I]) ==
                                   svc::debugString(Baseline.Outcomes[I]);
    }
    gate(NoneShed, "overload-block: blocking admission sheds nothing");
    gate(Identical, "overload-block: results bit-identical to baseline");
  }

  printHeader("arm 5: circuit breaker + hedging");
  ArmResult Tripped;
  {
    // Fault rates high enough that consecutive failures trip the breaker;
    // rejected calls surface as transient client errors and classify like
    // any fast-failing endpoint.
    ArmSpec S;
    S.Workers = 2;
    S.Chaos.TransientRate = 0.9;
    S.ClientRetries = 1;
    S.Breaker.Enabled = true;
    S.Breaker.TripFailures = 2;
    S.Breaker.OpenRejects = 3;
    Tripped = runArm(Tests, S, Equiv, MaxAttempts);
    gateClassified("breaker", Tripped);
    gate(Tripped.Breaker.Trips > 0, "breaker: tripped under sustained faults");
    gate(Tripped.Breaker.Rejected > 0,
         "breaker: open state rejected calls without touching the backend");
  }
  {
    // Hedging with a fault-free backend: both arms return identical bytes
    // (index-pure completions), so racing them changes latency only.
    ArmSpec S;
    S.Workers = 2;
    S.HedgeAfterCalls = 1;
    ArmResult R = runArm(Tests, S, Equiv, MaxAttempts);
    gateClassified("hedged", R);
    bool Identical = true;
    for (size_t I = 0; I < R.Outcomes.size(); ++I)
      Identical = Identical && svc::debugString(R.Outcomes[I]) ==
                                   svc::debugString(Baseline.Outcomes[I]);
    gate(Identical, "hedged: results bit-identical to unhedged baseline");
  }

  printHeader("arm 6: kill/resume — crash-recovery batch journal");
  std::string JDir =
      (fs::temp_directory_path() / "lv_chaos_bench_journal").string();
  fs::remove_all(JDir, EC);
  size_t CompletedBeforeKill = 0;
  {
    // Interrupted phase: journaled run, killed mid-batch. drain(0) is the
    // in-process stand-in for SIGKILL: it stops the service at an
    // arbitrary point with completions already journaled (CI additionally
    // kills the whole process with a real SIGKILL and re-runs).
    ArmSpec S;
    S.Workers = 2;
    S.JournalPath = JDir;
    // Injected latency keeps every task slow even when a warm --store
    // makes the compute near-instant — without it the whole batch can
    // finish before drain() lands and there is no "mid-batch" left to
    // gate. Latency never changes content, but the chaos config is part
    // of the journal salt, so the resume phase must share it.
    S.Chaos.LatencyRate = 1.0;
    S.Chaos.LatencyNanos = 150'000'000;
    svc::VectorizerService Service(makeConfig(S));
    std::vector<svc::Ticket> Tickets =
        Service.submitBatch(makeBatch(Tests, S, Equiv, MaxAttempts));
    Service.wait(Tickets[0]); // ensure at least one completion journaled
    svc::VectorizerService::DrainResult DR =
        Service.drain(/*DeadlineNanos=*/0);
    std::vector<svc::VectorizerService::TaskStatus> Sts =
        Service.waitBatchFor(Tickets, 0);
    bool AllSettled = true;
    for (const svc::VectorizerService::TaskStatus &St : Sts) {
      AllSettled = AllSettled && St.Out != nullptr;
      if (St.Out && !St.Out->Failed)
        ++CompletedBeforeKill;
    }
    gate(AllSettled, "kill: drain settles every task (done/cancelled/shed)");
    gate(CompletedBeforeKill >= 1 && CompletedBeforeKill < Tests.size(),
         format("kill: interrupted mid-batch (%zu of %zu complete, "
                "%zu cancelled, %zu shed)",
                CompletedBeforeKill, Tests.size(), DR.Cancelled, DR.Shed));
    noteServiceStats(Service);
  }
  ArmResult Resumed;
  {
    // Resume phase: a fresh service on the same journal directory replays
    // completed tasks and re-runs only the remainder.
    ArmSpec S;
    S.Workers = 2;
    S.JournalPath = JDir;
    S.Chaos.LatencyRate = 1.0; // same salt as the interrupted phase
    S.Chaos.LatencyNanos = 150'000'000;
    Resumed = runArm(Tests, S, Equiv, MaxAttempts);
    gateClassified("resume", Resumed);
    gate(Resumed.Stats.JournalReplayed == CompletedBeforeKill,
         format("resume: replayed exactly the %zu journaled completions",
                CompletedBeforeKill));
    bool Identical = true;
    for (size_t I = 0; I < Resumed.Outcomes.size(); ++I)
      Identical = Identical && svc::debugString(Resumed.Outcomes[I]) ==
                                   svc::debugString(Baseline.Outcomes[I]);
    gate(Identical,
         "resume: resumed batch byte-identical to the uninterrupted run");
  }
  fs::remove_all(JDir, EC);

  // JSON mirror.
  std::string Payload = "  \"smoke\": ";
  Payload += Smoke ? "true" : "false";
  appendf(Payload, ",\n  \"tests\": %zu,\n  \"gate_failures\": %d,\n",
          Tests.size(), GateFailures);
  appendf(Payload,
          "  \"kill_resume\": {\"completed_before_kill\": %zu, "
          "\"replayed\": %llu, \"rerun\": %zu},\n",
          CompletedBeforeKill,
          static_cast<unsigned long long>(Resumed.Stats.JournalReplayed),
          Tests.size() - CompletedBeforeKill);
  Payload += "  \"arms\": [\n";
  Payload += armJson("baseline", Baseline) + ",\n";
  Payload += armJson("absorbed", Absorbed);
  for (size_t I = 0; I < LadderResults.size(); ++I) {
    Payload += ",\n";
    Payload += armJson(format("chaos_%.2f", Ladder[I]).c_str(),
                       LadderResults[I]);
  }
  Payload += ",\n";
  Payload += armJson("overload", OverBase) + ",\n";
  Payload += armJson("breaker", Tripped) + ",\n";
  Payload += armJson("kill_resume", Resumed);
  Payload += "\n  ]";
  writeBenchJson("chaos_funnel", Opt, Payload, "BENCH_chaos.json");
  writeObsArtifacts(Opt);

  if (GateFailures) {
    std::fprintf(stderr, "bench_chaos_funnel: %d gate(s) FAILED\n",
                 GateFailures);
    return 1;
  }
  std::printf("\nbench_chaos_funnel: all gates passed\n");
  return 0;
}
