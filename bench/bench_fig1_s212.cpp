//===- bench/bench_fig1_s212.cpp - Figure 1(c) reproduction -------------------===//
//
// Reproduces the paper's motivating measurement (Fig. 1c): GPT-4's s212
// vectorization versus the three compilers, which none of them vectorize
// (GCC/Clang keep scalar code; ICC emits markedly better scalar code).
// Paper speedups: 2.09x vs ICC, 7.35x vs Clang, 8.08x vs GCC.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "compilers/Baselines.h"
#include "interp/Interp.h"
#include "minic/Parser.h"
#include "support/Rng.h"
#include "vir/Lower.h"

#include <cstdio>

using namespace lv;
using namespace lv::bench;

// GPT-4's vectorization from the paper's Figure 1(b), verbatim modulo
// whitespace.
static const char *S212Gpt4 = R"(
#include <immintrin.h>
void s212(int n, int *a, int *b, int *c, int *d) {
  int i;
  __m256i a_vec, b_vec, c_vec, a_next_vec, d_vec, prod_vec, sum_vec;
  for (i = 0; i < n - 1 - (n - 1) % 8; i += 8) {
    a_vec = _mm256_loadu_si256((__m256i *)&a[i]);
    b_vec = _mm256_loadu_si256((__m256i *)&b[i]);
    c_vec = _mm256_loadu_si256((__m256i *)&c[i]);
    a_next_vec = _mm256_loadu_si256((__m256i *)&a[i + 1]);
    d_vec = _mm256_loadu_si256((__m256i *)&d[i]);
    prod_vec = _mm256_mullo_epi32(a_vec, c_vec);
    _mm256_storeu_si256((__m256i *)&a[i], prod_vec);
    prod_vec = _mm256_mullo_epi32(a_next_vec, d_vec);
    sum_vec = _mm256_add_epi32(b_vec, prod_vec);
    _mm256_storeu_si256((__m256i *)&b[i], sum_vec);
  }
  for (; i < n - 1; i++) {
    a[i] *= c[i];
    b[i] += a[i + 1] * d[i];
  }
})";

static double cycles(const minic::Function &F, double Factor, int N) {
  vir::LowerResult L = vir::lowerToVIR(F);
  if (!L.ok())
    return -1;
  interp::CostModel CM;
  interp::ExecConfig Cfg;
  Cfg.Costs = &CM;
  interp::MemoryImage Mem;
  Rng R(4242);
  for (size_t I = 0; I < L.Fn->Memories.size(); ++I) {
    std::vector<int32_t> Buf(static_cast<size_t>(N + 64));
    for (int32_t &V : Buf)
      V = R.rangeInt(-50, 50);
    Mem.Regions.push_back(std::move(Buf));
  }
  std::vector<int32_t> Args;
  for (const vir::VParam &P : L.Fn->Params)
    if (!P.IsPointer)
      Args.push_back(N);
  interp::ExecResult E = interp::execute(*L.Fn, Args, Mem, Cfg);
  return E.ok() ? E.Cycles * Factor : -1;
}

int main() {
  printHeader("Figure 1(c): s212, GPT-4 code vs compiler baselines");
  const tsvc::TsvcTest *T = tsvc::findTest("s212");
  minic::ParseResult SP = minic::parseFunction(T->Source);
  minic::ParseResult VP = minic::parseFunction(S212Gpt4);
  if (!SP.ok() || !VP.ok()) {
    std::printf("  parse failure\n");
    return 1;
  }
  const int N = 32000; // the TSVC workload size
  double Llm = cycles(*VP.Fn, 1.0, N);

  struct PaperRow {
    compilers::CompilerId C;
    double Paper;
  };
  const PaperRow Rows[] = {{compilers::CompilerId::ICC, 2.09},
                           {compilers::CompilerId::Clang, 7.35},
                           {compilers::CompilerId::GCC, 8.08}};
  std::printf("\n  %-8s %12s %12s %12s\n", "baseline", "vectorized?",
              "speedup", "paper");
  double IccUp = 0, ClangUp = 0, GccUp = 0;
  for (const PaperRow &Row : Rows) {
    compilers::CompileOutcome O = compilers::compileWith(Row.C, *SP.Fn);
    // Fig. 1(c) measures GCC/Clang/ICC on the *scalar* loop (none of them
    // vectorize s212 in the paper's setup); our ICC model's stronger
    // dependence analysis is exercised in Fig. 6 instead, so measure its
    // scalar code here.
    double Base = cycles(*SP.Fn, O.CycleFactor, N);
    double Up = Base / Llm;
    std::printf("  %-8s %12s %11.2fx %11.2fx\n",
                compilers::compilerName(Row.C), O.Vectorized ? "yes" : "no",
                Up, Row.Paper);
    if (Row.C == compilers::CompilerId::ICC)
      IccUp = Up;
    if (Row.C == compilers::CompilerId::Clang)
      ClangUp = Up;
    if (Row.C == compilers::CompilerId::GCC)
      GccUp = Up;
  }
  bool ShapeOk = IccUp > 1.2 && IccUp < ClangUp && ClangUp <= GccUp &&
                 GccUp > 4.0;
  std::printf("\n  shape (ICC smallest speedup, GCC largest, all > 1): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  return ShapeOk ? 0 : 1;
}
