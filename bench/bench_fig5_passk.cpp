//===- bench/bench_fig5_passk.cpp - Figure 5 reproduction ---------------------===//
//
// Reproduces paper Figure 5: the pass@k curve over the TSVC dataset, using
// the unbiased estimator of Chen et al. with n = 100 samples per test and
// "correct" adapted to checksum-Plausible (as in the paper). The published
// curve rises steeply until k ~ 20 and saturates near k = 50.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <cstdio>
#include <vector>

using namespace lv;
using namespace lv::bench;

/// Unbiased pass@k: 1 - C(n-c, k) / C(n, k).
static double passAtK(int N, int Correct, int K) {
  if (N - Correct < K)
    return 1.0;
  double P = 1.0;
  for (int I = 0; I < K; ++I)
    P *= static_cast<double>(N - Correct - I) / (N - I);
  return 1.0 - P;
}

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  printHeader("Figure 5: pass@k over the TSVC dataset (n = 100)");
  std::vector<TestCorpus> Corpus = buildCorpus(100, ExperimentSeed,
                                               Opt.Jobs, Opt.StorePath);

  const int Ks[] = {1, 2, 3, 4, 5, 10, 20, 30, 40, 50, 100};
  std::printf("\n  %6s %10s\n", "k", "pass@k");
  double AtOne = 0, AtTwenty = 0, AtFifty = 0, AtHundred = 0;
  for (int K : Ks) {
    double Sum = 0;
    for (const TestCorpus &TC : Corpus) {
      int Correct = 0;
      for (const CandidateRecord &S : TC.Samples)
        Correct += S.Plausible ? 1 : 0;
      Sum += passAtK(static_cast<int>(TC.Samples.size()), Correct, K);
    }
    double Avg = Sum / static_cast<double>(Corpus.size());
    std::printf("  %6d %10.3f  |", K, Avg);
    int Bars = static_cast<int>(Avg * 50);
    for (int I = 0; I < Bars; ++I)
      std::printf("#");
    std::printf("\n");
    if (K == 1)
      AtOne = Avg;
    if (K == 20)
      AtTwenty = Avg;
    if (K == 50)
      AtFifty = Avg;
    if (K == 100)
      AtHundred = Avg;
  }

  // Shape: steep rise to k=20, saturation beyond k=50 (paper Fig. 5).
  bool Steep = (AtTwenty - AtOne) > 2.0 * (AtHundred - AtTwenty);
  bool Saturates = (AtHundred - AtFifty) < 0.03;
  std::printf("\n  steep rise to k=20: %s; saturation after k=50: %s\n",
              Steep ? "OK" : "MISMATCH", Saturates ? "OK" : "MISMATCH");
  return Steep && Saturates ? 0 : 1;
}
