//===- bench/bench_fig6_speedup.cpp - Figure 6 + Table 1 reproduction ---------===//
//
// Reproduces paper Figure 6: run-time speedup of the (verified) LLM
// vectorizations over the GCC / Clang / ICC baselines, grouped by the six
// loop categories, on the modeled-cycle interpreter. The paper reports
// speedups from 1.1x to 9.4x, largest for Dependence(+Control Flow)
// categories where GCC/Clang do not vectorize, and ~1x (or below) for
// Naively Vectorizable and Reduction loops. Also prints Table 1 (compiler
// versions/flags).
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "compilers/Baselines.h"
#include "interp/Interp.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vir/Compile.h"
#include "vir/Lower.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace lv;
using namespace lv::bench;

namespace {

/// Modeled cycles for one function on a fixed workload.
double measureCycles(const minic::Function &F, int N) {
  vir::LowerResult L = vir::lowerToVIR(F);
  if (!L.ok())
    return -1;
  interp::CostModel CM;
  interp::ExecConfig Cfg;
  Cfg.Costs = &CM;
  interp::MemoryImage Mem;
  Rng R(99);
  for (const vir::RegionInfo &M : L.Fn->Memories) {
    (void)M;
    std::vector<int32_t> Buf(static_cast<size_t>(N + 64));
    for (int32_t &V : Buf)
      V = R.rangeInt(-100, 100);
    Mem.Regions.push_back(std::move(Buf));
  }
  std::vector<int32_t> Args;
  for (const vir::VParam &P : L.Fn->Params)
    if (!P.IsPointer)
      Args.push_back(P.Name == "n" ? N : 3);
  interp::ExecResult E = interp::execute(*L.Fn, Args, Mem, Cfg);
  if (!E.ok())
    return -1;
  return E.Cycles;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  printHeader("Table 1: compiler versions and flags");
  for (auto C : {compilers::CompilerId::GCC, compilers::CompilerId::Clang,
                 compilers::CompilerId::ICC}) {
    const compilers::CompilerInfo &I = compilers::compilerInfo(C);
    std::printf("  %-6s %-10s unvec: %s\n", I.Name, I.Version,
                I.UnvectorizedFlags);
    std::printf("  %-6s %-10s vec:   %s\n", "", "", I.VectorizedFlags);
  }

  printHeader("Figure 6: speedup of verified LLM vectorizations");
  std::printf("  building corpus and verifying candidates (--jobs %d)...\n",
              Opt.Jobs);
  std::vector<TestCorpus> Corpus = buildCorpus(100, ExperimentSeed,
                                               Opt.Jobs, Opt.StorePath);
  core::EquivConfig VCfg;
  VCfg.ScalarMax = 8;
  VCfg.MaxTerms = 120'000;
  VCfg.Alive2Budget = 500;
  VCfg.CUnrollBudget = 2'000;
  VCfg.SplitBudget = 300;
  VCfg.EnableSplitting = false; // funnel evidence lives in bench_table3
  std::vector<FunnelRecord> Funnel =
      runFunnel(Corpus, VCfg, Opt.Jobs, Opt.StorePath);

  const int N = 2048;
  struct CatStats {
    int Count = 0;
    double MinUp = 1e9, MaxUp = 0;
  };
  std::map<std::string, CatStats> PerCat;
  double GlobalMax = 0, GlobalMin = 1e9;
  int Verified = 0;

  std::printf("\n  %-14s %-26s %7s %7s %7s\n", "test", "category",
              "vs GCC", "vs Clang", "vs ICC");
  for (size_t I = 0; I < Funnel.size(); ++I) {
    const FunnelRecord &R = Funnel[I];
    if (!R.HadPlausible || R.Result.Final != core::EquivResult::Equivalent)
      continue;
    const tsvc::TsvcTest &T = *Corpus[I].Test;
    int Idx = Corpus[I].firstPlausible(100);
    minic::ParseResult VP = minic::parseFunction(
        Corpus[I].Samples[static_cast<size_t>(Idx)].Source);
    minic::ParseResult SP = minic::parseFunction(T.Source);
    if (!VP.ok() || !SP.ok())
      continue;
    double LlmCycles = measureCycles(*VP.Fn, N);
    if (LlmCycles <= 0)
      continue;
    ++Verified;
    double Ups[3];
    int K = 0;
    for (auto C : {compilers::CompilerId::GCC, compilers::CompilerId::Clang,
                   compilers::CompilerId::ICC}) {
      compilers::CompileOutcome O = compilers::compileWith(C, *SP.Fn);
      double Cycles = measureCycles(*O.Code, N) * O.CycleFactor;
      Ups[K++] = Cycles > 0 ? Cycles / LlmCycles : 0;
    }
    std::printf("  %-14s %-26s %7.2f %7.2f %7.2f\n", T.Name.c_str(),
                tsvc::categoryName(T.Cat), Ups[0], Ups[1], Ups[2]);
    CatStats &CS = PerCat[tsvc::categoryName(T.Cat)];
    ++CS.Count;
    for (double U : Ups) {
      CS.MinUp = std::min(CS.MinUp, U);
      CS.MaxUp = std::max(CS.MaxUp, U);
      GlobalMax = std::max(GlobalMax, U);
      GlobalMin = std::min(GlobalMin, U);
    }
  }

  std::printf("\n  per-category speedup ranges (verified tests):\n");
  for (const auto &[Cat, CS] : PerCat)
    std::printf("    %-28s n=%-3d  %.2fx .. %.2fx\n", Cat.c_str(), CS.Count,
                CS.MinUp, CS.MaxUp);
  std::printf("\n  verified tests measured: %d (paper: 57)\n", Verified);
  std::printf("  global speedup range: %.2fx .. %.2fx (paper: ~0.8x .. "
              "9.4x)\n",
              GlobalMin, GlobalMax);

  // Shape: dependence-category wins exist (>2x somewhere), global max is
  // below the lane count + overhead headroom, and some baseline beats the
  // LLM somewhere (slowdowns exist, as in the paper).
  bool BigWin = GlobalMax > 2.0;
  bool Bounded = GlobalMax < 12.0;
  bool SlowdownsExist = GlobalMin < 1.0;
  std::printf("  shape (big dependence wins, bounded, some slowdowns): "
              "%s/%s/%s\n",
              BigWin ? "OK" : "MISS", Bounded ? "OK" : "MISS",
              SlowdownsExist ? "OK" : "MISS");
  return BigWin && Bounded ? 0 : 1;
}
