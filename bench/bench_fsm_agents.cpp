//===- bench/bench_fsm_agents.cpp - §4.4 multi-agent FSM evaluation -----------===//
//
// Reproduces the paper's §4.4 experiments:
//  * §4.4.1 — single LLM invocation inside the multi-agent FSM (with Clang
//    dependence feedback) vs a bare single completion: the paper finds 96
//    vs 72 plausible tests (24 new).
//  * §4.4.2 — the FSM with a 10-attempt repair budget: 92 tests solved,
//    9 needing multiple iterations, maximum 7 attempts; including the s453
//    two-attempt repair walkthrough.
//
//===----------------------------------------------------------------------===//

#include "agents/Fsm.h"
#include "bench/Harness.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <cstdio>

using namespace lv;
using namespace lv::bench;

int main() {
  printHeader("Section 4.4.1: plausible tests with one LLM invocation");
  std::vector<TestCorpus> OneShot = buildCorpus(1);
  int Bare = tallyAt(OneShot, 1).Plausible;

  int FsmOne = 0;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    llm::SimulatedLLM M(ExperimentSeed);
    agents::FsmConfig Cfg;
    Cfg.MaxAttempts = 1;
    agents::MultiAgentFsm Fsm(M, Cfg);
    if (Fsm.run(T.Source).Plausible)
      ++FsmOne;
  }
  printRow3("bare single completion", "72", format("%d", Bare));
  printRow3("multi-agent FSM, 1 invocation", "96", format("%d", FsmOne));
  printRow3("new tests from agents+feedback", "24",
            format("%+d", FsmOne - Bare));

  printHeader("Section 4.4.2: FSM with 10-attempt repair budget");
  int Solved = 0, MultiIter = 0, MaxAttempts = 0;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    llm::SimulatedLLM M(ExperimentSeed);
    agents::FsmConfig Cfg;
    Cfg.MaxAttempts = 10;
    agents::MultiAgentFsm Fsm(M, Cfg);
    agents::FsmResult R = Fsm.run(T.Source);
    if (!R.Plausible)
      continue;
    ++Solved;
    if (R.Attempts > 1) {
      ++MultiIter;
      MaxAttempts = std::max(MaxAttempts, R.Attempts);
    }
  }
  printRow3("plausible within 10 attempts", "92", format("%d", Solved));
  printRow3("needed multiple iterations", "9", format("%d", MultiIter));
  printRow3("maximum attempts used", "7", format("%d", MaxAttempts));

  printHeader("Section 4.4.2: s453 repair walkthrough");
  {
    // A seed whose first attempt injects the wrong-induction fault, so the
    // transcript shows the paper's two-attempt repair.
    const char *S453 = tsvc::findTest("s453")->Source.c_str();
    bool Shown = false;
    for (uint64_t Seed = 0; Seed < 64 && !Shown; ++Seed) {
      llm::SimulatedLLM M(Seed);
      agents::FsmConfig Cfg;
      agents::MultiAgentFsm Fsm(M, Cfg);
      agents::FsmResult R = Fsm.run(S453);
      if (R.Plausible && R.Attempts >= 2) {
        std::printf("  seed %llu repaired s453 in %d attempts\n",
                    static_cast<unsigned long long>(Seed), R.Attempts);
        for (const agents::Message &Msg : R.Transcript) {
          std::string Brief = Msg.Content.substr(0, 100);
          for (char &Ch : Brief)
            if (Ch == '\n')
              Ch = ' ';
          std::printf("    %-16s -> %-16s %s...\n", Msg.From.c_str(),
                      Msg.To.c_str(), Brief.c_str());
        }
        Shown = true;
      }
    }
    if (!Shown)
      std::printf("  (no multi-attempt seed in range; repair not "
                  "exercised)\n");
  }

  bool ShapeOk = FsmOne > Bare && Solved >= MultiIter && Solved > 60 &&
                 MaxAttempts <= 10;
  std::printf("\n  shape (FSM beats bare completion; repairs within "
              "budget): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  return ShapeOk ? 0 : 1;
}
