//===- bench/bench_fsm_agents.cpp - §4.4 multi-agent FSM evaluation -----------===//
//
// Reproduces the paper's §4.4 experiments:
//  * §4.4.1 — single LLM invocation inside the multi-agent FSM (with Clang
//    dependence feedback) vs a bare single completion: the paper finds 96
//    vs 72 plausible tests (24 new).
//  * §4.4.2 — the FSM with a 10-attempt repair budget: 92 tests solved,
//    9 needing multiple iterations, maximum 7 attempts; including the s453
//    two-attempt repair walkthrough.
//
// All FSM runs go through svc::VectorizerService (Generate mode), one
// request per test, so the whole section parallelizes with --jobs.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "support/Format.h"

#include <cstdio>

using namespace lv;
using namespace lv::bench;

/// One Generate-mode request per TSVC test with the given repair budget.
static std::vector<svc::Request> fsmBatch(int MaxAttempts) {
  std::vector<svc::Request> Out;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    svc::Request R;
    R.Mode = svc::RunMode::Generate;
    R.Name = T.Name;
    R.ScalarSource = T.Source;
    R.Seed = ExperimentSeed;
    R.Fsm.MaxAttempts = MaxAttempts;
    Out.push_back(std::move(R));
  }
  return Out;
}

/// Task failures must stay loud in a gating bench (a Failed outcome has
/// default-false Plausible and would otherwise just skew the tallies).
static const svc::Outcome &checkOutcome(const svc::Outcome &O) {
  if (O.Failed) {
    std::fprintf(stderr, "bench_fsm_agents: task '%s' failed: %s\n",
                 O.Name.c_str(), O.Error.c_str());
    std::exit(1);
  }
  return O;
}

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  printHeader("Section 4.4.1: plausible tests with one LLM invocation");
  std::vector<TestCorpus> OneShot = buildCorpus(1, ExperimentSeed,
                                                Opt.Jobs, Opt.StorePath);
  int Bare = tallyAt(OneShot, 1).Plausible;

  // Constructed after buildCorpus so the (optional) persistent store only
  // ever has one live writer in this process.
  svc::ServiceConfig SC;
  SC.Workers = Opt.Jobs;
  SC.StorePath = Opt.StorePath;
  svc::VectorizerService Service(SC);

  int FsmOne = 0;
  for (const svc::Outcome &O :
       Service.waitBatch(Service.submitBatch(fsmBatch(1))))
    if (checkOutcome(O).Fsm.Plausible)
      ++FsmOne;
  printRow3("bare single completion", "72", format("%d", Bare));
  printRow3("multi-agent FSM, 1 invocation", "96", format("%d", FsmOne));
  printRow3("new tests from agents+feedback", "24",
            format("%+d", FsmOne - Bare));

  printHeader("Section 4.4.2: FSM with 10-attempt repair budget");
  int Solved = 0, MultiIter = 0, MaxAttempts = 0;
  for (const svc::Outcome &O :
       Service.waitBatch(Service.submitBatch(fsmBatch(10)))) {
    checkOutcome(O);
    if (!O.Fsm.Plausible)
      continue;
    ++Solved;
    if (O.Fsm.Attempts > 1) {
      ++MultiIter;
      MaxAttempts = std::max(MaxAttempts, O.Fsm.Attempts);
    }
  }
  printRow3("plausible within 10 attempts", "92", format("%d", Solved));
  printRow3("needed multiple iterations", "9", format("%d", MultiIter));
  printRow3("maximum attempts used", "7", format("%d", MaxAttempts));

  printHeader("Section 4.4.2: s453 repair walkthrough");
  {
    // Seeds whose first attempt injects the wrong-induction fault, so the
    // transcript shows the paper's two-attempt repair. Batched: one
    // Generate request per candidate seed, scanned in seed order.
    const tsvc::TsvcTest *S453 = tsvc::findTest("s453");
    std::vector<svc::Request> Batch;
    for (uint64_t Seed = 0; Seed < 64; ++Seed) {
      svc::Request R;
      R.Mode = svc::RunMode::Generate;
      R.Name = format("s453@%llu", static_cast<unsigned long long>(Seed));
      R.ScalarSource = S453->Source;
      R.Seed = Seed;
      Batch.push_back(std::move(R));
    }
    bool Shown = false;
    std::vector<svc::Ticket> Tickets = Service.submitBatch(std::move(Batch));
    for (uint64_t Seed = 0; Seed < Tickets.size() && !Shown; ++Seed) {
      const svc::Outcome &O = checkOutcome(Service.wait(Tickets[Seed]));
      if (!(O.Fsm.Plausible && O.Fsm.Attempts >= 2))
        continue;
      std::printf("  seed %llu repaired s453 in %d attempts\n",
                  static_cast<unsigned long long>(Seed), O.Fsm.Attempts);
      for (const agents::Message &Msg : O.Fsm.Transcript) {
        std::string Brief = Msg.Content.substr(0, 100);
        for (char &Ch : Brief)
          if (Ch == '\n')
            Ch = ' ';
        std::printf("    %-16s -> %-16s %s...\n", Msg.From.c_str(),
                    Msg.To.c_str(), Brief.c_str());
      }
      Shown = true;
    }
    if (!Shown)
      std::printf("  (no multi-attempt seed in range; repair not "
                  "exercised)\n");
  }

  svc::CacheStats CS = Service.cacheStats();
  std::printf("\n  verdict cache: %llu hits / %llu misses (%zu entries)\n",
              static_cast<unsigned long long>(CS.Hits),
              static_cast<unsigned long long>(CS.Misses), CS.Entries);

  bool ShapeOk = FsmOne > Bare && Solved >= MultiIter && Solved > 60 &&
                 MaxAttempts <= 10;
  std::printf("  shape (FSM beats bare completion; repairs within "
              "budget): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  return ShapeOk ? 0 : 1;
}
