//===- bench/bench_smt_core.cpp - SMT/interpreter micro-benchmarks ------------===//
//
// google-benchmark microbenchmarks for the verification substrate: term
// construction + rewriting throughput, bit-blasting + CDCL solving on
// representative circuit equivalences, the incremental-vs-scratch solving
// pattern behind the spatial-splitting stage, and the concrete
// interpreter's throughput (which bounds the checksum harness's cost).
//
// Solver statistics (conflicts, propagations, restarts, learnt clauses,
// mean LBD) are attached as benchmark counters, and the full result set is
// mirrored to BENCH_smt_core.json so the perf trajectory is machine
// readable across PRs.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "smt/Solve.h"
#include "vir/Compile.h"

#include <benchmark/benchmark.h>

#include <fstream>

using namespace lv;

static void BM_TermRewriting(benchmark::State &State) {
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    smt::TermId Acc = T.mkConst(0);
    for (int I = 0; I < 256; ++I)
      Acc = T.mkAdd(Acc, T.mkMul(X, T.mkConst(static_cast<uint32_t>(I))));
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_TermRewriting);

static void BM_SolveAdderEquivalence(benchmark::State &State) {
  uint64_t Conflicts = 0;
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    smt::TermId Y = T.mkVar("y");
    // (x + y) - y != x must be UNSAT.
    smt::TermId Q = T.mkNe(T.mkSub(T.mkAdd(X, Y), Y), X);
    smt::SmtResult R = smt::checkSat(T, Q);
    benchmark::DoNotOptimize(R.R);
    Conflicts += R.ConflictsUsed;
  }
  State.counters["conflicts"] = static_cast<double>(Conflicts);
}
BENCHMARK(BM_SolveAdderEquivalence);

static void BM_SolveShiftMulEquivalence(benchmark::State &State) {
  uint64_t Conflicts = 0;
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    // x*5 != (x<<2) + x must be UNSAT (a real vectorizer rewrite).
    smt::TermId Q = T.mkNe(T.mkMul(X, T.mkConst(5)),
                           T.mkAdd(T.mkShl(X, T.mkConst(2)), X));
    smt::SmtResult R = smt::checkSat(T, Q);
    benchmark::DoNotOptimize(R.R);
    Conflicts += R.ConflictsUsed;
  }
  State.counters["conflicts"] = static_cast<double>(Conflicts);
}
BENCHMARK(BM_SolveShiftMulEquivalence);

static void BM_SolveCounterexample(benchmark::State &State) {
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    smt::TermId Y = T.mkVar("y");
    // SAT instance with model extraction.
    smt::TermId Q = T.mkAnd(T.mkEq(T.mkMul(X, Y), T.mkConst(391)),
                            T.mkUlt(X, T.mkConst(100)));
    benchmark::DoNotOptimize(smt::checkSat(T, Q).Model.size());
  }
}
BENCHMARK(BM_SolveCounterexample);

//===----------------------------------------------------------------------===//
// The spatial-splitting pattern: one shared encoding, many small queries.
//===----------------------------------------------------------------------===//

namespace {

/// Builds the shared "formula" — a shift-add multiplier equivalence over a
/// bounded domain, standing in for the common symbolic encoding both sides
/// of a refinement query share — plus NumCells cheap per-cell predicates.
struct SplitFixture {
  smt::TermTable T;
  smt::TermId Domain;
  std::vector<smt::TermId> CellQueries;

  explicit SplitFixture(int NumCells) {
    smt::TermId X = T.mkVar("x");
    smt::TermId Y = T.mkVar("y");
    Domain = T.mkAnd(T.mkUlt(X, T.mkConst(1u << 12)),
                     T.mkUlt(Y, T.mkConst(1u << 12)));
    // Shared structure: both "sides" compute x*9 + y differently.
    smt::TermId Lhs = T.mkAdd(T.mkMul(X, T.mkConst(9)), Y);
    smt::TermId Rhs =
        T.mkAdd(T.mkAdd(T.mkShl(X, T.mkConst(3)), X), Y);
    for (int C = 0; C < NumCells; ++C) {
      // Per-cell disagreement at offset C: unsat cell queries, as in the
      // splitting stage of an equivalent pair.
      smt::TermId Off = T.mkConst(static_cast<uint32_t>(C));
      CellQueries.push_back(
          T.mkNe(T.mkAdd(Lhs, Off), T.mkAdd(Rhs, Off)));
    }
  }
};

constexpr int SplitCells = 8;

} // namespace

static void BM_SplitCellsScratch(benchmark::State &State) {
  // Seed behaviour: every per-cell query re-blasts the shared encoding
  // into a cold solver.
  uint64_t Conflicts = 0, Props = 0;
  for (auto _ : State) {
    SplitFixture F(SplitCells);
    for (smt::TermId Q : F.CellQueries) {
      smt::SmtResult R = smt::checkSat(F.T, F.T.mkAnd(F.Domain, Q));
      benchmark::DoNotOptimize(R.R);
      Conflicts += R.ConflictsUsed;
      Props += R.PropagationsUsed;
    }
  }
  State.counters["conflicts"] = static_cast<double>(Conflicts);
  State.counters["propagations"] = static_cast<double>(Props);
  State.SetItemsProcessed(State.iterations() * SplitCells);
}
BENCHMARK(BM_SplitCellsScratch);

static void BM_SplitCellsIncremental(benchmark::State &State) {
  // Incremental backend: the shared encoding blasts once; per-cell
  // queries run under assumption literals with learnt-clause reuse.
  uint64_t Conflicts = 0, Props = 0;
  uint64_t Restarts = 0, Learnt = 0;
  double AvgLBD = 0;
  for (auto _ : State) {
    SplitFixture F(SplitCells);
    smt::IncrementalSolver IS(F.T);
    IS.assertAlways(F.Domain);
    for (smt::TermId Q : F.CellQueries) {
      smt::SmtResult R = IS.check(Q);
      benchmark::DoNotOptimize(R.R);
      Conflicts += R.ConflictsUsed;
      Props += R.PropagationsUsed;
    }
    Restarts += IS.stats().Restarts;
    Learnt += IS.stats().LearntTotal;
    AvgLBD = IS.stats().avgLBD();
  }
  State.counters["conflicts"] = static_cast<double>(Conflicts);
  State.counters["propagations"] = static_cast<double>(Props);
  State.counters["restarts"] = static_cast<double>(Restarts);
  State.counters["learnt"] = static_cast<double>(Learnt);
  State.counters["avg_lbd"] = AvgLBD;
  State.SetItemsProcessed(State.iterations() * SplitCells);
}
BENCHMARK(BM_SplitCellsIncremental);

//===----------------------------------------------------------------------===//
// Cone projection: many small independent queries over one large shared
// encoding (the shared-learnt funnel pattern).
//===----------------------------------------------------------------------===//

namespace {

/// One shared context holding ConeCells independent equivalence problems,
/// each over its own variables. A shared-learnt solver accumulates every
/// cell's encoding in one clause DB; without cone projection each query
/// pays propagation across all sibling encodings, with it each query is
/// confined to its own cone.
struct ConeFixture {
  smt::TermTable T;
  smt::TermId Domain;
  std::vector<smt::TermId> CellQueries;

  explicit ConeFixture(int NumCells) {
    Domain = T.mkTrue();
    for (int C = 0; C < NumCells; ++C) {
      char NameX[16], NameY[16];
      std::snprintf(NameX, sizeof(NameX), "x%d", C);
      std::snprintf(NameY, sizeof(NameY), "y%d", C);
      smt::TermId X = T.mkVar(NameX);
      smt::TermId Y = T.mkVar(NameY);
      Domain = T.mkAnd(Domain,
                       T.mkAnd(T.mkUlt(X, T.mkConst(1u << 12)),
                               T.mkUlt(Y, T.mkConst(1u << 12))));
      // x*9 + y == (x<<3) + x + y, negated: an UNSAT query per cell.
      smt::TermId Lhs = T.mkAdd(T.mkMul(X, T.mkConst(9)), Y);
      smt::TermId Rhs = T.mkAdd(T.mkAdd(T.mkShl(X, T.mkConst(3)), X), Y);
      CellQueries.push_back(T.mkNe(Lhs, Rhs));
    }
  }
};

constexpr int ConeCells = 48;

// Propagation counts and per-query verdicts of the two modes' most
// recent runs, for the stat-based gates checked in main() after the
// benchmarks finish. The verdict gate compares the modes against each
// other (projection must not move a verdict), not against a fixed
// expectation — a solver improvement that decides a cell within budget
// must not read as a failure.
uint64_t ConeOffProps = 0;
uint64_t ConeOnProps = 0;
std::vector<int> ConeOffVerdicts, ConeOnVerdicts;

void runConeCells(benchmark::State &State, bool Cone) {
  // Budget-bound queries, the funnel's shape: every query returns Unknown
  // after the same number of conflicts in both modes, so the difference
  // is pure per-conflict cost — how much of the shared DB each query's
  // search drags along.
  smt::SatBudget Budget;
  Budget.MaxConflicts = 100;
  uint64_t Props = 0, Conflicts = 0, ConeVars = 0;
  std::vector<int> &Verdicts = Cone ? ConeOnVerdicts : ConeOffVerdicts;
  for (auto _ : State) {
    ConeFixture F(ConeCells);
    smt::IncrementalSolver IS(F.T);
    IS.assertAlways(F.Domain);
    smt::SatOptions Opts;
    Opts.ConeProjection = Cone;
    IS.setOptions(Opts);
    Props = Conflicts = ConeVars = 0;
    Verdicts.clear();
    for (smt::TermId Q : F.CellQueries) {
      smt::SmtResult R = IS.check(Q, Budget);
      Verdicts.push_back(static_cast<int>(R.R));
      Props += R.PropagationsUsed;
      Conflicts += R.ConflictsUsed;
      ConeVars += R.ConeVars;
    }
  }
  (Cone ? ConeOnProps : ConeOffProps) = Props;
  State.counters["propagations"] = static_cast<double>(Props);
  State.counters["conflicts"] = static_cast<double>(Conflicts);
  if (Cone)
    State.counters["cone_vars"] = static_cast<double>(ConeVars);
  State.SetItemsProcessed(State.iterations() * ConeCells);
}

} // namespace

static void BM_ConeCellsSharedLearnt(benchmark::State &State) {
  // Shared-learnt baseline: every query pays the whole clause DB.
  runConeCells(State, /*Cone=*/false);
}
BENCHMARK(BM_ConeCellsSharedLearnt);

static void BM_ConeCellsProjected(benchmark::State &State) {
  // Cone projection on the same shared DB: decisions and propagation are
  // confined to each query's own cone.
  runConeCells(State, /*Cone=*/true);
}
BENCHMARK(BM_ConeCellsProjected);

static void BM_LearntDBReduction(benchmark::State &State) {
  // A long-budget hard instance (PHP 8/7): exercises LBD scoring,
  // reduceDB and the clause-arena GC on the learnt set.
  uint64_t Reduces = 0, Deleted = 0;
  for (auto _ : State) {
    const int N = 8;
    smt::SatSolver S;
    std::vector<std::vector<smt::Var>> P(
        N, std::vector<smt::Var>(N - 1));
    for (auto &Row : P)
      for (smt::Var &V : Row)
        V = S.newVar();
    for (int I = 0; I < N; ++I) {
      std::vector<smt::Lit> C;
      for (int H = 0; H < N - 1; ++H)
        C.push_back(smt::Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)],
                             false));
      S.addClause(C);
    }
    for (int H = 0; H < N - 1; ++H)
      for (int I = 0; I < N; ++I)
        for (int J = I + 1; J < N; ++J)
          S.addClause(
              smt::Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)], true),
              smt::Lit(P[static_cast<size_t>(J)][static_cast<size_t>(H)], true));
    benchmark::DoNotOptimize(S.solve());
    Reduces += S.stats().ReduceDBs;
    Deleted += S.stats().LearntDeleted;
  }
  State.counters["reduce_dbs"] = static_cast<double>(Reduces);
  State.counters["learnt_deleted"] = static_cast<double>(Deleted);
}
BENCHMARK(BM_LearntDBReduction);

static void BM_InterpThroughput(benchmark::State &State) {
  vir::CompileResult C = vir::compileFunction(
      "void f(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * c[i] + b[i]; }");
  const int N = 4096;
  for (auto _ : State) {
    interp::MemoryImage Mem;
    Mem.Regions.assign(3, std::vector<int32_t>(N + 8, 3));
    benchmark::DoNotOptimize(interp::execute(*C.Fn, {N}, Mem).Steps);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_InterpThroughput);

static void BM_VectorInterpThroughput(benchmark::State &State) {
  vir::CompileResult C = vir::compileFunction(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  const int N = 4096;
  for (auto _ : State) {
    interp::MemoryImage Mem;
    Mem.Regions.assign(2, std::vector<int32_t>(N + 8, 3));
    benchmark::DoNotOptimize(interp::execute(*C.Fn, {N}, Mem).Steps);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_VectorInterpThroughput);

int main(int argc, char **argv) {
  // Mirror results (name, iterations, ns/op, counters) to JSON so CI can
  // track the perf trajectory. Injected as flags so explicit
  // --benchmark_out on the command line still wins. --smoke (used by CI)
  // caps measurement time so every benchmark runs ~one iteration: enough
  // to exercise the code paths and the stat gates, fast enough for a
  // per-push workflow.
  std::vector<char *> Args;
  bool HasOut = false, Smoke = false;
  Args.push_back(argv[0]);
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--smoke") {
      Smoke = true;
      continue;
    }
    if (std::string(argv[I]).rfind("--benchmark_out=", 0) == 0)
      HasOut = true;
    Args.push_back(argv[I]);
  }
  std::string OutFlag = "--benchmark_out=BENCH_smt_core.json";
  std::string FmtFlag = "--benchmark_out_format=json";
  std::string SmokeFlag = "--benchmark_min_time=0.001";
  if (!HasOut) {
    Args.push_back(&OutFlag[0]);
    Args.push_back(&FmtFlag[0]);
  }
  if (Smoke)
    Args.push_back(&SmokeFlag[0]);
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Stat-based gates on the cone-projection pattern: identical verdicts,
  // and the projected mode must cut shared-learnt propagation by >= 1.5x.
  // Only enforced when both cone benchmarks ran — a --benchmark_filter
  // selecting other benchmarks is not a gate failure — except under
  // --smoke (the CI mode), where the gates are the point.
  if (ConeOffProps == 0 || ConeOnProps == 0) {
    if (Smoke) {
      std::fprintf(stderr, "cone gate: benchmarks did not run\n");
      return 1;
    }
    std::printf("cone gate: skipped (cone benchmarks filtered out)\n");
    return 0;
  }
  double Ratio = static_cast<double>(ConeOffProps) /
                 static_cast<double>(ConeOnProps);
  bool VerdictsOk = ConeOffVerdicts == ConeOnVerdicts;
  if (!VerdictsOk)
    for (size_t I = 0;
         I < ConeOffVerdicts.size() && I < ConeOnVerdicts.size(); ++I)
      if (ConeOffVerdicts[I] != ConeOnVerdicts[I])
        std::fprintf(stderr,
                     "cone gate: query %zu verdict moved (%d -> %d)\n", I,
                     ConeOffVerdicts[I], ConeOnVerdicts[I]);
  std::printf("cone gate: %llu -> %llu propagations (%.2fx, need >=1.5x): "
              "%s; verdicts %s\n",
              static_cast<unsigned long long>(ConeOffProps),
              static_cast<unsigned long long>(ConeOnProps), Ratio,
              Ratio >= 1.5 ? "OK" : "FAIL",
              VerdictsOk ? "OK" : "MISMATCH");
  return Ratio >= 1.5 && VerdictsOk ? 0 : 1;
}
