//===- bench/bench_smt_core.cpp - SMT/interpreter micro-benchmarks ------------===//
//
// google-benchmark microbenchmarks for the verification substrate: term
// construction + rewriting throughput, bit-blasting + CDCL solving on
// representative circuit equivalences, and the concrete interpreter's
// throughput (which bounds the checksum harness's cost).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "smt/Solve.h"
#include "vir/Compile.h"

#include <benchmark/benchmark.h>

using namespace lv;

static void BM_TermRewriting(benchmark::State &State) {
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    smt::TermId Acc = T.mkConst(0);
    for (int I = 0; I < 256; ++I)
      Acc = T.mkAdd(Acc, T.mkMul(X, T.mkConst(static_cast<uint32_t>(I))));
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_TermRewriting);

static void BM_SolveAdderEquivalence(benchmark::State &State) {
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    smt::TermId Y = T.mkVar("y");
    // (x + y) - y != x must be UNSAT.
    smt::TermId Q = T.mkNe(T.mkSub(T.mkAdd(X, Y), Y), X);
    benchmark::DoNotOptimize(smt::checkSat(T, Q).R);
  }
}
BENCHMARK(BM_SolveAdderEquivalence);

static void BM_SolveShiftMulEquivalence(benchmark::State &State) {
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    // x*5 != (x<<2) + x must be UNSAT (a real vectorizer rewrite).
    smt::TermId Q = T.mkNe(T.mkMul(X, T.mkConst(5)),
                           T.mkAdd(T.mkShl(X, T.mkConst(2)), X));
    benchmark::DoNotOptimize(smt::checkSat(T, Q).R);
  }
}
BENCHMARK(BM_SolveShiftMulEquivalence);

static void BM_SolveCounterexample(benchmark::State &State) {
  for (auto _ : State) {
    smt::TermTable T;
    smt::TermId X = T.mkVar("x");
    smt::TermId Y = T.mkVar("y");
    // SAT instance with model extraction.
    smt::TermId Q = T.mkAnd(T.mkEq(T.mkMul(X, Y), T.mkConst(391)),
                            T.mkUlt(X, T.mkConst(100)));
    benchmark::DoNotOptimize(smt::checkSat(T, Q).Model.size());
  }
}
BENCHMARK(BM_SolveCounterexample);

static void BM_InterpThroughput(benchmark::State &State) {
  vir::CompileResult C = vir::compileFunction(
      "void f(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * c[i] + b[i]; }");
  const int N = 4096;
  for (auto _ : State) {
    interp::MemoryImage Mem;
    Mem.Regions.assign(3, std::vector<int32_t>(N + 8, 3));
    benchmark::DoNotOptimize(interp::execute(*C.Fn, {N}, Mem).Steps);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_InterpThroughput);

static void BM_VectorInterpThroughput(benchmark::State &State) {
  vir::CompileResult C = vir::compileFunction(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  const int N = 4096;
  for (auto _ : State) {
    interp::MemoryImage Mem;
    Mem.Regions.assign(2, std::vector<int32_t>(N + 8, 3));
    benchmark::DoNotOptimize(interp::execute(*C.Fn, {N}, Mem).Steps);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_VectorInterpThroughput);

BENCHMARK_MAIN();
