//===- bench/bench_table2_checksum.cpp - Table 2 reproduction -----------------===//
//
// Reproduces paper Table 2: checksum-based classification of LLM-generated
// vectorizations at k = 1, 10 and 100 code completions over the 149-test
// TSVC dataset. Paper numbers: Plausible 72/107/125, Not-equivalent
// 62/40/24, Cannot-compile 15/2/0.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "support/Format.h"

#include <cstdio>

using namespace lv;
using namespace lv::bench;

int main() {
  printHeader("Table 2: checksum-based testing at k completions");
  std::printf("  sampling 100 completions per test over %zu TSVC tests "
              "(seed 0x%llx)...\n",
              tsvc::suite().size(),
              static_cast<unsigned long long>(ExperimentSeed));
  std::vector<TestCorpus> Corpus = buildCorpus(100);

  struct Row {
    int K;
    int PaperPlausible, PaperNotEq, PaperNoCompile;
  };
  const Row Rows[] = {{1, 72, 62, 15}, {10, 107, 40, 2}, {100, 125, 24, 0}};

  std::printf("\n  %-18s %8s %8s %8s\n", "", "k=1", "k=10", "k=100");
  std::string PlausLine, NotEqLine, NoCompLine;
  ChecksumTally Tallies[3];
  for (int I = 0; I < 3; ++I)
    Tallies[I] = tallyAt(Corpus, Rows[I].K);
  auto row = [&](const char *Name, auto Get, auto GetPaper) {
    std::printf("  %-18s", Name);
    for (int I = 0; I < 3; ++I)
      std::printf(" %8d", Get(Tallies[I]));
    std::printf("   (paper:");
    for (int I = 0; I < 3; ++I)
      std::printf(" %d", GetPaper(Rows[I]));
    std::printf(")\n");
  };
  row("Plausible", [](const ChecksumTally &T) { return T.Plausible; },
      [](const Row &R) { return R.PaperPlausible; });
  row("Not equivalent",
      [](const ChecksumTally &T) { return T.NotEquivalent; },
      [](const Row &R) { return R.PaperNotEq; });
  row("Cannot compile",
      [](const ChecksumTally &T) { return T.CannotCompile; },
      [](const Row &R) { return R.PaperNoCompile; });

  // Shape checks the reproduction cares about (monotone growth of
  // plausible, decay of compile failures).
  bool ShapeOk = Tallies[0].Plausible < Tallies[1].Plausible &&
                 Tallies[1].Plausible <= Tallies[2].Plausible &&
                 Tallies[0].CannotCompile >= Tallies[1].CannotCompile &&
                 Tallies[1].CannotCompile >= Tallies[2].CannotCompile;
  std::printf("\n  shape (plausible grows, compile failures decay): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  return ShapeOk ? 0 : 1;
}
