//===- bench/bench_table2_checksum.cpp - Table 2 reproduction -----------------===//
//
// Reproduces paper Table 2: checksum-based classification of LLM-generated
// vectorizations at k = 1, 10 and 100 code completions over the 149-test
// TSVC dataset. Paper numbers: Plausible 72/107/125, Not-equivalent
// 62/40/24, Cannot-compile 15/2/0.
//
// The corpus is built twice through svc::VectorizerService — once on one
// worker, once on --jobs workers (default 4) — asserting bit-identical
// classifications and measuring the end-to-end wall-time win from batched
// parallel dispatch. Both arms and the worker counts land in
// BENCH_table2.json.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace lv;
using namespace lv::bench;

static uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  // The parallel arm defaults to 4 workers; an explicit --jobs (even
  // --jobs 1) overrides it.
  int ParJobs = Opt.JobsSet ? Opt.Jobs : 4;

  printHeader("Table 2: checksum-based testing at k completions");
  std::printf("  sampling 100 completions per test over %zu TSVC tests "
              "(seed 0x%llx)...\n",
              tsvc::suite().size(),
              static_cast<unsigned long long>(ExperimentSeed));

  std::printf("  [1/2] service at 1 worker...\n");
  uint64_t T0 = nowNanos();
  std::vector<TestCorpus> Corpus = buildCorpus(100, ExperimentSeed, 1);
  uint64_t SeqNanos = nowNanos() - T0;
  std::printf("  [2/2] service at %d workers...\n", ParJobs);
  T0 = nowNanos();
  std::vector<TestCorpus> CorpusPar = buildCorpus(100, ExperimentSeed,
                                                  ParJobs);
  uint64_t ParNanos = nowNanos() - T0;

  // Determinism across worker counts: every sample must classify
  // identically (sources are pure functions of (seed, test, k)).
  int ParallelMismatches = 0;
  for (size_t I = 0; I < Corpus.size(); ++I) {
    if (Corpus[I].Samples.size() != CorpusPar[I].Samples.size()) {
      ++ParallelMismatches;
      continue;
    }
    for (size_t J = 0; J < Corpus[I].Samples.size(); ++J) {
      const CandidateRecord &A = Corpus[I].Samples[J];
      const CandidateRecord &B = CorpusPar[I].Samples[J];
      if (A.Source != B.Source || A.Compiles != B.Compiles ||
          A.Plausible != B.Plausible)
        ++ParallelMismatches;
    }
  }

  struct Row {
    int K;
    int PaperPlausible, PaperNotEq, PaperNoCompile;
  };
  const Row Rows[] = {{1, 72, 62, 15}, {10, 107, 40, 2}, {100, 125, 24, 0}};

  std::printf("\n  %-18s %8s %8s %8s\n", "", "k=1", "k=10", "k=100");
  ChecksumTally Tallies[3];
  for (int I = 0; I < 3; ++I)
    Tallies[I] = tallyAt(Corpus, Rows[I].K);
  auto row = [&](const char *Name, auto Get, auto GetPaper) {
    std::printf("  %-18s", Name);
    for (int I = 0; I < 3; ++I)
      std::printf(" %8d", Get(Tallies[I]));
    std::printf("   (paper:");
    for (int I = 0; I < 3; ++I)
      std::printf(" %d", GetPaper(Rows[I]));
    std::printf(")\n");
  };
  row("Plausible", [](const ChecksumTally &T) { return T.Plausible; },
      [](const Row &R) { return R.PaperPlausible; });
  row("Not equivalent",
      [](const ChecksumTally &T) { return T.NotEquivalent; },
      [](const Row &R) { return R.PaperNotEq; });
  row("Cannot compile",
      [](const ChecksumTally &T) { return T.CannotCompile; },
      [](const Row &R) { return R.PaperNoCompile; });

  // Shape checks the reproduction cares about (monotone growth of
  // plausible, decay of compile failures).
  bool ShapeOk = Tallies[0].Plausible < Tallies[1].Plausible &&
                 Tallies[1].Plausible <= Tallies[2].Plausible &&
                 Tallies[0].CannotCompile >= Tallies[1].CannotCompile &&
                 Tallies[1].CannotCompile >= Tallies[2].CannotCompile;
  double Speedup = ParNanos
                       ? static_cast<double>(SeqNanos) /
                             static_cast<double>(ParNanos)
                       : 1.0;
  bool MatchOk = ParallelMismatches == 0;
  // The speedup gate needs hardware to parallelize on; on a single
  // hardware thread the parallel arm degenerates to the serial one and
  // only the determinism check is meaningful.
  unsigned HwThreads = std::thread::hardware_concurrency();
  bool CanParallelize = HwThreads >= 2 && ParJobs > 1;
  bool SpeedupOk = !CanParallelize || Speedup > 1.1;
  std::printf("\n  end-to-end wall: %8.1fms at 1 worker, %8.1fms at %d "
              "workers (%.2fx, %u hardware threads)\n",
              static_cast<double>(SeqNanos) / 1e6,
              static_cast<double>(ParNanos) / 1e6, ParJobs, Speedup,
              HwThreads);
  std::printf("  shape (plausible grows, compile failures decay): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  std::printf("  bit-identical classification across worker counts: %s\n",
              MatchOk ? "OK" : "MISMATCH");
  std::printf("  parallel dispatch wins (> 1.1x): %s\n",
              !CanParallelize
                  ? "SKIPPED (no parallelism: 1 hardware thread or "
                    "--jobs 1)"
                  : (SpeedupOk ? "OK" : "MISMATCH"));

  std::string J = "{\n";
  appendf(J, "  \"name\": \"bench_table2_checksum\",\n");
  appendf(J, "  \"tallies\": {\n");
  for (int I = 0; I < 3; ++I)
    appendf(J,
            "    \"k%d\": {\"plausible\": %d, \"noteq\": %d, "
            "\"nocompile\": %d}%s\n",
            Rows[I].K, Tallies[I].Plausible, Tallies[I].NotEquivalent,
            Tallies[I].CannotCompile, I == 2 ? "" : ",");
  appendf(J, "  },\n");
  appendf(J,
          "  \"arms\": [\n"
          "    {\"jobs\": 1, \"wall_ns\": %llu},\n"
          "    {\"jobs\": %d, \"wall_ns\": %llu}\n  ],\n",
          static_cast<unsigned long long>(SeqNanos), ParJobs,
          static_cast<unsigned long long>(ParNanos));
  appendf(J,
          "  \"speedup\": %.3f,\n  \"hardware_threads\": %u,\n"
          "  \"parallel_mismatches\": %d,\n",
          Speedup, HwThreads, ParallelMismatches);
  appendf(J, "  \"shape_ok\": %s,\n  \"speedup_ok\": %s\n}\n",
          ShapeOk ? "true" : "false", SpeedupOk ? "true" : "false");
  std::ofstream("BENCH_table2.json") << J;

  return ShapeOk && MatchOk && SpeedupOk ? 0 : 1;
}
