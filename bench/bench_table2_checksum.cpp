//===- bench/bench_table2_checksum.cpp - Table 2 reproduction -----------------===//
//
// Reproduces paper Table 2 (checksum-based classification of LLM-generated
// vectorizations at k = 1, 10, 100 over the 149-test TSVC dataset; paper
// numbers: Plausible 72/107/125, Not-equivalent 62/40/24, Cannot-compile
// 15/2/0) and A/B-measures the testing stage itself:
//
//   arm "tree_walk"       — the seed path: per-candidate sequential
//                           runChecksumTest on the tree-walk interpreter
//                           (scalar reference re-run per candidate).
//   arm "bytecode_batch"  — the PR-5 path: compile-once bytecode VM +
//                           runChecksumBatch (inputs built and scalar run
//                           once per input set, candidates replayed via
//                           image restore).
//
// Exit gates: bit-identical checksum verdicts between the arms on every
// (test, candidate) pair; bit-identical modeled cycle counts between the
// engines across the corpus; >= 2x wall-clock reduction on the checksum
// stage; and the svc::VectorizerService Sample-mode routing (batch + cache
// composition) reproducing the same tallies. The svc phase additionally
// runs traced on clean obs state: per-stage span sums and metrics
// counters must reproduce the StageInterpWork tally exactly, the
// trace/metrics artifacts must be well-formed JSON, and (full mode) the
// measured tracing overhead on the checksum stage must stay under 3%.
// `--smoke` shrinks bounds and runs the parity gates only (CI mode).
// Results land in BENCH_table2.json via the shared bench JSON writer.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "interp/Bytecode.h"
#include "llm/Client.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vir/Compile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>

using namespace lv;
using namespace lv::bench;

static uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// One unique candidate source for a test (the corpora repeat sources;
/// both arms classify each distinct source once, as the svc checksum
/// cache already arranged for the seed path).
struct UniqueCand {
  std::string Source;
  vir::VFunctionPtr Fn; ///< Null when the candidate does not compile.
  bool Eligible = false; ///< Compiles, scalar ok, contains intrinsics.
  std::vector<size_t> Samples; ///< Sample indices using this source.
  interp::ChecksumOutcome TreeOut, BcOut;
};

struct TestSet {
  const tsvc::TsvcTest *Test = nullptr;
  vir::VFunctionPtr Scalar;
  std::vector<UniqueCand> Cands;
  std::vector<int> SampleCand;  ///< Sample index -> unique-cand index.
};

std::string verdictString(const interp::ChecksumOutcome &O) {
  return format("%d|%s|%s|%d|%d|%d|%s", static_cast<int>(O.Verdict),
                O.Detail.c_str(), O.FirstMismatch.Where.c_str(),
                O.FirstMismatch.N, O.FirstMismatch.Expected,
                O.FirstMismatch.Actual, O.FirstMismatch.TrapMsg.c_str());
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  // The A/B arms must run untraced (they are the baseline the tracing
  // overhead is measured against); the dedicated phases below flip
  // tracing back on.
  const bool TraceRequested = obs::tracingEnabled();
  obs::setTracingEnabled(false);
  int SvcJobs = Opt.JobsSet ? Opt.Jobs : (Smoke ? 1 : 4);
  const int K = Smoke ? 8 : 100;

  interp::ChecksumConfig BaseCfg;
  if (Smoke) {
    BaseCfg.RunsPerN = 1;
    BaseCfg.NValues = {0, 8};
    BaseCfg.BufferLen = 64;
  }
  interp::ChecksumConfig TreeCfg = BaseCfg;
  TreeCfg.UseBytecode = false;
  interp::ChecksumConfig BcCfg = BaseCfg; // UseBytecode = true (default)

  printHeader(Smoke ? "Table 2: checksum testing (smoke: parity gates)"
                    : "Table 2: checksum-based testing at k completions");
  std::printf("  sampling %d completions per test over %zu TSVC tests "
              "(seed 0x%llx)...\n",
              K, tsvc::suite().size(),
              static_cast<unsigned long long>(ExperimentSeed));

  // [1/4] Corpus generation: the §4.1.1 sampling setting, deduplicated
  // per test (repeat completions share one classification in both arms).
  llm::ClientFactory Factory = llm::simulatedClientFactory();
  std::vector<TestSet> Sets;
  Sets.reserve(tsvc::suite().size());
  size_t TotalSamples = 0, TotalUnique = 0, TotalEligible = 0;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    TestSet S;
    S.Test = &T;
    vir::CompileResult SC = vir::compileFunction(T.Source);
    bool ScalarOk = SC.ok();
    if (ScalarOk)
      S.Scalar = std::move(SC.Fn);
    std::unique_ptr<llm::LLMClient> Client = Factory(ExperimentSeed);
    llm::Prompt P;
    P.ScalarSource = T.Source;
    std::map<std::string, size_t> Idx;
    for (int I = 0; I < K; ++I) {
      llm::Completion C = Client->complete(P, static_cast<uint64_t>(I));
      auto It = Idx.find(C.Source);
      size_t CI;
      if (It == Idx.end()) {
        CI = S.Cands.size();
        Idx.emplace(C.Source, CI);
        UniqueCand U;
        U.Source = C.Source;
        vir::CompileResult VC = vir::compileFunction(C.Source);
        if (VC.ok())
          U.Fn = std::move(VC.Fn);
        U.Eligible = U.Fn && ScalarOk &&
                     C.Source.find("_mm256_") != std::string::npos;
        S.Cands.push_back(std::move(U));
      } else {
        CI = It->second;
      }
      S.Cands[CI].Samples.push_back(static_cast<size_t>(I));
      S.SampleCand.push_back(static_cast<int>(CI));
      ++TotalSamples;
    }
    TotalUnique += S.Cands.size();
    for (const UniqueCand &U : S.Cands)
      TotalEligible += U.Eligible ? 1 : 0;
    Sets.push_back(std::move(S));
  }
  std::printf("  corpus: %zu samples, %zu unique candidates (%zu "
              "checksum-eligible)\n",
              TotalSamples, TotalUnique, TotalEligible);

  // Both arms run Reps times; the minimum wall is the noise-robust
  // steady-state estimate on a shared host (every repetition redoes the
  // full classification — RNG draws, scalar runs, candidate runs — and
  // repetitions after the first measure the warm bytecode-program cache,
  // which is precisely the compile-once amortization the VM claims).
  const int Reps = Smoke ? 1 : 3;

  // [2/4] Arm A — seed path: tree-walk, sequential, per-candidate scalar
  // re-runs (no memo, no batch).
  std::printf("  [arm 1/2] tree-walk sequential checksum (x%d)...\n", Reps);
  uint64_t TreeNanos = ~0ULL;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    uint64_t T0 = nowNanos();
    for (TestSet &S : Sets)
      for (UniqueCand &U : S.Cands)
        if (U.Eligible)
          U.TreeOut = interp::runChecksumTest(*S.Scalar, *U.Fn, TreeCfg);
    TreeNanos = std::min(TreeNanos, nowNanos() - T0);
  }

  // [3/4] Arm B — bytecode VM + batched harness.
  std::printf("  [arm 2/2] bytecode + batched checksum (x%d)...\n", Reps);
  uint64_t BcNanos = ~0ULL;
  uint64_t BcScalarRuns = 0, BcInputSets = 0;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    BcScalarRuns = BcInputSets = 0;
    uint64_t T0 = nowNanos();
    for (TestSet &S : Sets) {
      std::vector<const vir::VFunction *> Fns;
      std::vector<size_t> Which;
      for (size_t I = 0; I < S.Cands.size(); ++I)
        if (S.Cands[I].Eligible) {
          Fns.push_back(S.Cands[I].Fn.get());
          Which.push_back(I);
        }
      if (Fns.empty())
        continue;
      interp::ChecksumBatchResult BR =
          interp::runChecksumBatch(*S.Scalar, Fns, BcCfg);
      for (size_t I = 0; I < Which.size(); ++I)
        S.Cands[Which[I]].BcOut = std::move(BR.Outcomes[I]);
      BcScalarRuns += BR.ScalarRuns;
      BcInputSets += BR.InputSets;
    }
    BcNanos = std::min(BcNanos, nowNanos() - T0);
  }

  // Tracing-overhead measurement: the bytecode arm rerun with span
  // tracing enabled, same min-of-reps estimator. Verdicts are
  // deterministic, so re-writing BcOut is a no-op; the recorded spans are
  // discarded afterwards so the svc-phase parity gates see a clean trace.
  std::printf("  [obs] bytecode arm rerun with tracing on (x%d)...\n",
              Reps);
  obs::setTracingEnabled(true);
  uint64_t BcTracedNanos = ~0ULL;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    uint64_t T0 = nowNanos();
    for (TestSet &S : Sets) {
      std::vector<const vir::VFunction *> Fns;
      std::vector<size_t> Which;
      for (size_t I = 0; I < S.Cands.size(); ++I)
        if (S.Cands[I].Eligible) {
          Fns.push_back(S.Cands[I].Fn.get());
          Which.push_back(I);
        }
      if (Fns.empty())
        continue;
      interp::ChecksumBatchResult BR =
          interp::runChecksumBatch(*S.Scalar, Fns, BcCfg);
      for (size_t I = 0; I < Which.size(); ++I)
        S.Cands[Which[I]].BcOut = std::move(BR.Outcomes[I]);
    }
    BcTracedNanos = std::min(BcTracedNanos, nowNanos() - T0);
  }
  obs::setTracingEnabled(false);
  obs::resetTrace();
  double OverheadPct =
      BcNanos ? (static_cast<double>(BcTracedNanos) -
                 static_cast<double>(BcNanos)) /
                    static_cast<double>(BcNanos) * 100.0
              : 0.0;

  // Gate 1: bit-identical verdicts between the arms.
  int VerdictMismatches = 0;
  uint64_t TreeCandRuns = 0, TreeScalarRuns = 0;
  for (const TestSet &S : Sets)
    for (const UniqueCand &U : S.Cands) {
      if (!U.Eligible)
        continue;
      TreeCandRuns += U.TreeOut.Work.CandRuns;
      TreeScalarRuns += U.TreeOut.Work.ScalarRuns;
      if (verdictString(U.TreeOut) != verdictString(U.BcOut)) {
        if (++VerdictMismatches <= 3)
          std::printf("  VERDICT MISMATCH %s:\n    tree: %s\n    bc:   "
                      "%s\n",
                      S.Test->Name.c_str(),
                      verdictString(U.TreeOut).c_str(),
                      verdictString(U.BcOut).c_str());
      }
    }

  // Gate 2: bit-identical modeled cycle counts between the engines (the
  // Figure-6 cost model) on every test scalar and compiled candidate.
  int CycleMismatches = 0;
  {
    interp::CostModel CM;
    interp::ExecConfig EC;
    EC.Costs = &CM;
    int N = Smoke ? 8 : 64;
    int BufLen = N + 16;
    auto checkPair = [&](const vir::VFunction &F, uint64_t Seed,
                         const char *Name) {
      Rng R(Seed);
      interp::MemoryImage M1;
      for (size_t I = 0; I < F.Memories.size(); ++I) {
        M1.Regions.emplace_back();
        if (!F.Memories[I].IsParam)
          continue;
        std::vector<int32_t> Buf(static_cast<size_t>(BufLen));
        for (int32_t &V : Buf)
          V = R.rangeInt(-100, 100);
        M1.Regions.back() = std::move(Buf);
      }
      std::vector<int32_t> Args;
      for (const vir::VParam &P : F.Params) {
        if (P.IsPointer)
          continue;
        Args.push_back(P.Name == "n" ? N : R.rangeInt(0, 8));
      }
      interp::MemoryImage M2 = M1;
      interp::ExecResult RT = interp::execute(F, Args, M1, EC);
      interp::ExecResult RB =
          interp::execBytecode(*interp::compileBytecodeCached(F), Args,
                               M2, EC);
      bool Ok = RT.St == RB.St && RT.Steps == RB.Steps &&
                std::memcmp(&RT.Cycles, &RB.Cycles, sizeof(double)) == 0 &&
                RT.RetVal == RB.RetVal && RT.TrapMsg == RB.TrapMsg;
      for (size_t I = 0; Ok && I < M1.Regions.size(); ++I)
        Ok = M1.Regions[I] == M2.Regions[I];
      if (!Ok) {
        if (++CycleMismatches <= 3)
          std::printf("  CYCLE MISMATCH %s: steps %llu/%llu cycles "
                      "%.17g/%.17g\n",
                      Name, static_cast<unsigned long long>(RT.Steps),
                      static_cast<unsigned long long>(RB.Steps), RT.Cycles,
                      RB.Cycles);
      }
    };
    for (const TestSet &S : Sets) {
      if (S.Scalar)
        checkPair(*S.Scalar, hashString(S.Test->Name.c_str()),
                  S.Test->Name.c_str());
      for (const UniqueCand &U : S.Cands)
        if (U.Fn)
          checkPair(*U.Fn, hashString(U.Source.c_str()),
                    S.Test->Name.c_str());
    }
  }

  // [store] Persistent warm-start: the same Sample batch served twice
  // through a scratch result store — cold (every outcome written through)
  // then warm (a fresh service, so every checksum classification replays
  // from disk). Gates: both runs reproduce the bytecode arm's verdicts
  // bit-for-bit, the cold run persisted records, and the warm run's
  // checksum-stage span total collapses (every batch skipped — >= 5x
  // under the cold wall by construction). With --store DIR a third run
  // against the user's persistent directory feeds the CI cross-process
  // warm-start smoke. Runs before the traced svc phase, which resets
  // trace/metrics state at its start.
  struct StoreRun {
    std::string Verdicts; ///< Deterministic per-sample verdict lines.
    svc::CacheStats Cache;
    store::StoreStats St;
    uint64_t ChecksumSpanNs = 0; ///< Sum of checksum.batch span walls.
    uint64_t WallNs = 0;
    int Mismatches = 0; ///< Samples disagreeing with the bytecode arm.
  };
  auto storeRun = [&](const std::string &Dir) {
    StoreRun Out;
    obs::resetTrace();
    obs::setTracingEnabled(true);
    {
      svc::ServiceConfig SC;
      SC.Workers = SvcJobs;
      SC.StorePath = Dir;
      svc::VectorizerService Service(SC);
      std::vector<svc::Request> Batch;
      for (const TestSet &S : Sets) {
        svc::Request R;
        R.Mode = svc::RunMode::Sample;
        R.Name = S.Test->Name;
        R.ScalarSource = S.Test->Source;
        R.Seed = ExperimentSeed;
        R.SampleCount = K;
        R.Fsm.Checksum = BcCfg;
        Batch.push_back(std::move(R));
      }
      uint64_t T0 = nowNanos();
      std::vector<svc::Ticket> Tickets =
          Service.submitBatch(std::move(Batch));
      for (size_t TI = 0; TI < Tickets.size(); ++TI) {
        const svc::Outcome &O = Service.wait(Tickets[TI]);
        if (O.Failed) {
          std::fprintf(stderr, "store-phase task '%s' failed: %s\n",
                       O.Name.c_str(), O.Error.c_str());
          std::exit(1);
        }
        const TestSet &S = Sets[TI];
        for (size_t I = 0; I < O.Samples.size(); ++I) {
          const UniqueCand &U =
              S.Cands[static_cast<size_t>(S.SampleCand[I])];
          bool Want = U.Eligible && U.BcOut.plausible();
          if (O.Samples[I].Plausible != Want ||
              O.Samples[I].Compiles != (U.Fn != nullptr))
            ++Out.Mismatches;
          appendf(Out.Verdicts, "%s %zu %d %d %llx\n", O.Name.c_str(), I,
                  O.Samples[I].Compiles ? 1 : 0,
                  O.Samples[I].Plausible ? 1 : 0,
                  static_cast<unsigned long long>(
                      hashString(O.Samples[I].Source.c_str())));
        }
      }
      Out.WallNs = nowNanos() - T0;
      Out.Cache = Service.cacheStats();
      Out.St = Service.resultStore()->stats();
      noteServiceStats(Service);
    }
    obs::setTracingEnabled(false);
    for (const obs::TraceEvent &E : obs::snapshotTrace())
      if (std::strcmp(E.Name, "checksum.batch") == 0)
        Out.ChecksumSpanNs += E.DurNs;
    obs::resetTrace();
    return Out;
  };
  std::printf("  [store] cold/warm Sample batches on a scratch store...\n");
  const std::string ScratchStore = "BENCH_table2.store.scratch";
  std::error_code ScratchEC;
  std::filesystem::remove_all(ScratchStore, ScratchEC);
  StoreRun ColdRun = storeRun(ScratchStore);
  StoreRun WarmRun = storeRun(ScratchStore);
  bool StoreParityOk = ColdRun.Mismatches == 0 && WarmRun.Mismatches == 0 &&
                       ColdRun.Verdicts == WarmRun.Verdicts;
  bool StoreColdOk = ColdRun.St.Writes > 0;
  bool StoreWarmOk = WarmRun.St.Hits > 0 && ColdRun.ChecksumSpanNs > 0 &&
                     ColdRun.ChecksumSpanNs >= 5 * WarmRun.ChecksumSpanNs;
  StoreRun PersistRun;
  const bool HavePersist = !Opt.StorePath.empty();
  bool PersistOk = true;
  if (HavePersist) {
    std::printf("  [store] run against --store %s...\n",
                Opt.StorePath.c_str());
    PersistRun = storeRun(Opt.StorePath);
    PersistOk = PersistRun.Mismatches == 0 &&
                PersistRun.Verdicts == ColdRun.Verdicts;
  }

  // [4/4] Service routing: Sample mode composes the batch path with the
  // checksum-outcome cache; tallies must reproduce the arm verdicts.
  // This phase runs traced on clean trace/metrics state: it is cache-free
  // (fresh service, one distinct scalar per task, within-task duplicates
  // deduplicated before the batch), so span sums and registry counters
  // must equal the StageInterpWork tally exactly — the obs parity gates.
  std::printf("  [svc] Sample mode at %d worker(s), traced...\n", SvcJobs);
  obs::resetTrace();
  obs::resetMetrics();
  obs::setTracingEnabled(true);
  svc::StageInterpWork SvcWork;
  int SvcMismatches = 0;
  uint64_t SvcNanos = 0;
  {
    svc::ServiceConfig SC;
    SC.Workers = SvcJobs;
    svc::VectorizerService Service(SC);
    std::vector<svc::Request> Batch;
    for (const TestSet &S : Sets) {
      svc::Request R;
      R.Mode = svc::RunMode::Sample;
      R.Name = S.Test->Name;
      R.ScalarSource = S.Test->Source;
      R.Seed = ExperimentSeed;
      R.SampleCount = K;
      R.Fsm.Checksum = BcCfg;
      Batch.push_back(std::move(R));
    }
    uint64_t T0 = nowNanos();
    std::vector<svc::Ticket> Tickets = Service.submitBatch(std::move(Batch));
    for (size_t TI = 0; TI < Tickets.size(); ++TI) {
      const svc::Outcome &O = Service.wait(Tickets[TI]);
      if (O.Failed) {
        std::fprintf(stderr, "svc task '%s' failed: %s\n", O.Name.c_str(),
                     O.Error.c_str());
        return 1;
      }
      SvcWork.add(O.ChecksumWork);
      const TestSet &S = Sets[TI];
      for (size_t I = 0; I < O.Samples.size(); ++I) {
        const UniqueCand &U =
            S.Cands[static_cast<size_t>(S.SampleCand[I])];
        bool Want = U.Eligible && U.BcOut.plausible();
        if (O.Samples[I].Plausible != Want ||
            O.Samples[I].Compiles != (U.Fn != nullptr))
          ++SvcMismatches;
      }
    }
    SvcNanos = nowNanos() - T0;
  }
  obs::setTracingEnabled(TraceRequested);
  std::vector<obs::TraceEvent> Events = obs::snapshotTrace();

  // Table-2 tallies from the (parity-gated) arm verdicts.
  std::vector<TestCorpus> Corpus;
  for (const TestSet &S : Sets) {
    TestCorpus TC;
    TC.Test = S.Test;
    for (size_t I = 0; I < S.SampleCand.size(); ++I) {
      const UniqueCand &U = S.Cands[static_cast<size_t>(S.SampleCand[I])];
      CandidateRecord R;
      R.Source = U.Source;
      R.Compiles = U.Fn != nullptr;
      R.Plausible = U.Eligible && U.BcOut.plausible();
      TC.Samples.push_back(std::move(R));
    }
    Corpus.push_back(std::move(TC));
  }
  struct Row {
    int K;
    int PaperPlausible, PaperNotEq, PaperNoCompile;
  };
  const Row Rows[] = {{1, 72, 62, 15}, {10, 107, 40, 2}, {100, 125, 24, 0}};
  ChecksumTally Tallies[3];
  for (int I = 0; I < 3; ++I)
    Tallies[I] = tallyAt(Corpus, Rows[I].K);
  std::printf("\n  %-18s %8s %8s %8s\n", "", "k=1", "k=10", "k=100");
  auto row = [&](const char *Name, auto Get, auto GetPaper) {
    std::printf("  %-18s", Name);
    for (int I = 0; I < 3; ++I)
      std::printf(" %8d", Get(Tallies[I]));
    std::printf("   (paper:");
    for (int I = 0; I < 3; ++I)
      std::printf(" %d", GetPaper(Rows[I]));
    std::printf(")\n");
  };
  row("Plausible", [](const ChecksumTally &T) { return T.Plausible; },
      [](const Row &R) { return R.PaperPlausible; });
  row("Not equivalent",
      [](const ChecksumTally &T) { return T.NotEquivalent; },
      [](const Row &R) { return R.PaperNotEq; });
  row("Cannot compile",
      [](const ChecksumTally &T) { return T.CannotCompile; },
      [](const Row &R) { return R.PaperNoCompile; });

  // Gates.
  bool ShapeOk = Smoke || (Tallies[0].Plausible < Tallies[1].Plausible &&
                           Tallies[1].Plausible <= Tallies[2].Plausible &&
                           Tallies[0].CannotCompile >=
                               Tallies[1].CannotCompile &&
                           Tallies[1].CannotCompile >=
                               Tallies[2].CannotCompile);
  bool VerdictOk = VerdictMismatches == 0;
  bool CycleOk = CycleMismatches == 0;
  bool SvcOk = SvcMismatches == 0;
  double Speedup = BcNanos ? static_cast<double>(TreeNanos) /
                                 static_cast<double>(BcNanos)
                           : 1.0;
  bool SpeedupOk = Smoke || Speedup >= 2.0;

  // Observability gates: the traced svc phase's span sums and registry
  // counters must reproduce the StageInterpWork tally bit-for-bit, and
  // both exported artifacts must be well-formed JSON with the expected
  // top-level keys. Overhead is gated in full mode only (single smoke
  // reps are too noisy to gate on).
  bool SpanParityOk =
      sumSpanArg(Events, "checksum.batch", "instrs") == SvcWork.Instrs &&
      sumSpanArg(Events, "checksum.batch", "cand_runs") ==
          SvcWork.CandRuns &&
      sumSpanArg(Events, "checksum.batch", "scalar_runs") ==
          SvcWork.ScalarRuns &&
      sumSpanArg(Events, "checksum.batch", "input_sets") ==
          SvcWork.InputSets &&
      sumSpanArg(Events, "checksum.batch", "scalar_runs_saved") ==
          SvcWork.ScalarRunsSaved &&
      countSpans(Events, "task.sample") == Sets.size();
  bool CounterParityOk =
      obs::counterValue("interp.instrs") == SvcWork.Instrs &&
      obs::counterValue("interp.cand_runs") == SvcWork.CandRuns &&
      obs::counterValue("interp.scalar_runs") == SvcWork.ScalarRuns &&
      obs::counterValue("interp.input_sets") == SvcWork.InputSets &&
      obs::counterValue("interp.scalar_runs_saved") ==
          SvcWork.ScalarRunsSaved &&
      obs::counterValue("interp.traps") == SvcWork.Traps &&
      obs::counterValue("interp.hangs") == SvcWork.Hangs &&
      obs::counterValue("interp.checksum_batches") ==
          countSpans(Events, "checksum.batch") &&
      obs::counterValue("svc.tasks") == Sets.size();
  std::string TraceJson = obs::traceChromeJson();
  std::string MetricsStr = obs::metricsJson();
  std::string JsonErr;
  std::vector<std::string> Keys;
  auto hasKey = [&](const char *K) {
    for (const std::string &S : Keys)
      if (S == K)
        return true;
    return false;
  };
  bool TraceJsonOk =
      obs::json::validate(TraceJson, &JsonErr, &Keys) &&
      hasKey("traceEvents");
  if (!TraceJsonOk)
    std::printf("  TRACE JSON INVALID: %s\n", JsonErr.c_str());
  Keys.clear();
  bool MetricsJsonOk = obs::json::validate(MetricsStr, &JsonErr, &Keys) &&
                       hasKey("schema_version") && hasKey("counters") &&
                       hasKey("histograms");
  if (!MetricsJsonOk)
    std::printf("  METRICS JSON INVALID: %s\n", JsonErr.c_str());
  bool OverheadOk = Smoke || OverheadPct < 3.0;

  interp::BytecodeCacheStats BcStats = interp::bytecodeCacheStats();
  std::printf("\n  checksum-stage wall: %8.1fms tree-walk, %8.1fms "
              "bytecode+batch (%.2fx)\n",
              static_cast<double>(TreeNanos) / 1e6,
              static_cast<double>(BcNanos) / 1e6, Speedup);
  std::printf("  scalar reference runs: %llu tree-walk -> %llu batched "
              "(%llu input sets shared)\n",
              static_cast<unsigned long long>(TreeScalarRuns),
              static_cast<unsigned long long>(BcScalarRuns),
              static_cast<unsigned long long>(BcInputSets));
  std::printf("  bytecode programs: %zu compiled, %llu cache hits\n",
              BcStats.Entries,
              static_cast<unsigned long long>(BcStats.Hits));
  std::printf("  svc sample arm: %.1fms at %d worker(s); interp work: "
              "%llu instrs, %llu cand runs, %llu scalar runs (%llu "
              "saved)\n",
              static_cast<double>(SvcNanos) / 1e6, SvcJobs,
              static_cast<unsigned long long>(SvcWork.Instrs),
              static_cast<unsigned long long>(SvcWork.CandRuns),
              static_cast<unsigned long long>(SvcWork.ScalarRuns),
              static_cast<unsigned long long>(SvcWork.ScalarRunsSaved));
  std::printf("  verdict parity (tree-walk vs bytecode+batch): %s\n",
              VerdictOk ? "OK" : "MISMATCH");
  std::printf("  modeled-cycle parity (bitwise, whole corpus): %s\n",
              CycleOk ? "OK" : "MISMATCH");
  std::printf("  svc Sample-mode routing reproduces verdicts: %s\n",
              SvcOk ? "OK" : "MISMATCH");
  std::printf("  shape (plausible grows, compile failures decay): %s\n",
              Smoke ? "SKIPPED (smoke)" : (ShapeOk ? "OK" : "MISMATCH"));
  std::printf("  checksum stage speeds up (>= 2x): %s\n",
              Smoke ? "SKIPPED (smoke)"
                    : (SpeedupOk ? "OK" : "MISMATCH"));
  std::printf("  tracing overhead on checksum stage: %.2f%% (%s)\n",
              OverheadPct,
              Smoke ? "report-only in smoke"
                    : (OverheadOk ? "OK, < 3%" : "MISMATCH, >= 3%"));
  std::printf("  span sums reproduce StageInterpWork tally: %s\n",
              SpanParityOk ? "OK" : "MISMATCH");
  std::printf("  metrics counters reproduce StageInterpWork tally: %s\n",
              CounterParityOk ? "OK" : "MISMATCH");
  std::printf("  trace/metrics JSON well-formed: %s / %s\n",
              TraceJsonOk ? "OK" : "MISMATCH",
              MetricsJsonOk ? "OK" : "MISMATCH");
  obs::TraceStats TS = obs::traceStats();
  std::printf("  trace: %zu events on %zu thread(s), %llu dropped\n",
              TS.Events, TS.Threads,
              static_cast<unsigned long long>(TS.Dropped));
  std::printf("  store cold run: %.1fms wall, %.1fms checksum spans, "
              "%llu writes, %llu hits\n",
              static_cast<double>(ColdRun.WallNs) / 1e6,
              static_cast<double>(ColdRun.ChecksumSpanNs) / 1e6,
              static_cast<unsigned long long>(ColdRun.St.Writes),
              static_cast<unsigned long long>(ColdRun.St.Hits));
  std::printf("  store warm run: %.1fms wall, %.1fms checksum spans, "
              "%llu hits, %llu misses\n",
              static_cast<double>(WarmRun.WallNs) / 1e6,
              static_cast<double>(WarmRun.ChecksumSpanNs) / 1e6,
              static_cast<unsigned long long>(WarmRun.St.Hits),
              static_cast<unsigned long long>(WarmRun.St.Misses));
  std::printf("  warm-start verdict parity (cold == warm == arms): %s\n",
              StoreParityOk ? "OK" : "MISMATCH");
  std::printf("  warm checksum spans collapse (>= 5x under cold): %s\n",
              StoreColdOk && StoreWarmOk ? "OK" : "MISMATCH");
  if (HavePersist)
    std::printf("  persistent store run (--store): %llu hits, %llu "
                "writes, parity %s\n",
                static_cast<unsigned long long>(PersistRun.St.Hits),
                static_cast<unsigned long long>(PersistRun.St.Writes),
                PersistOk ? "OK" : "MISMATCH");

  std::string J;
  appendf(J, "  \"smoke\": %s,\n  \"k\": %d,\n", Smoke ? "true" : "false",
          K);
  appendf(J, "  \"tallies\": {\n");
  for (int I = 0; I < 3; ++I)
    appendf(J,
            "    \"k%d\": {\"plausible\": %d, \"noteq\": %d, "
            "\"nocompile\": %d}%s\n",
            Rows[I].K, Tallies[I].Plausible, Tallies[I].NotEquivalent,
            Tallies[I].CannotCompile, I == 2 ? "" : ",");
  appendf(J, "  },\n");
  appendf(J,
          "  \"arms\": [\n"
          "    {\"engine\": \"tree_walk\", \"wall_ns\": %llu, "
          "\"scalar_runs\": %llu},\n"
          "    {\"engine\": \"bytecode_batch\", \"wall_ns\": %llu, "
          "\"scalar_runs\": %llu}\n  ],\n",
          static_cast<unsigned long long>(TreeNanos),
          static_cast<unsigned long long>(TreeScalarRuns),
          static_cast<unsigned long long>(BcNanos),
          static_cast<unsigned long long>(BcScalarRuns));
  appendf(J, "  \"speedup\": %.3f,\n", Speedup);
  appendf(J,
          "  \"svc\": {\"jobs\": %d, \"wall_ns\": %llu, \"interp_work\": "
          "{\"instrs\": %llu, \"loads\": %llu, \"stores\": %llu, "
          "\"branches\": %llu, \"cand_runs\": %llu, \"scalar_runs\": "
          "%llu, \"scalar_runs_saved\": %llu, \"input_sets\": %llu, "
          "\"traps\": %llu, \"hangs\": %llu}},\n",
          SvcJobs, static_cast<unsigned long long>(SvcNanos),
          static_cast<unsigned long long>(SvcWork.Instrs),
          static_cast<unsigned long long>(SvcWork.Loads),
          static_cast<unsigned long long>(SvcWork.Stores),
          static_cast<unsigned long long>(SvcWork.Branches),
          static_cast<unsigned long long>(SvcWork.CandRuns),
          static_cast<unsigned long long>(SvcWork.ScalarRuns),
          static_cast<unsigned long long>(SvcWork.ScalarRunsSaved),
          static_cast<unsigned long long>(SvcWork.InputSets),
          static_cast<unsigned long long>(SvcWork.Traps),
          static_cast<unsigned long long>(SvcWork.Hangs));
  appendf(J,
          "  \"bytecode_cache\": {\"entries\": %zu, \"hits\": %llu, "
          "\"misses\": %llu},\n",
          BcStats.Entries, static_cast<unsigned long long>(BcStats.Hits),
          static_cast<unsigned long long>(BcStats.Misses));
  appendf(J,
          "  \"obs\": {\"traced_wall_ns\": %llu, \"overhead_pct\": %.3f, "
          "\"trace_events\": %zu, \"trace_threads\": %zu, "
          "\"trace_dropped\": %llu},\n",
          static_cast<unsigned long long>(BcTracedNanos), OverheadPct,
          TS.Events, TS.Threads,
          static_cast<unsigned long long>(TS.Dropped));
  appendf(J,
          "  \"verdict_mismatches\": %d,\n  \"cycle_mismatches\": %d,\n"
          "  \"svc_mismatches\": %d,\n",
          VerdictMismatches, CycleMismatches, SvcMismatches);
  appendf(J,
          "  \"verdict_ok\": %s,\n  \"cycle_ok\": %s,\n  \"svc_ok\": "
          "%s,\n  \"shape_ok\": %s,\n  \"speedup_ok\": %s,\n",
          VerdictOk ? "true" : "false", CycleOk ? "true" : "false",
          SvcOk ? "true" : "false", ShapeOk ? "true" : "false",
          SpeedupOk ? "true" : "false");
  appendf(J,
          "  \"span_parity_ok\": %s,\n  \"counter_parity_ok\": %s,\n"
          "  \"trace_json_ok\": %s,\n  \"metrics_json_ok\": %s,\n"
          "  \"overhead_ok\": %s,\n",
          SpanParityOk ? "true" : "false",
          CounterParityOk ? "true" : "false",
          TraceJsonOk ? "true" : "false", MetricsJsonOk ? "true" : "false",
          OverheadOk ? "true" : "false");
  auto appendStoreRun = [&](const char *Name, const StoreRun &R,
                            const char *Trail) {
    appendf(J,
            "    \"%s\": {\"wall_ns\": %llu, \"checksum_span_ns\": %llu, "
            "\"mismatches\": %d, \"cache\": {\"hits\": %llu, \"misses\": "
            "%llu}, \"store\": {\"hits\": %llu, \"misses\": %llu, "
            "\"writes\": %llu, \"corrupt_skipped\": %llu, "
            "\"version_skipped\": %llu}}%s\n",
            Name, static_cast<unsigned long long>(R.WallNs),
            static_cast<unsigned long long>(R.ChecksumSpanNs), R.Mismatches,
            static_cast<unsigned long long>(R.Cache.Hits),
            static_cast<unsigned long long>(R.Cache.Misses),
            static_cast<unsigned long long>(R.St.Hits),
            static_cast<unsigned long long>(R.St.Misses),
            static_cast<unsigned long long>(R.St.Writes),
            static_cast<unsigned long long>(R.St.CorruptSkipped),
            static_cast<unsigned long long>(R.St.VersionSkipped), Trail);
  };
  appendf(J, "  \"warm_start\": {\n");
  appendStoreRun("cold", ColdRun, ",");
  appendStoreRun("warm", WarmRun, ",");
  if (HavePersist)
    appendStoreRun("persistent", PersistRun, ",");
  appendf(J,
          "    \"parity_ok\": %s,\n    \"cold_ok\": %s,\n"
          "    \"warm_ok\": %s,\n    \"persistent_ok\": %s\n  }",
          StoreParityOk ? "true" : "false", StoreColdOk ? "true" : "false",
          StoreWarmOk ? "true" : "false", PersistOk ? "true" : "false");
  bool JsonOk = writeBenchJson("bench_table2_checksum", Opt, J,
                               "BENCH_table2.json");
  bool ObsOk = writeObsArtifacts(Opt);
  bool StoreOk = StoreParityOk && StoreColdOk && StoreWarmOk && PersistOk;

  return VerdictOk && CycleOk && SvcOk && ShapeOk && SpeedupOk &&
                 SpanParityOk && CounterParityOk && TraceJsonOk &&
                 MetricsJsonOk && OverheadOk && StoreOk && JsonOk && ObsOk
             ? 0
             : 1;
}
