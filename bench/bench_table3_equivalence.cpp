//===- bench/bench_table3_equivalence.cpp - Table 3 reproduction --------------===//
//
// Reproduces paper Table 3: the staged equivalence-checking funnel over the
// TSVC dataset. Each stage consumes the previous stage's Inconclusive
// set:
//
//      Techniques   Total   Equiv  NotEquiv  Inconcl     (paper)
//      Checksum      149      0       24       125
//      Alive2        125     26       17        82
//      C-Unroll       82     28       18        36
//      Splitting      36      3        2        31
//      All           149     57       61        31
//
// We report the same funnel for our pipeline, plus per-stage query-size
// statistics showing *why* the domain-specific techniques scale better
// (the paper's §3 argument).
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "support/Format.h"

#include <cstdio>

using namespace lv;
using namespace lv::bench;
using core::EquivResult;
using core::Stage;

int main() {
  printHeader("Table 3: equivalence-checking funnel");
  std::printf("  sampling candidates and running Algorithm 1 over %zu "
              "tests...\n",
              tsvc::suite().size());
  std::vector<TestCorpus> Corpus = buildCorpus(100);

  core::EquivConfig Cfg;
  Cfg.ScalarMax = 8;
  Cfg.MaxTerms = 120'000;
  Cfg.Alive2Budget = 500;
  Cfg.CUnrollBudget = 2'000;
  Cfg.SplitBudget = 300;
  std::vector<FunnelRecord> Funnel = runFunnel(Corpus, Cfg);

  int ChecksumNotEq = 0, Plaus = 0;
  int A2Eq = 0, A2Neq = 0, A2In = 0;
  int CUEq = 0, CUNeq = 0, CUIn = 0;
  int SpEq = 0, SpNeq = 0, SpIn = 0;
  uint64_t A2Clauses = 0, CUClauses = 0, SpClauses = 0;
  int A2N = 0, CUN = 0, SpN = 0;

  for (const FunnelRecord &R : Funnel) {
    if (!R.HadPlausible) {
      ++ChecksumNotEq;
      continue;
    }
    // A plausible candidate entering the funnel may still be rejected by
    // the fresh checksum run inside checkEquivalence; count it as decided
    // by testing.
    if (R.Result.DecidedBy == Stage::Checksum) {
      ++ChecksumNotEq;
      continue;
    }
    ++Plaus;
    const tv::TVResult &A = R.Result.Alive2Res;
    bool A2Decided = A.V == tv::TVVerdict::Equivalent ||
                     A.V == tv::TVVerdict::Inequivalent;
    if (A.Clauses > 0) {
      A2Clauses += A.Clauses;
      ++A2N;
    }
    if (A.V == tv::TVVerdict::Equivalent)
      ++A2Eq;
    else if (A.V == tv::TVVerdict::Inequivalent)
      ++A2Neq;
    else
      ++A2In;
    if (A2Decided)
      continue;
    const tv::TVResult &CU = R.Result.CUnrollRes;
    bool CUDecided = CU.V == tv::TVVerdict::Equivalent ||
                     CU.V == tv::TVVerdict::Inequivalent;
    if (CU.Clauses > 0) {
      CUClauses += CU.Clauses;
      ++CUN;
    }
    if (CU.V == tv::TVVerdict::Equivalent)
      ++CUEq;
    else if (CU.V == tv::TVVerdict::Inequivalent)
      ++CUNeq;
    else
      ++CUIn;
    if (CUDecided)
      continue;
    for (const tv::TVResult &S : R.Result.SplitRes)
      if (S.Clauses > 0) {
        SpClauses += S.Clauses;
        ++SpN;
      }
    if (R.Result.DecidedBy == Stage::Splitting) {
      if (R.Result.Final == EquivResult::Equivalent)
        ++SpEq;
      else
        ++SpNeq;
    } else {
      ++SpIn;
    }
  }

  std::printf("\n  %-12s %7s %7s %9s %9s   (paper)\n", "Technique", "Total",
              "Equiv", "NotEquiv", "Inconcl");
  std::printf("  %-12s %7d %7d %9d %9d   149/0/24/125\n", "Checksum", 149,
              0, ChecksumNotEq, Plaus);
  std::printf("  %-12s %7d %7d %9d %9d   125/26/17/82\n", "Alive2", Plaus,
              A2Eq, A2Neq, A2In);
  std::printf("  %-12s %7d %7d %9d %9d   82/28/18/36\n", "C-Unroll", A2In,
              CUEq, CUNeq, CUIn);
  std::printf("  %-12s %7d %7d %9d %9d   36/3/2/31\n", "Splitting", CUIn,
              SpEq, SpNeq, SpIn);
  int AllEq = A2Eq + CUEq + SpEq;
  int AllNeq = ChecksumNotEq + A2Neq + CUNeq + SpNeq;
  std::printf("  %-12s %7d %7d %9d %9d   149/57/61/31\n", "All", 149, AllEq,
              AllNeq, SpIn);

  std::printf("\n  mean SAT clauses per query (why the techniques scale):\n");
  if (A2N)
    std::printf("    alive2-unroll: %10llu\n",
                static_cast<unsigned long long>(A2Clauses /
                                                static_cast<uint64_t>(A2N)));
  if (CUN)
    std::printf("    c-unroll:      %10llu\n",
                static_cast<unsigned long long>(CUClauses /
                                                static_cast<uint64_t>(CUN)));
  if (SpN)
    std::printf("    splitting:     %10llu (per cell)\n",
                static_cast<unsigned long long>(SpClauses /
                                                static_cast<uint64_t>(SpN)));

  // Shape checks: verification grows across stages; the domain-specific
  // stages verify + refute additional tests beyond plain Alive2.
  bool ShapeOk = AllEq > A2Eq && (CUEq + CUNeq) > 0 && Plaus > AllEq;
  std::printf("\n  funnel shape (stages add verdicts beyond Alive2): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  return ShapeOk ? 0 : 1;
}
