//===- bench/bench_table3_equivalence.cpp - Table 3 reproduction --------------===//
//
// Reproduces paper Table 3: the staged equivalence-checking funnel over the
// TSVC dataset. Each stage consumes the previous stage's Inconclusive
// set:
//
//      Techniques   Total   Equiv  NotEquiv  Inconcl     (paper)
//      Checksum      149      0       24       125
//      Alive2        125     26       17        82
//      C-Unroll       82     28       18        36
//      Splitting      36      3        2        31
//      All           149     57       61        31
//
// We report the same funnel for our pipeline, plus per-stage query-size
// statistics showing *why* the domain-specific techniques scale better
// (the paper's §3 argument).
//
// The funnel then runs as a *mode matrix* over the query-scoped-solving
// configurations of the SAT backend:
//
//   seed              frozen copy of the seed smt stack (bench/seedref/),
//                     scratch solver + full re-blast per cell — the fixed
//                     "before" baseline
//   fork              PR-3 behaviour: per-query forks of a pristine base
//   fork_cone / _reuse / _cone_reuse
//   shared            shared-learnt: queries solve directly on the base
//                     (learnt clauses persist; heuristics rewound per
//                     query), no per-query fork
//   shared_cone / _reuse / _cone_reuse
//   portfolio         sound fast-path racing (the EquivConfig default):
//                     every stage-3/4 query probes a shared-learnt
//                     cone+reuse fast arm first and falls back to the
//                     pristine sound fork when the probe is inconclusive
//   portfolio_par2/8  portfolio + stage-4 cells fanned across 2/8 workers
//   fork_par8         plain fork + 8-worker cell fan-out (isolates the
//                     dispatch machinery from the racing)
//
// Because cone projection, trail reuse, and racing perturb search order —
// and budget-bound verdicts are sensitive to search order — the matrix is
// a verdict-parity harness first and a speedup report second: it counts,
// for every arm, tests whose (Final, DecidedBy) differ from the fork
// reference, and the exit gates require (a) seed/fork parity (the PR-2
// invariant), (b) parity for the arm matching the EquivConfig defaults
// (the configuration the svc funnel actually ships — portfolio), (c) the
// shared-learnt propagation overhead actually removed by cone projection,
// (d) the parallel cell dispatch bit-identical across worker counts
// (portfolio_par2 == portfolio_par8 record-for-record, and fork_par8 ==
// fork), and (e) the portfolio's splitting stage costing exactly the
// sound fork's SAT work (the adaptive probe gate retires the fast arm
// before stage 4, so any extra conflicts there are a racing bug).
// Everything is mirrored to BENCH_table3.json for CI tracking.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "bench/seedref/SeedRef.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

using namespace lv;
using namespace lv::bench;
using core::EquivResult;
using core::Stage;

static uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Funnel tallies for one run.
struct FunnelTally {
  int ChecksumNotEq = 0, Plaus = 0;
  int A2Eq = 0, A2Neq = 0, A2In = 0;
  int CUEq = 0, CUNeq = 0, CUIn = 0;
  int SpEq = 0, SpNeq = 0, SpIn = 0;
  uint64_t A2Clauses = 0, CUClauses = 0, SpClauses = 0;
  int A2N = 0, CUN = 0, SpN = 0;
  // Spatial-splitting stage cost (per-stage SatWork aggregated by svc).
  svc::StageSatWork SplitWork;
  uint64_t SplitWallNanos = 0;
  int SplitQueries = 0;

  int allEq() const { return A2Eq + CUEq + SpEq; }
  int allNeq() const { return ChecksumNotEq + A2Neq + CUNeq + SpNeq; }
  uint64_t splitSatWork() const {
    return SplitWork.Conflicts + SplitWork.Propagations;
  }
};

FunnelTally tally(const std::vector<FunnelRecord> &Funnel) {
  FunnelTally T;
  for (const FunnelRecord &R : Funnel) {
    // Splitting-stage cost is charged whenever the stage ran, regardless
    // of which stage decided.
    T.SplitWork.add(R.SplitWork);
    T.SplitQueries += static_cast<int>(R.Result.SplitRes.size());
    T.SplitWallNanos += R.Result.SplitNanos;

    if (!R.HadPlausible) {
      ++T.ChecksumNotEq;
      continue;
    }
    // A plausible candidate entering the funnel may still be rejected by
    // the fresh checksum run inside checkEquivalence; count it as decided
    // by testing.
    if (R.Result.DecidedBy == Stage::Checksum) {
      ++T.ChecksumNotEq;
      continue;
    }
    ++T.Plaus;
    const tv::TVResult &A = R.Result.Alive2Res;
    bool A2Decided = A.V == tv::TVVerdict::Equivalent ||
                     A.V == tv::TVVerdict::Inequivalent;
    if (A.Clauses > 0) {
      T.A2Clauses += A.Clauses;
      ++T.A2N;
    }
    if (A.V == tv::TVVerdict::Equivalent)
      ++T.A2Eq;
    else if (A.V == tv::TVVerdict::Inequivalent)
      ++T.A2Neq;
    else
      ++T.A2In;
    if (A2Decided)
      continue;
    const tv::TVResult &CU = R.Result.CUnrollRes;
    bool CUDecided = CU.V == tv::TVVerdict::Equivalent ||
                     CU.V == tv::TVVerdict::Inequivalent;
    if (CU.Clauses > 0) {
      T.CUClauses += CU.Clauses;
      ++T.CUN;
    }
    if (CU.V == tv::TVVerdict::Equivalent)
      ++T.CUEq;
    else if (CU.V == tv::TVVerdict::Inequivalent)
      ++T.CUNeq;
    else
      ++T.CUIn;
    if (CUDecided)
      continue;
    for (const tv::TVResult &S : R.Result.SplitRes)
      if (S.Clauses > 0) {
        T.SpClauses += S.Clauses;
        ++T.SpN;
      }
    if (R.Result.DecidedBy == Stage::Splitting) {
      if (R.Result.Final == EquivResult::Equivalent)
        ++T.SpEq;
      else
        ++T.SpNeq;
    } else {
      ++T.SpIn;
    }
  }
  return T;
}

/// Before/After ratio; an idle "after" side means either no regression to
/// measure (both zero -> 1.0) or an unmeasurably large win (capped so the
/// JSON stays finite).
double ratio(uint64_t Before, uint64_t After) {
  if (After == 0)
    return Before ? 1e9 : 1.0;
  return static_cast<double>(Before) / static_cast<double>(After);
}

/// One matrix arm: a query-scoped-solving configuration of the funnel.
struct Arm {
  const char *Name;
  bool Seed = false;     ///< Frozen seedref backend (fixed baseline).
  bool Shared = false;   ///< SharedLearntSolving.
  bool Cone = false;     ///< ConeProjection.
  bool Reuse = false;    ///< TrailReuse.
  bool Portfolio = false; ///< PortfolioSolving (sound fast-path racing).
  int CellWorkers = 1;   ///< SplitCellWorkers (stage-4 fan-out width).

  std::vector<FunnelRecord> Records;
  FunnelTally T;
  int Mismatches = 0; ///< Tests whose (Final, DecidedBy) differ from fork.
};

/// Portfolio racer attribution summed over the stage-3/4 session queries
/// of every record (the only queries racing runs on; alive2 is one-shot).
struct RacerStats {
  uint64_t FastWins = 0, SoundWins = 0, Fallbacks = 0;
  uint64_t FastConflicts = 0, FastProps = 0, FastReused = 0;
  uint64_t FastConeVars = 0, FastConeClauses = 0;
  uint64_t SoundConflicts = 0, SoundProps = 0;

  void add(const tv::TVResult &R) {
    if (R.PortfolioArm == 1)
      ++FastWins;
    else if (R.PortfolioArm == 2) {
      ++Fallbacks;
      if (R.decided())
        ++SoundWins;
    }
    FastConflicts += R.FastConflicts;
    FastProps += R.FastPropagations;
    FastReused += R.FastTrailReused;
    FastConeVars += R.FastConeVars;
    FastConeClauses += R.FastConeClauses;
    // Headline counters total both racers; the sound share is the rest.
    SoundConflicts += R.Conflicts - R.FastConflicts;
    SoundProps += R.Propagations - R.FastPropagations;
  }
};

RacerStats armRacer(const Arm &A) {
  RacerStats S;
  for (const FunnelRecord &R : A.Records) {
    S.add(R.Result.CUnrollRes);
    for (const tv::TVResult &C : R.Result.SplitRes)
      S.add(C);
  }
  return S;
}

/// Field-level equality of two query results, SolveNanos excluded (the
/// one field wall-clock is allowed to vary under). Everything else —
/// verdict, diagnostics, solver work, cone sizes, and the portfolio
/// attribution — must be bit-identical for the worker-count gates.
bool tvEq(const tv::TVResult &A, const tv::TVResult &B) {
  return A.V == B.V && A.Conflicts == B.Conflicts &&
         A.Propagations == B.Propagations && A.Restarts == B.Restarts &&
         A.TrailReused == B.TrailReused && A.ConeVars == B.ConeVars &&
         A.ConeClauses == B.ConeClauses && A.Clauses == B.Clauses &&
         A.SatVars == B.SatVars && A.LearntLive == B.LearntLive &&
         A.AvgLBD == B.AvgLBD && A.TermCount == B.TermCount &&
         A.PortfolioArm == B.PortfolioArm &&
         A.FastConflicts == B.FastConflicts &&
         A.FastPropagations == B.FastPropagations &&
         A.FastRestarts == B.FastRestarts &&
         A.FastTrailReused == B.FastTrailReused &&
         A.FastConeVars == B.FastConeVars &&
         A.FastConeClauses == B.FastConeClauses && A.Detail == B.Detail &&
         A.Counterexample == B.Counterexample;
}

/// Record-for-record bit identity between two arms (verdicts, stage
/// results, per-cell results). Prints the first divergence found.
bool recordsBitEqual(const Arm &A, const Arm &B) {
  if (A.Records.size() != B.Records.size())
    return false;
  for (size_t K = 0; K < A.Records.size(); ++K) {
    const core::EquivResult &RA = A.Records[K].Result;
    const core::EquivResult &RB = B.Records[K].Result;
    bool Eq = RA.Final == RB.Final && RA.DecidedBy == RB.DecidedBy &&
              RA.Detail == RB.Detail &&
              RA.Counterexample == RB.Counterexample &&
              tvEq(RA.Alive2Res, RB.Alive2Res) &&
              tvEq(RA.CUnrollRes, RB.CUnrollRes) &&
              RA.SplitRes.size() == RB.SplitRes.size();
    for (size_t C = 0; Eq && C < RA.SplitRes.size(); ++C)
      Eq = tvEq(RA.SplitRes[C], RB.SplitRes[C]);
    if (!Eq) {
      std::printf("  CELL-DISPATCH DIVERGENCE [%s vs %s] %s\n", A.Name,
                  B.Name, A.Records[K].Name.c_str());
      return false;
    }
  }
  return true;
}

/// --quick test subset: the budget-borderline pairs whose verdicts flip
/// between the fast and sound solving modes (they exhaust the fast probe
/// and exercise the portfolio disagreement/fallback path all the way into
/// stage 4), plus enough ordinary pairs to keep the funnel-shape gate
/// meaningful (checksum rejects, alive2/c-unroll deciders, and splitting
/// survivors).
const char *QuickTests[] = {
    // Budget-borderline flip pairs: fast-arm inconclusive, sound-arm
    // decided (s319 at c-unroll, the rest at spatial splitting).
    "s253", "s271", "s272", "s319", "s1279", "s2711",
    // Splitting-stage survivors (stay inconclusive end to end).
    "s273", "s274", "s276", "s2712",
    // C-unroll equivalence deciders, one alive2 decider, and checksum
    // rejects, keeping the funnel-shape gate meaningful.
    "s000", "s113", "s125", "s131", "s291", "vcnt", "s111", "s112", "s114",
};

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  bool Quick = false; // --quick: flip-pair test subset + 5 arms
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;

  // Tracing is scoped to the default (portfolio) arm only: corpus
  // generation and the other arms would otherwise pollute the
  // span-vs-tally parity sums.
  const bool TraceRequested = obs::tracingEnabled();
  obs::setTracingEnabled(false);

  printHeader("Table 3: equivalence-checking funnel");
  std::vector<TestCorpus> Corpus;
  if (Quick) {
    std::vector<const tsvc::TsvcTest *> Tests;
    for (const char *Name : QuickTests)
      if (const tsvc::TsvcTest *T = tsvc::findTest(Name))
        Tests.push_back(T);
    std::printf("  sampling candidates and running Algorithm 1 over %zu "
                "tests (--quick subset, --jobs %d)...\n",
                Tests.size(), Opt.Jobs);
    Corpus = buildCorpusFor(Tests, 100, ExperimentSeed, Opt.Jobs);
  } else {
    std::printf("  sampling candidates and running Algorithm 1 over %zu "
                "tests (--jobs %d)...\n",
                tsvc::suite().size(), Opt.Jobs);
    Corpus = buildCorpus(100, ExperimentSeed, Opt.Jobs);
  }
  const int Total = static_cast<int>(Corpus.size());

  core::EquivConfig Base;
  Base.ScalarMax = 8;
  Base.MaxTerms = 120'000;
  Base.Alive2Budget = 500;
  Base.CUnrollBudget = 2'000;
  Base.SplitBudget = 300;

  // [store] Persistent warm-start measurement: the funnel serves the same
  // corpus twice through a scratch result store — the cold run populates
  // it, the warm run (a fresh service over the same directory) replays
  // every verdict from disk and never enters the checksum or solver
  // stages. Gates: serialized EquivResults bit-identical across the two
  // runs (the store's replay contract), the cold run persisted records,
  // the warm run was pure hits, and the combined checksum+splitting span
  // wall collapsed by >= 5x. Runs before the mode matrix so the traced
  // portfolio arm still owns the trace buffers at artifact-write time.
  struct StoreRun {
    std::string Bits;    ///< Concatenated serializeEquivResult records.
    std::string Summary; ///< "name final decided-by" lines (arm-comparable:
                         ///< stable under wall-clock jitter, unlike Bits).
    ServiceRunStats Stats;
    uint64_t StageNs = 0; ///< stage.checksum + stage.split span walls.
    uint64_t WallNs = 0;
  };
  auto storeRun = [&](const std::string &Dir) {
    StoreRun Out;
    obs::resetTrace();
    obs::setTracingEnabled(true);
    uint64_t T0 = nowNanos();
    std::vector<FunnelRecord> Recs =
        runFunnel(Corpus, Base, Opt.Jobs, Dir, &Out.Stats);
    Out.WallNs = nowNanos() - T0;
    obs::setTracingEnabled(false);
    for (const obs::TraceEvent &E : obs::snapshotTrace())
      if (std::strcmp(E.Name, "stage.checksum") == 0 ||
          std::strcmp(E.Name, "stage.split") == 0)
        Out.StageNs += E.DurNs;
    obs::resetTrace();
    for (const FunnelRecord &R : Recs) {
      Out.Bits += R.Name;
      Out.Bits += store::serializeEquivResult(R.Result);
      appendf(Out.Summary, "%s %s %s\n", R.Name.c_str(),
              core::outcomeName(R.Result.Final),
              core::stageName(R.Result.DecidedBy));
    }
    return Out;
  };
  std::printf("  [store] cold/warm funnel on a scratch store...\n");
  const std::string ScratchStore = "BENCH_table3.store.scratch";
  std::error_code ScratchEC;
  std::filesystem::remove_all(ScratchStore, ScratchEC);
  StoreRun ColdRun = storeRun(ScratchStore);
  StoreRun WarmRun = storeRun(ScratchStore);
  bool StoreBitOk = !ColdRun.Bits.empty() && ColdRun.Bits == WarmRun.Bits;
  bool StoreColdOk = ColdRun.Stats.Store.Writes > 0;
  bool StoreWarmOk =
      WarmRun.Stats.Store.Hits > 0 && WarmRun.Stats.Store.Misses == 0;
  bool StoreSpeedOk =
      ColdRun.StageNs > 0 && ColdRun.StageNs >= 5 * WarmRun.StageNs;
  StoreRun PersistRun;
  const bool HavePersist = !Opt.StorePath.empty();
  bool PersistOk = true;
  if (HavePersist) {
    std::printf("  [store] run against --store %s...\n",
                Opt.StorePath.c_str());
    PersistRun = storeRun(Opt.StorePath);
    PersistOk = PersistRun.Summary == ColdRun.Summary;
  }

  // Name, Seed, Shared, Cone, Reuse, Portfolio, CellWorkers. Every arm
  // pins PortfolioSolving and SplitCellWorkers explicitly (the EquivConfig
  // defaults now enable racing, and the historical arms must keep
  // measuring exactly the configuration they are named after).
  std::vector<Arm> Arms = {
      {"seed", /*Seed=*/true},
      {"fork"},
      {"fork_cone", false, false, true, false},
      {"fork_reuse", false, false, false, true},
      {"fork_cone_reuse", false, false, true, true},
      {"shared", false, true, false, false},
      {"shared_cone", false, true, true, false},
      {"shared_reuse", false, true, false, true},
      {"shared_cone_reuse", false, true, true, true},
      {"portfolio", false, false, false, false, true, 1},
      {"portfolio_par2", false, false, false, false, true, 2},
      {"portfolio_par8", false, false, false, false, true, 8},
      {"fork_par8", false, false, false, false, false, 8},
  };
  if (Quick)
    Arms = {{"seed", true},
            {"fork"},
            {"portfolio", false, false, false, false, true, 1},
            {"portfolio_par2", false, false, false, false, true, 2},
            {"portfolio_par8", false, false, false, false, true, 8}};

  // The arm that matches the EquivConfig defaults — the configuration the
  // svc funnel actually runs with. Its parity is a hard gate.
  core::EquivConfig Defaults;
  int DefaultArm = -1;

  // The fork arm is the verdict-parity reference; the portfolio arm (the
  // shipping default) doubles as the observability reference: it runs
  // traced (fresh trace + metrics), and its span/counter sums — including
  // the portfolio win/fallback tallies — are gated against the
  // StageSatWork/StageInterpWork tallies below.
  const size_t ForkArm = 1;
  size_t TracedArm = ForkArm;
  for (size_t I = 0; I < Arms.size(); ++I)
    if (std::strcmp(Arms[I].Name, "portfolio") == 0)
      TracedArm = I;
  std::vector<obs::TraceEvent> Events;
  std::vector<obs::CounterSample> Counters;
  std::string TraceDoc, MetricsDoc;

  for (size_t I = 0; I < Arms.size(); ++I) {
    Arm &A = Arms[I];
    core::EquivConfig Cfg = Base;
    if (A.Seed) {
      // Frozen seed smt stack: scratch solver + full re-blast per cell,
      // with none of the query-scoped techniques.
      Cfg.IncrementalSolving = false;
      Cfg.SharedLearntSolving = false;
      Cfg.ConeProjection = false;
      Cfg.TrailReuse = false;
      Cfg.PortfolioSolving = false;
      Cfg.SplitCellWorkers = 1;
      Cfg.SplitCellOverride = [](const vir::VFunction &S,
                                 const vir::VFunction &T,
                                 const tv::RefineOptions &RO) {
        return seedref::checkRefinementSeed(S, T, RO);
      };
    } else {
      Cfg.SharedLearntSolving = A.Shared;
      Cfg.ConeProjection = A.Cone;
      Cfg.TrailReuse = A.Reuse;
      Cfg.PortfolioSolving = A.Portfolio;
      Cfg.SplitCellWorkers = A.CellWorkers;
      if (A.Shared == Defaults.SharedLearntSolving &&
          A.Cone == Defaults.ConeProjection &&
          A.Reuse == Defaults.TrailReuse &&
          A.Portfolio == Defaults.PortfolioSolving &&
          A.CellWorkers == Defaults.SplitCellWorkers)
        DefaultArm = static_cast<int>(I);
    }
    std::printf("  [%zu/%zu] %s...\n", I + 1, Arms.size(), A.Name);
    if (I == TracedArm) {
      obs::resetTrace();
      obs::resetMetrics();
      obs::setTracingEnabled(true);
    }
    A.Records = runFunnel(Corpus, Cfg, Opt.Jobs);
    A.T = tally(A.Records);
    if (I == TracedArm) {
      obs::setTracingEnabled(false);
      // Scrape immediately: the later arms keep feeding the (always-on)
      // metrics registry, so the parity comparison needs a point-in-time
      // snapshot of counters and both JSON documents.
      Events = obs::snapshotTrace();
      Counters = obs::snapshotCounters();
      TraceDoc = obs::traceChromeJson();
      MetricsDoc = obs::metricsJson();
    }
  }

  // Verdict parity: every arm against the fork reference (and the seed
  // arm transitively — the PR-2 invariant is seed == fork).
  int TotalMismatches = 0;
  for (size_t I = 0; I < Arms.size(); ++I) {
    if (I == ForkArm)
      continue;
    Arm &A = Arms[I];
    for (size_t K = 0; K < A.Records.size(); ++K) {
      if (A.Records[K].Result.Final !=
              Arms[ForkArm].Records[K].Result.Final ||
          A.Records[K].Result.DecidedBy !=
              Arms[ForkArm].Records[K].Result.DecidedBy) {
        ++A.Mismatches;
        std::printf("  VERDICT MISMATCH [%s] %s: %s/%s vs fork %s/%s\n",
                    A.Name, A.Records[K].Name.c_str(),
                    core::outcomeName(A.Records[K].Result.Final),
                    core::stageName(A.Records[K].Result.DecidedBy),
                    core::outcomeName(Arms[ForkArm].Records[K].Result.Final),
                    core::stageName(Arms[ForkArm].Records[K].Result.DecidedBy));
      }
    }
    TotalMismatches += A.Mismatches;
  }

  // The store runs used the unmodified Base config — the EquivConfig
  // defaults — so their (Final, DecidedBy) funnel must match the default
  // arm of the matrix exactly.
  bool StoreArmParityOk = true;
  if (DefaultArm >= 0) {
    std::string ArmSummary;
    for (const FunnelRecord &R : Arms[static_cast<size_t>(DefaultArm)].Records)
      appendf(ArmSummary, "%s %s %s\n", R.Name.c_str(),
              core::outcomeName(R.Result.Final),
              core::stageName(R.Result.DecidedBy));
    StoreArmParityOk = ColdRun.Summary == ArmSummary;
  }

  const FunnelTally &TA = Arms[ForkArm].T; // funnel shape from fork arm

  std::printf("\n  %-12s %7s %7s %9s %9s   (paper)\n", "Technique", "Total",
              "Equiv", "NotEquiv", "Inconcl");
  std::printf("  %-12s %7d %7d %9d %9d   149/0/24/125\n", "Checksum", Total,
              0, TA.ChecksumNotEq, TA.Plaus);
  std::printf("  %-12s %7d %7d %9d %9d   125/26/17/82\n", "Alive2",
              TA.Plaus, TA.A2Eq, TA.A2Neq, TA.A2In);
  std::printf("  %-12s %7d %7d %9d %9d   82/28/18/36\n", "C-Unroll",
              TA.A2In, TA.CUEq, TA.CUNeq, TA.CUIn);
  std::printf("  %-12s %7d %7d %9d %9d   36/3/2/31\n", "Splitting",
              TA.CUIn, TA.SpEq, TA.SpNeq, TA.SpIn);
  std::printf("  %-12s %7d %7d %9d %9d   149/57/61/31\n", "All", Total,
              TA.allEq(), TA.allNeq(), TA.SpIn);

  std::printf("\n  mean SAT clauses per query (why the techniques scale):\n");
  if (TA.A2N)
    std::printf("    alive2-unroll: %10llu\n",
                static_cast<unsigned long long>(
                    TA.A2Clauses / static_cast<uint64_t>(TA.A2N)));
  if (TA.CUN)
    std::printf("    c-unroll:      %10llu\n",
                static_cast<unsigned long long>(
                    TA.CUClauses / static_cast<uint64_t>(TA.CUN)));
  if (TA.SpN)
    std::printf("    splitting:     %10llu (per cell)\n",
                static_cast<unsigned long long>(
                    TA.SpClauses / static_cast<uint64_t>(TA.SpN)));

  // The mode matrix: splitting-stage cost per configuration.
  std::printf("\n  spatial-splitting stage by mode (parity vs fork):\n");
  std::printf("  %-18s %9s %12s %12s %10s %10s %9s\n", "mode", "queries",
              "conflicts", "props", "reusedlits", "wall-ms", "mismatch");
  for (const Arm &A : Arms) {
    std::printf("  %-18s %9d %12llu %12llu %10llu %10.1f %9d\n", A.Name,
                A.T.SplitQueries,
                static_cast<unsigned long long>(A.T.SplitWork.Conflicts),
                static_cast<unsigned long long>(A.T.SplitWork.Propagations),
                static_cast<unsigned long long>(A.T.SplitWork.TrailReused),
                static_cast<double>(A.T.SplitWallNanos) / 1e6,
                A.Mismatches);
  }

  // Racer attribution for the portfolio arms: who decided, and how the
  // SAT work split between the fast probe and the sound fork.
  std::printf("\n  portfolio racer attribution (stage-3/4 queries):\n");
  std::printf("  %-18s %8s %9s %9s %12s %12s %10s\n", "mode", "fastwin",
              "soundwin", "fallback", "fast-conf", "sound-conf",
              "fast-reuse");
  for (const Arm &A : Arms) {
    if (!A.Portfolio)
      continue;
    RacerStats R = armRacer(A);
    std::printf("  %-18s %8llu %9llu %9llu %12llu %12llu %10llu\n", A.Name,
                static_cast<unsigned long long>(R.FastWins),
                static_cast<unsigned long long>(R.SoundWins),
                static_cast<unsigned long long>(R.Fallbacks),
                static_cast<unsigned long long>(R.FastConflicts),
                static_cast<unsigned long long>(R.SoundConflicts),
                static_cast<unsigned long long>(R.FastReused));
  }

  // Gates.
  const Arm *SeedA = &Arms[0];
  const Arm *SharedA = nullptr, *SharedConeA = nullptr, *PortA = nullptr,
            *Par2A = nullptr, *Par8A = nullptr, *ForkPar8A = nullptr;
  for (const Arm &A : Arms) {
    if (std::strcmp(A.Name, "shared") == 0)
      SharedA = &A;
    if (std::strcmp(A.Name, "shared_cone") == 0)
      SharedConeA = &A;
    if (std::strcmp(A.Name, "portfolio") == 0)
      PortA = &A;
    if (std::strcmp(A.Name, "portfolio_par2") == 0)
      Par2A = &A;
    if (std::strcmp(A.Name, "portfolio_par8") == 0)
      Par8A = &A;
    if (std::strcmp(A.Name, "fork_par8") == 0)
      ForkPar8A = &A;
  }

  bool ShapeOk = TA.allEq() > TA.A2Eq && (TA.CUEq + TA.CUNeq) > 0 &&
                 TA.Plaus > TA.allEq();
  bool SeedParityOk = SeedA->Mismatches == 0;
  bool DefaultParityOk = DefaultArm < 0 ||
                         Arms[static_cast<size_t>(DefaultArm)].Mismatches == 0;

  // Seed -> fork: the PR-2 win must not regress (vacuous when stage 4 had
  // no work to do in either backend). The SAT-work ratio is deterministic
  // (1.08x on the full corpus — most of the win is the skipped per-query
  // re-encode, which conflicts don't count); the wall ratio carries the
  // real reduction but is machine-sensitive (measured 1.8-2.9x across
  // hosts and corpus subsets), so it gates at 1.5x: low enough to be
  // stable, high enough that losing the session reuse (ratio -> ~1.0)
  // still trips it.
  double SeedSatRatio = ratio(SeedA->T.splitSatWork(), TA.splitSatWork());
  double SeedWallRatio = ratio(SeedA->T.SplitWallNanos, TA.SplitWallNanos);
  bool NoSplitWork = SeedA->T.splitSatWork() == 0 && TA.splitSatWork() == 0 &&
                     SeedA->T.SplitWallNanos == 0 && TA.SplitWallNanos == 0;
  bool SpeedupOk = NoSplitWork || SeedSatRatio >= 2.0 || SeedWallRatio >= 1.5;

  // Cone projection must remove the shared-learnt propagation overhead:
  // >= 1.5x fewer propagations than the plain shared-learnt baseline.
  // Vacuously OK when the splitting stage did no SAT work in either arm
  // (nothing reached stage 4): there is no overhead to remove.
  bool NoSharedWork = SharedA && SharedConeA &&
                      SharedA->T.SplitWork.Propagations == 0 &&
                      SharedConeA->T.SplitWork.Propagations == 0;
  double ConePropRatio =
      SharedA && SharedConeA
          ? ratio(SharedA->T.SplitWork.Propagations,
                  SharedConeA->T.SplitWork.Propagations)
          : 0.0;
  bool ConeGateOk = !SharedA || !SharedConeA || NoSharedWork ||
                    ConePropRatio >= 1.5;

  // Parallel cell dispatch: bit-identical results at every worker count.
  // portfolio_par2 == portfolio_par8 checks the fan-out is schedule-free;
  // fork == fork_par8 checks the batch machinery alone (no racing in the
  // mix) reproduces the sequential loop exactly.
  bool ParCellBitOk =
      (!Par2A || !Par8A || recordsBitEqual(*Par2A, *Par8A)) &&
      (!ForkPar8A || recordsBitEqual(Arms[ForkArm], *ForkPar8A));

  // The portfolio's splitting stage must cost exactly the sound fork's
  // SAT work: the adaptive probe gate retires the fast arm at the cunroll
  // budget, so stage 4 runs pure sound forks. Work equality is exact and
  // deterministic; the wall comparison gets slack for timer noise (the
  // work being identical, the wall should track fork closely).
  bool PortSplitWorkOk = !PortA || PortA->T.splitSatWork() ==
                                       TA.splitSatWork();
  double PortSplitWallX =
      PortA && TA.SplitWallNanos
          ? static_cast<double>(PortA->T.SplitWallNanos) /
                static_cast<double>(TA.SplitWallNanos)
          : 1.0;
  bool PortfolioSplitOk = PortSplitWorkOk && PortSplitWallX <= 1.25;

  // Observability gates on the traced portfolio arm: the per-stage span
  // args and the tv.* counters must reproduce the StageSatWork/
  // StageInterpWork tallies svc aggregated from the same TVResults
  // (cache-free funnel, so every verify task emits exactly one set of
  // stage spans). The portfolio win/fallback attribution rides the same
  // parity: span args and counters both derive from PortfolioArm.
  svc::StageSatWork FA2, FCU, FSP;
  svc::StageInterpWork FCK;
  uint64_t FA2Nanos = 0, FCUNanos = 0, FSPNanos = 0, FCKNanos = 0;
  size_t VerifyTasks = 0;
  for (const FunnelRecord &R : Arms[TracedArm].Records) {
    if (R.HadPlausible)
      ++VerifyTasks;
    FA2.add(R.Alive2Work);
    FCU.add(R.CUnrollWork);
    FSP.add(R.SplitWork);
    FCK.add(R.ChecksumWork);
    FA2Nanos += R.Result.Alive2Nanos;
    FCUNanos += R.Result.CUnrollNanos;
    FSPNanos += R.Result.SplitNanos;
    FCKNanos += R.Result.ChecksumNanos;
  }
  auto satStageParity = [&](const char *Span, const svc::StageSatWork &W) {
    return sumSpanArg(Events, Span, "conflicts") == W.Conflicts &&
           sumSpanArg(Events, Span, "propagations") == W.Propagations &&
           sumSpanArg(Events, Span, "restarts") == W.Restarts &&
           sumSpanArg(Events, Span, "trail_reused") == W.TrailReused;
  };
  // Stages 3/4 run through the portfolio session; their spans carry the
  // racer attribution and must reproduce the StageSatWork tallies.
  auto portfolioStageParity = [&](const char *Span,
                                  const svc::StageSatWork &W) {
    return sumSpanArg(Events, Span, "portfolio_fast_wins") ==
               W.PortfolioFastWins &&
           sumSpanArg(Events, Span, "portfolio_sound_wins") ==
               W.PortfolioSoundWins &&
           sumSpanArg(Events, Span, "portfolio_fallbacks") ==
               W.PortfolioFallbacks;
  };
  bool SpanParityOk =
      satStageParity("stage.alive2", FA2) &&
      satStageParity("stage.cunroll", FCU) &&
      satStageParity("stage.split", FSP) &&
      portfolioStageParity("stage.cunroll", FCU) &&
      portfolioStageParity("stage.split", FSP) &&
      sumSpanArg(Events, "stage.checksum", "instrs") == FCK.Instrs &&
      sumSpanArg(Events, "stage.checksum", "cand_runs") == FCK.CandRuns &&
      sumSpanArg(Events, "stage.checksum", "scalar_runs") == FCK.ScalarRuns &&
      countSpans(Events, "task.verify") == VerifyTasks;
  // The EquivResult per-stage nanos are *sourced from* the spans (the Span
  // DurOut accumulates the same duration the event records), so the span
  // durations must sum to the record fields exactly.
  auto sumSpanDur = [&](const char *Name) {
    uint64_t Sum = 0;
    for (const obs::TraceEvent &Ev : Events)
      if (std::strcmp(Ev.Name, Name) == 0)
        Sum += Ev.DurNs;
    return Sum;
  };
  bool WallParityOk = sumSpanDur("stage.alive2") == FA2Nanos &&
                      sumSpanDur("stage.cunroll") == FCUNanos &&
                      sumSpanDur("stage.split") == FSPNanos &&
                      sumSpanDur("stage.checksum") == FCKNanos;
  // tv.* counters aggregate every solver query; in the funnel each query
  // result lands in exactly one of the three stage works.
  auto cval = [&](const char *Name) {
    for (const obs::CounterSample &C : Counters)
      if (C.Name == Name)
        return C.Value;
    return static_cast<uint64_t>(0);
  };
  bool CounterParityOk =
      cval("tv.conflicts") == FA2.Conflicts + FCU.Conflicts + FSP.Conflicts &&
      cval("tv.propagations") ==
          FA2.Propagations + FCU.Propagations + FSP.Propagations &&
      cval("tv.restarts") == FA2.Restarts + FCU.Restarts + FSP.Restarts &&
      cval("tv.trail_reused") ==
          FA2.TrailReused + FCU.TrailReused + FSP.TrailReused &&
      cval("tv.portfolio_fast_wins") ==
          FA2.PortfolioFastWins + FCU.PortfolioFastWins +
              FSP.PortfolioFastWins &&
      cval("tv.portfolio_sound_wins") ==
          FA2.PortfolioSoundWins + FCU.PortfolioSoundWins +
              FSP.PortfolioSoundWins &&
      cval("tv.portfolio_fallbacks") ==
          FA2.PortfolioFallbacks + FCU.PortfolioFallbacks +
              FSP.PortfolioFallbacks &&
      cval("svc.tasks") == VerifyTasks;
  std::string TraceErr, MetricsErr;
  std::vector<std::string> TraceKeys, MetricsKeys;
  auto hasKey = [](const std::vector<std::string> &Keys, const char *K) {
    for (const std::string &S : Keys)
      if (S == K)
        return true;
    return false;
  };
  bool TraceJsonOk = obs::json::validate(TraceDoc, &TraceErr, &TraceKeys) &&
                     hasKey(TraceKeys, "traceEvents");
  bool MetricsJsonOk =
      obs::json::validate(MetricsDoc, &MetricsErr, &MetricsKeys) &&
      hasKey(MetricsKeys, "schema_version") &&
      hasKey(MetricsKeys, "counters") && hasKey(MetricsKeys, "histograms");
  obs::TraceStats TS = obs::traceStats();

  std::printf("\n  funnel shape (stages add verdicts beyond Alive2): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  std::printf("  seed == fork verdicts on all %d pairs: %s\n", Total,
              SeedParityOk ? "OK" : "MISMATCH");
  std::printf("  default config (%s) parity: %s\n",
              DefaultArm >= 0 ? Arms[static_cast<size_t>(DefaultArm)].Name
                              : "n/a",
              DefaultParityOk ? "OK" : "MISMATCH");
  std::printf("  full matrix bit-identical: %s (%d mismatching verdicts)\n",
              TotalMismatches == 0 ? "OK" : "NO", TotalMismatches);
  std::printf("  seed->fork splitting reduction (>=2x sat or >=1.5x wall): "
              "%s (%.2fx sat, %.2fx wall)\n",
              SpeedupOk ? "OK" : "MISMATCH", SeedSatRatio, SeedWallRatio);
  std::printf("  >=1.5x shared-learnt propagation cut from cone: %s "
              "(%.2fx)\n",
              ConeGateOk ? "OK" : "MISMATCH", ConePropRatio);
  std::printf("  parallel cell dispatch bit-identical at 1/2/8 workers: "
              "%s\n",
              ParCellBitOk ? "OK" : "MISMATCH");
  std::printf("  portfolio splitting == fork SAT work, wall <= 1.25x: %s "
              "(%.2fx wall)\n",
              PortfolioSplitOk ? "OK" : "MISMATCH", PortSplitWallX);
  std::printf("  stage span sums reproduce StageSat/InterpWork tallies: %s\n",
              SpanParityOk ? "OK" : "MISMATCH");
  std::printf("  stage span durations reproduce EquivResult nanos: %s\n",
              WallParityOk ? "OK" : "MISMATCH");
  std::printf("  tv.*/svc.* counters reproduce stage tallies: %s\n",
              CounterParityOk ? "OK" : "MISMATCH");
  std::printf("  trace/metrics JSON well-formed: %s / %s\n",
              TraceJsonOk ? "OK" : TraceErr.c_str(),
              MetricsJsonOk ? "OK" : MetricsErr.c_str());
  std::printf("  trace: %llu events on %llu thread(s), %llu dropped\n",
              static_cast<unsigned long long>(TS.Events),
              static_cast<unsigned long long>(TS.Threads),
              static_cast<unsigned long long>(TS.Dropped));
  std::printf("  store cold run: %.1fms wall, %.1fms checksum+split spans, "
              "%llu writes\n",
              static_cast<double>(ColdRun.WallNs) / 1e6,
              static_cast<double>(ColdRun.StageNs) / 1e6,
              static_cast<unsigned long long>(ColdRun.Stats.Store.Writes));
  std::printf("  store warm run: %.1fms wall, %.1fms checksum+split spans, "
              "%llu hits, %llu misses\n",
              static_cast<double>(WarmRun.WallNs) / 1e6,
              static_cast<double>(WarmRun.StageNs) / 1e6,
              static_cast<unsigned long long>(WarmRun.Stats.Store.Hits),
              static_cast<unsigned long long>(WarmRun.Stats.Store.Misses));
  std::printf("  warm replay bit-identical EquivResults: %s\n",
              StoreBitOk ? "OK" : "MISMATCH");
  std::printf("  warm run pure store hits, cold run persisted: %s\n",
              StoreWarmOk && StoreColdOk ? "OK" : "MISMATCH");
  std::printf("  warm checksum+split spans collapse (>= 5x under cold): %s\n",
              StoreSpeedOk ? "OK" : "MISMATCH");
  std::printf("  store funnel matches default arm (Final/DecidedBy): %s\n",
              StoreArmParityOk ? "OK" : "MISMATCH");
  if (HavePersist)
    std::printf("  persistent store run (--store): %llu hits, %llu writes, "
                "parity %s\n",
                static_cast<unsigned long long>(PersistRun.Stats.Store.Hits),
                static_cast<unsigned long long>(PersistRun.Stats.Store.Writes),
                PersistOk ? "OK" : "MISMATCH");

  // Machine-readable mirror for the perf trajectory (envelope comes from
  // the shared writeBenchJson writer).
  std::string J;
  appendf(J, "  \"funnel\": {\n");
  appendf(J,
          "    \"checksum\": {\"total\": %d, \"equiv\": 0, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          Total, TA.ChecksumNotEq, TA.Plaus);
  appendf(J,
          "    \"alive2\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.Plaus, TA.A2Eq, TA.A2Neq, TA.A2In);
  appendf(J,
          "    \"c_unroll\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.A2In, TA.CUEq, TA.CUNeq, TA.CUIn);
  appendf(J,
          "    \"splitting\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.CUIn, TA.SpEq, TA.SpNeq, TA.SpIn);
  appendf(J,
          "    \"all\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d}\n  },\n",
          Total, TA.allEq(), TA.allNeq(), TA.SpIn);
  appendf(J, "  \"arms\": [\n");
  for (size_t I = 0; I < Arms.size(); ++I) {
    const Arm &A = Arms[I];
    RacerStats R = armRacer(A);
    appendf(J,
            "    {\"name\": \"%s\", \"queries\": %d, \"conflicts\": %llu, "
            "\"propagations\": %llu, \"trail_reused\": %llu, "
            "\"wall_ns\": %llu, \"mismatches\": %d, "
            "\"cell_workers\": %d, \"portfolio\": %s, "
            "\"fast_wins\": %llu, \"sound_wins\": %llu, "
            "\"fallbacks\": %llu, \"fast_conflicts\": %llu, "
            "\"fast_propagations\": %llu, \"fast_trail_reused\": %llu, "
            "\"fast_cone_vars\": %llu, \"fast_cone_clauses\": %llu, "
            "\"sound_conflicts\": %llu, \"sound_propagations\": %llu}%s\n",
            A.Name, A.T.SplitQueries,
            static_cast<unsigned long long>(A.T.SplitWork.Conflicts),
            static_cast<unsigned long long>(A.T.SplitWork.Propagations),
            static_cast<unsigned long long>(A.T.SplitWork.TrailReused),
            static_cast<unsigned long long>(A.T.SplitWallNanos),
            A.Mismatches, A.CellWorkers, A.Portfolio ? "true" : "false",
            static_cast<unsigned long long>(R.FastWins),
            static_cast<unsigned long long>(R.SoundWins),
            static_cast<unsigned long long>(R.Fallbacks),
            static_cast<unsigned long long>(R.FastConflicts),
            static_cast<unsigned long long>(R.FastProps),
            static_cast<unsigned long long>(R.FastReused),
            static_cast<unsigned long long>(R.FastConeVars),
            static_cast<unsigned long long>(R.FastConeClauses),
            static_cast<unsigned long long>(R.SoundConflicts),
            static_cast<unsigned long long>(R.SoundProps),
            I + 1 < Arms.size() ? "," : "");
  }
  appendf(J, "  ],\n");
  // Per-stage SAT work of the default configuration (the numbers the svc
  // Outcome aggregation feeds): alive2 / c-unroll / splitting.
  if (DefaultArm >= 0) {
    svc::StageSatWork A2, CU, SP;
    for (const FunnelRecord &R :
         Arms[static_cast<size_t>(DefaultArm)].Records) {
      A2.add(R.Alive2Work);
      CU.add(R.CUnrollWork);
      SP.add(R.SplitWork);
    }
    appendf(J, "  \"default_mode\": \"%s\",\n",
            Arms[static_cast<size_t>(DefaultArm)].Name);
    appendf(J, "  \"default_stage_work\": {\n");
    auto StageJson = [&](const char *Name, const svc::StageSatWork &W,
                         const char *Sep) {
      appendf(J,
              "    \"%s\": {\"conflicts\": %llu, \"propagations\": %llu, "
              "\"restarts\": %llu, \"trail_reused\": %llu, "
              "\"portfolio_fast_wins\": %llu, "
              "\"portfolio_sound_wins\": %llu, "
              "\"portfolio_fallbacks\": %llu, \"fast_conflicts\": %llu, "
              "\"fast_propagations\": %llu}%s\n",
              Name, static_cast<unsigned long long>(W.Conflicts),
              static_cast<unsigned long long>(W.Propagations),
              static_cast<unsigned long long>(W.Restarts),
              static_cast<unsigned long long>(W.TrailReused),
              static_cast<unsigned long long>(W.PortfolioFastWins),
              static_cast<unsigned long long>(W.PortfolioSoundWins),
              static_cast<unsigned long long>(W.PortfolioFallbacks),
              static_cast<unsigned long long>(W.FastConflicts),
              static_cast<unsigned long long>(W.FastPropagations), Sep);
    };
    StageJson("alive2", A2, ",");
    StageJson("c_unroll", CU, ",");
    StageJson("splitting", SP, "");
    appendf(J, "  },\n");
  }
  appendf(J, "  \"seed_sat_ratio\": %.3f,\n  \"seed_wall_ratio\": %.3f,\n",
          SeedSatRatio, SeedWallRatio);
  appendf(J, "  \"cone_prop_ratio\": %.3f,\n", ConePropRatio);
  appendf(J, "  \"portfolio_split_wall_x\": %.3f,\n", PortSplitWallX);
  appendf(J, "  \"total_mismatches\": %d,\n", TotalMismatches);
  appendf(J,
          "  \"obs\": {\"trace_events\": %llu, \"trace_threads\": %llu, "
          "\"trace_dropped\": %llu, \"verify_tasks\": %llu},\n",
          static_cast<unsigned long long>(TS.Events),
          static_cast<unsigned long long>(TS.Threads),
          static_cast<unsigned long long>(TS.Dropped),
          static_cast<unsigned long long>(VerifyTasks));
  appendf(J,
          "  \"shape_ok\": %s,\n  \"seed_parity_ok\": %s,\n"
          "  \"default_parity_ok\": %s,\n  \"speedup_ok\": %s,\n"
          "  \"cone_gate_ok\": %s,\n  \"par_cell_bit_ok\": %s,\n"
          "  \"portfolio_split_ok\": %s,\n",
          ShapeOk ? "true" : "false", SeedParityOk ? "true" : "false",
          DefaultParityOk ? "true" : "false", SpeedupOk ? "true" : "false",
          ConeGateOk ? "true" : "false", ParCellBitOk ? "true" : "false",
          PortfolioSplitOk ? "true" : "false");
  appendf(J,
          "  \"span_parity_ok\": %s,\n  \"wall_parity_ok\": %s,\n"
          "  \"counter_parity_ok\": %s,\n  \"trace_json_ok\": %s,\n"
          "  \"metrics_json_ok\": %s,\n",
          SpanParityOk ? "true" : "false", WallParityOk ? "true" : "false",
          CounterParityOk ? "true" : "false", TraceJsonOk ? "true" : "false",
          MetricsJsonOk ? "true" : "false");
  auto appendStoreRun = [&](const char *Name, const StoreRun &R) {
    appendf(J,
            "    \"%s\": {\"wall_ns\": %llu, \"stage_span_ns\": %llu, "
            "\"cache\": {\"hits\": %llu, \"misses\": %llu}, "
            "\"store\": {\"hits\": %llu, \"misses\": %llu, \"writes\": "
            "%llu, \"corrupt_skipped\": %llu, \"version_skipped\": "
            "%llu}},\n",
            Name, static_cast<unsigned long long>(R.WallNs),
            static_cast<unsigned long long>(R.StageNs),
            static_cast<unsigned long long>(R.Stats.Cache.Hits),
            static_cast<unsigned long long>(R.Stats.Cache.Misses),
            static_cast<unsigned long long>(R.Stats.Store.Hits),
            static_cast<unsigned long long>(R.Stats.Store.Misses),
            static_cast<unsigned long long>(R.Stats.Store.Writes),
            static_cast<unsigned long long>(R.Stats.Store.CorruptSkipped),
            static_cast<unsigned long long>(R.Stats.Store.VersionSkipped));
  };
  appendf(J, "  \"warm_start\": {\n");
  appendStoreRun("cold", ColdRun);
  appendStoreRun("warm", WarmRun);
  if (HavePersist)
    appendStoreRun("persistent", PersistRun);
  appendf(J,
          "    \"bit_identical_ok\": %s,\n    \"cold_ok\": %s,\n"
          "    \"warm_ok\": %s,\n    \"speed_ok\": %s,\n"
          "    \"arm_parity_ok\": %s,\n    \"persistent_ok\": %s\n  }",
          StoreBitOk ? "true" : "false", StoreColdOk ? "true" : "false",
          StoreWarmOk ? "true" : "false", StoreSpeedOk ? "true" : "false",
          StoreArmParityOk ? "true" : "false", PersistOk ? "true" : "false");
  bool JsonOk =
      writeBenchJson("bench_table3_equivalence", Opt, J, "BENCH_table3.json");

  // --trace/--metrics artifacts: the trace buffers still hold only the
  // portfolio arm's spans (the other arms ran untraced); the metrics file
  // covers the whole run.
  obs::setTracingEnabled(TraceRequested);
  bool ObsOk = writeObsArtifacts(Opt);

  bool StoreOk = StoreBitOk && StoreColdOk && StoreWarmOk && StoreSpeedOk &&
                 StoreArmParityOk && PersistOk;

  return ShapeOk && SeedParityOk && DefaultParityOk && SpeedupOk &&
                 ConeGateOk && ParCellBitOk && PortfolioSplitOk &&
                 SpanParityOk && WallParityOk && CounterParityOk &&
                 TraceJsonOk && MetricsJsonOk && StoreOk && JsonOk && ObsOk
             ? 0
             : 1;
}
