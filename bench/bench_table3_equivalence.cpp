//===- bench/bench_table3_equivalence.cpp - Table 3 reproduction --------------===//
//
// Reproduces paper Table 3: the staged equivalence-checking funnel over the
// TSVC dataset. Each stage consumes the previous stage's Inconclusive
// set:
//
//      Techniques   Total   Equiv  NotEquiv  Inconcl     (paper)
//      Checksum      149      0       24       125
//      Alive2        125     26       17        82
//      C-Unroll       82     28       18        36
//      Splitting      36      3        2        31
//      All           149     57       61        31
//
// We report the same funnel for our pipeline, plus per-stage query-size
// statistics showing *why* the domain-specific techniques scale better
// (the paper's §3 argument).
//
// The funnel runs twice: once with the seed implementation of the
// spatial-splitting stage (a frozen copy of the seed smt stack in
// bench/seedref/ — per-Clause vector solver, by-value blaster — driven
// scratch per cell exactly as the seed did) and once with the incremental
// backend (one RefinementSession per test: symbolic execution and the
// common encoding blast once, per-cell queries run in cheap forks of the
// pristine base). The run verifies that every test reaches an identical
// verdict and measures the SAT-work / wall-time reduction on the
// spatial-splitting stage; everything is mirrored to BENCH_table3.json
// for CI tracking.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "bench/seedref/SeedRef.h"
#include "support/Format.h"

#include <cstdio>
#include <fstream>

using namespace lv;
using namespace lv::bench;
using core::EquivResult;
using core::Stage;

namespace {

/// Funnel tallies for one run.
struct FunnelTally {
  int ChecksumNotEq = 0, Plaus = 0;
  int A2Eq = 0, A2Neq = 0, A2In = 0;
  int CUEq = 0, CUNeq = 0, CUIn = 0;
  int SpEq = 0, SpNeq = 0, SpIn = 0;
  uint64_t A2Clauses = 0, CUClauses = 0, SpClauses = 0;
  int A2N = 0, CUN = 0, SpN = 0;
  // Spatial-splitting stage cost.
  uint64_t SplitConflicts = 0;
  uint64_t SplitPropagations = 0;
  uint64_t SplitWallNanos = 0;
  int SplitQueries = 0;

  int allEq() const { return A2Eq + CUEq + SpEq; }
  int allNeq() const { return ChecksumNotEq + A2Neq + CUNeq + SpNeq; }
  uint64_t splitSatWork() const { return SplitConflicts + SplitPropagations; }
};

FunnelTally tally(const std::vector<FunnelRecord> &Funnel) {
  FunnelTally T;
  for (const FunnelRecord &R : Funnel) {
    // Splitting-stage cost is charged whenever the stage ran, regardless
    // of which stage decided.
    for (const tv::TVResult &S : R.Result.SplitRes) {
      T.SplitConflicts += S.Conflicts;
      T.SplitPropagations += S.Propagations;
      ++T.SplitQueries;
    }
    T.SplitWallNanos += R.Result.SplitNanos;

    if (!R.HadPlausible) {
      ++T.ChecksumNotEq;
      continue;
    }
    // A plausible candidate entering the funnel may still be rejected by
    // the fresh checksum run inside checkEquivalence; count it as decided
    // by testing.
    if (R.Result.DecidedBy == Stage::Checksum) {
      ++T.ChecksumNotEq;
      continue;
    }
    ++T.Plaus;
    const tv::TVResult &A = R.Result.Alive2Res;
    bool A2Decided = A.V == tv::TVVerdict::Equivalent ||
                     A.V == tv::TVVerdict::Inequivalent;
    if (A.Clauses > 0) {
      T.A2Clauses += A.Clauses;
      ++T.A2N;
    }
    if (A.V == tv::TVVerdict::Equivalent)
      ++T.A2Eq;
    else if (A.V == tv::TVVerdict::Inequivalent)
      ++T.A2Neq;
    else
      ++T.A2In;
    if (A2Decided)
      continue;
    const tv::TVResult &CU = R.Result.CUnrollRes;
    bool CUDecided = CU.V == tv::TVVerdict::Equivalent ||
                     CU.V == tv::TVVerdict::Inequivalent;
    if (CU.Clauses > 0) {
      T.CUClauses += CU.Clauses;
      ++T.CUN;
    }
    if (CU.V == tv::TVVerdict::Equivalent)
      ++T.CUEq;
    else if (CU.V == tv::TVVerdict::Inequivalent)
      ++T.CUNeq;
    else
      ++T.CUIn;
    if (CUDecided)
      continue;
    for (const tv::TVResult &S : R.Result.SplitRes)
      if (S.Clauses > 0) {
        T.SpClauses += S.Clauses;
        ++T.SpN;
      }
    if (R.Result.DecidedBy == Stage::Splitting) {
      if (R.Result.Final == EquivResult::Equivalent)
        ++T.SpEq;
      else
        ++T.SpNeq;
    } else {
      ++T.SpIn;
    }
  }
  return T;
}

/// Before/After ratio; an idle "after" side means either no regression to
/// measure (both zero -> 1.0) or an unmeasurably large win (capped so the
/// JSON stays finite).
double ratio(uint64_t Before, uint64_t After) {
  if (After == 0)
    return Before ? 1e9 : 1.0;
  return static_cast<double>(Before) / static_cast<double>(After);
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  printHeader("Table 3: equivalence-checking funnel");
  std::printf("  sampling candidates and running Algorithm 1 over %zu "
              "tests (--jobs %d)...\n",
              tsvc::suite().size(), Opt.Jobs);
  std::vector<TestCorpus> Corpus = buildCorpus(100, ExperimentSeed,
                                               Opt.Jobs);

  core::EquivConfig Cfg;
  Cfg.ScalarMax = 8;
  Cfg.MaxTerms = 120'000;
  Cfg.Alive2Budget = 500;
  Cfg.CUnrollBudget = 2'000;
  Cfg.SplitBudget = 300;

  // Before: the seed implementation (frozen seed smt stack, scratch
  // solver + full re-blast per cell).
  Cfg.IncrementalSolving = false;
  Cfg.SplitCellOverride = [](const vir::VFunction &S, const vir::VFunction &T,
                             const tv::RefineOptions &RO) {
    return seedref::checkRefinementSeed(S, T, RO);
  };
  std::printf("  [1/2] seed backend (frozen reference)...\n");
  std::vector<FunnelRecord> Before = runFunnel(Corpus, Cfg, Opt.Jobs);
  // After: shared incremental sessions.
  Cfg.IncrementalSolving = true;
  Cfg.SplitCellOverride = nullptr;
  std::printf("  [2/2] incremental backend...\n");
  std::vector<FunnelRecord> After = runFunnel(Corpus, Cfg, Opt.Jobs);

  FunnelTally TB = tally(Before);
  FunnelTally TA = tally(After);

  // Verdict parity: the optimization must not change Table 3.
  int VerdictMismatches = 0;
  for (size_t I = 0; I < After.size(); ++I) {
    if (Before[I].Result.Final != After[I].Result.Final ||
        Before[I].Result.DecidedBy != After[I].Result.DecidedBy) {
      ++VerdictMismatches;
      std::printf("  VERDICT MISMATCH %s: seed %s/%s vs incremental "
                  "%s/%s\n",
                  After[I].Name.c_str(),
                  core::outcomeName(Before[I].Result.Final),
                  core::stageName(Before[I].Result.DecidedBy),
                  core::outcomeName(After[I].Result.Final),
                  core::stageName(After[I].Result.DecidedBy));
    }
  }

  std::printf("\n  %-12s %7s %7s %9s %9s   (paper)\n", "Technique", "Total",
              "Equiv", "NotEquiv", "Inconcl");
  std::printf("  %-12s %7d %7d %9d %9d   149/0/24/125\n", "Checksum", 149,
              0, TA.ChecksumNotEq, TA.Plaus);
  std::printf("  %-12s %7d %7d %9d %9d   125/26/17/82\n", "Alive2",
              TA.Plaus, TA.A2Eq, TA.A2Neq, TA.A2In);
  std::printf("  %-12s %7d %7d %9d %9d   82/28/18/36\n", "C-Unroll",
              TA.A2In, TA.CUEq, TA.CUNeq, TA.CUIn);
  std::printf("  %-12s %7d %7d %9d %9d   36/3/2/31\n", "Splitting",
              TA.CUIn, TA.SpEq, TA.SpNeq, TA.SpIn);
  std::printf("  %-12s %7d %7d %9d %9d   149/57/61/31\n", "All", 149,
              TA.allEq(), TA.allNeq(), TA.SpIn);

  std::printf("\n  mean SAT clauses per query (why the techniques scale):\n");
  if (TA.A2N)
    std::printf("    alive2-unroll: %10llu\n",
                static_cast<unsigned long long>(
                    TA.A2Clauses / static_cast<uint64_t>(TA.A2N)));
  if (TA.CUN)
    std::printf("    c-unroll:      %10llu\n",
                static_cast<unsigned long long>(
                    TA.CUClauses / static_cast<uint64_t>(TA.CUN)));
  if (TA.SpN)
    std::printf("    splitting:     %10llu (per cell)\n",
                static_cast<unsigned long long>(
                    TA.SpClauses / static_cast<uint64_t>(TA.SpN)));

  // Incremental-backend win on the spatial-splitting stage.
  double SatWorkRatio = ratio(TB.splitSatWork(), TA.splitSatWork());
  double WallRatio = ratio(TB.SplitWallNanos, TA.SplitWallNanos);
  std::printf("\n  spatial-splitting stage, seed -> incremental "
              "(%d -> %d per-cell queries):\n",
              TB.SplitQueries, TA.SplitQueries);
  std::printf("    conflicts:     %10llu -> %10llu\n",
              static_cast<unsigned long long>(TB.SplitConflicts),
              static_cast<unsigned long long>(TA.SplitConflicts));
  std::printf("    propagations:  %10llu -> %10llu\n",
              static_cast<unsigned long long>(TB.SplitPropagations),
              static_cast<unsigned long long>(TA.SplitPropagations));
  std::printf("    SAT work:      %10llu -> %10llu   (%.2fx)\n",
              static_cast<unsigned long long>(TB.splitSatWork()),
              static_cast<unsigned long long>(TA.splitSatWork()),
              SatWorkRatio);
  std::printf("    wall time:     %8.1fms -> %8.1fms   (%.2fx)\n",
              static_cast<double>(TB.SplitWallNanos) / 1e6,
              static_cast<double>(TA.SplitWallNanos) / 1e6, WallRatio);

  // Shape checks: verification grows across stages; the domain-specific
  // stages verify + refute additional tests beyond plain Alive2; the
  // incremental backend halves splitting-stage cost without moving a
  // single verdict.
  bool ShapeOk = TA.allEq() > TA.A2Eq && (TA.CUEq + TA.CUNeq) > 0 &&
                 TA.Plaus > TA.allEq();
  // Vacuously OK when the splitting stage did no work in either backend
  // (nothing reached stage 4): there is no cost to reduce.
  bool NoSplitWork = TB.splitSatWork() == 0 && TA.splitSatWork() == 0 &&
                     TB.SplitWallNanos == 0 && TA.SplitWallNanos == 0;
  bool SpeedupOk = NoSplitWork || SatWorkRatio >= 2.0 || WallRatio >= 2.0;
  bool VerdictsOk = VerdictMismatches == 0;
  std::printf("\n  funnel shape (stages add verdicts beyond Alive2): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  std::printf("  identical verdicts across backends: %s\n",
              VerdictsOk ? "OK" : "MISMATCH");
  std::printf("  >=2x splitting-stage reduction: %s\n",
              SpeedupOk ? "OK" : "MISMATCH");

  // Machine-readable mirror for the perf trajectory.
  std::string J = "{\n";
  appendf(J, "  \"name\": \"bench_table3_equivalence\",\n");
  appendf(J, "  \"jobs\": %d,\n", Opt.Jobs);
  appendf(J, "  \"funnel\": {\n");
  appendf(J,
          "    \"checksum\": {\"total\": 149, \"equiv\": 0, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.ChecksumNotEq, TA.Plaus);
  appendf(J,
          "    \"alive2\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.Plaus, TA.A2Eq, TA.A2Neq, TA.A2In);
  appendf(J,
          "    \"c_unroll\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.A2In, TA.CUEq, TA.CUNeq, TA.CUIn);
  appendf(J,
          "    \"splitting\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.CUIn, TA.SpEq, TA.SpNeq, TA.SpIn);
  appendf(J,
          "    \"all\": {\"total\": 149, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d}\n  },\n",
          TA.allEq(), TA.allNeq(), TA.SpIn);
  appendf(J, "  \"splitting_stage\": {\n");
  appendf(J,
          "    \"seed\": {\"queries\": %d, \"conflicts\": %llu, "
          "\"propagations\": %llu, \"wall_ns\": %llu},\n",
          TB.SplitQueries,
          static_cast<unsigned long long>(TB.SplitConflicts),
          static_cast<unsigned long long>(TB.SplitPropagations),
          static_cast<unsigned long long>(TB.SplitWallNanos));
  appendf(J,
          "    \"incremental\": {\"queries\": %d, \"conflicts\": %llu, "
          "\"propagations\": %llu, \"wall_ns\": %llu},\n",
          TA.SplitQueries,
          static_cast<unsigned long long>(TA.SplitConflicts),
          static_cast<unsigned long long>(TA.SplitPropagations),
          static_cast<unsigned long long>(TA.SplitWallNanos));
  appendf(J,
          "    \"sat_work_ratio\": %.3f,\n    \"wall_ratio\": %.3f\n  },\n",
          SatWorkRatio, WallRatio);
  appendf(J, "  \"verdict_mismatches\": %d,\n", VerdictMismatches);
  appendf(J, "  \"shape_ok\": %s,\n  \"speedup_ok\": %s\n}\n",
          ShapeOk ? "true" : "false", SpeedupOk ? "true" : "false");
  std::ofstream("BENCH_table3.json") << J;

  return ShapeOk && VerdictsOk && SpeedupOk ? 0 : 1;
}
