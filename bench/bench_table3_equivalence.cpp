//===- bench/bench_table3_equivalence.cpp - Table 3 reproduction --------------===//
//
// Reproduces paper Table 3: the staged equivalence-checking funnel over the
// TSVC dataset. Each stage consumes the previous stage's Inconclusive
// set:
//
//      Techniques   Total   Equiv  NotEquiv  Inconcl     (paper)
//      Checksum      149      0       24       125
//      Alive2        125     26       17        82
//      C-Unroll       82     28       18        36
//      Splitting      36      3        2        31
//      All           149     57       61        31
//
// We report the same funnel for our pipeline, plus per-stage query-size
// statistics showing *why* the domain-specific techniques scale better
// (the paper's §3 argument).
//
// The funnel then runs as a *mode matrix* over the query-scoped-solving
// configurations of the SAT backend:
//
//   seed              frozen copy of the seed smt stack (bench/seedref/),
//                     scratch solver + full re-blast per cell — the fixed
//                     "before" baseline
//   fork              PR-3 behaviour: per-query forks of a pristine base
//   fork_cone / _reuse / _cone_reuse
//   shared            shared-learnt: queries solve directly on the base
//                     (learnt clauses persist; heuristics rewound per
//                     query), no per-query fork
//   shared_cone / _reuse / _cone_reuse
//
// Because cone projection and trail reuse perturb search order — and
// budget-bound verdicts are sensitive to search order — the matrix is a
// verdict-parity harness first and a speedup report second: it counts,
// for every arm, tests whose (Final, DecidedBy) differ from the fork
// reference, and the exit gates require (a) seed/fork parity (the PR-2
// invariant), (b) parity for the arm matching the EquivConfig defaults
// (the configuration the svc funnel actually ships), and (c) the
// shared-learnt propagation overhead — measured 2-4x at PR 3 — actually
// removed: shared >= 1.5x the propagations of shared+cone. Everything is
// mirrored to BENCH_table3.json for CI tracking.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "bench/seedref/SeedRef.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>

using namespace lv;
using namespace lv::bench;
using core::EquivResult;
using core::Stage;

namespace {

/// Funnel tallies for one run.
struct FunnelTally {
  int ChecksumNotEq = 0, Plaus = 0;
  int A2Eq = 0, A2Neq = 0, A2In = 0;
  int CUEq = 0, CUNeq = 0, CUIn = 0;
  int SpEq = 0, SpNeq = 0, SpIn = 0;
  uint64_t A2Clauses = 0, CUClauses = 0, SpClauses = 0;
  int A2N = 0, CUN = 0, SpN = 0;
  // Spatial-splitting stage cost (per-stage SatWork aggregated by svc).
  svc::StageSatWork SplitWork;
  uint64_t SplitWallNanos = 0;
  int SplitQueries = 0;

  int allEq() const { return A2Eq + CUEq + SpEq; }
  int allNeq() const { return ChecksumNotEq + A2Neq + CUNeq + SpNeq; }
  uint64_t splitSatWork() const {
    return SplitWork.Conflicts + SplitWork.Propagations;
  }
};

FunnelTally tally(const std::vector<FunnelRecord> &Funnel) {
  FunnelTally T;
  for (const FunnelRecord &R : Funnel) {
    // Splitting-stage cost is charged whenever the stage ran, regardless
    // of which stage decided.
    T.SplitWork.add(R.SplitWork);
    T.SplitQueries += static_cast<int>(R.Result.SplitRes.size());
    T.SplitWallNanos += R.Result.SplitNanos;

    if (!R.HadPlausible) {
      ++T.ChecksumNotEq;
      continue;
    }
    // A plausible candidate entering the funnel may still be rejected by
    // the fresh checksum run inside checkEquivalence; count it as decided
    // by testing.
    if (R.Result.DecidedBy == Stage::Checksum) {
      ++T.ChecksumNotEq;
      continue;
    }
    ++T.Plaus;
    const tv::TVResult &A = R.Result.Alive2Res;
    bool A2Decided = A.V == tv::TVVerdict::Equivalent ||
                     A.V == tv::TVVerdict::Inequivalent;
    if (A.Clauses > 0) {
      T.A2Clauses += A.Clauses;
      ++T.A2N;
    }
    if (A.V == tv::TVVerdict::Equivalent)
      ++T.A2Eq;
    else if (A.V == tv::TVVerdict::Inequivalent)
      ++T.A2Neq;
    else
      ++T.A2In;
    if (A2Decided)
      continue;
    const tv::TVResult &CU = R.Result.CUnrollRes;
    bool CUDecided = CU.V == tv::TVVerdict::Equivalent ||
                     CU.V == tv::TVVerdict::Inequivalent;
    if (CU.Clauses > 0) {
      T.CUClauses += CU.Clauses;
      ++T.CUN;
    }
    if (CU.V == tv::TVVerdict::Equivalent)
      ++T.CUEq;
    else if (CU.V == tv::TVVerdict::Inequivalent)
      ++T.CUNeq;
    else
      ++T.CUIn;
    if (CUDecided)
      continue;
    for (const tv::TVResult &S : R.Result.SplitRes)
      if (S.Clauses > 0) {
        T.SpClauses += S.Clauses;
        ++T.SpN;
      }
    if (R.Result.DecidedBy == Stage::Splitting) {
      if (R.Result.Final == EquivResult::Equivalent)
        ++T.SpEq;
      else
        ++T.SpNeq;
    } else {
      ++T.SpIn;
    }
  }
  return T;
}

/// Before/After ratio; an idle "after" side means either no regression to
/// measure (both zero -> 1.0) or an unmeasurably large win (capped so the
/// JSON stays finite).
double ratio(uint64_t Before, uint64_t After) {
  if (After == 0)
    return Before ? 1e9 : 1.0;
  return static_cast<double>(Before) / static_cast<double>(After);
}

/// One matrix arm: a query-scoped-solving configuration of the funnel.
struct Arm {
  const char *Name;
  bool Seed = false;   ///< Frozen seedref backend (fixed baseline).
  bool Shared = false; ///< SharedLearntSolving.
  bool Cone = false;   ///< ConeProjection.
  bool Reuse = false;  ///< TrailReuse.

  std::vector<FunnelRecord> Records;
  FunnelTally T;
  int Mismatches = 0; ///< Tests whose (Final, DecidedBy) differ from fork.
};

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opt = parseBenchArgs(argc, argv);
  bool Quick = false; // --quick: seed/fork/shared/shared_cone arms only
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;

  // Tracing is scoped to the fork arm only: corpus generation and the
  // other arms would otherwise pollute the span-vs-tally parity sums.
  const bool TraceRequested = obs::tracingEnabled();
  obs::setTracingEnabled(false);

  printHeader("Table 3: equivalence-checking funnel");
  std::printf("  sampling candidates and running Algorithm 1 over %zu "
              "tests (--jobs %d)...\n",
              tsvc::suite().size(), Opt.Jobs);
  std::vector<TestCorpus> Corpus = buildCorpus(100, ExperimentSeed,
                                               Opt.Jobs);

  core::EquivConfig Base;
  Base.ScalarMax = 8;
  Base.MaxTerms = 120'000;
  Base.Alive2Budget = 500;
  Base.CUnrollBudget = 2'000;
  Base.SplitBudget = 300;

  std::vector<Arm> Arms = {
      {"seed", /*Seed=*/true},
      {"fork"},
      {"fork_cone", false, false, true, false},
      {"fork_reuse", false, false, false, true},
      {"fork_cone_reuse", false, false, true, true},
      {"shared", false, true, false, false},
      {"shared_cone", false, true, true, false},
      {"shared_reuse", false, true, false, true},
      {"shared_cone_reuse", false, true, true, true},
  };
  if (Quick)
    Arms = {{"seed", true},
            {"fork"},
            {"shared", false, true, false, false},
            {"shared_cone", false, true, true, false}};

  // The arm that matches the EquivConfig defaults — the configuration the
  // svc funnel actually runs with. Its parity is a hard gate.
  core::EquivConfig Defaults;
  int DefaultArm = -1;

  // The fork arm doubles as the observability reference: it runs traced
  // (fresh trace + metrics), and its span/counter sums are gated against
  // the StageSatWork/StageInterpWork tallies below.
  const size_t ForkArm = 1;
  std::vector<obs::TraceEvent> Events;
  std::vector<obs::CounterSample> Counters;
  std::string TraceDoc, MetricsDoc;

  for (size_t I = 0; I < Arms.size(); ++I) {
    Arm &A = Arms[I];
    core::EquivConfig Cfg = Base;
    if (A.Seed) {
      // Frozen seed smt stack: scratch solver + full re-blast per cell,
      // with none of the query-scoped techniques.
      Cfg.IncrementalSolving = false;
      Cfg.SharedLearntSolving = false;
      Cfg.ConeProjection = false;
      Cfg.TrailReuse = false;
      Cfg.SplitCellOverride = [](const vir::VFunction &S,
                                 const vir::VFunction &T,
                                 const tv::RefineOptions &RO) {
        return seedref::checkRefinementSeed(S, T, RO);
      };
    } else {
      Cfg.SharedLearntSolving = A.Shared;
      Cfg.ConeProjection = A.Cone;
      Cfg.TrailReuse = A.Reuse;
      if (A.Shared == Defaults.SharedLearntSolving &&
          A.Cone == Defaults.ConeProjection &&
          A.Reuse == Defaults.TrailReuse)
        DefaultArm = static_cast<int>(I);
    }
    std::printf("  [%zu/%zu] %s...\n", I + 1, Arms.size(), A.Name);
    if (I == ForkArm) {
      obs::resetTrace();
      obs::resetMetrics();
      obs::setTracingEnabled(true);
    }
    A.Records = runFunnel(Corpus, Cfg, Opt.Jobs);
    A.T = tally(A.Records);
    if (I == ForkArm) {
      obs::setTracingEnabled(false);
      // Scrape immediately: the later arms keep feeding the (always-on)
      // metrics registry, so the parity comparison needs a point-in-time
      // snapshot of counters and both JSON documents.
      Events = obs::snapshotTrace();
      Counters = obs::snapshotCounters();
      TraceDoc = obs::traceChromeJson();
      MetricsDoc = obs::metricsJson();
    }
  }

  // Verdict parity: every arm against the fork reference (and the seed
  // arm transitively — the PR-2 invariant is seed == fork).
  int TotalMismatches = 0;
  for (size_t I = 0; I < Arms.size(); ++I) {
    if (I == ForkArm)
      continue;
    Arm &A = Arms[I];
    for (size_t K = 0; K < A.Records.size(); ++K) {
      if (A.Records[K].Result.Final !=
              Arms[ForkArm].Records[K].Result.Final ||
          A.Records[K].Result.DecidedBy !=
              Arms[ForkArm].Records[K].Result.DecidedBy) {
        ++A.Mismatches;
        std::printf("  VERDICT MISMATCH [%s] %s: %s/%s vs fork %s/%s\n",
                    A.Name, A.Records[K].Name.c_str(),
                    core::outcomeName(A.Records[K].Result.Final),
                    core::stageName(A.Records[K].Result.DecidedBy),
                    core::outcomeName(Arms[ForkArm].Records[K].Result.Final),
                    core::stageName(Arms[ForkArm].Records[K].Result.DecidedBy));
      }
    }
    TotalMismatches += A.Mismatches;
  }

  const FunnelTally &TA = Arms[ForkArm].T; // funnel shape from fork arm

  std::printf("\n  %-12s %7s %7s %9s %9s   (paper)\n", "Technique", "Total",
              "Equiv", "NotEquiv", "Inconcl");
  std::printf("  %-12s %7d %7d %9d %9d   149/0/24/125\n", "Checksum", 149,
              0, TA.ChecksumNotEq, TA.Plaus);
  std::printf("  %-12s %7d %7d %9d %9d   125/26/17/82\n", "Alive2",
              TA.Plaus, TA.A2Eq, TA.A2Neq, TA.A2In);
  std::printf("  %-12s %7d %7d %9d %9d   82/28/18/36\n", "C-Unroll",
              TA.A2In, TA.CUEq, TA.CUNeq, TA.CUIn);
  std::printf("  %-12s %7d %7d %9d %9d   36/3/2/31\n", "Splitting",
              TA.CUIn, TA.SpEq, TA.SpNeq, TA.SpIn);
  std::printf("  %-12s %7d %7d %9d %9d   149/57/61/31\n", "All", 149,
              TA.allEq(), TA.allNeq(), TA.SpIn);

  std::printf("\n  mean SAT clauses per query (why the techniques scale):\n");
  if (TA.A2N)
    std::printf("    alive2-unroll: %10llu\n",
                static_cast<unsigned long long>(
                    TA.A2Clauses / static_cast<uint64_t>(TA.A2N)));
  if (TA.CUN)
    std::printf("    c-unroll:      %10llu\n",
                static_cast<unsigned long long>(
                    TA.CUClauses / static_cast<uint64_t>(TA.CUN)));
  if (TA.SpN)
    std::printf("    splitting:     %10llu (per cell)\n",
                static_cast<unsigned long long>(
                    TA.SpClauses / static_cast<uint64_t>(TA.SpN)));

  // The mode matrix: splitting-stage cost per configuration.
  std::printf("\n  spatial-splitting stage by mode (parity vs fork):\n");
  std::printf("  %-18s %9s %12s %12s %10s %10s %9s\n", "mode", "queries",
              "conflicts", "props", "reusedlits", "wall-ms", "mismatch");
  for (const Arm &A : Arms) {
    std::printf("  %-18s %9d %12llu %12llu %10llu %10.1f %9d\n", A.Name,
                A.T.SplitQueries,
                static_cast<unsigned long long>(A.T.SplitWork.Conflicts),
                static_cast<unsigned long long>(A.T.SplitWork.Propagations),
                static_cast<unsigned long long>(A.T.SplitWork.TrailReused),
                static_cast<double>(A.T.SplitWallNanos) / 1e6,
                A.Mismatches);
  }

  // Gates.
  const Arm *SeedA = &Arms[0];
  const Arm *SharedA = nullptr, *SharedConeA = nullptr;
  for (const Arm &A : Arms) {
    if (std::strcmp(A.Name, "shared") == 0)
      SharedA = &A;
    if (std::strcmp(A.Name, "shared_cone") == 0)
      SharedConeA = &A;
  }

  bool ShapeOk = TA.allEq() > TA.A2Eq && (TA.CUEq + TA.CUNeq) > 0 &&
                 TA.Plaus > TA.allEq();
  bool SeedParityOk = SeedA->Mismatches == 0;
  bool DefaultParityOk = DefaultArm < 0 ||
                         Arms[static_cast<size_t>(DefaultArm)].Mismatches == 0;

  // Seed -> fork: the PR-2 win must not regress (vacuous when stage 4 had
  // no work to do in either backend).
  double SeedSatRatio = ratio(SeedA->T.splitSatWork(), TA.splitSatWork());
  double SeedWallRatio = ratio(SeedA->T.SplitWallNanos, TA.SplitWallNanos);
  bool NoSplitWork = SeedA->T.splitSatWork() == 0 && TA.splitSatWork() == 0 &&
                     SeedA->T.SplitWallNanos == 0 && TA.SplitWallNanos == 0;
  bool SpeedupOk = NoSplitWork || SeedSatRatio >= 2.0 || SeedWallRatio >= 2.0;

  // Cone projection must remove the shared-learnt propagation overhead:
  // >= 1.5x fewer propagations than the plain shared-learnt baseline.
  // Vacuously OK when the splitting stage did no SAT work in either arm
  // (nothing reached stage 4): there is no overhead to remove.
  bool NoSharedWork = SharedA && SharedConeA &&
                      SharedA->T.SplitWork.Propagations == 0 &&
                      SharedConeA->T.SplitWork.Propagations == 0;
  double ConePropRatio =
      SharedA && SharedConeA
          ? ratio(SharedA->T.SplitWork.Propagations,
                  SharedConeA->T.SplitWork.Propagations)
          : 0.0;
  bool ConeGateOk = !SharedA || !SharedConeA || NoSharedWork ||
                    ConePropRatio >= 1.5;

  // Observability gates on the traced fork arm: the per-stage span args
  // and the tv.* counters must reproduce the StageSatWork/StageInterpWork
  // tallies svc aggregated from the same TVResults (cache-free funnel, so
  // every verify task emits exactly one set of stage spans).
  svc::StageSatWork FA2, FCU, FSP;
  svc::StageInterpWork FCK;
  uint64_t FA2Nanos = 0, FCUNanos = 0, FSPNanos = 0, FCKNanos = 0;
  size_t VerifyTasks = 0;
  for (const FunnelRecord &R : Arms[ForkArm].Records) {
    if (R.HadPlausible)
      ++VerifyTasks;
    FA2.add(R.Alive2Work);
    FCU.add(R.CUnrollWork);
    FSP.add(R.SplitWork);
    FCK.add(R.ChecksumWork);
    FA2Nanos += R.Result.Alive2Nanos;
    FCUNanos += R.Result.CUnrollNanos;
    FSPNanos += R.Result.SplitNanos;
    FCKNanos += R.Result.ChecksumNanos;
  }
  auto satStageParity = [&](const char *Span, const svc::StageSatWork &W) {
    return sumSpanArg(Events, Span, "conflicts") == W.Conflicts &&
           sumSpanArg(Events, Span, "propagations") == W.Propagations &&
           sumSpanArg(Events, Span, "restarts") == W.Restarts &&
           sumSpanArg(Events, Span, "trail_reused") == W.TrailReused;
  };
  bool SpanParityOk =
      satStageParity("stage.alive2", FA2) &&
      satStageParity("stage.cunroll", FCU) &&
      satStageParity("stage.split", FSP) &&
      sumSpanArg(Events, "stage.checksum", "instrs") == FCK.Instrs &&
      sumSpanArg(Events, "stage.checksum", "cand_runs") == FCK.CandRuns &&
      sumSpanArg(Events, "stage.checksum", "scalar_runs") == FCK.ScalarRuns &&
      countSpans(Events, "task.verify") == VerifyTasks;
  // The EquivResult per-stage nanos are *sourced from* the spans (the Span
  // DurOut accumulates the same duration the event records), so the span
  // durations must sum to the record fields exactly.
  auto sumSpanDur = [&](const char *Name) {
    uint64_t Sum = 0;
    for (const obs::TraceEvent &Ev : Events)
      if (std::strcmp(Ev.Name, Name) == 0)
        Sum += Ev.DurNs;
    return Sum;
  };
  bool WallParityOk = sumSpanDur("stage.alive2") == FA2Nanos &&
                      sumSpanDur("stage.cunroll") == FCUNanos &&
                      sumSpanDur("stage.split") == FSPNanos &&
                      sumSpanDur("stage.checksum") == FCKNanos;
  // tv.* counters aggregate every solver query; in the funnel each query
  // result lands in exactly one of the three stage works.
  auto cval = [&](const char *Name) {
    for (const obs::CounterSample &C : Counters)
      if (C.Name == Name)
        return C.Value;
    return static_cast<uint64_t>(0);
  };
  bool CounterParityOk =
      cval("tv.conflicts") == FA2.Conflicts + FCU.Conflicts + FSP.Conflicts &&
      cval("tv.propagations") ==
          FA2.Propagations + FCU.Propagations + FSP.Propagations &&
      cval("tv.restarts") == FA2.Restarts + FCU.Restarts + FSP.Restarts &&
      cval("tv.trail_reused") ==
          FA2.TrailReused + FCU.TrailReused + FSP.TrailReused &&
      cval("svc.tasks") == VerifyTasks;
  std::string TraceErr, MetricsErr;
  std::vector<std::string> TraceKeys, MetricsKeys;
  auto hasKey = [](const std::vector<std::string> &Keys, const char *K) {
    for (const std::string &S : Keys)
      if (S == K)
        return true;
    return false;
  };
  bool TraceJsonOk = obs::json::validate(TraceDoc, &TraceErr, &TraceKeys) &&
                     hasKey(TraceKeys, "traceEvents");
  bool MetricsJsonOk =
      obs::json::validate(MetricsDoc, &MetricsErr, &MetricsKeys) &&
      hasKey(MetricsKeys, "schema_version") &&
      hasKey(MetricsKeys, "counters") && hasKey(MetricsKeys, "histograms");
  obs::TraceStats TS = obs::traceStats();

  std::printf("\n  funnel shape (stages add verdicts beyond Alive2): %s\n",
              ShapeOk ? "OK" : "MISMATCH");
  std::printf("  seed == fork verdicts on all 149 pairs: %s\n",
              SeedParityOk ? "OK" : "MISMATCH");
  std::printf("  default config (%s) parity: %s\n",
              DefaultArm >= 0 ? Arms[static_cast<size_t>(DefaultArm)].Name
                              : "n/a",
              DefaultParityOk ? "OK" : "MISMATCH");
  std::printf("  full matrix bit-identical: %s (%d mismatching verdicts)\n",
              TotalMismatches == 0 ? "OK" : "NO", TotalMismatches);
  std::printf("  >=2x seed->fork splitting reduction: %s (%.2fx sat, "
              "%.2fx wall)\n",
              SpeedupOk ? "OK" : "MISMATCH", SeedSatRatio, SeedWallRatio);
  std::printf("  >=1.5x shared-learnt propagation cut from cone: %s "
              "(%.2fx)\n",
              ConeGateOk ? "OK" : "MISMATCH", ConePropRatio);
  std::printf("  stage span sums reproduce StageSat/InterpWork tallies: %s\n",
              SpanParityOk ? "OK" : "MISMATCH");
  std::printf("  stage span durations reproduce EquivResult nanos: %s\n",
              WallParityOk ? "OK" : "MISMATCH");
  std::printf("  tv.*/svc.* counters reproduce stage tallies: %s\n",
              CounterParityOk ? "OK" : "MISMATCH");
  std::printf("  trace/metrics JSON well-formed: %s / %s\n",
              TraceJsonOk ? "OK" : TraceErr.c_str(),
              MetricsJsonOk ? "OK" : MetricsErr.c_str());
  std::printf("  trace: %llu events on %llu thread(s), %llu dropped\n",
              static_cast<unsigned long long>(TS.Events),
              static_cast<unsigned long long>(TS.Threads),
              static_cast<unsigned long long>(TS.Dropped));

  // Machine-readable mirror for the perf trajectory (envelope comes from
  // the shared writeBenchJson writer).
  std::string J;
  appendf(J, "  \"funnel\": {\n");
  appendf(J,
          "    \"checksum\": {\"total\": 149, \"equiv\": 0, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.ChecksumNotEq, TA.Plaus);
  appendf(J,
          "    \"alive2\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.Plaus, TA.A2Eq, TA.A2Neq, TA.A2In);
  appendf(J,
          "    \"c_unroll\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.A2In, TA.CUEq, TA.CUNeq, TA.CUIn);
  appendf(J,
          "    \"splitting\": {\"total\": %d, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d},\n",
          TA.CUIn, TA.SpEq, TA.SpNeq, TA.SpIn);
  appendf(J,
          "    \"all\": {\"total\": 149, \"equiv\": %d, \"noteq\": %d, "
          "\"inconcl\": %d}\n  },\n",
          TA.allEq(), TA.allNeq(), TA.SpIn);
  appendf(J, "  \"arms\": [\n");
  for (size_t I = 0; I < Arms.size(); ++I) {
    const Arm &A = Arms[I];
    appendf(J,
            "    {\"name\": \"%s\", \"queries\": %d, \"conflicts\": %llu, "
            "\"propagations\": %llu, \"trail_reused\": %llu, "
            "\"wall_ns\": %llu, \"mismatches\": %d}%s\n",
            A.Name, A.T.SplitQueries,
            static_cast<unsigned long long>(A.T.SplitWork.Conflicts),
            static_cast<unsigned long long>(A.T.SplitWork.Propagations),
            static_cast<unsigned long long>(A.T.SplitWork.TrailReused),
            static_cast<unsigned long long>(A.T.SplitWallNanos),
            A.Mismatches, I + 1 < Arms.size() ? "," : "");
  }
  appendf(J, "  ],\n");
  // Per-stage SAT work of the default configuration (the numbers the svc
  // Outcome aggregation feeds): alive2 / c-unroll / splitting.
  if (DefaultArm >= 0) {
    svc::StageSatWork A2, CU, SP;
    for (const FunnelRecord &R :
         Arms[static_cast<size_t>(DefaultArm)].Records) {
      A2.add(R.Alive2Work);
      CU.add(R.CUnrollWork);
      SP.add(R.SplitWork);
    }
    appendf(J, "  \"default_mode\": \"%s\",\n",
            Arms[static_cast<size_t>(DefaultArm)].Name);
    appendf(J, "  \"default_stage_work\": {\n");
    auto StageJson = [&](const char *Name, const svc::StageSatWork &W,
                         const char *Sep) {
      appendf(J,
              "    \"%s\": {\"conflicts\": %llu, \"propagations\": %llu, "
              "\"restarts\": %llu, \"trail_reused\": %llu}%s\n",
              Name, static_cast<unsigned long long>(W.Conflicts),
              static_cast<unsigned long long>(W.Propagations),
              static_cast<unsigned long long>(W.Restarts),
              static_cast<unsigned long long>(W.TrailReused), Sep);
    };
    StageJson("alive2", A2, ",");
    StageJson("c_unroll", CU, ",");
    StageJson("splitting", SP, "");
    appendf(J, "  },\n");
  }
  appendf(J, "  \"seed_sat_ratio\": %.3f,\n  \"seed_wall_ratio\": %.3f,\n",
          SeedSatRatio, SeedWallRatio);
  appendf(J, "  \"cone_prop_ratio\": %.3f,\n", ConePropRatio);
  appendf(J, "  \"total_mismatches\": %d,\n", TotalMismatches);
  appendf(J,
          "  \"obs\": {\"trace_events\": %llu, \"trace_threads\": %llu, "
          "\"trace_dropped\": %llu, \"verify_tasks\": %llu},\n",
          static_cast<unsigned long long>(TS.Events),
          static_cast<unsigned long long>(TS.Threads),
          static_cast<unsigned long long>(TS.Dropped),
          static_cast<unsigned long long>(VerifyTasks));
  appendf(J,
          "  \"shape_ok\": %s,\n  \"seed_parity_ok\": %s,\n"
          "  \"default_parity_ok\": %s,\n  \"speedup_ok\": %s,\n"
          "  \"cone_gate_ok\": %s,\n",
          ShapeOk ? "true" : "false", SeedParityOk ? "true" : "false",
          DefaultParityOk ? "true" : "false", SpeedupOk ? "true" : "false",
          ConeGateOk ? "true" : "false");
  appendf(J,
          "  \"span_parity_ok\": %s,\n  \"wall_parity_ok\": %s,\n"
          "  \"counter_parity_ok\": %s,\n  \"trace_json_ok\": %s,\n"
          "  \"metrics_json_ok\": %s",
          SpanParityOk ? "true" : "false", WallParityOk ? "true" : "false",
          CounterParityOk ? "true" : "false", TraceJsonOk ? "true" : "false",
          MetricsJsonOk ? "true" : "false");
  bool JsonOk =
      writeBenchJson("bench_table3_equivalence", Opt, J, "BENCH_table3.json");

  // --trace/--metrics artifacts: the trace buffers still hold only the
  // fork arm's spans (later arms ran untraced); the metrics file covers
  // the whole run.
  obs::setTracingEnabled(TraceRequested);
  bool ObsOk = writeObsArtifacts(Opt);

  return ShapeOk && SeedParityOk && DefaultParityOk && SpeedupOk &&
                 ConeGateOk && SpanParityOk && WallParityOk &&
                 CounterParityOk && TraceJsonOk && MetricsJsonOk && JsonOk &&
                 ObsOk
             ? 0
             : 1;
}
