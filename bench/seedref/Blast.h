//===-------------------------------------------------------------------------===//
// FROZEN SEED REFERENCE — verbatim copy of the seed smt stack (commit
// b2dc6cd), renamed into lv::seedref. Used only by bench_table3_equivalence
// as the "before" side of the incremental-backend A/B measurement. Do NOT
// optimize or refactor this code: its value is being the fixed baseline.
//===-------------------------------------------------------------------------===//
//===- smt/Blast.h - term -> CNF bit-blasting -------------------*- C++ -*-===//
///
/// \file
/// Tseitin bit-blasting of bool/BV32 terms into a SatSolver: ripple-carry
/// adders, shift-add multipliers (with 64-bit products for the signed
/// multiplication-overflow predicate), barrel shifters for symbolic shift
/// amounts, and a restoring divider for symbolic divisors. Gates are
/// structurally hashed so shared subterms blast once.
///
//===----------------------------------------------------------------------===//

#ifndef LV_BENCH_SEEDREF_BLAST_H
#define LV_BENCH_SEEDREF_BLAST_H

#include "bench/seedref/Sat.h"
#include "smt/Term.h"

#include <unordered_map>
#include <vector>

namespace lv {
namespace seedref {

using smt::Term;
using smt::TermId;
using smt::TermTable;
using smt::TK;

/// Blasts terms into CNF over a SatSolver.
class BitBlaster {
public:
  BitBlaster(const TermTable &TT, SatSolver &S);

  /// Blasts a bool term; the returned literal is equivalent to the term.
  Lit blastBool(TermId Id);

  /// Blasts a BV term into 32 literals (LSB first). Returns by value: the
  /// cache is an unordered_map whose references are invalidated by the
  /// recursive blasts of sibling operands.
  std::vector<Lit> blastBv(TermId Id);

  /// After a Sat result, reads back the model value of a Var term that was
  /// reachable from the blasted query.
  bool modelOfVar(TermId Id, uint32_t &Out) const;
  bool modelOfBVar(TermId Id, bool &Out) const;

  /// Terms of kind Var/BVar encountered during blasting (for model dumps).
  const std::vector<TermId> &seenVars() const { return VarsSeen; }

private:
  const TermTable &TT;
  SatSolver &S;
  Lit TrueLit;

  std::unordered_map<TermId, Lit> BoolCache;
  std::unordered_map<TermId, std::vector<Lit>> BvCache;
  std::unordered_map<uint64_t, Lit> GateCache;
  std::vector<TermId> VarsSeen;

  Lit falseLit() const { return ~TrueLit; }
  Lit constLit(bool B) const { return B ? TrueLit : ~TrueLit; }
  bool isConstLit(Lit L, bool &B) const {
    if (L == TrueLit) {
      B = true;
      return true;
    }
    if (L == ~TrueLit) {
      B = false;
      return true;
    }
    return false;
  }

  Lit freshLit() { return Lit(S.newVar(), false); }

  // Simplifying gate constructors.
  Lit gAnd(Lit A, Lit B);
  Lit gOr(Lit A, Lit B) { return ~gAnd(~A, ~B); }
  Lit gXor(Lit A, Lit B);
  Lit gXnor(Lit A, Lit B) { return ~gXor(A, B); }
  Lit gMux(Lit Sel, Lit T, Lit E);

  // Word-level helpers over vectors of lits (LSB first).
  using Word = std::vector<Lit>;
  Word wConst(uint32_t V, int Width = 32);
  Word wAdd(const Word &A, const Word &B, Lit CarryIn, Lit *CarryOut,
            Lit *CarryPrev);
  Word wNeg(const Word &A);
  Word wMux(Lit Sel, const Word &T, const Word &E);
  Lit wUlt(const Word &A, const Word &B);
  Lit wEq(const Word &A, const Word &B);
  Word wMul(const Word &A, const Word &B, int OutWidth);
  void wUDivRem(const Word &A, const Word &B, Word &Q, Word &R);
  Word wAbs(const Word &A);
};

} // namespace seedref
} // namespace lv

#endif // LV_BENCH_SEEDREF_BLAST_H
