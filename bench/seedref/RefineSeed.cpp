//===-------------------------------------------------------------------------===//
// FROZEN SEED REFERENCE — verbatim copy of the seed smt stack (commit
// b2dc6cd), renamed into lv::seedref. Used only by bench_table3_equivalence
// as the "before" side of the incremental-backend A/B measurement. Do NOT
// optimize or refactor this code: its value is being the fixed baseline.
//===-------------------------------------------------------------------------===//
//===- tv/Refine.cpp - bounded translation validation -------------------------===//

#include "tv/Refine.h"

#include "bench/seedref/Solve.h"
#include "bench/seedref/SeedRef.h"

#include "support/Format.h"

#include <algorithm>

using namespace lv;
using namespace lv::tv;
using lv::seedref::SatBudget;
using namespace lv::vir;
using smt::TermId;
using smt::TermTable;

/// `t refines s`: violated when s is defined but t is poison or different.
static TermId refineViolation(TermTable &T, const SymVal &S, const SymVal &V) {
  return T.mkAnd(T.mkNot(S.Poison),
                 T.mkOr(V.Poison, T.mkNe(S.Val, V.Val)));
}

/// Finds the memory for region \p Name in a state ('s param regions).
static const SymMemory *findMem(const SymState &St, const VFunction &F,
                                const std::string &Name) {
  for (size_t I = 0; I < F.Memories.size(); ++I)
    if (F.Memories[I].IsParam && F.Memories[I].Name == Name)
      return &St.Mems[I];
  return nullptr;
}

TVResult lv::seedref::checkRefinementSeed(const VFunction &Src,
                                          const VFunction &Tgt,
                                          const RefineOptions &Opts) {
  TVResult Out;
  TermTable T;
  SharedInputs In(T);

  SymState SS = executeSymbolic(Src, T, In, Opts.SrcExec);
  SymState ST = executeSymbolic(Tgt, T, In, Opts.TgtExec);
  if (!SS.ok() || !ST.ok()) {
    Out.V = TVVerdict::Unsupported;
    Out.Detail = !SS.ok() ? SS.Error : ST.Error;
    return Out;
  }

  // Assumptions: unroll exhaustion on both sides, size domains, scalar
  // parameter domain, and the alignment divisibility constraints.
  TermId A = T.mkAnd(SS.Assum, ST.Assum);
  for (const SymMemory &M : SS.Mems)
    A = T.mkAnd(A, M.sizeDomain());
  for (const SymMemory &M : ST.Mems)
    A = T.mkAnd(A, M.sizeDomain());
  for (const std::string &Name : In.scalarNames()) {
    TermId P = In.scalar(Name);
    A = T.mkAnd(A, T.mkAnd(T.mkSge(P, T.mkConst(0)),
                           T.mkSle(P, T.mkConstS(Opts.ScalarMax))));
  }
  for (const DivAssumption &D : Opts.Divs) {
    TermId P = In.scalar(D.Param);
    TermId E = T.mkAdd(P, T.mkConstS(D.Offset));
    A = T.mkAnd(A, T.mkAnd(T.mkSge(E, T.mkConst(0)),
                           T.mkEq(T.mkSRem(E, T.mkConstS(D.Mod)),
                                  T.mkConst(0))));
  }

  // Violations.
  TermId Viol = ST.UB;
  if (Src.ReturnsValue && Tgt.ReturnsValue) {
    TermId RetMismatch =
        T.mkOr(T.mkAnd(SS.RetCond, T.mkNot(ST.RetCond)),
               T.mkAnd(ST.RetCond, T.mkNot(SS.RetCond)));
    TermId RetDiff =
        T.mkAnd(T.mkAnd(SS.RetCond, ST.RetCond),
                refineViolation(T, SS.RetVal, ST.RetVal));
    Viol = T.mkOr(Viol, T.mkOr(RetMismatch, RetDiff));
  } else if (Src.ReturnsValue != Tgt.ReturnsValue) {
    Out.V = TVVerdict::Inequivalent;
    Out.Detail = "return type mismatch";
    return Out;
  }

  for (size_t I = 0; I < Src.Memories.size(); ++I) {
    if (!Src.Memories[I].IsParam)
      continue;
    const SymMemory &MS = SS.Mems[I];
    const SymMemory *MT = findMem(ST, Tgt, Src.Memories[I].Name);
    if (!MT) {
      Out.V = TVVerdict::Inequivalent;
      Out.Detail =
          format("target lacks array parameter '%s'",
                 Src.Memories[I].Name.c_str());
      return Out;
    }
    int Lo = 0, Hi = std::min(Opts.CompareWindow, MS.capacity());
    if (Opts.CellFilter >= 0) {
      Lo = Opts.CellFilter;
      Hi = std::min(Opts.CellFilter + 1, MS.capacity());
    }
    for (int J = Lo; J < Hi; ++J) {
      TermId Off = T.mkConst(static_cast<uint32_t>(J));
      SymVal CS = MS.read(Off);
      SymVal CT = MT->read(Off);
      if (CS.Val == CT.Val && CS.Poison == CT.Poison)
        continue; // syntactically identical
      Viol = T.mkOr(Viol, refineViolation(T, CS, CT));
    }
  }

  TermId Query = T.mkAnd(A, T.mkAnd(T.mkNot(SS.UB), Viol));
  Out.TermCount = T.size();
  if (T.size() > Opts.MaxTerms) {
    Out.V = TVVerdict::Inconclusive;
    Out.Detail = format("term limit exceeded (%zu terms): encoding too "
                        "large (out-of-memory analogue)",
                        T.size());
    return Out;
  }
  seedref::SatBudget SB;
  SB.MaxConflicts = Opts.Budget.MaxConflicts;
  SB.MaxPropagations = Opts.Budget.MaxPropagations;
  SB.MaxClauses = Opts.Budget.MaxClauses;
  seedref::SmtResult R = seedref::checkSat(T, Query, SB);
  Out.Conflicts = R.ConflictsUsed;
  Out.Propagations = R.PropagationsUsed;
  Out.Clauses = R.ClauseCount;
  Out.SatVars = R.VarCount;
  switch (R.R) {
  case seedref::SatResult::Unsat:
    Out.V = TVVerdict::Equivalent;
    Out.Detail = "refinement holds on the bounded domain";
    return Out;
  case seedref::SatResult::Unknown:
    Out.V = TVVerdict::Inconclusive;
    Out.Detail = format("solver budget exhausted (%llu conflicts)",
                        static_cast<unsigned long long>(R.ConflictsUsed));
    return Out;
  case seedref::SatResult::Sat:
    break;
  }
  Out.V = TVVerdict::Inequivalent;
  // Render the counterexample: scalar params, array sizes, initial cells.
  std::string CE;
  for (const std::string &Name : In.scalarNames()) {
    TermId P = In.scalar(Name);
    auto It = R.Model.find(P);
    if (It != R.Model.end())
      appendf(CE, "%s = %d\n", Name.c_str(),
              static_cast<int32_t>(It->second));
  }
  for (const std::string &Name : In.arrayNames()) {
    TermId SZ = In.arraySize(Name);
    auto It = R.Model.find(SZ);
    if (It != R.Model.end())
      appendf(CE, "alloc-size(%s) = %d\n", Name.c_str(),
              static_cast<int32_t>(It->second));
    const std::vector<SymVal> &Base =
        In.arrayBase(Name, /*Cap=*/0); // existing entries only
    std::string Cells;
    for (size_t K = 0; K < Base.size() && K < 8; ++K) {
      auto CIt = R.Model.find(Base[K].Val);
      appendf(Cells, "%s%d", K ? ", " : "",
              CIt == R.Model.end() ? 0 : static_cast<int32_t>(CIt->second));
    }
    if (!Cells.empty())
      appendf(CE, "%s[0..] = {%s}\n", Name.c_str(), Cells.c_str());
  }
  Out.Counterexample = CE;
  Out.Detail = "refinement violated; counterexample found";
  return Out;
}
