//===-------------------------------------------------------------------------===//
// FROZEN SEED REFERENCE — verbatim copy of the seed smt stack (commit
// b2dc6cd), renamed into lv::seedref. Used only by bench_table3_equivalence
// as the "before" side of the incremental-backend A/B measurement. Do NOT
// optimize or refactor this code: its value is being the fixed baseline.
//===-------------------------------------------------------------------------===//
//===- smt/Sat.cpp - CDCL SAT solver -----------------------------------------===//

#include "bench/seedref/Sat.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lv;
using namespace lv::seedref;

Var SatSolver::newVar() {
  Var V = numVars();
  Assigns.push_back(LBool::Undef);
  Model.push_back(LBool::Undef);
  Level.push_back(0);
  Reason.push_back(NoReason);
  Activity.push_back(0.0);
  Polarity.push_back(1); // default phase: false (MiniSat convention)
  Seen.push_back(0);
  HeapPos.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===//
// Activity heap
//===----------------------------------------------------------------------===//

void SatSolver::siftUp(int I) {
  Var V = Heap[static_cast<size_t>(I)];
  while (I > 0) {
    int P = (I - 1) >> 1;
    if (!heapLess(V, Heap[static_cast<size_t>(P)]))
      break;
    Heap[static_cast<size_t>(I)] = Heap[static_cast<size_t>(P)];
    HeapPos[static_cast<size_t>(Heap[static_cast<size_t>(I)])] = I;
    I = P;
  }
  Heap[static_cast<size_t>(I)] = V;
  HeapPos[static_cast<size_t>(V)] = I;
}

void SatSolver::siftDown(int I) {
  Var V = Heap[static_cast<size_t>(I)];
  int N = static_cast<int>(Heap.size());
  for (;;) {
    int L = 2 * I + 1;
    if (L >= N)
      break;
    int R = L + 1;
    int C = (R < N && heapLess(Heap[static_cast<size_t>(R)],
                               Heap[static_cast<size_t>(L)]))
                ? R
                : L;
    if (!heapLess(Heap[static_cast<size_t>(C)], V))
      break;
    Heap[static_cast<size_t>(I)] = Heap[static_cast<size_t>(C)];
    HeapPos[static_cast<size_t>(Heap[static_cast<size_t>(I)])] = I;
    I = C;
  }
  Heap[static_cast<size_t>(I)] = V;
  HeapPos[static_cast<size_t>(V)] = I;
}

void SatSolver::heapInsert(Var V) {
  if (HeapPos[static_cast<size_t>(V)] >= 0)
    return;
  Heap.push_back(V);
  HeapPos[static_cast<size_t>(V)] = static_cast<int>(Heap.size()) - 1;
  siftUp(static_cast<int>(Heap.size()) - 1);
}

void SatSolver::heapDecrease(Var V) {
  int I = HeapPos[static_cast<size_t>(V)];
  if (I >= 0)
    siftUp(I);
}

Var SatSolver::heapPop() {
  Var Top = Heap[0];
  HeapPos[static_cast<size_t>(Top)] = -1;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapPos[static_cast<size_t>(Last)] = 0;
    siftDown(0);
  }
  return Top;
}

void SatSolver::bumpVar(Var V) {
  Activity[static_cast<size_t>(V)] += VarInc;
  if (Activity[static_cast<size_t>(V)] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  heapDecrease(V);
}

//===----------------------------------------------------------------------===//
// Clause management
//===----------------------------------------------------------------------===//

void SatSolver::attachClause(CRef C) {
  const Clause &Cl = Clauses[static_cast<size_t>(C)];
  assert(Cl.Lits.size() >= 2);
  Watcher W0{C, Cl.Lits[1]};
  Watcher W1{C, Cl.Lits[0]};
  Watches[static_cast<size_t>((~Cl.Lits[0]).X)].push_back(W0);
  Watches[static_cast<size_t>((~Cl.Lits[1]).X)].push_back(W1);
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (!OkFlag)
    return false;
  assert(decisionLevel() == 0);
  // Normalize: sort, dedupe, drop false lits, detect tautology/satisfied.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.X < B.X; });
  std::vector<Lit> Out;
  Lit Prev;
  for (Lit L : Lits) {
    if (value(L) == LBool::True)
      return true; // already satisfied at level 0
    if (value(L) == LBool::False)
      continue; // drop
    if (!Out.empty() && L == Prev)
      continue;
    if (!Out.empty() && L == ~Prev)
      return true; // tautology
    Out.push_back(L);
    Prev = L;
  }
  if (Out.empty()) {
    OkFlag = false;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      OkFlag = false;
      return false;
    }
    return true;
  }
  Clauses.push_back(Clause{std::move(Out), /*Learnt=*/false});
  attachClause(static_cast<CRef>(Clauses.size()) - 1);
  return true;
}

//===----------------------------------------------------------------------===//
// Search
//===----------------------------------------------------------------------===//

void SatSolver::enqueue(Lit L, CRef From) {
  assert(value(L) == LBool::Undef);
  size_t V = static_cast<size_t>(L.var());
  Assigns[V] = L.sign() ? LBool::False : LBool::True;
  Level[V] = decisionLevel();
  Reason[V] = From;
  Polarity[V] = L.sign();
  Trail.push_back(L);
}

SatSolver::CRef SatSolver::propagate() {
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++];
    ++Propagations;
    std::vector<Watcher> &Ws = Watches[static_cast<size_t>(P.X)];
    size_t I = 0, J = 0;
    while (I < Ws.size()) {
      Watcher W = Ws[I++];
      if (value(W.Blocker) == LBool::True) {
        Ws[J++] = W;
        continue;
      }
      Clause &C = Clauses[static_cast<size_t>(W.C)];
      // Make sure the false literal is Lits[1].
      Lit NotP = ~P;
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP);
      // If the first literal is true, the clause is satisfied.
      if (value(C.Lits[0]) == LBool::True) {
        Ws[J++] = Watcher{W.C, C.Lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool Found = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (value(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[static_cast<size_t>((~C.Lits[1]).X)].push_back(
              Watcher{W.C, C.Lits[0]});
          Found = true;
          break;
        }
      }
      if (Found)
        continue;
      // Unit or conflicting.
      Ws[J++] = Watcher{W.C, C.Lits[0]};
      if (value(C.Lits[0]) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        while (I < Ws.size())
          Ws[J++] = Ws[I++];
        Ws.resize(J);
        QHead = Trail.size();
        return W.C;
      }
      enqueue(C.Lits[0], W.C);
    }
    Ws.resize(J);
  }
  return NoReason;
}

void SatSolver::analyze(CRef Confl, std::vector<Lit> &OutLearnt,
                        int &OutBtLevel) {
  OutLearnt.clear();
  OutLearnt.push_back(Lit()); // placeholder for the asserting literal
  int PathC = 0;
  Lit P;
  bool PValid = false;
  size_t Index = Trail.size();

  do {
    assert(Confl != NoReason);
    const Clause &C = Clauses[static_cast<size_t>(Confl)];
    for (size_t K = 0; K < C.Lits.size(); ++K) {
      // When expanding a reason clause, skip the implied literal P itself;
      // the remaining literals are its antecedents.
      Lit Q = C.Lits[K];
      if (PValid && Q == P)
        continue;
      size_t V = static_cast<size_t>(Q.var());
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(Q.var());
      if (Level[V] >= decisionLevel())
        ++PathC;
      else
        OutLearnt.push_back(Q);
    }
    // Select next literal on the trail to expand.
    while (!Seen[static_cast<size_t>(Trail[Index - 1].var())])
      --Index;
    P = Trail[--Index];
    PValid = true;
    Confl = Reason[static_cast<size_t>(P.var())];
    Seen[static_cast<size_t>(P.var())] = 0;
    --PathC;
  } while (PathC > 0);
  OutLearnt[0] = ~P;

  // Clause minimization: drop tail literals implied by the rest of the
  // clause (self-subsumption over their reason clauses). Removed literals
  // keep their Seen mark until the final clearing below, which therefore
  // iterates the pre-minimization literal set.
  std::vector<Lit> ToClear = OutLearnt;
  size_t W = 1;
  for (size_t K = 1; K < OutLearnt.size(); ++K) {
    Lit Q = OutLearnt[K];
    CRef RC = Reason[static_cast<size_t>(Q.var())];
    bool Redundant = false;
    if (RC != NoReason) {
      Redundant = true;
      for (Lit RL : Clauses[static_cast<size_t>(RC)].Lits) {
        if (RL == ~Q || RL == Q)
          continue;
        size_t RV = static_cast<size_t>(RL.var());
        if (!Seen[RV] && Level[RV] != 0) {
          Redundant = false;
          break;
        }
      }
    }
    if (!Redundant)
      OutLearnt[W++] = Q;
  }
  OutLearnt.resize(W);

  // Compute backtrack level: max level among tail literals.
  OutBtLevel = 0;
  size_t MaxI = 1;
  for (size_t K = 1; K < OutLearnt.size(); ++K) {
    int L = Level[static_cast<size_t>(OutLearnt[K].var())];
    if (L > OutBtLevel) {
      OutBtLevel = L;
      MaxI = K;
    }
  }
  if (OutLearnt.size() > 1)
    std::swap(OutLearnt[1], OutLearnt[MaxI]);

  for (Lit L : ToClear)
    Seen[static_cast<size_t>(L.var())] = 0;
}

void SatSolver::cancelUntil(int Lvl) {
  if (decisionLevel() <= Lvl)
    return;
  size_t Bound = static_cast<size_t>(TrailLim[static_cast<size_t>(Lvl)]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    size_t V = static_cast<size_t>(Trail[I - 1].var());
    Assigns[V] = LBool::Undef;
    Reason[V] = NoReason;
    heapInsert(static_cast<Var>(V));
  }
  Trail.resize(Bound);
  TrailLim.resize(static_cast<size_t>(Lvl));
  QHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  while (!heapEmpty()) {
    Var V = heapPop();
    if (Assigns[static_cast<size_t>(V)] == LBool::Undef)
      return Lit(V, Polarity[static_cast<size_t>(V)]);
  }
  return Lit();
}

/// Luby sequence for restart scheduling.
static double luby(double Y, int X) {
  int Size, Seq;
  for (Size = 1, Seq = 0; Size < X + 1; ++Seq, Size = 2 * Size + 1)
    ;
  while (Size - 1 != X) {
    Size = (Size - 1) >> 1;
    --Seq;
    X = X % Size;
  }
  return std::pow(Y, Seq);
}

SatResult SatSolver::solve(const SatBudget &Budget) {
  if (!OkFlag)
    return SatResult::Unsat;
  if (propagate() != NoReason) {
    OkFlag = false;
    return SatResult::Unsat;
  }

  int RestartNum = 0;
  uint64_t RestartLimit =
      static_cast<uint64_t>(100 * luby(2.0, RestartNum));
  uint64_t ConflictsAtRestart = 0;
  std::vector<Lit> Learnt;

  for (;;) {
    CRef Confl = propagate();
    if (Confl != NoReason) {
      ++Conflicts;
      ++ConflictsAtRestart;
      if (decisionLevel() == 0) {
        OkFlag = false;
        return SatResult::Unsat;
      }
      int BtLevel;
      analyze(Confl, Learnt, BtLevel);
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
      } else {
        Clauses.push_back(Clause{Learnt, /*Learnt=*/true});
        CRef C = static_cast<CRef>(Clauses.size()) - 1;
        attachClause(C);
        enqueue(Learnt[0], C);
      }
      decayActivities();
      if (Conflicts >= Budget.MaxConflicts ||
          Propagations >= Budget.MaxPropagations) {
        cancelUntil(0);
        return SatResult::Unknown;
      }
      continue;
    }
    // No conflict.
    if (ConflictsAtRestart >= RestartLimit) {
      ConflictsAtRestart = 0;
      RestartLimit = static_cast<uint64_t>(100 * luby(2.0, ++RestartNum));
      cancelUntil(0);
      continue;
    }
    Lit Next = pickBranchLit();
    if (Next.X < 0) {
      // All variables assigned: SAT.
      for (size_t V = 0; V < Assigns.size(); ++V)
        Model[V] = Assigns[V];
      cancelUntil(0);
      return SatResult::Sat;
    }
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Next, NoReason);
  }
}
