//===-------------------------------------------------------------------------===//
// FROZEN SEED REFERENCE — verbatim copy of the seed smt stack (commit
// b2dc6cd), renamed into lv::seedref. Used only by bench_table3_equivalence
// as the "before" side of the incremental-backend A/B measurement. Do NOT
// optimize or refactor this code: its value is being the fixed baseline.
//===-------------------------------------------------------------------------===//
//===- smt/Sat.h - CDCL SAT solver ------------------------------*- C++ -*-===//
///
/// \file
/// A compact CDCL SAT solver (two-watched-literal propagation, 1UIP clause
/// learning with backjumping, VSIDS branching, phase saving, Luby restarts)
/// with a conflict budget. Exceeding the budget yields Unknown — this is
/// how the reproduction models Alive2/Z3 timeouts: harder refinement
/// encodings blow the budget, cheaper domain-specific encodings (C-level
/// unrolling, spatial splitting) fit, producing the paper's Table 3 funnel.
///
//===----------------------------------------------------------------------===//

#ifndef LV_BENCH_SEEDREF_SAT_H
#define LV_BENCH_SEEDREF_SAT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lv {
namespace seedref {

/// Propositional variable (0-based).
using Var = int;

/// Literal encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  int X = -2;

  Lit() = default;
  Lit(Var V, bool Neg) : X(2 * V + (Neg ? 1 : 0)) {}

  Var var() const { return X >> 1; }
  bool sign() const { return X & 1; } ///< True when negated.
  Lit operator~() const {
    Lit L;
    L.X = X ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }
};

/// Tri-state assignment.
enum class LBool : int8_t { False = -1, Undef = 0, True = 1 };

/// Solver result.
enum class SatResult : uint8_t { Sat, Unsat, Unknown };

/// Resource limits; conflicts are the primary budget knob. MaxClauses
/// bounds the blasted formula size (the memout analogue): solving is
/// refused when exceeded.
struct SatBudget {
  uint64_t MaxConflicts = 200'000;
  uint64_t MaxPropagations = UINT64_MAX;
  uint64_t MaxClauses = 3'000'000;
};

/// The solver.
class SatSolver {
public:
  SatSolver() = default;

  /// Creates a fresh variable.
  Var newVar();

  int numVars() const { return static_cast<int>(Activity.size()); }

  /// Adds a clause; returns false if the formula became trivially UNSAT.
  bool addClause(std::vector<Lit> Lits);

  /// Convenience for small clauses.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Solves under the given budget.
  SatResult solve(const SatBudget &Budget = SatBudget());

  /// Model access after Sat.
  bool modelValue(Var V) const {
    return Model[static_cast<size_t>(V)] == LBool::True;
  }

  /// Statistics.
  uint64_t conflicts() const { return Conflicts; }
  uint64_t propagations() const { return Propagations; }
  uint64_t numClauses() const { return Clauses.size(); }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learnt = false;
  };
  using CRef = int;
  static constexpr CRef NoReason = -1;

  struct Watcher {
    CRef C = NoReason;
    Lit Blocker;
  };

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; ///< Indexed by Lit.X.
  std::vector<LBool> Assigns;                ///< Indexed by var.
  std::vector<LBool> Model;
  std::vector<int> Level;
  std::vector<CRef> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  static constexpr double VarDecay = 0.95;
  std::vector<char> Polarity; ///< Phase saving (last assigned sign).
  std::vector<char> Seen;

  // Indexed max-heap over variable activity.
  std::vector<Var> Heap;
  std::vector<int> HeapPos; ///< -1 when not in heap.

  bool OkFlag = true;
  uint64_t Conflicts = 0;
  uint64_t Propagations = 0;

  LBool value(Lit L) const {
    LBool V = Assigns[static_cast<size_t>(L.var())];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool T = (V == LBool::True) != L.sign();
    return T ? LBool::True : LBool::False;
  }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  void enqueue(Lit L, CRef From);
  CRef propagate();
  void analyze(CRef Confl, std::vector<Lit> &OutLearnt, int &OutBtLevel);
  void cancelUntil(int Lvl);
  Lit pickBranchLit();
  void attachClause(CRef C);

  // Heap helpers.
  void heapInsert(Var V);
  void heapDecrease(Var V); ///< Activity increased: sift up.
  Var heapPop();
  bool heapEmpty() const { return Heap.empty(); }
  void siftUp(int I);
  void siftDown(int I);
  bool heapLess(Var A, Var B) const {
    return Activity[static_cast<size_t>(A)] >
           Activity[static_cast<size_t>(B)];
  }

  void bumpVar(Var V);
  void decayActivities() { VarInc /= VarDecay; }
};

} // namespace seedref
} // namespace lv

#endif // LV_BENCH_SEEDREF_SAT_H
