//===-------------------------------------------------------------------------===//
// FROZEN SEED REFERENCE — verbatim copy of the seed smt stack (commit
// b2dc6cd), renamed into lv::seedref. Used only by bench_table3_equivalence
// as the "before" side of the incremental-backend A/B measurement. Do NOT
// optimize or refactor this code: its value is being the fixed baseline.
//===-------------------------------------------------------------------------===//
#ifndef LV_BENCH_SEEDREF_H
#define LV_BENCH_SEEDREF_H
#include "tv/Refine.h"
namespace lv {
namespace seedref {
/// The seed's one-shot refinement check, driving the frozen seed smt stack
/// (per-Clause vector solver, by-value BV blaster): the "before" reference.
tv::TVResult checkRefinementSeed(const vir::VFunction &Src,
                                 const vir::VFunction &Tgt,
                                 const tv::RefineOptions &Opts);
} // namespace seedref
} // namespace lv
#endif
