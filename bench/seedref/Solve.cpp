//===-------------------------------------------------------------------------===//
// FROZEN SEED REFERENCE — verbatim copy of the seed smt stack (commit
// b2dc6cd), renamed into lv::seedref. Used only by bench_table3_equivalence
// as the "before" side of the incremental-backend A/B measurement. Do NOT
// optimize or refactor this code: its value is being the fixed baseline.
//===-------------------------------------------------------------------------===//
//===- smt/Solve.cpp - one-shot satisfiability queries -----------------------===//

#include "bench/seedref/Solve.h"

#include "bench/seedref/Blast.h"
#include "support/Format.h"

using namespace lv;
using namespace lv::seedref;

SmtResult lv::seedref::checkSat(const TermTable &TT, TermId Query,
                            const SatBudget &Budget) {
  SmtResult Out;
  // Fast paths: the rewriter often reduces queries to a constant.
  if (TT.isFalse(Query)) {
    Out.R = SatResult::Unsat;
    return Out;
  }
  if (TT.isTrue(Query)) {
    Out.R = SatResult::Sat;
    return Out;
  }

  SatSolver S;
  BitBlaster B(TT, S);
  Lit Root = B.blastBool(Query);
  S.addClause(Root);
  if (S.numClauses() > Budget.MaxClauses) {
    // Formula too large to attempt: the memout analogue.
    Out.R = SatResult::Unknown;
    Out.ClauseCount = S.numClauses();
    Out.VarCount = static_cast<uint64_t>(S.numVars());
    return Out;
  }
  Out.R = S.solve(Budget);
  Out.ConflictsUsed = S.conflicts();
  Out.PropagationsUsed = S.propagations();
  Out.ClauseCount = S.numClauses();
  Out.VarCount = static_cast<uint64_t>(S.numVars());
  if (Out.R == SatResult::Sat) {
    for (TermId V : B.seenVars()) {
      if (TT.isBv(V)) {
        uint32_t Val;
        if (B.modelOfVar(V, Val))
          Out.Model.emplace(V, Val);
      } else {
        bool Bit;
        if (B.modelOfBVar(V, Bit))
          Out.Model.emplace(V, Bit ? 1u : 0u);
      }
    }
  }
  return Out;
}

std::string
lv::seedref::printModel(const TermTable &TT,
                    const std::unordered_map<TermId, uint32_t> &Model) {
  std::string Out;
  for (const auto &KV : Model) {
    const std::string &Name = TT.varName(KV.first);
    appendf(Out, "%s = %d\n",
            Name.empty() ? format("v%d", KV.first).c_str() : Name.c_str(),
            static_cast<int32_t>(KV.second));
  }
  return Out;
}
