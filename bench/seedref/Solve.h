//===-------------------------------------------------------------------------===//
// FROZEN SEED REFERENCE — verbatim copy of the seed smt stack (commit
// b2dc6cd), renamed into lv::seedref. Used only by bench_table3_equivalence
// as the "before" side of the incremental-backend A/B measurement. Do NOT
// optimize or refactor this code: its value is being the fixed baseline.
//===-------------------------------------------------------------------------===//
//===- smt/Solve.h - one-shot satisfiability queries ------------*- C++ -*-===//
///
/// \file
/// Top-level query interface: satisfiability of a boolean term under a
/// resource budget, with model extraction for counterexample reporting.
/// The translation validator asks "can the refinement be violated?":
/// Unsat => Equivalent, Sat => Inequivalent (model = distinguishing input),
/// Unknown => Inconclusive (the paper's timeout outcome).
///
//===----------------------------------------------------------------------===//

#ifndef LV_BENCH_SEEDREF_SOLVE_H
#define LV_BENCH_SEEDREF_SOLVE_H

#include "bench/seedref/Sat.h"
#include "smt/Term.h"

#include <string>
#include <unordered_map>

namespace lv {
namespace seedref {

using smt::Term;
using smt::TermId;
using smt::TermTable;
using smt::TK;

/// Result of a satisfiability query.
struct SmtResult {
  SatResult R = SatResult::Unknown;
  /// Model for Var/BVar terms appearing in the query (valid when Sat).
  std::unordered_map<TermId, uint32_t> Model;
  // Statistics.
  uint64_t ConflictsUsed = 0;
  uint64_t PropagationsUsed = 0;
  uint64_t ClauseCount = 0;
  uint64_t VarCount = 0;

  bool sat() const { return R == SatResult::Sat; }
  bool unsat() const { return R == SatResult::Unsat; }
  bool unknown() const { return R == SatResult::Unknown; }
};

/// Checks satisfiability of \p Query (a bool term in \p TT).
SmtResult checkSat(const TermTable &TT, TermId Query,
                   const SatBudget &Budget = SatBudget());

/// Renders a model as "name=value" lines using the table's variable names.
std::string printModel(const TermTable &TT,
                       const std::unordered_map<TermId, uint32_t> &Model);

} // namespace seedref
} // namespace lv

#endif // LV_BENCH_SEEDREF_SOLVE_H
