//===- examples/agent_repair_s453.cpp - the §4.4.2 repair dialogue ------------===//
//
// Replays the paper's s453 walkthrough: the vectorizer agent's first
// attempt broadcasts the induction scalar (wrong), the compiler tester
// feeds back a concrete input/output mismatch, and the second attempt uses
// the correct lane ramp. Prints the full agent transcript and then
// formally verifies the repaired candidate.
//
//===----------------------------------------------------------------------===//

#include "agents/Fsm.h"
#include "core/Equivalence.h"
#include "llm/Client.h"
#include "tsvc/Suite.h"

#include <cstdio>

using namespace lv;

int main() {
  const tsvc::TsvcTest *T = tsvc::findTest("s453");
  std::printf("scalar s453:\n%s\n\n", T->Source.c_str());

  // Search seeds until the first attempt misfires and the loop repairs it
  // (the paper's two-attempt run).
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    llm::SimulatedLLM Model(Seed);
    agents::FsmConfig Cfg;
    agents::MultiAgentFsm Fsm(Model, Cfg);
    agents::FsmResult R = Fsm.run(T->Source);
    if (!(R.Plausible && R.Attempts >= 2))
      continue;

    std::printf("seed %llu: repaired in %d attempts; transcript:\n\n",
                static_cast<unsigned long long>(Seed), R.Attempts);
    for (const agents::Message &M : R.Transcript)
      std::printf("--- %s -> %s ---\n%s\n\n", M.From.c_str(), M.To.c_str(),
                  M.Content.c_str());

    std::printf("FSM states: ");
    for (agents::State S : R.Transitions)
      std::printf("%s ", agents::stateName(S));
    std::printf("\n\n");

    core::EquivResult E = core::checkEquivalence(T->Source,
                                                 R.FinalCandidate);
    std::printf("formal verification of the repaired candidate: %s "
                "(stage: %s)\n",
                core::outcomeName(E.Final), core::stageName(E.DecidedBy));
    return 0;
  }
  std::printf("no seed in range produced a multi-attempt repair\n");
  return 1;
}
