//===- examples/agent_repair_s453.cpp - the §4.4.2 repair dialogue ------------===//
//
// Replays the paper's s453 walkthrough: the vectorizer agent's first
// attempt broadcasts the induction scalar (wrong), the compiler tester
// feeds back a concrete input/output mismatch, and the second attempt uses
// the correct lane ramp. Prints the full agent transcript and then
// formally verifies the repaired candidate.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "support/Format.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"

#include <cstdio>

using namespace lv;

int main(int argc, char **argv) {
  bench::BenchOptions Opt = bench::parseBenchArgs(argc, argv);
  const tsvc::TsvcTest *T = tsvc::findTest("s453");
  std::printf("scalar s453:\n%s\n\n", T->Source.c_str());

  // Search seeds until the first attempt misfires and the loop repairs it
  // (the paper's two-attempt run): Generate requests batched in waves of
  // one worker-pool width, scanned in seed order for determinism — a hit
  // in an early wave never pays for the later seeds.
  svc::ServiceConfig SC;
  SC.Workers = 4;
  svc::VectorizerService Service(SC);

  for (uint64_t Wave = 0; Wave < 64; Wave += 4) {
    std::vector<svc::Request> Batch;
    for (uint64_t Seed = Wave; Seed < Wave + 4; ++Seed) {
      svc::Request R;
      R.Mode = svc::RunMode::Generate;
      R.Name = format("s453@%llu", static_cast<unsigned long long>(Seed));
      R.ScalarSource = T->Source;
      R.Seed = Seed;
      Batch.push_back(std::move(R));
    }
    std::vector<svc::Ticket> Tickets = Service.submitBatch(std::move(Batch));

    for (uint64_t Lane = 0; Lane < Tickets.size(); ++Lane) {
      uint64_t Seed = Wave + Lane;
      const svc::Outcome &O = Service.wait(Tickets[Lane]);
      if (O.Failed) {
        std::printf("seed %llu failed: %s\n",
                    static_cast<unsigned long long>(Seed), O.Error.c_str());
        bench::writeObsArtifacts(Opt);
        return 1;
      }
      const agents::FsmResult &R = O.Fsm;
      if (!(R.Plausible && R.Attempts >= 2))
        continue;

      std::printf("seed %llu: repaired in %d attempts; transcript:\n\n",
                  static_cast<unsigned long long>(Seed), R.Attempts);
      for (const agents::Message &M : R.Transcript)
        std::printf("--- %s -> %s ---\n%s\n\n", M.From.c_str(),
                    M.To.c_str(), M.Content.c_str());

      std::printf("FSM states: ");
      for (agents::State S : R.Transitions)
        std::printf("%s ", agents::stateName(S));
      std::printf("\n\n");

      // The --store wiring rides only this verify call: the Generate
      // service above never touches the verdict cache, and a single store
      // owner per process keeps the log single-writer.
      svc::Request VR;
      VR.Mode = svc::RunMode::Verify;
      VR.ScalarSource = T->Source;
      VR.CandidateSource = R.FinalCandidate;
      svc::ServiceConfig VSC;
      VSC.StorePath = Opt.StorePath;
      core::EquivResult E = svc::runOne(std::move(VR), VSC).Equiv;
      std::printf("formal verification of the repaired candidate: %s "
                  "(stage: %s)\n",
                  core::outcomeName(E.Final), core::stageName(E.DecidedBy));
      bench::writeObsArtifacts(Opt);
      return 0;
    }
  }
  std::printf("no seed in range produced a multi-attempt repair\n");
  bench::writeObsArtifacts(Opt);
  return 1;
}
