//===- examples/quickstart.cpp - end-to-end LLM-Vectorizer walkthrough --------===//
//
// Quickstart: take a scalar C loop, let the vectorization service run the
// paper's full Figure-2 workflow — multi-agent FSM against the (simulated)
// LLM, checksum testing, then the Algorithm-1 verification funnel — in one
// request. The same submit()/wait() API batches thousands of functions
// across a worker pool; see src/svc/README.md.
//
//   $ ./quickstart
//   $ ./quickstart --trace trace.json      # timeline for chrome://tracing
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "svc/Service.h"

#include <cstdio>

using namespace lv;

int main(int argc, char **argv) {
  bench::BenchOptions Opt = bench::parseBenchArgs(argc, argv);
  const char *Scalar = R"(
void saxpyish(int n, int s, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + s * b[i];
  }
})";

  std::printf("Input scalar loop:\n%s\n\n", Scalar);

  // One Pipeline request = FSM generation + formal verification. With
  // --store DIR the verdict (and the compiled bytecode) persists, so a
  // rerun answers from disk.
  svc::Request R;
  R.Mode = svc::RunMode::Pipeline;
  R.Name = "saxpyish";
  R.ScalarSource = Scalar;
  R.Seed = 2024;
  svc::ServiceConfig SC;
  SC.StorePath = Opt.StorePath;
  svc::Outcome O = svc::runOne(std::move(R), SC);
  if (!O.Fsm.Plausible) {
    std::printf("no plausible vectorization found in %d attempts\n",
                O.Fsm.Attempts);
    bench::writeObsArtifacts(Opt);
    return 1;
  }
  std::printf("plausible candidate after %d attempt(s):\n%s\n",
              O.Fsm.Attempts, O.Fsm.FinalCandidate.c_str());

  std::printf("\nverification: %s (decided by %s stage)\n",
              core::outcomeName(O.Equiv.Final),
              core::stageName(O.Equiv.DecidedBy));
  std::printf("detail: %s\n", O.Equiv.Detail.c_str());
  std::printf("wall: %.1fms\n", static_cast<double>(O.WallNanos) / 1e6);
  bench::writeObsArtifacts(Opt);
  return O.verified() ? 0 : 1;
}
