//===- examples/quickstart.cpp - end-to-end LLM-Vectorizer walkthrough --------===//
//
// Quickstart: take a scalar C loop, let the multi-agent FSM obtain a
// plausible AVX2 vectorization from the (simulated) LLM, then formally
// check it with Algorithm 1. This is the complete workflow of the paper's
// Figure 2 in about thirty lines of client code.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "agents/Fsm.h"
#include "core/Equivalence.h"
#include "llm/Client.h"

#include <cstdio>

using namespace lv;

int main() {
  const char *Scalar = R"(
void saxpyish(int n, int s, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + s * b[i];
  }
})";

  std::printf("Input scalar loop:\n%s\n\n", Scalar);

  // 1. Multi-agent FSM: user proxy -> vectorizer (LLM) -> compiler tester.
  llm::SimulatedLLM Model(/*Seed=*/2024);
  agents::FsmConfig FsmCfg;
  agents::MultiAgentFsm Fsm(Model, FsmCfg);
  agents::FsmResult R = Fsm.run(Scalar);
  if (!R.Plausible) {
    std::printf("no plausible vectorization found in %d attempts\n",
                R.Attempts);
    return 1;
  }
  std::printf("plausible candidate after %d attempt(s):\n%s\n", R.Attempts,
              R.FinalCandidate.c_str());

  // 2. Formal verification: Algorithm 1 (checksum -> Alive2-style unroll
  //    -> C-level unroll -> spatial splitting).
  core::EquivResult E = core::checkEquivalence(Scalar, R.FinalCandidate);
  std::printf("\nverification: %s (decided by %s stage)\n",
              core::outcomeName(E.Final), core::stageName(E.DecidedBy));
  std::printf("detail: %s\n", E.Detail.c_str());
  return E.Final == core::EquivResult::Equivalent ? 0 : 1;
}
