//===- examples/tsvc_explorer.cpp - browse the TSVC dataset -------------------===//
//
// Dataset explorer: lists the 149 TSVC tests with their Figure-6 category
// and the compiler-style dependence remarks our analysis produces (the
// feedback the user proxy agent attaches to prompts). Pass a test name to
// see its source, analysis, and what each baseline compiler would do.
//
//   $ ./tsvc_explorer            # summary of all tests
//   $ ./tsvc_explorer s212       # deep-dive one test
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "compilers/Baselines.h"
#include "deps/Analysis.h"
#include "llm/Client.h"
#include "minic/Parser.h"
#include "tsvc/Suite.h"

#include <cstdio>
#include <cstring>

using namespace lv;

/// First argument that is not one of the shared bench flags (--jobs,
/// --trace, --metrics, consumed by parseBenchArgs) or their values.
static const char *positionalArg(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strcmp(A, "--jobs") == 0 || std::strcmp(A, "--trace") == 0 ||
        std::strcmp(A, "--metrics") == 0) {
      ++I; // skip the flag's value
      continue;
    }
    if (std::strncmp(A, "--", 2) == 0)
      continue; // --flag=value or an unknown flag
    return A;
  }
  return nullptr;
}

static const char *difficultyName(llm::Difficulty D) {
  switch (D) {
  case llm::Difficulty::Easy: return "easy";
  case llm::Difficulty::Medium: return "medium";
  case llm::Difficulty::Hard: return "hard";
  case llm::Difficulty::Never: return "out-of-repertoire";
  }
  return "?";
}

int main(int argc, char **argv) {
  bench::BenchOptions Opt = bench::parseBenchArgs(argc, argv);
  if (const char *Name = positionalArg(argc, argv)) {
    const tsvc::TsvcTest *T = tsvc::findTest(Name);
    if (!T) {
      std::printf("unknown test '%s'\n", Name);
      return 1;
    }
    std::printf("%s  [%s]\n%s\n", T->Name.c_str(),
                tsvc::categoryName(T->Cat), T->Source.c_str());
    minic::ParseResult P = minic::parseFunction(T->Source);
    if (!P.ok()) {
      std::printf("parse error: %s\n", P.Error.c_str());
      return 1;
    }
    deps::LoopAnalysis LA = deps::analyzeFunction(*P.Fn);
    std::printf("\ndependence analysis:\n%s",
                deps::renderCompilerFeedback(LA).c_str());
    std::printf("\nsimulated-LLM difficulty tier: %s\n",
                difficultyName(llm::SimulatedLLM::classifyDifficulty(
                    T->Source)));
    std::printf("\nbaseline compilers:\n");
    for (auto C : {compilers::CompilerId::GCC, compilers::CompilerId::Clang,
                   compilers::CompilerId::ICC}) {
      compilers::CompileOutcome O = compilers::compileWith(C, *P.Fn);
      std::printf("  %-6s %s%s\n", compilers::compilerName(C),
                  O.Vectorized ? "vectorizes" : "does not vectorize: ",
                  O.Vectorized ? "" : O.Reason.c_str());
    }
    bench::writeObsArtifacts(Opt);
    return 0;
  }

  int Counts[6] = {};
  std::printf("%-14s %-26s %s\n", "test", "category", "difficulty");
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    ++Counts[static_cast<int>(T.Cat)];
    std::printf("%-14s %-26s %s\n", T.Name.c_str(),
                tsvc::categoryName(T.Cat),
                difficultyName(
                    llm::SimulatedLLM::classifyDifficulty(T.Source)));
  }
  std::printf("\n%zu tests; per category:\n", tsvc::suite().size());
  for (int I = 0; I < 6; ++I)
    std::printf("  %-26s %d\n",
                tsvc::categoryName(static_cast<tsvc::Category>(I)),
                Counts[I]);
  std::printf("\nrun `tsvc_explorer <name>` for a deep dive.\n");
  bench::writeObsArtifacts(Opt);
  return 0;
}
