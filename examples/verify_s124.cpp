//===- examples/verify_s124.cpp - why testing is not enough -------------------===//
//
// The paper's motivating example for symbolic verification (§3.1, Fig. 4):
// GPT-4's blend-based s124 candidate passes checksum testing on every
// random input, yet it loads c[0..7] unconditionally while the scalar code
// reads c[i] only on the else branch. On an input where every b[i] > 0 the
// source never touches c — so c may be a zero-sized allocation, and the
// vector code's load is undefined behavior. Only the symbolic verifier
// sees it; this example shows both verdicts and the counterexample.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "interp/Checksum.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"
#include "vir/Compile.h"

#include <cstdio>

using namespace lv;

static const char *S124Vec = R"(
#include <immintrin.h>
void s124(int *a, int *b, int *c, int *d, int *e, int n) {
  int j = 0;
  __m256i zero = _mm256_setzero_si256();
  for (int i = 0; i < n; i += 8) {
    __m256i vbi = _mm256_loadu_si256((__m256i *)&b[i]);
    __m256i vci = _mm256_loadu_si256((__m256i *)&c[i]);
    __m256i vdi = _mm256_loadu_si256((__m256i *)&d[i]);
    __m256i vei = _mm256_loadu_si256((__m256i *)&e[i]);
    __m256i vprod = _mm256_mullo_epi32(vdi, vei);
    __m256i vsum_b = _mm256_add_epi32(vbi, vprod);
    __m256i vsum_c = _mm256_add_epi32(vci, vprod);
    __m256i vmask = _mm256_cmpgt_epi32(vbi, zero);
    __m256i va = _mm256_blendv_epi8(vsum_c, vsum_b, vmask);
    _mm256_storeu_si256((__m256i *)&a[j], va);
    j += 8;
  }
})";

int main(int argc, char **argv) {
  bench::BenchOptions Opt = bench::parseBenchArgs(argc, argv);
  const tsvc::TsvcTest *T = tsvc::findTest("s124");
  std::printf("scalar s124:\n%s\n", T->Source.c_str());
  std::printf("GPT-4-style candidate (paper Fig. 4b):\n%s\n", S124Vec);

  // Step 1: checksum testing cannot tell them apart.
  vir::CompileResult SC = vir::compileFunction(T->Source);
  vir::CompileResult VC = vir::compileFunction(S124Vec);
  interp::ChecksumOutcome CO = interp::runChecksumTest(*SC.Fn, *VC.Fn);
  std::printf("checksum testing: %s (%s)\n",
              CO.plausible() ? "PLAUSIBLE" : "not equivalent",
              CO.Detail.c_str());

  // Step 2: the full pipeline refutes it symbolically through a one-worker
  // vectorization service (with --store DIR the refutation persists and a
  // rerun replays it from disk).
  svc::Request VR;
  VR.Mode = svc::RunMode::Verify;
  VR.ScalarSource = T->Source;
  VR.CandidateSource = S124Vec;
  svc::ServiceConfig VSC;
  VSC.StorePath = Opt.StorePath;
  core::EquivResult E = svc::runOne(std::move(VR), VSC).Equiv;
  std::printf("\nsymbolic verification: %s (decided by %s)\n",
              core::outcomeName(E.Final), core::stageName(E.DecidedBy));
  if (!E.Counterexample.empty())
    std::printf("counterexample (note the tiny alloc-size of c — the "
                "source never reads c on this input):\n%s\n",
                E.Counterexample.c_str());
  bench::writeObsArtifacts(Opt);
  return E.Final == core::EquivResult::Inequivalent && CO.plausible() ? 0
                                                                      : 1;
}
