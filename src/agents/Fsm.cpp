//===- agents/Fsm.cpp - multi-agent finite state machine -----------------------===//

#include "agents/Fsm.h"

#include "deps/Analysis.h"
#include "minic/Parser.h"
#include "support/Cancel.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vir/Compile.h"

using namespace lv;
using namespace lv::agents;

const char *lv::agents::stateName(State S) {
  switch (S) {
  case State::Init: return "Init";
  case State::Vectorize: return "Vectorize";
  case State::Compile: return "Compile";
  case State::Test: return "Test";
  case State::Feedback: return "Feedback";
  case State::Done: return "Done";
  case State::Failed: return "Failed";
  }
  return "?";
}

uint64_t FsmConfig::configHash() const {
  uint64_t H = 0xF53ULL;
  H = hashField(H, 1, static_cast<uint64_t>(MaxAttempts));
  H = hashField(H, 2, ProvideDependenceFeedback ? 1 : 0);
  H = hashField(H, 3, bitsOfDouble(Temperature));
  H = hashField(H, 4, Checksum.configHash());
  H = hashField(H, 5, Tester ? 1 : 0);
  return H;
}

FsmResult MultiAgentFsm::run(const std::string &ScalarSource) {
  FsmResult R;
  try {
    runImpl(R, ScalarSource);
  } catch (const llm::ClientError &E) {
    // The endpoint failed mid-dialogue: keep the transcript made so far
    // and report the abort instead of unwinding (the service retries
    // transient aborts on the same client, whose completion stream is
    // index-pure — a successful retry replays the fault-free dialogue).
    R.Abort = E.Transient ? FsmAbort::ClientTransient
                          : FsmAbort::ClientPermanent;
    R.AbortMsg = E.what();
    R.Transcript.push_back(
        {"vectorizer", "user-proxy", std::string("client error: ") + E.what()});
    R.Transitions.push_back(State::Failed);
  } catch (const support::CancelledError &E) {
    R.Abort = FsmAbort::Cancelled;
    R.AbortMsg = E.what();
    R.Transitions.push_back(State::Failed);
  }
  return R;
}

void MultiAgentFsm::runImpl(FsmResult &R, const std::string &ScalarSource) {
  R.Transitions.push_back(State::Init);

  // The user proxy prepares the task, optionally with Clang-style
  // dependence remarks explaining why the compiler will not vectorize.
  llm::Prompt P;
  P.ScalarSource = ScalarSource;
  P.Temperature = Cfg.Temperature;
  std::string ProxyMsg =
      "Vectorize the following C loop for an AVX2 target using intrinsics. "
      "Preserve the function signature and semantics.\n" +
      ScalarSource;
  if (Cfg.ProvideDependenceFeedback) {
    minic::ParseResult PR = minic::parseFunction(ScalarSource);
    if (PR.ok()) {
      deps::LoopAnalysis LA = deps::analyzeFunction(*PR.Fn);
      P.DependenceFeedback = deps::renderCompilerFeedback(LA);
      ProxyMsg += "\nCompiler dependence analysis:\n" + P.DependenceFeedback;
    }
  }
  R.Transcript.push_back({"user-proxy", "vectorizer", ProxyMsg});

  vir::CompileResult SC = vir::compileFunction(ScalarSource);
  if (!SC.ok()) {
    R.Transcript.push_back(
        {"compiler-tester", "user-proxy",
         "the scalar input does not compile: " + SC.Error});
    R.Transitions.push_back(State::Failed);
    return;
  }

  // Reference memo for the default tester path: the scalar runs once per
  // (seed, bound) input set and its outputs are reused across every
  // repair attempt of this run. (With an external Tester hook the hook
  // owner — e.g. the vectorization service — supplies its own memo.)
  interp::ScalarRefMemo ChecksumMemo;

  for (int Attempt = 0; Attempt < Cfg.MaxAttempts; ++Attempt) {
    // Cooperative deadline checkpoint: a task past its budget stops
    // between attempts (the client call and the tester below have their
    // own checks for the long in-attempt stretches).
    support::throwIfCancelled("agents.fsm.attempt");
    R.Attempts = Attempt + 1;
    R.Transitions.push_back(State::Vectorize);
    llm::Completion C =
        Client.complete(P, static_cast<uint64_t>(Attempt));
    R.Transcript.push_back({"vectorizer", "compiler-tester",
                            format("[%s]\n", C.Rationale.c_str()) +
                                C.Source});
    R.FinalCandidate = C.Source;

    // Compile.
    R.Transitions.push_back(State::Compile);
    vir::CompileResult VC = vir::compileFunction(C.Source);
    if (!VC.ok()) {
      R.Transitions.push_back(State::Feedback);
      std::string FB = "the candidate does not compile:\nerror: " + VC.Error;
      R.Transcript.push_back({"compiler-tester", "vectorizer", FB});
      P.FailureFeedback.push_back(FB);
      continue;
    }

    // A candidate that contains no vector intrinsics is not a
    // vectorization; reject it (covers the model's echo fallback).
    if (C.Source.find("_mm256_") == std::string::npos) {
      R.Transitions.push_back(State::Feedback);
      std::string FB = "the candidate is not vectorized: no AVX2 "
                       "intrinsics found";
      R.Transcript.push_back({"compiler-tester", "vectorizer", FB});
      P.FailureFeedback.push_back(FB);
      continue;
    }

    // Test.
    R.Transitions.push_back(State::Test);
    interp::ChecksumOutcome O =
        Cfg.Tester ? Cfg.Tester(C.Source, *SC.Fn, *VC.Fn, Cfg.Checksum)
                   : interp::runChecksumTest(*SC.Fn, *VC.Fn, Cfg.Checksum,
                                             &ChecksumMemo);
    R.LastChecksum = O;
    if (O.Verdict == interp::TestVerdict::Plausible) {
      R.Transcript.push_back(
          {"compiler-tester", "user-proxy",
           "checksum testing found no discrepancy: candidate is "
           "plausible"});
      R.Transitions.push_back(State::Done);
      R.Plausible = true;
      return;
    }
    // Feedback with the concrete distinguishing example (paper §4.4.2).
    R.Transitions.push_back(State::Feedback);
    std::string FB = "checksum testing failed: " + O.Detail;
    if (!O.FirstMismatch.Where.empty())
      FB += format("\ninput bound n=%d, %s: expected %d, got %d",
                   O.FirstMismatch.N, O.FirstMismatch.Where.c_str(),
                   O.FirstMismatch.Expected, O.FirstMismatch.Actual);
    R.Transcript.push_back({"compiler-tester", "vectorizer", FB});
    P.FailureFeedback.push_back(FB);
  }
  R.Transitions.push_back(State::Failed);
}
