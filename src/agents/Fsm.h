//===- agents/Fsm.h - multi-agent finite state machine ----------*- C++ -*-===//
///
/// \file
/// The multi-agent FSM of paper §2.2/Fig. 3: a user proxy agent opens a
/// dialogue with the vectorizer assistant agent, attaching the scalar code
/// and Clang-style dependence remarks; the vectorizer consults the LLM; the
/// compiler tester assistant compiles the candidate and runs checksum
/// testing; failures are fed back to the vectorizer for repair. The loop
/// runs until a plausible candidate emerges or the attempt budget (10 in
/// the paper) is exhausted.
///
/// States: Init -> Vectorize -> Compile -> Test -> {Done | Feedback ->
/// Vectorize} -> Failed. The transcript records every agent message so the
/// examples can replay the paper's s453 repair dialogue (§4.4.2).
///
//===----------------------------------------------------------------------===//

#ifndef LV_AGENTS_FSM_H
#define LV_AGENTS_FSM_H

#include "interp/Checksum.h"
#include "llm/Client.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lv {
namespace agents {

/// FSM states (for the transition log).
enum class State : uint8_t {
  Init,
  Vectorize,
  Compile,
  Test,
  Feedback,
  Done,
  Failed,
};

const char *stateName(State S);

/// One message in the agent conversation.
struct Message {
  std::string From;
  std::string To;
  std::string Content;
};

/// Signature of the compiler-tester's checksum runner: candidate source
/// (for content addressing) plus both compiled functions. The vectorization
/// service installs its content-addressed outcome cache through this hook;
/// null runs interp::runChecksumTest directly.
using ChecksumRunner = std::function<interp::ChecksumOutcome(
    const std::string &CandidateSrc, const vir::VFunction &Scalar,
    const vir::VFunction &Vec, const interp::ChecksumConfig &Cfg)>;

/// FSM configuration.
struct FsmConfig {
  int MaxAttempts = 10; ///< The paper's repair budget.
  bool ProvideDependenceFeedback = true; ///< Clang remarks in the prompt.
  double Temperature = 1.0;
  interp::ChecksumConfig Checksum;
  /// Optional interception of the tester agent's checksum run (cache /
  /// instrumentation hook). Only its presence participates in
  /// configHash() — callbacks have no content identity.
  ChecksumRunner Tester;

  /// Canonical content hash (tagged per field; see support/Rng.h). Keys
  /// the service-layer verdict cache; extend when adding fields.
  uint64_t configHash() const;
};

/// Why a run stopped before the FSM itself concluded. The FSM absorbs
/// infrastructure failures instead of letting them unwind through run():
/// the partial transcript/transitions stay on the result, and the service
/// layer decides whether to retry (transient), fail the task (permanent),
/// or classify it timed-out (cancelled) — see src/svc/README.md
/// "Failure model".
enum class FsmAbort : uint8_t {
  None,            ///< Ran to a normal Done/Failed conclusion.
  ClientTransient, ///< llm::ClientError, Transient — retryable.
  ClientPermanent, ///< llm::ClientError, permanent.
  Cancelled,       ///< Task deadline expired (support::CancelledError).
};

/// Result of a run.
struct FsmResult {
  bool Plausible = false;
  int Attempts = 0;
  std::string FinalCandidate; ///< Last candidate source (plausible or not).
  interp::ChecksumOutcome LastChecksum;
  std::vector<Message> Transcript;
  std::vector<State> Transitions;
  FsmAbort Abort = FsmAbort::None; ///< Infrastructure abort, if any.
  std::string AbortMsg;            ///< The aborting error's message.
};

/// The orchestrator.
class MultiAgentFsm {
public:
  MultiAgentFsm(llm::LLMClient &Client, FsmConfig Cfg)
      : Client(Client), Cfg(Cfg) {}

  /// Runs the dialogue for one scalar function. Client errors and task
  /// cancellation do not throw: they surface as FsmResult::Abort with the
  /// progress made so far intact.
  FsmResult run(const std::string &ScalarSource);

private:
  void runImpl(FsmResult &R, const std::string &ScalarSource);

  llm::LLMClient &Client;
  FsmConfig Cfg;
};

} // namespace agents
} // namespace lv

#endif // LV_AGENTS_FSM_H
