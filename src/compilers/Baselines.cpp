//===- compilers/Baselines.cpp - GCC/Clang/ICC auto-vectorizer models ---------===//

#include "compilers/Baselines.h"

#include "deps/Analysis.h"
#include "llm/Vectorizer.h"
#include "minic/GotoElim.h"

using namespace lv;
using namespace lv::compilers;

const char *lv::compilers::compilerName(CompilerId C) {
  switch (C) {
  case CompilerId::GCC: return "GCC";
  case CompilerId::Clang: return "Clang";
  case CompilerId::ICC: return "ICC";
  }
  return "?";
}

const CompilerInfo &lv::compilers::compilerInfo(CompilerId C) {
  static const CompilerInfo Infos[] = {
      {"GCC", "10.5.0", "-O3 -mavx2 -lm -W",
       "-O3 -mavx2 -lm -ftree-vectorizer-verbose=3 -ftree-vectorize "
       "-fopt-info-vec-optimized"},
      {"Clang", "19.0.0", "-O3 -mavx2 -lm -fno-tree-vectorize",
       "-O3 -mavx2 -fstrict-aliasing -fvectorize -fslp-vectorize-aggressive "
       "-Rpass-analysis=loop-vectorize -lm"},
      {"ICC", "2021.10.0", "-restrict -std=c99 -O3 -ip -no-vec",
       "-restrict -std=c99 -O3 -ip -vec -xAVX2"},
  };
  return Infos[static_cast<size_t>(C)];
}

/// Decides legality for one compiler from the analysis.
static bool decideVectorize(CompilerId C, const deps::LoopAnalysis &LA,
                            std::string &Reason) {
  if (!LA.HasLoop) {
    Reason = "no loop found";
    return false;
  }
  const deps::LoopShape &L = LA.inner();
  if (!L.Canonical || L.Step != 1) {
    Reason = "loop is not in canonical unit-stride form";
    return false;
  }
  if (LA.HasIndirectAccess) {
    Reason = "irregular (gather/scatter) memory access";
    return false;
  }
  if (LA.HasNonAffineAccess) {
    Reason = "could not analyze memory subscripts";
    return false;
  }
  if (LA.HasBreakOrReturn) {
    Reason = "loop has multiple exits";
    return false;
  }
  if (LA.HasGoto) {
    // Only ICC's if-converter handles the goto-restructured flow.
    if (C != CompilerId::ICC) {
      Reason = "control flow cannot be converted to data flow";
      return false;
    }
  }
  for (const deps::ArrayAccess &A : LA.Accesses) {
    if (!A.Sub.Valid || A.Sub.Coef != 1) {
      Reason = "unsupported subscript pattern";
      return false;
    }
  }
  for (const deps::Dependence &D : LA.Deps) {
    if (D.LoopCarried && !(D.DistanceKnown && D.Distance > 0)) {
      Reason = "loop-carried dependence prevents vectorization";
      return false;
    }
    if (D.MayBeSpurious) {
      // Spurious positive-distance read: only ICC's dependence analysis
      // proves it safe (§4.3 "Dependence": GCC and Clang often disable
      // vectorization entirely).
      if (C != CompilerId::ICC) {
        Reason = "possible backward dependence between a[i] and a[i+k]";
        return false;
      }
    }
  }
  int GuardedInd = 0;
  for (const deps::ScalarUpdate &U : LA.Scalars) {
    switch (U.K) {
    case deps::ScalarUpdate::Reduction:
      continue; // all three handle reductions (§4.3 "Reduction")
    case deps::ScalarUpdate::Induction:
      if (U.GuardedUpdate) {
        ++GuardedInd;
        continue;
      }
      continue; // derived inductions are standard
    case deps::ScalarUpdate::Wraparound:
      // Needs peeling: ICC only (§4.3 s291/s292).
      if (C != CompilerId::ICC) {
        Reason = "first-order recurrence requires loop peeling";
        return false;
      }
      continue;
    case deps::ScalarUpdate::Other:
      Reason = "unvectorizable cross-iteration scalar";
      return false;
    }
  }
  if (GuardedInd == 1) {
    Reason = "conditional induction variable";
    return false;
  }
  return true;
}

CompileOutcome lv::compilers::compileWith(CompilerId C,
                                          const minic::Function &F) {
  CompileOutcome Out;
  // Quality factors: ICC's scalar code is markedly better (software
  // pipelining, unrolling); its vector code slightly better too.
  switch (C) {
  case CompilerId::GCC: Out.CycleFactor = 1.05; break;
  case CompilerId::Clang: Out.CycleFactor = 1.0; break;
  case CompilerId::ICC: Out.CycleFactor = 0.72; break;
  }

  minic::FunctionPtr Clone = F.clone();
  std::string GErr = minic::eliminateGotos(*Clone);
  deps::LoopAnalysis LA = deps::analyzeFunction(GErr.empty() ? *Clone : F);
  std::string Reason;
  bool Legal = decideVectorize(C, LA, Reason);
  if (Legal) {
    // Wraparound loops pass ICC's legality but our generator does not peel;
    // fall back to scalar if generation fails.
    llm::GenResult G = llm::vectorizeFunction(F, llm::FaultPlan());
    if (G.Fn && G.SoundByConstruction) {
      Out.Vectorized = true;
      Out.Code = std::move(G.Fn);
      return Out;
    }
    Reason = "vectorization legal but code generation not profitable";
  }
  Out.Vectorized = false;
  Out.Reason = Reason;
  Out.Code = F.clone();
  return Out;
}
