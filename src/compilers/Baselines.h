//===- compilers/Baselines.h - GCC/Clang/ICC auto-vectorizer models -*- C++ -*-===//
///
/// \file
/// Decision models of the paper's three baseline compilers (Table 1:
/// GCC 10.5, Clang 19, ICC 2021.10). Each model decides, from the
/// dependence analysis, whether its auto-vectorizer would fire on a loop,
/// and produces the code it would execute: the vectorized form (generated
/// by the same rule-based engine the simulated LLM uses) or the scalar
/// original. Per-compiler quality factors model codegen differences (ICC's
/// stronger scalar code is why Figure 1(c) shows only 2.09x against ICC
/// but 7-8x against GCC/Clang on s212).
///
/// Legality differences reproduce §4.3's findings:
///  * all three: plain loops, reductions, if-conversion for control flow;
///  * ICC only: spurious positive-distance dependences (preloading) and
///    wraparound peeling (s291/s292);
///  * none: guarded inductions (s124), true recurrences, gathers.
///
//===----------------------------------------------------------------------===//

#ifndef LV_COMPILERS_BASELINES_H
#define LV_COMPILERS_BASELINES_H

#include "minic/AST.h"

#include <string>

namespace lv {
namespace compilers {

/// The three baselines.
enum class CompilerId : uint8_t { GCC, Clang, ICC };

const char *compilerName(CompilerId C);

/// Flags from the paper's Table 1, for reporting.
struct CompilerInfo {
  const char *Name;
  const char *Version;
  const char *UnvectorizedFlags;
  const char *VectorizedFlags;
};
const CompilerInfo &compilerInfo(CompilerId C);

/// What the compiler produced for a function.
struct CompileOutcome {
  bool Vectorized = false;
  std::string Reason;        ///< -Rpass-analysis-style remark when not.
  minic::FunctionPtr Code;   ///< The code the compiler would execute.
  double CycleFactor = 1.0;  ///< Codegen-quality multiplier on model cycles.
};

/// Runs the model of compiler \p C on \p F.
CompileOutcome compileWith(CompilerId C, const minic::Function &F);

} // namespace compilers
} // namespace lv

#endif // LV_COMPILERS_BASELINES_H
