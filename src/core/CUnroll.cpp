//===- core/CUnroll.cpp - C-level unrolling (paper §3.2) ----------------------===//

#include "core/CUnroll.h"

#include "minic/Printer.h"
#include "support/Format.h"

using namespace lv;
using namespace lv::core;
using minic::Expr;
using minic::ExprPtr;
using minic::Function;
using minic::FunctionPtr;
using minic::Stmt;
using minic::StmtPtr;

/// Finds the statement list containing the first `for`, returning the list
/// and the index. Searches nested blocks/ifs (not loop bodies).
static std::vector<StmtPtr> *findFirstLoop(std::vector<StmtPtr> &List,
                                           size_t &Index) {
  for (size_t I = 0; I < List.size(); ++I) {
    Stmt &S = *List[I];
    if (S.K == Stmt::For) {
      Index = I;
      return &List;
    }
    if (S.K == Stmt::Block) {
      std::vector<StmtPtr> *Found = findFirstLoop(S.Body, Index);
      if (Found)
        return Found;
    }
  }
  return nullptr;
}

/// True if the subtree contains a `continue` not nested in an inner loop.
static bool hasTopLevelContinue(const Stmt &S) {
  if (S.K == Stmt::Continue)
    return true;
  if (S.K == Stmt::For)
    return false; // inner loop captures its own continues
  for (const StmtPtr &Sub : S.Body)
    if (Sub && hasTopLevelContinue(*Sub))
      return true;
  return false;
}

/// Rewrites `break` (not nested in an inner loop) into `return`, as the
/// paper's preprocessing does.
static void breakToReturn(Stmt &S) {
  if (S.K == Stmt::Break) {
    S.K = Stmt::Return;
    return;
  }
  if (S.K == Stmt::For)
    return;
  for (StmtPtr &Sub : S.Body)
    if (Sub)
      breakToReturn(*Sub);
}

UnrollResult lv::core::unrollStraightLine(const Function &F, int Copies,
                                          bool DropLaterLoops) {
  UnrollResult R;
  FunctionPtr Clone = F.clone();
  if (!Clone->BodyBlock) {
    R.Error = "function has no body";
    return R;
  }
  size_t Index = 0;
  std::vector<StmtPtr> *List = findFirstLoop(Clone->BodyBlock->Body, Index);
  if (!List) {
    R.Error = "no loop to unroll";
    return R;
  }
  Stmt &Loop = *(*List)[Index];
  if (!Loop.forBody()) {
    R.Error = "loop has no body";
    return R;
  }
  if (hasTopLevelContinue(*Loop.forBody())) {
    R.Error = "continue in loop body is not supported by C-level unrolling";
    return R;
  }

  std::vector<StmtPtr> Repl;
  if (Loop.InitStmt && Loop.InitStmt->K != Stmt::Empty)
    Repl.push_back(Loop.InitStmt->clone());
  for (int K = 0; K < Copies; ++K) {
    StmtPtr BodyCopy = Loop.forBody()->clone();
    breakToReturn(*BodyCopy);
    // Each copy is its own block: goto-flag declarations and local temps
    // stay unique by scoping (the paper's label renaming / decl dedup).
    std::vector<StmtPtr> IterStmts;
    IterStmts.push_back(std::move(BodyCopy));
    if (Loop.StepExpr)
      IterStmts.push_back(Stmt::makeExpr(Loop.StepExpr->clone()));
    Repl.push_back(Stmt::makeBlock(std::move(IterStmts)));
  }

  // Splice the replacement in place of the loop.
  List->erase(List->begin() + static_cast<long>(Index));
  for (size_t K = 0; K < Repl.size(); ++K)
    List->insert(List->begin() + static_cast<long>(Index + K),
                 std::move(Repl[K]));

  if (DropLaterLoops) {
    for (size_t I = Index + Repl.size(); I < List->size();) {
      if ((*List)[I]->K == Stmt::For)
        List->erase(List->begin() + static_cast<long>(I));
      else
        ++I;
    }
  }

  R.Fn = std::move(Clone);
  return R;
}

UnrollResult lv::core::elevateOuterLoop(const Function &F,
                                        std::string &OuterHeader) {
  UnrollResult R;
  FunctionPtr Clone = F.clone();
  if (!Clone->BodyBlock) {
    R.Error = "function has no body";
    return R;
  }
  size_t Index = 0;
  std::vector<StmtPtr> *List = findFirstLoop(Clone->BodyBlock->Body, Index);
  if (!List) {
    R.Error = "no loop found";
    return R;
  }
  Stmt &Outer = *(*List)[Index];

  // Canonical header rendering for the identity check (init; cond; step).
  std::string Header;
  if (Outer.InitStmt && Outer.InitStmt->K == Stmt::Decl) {
    Header += minic::printStmt(*Outer.InitStmt, 0);
  } else if (Outer.InitStmt && Outer.InitStmt->K == Stmt::ExprSt) {
    Header += minic::printExpr(*Outer.InitStmt->Cond) + ";";
  }
  if (Outer.Cond)
    Header += " " + minic::printExpr(*Outer.Cond) + ";";
  if (Outer.StepExpr)
    Header += " " + minic::printExpr(*Outer.StepExpr);
  OuterHeader = Header;

  // The outer iterator becomes a parameter.
  std::string Iter;
  if (Outer.InitStmt && Outer.InitStmt->K == Stmt::Decl &&
      Outer.InitStmt->Decls.size() == 1)
    Iter = Outer.InitStmt->Decls[0].Name;
  else if (Outer.InitStmt && Outer.InitStmt->K == Stmt::ExprSt &&
           Outer.InitStmt->Cond->K == Expr::Assign &&
           Outer.InitStmt->Cond->Kids[0]->K == Expr::VarRef)
    Iter = Outer.InitStmt->Cond->Kids[0]->Name;
  if (Iter.empty()) {
    R.Error = "outer loop iterator not recognized";
    return R;
  }
  minic::Param P;
  P.Ty = minic::Type::Int;
  P.Name = Iter;
  Clone->Params.push_back(P);

  // Replace the outer loop with its body.
  StmtPtr Body = std::move(Outer.Body[0]);
  (*List)[Index] = std::move(Body);

  R.Fn = std::move(Clone);
  return R;
}
