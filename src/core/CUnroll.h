//===- core/CUnroll.h - C-level unrolling (paper §3.2) ---------*- C++ -*-===//
///
/// \file
/// The paper's second domain-specific verification technique: instead of
/// letting the validator unroll loops with per-iteration termination
/// guards, pre-transform the *C source*: replace the loop with straight-
/// line copies of the body (`i = start; body; i += step; body; ...`),
/// skipping the `i < end` checks that are redundant once the divisibility
/// assumption `(end - start) % m == 0` holds. `break` becomes `return`,
/// goto labels stay unique by block scoping, and duplicate declarations are
/// avoided by construction (each copy is its own block).
///
/// For nested loops, the outer loops must be syntactically identical on
/// both sides; the outer iterator is elevated to a function parameter and
/// only the inner loops are compared, for an arbitrary outer iteration
/// (§3.2, "Nested loops").
///
//===----------------------------------------------------------------------===//

#ifndef LV_CORE_CUNROLL_H
#define LV_CORE_CUNROLL_H

#include "minic/AST.h"

#include <string>

namespace lv {
namespace core {

/// Result of the straight-lining transform.
struct UnrollResult {
  minic::FunctionPtr Fn; ///< Null on failure.
  std::string Error;

  bool ok() const { return Fn != nullptr; }
};

/// Replaces the first loop of \p F with \p Copies straight-line copies of
/// its body. When \p DropLaterLoops is set, any `for` statement after the
/// unrolled loop (e.g. a vector candidate's scalar epilogue, dead under the
/// divisibility assumption) is removed.
UnrollResult unrollStraightLine(const minic::Function &F, int Copies,
                                bool DropLaterLoops);

/// For a nest of depth 2: checks the outer loop header/structure, removes
/// the outer loop and elevates its iterator to a parameter, leaving the
/// inner loop as the function's only loop. \p OuterHeader receives a
/// canonical rendering of the removed outer header for cross-checking the
/// two sides.
UnrollResult elevateOuterLoop(const minic::Function &F,
                              std::string &OuterHeader);

} // namespace core
} // namespace lv

#endif // LV_CORE_CUNROLL_H
