//===- core/Equivalence.cpp - Algorithm 1: checkEquivalence -------------------===//

#include "core/Equivalence.h"

#include "core/CUnroll.h"
#include "deps/Analysis.h"
#include "obs/Trace.h"
#include "support/Cancel.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vir/Compile.h"
#include "vir/Lower.h"

#include <memory>
#include <numeric>

using namespace lv;
using namespace lv::core;
using tv::TVResult;
using tv::TVVerdict;

const char *lv::core::stageName(Stage S) {
  switch (S) {
  case Stage::None: return "none";
  case Stage::Checksum: return "checksum";
  case Stage::Alive2Unroll: return "alive2-unroll";
  case Stage::CUnroll: return "c-unroll";
  case Stage::Splitting: return "spatial-splitting";
  }
  return "?";
}

uint64_t EquivConfig::configHash() const {
  uint64_t H = 0xE901ULL;
  H = hashField(H, 1, Checksum.configHash());
  H = hashField(H, 2, static_cast<uint64_t>(static_cast<uint32_t>(ScalarMax)));
  H = hashField(H, 3, Alive2Budget);
  H = hashField(H, 4, CUnrollBudget);
  H = hashField(H, 5, SplitBudget);
  H = hashField(H, 6, MaxTerms);
  H = hashField(H, 7, EnableAlive2 ? 1 : 0);
  H = hashField(H, 8, EnableCUnroll ? 1 : 0);
  H = hashField(H, 9, EnableSplitting ? 1 : 0);
  H = hashField(H, 10, IncrementalSolving ? 1 : 0);
  H = hashField(H, 11, SplitCellOverride ? 1 : 0);
  H = hashField(H, 12, SharedLearntSolving ? 1 : 0);
  H = hashField(H, 13, ConeProjection ? 1 : 0);
  H = hashField(H, 14, TrailReuse ? 1 : 0);
  H = hashField(H, 15, PortfolioSolving ? 1 : 0);
  H = hashField(H, 16, static_cast<uint64_t>(
                           static_cast<uint32_t>(SplitCellWorkers)));
  return H;
}

const char *lv::core::outcomeName(EquivResult::Outcome O) {
  switch (O) {
  case EquivResult::CannotCompile: return "cannot-compile";
  case EquivResult::Inequivalent: return "inequivalent";
  case EquivResult::Equivalent: return "equivalent";
  case EquivResult::Inconclusive: return "inconclusive";
  }
  return "?";
}

namespace {

/// Alignment facts extracted from both sides (paper §3.1).
struct Alignment {
  bool Valid = false;
  int64_t Step1 = 1;       ///< Scalar loop step.
  int64_t Step2 = 8;       ///< Vector loop step.
  int64_t V = 8;           ///< lcm(Step1, Step2): elements per block.
  int SrcCopies = 8;       ///< V / Step1.
  int TgtCopies = 1;       ///< V / Step2.
  int64_t Start = 0;
  tv::DivAssumption Div;   ///< (end - start) % V == 0.
  bool HasDiv = false;
};

} // namespace

static Alignment computeAlignment(const minic::Function &S,
                                  const minic::Function &V) {
  Alignment A;
  deps::LoopAnalysis LS = deps::analyzeFunction(S);
  deps::LoopAnalysis LV = deps::analyzeFunction(V);
  if (!LS.HasLoop || !LV.HasLoop)
    return A;
  const deps::LoopShape &IS = LS.inner();
  const deps::LoopShape &IV = LV.inner();
  if (!IS.Canonical || !IS.End.Valid || IS.Step <= 0)
    return A;
  A.Step1 = IS.Step;
  A.Step2 = IV.StepKnown && IV.Step > 0 ? IV.Step : 8;
  A.V = std::lcm(A.Step1, A.Step2);
  if (A.V <= 0 || A.V > 64)
    return A;
  A.SrcCopies = static_cast<int>(A.V / A.Step1);
  A.TgtCopies = static_cast<int>(A.V / A.Step2);
  A.Start = IS.Start;
  if (!IS.End.Param.empty()) {
    A.Div.Param = IS.End.Param;
    A.Div.Offset = static_cast<int32_t>(
        IS.End.Offset + (IS.InclusiveEnd ? 1 : 0) - IS.Start);
    A.Div.Mod = static_cast<int32_t>(A.V);
    A.HasDiv = true;
  }
  A.Valid = true;
  return A;
}

/// Elevates outer loops until both sides are single-loop functions with
/// syntactically identical removed headers. Returns false when the nest
/// shapes disagree (stage becomes inconclusive, as the paper's filter does).
static bool elevateNests(minic::FunctionPtr &S, minic::FunctionPtr &V,
                         std::string &Why) {
  for (int Guard = 0; Guard < 3; ++Guard) {
    deps::LoopAnalysis LS = deps::analyzeFunction(*S);
    deps::LoopAnalysis LV = deps::analyzeFunction(*V);
    if (!LS.HasLoop || !LV.HasLoop) {
      Why = "loop nest missing on one side";
      return false;
    }
    if (!LS.isNested() && !LV.isNested())
      return true;
    if (!LS.isNested() || !LV.isNested()) {
      Why = "loop nest depth differs between source and candidate";
      return false;
    }
    std::string HS, HV;
    UnrollResult RS = elevateOuterLoop(*S, HS);
    UnrollResult RV = elevateOuterLoop(*V, HV);
    if (!RS.ok() || !RV.ok()) {
      Why = RS.ok() ? RV.Error : RS.Error;
      return false;
    }
    if (HS != HV) {
      Why = format("outer loops are not syntactically identical:\n  "
                   "source: %s\n  target: %s",
                   HS.c_str(), HV.c_str());
      return false;
    }
    S = std::move(RS.Fn);
    V = std::move(RV.Fn);
  }
  Why = "loop nest deeper than supported";
  return false;
}

/// Compiles an AST to VIR, reporting failures.
static vir::VFunctionPtr lowerAst(const minic::Function &F,
                                  std::string &Err) {
  vir::LowerResult R = vir::lowerToVIR(F);
  if (!R.ok()) {
    Err = R.Error;
    return nullptr;
  }
  return std::move(R.Fn);
}

/// The staged funnel body, writing into \p Out so a cancellation unwind
/// keeps the per-stage evidence gathered before the deadline landed.
static void checkEquivalenceImpl(const std::string &ScalarSrc,
                                 const std::string &VecSrc,
                                 const EquivConfig &Cfg, EquivResult &Out) {

  vir::CompileResult SC = vir::compileFunction(ScalarSrc);
  if (!SC.ok()) {
    Out.Final = EquivResult::CannotCompile;
    Out.DecidedBy = Stage::Checksum;
    Out.Detail = "scalar source failed to compile: " + SC.Error;
    return;
  }
  vir::CompileResult VC = vir::compileFunction(VecSrc);
  if (!VC.ok()) {
    Out.Final = EquivResult::CannotCompile;
    Out.DecidedBy = Stage::Checksum;
    Out.Detail = "candidate failed to compile: " + VC.Error;
    return;
  }

  // Stage 1: checksum testing (paper §2.1). Engine selection (bytecode VM
  // vs tree-walk) rides on Cfg.Checksum.UseBytecode. The span both feeds
  // the trace and accumulates the stage wall into Out.ChecksumNanos —
  // scoped so the write lands before the enclosing function returns (the
  // destructor must not race a `return Out;` that may or may not be
  // NRVO'd into the same object). Same pattern for every stage below.
  {
    obs::Span Timer("equiv", "stage.checksum", &Out.ChecksumNanos);
    Out.ChecksumRes = interp::runChecksumTest(*SC.Fn, *VC.Fn, Cfg.Checksum);
    const interp::ChecksumWork &W = Out.ChecksumRes.Work;
    Timer.arg("instrs", W.Cand.Instrs + W.Scalar.Instrs);
    Timer.arg("cand_runs", W.CandRuns);
    Timer.arg("scalar_runs", W.ScalarRuns);
  }
  if (Out.ChecksumRes.Verdict == interp::TestVerdict::NotEquivalent) {
    Out.Final = EquivResult::Inequivalent;
    Out.DecidedBy = Stage::Checksum;
    Out.Detail = Out.ChecksumRes.Detail;
    return;
  }
  if (Out.ChecksumRes.Verdict == interp::TestVerdict::Error) {
    Out.Final = EquivResult::Inequivalent;
    Out.DecidedBy = Stage::Checksum;
    Out.Detail = "checksum harness: " + Out.ChecksumRes.Detail;
    return;
  }

  // Prepare TV-side ASTs: elevate nested loops (paper §3.1 "Nested loops").
  minic::FunctionPtr STv = SC.Ast->clone();
  minic::FunctionPtr VTv = VC.Ast->clone();
  std::string NestWhy;
  bool NestOk = elevateNests(STv, VTv, NestWhy);
  if (!NestOk) {
    Out.Final = EquivResult::Inconclusive;
    Out.Detail = "nested-loop handling: " + NestWhy;
    return;
  }

  Alignment Align = computeAlignment(*STv, *VTv);
  if (!Align.Valid) {
    Out.Final = EquivResult::Inconclusive;
    Out.Detail = "loop alignment failed (non-canonical loop shapes)";
    return;
  }

  std::string LowerErr;
  vir::VFunctionPtr SV = lowerAst(*STv, LowerErr);
  vir::VFunctionPtr VV = SV ? lowerAst(*VTv, LowerErr) : nullptr;
  if (!SV || !VV) {
    Out.Final = EquivResult::Inconclusive;
    Out.Detail = "TV lowering failed: " + LowerErr;
    return;
  }

  // Stage 2: checkWithAlive2Unroll — guarded symbolic unrolling.
  support::throwIfCancelled("equiv.stage2");
  if (Cfg.EnableAlive2) {
    bool Decided = false;
    {
      obs::Span Timer("equiv", "stage.alive2", &Out.Alive2Nanos);
      tv::RefineOptions RO;
      RO.ScalarMax = Cfg.ScalarMax;
      RO.SrcExec.UnrollBound =
          static_cast<int>(Cfg.ScalarMax / Align.Step1) + 2;
      RO.TgtExec.UnrollBound =
          static_cast<int>(Cfg.ScalarMax / Align.Step2) + 2;
      RO.SrcExec.MemWindow = Cfg.ScalarMax + 8;
      RO.TgtExec.MemWindow = Cfg.ScalarMax + 8;
      RO.CompareWindow = Cfg.ScalarMax + 8;
      if (Align.HasDiv)
        RO.Divs.push_back(Align.Div);
      RO.Budget.MaxConflicts = Cfg.Alive2Budget;
      RO.MaxTerms = Cfg.MaxTerms;
      Out.Alive2Res = tv::checkRefinement(*SV, *VV, RO);
      if (Out.Alive2Res.V == TVVerdict::Equivalent ||
          Out.Alive2Res.V == TVVerdict::Inequivalent) {
        Out.Final = Out.Alive2Res.V == TVVerdict::Equivalent
                        ? EquivResult::Equivalent
                        : EquivResult::Inequivalent;
        Out.DecidedBy = Stage::Alive2Unroll;
        Out.Detail = Out.Alive2Res.Detail;
        Out.Counterexample = Out.Alive2Res.Counterexample;
        Decided = true;
      }
      Timer.arg("conflicts", Out.Alive2Res.Conflicts);
      Timer.arg("propagations", Out.Alive2Res.Propagations);
      Timer.arg("restarts", Out.Alive2Res.Restarts);
      Timer.arg("trail_reused", Out.Alive2Res.TrailReused);
    }
    if (Decided)
      return;
  }

  // Stages 3-4 share one straight-lined encoding: both verify the same
  // aligned block, stage 3 over the full compare window and stage 4
  // cell-by-cell. With Cfg.IncrementalSolving one RefinementSession blasts
  // that encoding once and all queries (the stage-3 attempt and every
  // stage-4 cell) run against the same incremental SAT context.
  UnrollResult SU, VU;
  vir::VFunctionPtr SUV, VUV;
  std::string UnrollErr;
  if (Cfg.EnableCUnroll || Cfg.EnableSplitting) {
    SU = unrollStraightLine(*STv, Align.SrcCopies, /*DropLaterLoops=*/true);
    VU = unrollStraightLine(*VTv, Align.TgtCopies, /*DropLaterLoops=*/true);
    if (SU.ok() && VU.ok()) {
      SUV = lowerAst(*SU.Fn, UnrollErr);
      VUV = SUV ? lowerAst(*VU.Fn, UnrollErr) : nullptr;
    } else {
      UnrollErr = SU.ok() ? VU.Error : SU.Error;
    }
  }

  tv::RefineOptions StraightRO;
  StraightRO.ScalarMax = Cfg.ScalarMax;
  // Query-scoped solving applies to the shared stage-3/4 session — the
  // hot path the knobs were built for (many queries over one encoding).
  StraightRO.SharedLearnt = Cfg.SharedLearntSolving;
  StraightRO.Solver.ConeProjection = Cfg.ConeProjection;
  StraightRO.Solver.TrailReuse = Cfg.TrailReuse;
  // Portfolio racing needs a fork-clean sound base; the shared-learnt
  // mode already owns the shared base, so it wins when both are set.
  StraightRO.Portfolio = Cfg.PortfolioSolving && !Cfg.SharedLearntSolving;
  StraightRO.SrcExec.MemWindow = static_cast<int>(Align.Start + Align.V) + 10;
  StraightRO.TgtExec.MemWindow = StraightRO.SrcExec.MemWindow;
  StraightRO.CompareWindow = StraightRO.SrcExec.MemWindow;
  if (Align.HasDiv)
    StraightRO.Divs.push_back(Align.Div);
  StraightRO.MaxTerms = Cfg.MaxTerms;

  std::unique_ptr<tv::RefinementSession> Shared;
  auto sharedSession = [&]() -> tv::RefinementSession & {
    if (!Shared)
      Shared.reset(new tv::RefinementSession(*SUV, *VUV, StraightRO));
    return *Shared;
  };

  // Stage 3: checkWithCUnroll — straight-line one aligned block.
  support::throwIfCancelled("equiv.stage3");
  if (Cfg.EnableCUnroll) {
    bool Decided = false;
    {
      obs::Span Timer("equiv", "stage.cunroll", &Out.CUnrollNanos);
      if (SUV && VUV) {
        smt::SatBudget Budget = StraightRO.Budget;
        Budget.MaxConflicts = Cfg.CUnrollBudget;
        if (Cfg.IncrementalSolving) {
          Out.CUnrollRes = sharedSession().checkFull(Budget);
        } else {
          tv::RefineOptions RO = StraightRO;
          RO.Budget = Budget;
          Out.CUnrollRes = tv::checkRefinement(*SUV, *VUV, RO);
        }
        if (Out.CUnrollRes.V == TVVerdict::Equivalent ||
            Out.CUnrollRes.V == TVVerdict::Inequivalent) {
          Out.Final = Out.CUnrollRes.V == TVVerdict::Equivalent
                          ? EquivResult::Equivalent
                          : EquivResult::Inequivalent;
          Out.DecidedBy = Stage::CUnroll;
          Out.Detail = Out.CUnrollRes.Detail;
          Out.Counterexample = Out.CUnrollRes.Counterexample;
          Decided = true;
        }
      } else {
        Out.CUnrollRes.V = TVVerdict::Unsupported;
        Out.CUnrollRes.Detail = UnrollErr;
      }
      Timer.arg("conflicts", Out.CUnrollRes.Conflicts);
      Timer.arg("propagations", Out.CUnrollRes.Propagations);
      Timer.arg("restarts", Out.CUnrollRes.Restarts);
      Timer.arg("trail_reused", Out.CUnrollRes.TrailReused);
      // Stage 3 runs through the same portfolio session as stage 4.
      Timer.arg("portfolio_fast_wins",
                Out.CUnrollRes.PortfolioArm == 1 ? 1 : 0);
      Timer.arg("portfolio_sound_wins",
                Out.CUnrollRes.PortfolioArm == 2 && Out.CUnrollRes.decided()
                    ? 1
                    : 0);
      Timer.arg("portfolio_fallbacks",
                Out.CUnrollRes.PortfolioArm == 2 ? 1 : 0);
    }
    if (Decided)
      return;
  }

  // Stage 4: checkWithSpatialSplitting — per-cell queries under the
  // conservative no-loop-carried-dependence precondition.
  support::throwIfCancelled("equiv.stage4");
  if (Cfg.EnableSplitting) {
    bool Decided = false;
    {
      obs::Span Timer("equiv", "stage.split", &Out.SplitNanos);
      deps::LoopAnalysis LS = deps::analyzeFunction(*STv);
      deps::LoopAnalysis LV2 = deps::analyzeFunction(*VTv);
      bool TargetAligned = true;
      for (const deps::ArrayAccess &A : LV2.Accesses)
        if (!A.Sub.Valid || A.Sub.Coef != 1 || A.Sub.Offset != 0)
          TargetAligned = false;
      Out.SplittingEligible = LS.spatialSplittingEligible() &&
                              TargetAligned && SU.ok() && VU.ok();
      if (Out.SplittingEligible && SUV && VUV) {
        smt::SatBudget Budget = StraightRO.Budget;
        Budget.MaxConflicts = Cfg.SplitBudget;
        bool AllEq = true;
        // Shared decision step: identical for the sequential loop and
        // the batched fan-out (whose merge already reproduces the
        // sequential early exit by truncating after an Inequivalent).
        auto applyCell = [&](int Cell, TVResult RJ) {
          if (RJ.V == TVVerdict::Inequivalent) {
            Out.Final = EquivResult::Inequivalent;
            Out.DecidedBy = Stage::Splitting;
            Out.Detail = format("cell %d: %s", Cell, RJ.Detail.c_str());
            Out.Counterexample = RJ.Counterexample;
            Decided = true;
          }
          if (RJ.V != TVVerdict::Equivalent)
            AllEq = false;
          Out.SplitRes.push_back(std::move(RJ));
        };
        if (Cfg.IncrementalSolving && Cfg.SplitCellWorkers > 1) {
          // Parallel per-cell dispatch: pre-built violation terms, one
          // isolated fork per solve, deterministic cell-order merge.
          std::vector<int> Cells(static_cast<size_t>(Align.V));
          for (size_t J = 0; J < Cells.size(); ++J)
            Cells[J] = static_cast<int>(Align.Start) + static_cast<int>(J);
          std::vector<TVResult> Batch =
              sharedSession().checkCells(Cells, Budget, Cfg.SplitCellWorkers);
          for (size_t J = 0; J < Batch.size() && !Decided; ++J)
            applyCell(Cells[J], std::move(Batch[J]));
        } else {
          for (int J = 0; J < static_cast<int>(Align.V) && !Decided; ++J) {
            support::throwIfCancelled("equiv.cell");
            int Cell = static_cast<int>(Align.Start) + J;
            TVResult RJ;
            if (Cfg.IncrementalSolving) {
              RJ = sharedSession().checkCell(Cell, Budget);
            } else {
              tv::RefineOptions RO = StraightRO;
              RO.CellFilter = Cell;
              RO.Budget = Budget;
              RJ = Cfg.SplitCellOverride
                       ? Cfg.SplitCellOverride(*SUV, *VUV, RO)
                       : tv::checkRefinement(*SUV, *VUV, RO);
            }
            applyCell(Cell, std::move(RJ));
          }
        }
        if (!Decided && AllEq) {
          Out.Final = EquivResult::Equivalent;
          Out.DecidedBy = Stage::Splitting;
          Out.Detail = format("all %d per-cell queries verified",
                              static_cast<int>(Align.V));
          Decided = true;
        }
      }
      uint64_t Conflicts = 0, Props = 0, Restarts = 0, Reused = 0;
      uint64_t FastWins = 0, SoundWins = 0, Fallbacks = 0;
      for (const TVResult &RJ : Out.SplitRes) {
        Conflicts += RJ.Conflicts;
        Props += RJ.Propagations;
        Restarts += RJ.Restarts;
        Reused += RJ.TrailReused;
        if (RJ.PortfolioArm == 1)
          ++FastWins;
        else if (RJ.PortfolioArm == 2) {
          ++Fallbacks;
          if (RJ.decided())
            ++SoundWins;
        }
      }
      Timer.arg("cells", Out.SplitRes.size());
      Timer.arg("conflicts", Conflicts);
      Timer.arg("propagations", Props);
      Timer.arg("restarts", Restarts);
      Timer.arg("trail_reused", Reused);
      Timer.arg("portfolio_fast_wins", FastWins);
      Timer.arg("portfolio_sound_wins", SoundWins);
      Timer.arg("portfolio_fallbacks", Fallbacks);
    }
    if (Decided)
      return;
  }

  Out.Final = EquivResult::Inconclusive;
  Out.Detail = "all stages inconclusive";
}

EquivResult lv::core::checkEquivalence(const std::string &ScalarSrc,
                                       const std::string &VecSrc,
                                       const EquivConfig &Cfg) {
  EquivResult Out;
  try {
    checkEquivalenceImpl(ScalarSrc, VecSrc, Cfg, Out);
  } catch (const support::CancelledError &E) {
    // The task deadline expired mid-stage. Every stage span is scoped, so
    // the unwind already flushed the per-stage nanos; the evidence up to
    // the cancel point stays on the result, the verdict degrades to
    // Inconclusive, and Cancelled marks the result as reflecting the
    // deadline rather than the pair (the caller must not cache it).
    Out.Final = EquivResult::Inconclusive;
    Out.DecidedBy = Stage::None;
    Out.Detail = std::string("cancelled: ") + E.what();
    Out.Cancelled = true;
  }
  return Out;
}
