//===- core/Equivalence.h - Algorithm 1: checkEquivalence ------*- C++ -*-===//
///
/// \file
/// The paper's Algorithm 1: staged equivalence checking of a vectorized
/// candidate V against scalar source S.
///
///   1. checksumTesting(S, V)          -> Inequivalent | Plausible
///   2. checkWithAlive2Unroll(S, V)    -> guarded symbolic unrolling with
///      loop alignment and the divisibility assumption (§3.1)
///   3. checkWithCUnroll(S, V)         -> C-level straight-lining of one
///      aligned block on both sides (§3.2)
///   4. checkWithSpatialSplitting(S,V) -> per-cell queries under the
///      conservative no-loop-carried-dependence check (§3.3)
///
/// Each stage may return Inconclusive (budget exhaustion — the paper's
/// Alive2 timeout/memout); the next stage then runs. Nested loops are
/// handled by requiring syntactically identical outer loops and elevating
/// the outer iterator to a parameter before stages 2-4.
///
//===----------------------------------------------------------------------===//

#ifndef LV_CORE_EQUIVALENCE_H
#define LV_CORE_EQUIVALENCE_H

#include "interp/Checksum.h"
#include "tv/Refine.h"

#include <functional>
#include <string>
#include <vector>

namespace lv {
namespace core {

/// Which stage settled the verdict.
enum class Stage : uint8_t {
  None,
  Checksum,
  Alive2Unroll,
  CUnroll,
  Splitting,
};

const char *stageName(Stage S);

/// Configuration (budgets double as the ablation knobs).
struct EquivConfig {
  interp::ChecksumConfig Checksum;
  int32_t ScalarMax = 16;        ///< Bounded domain for scalar params.
  uint64_t Alive2Budget = 25'000; ///< Conflicts for stage 2.
  uint64_t CUnrollBudget = 25'000;
  uint64_t SplitBudget = 10'000; ///< Per-cell budget for stage 4.
  size_t MaxTerms = 600'000;     ///< Symbolic-encoding cap (memout knob).
  bool EnableAlive2 = true;      ///< Ablation: skip stage 2.
  bool EnableCUnroll = true;     ///< Ablation: skip stage 3.
  bool EnableSplitting = true;   ///< Ablation: skip stage 4.
  /// Share one incremental RefinementSession across stage 3 and all
  /// stage-4 per-cell queries: symbolic execution and the common-encoding
  /// blast happen once, each query runs in a throwaway fork of the
  /// pristine base (verdicts identical to scratch solving by
  /// construction). false restores the seed behaviour — a scratch solver
  /// per query — and exists for ablation/benchmark comparison.
  bool IncrementalSolving = true;
  /// Query-scoped solving for the stage-3/4 session (see smt/README.md):
  /// SharedLearntSolving runs queries directly on the shared base solver
  /// (no per-query fork; learnt clauses carry across, heuristics rewind
  /// per query); ConeProjection restricts each query's search to its
  /// definitional cone; TrailReuse keeps the assumption trail prefix
  /// across Luby restarts. All three perturb search order, and
  /// budget-bound verdicts are order-sensitive, so the defaults follow
  /// the bench_table3_equivalence parity matrix: fork-per-query is the
  /// configuration with bit-identical verdicts on all 149 pairs (cone
  /// projection is parity-clean there too but pays without winning in
  /// fork mode), while shared-learnt + cone — the config that removes
  /// the measured 2x shared-DB propagation overhead — still flips a
  /// handful of budget-borderline verdicts and therefore stays opt-in.
  bool SharedLearntSolving = false;
  bool ConeProjection = false;
  bool TrailReuse = false;
  /// Portfolio racing for the stage-3/4 session (smt/README.md
  /// "Portfolio mode"): every query first runs a *fast arm* — a
  /// dedicated shared-learnt base with cone projection and trail reuse,
  /// the configuration the bench matrix measures fastest — under the
  /// same budget. A decided fast verdict is accepted (both arms run
  /// complete searches, so any Sat/Unsat is sound; the shared-arm
  /// verdict flips are all budget artifacts), while an indeterminate
  /// one falls back to the sound fork arm, whose verdict is
  /// bit-identical to plain fork-per-query by construction. This keeps
  /// the fast arms' speed without giving up fork-parity verdicts, so it
  /// is the default. Requires IncrementalSolving; ignored when
  /// SharedLearntSolving is set (that mode already owns a shared base).
  bool PortfolioSolving = true;
  /// Stage-4 cell queries solved with this many threads via
  /// tv::RefinementSession::checkCells. 1 (default) keeps the
  /// sequential per-cell loop — in portfolio mode the fast arm then
  /// searches its warm shared base directly, the fastest shape on one
  /// core. >1 fans the cells out: violation terms are pre-built
  /// single-threaded, every solve runs in an isolated fork of
  /// pre-fan-out state, and results merge in cell order — verdicts,
  /// statistics, and debugString are bit-identical at any worker
  /// count >= 2 by construction (and in non-portfolio fork mode the
  /// batch is bit-identical to the sequential loop too; portfolio
  /// fast-arm *statistics* differ between the warm sequential path and
  /// the forked batch path, while both arms' verdicts stay gated
  /// against fork-per-query in bench_table3).
  int SplitCellWorkers = 1;
  /// Bench/A-B hook: when set (and IncrementalSolving is false), stage-4
  /// per-cell refinement queries route through this callback instead of
  /// the built-in backend. bench_table3_equivalence uses it to drive a
  /// frozen copy of the seed smt stack as the "before" measurement.
  std::function<tv::TVResult(const vir::VFunction &, const vir::VFunction &,
                             const tv::RefineOptions &)>
      SplitCellOverride;

  /// Canonical content hash (tagged per field; see support/Rng.h). Keys
  /// the svc:: verdict cache together with the scalar/candidate source
  /// hashes; only the *presence* of SplitCellOverride participates
  /// (callbacks have no content identity — the service bypasses the cache
  /// entirely when one is installed). Extend when adding fields.
  uint64_t configHash() const;
};

/// Full result with per-stage evidence.
struct EquivResult {
  enum Outcome : uint8_t {
    CannotCompile,
    Inequivalent,
    Equivalent,
    Inconclusive,
  } Final = Inconclusive;
  Stage DecidedBy = Stage::None;
  std::string Detail;
  std::string Counterexample;

  interp::ChecksumOutcome ChecksumRes;
  tv::TVResult Alive2Res;
  tv::TVResult CUnrollRes;
  std::vector<tv::TVResult> SplitRes; ///< One per compared cell.
  bool SplittingEligible = false;

  /// Wall time per stage. ChecksumNanos covers the stage-1 interpreter
  /// runs (the Table-2 cost the bytecode VM attacks); the formal-stage
  /// timers include symbolic execution and blasting, not just SAT search
  /// — the costs incremental solving amortizes.
  uint64_t ChecksumNanos = 0;
  uint64_t Alive2Nanos = 0;
  uint64_t CUnrollNanos = 0;
  uint64_t SplitNanos = 0;

  /// The run was cut short by task cancellation (deadline expiry): the
  /// verdict is Inconclusive and the per-stage evidence is partial. A
  /// cancelled result reflects the deadline, not the pair, so it must
  /// never enter the verdict cache or the persistent store — the service
  /// enforces that, and the store serialization deliberately omits this
  /// field (schema unchanged; cancelled results are simply never written).
  bool Cancelled = false;

  bool equivalent() const { return Final == Equivalent; }
};

const char *outcomeName(EquivResult::Outcome O);

/// Runs Algorithm 1 on source text. \p VecSrc failing to compile yields
/// CannotCompile (Table 2's row).
///
/// This is the single-task *kernel*: it owns every piece of mutable state
/// it touches (TermTable, solvers, interpreter images), so concurrent
/// calls never share anything. Batch callers should not invoke it in a
/// hand-rolled loop — svc::VectorizerService is the canonical API for
/// running the funnel over many functions (batching, a worker pool, and
/// the content-addressed verdict cache); svc::verifyPair is the
/// single-call convenience wrapper over a one-worker service.
EquivResult checkEquivalence(const std::string &ScalarSrc,
                             const std::string &VecSrc,
                             const EquivConfig &Cfg = EquivConfig());

} // namespace core
} // namespace lv

#endif // LV_CORE_EQUIVALENCE_H
