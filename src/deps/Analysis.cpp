//===- deps/Analysis.cpp - AST-level loop & dependence analysis --------------===//

#include "deps/Analysis.h"

#include "support/Format.h"

#include <map>
#include <set>

using namespace lv;
using namespace lv::deps;
using minic::BinOp;
using minic::Expr;
using minic::Stmt;
using minic::UnOp;

namespace {

/// Collects the analysis for one function.
class Analyzer {
public:
  explicit Analyzer(const minic::Function &F) : F(F) {}

  LoopAnalysis run();

private:
  const minic::Function &F;
  LoopAnalysis LA;
  /// Derived induction variables: name -> {coef over iter, offset at the
  /// *start* of an iteration}. The innermost iterator itself maps to
  /// {1, 0}.
  std::map<std::string, std::pair<int64_t, int64_t>> IndVars;
  /// Scalars assigned a constant before the loop and never reassigned
  /// inside it (e.g. `int m = 1; ... a[i + m]`): folded into subscripts.
  std::map<std::string, int64_t> PreLoopConsts;

  void collectPreLoopConsts();

  void findNest(const Stmt &S);
  void resolveWraparounds(const Stmt &Body);
  LoopShape shapeOf(const Stmt &Loop);
  void scanBody(const Stmt &S, bool Conditional);
  void scanExpr(const Expr &E, bool Conditional, bool IsWriteTarget);
  AffineSubscript affineOf(const Expr &E) const;
  void classifyScalars(const Stmt &Body);
  void computeDependences();

  static bool exprIsConst(const Expr &E, int64_t &V) {
    if (E.K == Expr::IntLit) {
      V = E.Value;
      return true;
    }
    if (E.K == Expr::Unary && E.UOp == UnOp::Neg &&
        E.Kids[0]->K == Expr::IntLit) {
      V = -E.Kids[0]->Value;
      return true;
    }
    return false;
  }
};

} // namespace

/// Parses a bound expression of the form `param`, `param + c`, `param - c`,
/// or a constant.
static BoundSpec boundOf(const Expr &E) {
  BoundSpec B;
  if (E.K == Expr::IntLit) {
    B.Valid = true;
    B.Offset = E.Value;
    return B;
  }
  if (E.K == Expr::VarRef) {
    B.Valid = true;
    B.Param = E.Name;
    return B;
  }
  if (E.K == Expr::Binary &&
      (E.BOp == BinOp::Add || E.BOp == BinOp::Sub) &&
      E.Kids[0]->K == Expr::VarRef && E.Kids[1]->K == Expr::IntLit) {
    B.Valid = true;
    B.Param = E.Kids[0]->Name;
    B.Offset = E.BOp == BinOp::Add ? E.Kids[1]->Value : -E.Kids[1]->Value;
    return B;
  }
  return B;
}

LoopShape Analyzer::shapeOf(const Stmt &Loop) {
  LoopShape S;
  S.Loop = &Loop;
  // Iterator and start: `int i = c` or `i = c` in the init.
  if (Loop.InitStmt) {
    const Stmt &Init = *Loop.InitStmt;
    if (Init.K == Stmt::Decl && Init.Decls.size() == 1 &&
        Init.Decls[0].Init) {
      S.Iter = Init.Decls[0].Name;
      S.StartKnown = exprIsConst(*Init.Decls[0].Init, S.Start);
    } else if (Init.K == Stmt::ExprSt && Init.Cond->K == Expr::Assign &&
               Init.Cond->IsPlainAssign &&
               Init.Cond->Kids[0]->K == Expr::VarRef) {
      S.Iter = Init.Cond->Kids[0]->Name;
      S.StartKnown = exprIsConst(*Init.Cond->Kids[1], S.Start);
    }
  }
  // Condition: `i < bound` or `i <= bound`.
  if (Loop.Cond && Loop.Cond->K == Expr::Binary &&
      (Loop.Cond->BOp == BinOp::Lt || Loop.Cond->BOp == BinOp::Le) &&
      Loop.Cond->Kids[0]->K == Expr::VarRef &&
      (S.Iter.empty() || Loop.Cond->Kids[0]->Name == S.Iter)) {
    if (S.Iter.empty())
      S.Iter = Loop.Cond->Kids[0]->Name;
    S.End = boundOf(*Loop.Cond->Kids[1]);
    S.InclusiveEnd = Loop.Cond->BOp == BinOp::Le;
  }
  // Step: `i++` / `i += c`.
  if (Loop.StepExpr) {
    const Expr &St = *Loop.StepExpr;
    if (St.K == Expr::Unary &&
        (St.UOp == UnOp::PostInc || St.UOp == UnOp::PreInc) &&
        St.Kids[0]->K == Expr::VarRef && St.Kids[0]->Name == S.Iter) {
      S.Step = 1;
      S.StepKnown = true;
    } else if (St.K == Expr::Assign && !St.IsPlainAssign &&
               St.BOp == BinOp::Add && St.Kids[0]->K == Expr::VarRef &&
               St.Kids[0]->Name == S.Iter) {
      S.StepKnown = exprIsConst(*St.Kids[1], S.Step);
    }
  }
  S.Canonical = !S.Iter.empty() && S.StartKnown && S.StepKnown &&
                S.End.Valid && S.Step > 0;
  return S;
}

void Analyzer::findNest(const Stmt &S) {
  if (S.K == Stmt::For) {
    LA.HasLoop = true;
    LA.Nest.push_back(shapeOf(S));
    // Descend: the first nested for (if any) continues the nest.
    const Stmt *Body = S.forBody();
    if (Body) {
      const Stmt *OnlyFor = nullptr;
      int ForCount = 0;
      std::vector<const Stmt *> Work = {Body};
      // Look only one structural level deep (block of statements).
      if (Body->K == Stmt::Block) {
        for (const minic::StmtPtr &Sub : Body->Body)
          if (Sub->K == Stmt::For) {
            ++ForCount;
            OnlyFor = Sub.get();
          }
      } else if (Body->K == Stmt::For) {
        ForCount = 1;
        OnlyFor = Body;
      }
      if (ForCount == 1 && OnlyFor) {
        findNest(*OnlyFor);
        return;
      }
    }
    return;
  }
  if (S.InitStmt)
    findNest(*S.InitStmt);
  for (const minic::StmtPtr &Sub : S.Body) {
    if (Sub)
      findNest(*Sub);
    if (LA.HasLoop)
      return; // analyze the first loop nest only
  }
}

AffineSubscript Analyzer::affineOf(const Expr &E) const {
  AffineSubscript A;
  int64_t C;
  if (Analyzer::exprIsConst(E, C)) {
    A.Valid = true;
    A.Coef = 0;
    A.Offset = C;
    return A;
  }
  if (E.K == Expr::VarRef) {
    auto It = IndVars.find(E.Name);
    if (It != IndVars.end()) {
      A.Valid = true;
      A.Coef = It->second.first;
      A.Offset = It->second.second;
      A.ViaInduction = E.Name != LA.inner().Iter;
      return A;
    }
    auto CIt = PreLoopConsts.find(E.Name);
    if (CIt != PreLoopConsts.end()) {
      A.Valid = true;
      A.Coef = 0;
      A.Offset = CIt->second;
      return A;
    }
    return A;
  }
  if (E.K == Expr::Binary) {
    AffineSubscript L = affineOf(*E.Kids[0]);
    AffineSubscript R = affineOf(*E.Kids[1]);
    if (!L.Valid || !R.Valid)
      return A;
    switch (E.BOp) {
    case BinOp::Add:
      A.Valid = true;
      A.Coef = L.Coef + R.Coef;
      A.Offset = L.Offset + R.Offset;
      break;
    case BinOp::Sub:
      A.Valid = true;
      A.Coef = L.Coef - R.Coef;
      A.Offset = L.Offset - R.Offset;
      break;
    case BinOp::Mul:
      if (L.Coef == 0) {
        A.Valid = true;
        A.Coef = L.Offset * R.Coef;
        A.Offset = L.Offset * R.Offset;
      } else if (R.Coef == 0) {
        A.Valid = true;
        A.Coef = L.Coef * R.Offset;
        A.Offset = L.Offset * R.Offset;
      }
      break;
    default:
      break;
    }
    A.ViaInduction = L.ViaInduction || R.ViaInduction;
    return A;
  }
  return A;
}

void Analyzer::scanExpr(const Expr &E, bool Conditional, bool IsWriteTarget) {
  if (E.K == Expr::Index && E.Kids[0]->K == Expr::VarRef) {
    ArrayAccess AA;
    AA.Array = E.Kids[0]->Name;
    AA.IsWrite = IsWriteTarget;
    AA.Conditional = Conditional;
    AA.Sub = affineOf(*E.Kids[1]);
    // Record variables used in the subscript.
    {
      std::vector<const Expr *> SW = {E.Kids[1].get()};
      while (!SW.empty()) {
        const Expr *W = SW.back();
        SW.pop_back();
        if (W->K == Expr::VarRef)
          LA.SubscriptVars.push_back(W->Name);
        for (const minic::ExprPtr &Kid : W->Kids)
          if (Kid)
            SW.push_back(Kid.get());
      }
    }
    // Indirect when the subscript itself reads an array.
    const Expr *Sub = E.Kids[1].get();
    std::vector<const Expr *> Work = {Sub};
    while (!Work.empty()) {
      const Expr *W = Work.back();
      Work.pop_back();
      if (W->K == Expr::Index)
        AA.Indirect = true;
      for (const minic::ExprPtr &Kid : W->Kids)
        if (Kid)
          Work.push_back(Kid.get());
    }
    if (AA.Indirect)
      LA.HasIndirectAccess = true;
    if (!AA.Sub.Valid)
      LA.HasNonAffineAccess = true;
    LA.Accesses.push_back(AA);
    scanExpr(*E.Kids[1], Conditional, false);
    return;
  }
  switch (E.K) {
  case Expr::Assign:
    scanExpr(*E.Kids[0], Conditional, true);
    if (!E.IsPlainAssign)
      scanExpr(*E.Kids[0], Conditional, false); // compound also reads
    scanExpr(*E.Kids[1], Conditional, false);
    return;
  case Expr::Unary:
    if (E.UOp == UnOp::PreInc || E.UOp == UnOp::PostInc ||
        E.UOp == UnOp::PreDec || E.UOp == UnOp::PostDec) {
      scanExpr(*E.Kids[0], Conditional, true);
      scanExpr(*E.Kids[0], Conditional, false);
      return;
    }
    break;
  case Expr::Ternary:
    scanExpr(*E.Kids[0], Conditional, false);
    scanExpr(*E.Kids[1], true, false);
    scanExpr(*E.Kids[2], true, false);
    return;
  default:
    break;
  }
  for (const minic::ExprPtr &Kid : E.Kids)
    if (Kid)
      scanExpr(*Kid, Conditional, IsWriteTarget && E.K == Expr::Index);
}

void Analyzer::scanBody(const Stmt &S, bool Conditional) {
  switch (S.K) {
  case Stmt::ExprSt:
    scanExpr(*S.Cond, Conditional, false);
    return;
  case Stmt::Decl:
    for (const minic::Declarator &D : S.Decls)
      if (D.Init)
        scanExpr(*D.Init, Conditional, false);
    return;
  case Stmt::If:
    LA.HasControlFlow = true;
    scanExpr(*S.Cond, Conditional, false);
    if (S.thenArm())
      scanBody(*S.Body[0], true);
    if (S.elseArm())
      scanBody(*S.Body[1], true);
    return;
  case Stmt::Block:
    for (const minic::StmtPtr &Sub : S.Body)
      scanBody(*Sub, Conditional);
    return;
  case Stmt::Goto:
  case Stmt::Label:
    LA.HasGoto = true;
    return;
  case Stmt::Break:
  case Stmt::Return:
    LA.HasBreakOrReturn = true;
    if (S.K == Stmt::Return && S.Cond)
      scanExpr(*S.Cond, Conditional, false);
    return;
  case Stmt::For:
    // Nested loop body already part of the nest scan; treat accesses in it
    // as part of the innermost loop only when this IS the innermost.
    return;
  default:
    return;
  }
}

void Analyzer::classifyScalars(const Stmt &Body) {
  // Find assignments to scalars in the loop body and classify them.
  std::vector<std::pair<const Expr *, bool>> Assigns; // expr, conditional
  std::set<std::string> Locals;
  std::vector<std::pair<const Stmt *, bool>> Work = {{&Body, false}};
  while (!Work.empty()) {
    auto [S, Cond] = Work.back();
    Work.pop_back();
    switch (S->K) {
    case Stmt::ExprSt:
      if (S->Cond->K == Expr::Assign || S->Cond->K == Expr::Unary)
        Assigns.push_back({S->Cond.get(), Cond});
      break;
    case Stmt::Decl:
      for (const minic::Declarator &D : S->Decls)
        Locals.insert(D.Name);
      break;
    case Stmt::If:
      if (S->thenArm())
        Work.push_back({S->Body[0].get(), true});
      if (S->elseArm())
        Work.push_back({S->Body[1].get(), true});
      break;
    case Stmt::Block:
      for (const minic::StmtPtr &Sub : S->Body)
        Work.push_back({Sub.get(), Cond});
      break;
    default:
      break;
    }
  }
  LA.BodyLocals.assign(Locals.begin(), Locals.end());
  const std::string &Iter = LA.inner().Iter;
  for (auto [E, Cond] : Assigns) {
    // Iteration-private temporaries are not cross-iteration scalars.
    if (E->K == Expr::Assign && E->Kids[0]->K == Expr::VarRef &&
        Locals.count(E->Kids[0]->Name))
      continue;
    if (E->K == Expr::Unary && E->Kids[0]->K == Expr::VarRef &&
        Locals.count(E->Kids[0]->Name))
      continue;
    // ++x / x++ on a scalar.
    if (E->K == Expr::Unary && E->Kids[0]->K == Expr::VarRef &&
        E->Kids[0]->Name != Iter) {
      bool Inc = E->UOp == UnOp::PreInc || E->UOp == UnOp::PostInc;
      bool Dec = E->UOp == UnOp::PreDec || E->UOp == UnOp::PostDec;
      if (!Inc && !Dec)
        continue;
      ScalarUpdate U;
      U.K = ScalarUpdate::Induction;
      U.Name = E->Kids[0]->Name;
      U.Step = Inc ? 1 : -1;
      U.GuardedUpdate = Cond;
      LA.Scalars.push_back(U);
      IndVars.emplace(U.Name, std::make_pair<int64_t, int64_t>(1, 0));
      continue;
    }
    if (E->K != Expr::Assign || E->Kids[0]->K != Expr::VarRef)
      continue;
    const std::string &Name = E->Kids[0]->Name;
    if (Name == Iter)
      continue;
    ScalarUpdate U;
    U.Name = Name;
    U.GuardedUpdate = Cond;
    int64_t C;
    const Expr &RHS = *E->Kids[1];
    if (!E->IsPlainAssign &&
        (E->BOp == BinOp::Add || E->BOp == BinOp::Sub) &&
        exprIsConst(RHS, C)) {
      U.K = ScalarUpdate::Induction;
      U.Step = E->BOp == BinOp::Add ? C : -C;
    } else if (!E->IsPlainAssign) {
      // x op= expr: a reduction when expr does not mention x.
      std::set<std::string> Vars;
      std::vector<const Expr *> WorkE = {&RHS};
      while (!WorkE.empty()) {
        const Expr *W = WorkE.back();
        WorkE.pop_back();
        if (W->K == Expr::VarRef)
          Vars.insert(W->Name);
        for (const minic::ExprPtr &Kid : W->Kids)
          if (Kid)
            WorkE.push_back(Kid.get());
      }
      U.K = Vars.count(Name) ? ScalarUpdate::Other : ScalarUpdate::Reduction;
    } else if (E->IsPlainAssign && RHS.K == Expr::VarRef) {
      // x = i / x = y: wraparound candidates (value of a previous
      // iteration used before redefinition); the consumer resolves chains.
      U.K = ScalarUpdate::Wraparound;
    } else {
      U.K = ScalarUpdate::Other;
    }
    LA.Scalars.push_back(U);
  }
}

void Analyzer::computeDependences() {
  for (size_t I = 0; I < LA.Accesses.size(); ++I) {
    const ArrayAccess &W = LA.Accesses[I];
    if (!W.IsWrite)
      continue;
    for (size_t J = 0; J < LA.Accesses.size(); ++J) {
      if (I == J)
        continue;
      const ArrayAccess &O = LA.Accesses[J];
      if (O.Array != W.Array)
        continue;
      if (O.IsWrite && J < I)
        continue; // count each output-dep pair once
      Dependence D;
      D.Array = W.Array;
      D.K = O.IsWrite ? Dependence::Output
                      : (J > I ? Dependence::Anti : Dependence::Flow);
      // For a write W at index c1*i + o1 and access O at c1*i + o2, the
      // dependence distance is (o1 - o2) / c1 when coefficients match.
      // Unit-coef write vs invariant (coef-0) read below the loop start:
      // the written range [start, ...) never touches the read cell.
      if (W.Sub.Valid && O.Sub.Valid && W.Sub.Coef == 1 &&
          O.Sub.Coef == 0 && LA.inner().StartKnown &&
          O.Sub.Offset < LA.inner().Start + W.Sub.Offset)
        continue; // provably independent
      if (W.Sub.Valid && O.Sub.Valid && W.Sub.Coef == O.Sub.Coef &&
          W.Sub.Coef != 0 &&
          (W.Sub.Offset - O.Sub.Offset) % W.Sub.Coef == 0) {
        D.DistanceKnown = true;
        D.Distance = (O.Sub.Offset - W.Sub.Offset) / W.Sub.Coef;
        D.LoopCarried = D.Distance != 0;
      } else if (W.Sub.Valid && O.Sub.Valid && W.Sub.Coef == O.Sub.Coef &&
                 W.Sub.Coef != 0) {
        D.DistanceKnown = true;
        D.Distance = 0; // non-integer distance: independent
        D.LoopCarried = false;
        continue;       // provably no dependence
      } else {
        D.DistanceKnown = false;
        D.LoopCarried = true; // conservative
      }
      if (D.DistanceKnown && D.Distance == 0 && !O.IsWrite) {
        // Same-iteration flow/anti within the statement order: not
        // loop-carried; record only if between different accesses.
        D.LoopCarried = false;
      }
      // "Spurious" pattern: a[i] written, a[i+1] read (positive-distance
      // read of a not-yet-written element); vectorizable by pre-loading.
      if (!O.IsWrite && D.DistanceKnown && D.Distance > 0)
        D.MayBeSpurious = true;
      if (D.DistanceKnown && D.Distance == 0 && O.IsWrite)
        D.LoopCarried = false;
      LA.Deps.push_back(D);
    }
  }
}

void Analyzer::collectPreLoopConsts() {
  // Top-level statements before the first loop: constant decls/assigns.
  if (!F.BodyBlock)
    return;
  for (const minic::StmtPtr &S : F.BodyBlock->Body) {
    if (S->K == Stmt::For)
      break;
    if (S->K == Stmt::Decl) {
      for (const minic::Declarator &D : S->Decls) {
        int64_t V;
        if (D.Init && exprIsConst(*D.Init, V))
          PreLoopConsts[D.Name] = V;
      }
    } else if (S->K == Stmt::ExprSt && S->Cond->K == Expr::Assign &&
               S->Cond->IsPlainAssign &&
               S->Cond->Kids[0]->K == Expr::VarRef) {
      int64_t V;
      if (exprIsConst(*S->Cond->Kids[1], V))
        PreLoopConsts[S->Cond->Kids[0]->Name] = V;
      else
        PreLoopConsts.erase(S->Cond->Kids[0]->Name);
    }
  }
  // Invalidate anything written inside the loop (any statement after the
  // point where the loop begins; conservatively scan the whole function
  // body for assignments below the pre-loop region).
  std::vector<const Stmt *> Work;
  bool SeenLoop = false;
  for (const minic::StmtPtr &S : F.BodyBlock->Body) {
    if (S->K == Stmt::For)
      SeenLoop = true;
    if (SeenLoop)
      Work.push_back(S.get());
  }
  while (!Work.empty()) {
    const Stmt *S = Work.back();
    Work.pop_back();
    std::vector<const Expr *> Exprs;
    if (S->Cond)
      Exprs.push_back(S->Cond.get());
    if (S->StepExpr)
      Exprs.push_back(S->StepExpr.get());
    if (S->InitStmt)
      Work.push_back(S->InitStmt.get());
    for (const minic::StmtPtr &Sub : S->Body)
      if (Sub)
        Work.push_back(Sub.get());
    while (!Exprs.empty()) {
      const Expr *E = Exprs.back();
      Exprs.pop_back();
      if ((E->K == Expr::Assign ||
           (E->K == Expr::Unary &&
            (E->UOp == minic::UnOp::PreInc || E->UOp == minic::UnOp::PostInc ||
             E->UOp == minic::UnOp::PreDec ||
             E->UOp == minic::UnOp::PostDec))) &&
          E->Kids[0]->K == Expr::VarRef)
        PreLoopConsts.erase(E->Kids[0]->Name);
      for (const minic::ExprPtr &Kid : E->Kids)
        if (Kid)
          Exprs.push_back(Kid.get());
    }
  }
}

LoopAnalysis Analyzer::run() {
  if (F.BodyBlock)
    findNest(*F.BodyBlock);
  if (!LA.HasLoop || LA.Nest.empty())
    return LA;
  collectPreLoopConsts();
  const LoopShape &Inner = LA.Nest.back();
  if (!Inner.Iter.empty())
    IndVars.emplace(Inner.Iter, std::make_pair<int64_t, int64_t>(1, 0));
  const Stmt *Body = Inner.Loop->forBody();
  if (Body) {
    classifyScalars(*Body); // populates derived induction variables
    resolveWraparounds(*Body);
    scanBody(*Body, false);
  }
  computeDependences();
  return LA;
}

void Analyzer::resolveWraparounds(const Stmt &Body) {
  // `w = i` carries depth 1 (entry value i-1); `w2 = w` inherits w's entry
  // value, one iteration older. Resolved wraparounds join IndVars so their
  // subscript uses become affine (b[im1] == b[i - 1]).
  std::map<std::string, std::string> AssignedFrom;
  if (Body.K == Stmt::Block) {
    for (const minic::StmtPtr &S : Body.Body) {
      if (S->K != Stmt::ExprSt || S->Cond->K != Expr::Assign ||
          !S->Cond->IsPlainAssign || S->Cond->Kids[0]->K != Expr::VarRef ||
          S->Cond->Kids[1]->K != Expr::VarRef)
        continue;
      AssignedFrom[S->Cond->Kids[0]->Name] = S->Cond->Kids[1]->Name;
    }
  }
  const std::string &Iter = LA.inner().Iter;
  std::map<std::string, int64_t> Depth;
  for (int Round = 0; Round < 4; ++Round) {
    for (ScalarUpdate &U : LA.Scalars) {
      if (U.K != ScalarUpdate::Wraparound || U.GuardedUpdate ||
          Depth.count(U.Name))
        continue;
      auto It = AssignedFrom.find(U.Name);
      if (It == AssignedFrom.end())
        continue;
      if (It->second == Iter)
        Depth[U.Name] = 1;
      else if (Depth.count(It->second))
        Depth[U.Name] = Depth[It->second] + 1;
    }
  }
  for (ScalarUpdate &U : LA.Scalars) {
    if (U.K != ScalarUpdate::Wraparound)
      continue;
    auto It = Depth.find(U.Name);
    U.Step = It == Depth.end() ? 0 : It->second;
    if (U.Step > 0 && U.Step <= 4)
      IndVars[U.Name] = {1, -U.Step};
  }
}

bool LoopAnalysis::hasLoopCarriedDependence() const {
  for (const Dependence &D : Deps)
    if (D.LoopCarried && !(D.K == Dependence::Anti && D.MayBeSpurious))
      return true;
  for (const ScalarUpdate &U : Scalars)
    if (U.K != ScalarUpdate::Wraparound)
      return true;
  return false;
}

bool LoopAnalysis::spatialSplittingEligible() const {
  if (!HasLoop || isNested())
    return false;
  const LoopShape &L = inner();
  if (!L.Canonical || L.Step != 1)
    return false;
  for (const ArrayAccess &A : Accesses)
    if (!A.Sub.Valid || A.Sub.Coef != 1 || A.Sub.Offset != 0 || A.Indirect)
      return false;
  return Scalars.empty();
}

bool LoopAnalysis::hasReduction() const {
  for (const ScalarUpdate &U : Scalars)
    if (U.K == ScalarUpdate::Reduction)
      return true;
  return false;
}

LoopAnalysis lv::deps::analyzeFunction(const minic::Function &F) {
  Analyzer A(F);
  return A.run();
}

std::string lv::deps::renderCompilerFeedback(const LoopAnalysis &LA) {
  std::string Out;
  if (!LA.HasLoop)
    return "remark: no loop found\n";
  const LoopShape &L = LA.inner();
  if (L.Canonical) {
    appendf(Out, "remark: loop over '%s' start=%lld step=%lld bound=%s%+lld%s\n",
            L.Iter.c_str(), static_cast<long long>(L.Start),
            static_cast<long long>(L.Step),
            L.End.Param.empty() ? "" : L.End.Param.c_str(),
            static_cast<long long>(L.End.Offset),
            L.InclusiveEnd ? " (inclusive)" : "");
  } else {
    Out += "remark: loop is not in canonical form\n";
  }
  if (LA.isNested())
    appendf(Out, "remark: loop nest of depth %zu; only the innermost loop "
                 "is considered for vectorization\n",
            LA.Nest.size());
  for (const Dependence &D : LA.Deps) {
    const char *Kind = D.K == Dependence::Flow
                           ? "flow (read-after-write)"
                           : (D.K == Dependence::Anti
                                  ? "anti (write-after-read)"
                                  : "output (write-after-write)");
    if (D.MayBeSpurious)
      appendf(Out,
              "remark: %s dependence on array '%s' with positive distance "
              "%lld; it reads elements not yet written this iteration and "
              "can be resolved by loading before storing\n",
              Kind, D.Array.c_str(), static_cast<long long>(D.Distance));
    else if (D.LoopCarried && D.DistanceKnown)
      appendf(Out,
              "remark: loop-carried %s dependence on array '%s' at "
              "distance %lld prevents vectorization\n",
              Kind, D.Array.c_str(), static_cast<long long>(D.Distance));
    else if (D.LoopCarried)
      appendf(Out,
              "remark: possible loop-carried %s dependence on array '%s' "
              "(unknown distance) prevents vectorization\n",
              Kind, D.Array.c_str());
  }
  for (const ScalarUpdate &U : LA.Scalars) {
    switch (U.K) {
    case ScalarUpdate::Induction:
      appendf(Out,
              "remark: scalar '%s' is a derived induction variable with "
              "step %lld%s\n",
              U.Name.c_str(), static_cast<long long>(U.Step),
              U.GuardedUpdate ? " (conditionally updated)" : "");
      break;
    case ScalarUpdate::Reduction:
      appendf(Out, "remark: scalar '%s' is a reduction\n", U.Name.c_str());
      break;
    case ScalarUpdate::Wraparound:
      appendf(Out, "remark: scalar '%s' carries the previous iteration's "
                   "value (wraparound)\n",
              U.Name.c_str());
      break;
    case ScalarUpdate::Other:
      appendf(Out, "remark: scalar '%s' is updated across iterations in a "
                   "way the analysis cannot classify\n",
              U.Name.c_str());
      break;
    }
  }
  if (LA.HasControlFlow)
    Out += "remark: loop body contains control flow; if-conversion or "
           "masking is required to vectorize\n";
  if (LA.HasGoto)
    Out += "remark: loop body contains goto statements\n";
  if (LA.HasIndirectAccess)
    Out += "remark: indirect (gather/scatter) memory access detected\n";
  if (LA.HasNonAffineAccess)
    Out += "remark: non-affine subscript defeats dependence analysis\n";
  if (LA.HasBreakOrReturn)
    Out += "remark: early exit (break/return) in loop body\n";
  if (Out.empty())
    Out = "remark: loop looks trivially vectorizable\n";
  return Out;
}
