//===- deps/Analysis.h - AST-level loop & dependence analysis --*- C++ -*-===//
///
/// \file
/// Loop analysis over the mini-C AST: canonical-form recognition (iterator,
/// bounds, stride), affine subscript extraction, data-dependence testing
/// (flow/anti/output with distances), and scalar-update classification
/// (inductions, reductions, wraparound variables).
///
/// Three clients consume this analysis, mirroring the paper:
///  * the multi-agent FSM renders it as the "Clang dependence feedback"
///    included in the vectorizer agent's prompt (§2.2.2),
///  * the compiler baseline models gate their vectorization legality on it
///    (conservative GCC/Clang vs ICC behavior, §4.3),
///  * the pipeline uses bounds for loop alignment (§3.1) and the
///    conservative no-loop-carried-dependence check for spatial case
///    splitting (§3.3).
///
//===----------------------------------------------------------------------===//

#ifndef LV_DEPS_ANALYSIS_H
#define LV_DEPS_ANALYSIS_H

#include "minic/AST.h"

#include <string>
#include <vector>

namespace lv {
namespace deps {

/// A subscript in the canonical affine form `Coef * i + Offset` over the
/// innermost loop iterator (or a secondary induction variable equated to
/// the iterator).
struct AffineSubscript {
  bool Valid = false;   ///< False: non-affine or not analyzable.
  int64_t Coef = 0;     ///< Iterator coefficient.
  int64_t Offset = 0;   ///< Constant offset.
  bool ViaInduction = false; ///< Subscript uses a derived induction var.
};

/// One array access in the loop body.
struct ArrayAccess {
  std::string Array;
  bool IsWrite = false;
  bool Conditional = false; ///< Under an if/ternary guard.
  AffineSubscript Sub;
  bool Indirect = false;    ///< Subscript itself loads an array (a[b[i]]).
};

/// Dependence between two accesses to the same array.
struct Dependence {
  enum Kind : uint8_t { Flow, Anti, Output } K = Flow;
  std::string Array;
  int64_t Distance = 0;    ///< In iterations; valid when DistanceKnown.
  bool DistanceKnown = false;
  bool LoopCarried = false;
  bool MayBeSpurious = false; ///< Anti-dep satisfiable by load reordering.
};

/// Classification of a scalar updated inside the loop.
struct ScalarUpdate {
  enum Kind : uint8_t {
    Induction,  ///< x += c every iteration.
    Reduction,  ///< x = x op expr (op in +, -, min, max, ...).
    Wraparound, ///< x = f(i) assigned after use (e.g. im1 = i).
    Other,      ///< Unclassified cross-iteration scalar.
  } K = Other;
  std::string Name;
  /// Induction: the per-iteration step. Wraparound: the resolved chain
  /// depth (entry value == i - Step), or 0 when unresolved.
  int64_t Step = 0;
  bool GuardedUpdate = false; ///< Updated under a condition.
};

/// The loop bound expressed as `Param + Offset` (for the §3.1 divisibility
/// assumption); Valid is false when the bound has another shape.
struct BoundSpec {
  bool Valid = false;
  std::string Param;  ///< Empty when the bound is the constant Offset.
  int64_t Offset = 0;
};

/// Canonical description of one loop in the nest.
struct LoopShape {
  const minic::Stmt *Loop = nullptr;
  bool Canonical = false;  ///< for (i = c; i < bound; i += step).
  std::string Iter;
  int64_t Start = 0;
  bool StartKnown = false;
  int64_t Step = 1;
  bool StepKnown = false;
  BoundSpec End;
  bool InclusiveEnd = false; ///< i <= bound.
};

/// Full analysis of the (innermost) loop of a function.
struct LoopAnalysis {
  bool HasLoop = false;
  std::vector<LoopShape> Nest;   ///< Outermost first.
  std::vector<ArrayAccess> Accesses;
  std::vector<Dependence> Deps;
  std::vector<ScalarUpdate> Scalars;
  bool HasControlFlow = false;   ///< if/ternary in the innermost body.
  bool HasGoto = false;
  bool HasIndirectAccess = false;
  bool HasNonAffineAccess = false;
  bool HasBreakOrReturn = false;
  /// Scalars declared inside the loop body: iteration-private temporaries,
  /// never loop-carried (excluded from ScalarUpdate classification).
  std::vector<std::string> BodyLocals;
  /// Variables appearing inside array subscripts (distinguishes a guarded
  /// induction used for packing from a guarded counter, §4.1.3).
  std::vector<std::string> SubscriptVars;

  bool usedInSubscript(const std::string &Name) const {
    for (const std::string &V : SubscriptVars)
      if (V == Name)
        return true;
    return false;
  }

  const LoopShape &inner() const { return Nest.back(); }
  bool isNested() const { return Nest.size() > 1; }

  /// Any loop-carried flow or output dependence (conservative).
  bool hasLoopCarriedDependence() const;

  /// True when every access is `a[i]`-shaped, stride 1, no cross-iteration
  /// scalars — the conservative precondition for spatial case splitting
  /// (paper §3.3).
  bool spatialSplittingEligible() const;

  /// Scalar reduction present (sum += ...).
  bool hasReduction() const;
};

/// Analyzes the first (outermost) loop of \p F and its nest.
LoopAnalysis analyzeFunction(const minic::Function &F);

/// Renders the analysis as compiler-style remarks — the "dependence
/// analysis information from the Clang compiler" that the user proxy agent
/// feeds to the vectorizer agent (paper Fig. 3).
std::string renderCompilerFeedback(const LoopAnalysis &LA);

} // namespace deps
} // namespace lv

#endif // LV_DEPS_ANALYSIS_H
