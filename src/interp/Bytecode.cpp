//===- interp/Bytecode.cpp - register bytecode VM -----------------------------===//
//
// Two halves: the flattener (structured VIR -> flat instruction stream with
// direct branch targets) and the dispatch loop. The contract both keep: one
// charged event per tree-walk charge point, in identical order, with
// identical cycle values, fuel checks, and trap messages — so the two
// engines are interchangeable down to the bit pattern of ExecResult.
//
//===----------------------------------------------------------------------===//

#include "interp/Bytecode.h"

#include "obs/Metrics.h"
#include "support/Cancel.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <mutex>
#include <unordered_map>

using namespace lv;
using namespace lv::interp;
using namespace lv::vir;

const char *lv::interp::bcName(BC Op) {
  switch (Op) {
  case BC::ConstI32: return "const";
  case BC::CopyS: return "copys";
  case BC::CopyV: return "copyv";
  case BC::Add: return "add";
  case BC::Sub: return "sub";
  case BC::Mul: return "mul";
  case BC::SDiv: return "sdiv";
  case BC::SRem: return "srem";
  case BC::Shl: return "shl";
  case BC::AShr: return "ashr";
  case BC::LShr: return "lshr";
  case BC::And: return "and";
  case BC::Or: return "or";
  case BC::Xor: return "xor";
  case BC::ICmpEQ: return "icmp.eq";
  case BC::ICmpNE: return "icmp.ne";
  case BC::ICmpSLT: return "icmp.slt";
  case BC::ICmpSLE: return "icmp.sle";
  case BC::ICmpSGT: return "icmp.sgt";
  case BC::ICmpSGE: return "icmp.sge";
  case BC::Select: return "select";
  case BC::SAbs: return "sabs";
  case BC::SMax: return "smax";
  case BC::SMin: return "smin";
  case BC::Load: return "load";
  case BC::Store: return "store";
  case BC::VBroadcast: return "vbroadcast";
  case BC::VBuild: return "vbuild";
  case BC::VAdd: return "vadd";
  case BC::VSub: return "vsub";
  case BC::VMul: return "vmul";
  case BC::VMinS: return "vmins";
  case BC::VMaxS: return "vmaxs";
  case BC::VAnd: return "vand";
  case BC::VOr: return "vor";
  case BC::VXor: return "vxor";
  case BC::VAndNot: return "vandnot";
  case BC::VAbs: return "vabs";
  case BC::VCmpGt: return "vcmpgt";
  case BC::VCmpEq: return "vcmpeq";
  case BC::VBlend: return "vblend";
  case BC::VSelect: return "vselect";
  case BC::VShlI: return "vshli";
  case BC::VShrLI: return "vshrli";
  case BC::VShrAI: return "vshrai";
  case BC::VShlV: return "vshlv";
  case BC::VShrLV: return "vshrlv";
  case BC::VShrAV: return "vshrav";
  case BC::VExtract: return "vextract";
  case BC::VInsert: return "vinsert";
  case BC::VPermute: return "vpermute";
  case BC::VHAdd: return "vhadd";
  case BC::VLoad: return "vload";
  case BC::VStore: return "vstore";
  case BC::VMaskLoad: return "vmaskload";
  case BC::VMaskStore: return "vmaskstore";
  case BC::Jmp: return "jmp";
  case BC::IfBr: return "ifbr";
  case BC::LoopBr: return "loopbr";
  case BC::RetVoid: return "ret";
  case BC::RetVal: return "retv";
  case BC::Halt: return "halt";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Flattener
//===----------------------------------------------------------------------===//

static BC bcOf(const Instr &I) {
  switch (I.Opcode) {
  case Op::ConstI32: return BC::ConstI32;
  case Op::Copy: return BC::CopyS; // caller resolves CopyV by Rd type
  case Op::Add: return BC::Add;
  case Op::Sub: return BC::Sub;
  case Op::Mul: return BC::Mul;
  case Op::SDiv: return BC::SDiv;
  case Op::SRem: return BC::SRem;
  case Op::Shl: return BC::Shl;
  case Op::AShr: return BC::AShr;
  case Op::LShr: return BC::LShr;
  case Op::And: return BC::And;
  case Op::Or: return BC::Or;
  case Op::Xor: return BC::Xor;
  case Op::ICmp:
    return static_cast<BC>(static_cast<uint8_t>(BC::ICmpEQ) +
                           static_cast<uint8_t>(I.P));
  case Op::Select: return BC::Select;
  case Op::SAbs: return BC::SAbs;
  case Op::SMax: return BC::SMax;
  case Op::SMin: return BC::SMin;
  case Op::Load: return BC::Load;
  case Op::Store: return BC::Store;
  case Op::VBroadcast: return BC::VBroadcast;
  case Op::VBuild: return BC::VBuild;
  case Op::VAdd: return BC::VAdd;
  case Op::VSub: return BC::VSub;
  case Op::VMul: return BC::VMul;
  case Op::VMinS: return BC::VMinS;
  case Op::VMaxS: return BC::VMaxS;
  case Op::VAnd: return BC::VAnd;
  case Op::VOr: return BC::VOr;
  case Op::VXor: return BC::VXor;
  case Op::VAndNot: return BC::VAndNot;
  case Op::VAbs: return BC::VAbs;
  case Op::VCmpGt: return BC::VCmpGt;
  case Op::VCmpEq: return BC::VCmpEq;
  case Op::VBlend: return BC::VBlend;
  case Op::VSelect: return BC::VSelect;
  case Op::VShlI: return BC::VShlI;
  case Op::VShrLI: return BC::VShrLI;
  case Op::VShrAI: return BC::VShrAI;
  case Op::VShlV: return BC::VShlV;
  case Op::VShrLV: return BC::VShrLV;
  case Op::VShrAV: return BC::VShrAV;
  case Op::VExtract: return BC::VExtract;
  case Op::VInsert: return BC::VInsert;
  case Op::VPermute: return BC::VPermute;
  case Op::VHAdd: return BC::VHAdd;
  case Op::VLoad: return BC::VLoad;
  case Op::VStore: return BC::VStore;
  case Op::VMaskLoad: return BC::VMaskLoad;
  case Op::VMaskStore: return BC::VMaskStore;
  }
  return BC::Halt;
}

namespace {

class Flattener {
public:
  explicit Flattener(const VFunction &F) : F(F) {}

  BytecodeProgram run() {
    P.NumRegs = F.numRegs();
    P.ReturnsValue = F.ReturnsValue;
    P.Params.reserve(F.Params.size());
    for (const VParam &Pm : F.Params)
      P.Params.push_back({Pm.IsPointer, Pm.Reg});
    P.Mems.reserve(F.Memories.size());
    for (const RegionInfo &M : F.Memories)
      P.Mems.push_back({M.Name, M.IsParam, M.LocalSize});
    region(F.Body);
    emit(ctrl(BC::Halt));
    return std::move(P);
  }

private:
  const VFunction &F;
  BytecodeProgram P;
  /// Patch lists of the enclosing loops. A loop frame covers only the
  /// loop *body* — break/continue inside init/cond/step regions belong to
  /// the enclosing loop, exactly as the tree-walk's signal propagation
  /// resolves them.
  struct LoopFrame {
    std::vector<size_t> Breaks, Continues;
  };
  std::vector<LoopFrame> Loops;

  size_t emit(BInst I) {
    P.Code.push_back(I);
    return P.Code.size() - 1;
  }
  size_t here() const { return P.Code.size(); }
  void patch(size_t At, size_t Target) {
    P.Code[At].Imm = static_cast<int64_t>(Target);
  }
  static BInst ctrl(BC Op, int A = -1, uint8_t Cls = 0) {
    BInst I;
    I.Op = Op;
    I.A = A;
    I.Cls = Cls;
    return I;
  }

  void inst(const Instr &In) {
    BInst I;
    I.Op = bcOf(In);
    if (In.Opcode == Op::Copy &&
        F.RegTypes[static_cast<size_t>(In.Rd)] == VType::V8I32)
      I.Op = BC::CopyV;
    I.Cls = static_cast<uint8_t>(opClassOf(In.Opcode));
    I.Rd = In.Rd;
    I.Imm = In.Imm;
    if (In.Opcode == Op::VBuild) {
      // 8 lane operands live in the Extra pool; A holds the offset.
      I.A = static_cast<int32_t>(P.Extra.size());
      for (int L = 0; L < Lanes; ++L)
        P.Extra.push_back(In.Args[static_cast<size_t>(L)]);
    } else {
      if (In.Args.size() > 0) I.A = In.Args[0];
      if (In.Args.size() > 1) I.B = In.Args[1];
      if (In.Args.size() > 2) I.C = In.Args[2];
    }
    emit(I);
  }

  void region(const Region &R) {
    for (const NodePtr &N : R.Nodes)
      node(*N);
  }

  void node(const Node &N) {
    switch (N.K) {
    case Node::Inst:
      inst(N.I);
      return;
    case Node::If: {
      size_t Br = emit(ctrl(BC::IfBr, N.CondReg,
                            static_cast<uint8_t>(OpClass::Branch)));
      region(N.BodyR);
      if (!N.ElseR.Nodes.empty()) {
        size_t J = emit(ctrl(BC::Jmp));
        patch(Br, here());
        region(N.ElseR);
        patch(J, here());
      } else {
        patch(Br, here());
      }
      return;
    }
    case Node::For: {
      region(N.Init);
      size_t CondLabel = here();
      region(N.CondCalc);
      size_t LB = emit(ctrl(BC::LoopBr, N.CondReg,
                            static_cast<uint8_t>(OpClass::LoopIter)));
      Loops.push_back({});
      region(N.BodyR);
      // Pop the frame before the step region: in the tree-walk a
      // Broke/Continued signal out of StepR propagates past this loop to
      // the enclosing one, so break/continue inside the step must bind
      // to the *enclosing* frame (as init/cond already do).
      LoopFrame Frame = std::move(Loops.back());
      Loops.pop_back();
      size_t StepLabel = here();
      for (size_t C : Frame.Continues)
        patch(C, StepLabel);
      region(N.StepR);
      BInst Back = ctrl(BC::Jmp);
      Back.Imm = static_cast<int64_t>(CondLabel);
      emit(Back);
      size_t End = here();
      patch(LB, End);
      for (size_t B : Frame.Breaks)
        patch(B, End);
      return;
    }
    case Node::Break:
      // Outside any loop the tree-walk's Broke signal unwinds to the
      // function top and execution simply ends.
      if (Loops.empty())
        emit(ctrl(BC::Halt));
      else
        Loops.back().Breaks.push_back(emit(ctrl(BC::Jmp)));
      return;
    case Node::Continue:
      if (Loops.empty())
        emit(ctrl(BC::Halt));
      else
        Loops.back().Continues.push_back(emit(ctrl(BC::Jmp)));
      return;
    case Node::Ret:
      emit(N.CondReg >= 0 ? ctrl(BC::RetVal, N.CondReg)
                          : ctrl(BC::RetVoid));
      return;
    }
  }
};

} // namespace

BytecodeProgram lv::interp::compileBytecode(const VFunction &F) {
  BytecodeProgram P = Flattener(F).run();
  P.Key = bytecodeKey(F);
  return P;
}

namespace {

/// Compact injective structural serializer — every semantically relevant
/// field, tagged and length-prefixed, appended as raw little-endian bytes.
/// Orders of magnitude cheaper than printFunction (no printf formatting),
/// and the cache probes it on every checksum run.
class KeyBuilder {
public:
  std::string Out;

  void bytes(const void *P, size_t N) {
    Out.append(static_cast<const char *>(P), N);
  }
  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void i32(int32_t V) { bytes(&V, sizeof(V)); }
  void u32(uint32_t V) { bytes(&V, sizeof(V)); }
  void i64(int64_t V) { bytes(&V, sizeof(V)); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    bytes(S.data(), S.size());
  }
  void region(const Region &R) {
    u32(static_cast<uint32_t>(R.Nodes.size()));
    for (const NodePtr &N : R.Nodes)
      node(*N);
  }
  void node(const Node &N) {
    u8(static_cast<uint8_t>(N.K));
    switch (N.K) {
    case Node::Inst:
      u8(static_cast<uint8_t>(N.I.Opcode));
      i32(N.I.Rd);
      u32(static_cast<uint32_t>(N.I.Args.size()));
      for (int A : N.I.Args)
        i32(A);
      i64(N.I.Imm);
      u8(static_cast<uint8_t>(N.I.P));
      u8(N.I.Nsw ? 1 : 0);
      return;
    case Node::If:
      i32(N.CondReg);
      region(N.BodyR);
      region(N.ElseR);
      return;
    case Node::For:
      i32(N.CondReg);
      region(N.Init);
      region(N.CondCalc);
      region(N.BodyR);
      region(N.StepR);
      return;
    case Node::Break:
    case Node::Continue:
      return;
    case Node::Ret:
      i32(N.CondReg);
      return;
    }
  }
};

} // namespace

std::string lv::interp::bytecodeKey(const VFunction &F) {
  KeyBuilder B;
  B.Out.reserve(256);
  B.bytes("BK1", 3);
  B.str(F.Name);
  B.u8(F.ReturnsValue ? 1 : 0);
  B.u32(static_cast<uint32_t>(F.Params.size()));
  for (const VParam &P : F.Params) {
    B.str(P.Name);
    B.u8(P.IsPointer ? 1 : 0);
    B.i32(P.Reg);
    B.i32(P.MemRegion);
  }
  B.u32(static_cast<uint32_t>(F.Memories.size()));
  for (const RegionInfo &M : F.Memories) {
    B.str(M.Name);
    B.u8(M.IsParam ? 1 : 0);
    B.i64(M.LocalSize);
  }
  B.u32(static_cast<uint32_t>(F.RegTypes.size()));
  for (VType T : F.RegTypes)
    B.u8(static_cast<uint8_t>(T));
  B.region(F.Body);
  return std::move(B.Out);
}

//===----------------------------------------------------------------------===//
// Program cache
//===----------------------------------------------------------------------===//

namespace {

struct ProgramCache {
  std::mutex M;
  std::unordered_map<uint64_t,
                     std::vector<std::shared_ptr<const BytecodeProgram>>>
      Map;
  uint64_t Hits = 0, Misses = 0;
  size_t Entries = 0;
};

ProgramCache &progCache() {
  static ProgramCache C;
  return C;
}

/// Process-wide backing-store hooks (see setBytecodeStoreHooks). Guarded
/// separately from the cache mutex so hook callbacks never run under it.
struct StoreHookSlot {
  std::mutex M;
  BytecodeStoreHooks H;
};

StoreHookSlot &storeHooks() {
  static StoreHookSlot S;
  return S;
}

} // namespace

void lv::interp::setBytecodeStoreHooks(BytecodeStoreHooks Hooks) {
  StoreHookSlot &S = storeHooks();
  std::lock_guard<std::mutex> L(S.M);
  S.H = std::move(Hooks);
}

/// FNV-1a over the whole buffer (keys are binary and contain NULs).
static uint64_t hashBytes(const std::string &S) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

std::shared_ptr<const BytecodeProgram>
lv::interp::compileBytecodeCached(const VFunction &F) {
  std::string Key = bytecodeKey(F);
  uint64_t H = hashBytes(Key);
  ProgramCache &C = progCache();
  {
    std::lock_guard<std::mutex> L(C.M);
    auto It = C.Map.find(H);
    if (It != C.Map.end())
      for (const auto &E : It->second)
        if (E->Key == Key) {
          ++C.Hits;
          obs::counter("interp.bc_cache_hits").inc();
          return E;
        }
    ++C.Misses;
  }
  // Consult the backing store (if installed) before paying a compile; an
  // adopted program joins the memory cache so later calls hit in memory.
  BytecodeStoreHooks Hooks;
  {
    StoreHookSlot &S = storeHooks();
    std::lock_guard<std::mutex> L(S.M);
    Hooks = S.H;
  }
  if (Hooks.Lookup) {
    std::shared_ptr<const BytecodeProgram> FromStore = Hooks.Lookup(Key);
    if (FromStore && FromStore->Key == Key) {
      std::lock_guard<std::mutex> L(C.M);
      auto &Bucket = C.Map[H];
      for (const auto &E : Bucket)
        if (E->Key == Key)
          return E; // a concurrent adopt/compile won
      Bucket.push_back(FromStore);
      ++C.Entries;
      return FromStore;
    }
  }
  obs::counter("interp.bc_compiles").inc();
  // Compile outside the lock; losing a store race just duplicates work.
  auto Prog = std::make_shared<BytecodeProgram>(Flattener(F).run());
  Prog->Key = std::move(Key);
  if (Hooks.Write)
    Hooks.Write(*Prog); // write-through (the store dedups by key)
  std::lock_guard<std::mutex> L(C.M);
  auto &Bucket = C.Map[H];
  for (const auto &E : Bucket)
    if (E->Key == Prog->Key)
      return E; // a concurrent compile won; reuse its program
  Bucket.push_back(Prog);
  ++C.Entries;
  return Prog;
}

BytecodeCacheStats lv::interp::bytecodeCacheStats() {
  ProgramCache &C = progCache();
  std::lock_guard<std::mutex> L(C.M);
  BytecodeCacheStats S;
  S.Hits = C.Hits;
  S.Misses = C.Misses;
  S.Entries = C.Entries;
  return S;
}

//===----------------------------------------------------------------------===//
// Dispatch loop
//===----------------------------------------------------------------------===//

namespace {

using VecVal = std::array<int32_t, Lanes>;

int32_t wrapAdd(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) +
                              static_cast<uint32_t>(B));
}
int32_t wrapSub(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) -
                              static_cast<uint32_t>(B));
}
int32_t wrapMul(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) *
                              static_cast<uint32_t>(B));
}
int32_t vshl(int32_t X, int64_t C) {
  if (C < 0 || C >= 32)
    return 0;
  return static_cast<int32_t>(static_cast<uint32_t>(X) << C);
}
int32_t vshrl(int32_t X, int64_t C) {
  if (C < 0 || C >= 32)
    return 0;
  return static_cast<int32_t>(static_cast<uint32_t>(X) >> C);
}
int32_t vshra(int32_t X, int64_t C) {
  if (C < 0 || C >= 32)
    C = 31;
  return X >> C;
}

/// Mirrors CostModel::costOf for every bytecode opcode (control ops get
/// the If/For charge values; uncharged ops get 0, which is never read).
void buildCostTab(const CostModel &C, double *T) {
  for (size_t I = 0; I < kNumBC; ++I)
    T[I] = C.ScalarAlu;
  auto set = [&](BC Op, double V) { T[static_cast<size_t>(Op)] = V; };
  set(BC::ConstI32, 0.0);
  set(BC::CopyS, 0.0);
  set(BC::CopyV, 0.0);
  set(BC::Mul, C.ScalarMul);
  set(BC::SDiv, C.ScalarDiv);
  set(BC::SRem, C.ScalarDiv);
  set(BC::Load, C.ScalarLoad);
  set(BC::Store, C.ScalarStore);
  set(BC::VMul, C.VectorMul);
  set(BC::VLoad, C.VectorLoad);
  set(BC::VStore, C.VectorStore);
  set(BC::VBlend, C.VectorBlend);
  set(BC::VSelect, C.VectorBlend);
  set(BC::VPermute, C.VectorPermute);
  set(BC::VHAdd, C.VectorPermute);
  set(BC::VMaskLoad, C.VectorMaskMem);
  set(BC::VMaskStore, C.VectorMaskMem);
  for (BC Op : {BC::VBroadcast, BC::VBuild, BC::VAdd, BC::VSub, BC::VMinS,
                BC::VMaxS, BC::VAnd, BC::VOr, BC::VXor, BC::VAndNot,
                BC::VAbs, BC::VCmpGt, BC::VCmpEq, BC::VShlI, BC::VShrLI,
                BC::VShrAI, BC::VShlV, BC::VShrLV, BC::VShrAV, BC::VExtract,
                BC::VInsert})
    set(Op, C.VectorAlu);
  set(BC::Jmp, 0.0);
  set(BC::IfBr, C.Branch);
  set(BC::LoopBr, C.LoopIter);
  set(BC::RetVoid, 0.0);
  set(BC::RetVal, 0.0);
  set(BC::Halt, 0.0);
}

} // namespace

ExecResult lv::interp::execBytecode(const BytecodeProgram &P,
                                    const std::vector<int32_t> &ScalarArgs,
                                    MemoryImage &Mem, const ExecConfig &Cfg,
                                    BytecodeScratch *Scratch) {
  ExecResult Res;

  // Hot counters live in locals so the dispatch loop keeps them in
  // registers; every exit path flushes them into the result.
  uint64_t Steps = 0;
  double Cycles = 0.0;
  uint64_t *Hist = Res.Work.Hist;
  const uint64_t MaxSteps = Cfg.MaxSteps;
  // Captured once: the task's cancel token (null outside task scope). The
  // periodic mask keeps the hot path at one branch per charge.
  const support::CancelToken *CT = support::currentCancelToken();
  auto flush = [&]() {
    Res.Steps = Steps;
    // Every charged event increments Steps except loop back-edges, which
    // only enter the histogram — so Instrs is derivable, not tracked.
    Res.Work.Instrs =
        Steps + Hist[static_cast<size_t>(OpClass::LoopIter)];
    Res.Cycles = Cycles;
  };
  auto trapRes = [&](TrapKind K, std::string Msg) -> ExecResult & {
    flush();
    Res.St = ExecResult::Trap;
    Res.Cause = K;
    Res.TrapMsg = std::move(Msg);
    return Res;
  };

  // Prologue: bind scalar parameters, then wire up memory regions — the
  // same order (and the same trap precedence) as the tree-walk. The
  // register files come from the caller's scratch when provided (re-zeroed
  // every run) to amortize allocation across a checksum replay.
  BytecodeScratch Local;
  BytecodeScratch &Sc = Scratch ? *Scratch : Local;
  Sc.S.assign(static_cast<size_t>(P.NumRegs), 0);
  Sc.V.assign(static_cast<size_t>(P.NumRegs), VecVal{});
  int32_t *S = Sc.S.data();
  VecVal *V = Sc.V.data();
  size_t ArgIdx = 0;
  for (const BytecodeProgram::ParamBind &Pm : P.Params) {
    if (Pm.IsPointer)
      continue;
    if (ArgIdx >= ScalarArgs.size())
      return trapRes(TrapKind::Harness, "missing scalar argument");
    S[static_cast<size_t>(Pm.Reg)] = ScalarArgs[ArgIdx++];
  }
  for (size_t I = 0; I < P.Mems.size(); ++I) {
    const BytecodeProgram::MemBind &M = P.Mems[I];
    if (M.IsParam) {
      if (I >= Mem.Regions.size())
        return trapRes(TrapKind::Harness,
                       format("missing memory for region @%s",
                              M.Name.c_str()));
      continue;
    }
    Mem.resize(I, static_cast<size_t>(M.LocalSize));
  }

  const CostModel *CM = Cfg.Costs;
  double CostTab[kNumBC];
  if (CM)
    buildCostTab(*CM, CostTab);

  // No opcode resizes Mem.Regions during dispatch, so the base pointer is
  // loop-invariant.
  std::vector<int32_t> *RegBase = Mem.Regions.data();
  const size_t NumRegions = Mem.Regions.size();
  auto regionAt = [&](int64_t Idx) -> std::vector<int32_t> * {
    if (Idx < 0 || Idx >= static_cast<int64_t>(NumRegions))
      return nullptr;
    return RegBase + Idx;
  };

  const BInst *Code = P.Code.data();
  const int32_t *Extra = P.Extra.data();
  size_t PC = 0;
  const BInst *Ip;
  // Threaded dispatch: one indirect jump per instruction, no loop branch,
  // no switch-range check. The table is in BC enum order.
  static const void *JumpTab[] = {
      &&L_ConstI32, &&L_CopyS, &&L_CopyV, &&L_Add, &&L_Sub,
      &&L_Mul, &&L_SDiv, &&L_SRem, &&L_Shl, &&L_AShr,
      &&L_LShr, &&L_And, &&L_Or, &&L_Xor, &&L_ICmpEQ,
      &&L_ICmpNE, &&L_ICmpSLT, &&L_ICmpSLE, &&L_ICmpSGT, &&L_ICmpSGE,
      &&L_Select, &&L_SAbs, &&L_SMax, &&L_SMin, &&L_Load,
      &&L_Store, &&L_VBroadcast, &&L_VBuild, &&L_VAdd, &&L_VSub,
      &&L_VMul, &&L_VMinS, &&L_VMaxS, &&L_VAnd, &&L_VOr,
      &&L_VXor, &&L_VAndNot, &&L_VAbs, &&L_VCmpGt, &&L_VCmpEq,
      &&L_VBlend, &&L_VSelect, &&L_VShlI, &&L_VShrLI, &&L_VShrAI,
      &&L_VShlV, &&L_VShrLV, &&L_VShrAV, &&L_VExtract, &&L_VInsert,
      &&L_VPermute, &&L_VHAdd, &&L_VLoad, &&L_VStore, &&L_VMaskLoad,
      &&L_VMaskStore, &&L_Jmp, &&L_IfBr, &&L_LoopBr, &&L_RetVoid,
      &&L_RetVal, &&L_Halt};

#define LV_DISPATCH()                                                        \
  do {                                                                       \
    Ip = Code + PC++;                                                        \
    goto *JumpTab[static_cast<size_t>(Ip->Op)];                              \
  } while (0)

#define LV_CHARGE()                                                          \
  do {                                                                       \
    ++Hist[Ip->Cls];                                                         \
    if (CM)                                                                  \
      Cycles += CostTab[static_cast<size_t>(Ip->Op)];                        \
    if (++Steps > MaxSteps) {                                                \
      flush();                                                               \
      Res.St = ExecResult::OutOfFuel;                                        \
      return Res;                                                            \
    }                                                                        \
    if ((Steps & 0xFFFFFULL) == 0 && CT && CT->expired())                    \
      throw support::CancelledError("interp.bytecode");                      \
  } while (0)

  LV_DISPATCH();

  L_ConstI32:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] = static_cast<int32_t>(Ip->Imm);
      LV_DISPATCH();
  L_CopyS:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] = S[static_cast<size_t>(Ip->A)];
      LV_DISPATCH();
  L_CopyV:
      LV_CHARGE();
      V[static_cast<size_t>(Ip->Rd)] = V[static_cast<size_t>(Ip->A)];
      LV_DISPATCH();
  L_Add:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          wrapAdd(S[static_cast<size_t>(Ip->A)], S[static_cast<size_t>(Ip->B)]);
      LV_DISPATCH();
  L_Sub:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          wrapSub(S[static_cast<size_t>(Ip->A)], S[static_cast<size_t>(Ip->B)]);
      LV_DISPATCH();
  L_Mul:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          wrapMul(S[static_cast<size_t>(Ip->A)], S[static_cast<size_t>(Ip->B)]);
      LV_DISPATCH();
  L_SDiv: {
      LV_CHARGE();
      int32_t D = S[static_cast<size_t>(Ip->B)];
      int32_t N = S[static_cast<size_t>(Ip->A)];
      if (D == 0)
        return trapRes(TrapKind::DivByZero, "integer division by zero");
      if (N == INT32_MIN && D == -1)
        return trapRes(TrapKind::Overflow, "signed division overflow");
      if (CM && D > 0 && (D & (D - 1)) == 0)
        Cycles -= CM->ScalarDiv - 2 * CM->ScalarAlu;
      S[static_cast<size_t>(Ip->Rd)] = N / D;
      LV_DISPATCH();
    }
  L_SRem: {
      LV_CHARGE();
      int32_t D = S[static_cast<size_t>(Ip->B)];
      int32_t N = S[static_cast<size_t>(Ip->A)];
      if (D == 0)
        return trapRes(TrapKind::DivByZero, "integer remainder by zero");
      if (N == INT32_MIN && D == -1)
        return trapRes(TrapKind::Overflow, "signed remainder overflow");
      if (CM && D > 0 && (D & (D - 1)) == 0)
        Cycles -= CM->ScalarDiv - 2 * CM->ScalarAlu;
      S[static_cast<size_t>(Ip->Rd)] = N % D;
      LV_DISPATCH();
    }
  L_Shl:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] = static_cast<int32_t>(
          static_cast<uint32_t>(S[static_cast<size_t>(Ip->A)])
          << (S[static_cast<size_t>(Ip->B)] & 31));
      LV_DISPATCH();
  L_AShr:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          S[static_cast<size_t>(Ip->A)] >> (S[static_cast<size_t>(Ip->B)] & 31);
      LV_DISPATCH();
  L_LShr:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] = static_cast<int32_t>(
          static_cast<uint32_t>(S[static_cast<size_t>(Ip->A)]) >>
          (S[static_cast<size_t>(Ip->B)] & 31));
      LV_DISPATCH();
  L_And:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          S[static_cast<size_t>(Ip->A)] & S[static_cast<size_t>(Ip->B)];
      LV_DISPATCH();
  L_Or:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          S[static_cast<size_t>(Ip->A)] | S[static_cast<size_t>(Ip->B)];
      LV_DISPATCH();
  L_Xor:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          S[static_cast<size_t>(Ip->A)] ^ S[static_cast<size_t>(Ip->B)];
      LV_DISPATCH();
  L_ICmpEQ:
  L_ICmpNE:
  L_ICmpSLT:
  L_ICmpSLE:
  L_ICmpSGT:
  L_ICmpSGE: {
      LV_CHARGE();
      int32_t L = S[static_cast<size_t>(Ip->A)];
      int32_t R = S[static_cast<size_t>(Ip->B)];
      bool C = false;
      switch (Ip->Op) {
      case BC::ICmpEQ: C = L == R; break;
      case BC::ICmpNE: C = L != R; break;
      case BC::ICmpSLT: C = L < R; break;
      case BC::ICmpSLE: C = L <= R; break;
      case BC::ICmpSGT: C = L > R; break;
      default: C = L >= R; break;
      }
      S[static_cast<size_t>(Ip->Rd)] = C ? 1 : 0;
      LV_DISPATCH();
    }
  L_Select:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] = S[static_cast<size_t>(Ip->A)] != 0
                                         ? S[static_cast<size_t>(Ip->B)]
                                         : S[static_cast<size_t>(Ip->C)];
      LV_DISPATCH();
  L_SAbs: {
      LV_CHARGE();
      int32_t X = S[static_cast<size_t>(Ip->A)];
      S[static_cast<size_t>(Ip->Rd)] = X < 0 ? wrapSub(0, X) : X;
      LV_DISPATCH();
    }
  L_SMax: {
      LV_CHARGE();
      int32_t X = S[static_cast<size_t>(Ip->A)];
      int32_t Y = S[static_cast<size_t>(Ip->B)];
      S[static_cast<size_t>(Ip->Rd)] = X > Y ? X : Y;
      LV_DISPATCH();
    }
  L_SMin: {
      LV_CHARGE();
      int32_t X = S[static_cast<size_t>(Ip->A)];
      int32_t Y = S[static_cast<size_t>(Ip->B)];
      S[static_cast<size_t>(Ip->Rd)] = X < Y ? X : Y;
      LV_DISPATCH();
    }
  L_Load: {
      LV_CHARGE();
      std::vector<int32_t> *R = regionAt(Ip->Imm);
      int64_t Off = S[static_cast<size_t>(Ip->A)];
      if (!R || Off < 0 || Off >= static_cast<int64_t>(R->size()))
        return trapRes(
            TrapKind::OutOfBounds,
            format("out-of-bounds load @%s[%lld]",
                   P.Mems[static_cast<size_t>(Ip->Imm)].Name.c_str(),
                   static_cast<long long>(Off)));
      S[static_cast<size_t>(Ip->Rd)] = (*R)[static_cast<size_t>(Off)];
      LV_DISPATCH();
    }
  L_Store: {
      LV_CHARGE();
      std::vector<int32_t> *R = regionAt(Ip->Imm);
      int64_t Off = S[static_cast<size_t>(Ip->A)];
      if (!R || Off < 0 || Off >= static_cast<int64_t>(R->size()))
        return trapRes(
            TrapKind::OutOfBounds,
            format("out-of-bounds store @%s[%lld]",
                   P.Mems[static_cast<size_t>(Ip->Imm)].Name.c_str(),
                   static_cast<long long>(Off)));
      (*R)[static_cast<size_t>(Off)] = S[static_cast<size_t>(Ip->B)];
      LV_DISPATCH();
    }
  L_VBroadcast: {
      LV_CHARGE();
      VecVal R;
      R.fill(S[static_cast<size_t>(Ip->A)]);
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VBuild: {
      LV_CHARGE();
      VecVal R;
      for (int L = 0; L < Lanes; ++L)
        R[static_cast<size_t>(L)] =
            S[static_cast<size_t>(Extra[Ip->A + L])];
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VAdd:
  L_VSub:
  L_VMul:
  L_VMinS:
  L_VMaxS:
  L_VAnd:
  L_VOr:
  L_VXor:
  L_VAndNot:
  L_VCmpGt:
  L_VCmpEq: {
      LV_CHARGE();
      const VecVal &X = V[static_cast<size_t>(Ip->A)];
      const VecVal &Y = V[static_cast<size_t>(Ip->B)];
      VecVal R;
      for (size_t L = 0; L < Lanes; ++L) {
        switch (Ip->Op) {
        case BC::VAdd: R[L] = wrapAdd(X[L], Y[L]); break;
        case BC::VSub: R[L] = wrapSub(X[L], Y[L]); break;
        case BC::VMul: R[L] = wrapMul(X[L], Y[L]); break;
        case BC::VMinS: R[L] = X[L] < Y[L] ? X[L] : Y[L]; break;
        case BC::VMaxS: R[L] = X[L] > Y[L] ? X[L] : Y[L]; break;
        case BC::VAnd: R[L] = X[L] & Y[L]; break;
        case BC::VOr: R[L] = X[L] | Y[L]; break;
        case BC::VXor: R[L] = X[L] ^ Y[L]; break;
        case BC::VAndNot: R[L] = ~X[L] & Y[L]; break;
        case BC::VCmpGt: R[L] = X[L] > Y[L] ? -1 : 0; break;
        default: R[L] = X[L] == Y[L] ? -1 : 0; break;
        }
      }
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VAbs: {
      LV_CHARGE();
      const VecVal &X = V[static_cast<size_t>(Ip->A)];
      VecVal R;
      for (size_t L = 0; L < Lanes; ++L)
        R[L] = X[L] < 0 ? wrapSub(0, X[L]) : X[L];
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VBlend: {
      LV_CHARGE();
      const VecVal &X = V[static_cast<size_t>(Ip->A)];
      const VecVal &Y = V[static_cast<size_t>(Ip->B)];
      const VecVal &M = V[static_cast<size_t>(Ip->C)];
      VecVal R;
      for (size_t L = 0; L < Lanes; ++L) {
        uint32_t XB = static_cast<uint32_t>(X[L]);
        uint32_t YB = static_cast<uint32_t>(Y[L]);
        uint32_t MB = static_cast<uint32_t>(M[L]);
        uint32_t Out = 0;
        for (int B = 0; B < 4; ++B) {
          uint32_t Mask = 0xffu << (B * 8);
          bool Take = (MB >> (B * 8 + 7)) & 1u;
          Out |= (Take ? YB : XB) & Mask;
        }
        R[L] = static_cast<int32_t>(Out);
      }
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VSelect:
      LV_CHARGE();
      V[static_cast<size_t>(Ip->Rd)] = S[static_cast<size_t>(Ip->A)] != 0
                                         ? V[static_cast<size_t>(Ip->B)]
                                         : V[static_cast<size_t>(Ip->C)];
      LV_DISPATCH();
  L_VShlI:
  L_VShrLI:
  L_VShrAI: {
      LV_CHARGE();
      const VecVal &X = V[static_cast<size_t>(Ip->A)];
      int64_t C = S[static_cast<size_t>(Ip->B)];
      VecVal R;
      for (size_t L = 0; L < Lanes; ++L) {
        if (Ip->Op == BC::VShlI)
          R[L] = vshl(X[L], C);
        else if (Ip->Op == BC::VShrLI)
          R[L] = vshrl(X[L], C);
        else
          R[L] = vshra(X[L], C);
      }
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VShlV:
  L_VShrLV:
  L_VShrAV: {
      LV_CHARGE();
      const VecVal &X = V[static_cast<size_t>(Ip->A)];
      const VecVal &C = V[static_cast<size_t>(Ip->B)];
      VecVal R;
      for (size_t L = 0; L < Lanes; ++L) {
        if (Ip->Op == BC::VShlV)
          R[L] = vshl(X[L], C[L]);
        else if (Ip->Op == BC::VShrLV)
          R[L] = vshrl(X[L], C[L]);
        else
          R[L] = vshra(X[L], C[L]);
      }
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VExtract:
      LV_CHARGE();
      S[static_cast<size_t>(Ip->Rd)] =
          V[static_cast<size_t>(Ip->A)][static_cast<size_t>(Ip->Imm)];
      LV_DISPATCH();
  L_VInsert: {
      LV_CHARGE();
      VecVal R = V[static_cast<size_t>(Ip->A)];
      R[static_cast<size_t>(Ip->Imm)] = S[static_cast<size_t>(Ip->B)];
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VPermute: {
      LV_CHARGE();
      const VecVal &X = V[static_cast<size_t>(Ip->A)];
      const VecVal &Idx = V[static_cast<size_t>(Ip->B)];
      VecVal R;
      for (size_t L = 0; L < Lanes; ++L)
        R[L] = X[static_cast<size_t>(Idx[L] & 7)];
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VHAdd: {
      LV_CHARGE();
      const VecVal &X = V[static_cast<size_t>(Ip->A)];
      const VecVal &Y = V[static_cast<size_t>(Ip->B)];
      VecVal R;
      R[0] = wrapAdd(X[0], X[1]);
      R[1] = wrapAdd(X[2], X[3]);
      R[2] = wrapAdd(Y[0], Y[1]);
      R[3] = wrapAdd(Y[2], Y[3]);
      R[4] = wrapAdd(X[4], X[5]);
      R[5] = wrapAdd(X[6], X[7]);
      R[6] = wrapAdd(Y[4], Y[5]);
      R[7] = wrapAdd(Y[6], Y[7]);
      V[static_cast<size_t>(Ip->Rd)] = R;
      LV_DISPATCH();
    }
  L_VLoad: {
      LV_CHARGE();
      std::vector<int32_t> *R = regionAt(Ip->Imm);
      int64_t Off = S[static_cast<size_t>(Ip->A)];
      if (!R || Off < 0 || Off + Lanes > static_cast<int64_t>(R->size()))
        return trapRes(
            TrapKind::OutOfBounds,
            format("out-of-bounds vector load @%s[%lld..%lld]",
                   P.Mems[static_cast<size_t>(Ip->Imm)].Name.c_str(),
                   static_cast<long long>(Off),
                   static_cast<long long>(Off + Lanes - 1)));
      VecVal Val;
      for (size_t L = 0; L < Lanes; ++L)
        Val[L] = (*R)[static_cast<size_t>(Off) + L];
      V[static_cast<size_t>(Ip->Rd)] = Val;
      LV_DISPATCH();
    }
  L_VStore: {
      LV_CHARGE();
      std::vector<int32_t> *R = regionAt(Ip->Imm);
      int64_t Off = S[static_cast<size_t>(Ip->A)];
      if (!R || Off < 0 || Off + Lanes > static_cast<int64_t>(R->size()))
        return trapRes(
            TrapKind::OutOfBounds,
            format("out-of-bounds vector store @%s[%lld..%lld]",
                   P.Mems[static_cast<size_t>(Ip->Imm)].Name.c_str(),
                   static_cast<long long>(Off),
                   static_cast<long long>(Off + Lanes - 1)));
      const VecVal &Val = V[static_cast<size_t>(Ip->B)];
      for (size_t L = 0; L < Lanes; ++L)
        (*R)[static_cast<size_t>(Off) + L] = Val[L];
      LV_DISPATCH();
    }
  L_VMaskLoad: {
      LV_CHARGE();
      std::vector<int32_t> *R = regionAt(Ip->Imm);
      int64_t Off = S[static_cast<size_t>(Ip->A)];
      const VecVal &M = V[static_cast<size_t>(Ip->B)];
      VecVal Val{};
      for (size_t L = 0; L < Lanes; ++L) {
        if (!(static_cast<uint32_t>(M[L]) >> 31))
          continue; // inactive lanes do not touch memory
        int64_t At = Off + static_cast<int64_t>(L);
        if (!R || At < 0 || At >= static_cast<int64_t>(R->size()))
          return trapRes(TrapKind::OutOfBounds,
                         "out-of-bounds masked load");
        Val[L] = (*R)[static_cast<size_t>(At)];
      }
      V[static_cast<size_t>(Ip->Rd)] = Val;
      LV_DISPATCH();
    }
  L_VMaskStore: {
      LV_CHARGE();
      std::vector<int32_t> *R = regionAt(Ip->Imm);
      int64_t Off = S[static_cast<size_t>(Ip->A)];
      const VecVal &M = V[static_cast<size_t>(Ip->B)];
      const VecVal &Val = V[static_cast<size_t>(Ip->C)];
      for (size_t L = 0; L < Lanes; ++L) {
        if (!(static_cast<uint32_t>(M[L]) >> 31))
          continue;
        int64_t At = Off + static_cast<int64_t>(L);
        if (!R || At < 0 || At >= static_cast<int64_t>(R->size()))
          return trapRes(TrapKind::OutOfBounds,
                         "out-of-bounds masked store");
        (*R)[static_cast<size_t>(At)] = Val[L];
      }
      LV_DISPATCH();
    }
  L_Jmp:
      PC = static_cast<size_t>(Ip->Imm);
      LV_DISPATCH();
  L_IfBr:
      // The `if` dispatch: Branch cost + step + fuel check, as the
      // tree-walk's Node::If does.
      if (CM)
        Cycles += CM->Branch;
      ++Hist[Ip->Cls];
      if (++Steps > MaxSteps) {
        flush();
        Res.St = ExecResult::OutOfFuel;
        return Res;
      }
      if (S[static_cast<size_t>(Ip->A)] == 0)
        PC = static_cast<size_t>(Ip->Imm);
      LV_DISPATCH();
  L_LoopBr:
      // Loop back-edge: LoopIter cost only — no step, no fuel check —
      // exactly the tree-walk's per-iteration charge.
      if (CM)
        Cycles += CM->LoopIter;
      ++Hist[Ip->Cls];
      if (S[static_cast<size_t>(Ip->A)] == 0)
        PC = static_cast<size_t>(Ip->Imm);
      LV_DISPATCH();
  L_RetVoid:
      flush();
      Res.Returned = true;
      return Res;
  L_RetVal:
      flush();
      Res.Returned = true;
      Res.RetVal = S[static_cast<size_t>(Ip->A)];
      return Res;
  L_Halt:
      flush();
      return Res;
#undef LV_DISPATCH
#undef LV_CHARGE
}
