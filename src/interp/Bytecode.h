//===- interp/Bytecode.h - register bytecode VM ----------------*- C++ -*-===//
///
/// \file
/// Compile-once execution backend for VIR: a `VFunction` is lowered once
/// into a flat register-bytecode program — dense opcodes, pre-resolved
/// operand slots (predicates folded into opcode variants, `Copy` split by
/// register type), direct branch targets — and executed by a tight
/// dispatch loop with none of the tree-walk's per-node pointer chasing or
/// per-run re-decoding. Checksum testing runs the same function
/// `RunsPerN x |NValues| x candidates` times, so one compile amortizes
/// across the whole Table-2 testing stage; compiled programs are cached
/// globally by content hash (exactness-checked, like svc::VerdictCache).
///
/// Semantics are *bit-identical* to interp::execute by construction: the
/// flattener emits exactly one charged event per tree-walk charge point
/// (instruction / `if` dispatch / loop back-edge), in the same order, with
/// the same cycle values, fuel accounting, trap kinds, and trap messages.
/// bench_table2_checksum gates this parity over the full TSVC corpus.
///
/// See src/interp/README.md for the instruction format and the batched
/// checksum harness built on top of this VM.
///
//===----------------------------------------------------------------------===//

#ifndef LV_INTERP_BYTECODE_H
#define LV_INTERP_BYTECODE_H

#include "interp/Interp.h"
#include "vir/IR.h"

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lv {
namespace interp {

/// Dense bytecode opcodes: every vir::Op (with predicates and Copy types
/// pre-resolved) plus the control ops the flattener introduces.
enum class BC : uint8_t {
  // Scalar.
  ConstI32, CopyS, CopyV,
  Add, Sub, Mul, SDiv, SRem, Shl, AShr, LShr, And, Or, Xor,
  ICmpEQ, ICmpNE, ICmpSLT, ICmpSLE, ICmpSGT, ICmpSGE, ///< Pred folded in.
  Select, SAbs, SMax, SMin, Load, Store,
  // Vector.
  VBroadcast, VBuild,
  VAdd, VSub, VMul, VMinS, VMaxS, VAnd, VOr, VXor, VAndNot, VAbs,
  VCmpGt, VCmpEq, VBlend, VSelect,
  VShlI, VShrLI, VShrAI, VShlV, VShrLV, VShrAV,
  VExtract, VInsert, VPermute, VHAdd,
  VLoad, VStore, VMaskLoad, VMaskStore,
  // Control (the flattened structure; charge semantics mirror the tree).
  Jmp,     ///< pc = Imm. Charges nothing (region sequencing/break/continue).
  IfBr,    ///< `if` dispatch: Branch cost + step + fuel; pc = Imm if rA==0.
  LoopBr,  ///< Loop back-edge: LoopIter cost only; pc = Imm if rA==0.
  RetVoid, ///< Return, no value. Charges nothing.
  RetVal,  ///< Return rA. Charges nothing.
  Halt,    ///< Fell off the function body.
};
inline constexpr size_t kNumBC = static_cast<size_t>(BC::Halt) + 1;

const char *bcName(BC Op);

/// One flat instruction. Operand registers pre-resolved into fixed slots;
/// `Imm` holds the constant / region id / lane index / branch target.
/// VBuild stores its 8 lane registers in the program's Extra pool and the
/// pool offset in A.
struct BInst {
  BC Op = BC::Halt;
  uint8_t Cls = 0; ///< OpClass index for the work histogram.
  int32_t Rd = -1;
  int32_t A = -1, B = -1, C = -1;
  int64_t Imm = 0;
};

/// A compiled function: the instruction stream plus the parameter/region
/// binding metadata execution needs (copied out of the VFunction, so a
/// cached program outlives the IR it was compiled from).
struct BytecodeProgram {
  std::vector<BInst> Code;
  std::vector<int32_t> Extra; ///< Operand pool (VBuild lanes).
  int NumRegs = 0;
  bool ReturnsValue = false;

  struct ParamBind {
    bool IsPointer = false;
    int Reg = -1;
  };
  std::vector<ParamBind> Params; ///< Declaration order, as in VFunction.

  struct MemBind {
    std::string Name; ///< For trap messages.
    bool IsParam = true;
    int64_t LocalSize = 0;
  };
  std::vector<MemBind> Mems;

  std::string Key; ///< Content key (cache exactness check).
};

/// Canonical content key of \p F: a compact injective binary
/// serialization of every semantically relevant field (params, memories,
/// register types, body). Two functions with equal keys compile to
/// identical programs. The string is binary — compare whole buffers, not
/// c_str().
std::string bytecodeKey(const vir::VFunction &F);

/// Lowers \p F to bytecode (always compiles; see compileBytecodeCached).
BytecodeProgram compileBytecode(const vir::VFunction &F);

/// Content-hash-cached compilation: repeated candidates (FSM repair
/// attempts, sampled corpora, RunsPerN re-execution) compile once
/// process-wide. Thread-safe; a hash collision degrades to a fresh
/// compile, never a wrong program.
std::shared_ptr<const BytecodeProgram>
compileBytecodeCached(const vir::VFunction &F);

/// Program-cache counters (for tests and bench JSON).
struct BytecodeCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  size_t Entries = 0;
};
BytecodeCacheStats bytecodeCacheStats();

/// Backing-store hooks for compileBytecodeCached: on an in-memory miss the
/// Lookup hook is consulted (a hit is adopted into the memory cache and
/// skips compilation); every fresh compile is offered to the Write hook.
/// Installed process-wide by store::ResultStore::enableBytecodePersistence;
/// both callbacks must be thread-safe. Default-constructed (null) hooks
/// restore pure in-memory behaviour.
struct BytecodeStoreHooks {
  std::function<std::shared_ptr<const BytecodeProgram>(const std::string &)>
      Lookup;
  std::function<void(const BytecodeProgram &)> Write;
};
void setBytecodeStoreHooks(BytecodeStoreHooks Hooks);

/// Reusable register-file storage. Optional: passing one to execBytecode
/// across runs (the checksum harness replays the same candidate
/// RunsPerN x bounds times) skips the per-run allocation; contents are
/// reinitialized to zero on every run, so results never depend on reuse.
struct BytecodeScratch {
  std::vector<int32_t> S;
  std::vector<std::array<int32_t, vir::Lanes>> V;
};

/// Runs \p P with the same contract as interp::execute — identical
/// results, counters, cycles, and trap behavior.
ExecResult execBytecode(const BytecodeProgram &P,
                        const std::vector<int32_t> &ScalarArgs,
                        MemoryImage &Mem,
                        const ExecConfig &Cfg = ExecConfig(),
                        BytecodeScratch *Scratch = nullptr);

} // namespace interp
} // namespace lv

#endif // LV_INTERP_BYTECODE_H
