//===- interp/Checksum.cpp - checksum-based testing --------------------------===//
//
// One core drives both entry points: runChecksumBatch iterates (N, run)
// input sets in the outer loop and candidates in the inner loop, computing
// each scalar reference at most once (into a ScalarRefMemo — caller-owned
// or call-local) and restoring each candidate's memory image from the
// input snapshot instead of reallocating it. runChecksumTest is the
// single-candidate wrapper. Because every random draw is forked per
// (N, run) from a base RNG whose state never advances, the reference for a
// given input set is byte-identical no matter which candidate (or call)
// triggered its computation — which is what makes memoization and batching
// verdict-preserving.
//
//===----------------------------------------------------------------------===//

#include "interp/Checksum.h"

#include "interp/Bytecode.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Cancel.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstring>

using namespace lv;
using namespace lv::interp;
using namespace lv::vir;

uint64_t ChecksumConfig::configHash() const {
  uint64_t H = 0xC5C5ULL;
  H = hashField(H, 1, Seed);
  H = hashField(H, 2, static_cast<uint64_t>(RunsPerN));
  H = hashField(H, 3, NValues.size());
  for (int N : NValues)
    H = hashField(H, 4, static_cast<uint64_t>(static_cast<uint32_t>(N)));
  H = hashField(H, 5, static_cast<uint64_t>(BufferLen));
  H = hashField(H, 6, static_cast<uint64_t>(static_cast<uint32_t>(ValueMin)));
  H = hashField(H, 7, static_cast<uint64_t>(static_cast<uint32_t>(ValueMax)));
  H = hashField(H, 8, UseBytecode ? 1 : 0);
  return H;
}

namespace {

/// Scalar argument values for one run, matched by parameter name.
static std::vector<int32_t>
argsFor(const VFunction &F,
        const std::vector<std::pair<std::string, int32_t>> &Named) {
  std::vector<int32_t> Out;
  for (const VParam &P : F.Params) {
    if (P.IsPointer)
      continue;
    auto It = std::find_if(Named.begin(), Named.end(),
                           [&](const auto &KV) { return KV.first == P.Name; });
    Out.push_back(It == Named.end() ? 0 : It->second);
  }
  return Out;
}

/// One function bound to an execution engine per ChecksumConfig::
/// UseBytecode (the compiled program is cache-shared process-wide; the
/// scratch register file is reused across this engine's runs).
struct Engine {
  const VFunction *Fn = nullptr;
  std::shared_ptr<const BytecodeProgram> Prog; ///< Null => tree-walk.
  BytecodeScratch Scratch;

  static Engine make(const VFunction &F, bool Bytecode) {
    Engine E;
    E.Fn = &F;
    if (Bytecode)
      E.Prog = compileBytecodeCached(F);
    return E;
  }
  ExecResult run(const std::vector<int32_t> &Args, MemoryImage &Mem) {
    return Prog ? execBytecode(*Prog, Args, Mem, ExecConfig(), &Scratch)
                : execute(*Fn, Args, Mem);
  }
  /// Content key of the bound function (memo identity).
  std::string key() const { return Prog ? Prog->Key : bytecodeKey(*Fn); }
};

} // namespace

/// Checks that both functions agree on the parameter list (names + kinds).
static bool signaturesMatch(const VFunction &A, const VFunction &B,
                            std::string &Why) {
  if (A.Params.size() != B.Params.size()) {
    Why = "parameter count differs";
    return false;
  }
  for (size_t I = 0; I < A.Params.size(); ++I) {
    if (A.Params[I].Name != B.Params[I].Name ||
        A.Params[I].IsPointer != B.Params[I].IsPointer) {
      Why = format("parameter %zu differs ('%s' vs '%s')", I,
                   A.Params[I].Name.c_str(), B.Params[I].Name.c_str());
      return false;
    }
  }
  if (A.ReturnsValue != B.ReturnsValue) {
    Why = "return type differs";
    return false;
  }
  return true;
}

/// Builds the per-parameter-region input image (param regions only).
static MemoryImage makeInputs(const VFunction &F, int BufferLen, Rng &R,
                              int32_t Lo, int32_t Hi) {
  MemoryImage M;
  for (size_t I = 0; I < F.Memories.size(); ++I) {
    M.Regions.emplace_back();
    if (!F.Memories[I].IsParam)
      continue; // allocated by the interpreter
    std::vector<int32_t> Buf(static_cast<size_t>(BufferLen));
    for (int32_t &V : Buf)
      V = R.rangeInt(Lo, Hi);
    M.Regions.back() = std::move(Buf);
  }
  return M;
}

/// Computes the memoized reference for input set \p RunIdx if it is not
/// already present: forks the per-(N, run) RNG stream, draws the input
/// image and argument plan, and executes the scalar once.
static void ensureRef(const VFunction &Scalar, Engine &SEng,
                      const ChecksumConfig &Cfg, const Rng &Base, int N,
                      int Run, ScalarRefMemo::RefRun &E,
                      ChecksumBatchResult &Agg, ScalarRefMemo &Memo) {
  if (E.Computed)
    return;
  E.Computed = true;
  Rng StreamR = Base.fork(hashCombine(static_cast<uint64_t>(N),
                                      static_cast<uint64_t>(Run)));
  E.Input = makeInputs(Scalar, Cfg.BufferLen, StreamR, Cfg.ValueMin,
                       Cfg.ValueMax);
  std::vector<std::pair<std::string, int32_t>> Named;
  for (const VParam &P : Scalar.Params) {
    if (P.IsPointer)
      continue;
    int32_t V = P.Name == "n" ? N : StreamR.rangeInt(0, 16);
    Named.emplace_back(P.Name, V);
  }
  E.Args = argsFor(Scalar, Named);
  E.RefOut = E.Input; // snapshot; the reference mutates the copy
  ExecResult RefRes = SEng.run(E.Args, E.RefOut);
  E.RefOk = RefRes.ok();
  E.RetVal = RefRes.RetVal;
  E.ScalarWork = RefRes.Work;
  ++Memo.ScalarRuns;
  ++Agg.ScalarRuns;
  Agg.ScalarWork.add(RefRes.Work);
}

static ChecksumBatchResult runChecksumBatchCore(
    const VFunction &Scalar, const std::vector<const VFunction *> &Candidates,
    const ChecksumConfig &Cfg, ScalarRefMemo *Memo) {
  ChecksumBatchResult Res;
  Res.Outcomes.resize(Candidates.size());

  Engine SEng = Engine::make(Scalar, Cfg.UseBytecode);

  // Validate (or initialize) the reference memo against this scalar and
  // config; a mismatch resets it rather than replaying stale outputs.
  ScalarRefMemo Local;
  if (!Memo)
    Memo = &Local;
  uint64_t CfgHash = Cfg.configHash();
  size_t NumRuns = Cfg.NValues.size() * static_cast<size_t>(Cfg.RunsPerN);
  std::string SKey = SEng.key();
  if (Memo->ConfigHash != CfgHash || Memo->ScalarKey != SKey ||
      Memo->Runs.size() != NumRuns) {
    Memo->ConfigHash = CfgHash;
    Memo->ScalarKey = SKey;
    Memo->Runs.assign(NumRuns, ScalarRefMemo::RefRun());
    Memo->ScalarRuns = 0;
  }

  // Per-candidate state: engine, region maps, a persistent memory image
  // restored (not reallocated) per run, and the running verdict.
  struct CandState {
    const VFunction *Fn = nullptr;
    Engine Eng;
    std::vector<int> InMap;  ///< Cand region -> scalar region (-1 none).
    std::vector<int> OutMap; ///< Scalar region -> cand region (-1 skip).
    MemoryImage Mem;
    bool Decided = false;
  };
  std::vector<CandState> Cands(Candidates.size());
  size_t Undecided = 0;
  for (size_t C = 0; C < Candidates.size(); ++C) {
    const VFunction &Vec = *Candidates[C];
    CandState &St = Cands[C];
    St.Fn = &Vec;
    ChecksumOutcome &Out = Res.Outcomes[C];
    std::string Why;
    if (!signaturesMatch(Scalar, Vec, Why)) {
      Out.Verdict = TestVerdict::NotEquivalent;
      Out.Detail = "signature mismatch: " + Why;
      St.Decided = true;
      continue;
    }
    St.Eng = Engine::make(Vec, Cfg.UseBytecode);
    St.InMap.assign(Vec.Memories.size(), -1);
    for (size_t J = 0; J < Vec.Memories.size(); ++J) {
      if (!Vec.Memories[J].IsParam)
        continue;
      for (size_t I = 0; I < Scalar.Memories.size(); ++I)
        if (Scalar.Memories[I].IsParam &&
            Scalar.Memories[I].Name == Vec.Memories[J].Name) {
          St.InMap[J] = static_cast<int>(I);
          break;
        }
    }
    St.OutMap.assign(Scalar.Memories.size(), -1);
    for (size_t I = 0; I < Scalar.Memories.size(); ++I) {
      if (!Scalar.Memories[I].IsParam)
        continue;
      for (size_t J = 0; J < Vec.Memories.size(); ++J)
        if (Vec.Memories[J].IsParam &&
            Vec.Memories[J].Name == Scalar.Memories[I].Name) {
          St.OutMap[I] = static_cast<int>(J);
          break;
        }
    }
    St.Mem.Regions.resize(Vec.Memories.size());
    ++Undecided;
  }

  Rng R(Cfg.Seed);
  size_t RunIdx = 0;
  for (size_t NI = 0; NI < Cfg.NValues.size() && Undecided; ++NI) {
    int N = Cfg.NValues[NI];
    for (int Run = 0; Run < Cfg.RunsPerN && Undecided; ++Run, ++RunIdx) {
      // Cooperative deadline checkpoint, once per input set (the
      // in-run granularity is the VM/tree-walk periodic check).
      support::throwIfCancelled("interp.checksum");
      ScalarRefMemo::RefRun &E = Memo->Runs[RunIdx];
      ensureRef(Scalar, SEng, Cfg, R, N, Run, E, Res, *Memo);
      ++Res.InputSets;

      for (size_t C = 0; C < Cands.size(); ++C) {
        CandState &St = Cands[C];
        if (St.Decided)
          continue;
        ChecksumOutcome &Out = Res.Outcomes[C];
        ++Out.Work.InputSets;
        if (!E.RefOk) {
          // The reference itself misbehaves on this input: not usable as
          // an oracle; skip the run (the harness stays Plausible).
          continue;
        }
        // Restore the candidate image from the input snapshot. Local
        // regions keep stale contents — the interpreter's prologue
        // reinitializes them to zero exactly as on a fresh image.
        for (size_t J = 0; J < St.Mem.Regions.size(); ++J) {
          if (St.InMap[J] >= 0)
            St.Mem.Regions[J] =
                E.Input.Regions[static_cast<size_t>(St.InMap[J])];
          else if (St.Fn->Memories[J].IsParam)
            St.Mem.Regions[J].clear();
        }
        ExecResult CandRes = St.Eng.run(E.Args, St.Mem);
        ++Out.Work.CandRuns;
        Out.Work.Cand.add(CandRes.Work);
        if (!CandRes.ok()) {
          Out.Verdict = TestVerdict::NotEquivalent;
          Out.FirstMismatch.N = N;
          Out.FirstMismatch.TrapMsg = CandRes.St == ExecResult::OutOfFuel
                                          ? "candidate did not terminate"
                                          : CandRes.TrapMsg;
          Out.Detail = format("candidate failed at n=%d: %s", N,
                              Out.FirstMismatch.TrapMsg.c_str());
          Out.Work.CandTrap = CandRes.Cause;
          Out.Work.CandHang = CandRes.St == ExecResult::OutOfFuel;
          St.Decided = true;
          --Undecided;
          continue;
        }
        if (Scalar.ReturnsValue && E.RetVal != CandRes.RetVal) {
          Out.Verdict = TestVerdict::NotEquivalent;
          Out.FirstMismatch = {"return value", N, E.RetVal, CandRes.RetVal,
                               ""};
          Out.Detail = format("return value differs at n=%d: expected %d, "
                              "got %d",
                              N, E.RetVal, CandRes.RetVal);
          St.Decided = true;
          --Undecided;
          continue;
        }
        // Compare every parameter region (by name): a memcmp fast path
        // over the whole buffer, dropping into the elementwise scan only
        // to locate and report the first differing index.
        for (size_t I = 0; I < Scalar.Memories.size() && !St.Decided; ++I) {
          if (St.OutMap[I] < 0)
            continue;
          const std::vector<int32_t> &RefBuf = E.RefOut.Regions[I];
          const std::vector<int32_t> &CandBuf =
              St.Mem.Regions[static_cast<size_t>(St.OutMap[I])];
          if (RefBuf.size() == CandBuf.size() &&
              std::memcmp(RefBuf.data(), CandBuf.data(),
                          RefBuf.size() * sizeof(int32_t)) == 0)
            continue;
          for (size_t K = 0; K < RefBuf.size(); ++K) {
            if (RefBuf[K] == CandBuf[K])
              continue;
            Out.Verdict = TestVerdict::NotEquivalent;
            Out.FirstMismatch = {
                format("array '%s' index %zu",
                       Scalar.Memories[I].Name.c_str(), K),
                N, RefBuf[K], CandBuf[K], ""};
            Out.Detail = format(
                "output mismatch at n=%d, %s: expected %d, got %d", N,
                Out.FirstMismatch.Where.c_str(), RefBuf[K], CandBuf[K]);
            St.Decided = true;
            --Undecided;
            break;
          }
        }
      }
    }
  }

  for (size_t C = 0; C < Cands.size(); ++C) {
    if (Cands[C].Decided)
      continue;
    Res.Outcomes[C].Verdict = TestVerdict::Plausible;
    Res.Outcomes[C].Detail = "all runs matched";
  }
  return Res;
}

ChecksumBatchResult lv::interp::runChecksumBatch(
    const VFunction &Scalar, const std::vector<const VFunction *> &Candidates,
    const ChecksumConfig &Cfg, ScalarRefMemo *Memo) {
  // The span args below are invariant under the runChecksumTest wrapper's
  // later move of batch-level scalar work into the single outcome:
  // outcome Scalar/ScalarRuns fields are still zero here, so summing
  // outcomes *plus* the batch-level Res fields counts each unit of work
  // exactly once under both call shapes. That makes Σ(span args) equal the
  // StageInterpWork tallies svc aggregates — the bench parity gates check
  // this equality.
  uint64_t BatchNanos = 0;
  ChecksumBatchResult Res;
  {
    obs::Span S("interp", "checksum.batch", &BatchNanos);
    Res = runChecksumBatchCore(Scalar, Candidates, Cfg, Memo);
    uint64_t Instrs = Res.ScalarWork.Instrs;
    uint64_t CandRuns = 0, Sets = 0, Traps = 0, Hangs = 0;
    for (const ChecksumOutcome &O : Res.Outcomes) {
      Instrs += O.Work.Cand.Instrs + O.Work.Scalar.Instrs;
      CandRuns += O.Work.CandRuns;
      Sets += O.Work.InputSets;
      Traps += O.Work.CandTrap != TrapKind::None ? 1 : 0;
      Hangs += O.Work.CandHang ? 1 : 0;
    }
    uint64_t Saved = Sets > Res.ScalarRuns ? Sets - Res.ScalarRuns : 0;
    S.arg("candidates", Res.Outcomes.size());
    S.arg("instrs", Instrs);
    S.arg("cand_runs", CandRuns);
    S.arg("scalar_runs", Res.ScalarRuns);
    S.arg("input_sets", Sets);
    S.arg("scalar_runs_saved", Saved);
    static obs::Counter &Batches = obs::counter("interp.checksum_batches");
    static obs::Counter &CInstrs = obs::counter("interp.instrs");
    static obs::Counter &CCand = obs::counter("interp.cand_runs");
    static obs::Counter &CScalar = obs::counter("interp.scalar_runs");
    static obs::Counter &CSets = obs::counter("interp.input_sets");
    static obs::Counter &CSaved = obs::counter("interp.scalar_runs_saved");
    static obs::Counter &CTraps = obs::counter("interp.traps");
    static obs::Counter &CHangs = obs::counter("interp.hangs");
    Batches.inc();
    CInstrs.inc(Instrs);
    CCand.inc(CandRuns);
    CScalar.inc(Res.ScalarRuns);
    CSets.inc(Sets);
    CSaved.inc(Saved);
    CTraps.inc(Traps);
    CHangs.inc(Hangs);
  }
  obs::histogram("interp.checksum_ns").observe(BatchNanos);
  return Res;
}

ChecksumOutcome lv::interp::runChecksumTest(const VFunction &Scalar,
                                            const VFunction &Vec,
                                            const ChecksumConfig &Cfg,
                                            ScalarRefMemo *Memo) {
  std::vector<const VFunction *> One{&Vec};
  ChecksumBatchResult R = runChecksumBatch(Scalar, One, Cfg, Memo);
  ChecksumOutcome Out = std::move(R.Outcomes[0]);
  // Single-candidate call: the reference-side work belongs to this
  // outcome. Sets whose reference came from the memo are the savings.
  Out.Work.ScalarRuns = R.ScalarRuns;
  Out.Work.ScalarRunsSaved =
      R.InputSets > R.ScalarRuns ? R.InputSets - R.ScalarRuns : 0;
  Out.Work.Scalar = R.ScalarWork;
  return Out;
}
