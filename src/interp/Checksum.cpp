//===- interp/Checksum.cpp - checksum-based testing --------------------------===//

#include "interp/Checksum.h"

#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>

using namespace lv;
using namespace lv::interp;
using namespace lv::vir;

uint64_t ChecksumConfig::configHash() const {
  uint64_t H = 0xC5C5ULL;
  H = hashField(H, 1, Seed);
  H = hashField(H, 2, static_cast<uint64_t>(RunsPerN));
  H = hashField(H, 3, NValues.size());
  for (int N : NValues)
    H = hashField(H, 4, static_cast<uint64_t>(static_cast<uint32_t>(N)));
  H = hashField(H, 5, static_cast<uint64_t>(BufferLen));
  H = hashField(H, 6, static_cast<uint64_t>(static_cast<uint32_t>(ValueMin)));
  H = hashField(H, 7, static_cast<uint64_t>(static_cast<uint32_t>(ValueMax)));
  return H;
}

namespace {

/// Scalar arguments for one run, matched by parameter name.
struct ArgPlan {
  std::vector<int32_t> ForFn(const VFunction &F) const {
    std::vector<int32_t> Out;
    for (const VParam &P : F.Params) {
      if (P.IsPointer)
        continue;
      auto It = std::find_if(Named.begin(), Named.end(),
                             [&](const auto &KV) { return KV.first == P.Name; });
      Out.push_back(It == Named.end() ? 0 : It->second);
    }
    return Out;
  }
  std::vector<std::pair<std::string, int32_t>> Named;
};

} // namespace

/// Checks that both functions agree on the parameter list (names + kinds).
static bool signaturesMatch(const VFunction &A, const VFunction &B,
                            std::string &Why) {
  if (A.Params.size() != B.Params.size()) {
    Why = "parameter count differs";
    return false;
  }
  for (size_t I = 0; I < A.Params.size(); ++I) {
    if (A.Params[I].Name != B.Params[I].Name ||
        A.Params[I].IsPointer != B.Params[I].IsPointer) {
      Why = format("parameter %zu differs ('%s' vs '%s')", I,
                   A.Params[I].Name.c_str(), B.Params[I].Name.c_str());
      return false;
    }
  }
  if (A.ReturnsValue != B.ReturnsValue) {
    Why = "return type differs";
    return false;
  }
  return true;
}

/// Builds the per-parameter-region input image (param regions only).
static MemoryImage makeInputs(const VFunction &F, int BufferLen, Rng &R,
                              int32_t Lo, int32_t Hi) {
  MemoryImage M;
  for (size_t I = 0; I < F.Memories.size(); ++I) {
    M.Regions.emplace_back();
    if (!F.Memories[I].IsParam)
      continue; // allocated by the interpreter
    std::vector<int32_t> Buf(static_cast<size_t>(BufferLen));
    for (int32_t &V : Buf)
      V = R.rangeInt(Lo, Hi);
    M.Regions.back() = std::move(Buf);
  }
  return M;
}

/// Copies param-region contents from \p Src into a fresh image shaped for
/// \p F (regions are matched by name so local arrays don't shift indices).
static MemoryImage remapInputs(const VFunction &F, const VFunction &SrcFn,
                               const MemoryImage &Src) {
  MemoryImage M;
  for (size_t I = 0; I < F.Memories.size(); ++I) {
    M.Regions.emplace_back();
    if (!F.Memories[I].IsParam)
      continue;
    for (size_t J = 0; J < SrcFn.Memories.size(); ++J) {
      if (SrcFn.Memories[J].IsParam &&
          SrcFn.Memories[J].Name == F.Memories[I].Name) {
        M.Regions.back() = Src.Regions[J];
        break;
      }
    }
  }
  return M;
}

ChecksumOutcome lv::interp::runChecksumTest(const VFunction &Scalar,
                                            const VFunction &Vec,
                                            const ChecksumConfig &Cfg) {
  ChecksumOutcome Out;
  std::string Why;
  if (!signaturesMatch(Scalar, Vec, Why)) {
    Out.Verdict = TestVerdict::NotEquivalent;
    Out.Detail = "signature mismatch: " + Why;
    return Out;
  }

  Rng R(Cfg.Seed);
  for (int N : Cfg.NValues) {
    for (int Run = 0; Run < Cfg.RunsPerN; ++Run) {
      Rng StreamR = R.fork(hashCombine(static_cast<uint64_t>(N),
                                       static_cast<uint64_t>(Run)));
      MemoryImage RefMem = makeInputs(Scalar, Cfg.BufferLen, StreamR,
                                      Cfg.ValueMin, Cfg.ValueMax);
      MemoryImage CandMem = remapInputs(Vec, Scalar, RefMem);

      ArgPlan Plan;
      for (const VParam &P : Scalar.Params) {
        if (P.IsPointer)
          continue;
        int32_t V =
            P.Name == "n" ? N : StreamR.rangeInt(0, 16);
        Plan.Named.emplace_back(P.Name, V);
      }

      ExecResult RefRes = execute(Scalar, Plan.ForFn(Scalar), RefMem);
      if (!RefRes.ok()) {
        // The reference itself misbehaves on this input: not usable as an
        // oracle; skip the run (the harness stays Plausible).
        continue;
      }
      ExecResult CandRes = execute(Vec, Plan.ForFn(Vec), CandMem);
      if (!CandRes.ok()) {
        Out.Verdict = TestVerdict::NotEquivalent;
        Out.FirstMismatch.N = N;
        Out.FirstMismatch.TrapMsg = CandRes.St == ExecResult::OutOfFuel
                                        ? "candidate did not terminate"
                                        : CandRes.TrapMsg;
        Out.Detail = format("candidate failed at n=%d: %s", N,
                            Out.FirstMismatch.TrapMsg.c_str());
        return Out;
      }
      if (Scalar.ReturnsValue && RefRes.RetVal != CandRes.RetVal) {
        Out.Verdict = TestVerdict::NotEquivalent;
        Out.FirstMismatch = {"return value", N, RefRes.RetVal,
                             CandRes.RetVal, ""};
        Out.Detail = format("return value differs at n=%d: expected %d, "
                            "got %d",
                            N, RefRes.RetVal, CandRes.RetVal);
        return Out;
      }
      // Compare every parameter region elementwise (by name).
      for (size_t I = 0; I < Scalar.Memories.size(); ++I) {
        if (!Scalar.Memories[I].IsParam)
          continue;
        const std::vector<int32_t> &RefBuf = RefMem.Regions[I];
        const std::vector<int32_t> *CandBuf = nullptr;
        for (size_t J = 0; J < Vec.Memories.size(); ++J)
          if (Vec.Memories[J].IsParam &&
              Vec.Memories[J].Name == Scalar.Memories[I].Name)
            CandBuf = &CandMem.Regions[J];
        if (!CandBuf)
          continue;
        for (size_t K = 0; K < RefBuf.size(); ++K) {
          if (RefBuf[K] == (*CandBuf)[K])
            continue;
          Out.Verdict = TestVerdict::NotEquivalent;
          Out.FirstMismatch = {
              format("array '%s' index %zu", Scalar.Memories[I].Name.c_str(),
                     K),
              N, RefBuf[K], (*CandBuf)[K], ""};
          Out.Detail = format(
              "output mismatch at n=%d, %s: expected %d, got %d", N,
              Out.FirstMismatch.Where.c_str(), RefBuf[K], (*CandBuf)[K]);
          return Out;
        }
      }
    }
  }
  Out.Verdict = TestVerdict::Plausible;
  Out.Detail = "all runs matched";
  return Out;
}
