//===- interp/Checksum.h - checksum-based testing ---------------*- C++ -*-===//
///
/// \file
/// Checksum-based equivalence testing (paper §2.1): initialize the input
/// arrays with random values, run the scalar and the vectorized function on
/// identical inputs, and compare every output array and the return value.
/// A pair that survives all runs is Plausible; any mismatch, crash, or hang
/// of the candidate is NotEquivalent.
///
/// Loop bounds are multiples of the vector width (as in the paper's harness,
/// where n = 32000): candidates without an epilogue loop are not penalized
/// for the remainder, and latent UB (speculative loads) goes unnoticed —
/// that blind spot is exactly what the symbolic verifier later closes.
///
/// The harness has two entry points over one core:
///
///   * `runChecksumTest` — one candidate. With a `ScalarRefMemo` the
///     scalar reference runs once per (seed, bound) input set and its
///     outputs are reused across candidate invocations (the FSM repair
///     loop and the service tester hook pass a per-task memo).
///   * `runChecksumBatch` — many candidates against one scalar: the
///     random image is built once per input set, the scalar runs once,
///     and every candidate replays against the shared reference outputs
///     via cheap image restore. Identical verdicts to the sequential path
///     by construction (same RNG streams, same run order per candidate).
///
/// Both paths execute on the compiled bytecode VM (interp/Bytecode.h) by
/// default; `ChecksumConfig::UseBytecode = false` selects the tree-walk
/// engine (the seed behaviour, kept as the A/B baseline for
/// bench_table2_checksum).
///
//===----------------------------------------------------------------------===//

#ifndef LV_INTERP_CHECKSUM_H
#define LV_INTERP_CHECKSUM_H

#include "interp/Interp.h"
#include "vir/IR.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lv {
namespace interp {

/// Verdict of checksum testing.
enum class TestVerdict : uint8_t {
  Plausible,     ///< No run distinguished the two functions.
  NotEquivalent, ///< Outputs differ / candidate crashed or hung.
  Error,         ///< Harness could not run (signature mismatch etc).
};

/// Harness parameters.
struct ChecksumConfig {
  uint64_t Seed = 0x5eed;
  int RunsPerN = 2;                      ///< Random input sets per bound.
  std::vector<int> NValues = {0, 8, 64, 256}; ///< Multiples of the width.
  int BufferLen = 512;                   ///< Allocation per array param.
  int32_t ValueMin = -1000;
  int32_t ValueMax = 1000;
  /// Execute on the compiled bytecode VM instead of the tree-walk
  /// interpreter. Verdicts and modeled cycles are identical by
  /// construction (parity-gated in bench_table2_checksum over the whole
  /// TSVC corpus); false restores the seed engine for A/B measurement.
  bool UseBytecode = true;

  /// Canonical content hash over every field (tagged per field, so values
  /// swapped between same-typed fields change the hash). Keys the
  /// service-layer verdict cache; extend when adding fields.
  uint64_t configHash() const;
};

/// A concrete distinguishing example, reported back to the vectorizer agent
/// by the compiler-tester agent in the multi-agent FSM.
struct Mismatch {
  std::string Where;   ///< e.g. "region a index 3" or "return value".
  int N = 0;           ///< Loop bound of the failing run.
  int32_t Expected = 0;
  int32_t Actual = 0;
  std::string TrapMsg; ///< Non-empty when the candidate trapped/hung.
};

/// What one checksum test cost in interpreter work. Candidate-side
/// counters are a pure function of (scalar, candidate, config) — the
/// batch path shares scalar references across candidates, so scalar-side
/// counters describe the runs *this call* paid for (zero on batch member
/// outcomes; the batch result carries the shared reference work).
struct ChecksumWork {
  uint64_t InputSets = 0;       ///< (N, run) sets this candidate consumed.
  uint64_t CandRuns = 0;        ///< Candidate executions.
  uint64_t ScalarRuns = 0;      ///< Reference executions performed here.
  uint64_t ScalarRunsSaved = 0; ///< References served from memo/batch.
  InterpWork Cand;              ///< Candidate-side interpreter work.
  InterpWork Scalar;            ///< Reference-side work paid for here.
  TrapKind CandTrap = TrapKind::None; ///< Set when the candidate trapped.
  bool CandHang = false;        ///< Candidate exceeded the step budget.
};

/// Outcome with diagnostics.
struct ChecksumOutcome {
  TestVerdict Verdict = TestVerdict::Error;
  Mismatch FirstMismatch; ///< Valid when Verdict == NotEquivalent.
  std::string Detail;
  ChecksumWork Work;      ///< Interpreter work counters (see above).

  bool plausible() const { return Verdict == TestVerdict::Plausible; }
};

/// Memoized scalar reference runs: per (N, run) input set, the random
/// input image, the post-run reference outputs, and the argument plan.
/// Owned by one task (FSM run / service task) — not thread-safe — and
/// automatically invalidated when the scalar function or the checksum
/// config changes. Passing one to runChecksumTest makes the scalar run
/// once per input set *across* candidate invocations.
struct ScalarRefMemo {
  struct RefRun {
    bool Computed = false;
    bool RefOk = false;    ///< Reference executed cleanly (usable oracle).
    int32_t RetVal = 0;
    /// Resolved scalar-argument vector. Candidates share it: the harness
    /// only runs candidates whose parameter list matches the scalar's
    /// name for name, so by-name resolution yields the same values.
    std::vector<int32_t> Args;
    MemoryImage Input;     ///< Param regions before the reference ran.
    MemoryImage RefOut;    ///< Full image after the reference ran.
    InterpWork ScalarWork; ///< Work of the one reference execution.
  };

  std::string ScalarKey;  ///< Content key of the memoized scalar.
  uint64_t ConfigHash = 0;
  std::vector<RefRun> Runs; ///< NValues-major, RunsPerN-minor.
  uint64_t ScalarRuns = 0;  ///< Reference executions recorded in here.
};

/// Runs checksum testing of candidate \p Vec against reference \p Scalar.
/// Scalar parameters are matched by name; the parameter named "n" receives
/// the loop bound. \p Memo (optional) memoizes the scalar reference runs
/// across calls with the same scalar and config.
ChecksumOutcome runChecksumTest(const vir::VFunction &Scalar,
                                const vir::VFunction &Vec,
                                const ChecksumConfig &Cfg = ChecksumConfig(),
                                ScalarRefMemo *Memo = nullptr);

/// Result of a batched run: one outcome per candidate (input order) plus
/// the shared reference-side work the batch performed once.
struct ChecksumBatchResult {
  std::vector<ChecksumOutcome> Outcomes;
  uint64_t InputSets = 0;  ///< (N, run) sets the batch processed.
  uint64_t ScalarRuns = 0; ///< Reference executions actually performed.
  InterpWork ScalarWork;   ///< Work of those reference executions.
};

/// Tests every candidate in \p Candidates against \p Scalar over one set
/// of random input images: inputs are generated once per (N, run), the
/// scalar runs once, and candidates replay against the snapshot via image
/// restore. Verdict-identical to calling runChecksumTest per candidate.
ChecksumBatchResult
runChecksumBatch(const vir::VFunction &Scalar,
                 const std::vector<const vir::VFunction *> &Candidates,
                 const ChecksumConfig &Cfg = ChecksumConfig(),
                 ScalarRefMemo *Memo = nullptr);

} // namespace interp
} // namespace lv

#endif // LV_INTERP_CHECKSUM_H
