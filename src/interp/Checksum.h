//===- interp/Checksum.h - checksum-based testing ---------------*- C++ -*-===//
///
/// \file
/// Checksum-based equivalence testing (paper §2.1): initialize the input
/// arrays with random values, run the scalar and the vectorized function on
/// identical inputs, and compare every output array and the return value.
/// A pair that survives all runs is Plausible; any mismatch, crash, or hang
/// of the candidate is NotEquivalent.
///
/// Loop bounds are multiples of the vector width (as in the paper's harness,
/// where n = 32000): candidates without an epilogue loop are not penalized
/// for the remainder, and latent UB (speculative loads) goes unnoticed —
/// that blind spot is exactly what the symbolic verifier later closes.
///
//===----------------------------------------------------------------------===//

#ifndef LV_INTERP_CHECKSUM_H
#define LV_INTERP_CHECKSUM_H

#include "interp/Interp.h"
#include "vir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lv {
namespace interp {

/// Verdict of checksum testing.
enum class TestVerdict : uint8_t {
  Plausible,     ///< No run distinguished the two functions.
  NotEquivalent, ///< Outputs differ / candidate crashed or hung.
  Error,         ///< Harness could not run (signature mismatch etc).
};

/// Harness parameters.
struct ChecksumConfig {
  uint64_t Seed = 0x5eed;
  int RunsPerN = 2;                      ///< Random input sets per bound.
  std::vector<int> NValues = {0, 8, 64, 256}; ///< Multiples of the width.
  int BufferLen = 512;                   ///< Allocation per array param.
  int32_t ValueMin = -1000;
  int32_t ValueMax = 1000;

  /// Canonical content hash over every field (tagged per field, so values
  /// swapped between same-typed fields change the hash). Keys the
  /// service-layer verdict cache; extend when adding fields.
  uint64_t configHash() const;
};

/// A concrete distinguishing example, reported back to the vectorizer agent
/// by the compiler-tester agent in the multi-agent FSM.
struct Mismatch {
  std::string Where;   ///< e.g. "region a index 3" or "return value".
  int N = 0;           ///< Loop bound of the failing run.
  int32_t Expected = 0;
  int32_t Actual = 0;
  std::string TrapMsg; ///< Non-empty when the candidate trapped/hung.
};

/// Outcome with diagnostics.
struct ChecksumOutcome {
  TestVerdict Verdict = TestVerdict::Error;
  Mismatch FirstMismatch; ///< Valid when Verdict == NotEquivalent.
  std::string Detail;

  bool plausible() const { return Verdict == TestVerdict::Plausible; }
};

/// Runs checksum testing of candidate \p Vec against reference \p Scalar.
/// Scalar parameters are matched by name; the parameter named "n" receives
/// the loop bound.
ChecksumOutcome runChecksumTest(const vir::VFunction &Scalar,
                                const vir::VFunction &Vec,
                                const ChecksumConfig &Cfg = ChecksumConfig());

} // namespace interp
} // namespace lv

#endif // LV_INTERP_CHECKSUM_H
