//===- interp/Interp.cpp - concrete VIR interpreter -------------------------===//

#include "interp/Interp.h"

#include "support/Cancel.h"
#include "support/Format.h"

#include <cassert>
#include <cstring>

using namespace lv;
using namespace lv::interp;
using namespace lv::vir;

double CostModel::costOf(Op O) const {
  switch (O) {
  case Op::ConstI32:
  case Op::Copy:
    return 0.0; // register renaming / immediate materialization
  case Op::Mul:
    return ScalarMul;
  case Op::SDiv:
  case Op::SRem:
    return ScalarDiv;
  case Op::Load:
    return ScalarLoad;
  case Op::Store:
    return ScalarStore;
  case Op::VMul:
    return VectorMul;
  case Op::VLoad:
    return VectorLoad;
  case Op::VStore:
    return VectorStore;
  case Op::VBlend:
  case Op::VSelect:
    return VectorBlend;
  case Op::VPermute:
  case Op::VHAdd:
    return VectorPermute;
  case Op::VMaskLoad:
  case Op::VMaskStore:
    return VectorMaskMem;
  case Op::VBroadcast:
  case Op::VBuild:
  case Op::VAdd:
  case Op::VSub:
  case Op::VMinS:
  case Op::VMaxS:
  case Op::VAnd:
  case Op::VOr:
  case Op::VXor:
  case Op::VAndNot:
  case Op::VAbs:
  case Op::VCmpGt:
  case Op::VCmpEq:
  case Op::VShlI:
  case Op::VShrLI:
  case Op::VShrAI:
  case Op::VShlV:
  case Op::VShrLV:
  case Op::VShrAV:
  case Op::VExtract:
  case Op::VInsert:
    return VectorAlu;
  default:
    return ScalarAlu;
  }
}

const char *lv::interp::opClassName(OpClass C) {
  switch (C) {
  case OpClass::Free: return "free";
  case OpClass::ScalarAlu: return "salu";
  case OpClass::ScalarMul: return "smul";
  case OpClass::ScalarDiv: return "sdiv";
  case OpClass::ScalarLoad: return "sload";
  case OpClass::ScalarStore: return "sstore";
  case OpClass::VectorAlu: return "valu";
  case OpClass::VectorMul: return "vmul";
  case OpClass::VectorLoad: return "vload";
  case OpClass::VectorStore: return "vstore";
  case OpClass::VectorShuffle: return "vshuf";
  case OpClass::Branch: return "branch";
  case OpClass::LoopIter: return "loop";
  }
  return "?";
}

const char *lv::interp::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None: return "none";
  case TrapKind::DivByZero: return "div-by-zero";
  case TrapKind::Overflow: return "overflow";
  case TrapKind::OutOfBounds: return "out-of-bounds";
  case TrapKind::Harness: return "harness";
  case TrapKind::Unknown: return "unknown";
  }
  return "?";
}

OpClass lv::interp::opClassOf(Op O) {
  switch (O) {
  case Op::ConstI32:
  case Op::Copy:
    return OpClass::Free;
  case Op::Mul:
    return OpClass::ScalarMul;
  case Op::SDiv:
  case Op::SRem:
    return OpClass::ScalarDiv;
  case Op::Load:
    return OpClass::ScalarLoad;
  case Op::Store:
    return OpClass::ScalarStore;
  case Op::VMul:
    return OpClass::VectorMul;
  case Op::VLoad:
  case Op::VMaskLoad:
    return OpClass::VectorLoad;
  case Op::VStore:
  case Op::VMaskStore:
    return OpClass::VectorStore;
  case Op::VBuild:
  case Op::VBlend:
  case Op::VSelect:
  case Op::VPermute:
  case Op::VHAdd:
  case Op::VExtract:
  case Op::VInsert:
    return OpClass::VectorShuffle;
  case Op::VBroadcast:
  case Op::VAdd:
  case Op::VSub:
  case Op::VMinS:
  case Op::VMaxS:
  case Op::VAnd:
  case Op::VOr:
  case Op::VXor:
  case Op::VAndNot:
  case Op::VAbs:
  case Op::VCmpGt:
  case Op::VCmpEq:
  case Op::VShlI:
  case Op::VShrLI:
  case Op::VShrAI:
  case Op::VShlV:
  case Op::VShrLV:
  case Op::VShrAV:
    return OpClass::VectorAlu;
  default:
    return OpClass::ScalarAlu;
  }
}

namespace {

using VecVal = std::array<int32_t, Lanes>;

/// Control-flow signal propagated out of region execution.
enum class Signal { Normal, Broke, Continued, Returned, Trapped, Fuel };

/// The interpreter state machine.
class Interp {
public:
  Interp(const VFunction &F, MemoryImage &Mem, const ExecConfig &Cfg)
      : F(F), Mem(Mem), Cfg(Cfg) {
    Scalars.assign(static_cast<size_t>(F.numRegs()), 0);
    Vectors.assign(static_cast<size_t>(F.numRegs()), VecVal{});
  }

  ExecResult run(const std::vector<int32_t> &ScalarArgs);

private:
  const VFunction &F;
  MemoryImage &Mem;
  const ExecConfig &Cfg;
  /// The task's cancel token, captured at construction (null = no-op).
  const support::CancelToken *CT = support::currentCancelToken();
  std::vector<int32_t> Scalars;
  std::vector<VecVal> Vectors;
  ExecResult Result;

  int32_t s(int R) const { return Scalars[static_cast<size_t>(R)]; }
  const VecVal &v(int R) const { return Vectors[static_cast<size_t>(R)]; }
  void setS(int R, int32_t V) { Scalars[static_cast<size_t>(R)] = V; }
  void setV(int R, const VecVal &V) { Vectors[static_cast<size_t>(R)] = V; }

  Signal trap(TrapKind K, const std::string &Msg) {
    Result.St = ExecResult::Trap;
    Result.Cause = K;
    Result.TrapMsg = Msg;
    return Signal::Trapped;
  }

  bool charge(Op O) {
    ++Result.Steps;
    ++Result.Work.Instrs;
    ++Result.Work.Hist[static_cast<size_t>(opClassOf(O))];
    if (Cfg.Costs)
      Result.Cycles += Cfg.Costs->costOf(O);
    // Periodic cooperative deadline check (mirrors the bytecode VM's).
    if ((Result.Steps & 0xFFFFFULL) == 0 && CT && CT->expired())
      throw support::CancelledError("interp.treewalk");
    return Result.Steps <= Cfg.MaxSteps;
  }

  Signal execInstr(const Instr &I);
  Signal execRegion(const Region &R);
  Signal execNode(const Node &N);

  std::vector<int32_t> *region(int64_t Idx) {
    if (Idx < 0 || Idx >= static_cast<int64_t>(Mem.Regions.size()))
      return nullptr;
    return &Mem.Regions[static_cast<size_t>(Idx)];
  }
};

} // namespace

static int32_t wrapAdd(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) +
                              static_cast<uint32_t>(B));
}
static int32_t wrapSub(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) -
                              static_cast<uint32_t>(B));
}
static int32_t wrapMul(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) *
                              static_cast<uint32_t>(B));
}

/// AVX2 immediate-count shift semantics: counts >= 32 saturate.
static int32_t vshl(int32_t X, int64_t C) {
  if (C < 0 || C >= 32)
    return 0;
  return static_cast<int32_t>(static_cast<uint32_t>(X) << C);
}
static int32_t vshrl(int32_t X, int64_t C) {
  if (C < 0 || C >= 32)
    return 0;
  return static_cast<int32_t>(static_cast<uint32_t>(X) >> C);
}
static int32_t vshra(int32_t X, int64_t C) {
  if (C < 0 || C >= 32)
    C = 31;
  return X >> C;
}

Signal Interp::execInstr(const Instr &I) {
  if (!charge(I.Opcode)) {
    Result.St = ExecResult::OutOfFuel;
    return Signal::Fuel;
  }
  auto A = [&](size_t K) { return I.Args[K]; };
  switch (I.Opcode) {
  case Op::ConstI32:
    setS(I.Rd, static_cast<int32_t>(I.Imm));
    return Signal::Normal;
  case Op::Copy:
    if (F.RegTypes[static_cast<size_t>(I.Rd)] == VType::V8I32)
      setV(I.Rd, v(A(0)));
    else
      setS(I.Rd, s(A(0)));
    return Signal::Normal;
  case Op::Add:
    setS(I.Rd, wrapAdd(s(A(0)), s(A(1))));
    return Signal::Normal;
  case Op::Sub:
    setS(I.Rd, wrapSub(s(A(0)), s(A(1))));
    return Signal::Normal;
  case Op::Mul:
    setS(I.Rd, wrapMul(s(A(0)), s(A(1))));
    return Signal::Normal;
  case Op::SDiv: {
    int32_t D = s(A(1));
    int32_t N = s(A(0));
    if (D == 0)
      return trap(TrapKind::DivByZero, "integer division by zero");
    if (N == INT32_MIN && D == -1)
      return trap(TrapKind::Overflow, "signed division overflow");
    // Compilers strength-reduce division by powers of two to shifts; the
    // cost model follows suit (refund the divider, charge ALU ops).
    if (Cfg.Costs && D > 0 && (D & (D - 1)) == 0)
      Result.Cycles -= Cfg.Costs->ScalarDiv - 2 * Cfg.Costs->ScalarAlu;
    setS(I.Rd, N / D);
    return Signal::Normal;
  }
  case Op::SRem: {
    int32_t D = s(A(1));
    int32_t N = s(A(0));
    if (D == 0)
      return trap(TrapKind::DivByZero, "integer remainder by zero");
    if (N == INT32_MIN && D == -1)
      return trap(TrapKind::Overflow, "signed remainder overflow");
    if (Cfg.Costs && D > 0 && (D & (D - 1)) == 0)
      Result.Cycles -= Cfg.Costs->ScalarDiv - 2 * Cfg.Costs->ScalarAlu;
    setS(I.Rd, N % D);
    return Signal::Normal;
  }
  case Op::Shl:
    setS(I.Rd, static_cast<int32_t>(static_cast<uint32_t>(s(A(0)))
                                    << (s(A(1)) & 31)));
    return Signal::Normal;
  case Op::AShr:
    setS(I.Rd, s(A(0)) >> (s(A(1)) & 31));
    return Signal::Normal;
  case Op::LShr:
    setS(I.Rd, static_cast<int32_t>(static_cast<uint32_t>(s(A(0))) >>
                                    (s(A(1)) & 31)));
    return Signal::Normal;
  case Op::And:
    setS(I.Rd, s(A(0)) & s(A(1)));
    return Signal::Normal;
  case Op::Or:
    setS(I.Rd, s(A(0)) | s(A(1)));
    return Signal::Normal;
  case Op::Xor:
    setS(I.Rd, s(A(0)) ^ s(A(1)));
    return Signal::Normal;
  case Op::ICmp: {
    int32_t L = s(A(0)), R = s(A(1));
    bool V = false;
    switch (I.P) {
    case Pred::EQ: V = L == R; break;
    case Pred::NE: V = L != R; break;
    case Pred::SLT: V = L < R; break;
    case Pred::SLE: V = L <= R; break;
    case Pred::SGT: V = L > R; break;
    case Pred::SGE: V = L >= R; break;
    }
    setS(I.Rd, V ? 1 : 0);
    return Signal::Normal;
  }
  case Op::Select:
    setS(I.Rd, s(A(0)) != 0 ? s(A(1)) : s(A(2)));
    return Signal::Normal;
  case Op::SAbs: {
    int32_t X = s(A(0));
    setS(I.Rd, X < 0 ? wrapSub(0, X) : X);
    return Signal::Normal;
  }
  case Op::SMax:
    setS(I.Rd, s(A(0)) > s(A(1)) ? s(A(0)) : s(A(1)));
    return Signal::Normal;
  case Op::SMin:
    setS(I.Rd, s(A(0)) < s(A(1)) ? s(A(0)) : s(A(1)));
    return Signal::Normal;
  case Op::Load: {
    std::vector<int32_t> *R = region(I.Imm);
    int64_t Off = s(A(0));
    if (!R || Off < 0 || Off >= static_cast<int64_t>(R->size()))
      return trap(TrapKind::OutOfBounds,
                  format("out-of-bounds load @%s[%lld]",
                         F.Memories[static_cast<size_t>(I.Imm)].Name.c_str(),
                         static_cast<long long>(Off)));
    setS(I.Rd, (*R)[static_cast<size_t>(Off)]);
    return Signal::Normal;
  }
  case Op::Store: {
    std::vector<int32_t> *R = region(I.Imm);
    int64_t Off = s(A(0));
    if (!R || Off < 0 || Off >= static_cast<int64_t>(R->size()))
      return trap(TrapKind::OutOfBounds,
                  format("out-of-bounds store @%s[%lld]",
                         F.Memories[static_cast<size_t>(I.Imm)].Name.c_str(),
                         static_cast<long long>(Off)));
    (*R)[static_cast<size_t>(Off)] = s(A(1));
    return Signal::Normal;
  }
  case Op::VBroadcast: {
    VecVal V;
    V.fill(s(A(0)));
    setV(I.Rd, V);
    return Signal::Normal;
  }
  case Op::VBuild: {
    VecVal V;
    for (int L = 0; L < Lanes; ++L)
      V[static_cast<size_t>(L)] = s(A(static_cast<size_t>(L)));
    setV(I.Rd, V);
    return Signal::Normal;
  }
  case Op::VAdd:
  case Op::VSub:
  case Op::VMul:
  case Op::VMinS:
  case Op::VMaxS:
  case Op::VAnd:
  case Op::VOr:
  case Op::VXor:
  case Op::VAndNot:
  case Op::VCmpGt:
  case Op::VCmpEq: {
    const VecVal &X = v(A(0));
    const VecVal &Y = v(A(1));
    VecVal R;
    for (size_t L = 0; L < Lanes; ++L) {
      switch (I.Opcode) {
      case Op::VAdd: R[L] = wrapAdd(X[L], Y[L]); break;
      case Op::VSub: R[L] = wrapSub(X[L], Y[L]); break;
      case Op::VMul: R[L] = wrapMul(X[L], Y[L]); break;
      case Op::VMinS: R[L] = X[L] < Y[L] ? X[L] : Y[L]; break;
      case Op::VMaxS: R[L] = X[L] > Y[L] ? X[L] : Y[L]; break;
      case Op::VAnd: R[L] = X[L] & Y[L]; break;
      case Op::VOr: R[L] = X[L] | Y[L]; break;
      case Op::VXor: R[L] = X[L] ^ Y[L]; break;
      case Op::VAndNot: R[L] = ~X[L] & Y[L]; break;
      case Op::VCmpGt: R[L] = X[L] > Y[L] ? -1 : 0; break;
      case Op::VCmpEq: R[L] = X[L] == Y[L] ? -1 : 0; break;
      default: break;
      }
    }
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VAbs: {
    const VecVal &X = v(A(0));
    VecVal R;
    for (size_t L = 0; L < Lanes; ++L)
      R[L] = X[L] < 0 ? wrapSub(0, X[L]) : X[L];
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VBlend: {
    // blendv_epi8: per byte, take b's byte when the mask byte's MSB is set.
    const VecVal &X = v(A(0));
    const VecVal &Y = v(A(1));
    const VecVal &M = v(A(2));
    VecVal R;
    for (size_t L = 0; L < Lanes; ++L) {
      uint32_t XB = static_cast<uint32_t>(X[L]);
      uint32_t YB = static_cast<uint32_t>(Y[L]);
      uint32_t MB = static_cast<uint32_t>(M[L]);
      uint32_t Out = 0;
      for (int B = 0; B < 4; ++B) {
        uint32_t Mask = 0xffu << (B * 8);
        bool Take = (MB >> (B * 8 + 7)) & 1u;
        Out |= (Take ? YB : XB) & Mask;
      }
      R[L] = static_cast<int32_t>(Out);
    }
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VSelect: {
    bool C = s(A(0)) != 0;
    setV(I.Rd, C ? v(A(1)) : v(A(2)));
    return Signal::Normal;
  }
  case Op::VShlI:
  case Op::VShrLI:
  case Op::VShrAI: {
    const VecVal &X = v(A(0));
    int64_t C = s(A(1));
    VecVal R;
    for (size_t L = 0; L < Lanes; ++L) {
      if (I.Opcode == Op::VShlI)
        R[L] = vshl(X[L], C);
      else if (I.Opcode == Op::VShrLI)
        R[L] = vshrl(X[L], C);
      else
        R[L] = vshra(X[L], C);
    }
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VShlV:
  case Op::VShrLV:
  case Op::VShrAV: {
    const VecVal &X = v(A(0));
    const VecVal &C = v(A(1));
    VecVal R;
    for (size_t L = 0; L < Lanes; ++L) {
      if (I.Opcode == Op::VShlV)
        R[L] = vshl(X[L], C[L]);
      else if (I.Opcode == Op::VShrLV)
        R[L] = vshrl(X[L], C[L]);
      else
        R[L] = vshra(X[L], C[L]);
    }
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VExtract:
    setS(I.Rd, v(A(0))[static_cast<size_t>(I.Imm)]);
    return Signal::Normal;
  case Op::VInsert: {
    VecVal R = v(A(0));
    R[static_cast<size_t>(I.Imm)] = s(A(1));
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VPermute: {
    const VecVal &X = v(A(0));
    const VecVal &Idx = v(A(1));
    VecVal R;
    for (size_t L = 0; L < Lanes; ++L)
      R[L] = X[static_cast<size_t>(Idx[L] & 7)];
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VHAdd: {
    const VecVal &X = v(A(0));
    const VecVal &Y = v(A(1));
    VecVal R;
    R[0] = wrapAdd(X[0], X[1]);
    R[1] = wrapAdd(X[2], X[3]);
    R[2] = wrapAdd(Y[0], Y[1]);
    R[3] = wrapAdd(Y[2], Y[3]);
    R[4] = wrapAdd(X[4], X[5]);
    R[5] = wrapAdd(X[6], X[7]);
    R[6] = wrapAdd(Y[4], Y[5]);
    R[7] = wrapAdd(Y[6], Y[7]);
    setV(I.Rd, R);
    return Signal::Normal;
  }
  case Op::VLoad: {
    std::vector<int32_t> *R = region(I.Imm);
    int64_t Off = s(A(0));
    if (!R || Off < 0 || Off + Lanes > static_cast<int64_t>(R->size()))
      return trap(TrapKind::OutOfBounds,
                  format("out-of-bounds vector load @%s[%lld..%lld]",
                         F.Memories[static_cast<size_t>(I.Imm)].Name.c_str(),
                         static_cast<long long>(Off),
                         static_cast<long long>(Off + Lanes - 1)));
    VecVal V;
    for (size_t L = 0; L < Lanes; ++L)
      V[L] = (*R)[static_cast<size_t>(Off) + L];
    setV(I.Rd, V);
    return Signal::Normal;
  }
  case Op::VStore: {
    std::vector<int32_t> *R = region(I.Imm);
    int64_t Off = s(A(0));
    if (!R || Off < 0 || Off + Lanes > static_cast<int64_t>(R->size()))
      return trap(TrapKind::OutOfBounds,
                  format("out-of-bounds vector store @%s[%lld..%lld]",
                         F.Memories[static_cast<size_t>(I.Imm)].Name.c_str(),
                         static_cast<long long>(Off),
                         static_cast<long long>(Off + Lanes - 1)));
    const VecVal &V = v(A(1));
    for (size_t L = 0; L < Lanes; ++L)
      (*R)[static_cast<size_t>(Off) + L] = V[L];
    return Signal::Normal;
  }
  case Op::VMaskLoad: {
    std::vector<int32_t> *R = region(I.Imm);
    int64_t Off = s(A(0));
    const VecVal &M = v(A(1));
    VecVal V{};
    for (size_t L = 0; L < Lanes; ++L) {
      if (!(static_cast<uint32_t>(M[L]) >> 31))
        continue; // inactive lanes do not touch memory
      int64_t At = Off + static_cast<int64_t>(L);
      if (!R || At < 0 || At >= static_cast<int64_t>(R->size()))
        return trap(TrapKind::OutOfBounds, "out-of-bounds masked load");
      V[L] = (*R)[static_cast<size_t>(At)];
    }
    setV(I.Rd, V);
    return Signal::Normal;
  }
  case Op::VMaskStore: {
    std::vector<int32_t> *R = region(I.Imm);
    int64_t Off = s(A(0));
    const VecVal &M = v(A(1));
    const VecVal &V = v(A(2));
    for (size_t L = 0; L < Lanes; ++L) {
      if (!(static_cast<uint32_t>(M[L]) >> 31))
        continue;
      int64_t At = Off + static_cast<int64_t>(L);
      if (!R || At < 0 || At >= static_cast<int64_t>(R->size()))
        return trap(TrapKind::OutOfBounds, "out-of-bounds masked store");
      (*R)[static_cast<size_t>(At)] = V[L];
    }
    return Signal::Normal;
  }
  }
  return trap(TrapKind::Unknown, "unknown opcode");
}

Signal Interp::execNode(const Node &N) {
  switch (N.K) {
  case Node::Inst:
    return execInstr(N.I);
  case Node::If: {
    if (Cfg.Costs) {
      Result.Cycles += Cfg.Costs->Branch;
    }
    ++Result.Steps;
    ++Result.Work.Instrs;
    ++Result.Work.Hist[static_cast<size_t>(OpClass::Branch)];
    if (Result.Steps > Cfg.MaxSteps) {
      Result.St = ExecResult::OutOfFuel;
      return Signal::Fuel;
    }
    return s(N.CondReg) != 0 ? execRegion(N.BodyR) : execRegion(N.ElseR);
  }
  case Node::For: {
    Signal Sig = execRegion(N.Init);
    if (Sig != Signal::Normal)
      return Sig;
    for (;;) {
      Sig = execRegion(N.CondCalc);
      if (Sig != Signal::Normal)
        return Sig;
      if (Cfg.Costs)
        Result.Cycles += Cfg.Costs->LoopIter;
      ++Result.Work.Instrs;
      ++Result.Work.Hist[static_cast<size_t>(OpClass::LoopIter)];
      if (s(N.CondReg) == 0)
        return Signal::Normal;
      Sig = execRegion(N.BodyR);
      if (Sig == Signal::Broke)
        return Signal::Normal;
      if (Sig != Signal::Normal && Sig != Signal::Continued)
        return Sig;
      Sig = execRegion(N.StepR);
      if (Sig != Signal::Normal)
        return Sig;
    }
  }
  case Node::Break:
    return Signal::Broke;
  case Node::Continue:
    return Signal::Continued;
  case Node::Ret:
    Result.Returned = true;
    if (N.CondReg >= 0)
      Result.RetVal = s(N.CondReg);
    return Signal::Returned;
  }
  return Signal::Normal;
}

Signal Interp::execRegion(const Region &R) {
  for (const NodePtr &N : R.Nodes) {
    Signal Sig = execNode(*N);
    if (Sig != Signal::Normal)
      return Sig;
  }
  return Signal::Normal;
}

ExecResult Interp::run(const std::vector<int32_t> &ScalarArgs) {
  // Bind scalar parameters.
  size_t ArgIdx = 0;
  for (const VParam &P : F.Params) {
    if (P.IsPointer)
      continue;
    if (ArgIdx >= ScalarArgs.size()) {
      Result.St = ExecResult::Trap;
      Result.Cause = TrapKind::Harness;
      Result.TrapMsg = "missing scalar argument";
      return Result;
    }
    setS(P.Reg, ScalarArgs[ArgIdx++]);
  }
  // Allocate local-array regions (zero initialized).
  for (size_t I = 0; I < F.Memories.size(); ++I) {
    const RegionInfo &M = F.Memories[I];
    if (M.IsParam) {
      if (I >= Mem.Regions.size()) {
        Result.St = ExecResult::Trap;
        Result.Cause = TrapKind::Harness;
        Result.TrapMsg = format("missing memory for region @%s",
                                M.Name.c_str());
        return Result;
      }
      continue;
    }
    Mem.resize(I, static_cast<size_t>(M.LocalSize));
  }
  execRegion(F.Body);
  return Result;
}

ExecResult lv::interp::execute(const VFunction &F,
                               const std::vector<int32_t> &ScalarArgs,
                               MemoryImage &Mem, const ExecConfig &Cfg) {
  Interp I(F, Mem, Cfg);
  return I.run(ScalarArgs);
}
