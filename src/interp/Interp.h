//===- interp/Interp.h - concrete VIR interpreter --------------*- C++ -*-===//
///
/// \file
/// Deterministic interpreter for VIR used by the checksum-testing agent and
/// by the performance experiments. Semantics follow real x86 execution, not
/// the C abstract machine: signed arithmetic wraps, shifts mask their
/// amount, and only "hard" traps (division by zero, out-of-bounds beyond the
/// concrete allocation) abort. This is deliberate — checksum testing must
/// miss latent UB exactly as the paper's native test harness does (the s124
/// case), leaving its detection to the symbolic verifier.
///
/// The interpreter also charges a configurable cycle cost per operation;
/// the performance benchmarks (Figure 6 / Figure 1c) compare these modeled
/// cycle counts across compiler baselines and LLM vectorizations.
///
//===----------------------------------------------------------------------===//

#ifndef LV_INTERP_INTERP_H
#define LV_INTERP_INTERP_H

#include "vir/IR.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace lv {
namespace interp {

/// Per-operation cycle costs. The defaults approximate a modern x86 core:
/// one 8-lane vector operation costs about as much as one scalar operation,
/// which is where vectorization's ~8x headroom comes from.
struct CostModel {
  double ScalarAlu = 1.0;
  double ScalarMul = 3.0;
  double ScalarDiv = 20.0;
  double ScalarLoad = 1.0;
  double ScalarStore = 1.0;
  double VectorAlu = 1.0;
  double VectorMul = 2.0;
  double VectorLoad = 1.5;
  double VectorStore = 1.5;
  double VectorBlend = 1.0;
  double VectorPermute = 2.0;
  double VectorMaskMem = 2.0;
  double Branch = 1.0;
  double LoopIter = 1.5; ///< Per-iteration compare/increment/branch overhead.

  /// Cost of one instruction.
  double costOf(vir::Op O) const;
};

/// Coarse instruction classes for the interpreter work histogram. Both
/// execution engines (the tree-walk below and the bytecode VM in
/// interp/Bytecode.h) tally exactly the same events into the same classes,
/// so per-class counts are engine-independent and the parity suite can
/// compare them bit for bit.
enum class OpClass : uint8_t {
  Free,          ///< ConstI32 / Copy — zero-cost register plumbing.
  ScalarAlu,
  ScalarMul,
  ScalarDiv,     ///< SDiv / SRem.
  ScalarLoad,
  ScalarStore,
  VectorAlu,
  VectorMul,
  VectorLoad,    ///< VLoad / VMaskLoad.
  VectorStore,   ///< VStore / VMaskStore.
  VectorShuffle, ///< Cross-lane ops: permute/blend/extract/insert/build.
  Branch,        ///< One `if` dispatch.
  LoopIter,      ///< One loop back-edge (cond re-check).
};
inline constexpr size_t kNumOpClasses = 13;

const char *opClassName(OpClass C);

/// Work class of \p O (pure; shared by both engines).
OpClass opClassOf(vir::Op O);

/// Interpreter work counters: what one execution actually did. `Instrs`
/// counts charged events — executed instructions plus `if` dispatches and
/// loop back-edges — i.e. everything both engines model identically.
struct InterpWork {
  uint64_t Instrs = 0;
  uint64_t Hist[kNumOpClasses] = {};

  uint64_t loads() const {
    return Hist[static_cast<size_t>(OpClass::ScalarLoad)] +
           Hist[static_cast<size_t>(OpClass::VectorLoad)];
  }
  uint64_t stores() const {
    return Hist[static_cast<size_t>(OpClass::ScalarStore)] +
           Hist[static_cast<size_t>(OpClass::VectorStore)];
  }
  uint64_t branches() const {
    return Hist[static_cast<size_t>(OpClass::Branch)] +
           Hist[static_cast<size_t>(OpClass::LoopIter)];
  }
  void add(const InterpWork &O) {
    Instrs += O.Instrs;
    for (size_t I = 0; I < kNumOpClasses; ++I)
      Hist[I] += O.Hist[I];
  }
  bool operator==(const InterpWork &O) const {
    if (Instrs != O.Instrs)
      return false;
    for (size_t I = 0; I < kNumOpClasses; ++I)
      if (Hist[I] != O.Hist[I])
        return false;
    return true;
  }
};

/// Why an execution trapped (machine-readable mirror of TrapMsg).
enum class TrapKind : uint8_t {
  None,
  DivByZero,    ///< Integer division/remainder by zero.
  Overflow,     ///< INT_MIN / -1 style signed overflow.
  OutOfBounds,  ///< Scalar/vector/masked access outside the region.
  Harness,      ///< Missing argument or memory region (caller error).
  Unknown,      ///< Unrecognized opcode.
};

const char *trapKindName(TrapKind K);

/// Concrete memory: one i32 buffer per VIR memory region.
struct MemoryImage {
  std::vector<std::vector<int32_t>> Regions;

  /// Sizes region \p Idx to \p N zero elements.
  void resize(size_t Idx, size_t N) {
    if (Regions.size() <= Idx)
      Regions.resize(Idx + 1);
    Regions[Idx].assign(N, 0);
  }
};

/// Interpreter limits and options.
struct ExecConfig {
  uint64_t MaxSteps = 50'000'000; ///< Fuel; exceeded => OutOfFuel.
  const CostModel *Costs = nullptr; ///< Null => no cycle accounting.
};

/// Execution outcome.
struct ExecResult {
  enum Status { Ok, Trap, OutOfFuel } St = Ok;
  std::string TrapMsg;
  TrapKind Cause = TrapKind::None; ///< Valid when St == Status::Trap.
  uint64_t Steps = 0;
  double Cycles = 0.0;
  bool Returned = false;
  int32_t RetVal = 0;
  InterpWork Work; ///< Engine-independent work counters.

  bool ok() const { return St == Ok; }
};

/// Runs \p F. \p ScalarArgs supplies values for the non-pointer parameters
/// in order; \p Mem supplies one buffer per *parameter* region (local-array
/// regions are allocated by the interpreter and appended to \p Mem).
ExecResult execute(const vir::VFunction &F,
                   const std::vector<int32_t> &ScalarArgs, MemoryImage &Mem,
                   const ExecConfig &Cfg = ExecConfig());

} // namespace interp
} // namespace lv

#endif // LV_INTERP_INTERP_H
