//===- interp/Interp.h - concrete VIR interpreter --------------*- C++ -*-===//
///
/// \file
/// Deterministic interpreter for VIR used by the checksum-testing agent and
/// by the performance experiments. Semantics follow real x86 execution, not
/// the C abstract machine: signed arithmetic wraps, shifts mask their
/// amount, and only "hard" traps (division by zero, out-of-bounds beyond the
/// concrete allocation) abort. This is deliberate — checksum testing must
/// miss latent UB exactly as the paper's native test harness does (the s124
/// case), leaving its detection to the symbolic verifier.
///
/// The interpreter also charges a configurable cycle cost per operation;
/// the performance benchmarks (Figure 6 / Figure 1c) compare these modeled
/// cycle counts across compiler baselines and LLM vectorizations.
///
//===----------------------------------------------------------------------===//

#ifndef LV_INTERP_INTERP_H
#define LV_INTERP_INTERP_H

#include "vir/IR.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace lv {
namespace interp {

/// Per-operation cycle costs. The defaults approximate a modern x86 core:
/// one 8-lane vector operation costs about as much as one scalar operation,
/// which is where vectorization's ~8x headroom comes from.
struct CostModel {
  double ScalarAlu = 1.0;
  double ScalarMul = 3.0;
  double ScalarDiv = 20.0;
  double ScalarLoad = 1.0;
  double ScalarStore = 1.0;
  double VectorAlu = 1.0;
  double VectorMul = 2.0;
  double VectorLoad = 1.5;
  double VectorStore = 1.5;
  double VectorBlend = 1.0;
  double VectorPermute = 2.0;
  double VectorMaskMem = 2.0;
  double Branch = 1.0;
  double LoopIter = 1.5; ///< Per-iteration compare/increment/branch overhead.

  /// Cost of one instruction.
  double costOf(vir::Op O) const;
};

/// Concrete memory: one i32 buffer per VIR memory region.
struct MemoryImage {
  std::vector<std::vector<int32_t>> Regions;

  /// Sizes region \p Idx to \p N zero elements.
  void resize(size_t Idx, size_t N) {
    if (Regions.size() <= Idx)
      Regions.resize(Idx + 1);
    Regions[Idx].assign(N, 0);
  }
};

/// Interpreter limits and options.
struct ExecConfig {
  uint64_t MaxSteps = 50'000'000; ///< Fuel; exceeded => OutOfFuel.
  const CostModel *Costs = nullptr; ///< Null => no cycle accounting.
};

/// Execution outcome.
struct ExecResult {
  enum Status { Ok, Trap, OutOfFuel } St = Ok;
  std::string TrapMsg;
  uint64_t Steps = 0;
  double Cycles = 0.0;
  bool Returned = false;
  int32_t RetVal = 0;

  bool ok() const { return St == Ok; }
};

/// Runs \p F. \p ScalarArgs supplies values for the non-pointer parameters
/// in order; \p Mem supplies one buffer per *parameter* region (local-array
/// regions are allocated by the interpreter and appended to \p Mem).
ExecResult execute(const vir::VFunction &F,
                   const std::vector<int32_t> &ScalarArgs, MemoryImage &Mem,
                   const ExecConfig &Cfg = ExecConfig());

} // namespace interp
} // namespace lv

#endif // LV_INTERP_INTERP_H
