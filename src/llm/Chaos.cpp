//===- llm/Chaos.cpp - deterministic transport-fault injection ----------------===//

#include "llm/Chaos.h"

#include "obs/Metrics.h"
#include "support/Cancel.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <utility>

using namespace lv;
using namespace lv::llm;

namespace {

/// The decorator. Owns the inner client and one call counter; never
/// shared across threads (the LLMClient ownership contract), so the
/// counter needs no synchronization.
class ChaosClient : public LLMClient {
public:
  ChaosClient(std::unique_ptr<LLMClient> Inner, ChaosConfig Cfg,
              uint64_t TaskSeed)
      : Inner(std::move(Inner)), Cfg(std::move(Cfg)), TaskSeed(TaskSeed) {}

  Completion complete(const Prompt &P, uint64_t SampleIndex) override {
    uint64_t CI = CallIndex++;

    if (std::find(Cfg.TransientCallScript.begin(),
                  Cfg.TransientCallScript.end(),
                  CI) != Cfg.TransientCallScript.end()) {
      obs::counter("chaos.transient").inc();
      throw ClientError(
          format("injected transient client error (scripted, call %llu)",
                 static_cast<unsigned long long>(CI)),
          /*Transient=*/true);
    }

    // One RNG per call, keyed by (chaos seed, task seed, call index); the
    // draws happen in a fixed order regardless of which rates are zero,
    // so arming one fault mode never reshuffles another's schedule.
    Rng R(hashCombine(hashCombine(Cfg.ChaosSeed, TaskSeed), CI));
    bool Transient = R.chance(Cfg.TransientRate);
    bool Permanent = R.chance(Cfg.PermanentRate);
    bool Latency = R.chance(Cfg.LatencyRate);
    bool Truncate = R.chance(Cfg.TruncateRate);
    bool Garbage = R.chance(Cfg.GarbageRate);

    if (Latency && Cfg.LatencyNanos) {
      // Stalls like a saturated endpoint; aborts into the task's deadline
      // (TimedOut) instead of holding the worker for the full stall.
      obs::counter("chaos.latency").inc();
      support::cancellableSleepNanos(Cfg.LatencyNanos, "llm.chaos.latency");
    }
    if (Transient) {
      obs::counter("chaos.transient").inc();
      throw ClientError(
          format("injected transient client error (call %llu)",
                 static_cast<unsigned long long>(CI)),
          /*Transient=*/true);
    }
    if (Permanent) {
      obs::counter("chaos.permanent").inc();
      throw ClientError(
          format("injected permanent client error (call %llu)",
                 static_cast<unsigned long long>(CI)),
          /*Transient=*/false);
    }

    Completion C = Inner->complete(P, SampleIndex);
    if (Truncate) {
      obs::counter("chaos.truncate").inc();
      C.Source = C.Source.substr(0, C.Source.size() / 2);
      C.Rationale += " [chaos: truncated]";
    } else if (Garbage) {
      obs::counter("chaos.garbage").inc();
      C.Source = format("\x01\x02 chaos garbage payload (call %llu) \x03",
                        static_cast<unsigned long long>(CI));
      C.Rationale += " [chaos: garbage]";
    }
    return C;
  }

private:
  std::unique_ptr<LLMClient> Inner;
  ChaosConfig Cfg;
  uint64_t TaskSeed;
  uint64_t CallIndex = 0;
};

} // namespace

std::unique_ptr<LLMClient> lv::llm::wrapChaos(std::unique_ptr<LLMClient> Inner,
                                              const ChaosConfig &Cfg,
                                              uint64_t TaskSeed) {
  if (!Cfg.enabled())
    return Inner;
  return std::unique_ptr<LLMClient>(
      new ChaosClient(std::move(Inner), Cfg, TaskSeed));
}

ClientFactory lv::llm::chaosClientFactory(ClientFactory Inner,
                                          ChaosConfig Cfg) {
  if (!Inner)
    Inner = simulatedClientFactory();
  return [Inner, Cfg](uint64_t Seed) {
    return wrapChaos(Inner(Seed), Cfg, Seed);
  };
}
