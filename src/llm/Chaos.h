//===- llm/Chaos.h - deterministic transport-fault injection ----*- C++ -*-===//
///
/// \file
/// Seeded infrastructure-fault injection for LLM clients: a decorator that
/// wraps any `LLMClient` (or `ClientFactory`) and injects the failure
/// modes a real model endpoint exhibits — transient errors, permanent
/// errors, truncated or garbage completions, artificial latency — from a
/// schedule that is a pure function of `(ChaosSeed, TaskSeed, CallIndex)`.
///
/// Orthogonality: this layer models the *transport* failing; the semantic
/// fault catalog in llm/Faults.h models a healthy transport delivering
/// wrong code. The two compose — a chaos-wrapped SimulatedLLM still draws
/// its competence faults underneath.
///
/// Determinism and the retry contract: each wrapped client keeps one
/// monotonically increasing call index, and the fault draws for call i
/// depend only on (chaosSeed, taskSeed, i). The service retries a task on
/// the *same* client instance, so a retry advances past the consumed
/// faulty indices; because the inner client's completions are index-pure
/// (see LLMClient's contract), a task whose transient faults were fully
/// absorbed by retries replays the exact completion stream of a fault-free
/// run — the verdict-parity invariant bench_chaos_funnel gates. Truncation
/// and garbage faults deliberately break that parity (the FSM sees — and
/// must survive — a different completion), so the parity arm runs with
/// those rates at zero.
///
/// The analogous hook for persistent-store I/O faults is
/// `store::ChaosFileHooks` (store/Store.h); the failure taxonomy both feed
/// is documented in src/svc/README.md ("Failure model").
///
//===----------------------------------------------------------------------===//

#ifndef LV_LLM_CHAOS_H
#define LV_LLM_CHAOS_H

#include "llm/Client.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace lv {
namespace llm {

/// Fault schedule knobs. All rates are per-call Bernoulli probabilities
/// drawn in a fixed order (transient, permanent, latency, truncate,
/// garbage), so a given (ChaosSeed, TaskSeed, CallIndex) triple always
/// yields the same fault set regardless of which rates are zero.
struct ChaosConfig {
  uint64_t ChaosSeed = 0xC405;

  double TransientRate = 0; ///< Throw ClientError(Transient=true).
  double PermanentRate = 0; ///< Throw ClientError(Transient=false).
  double TruncateRate = 0;  ///< Deliver the front half of the completion.
  double GarbageRate = 0;   ///< Deliver non-code bytes.
  double LatencyRate = 0;   ///< Sleep LatencyNanos before completing.
  uint64_t LatencyNanos = 0;

  /// Test hook: explicit call indices that throw a transient error,
  /// overriding TransientRate for those indices. Lets the retry-contract
  /// tests place faults exactly (e.g. "first call fails, rest succeed").
  std::vector<uint64_t> TransientCallScript;

  /// Any fault mode armed?
  bool enabled() const {
    return TransientRate > 0 || PermanentRate > 0 || TruncateRate > 0 ||
           GarbageRate > 0 || LatencyRate > 0 || !TransientCallScript.empty();
  }
};

/// Wraps an already-built client with the chaos decorator. \p TaskSeed
/// keys the per-task schedule (the service passes taskSeed(seed, name),
/// so every task sees an independent deterministic schedule).
std::unique_ptr<LLMClient> wrapChaos(std::unique_ptr<LLMClient> Inner,
                                     const ChaosConfig &Cfg,
                                     uint64_t TaskSeed);

/// Decorates a factory: each client the inner factory builds is wrapped,
/// with the factory's seed argument as the task seed.
ClientFactory chaosClientFactory(ClientFactory Inner, ChaosConfig Cfg);

} // namespace llm
} // namespace lv

#endif // LV_LLM_CHAOS_H
