//===- llm/Client.cpp - simulated LLM client ----------------------------------===//

#include "llm/Client.h"

#include "deps/Analysis.h"
#include "llm/Vectorizer.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>

using namespace lv;
using namespace lv::llm;

LLMClient::~LLMClient() = default;

ClientFactory lv::llm::simulatedClientFactory() {
  return [](uint64_t Seed) -> std::unique_ptr<LLMClient> {
    return std::unique_ptr<LLMClient>(new SimulatedLLM(Seed));
  };
}

//===----------------------------------------------------------------------===//
// Competence model
//===----------------------------------------------------------------------===//

/// Analyzes a test's scalar source into loop features.
static deps::LoopAnalysis analyzeSource(const std::string &Source,
                                        bool &ParsedOk) {
  minic::ParseResult P = minic::parseFunction(Source);
  ParsedOk = P.ok();
  if (!P.ok())
    return deps::LoopAnalysis();
  // Analyze the goto-restructured form: what matters for difficulty is the
  // structure the model must reason about.
  return deps::analyzeFunction(*P.Fn);
}

Difficulty SimulatedLLM::classifyDifficulty(const std::string &Source) {
  bool Ok;
  deps::LoopAnalysis LA = analyzeSource(Source, Ok);
  if (!Ok || !LA.HasLoop)
    return Difficulty::Never;

  // Structural show-stoppers the paper's model never overcame (§4.1.3):
  // true recurrences, indirect/gather accesses, non-affine subscripts,
  // early exits, unclassifiable cross-iteration scalars, non-canonical or
  // strided loops.
  const deps::LoopShape &L = LA.inner();
  bool Blocked = !L.Canonical || L.Step != 1 || LA.HasIndirectAccess ||
                 LA.HasNonAffineAccess || LA.HasBreakOrReturn;
  for (const deps::Dependence &D : LA.Deps) {
    if (D.LoopCarried && D.K == deps::Dependence::Output)
      Blocked = true; // overlapping writes: widening reorders them
    if (D.LoopCarried && !(D.DistanceKnown && D.Distance > 0))
      Blocked = true;
  }
  int GuardedInductions = 0, PlainInductions = 0;
  for (const deps::ScalarUpdate &U : LA.Scalars) {
    if (U.K == deps::ScalarUpdate::Other)
      Blocked = true;
    // Wraparound scalars need peeling: resolvable chains are hard-but-
    // possible (s291/s292), unresolved ones block.
    if (U.K == deps::ScalarUpdate::Wraparound && (U.Step < 1 || U.Step > 4))
      Blocked = true;
    if (U.K == deps::ScalarUpdate::Induction) {
      // Guarded counters never used as subscripts are masked accumulators.
      if (U.GuardedUpdate && !LA.usedInSubscript(U.Name))
        continue;
      ++(U.GuardedUpdate ? GuardedInductions : PlainInductions);
    }
  }
  if (GuardedInductions == 1)
    Blocked = true; // one-time / conditional induction (paper §4.1.3)
  if (Blocked)
    return Difficulty::Never;

  // Remaining tests: difficulty by feature weight.
  int Score = 0;
  if (LA.HasGoto)
    Score += 2;
  if (LA.HasControlFlow)
    Score += 1;
  if (LA.isNested())
    Score += 1;
  if (PlainInductions > 0 || GuardedInductions > 0)
    Score += 1;
  bool SpuriousDep = false;
  for (const deps::Dependence &D : LA.Deps)
    if (D.MayBeSpurious)
      SpuriousDep = true;
  if (SpuriousDep)
    Score += 1;
  if (LA.hasReduction())
    Score += 1;
  for (const deps::ScalarUpdate &U : LA.Scalars)
    if (U.K == deps::ScalarUpdate::Wraparound)
      Score += 2;
  if (Score >= 3)
    return Difficulty::Hard;
  if (Score >= 1)
    return Difficulty::Medium;
  return Difficulty::Easy;
}

double SimulatedLLM::successProbability(Difficulty D) {
  // Tuned so that checksum-plausibility over the TSVC feature mix lands
  // near the paper's Table 2 (72 / 107 / 125 at k = 1 / 10 / 100).
  switch (D) {
  case Difficulty::Easy: return 0.86;
  case Difficulty::Medium: return 0.42;
  case Difficulty::Hard: return 0.08;
  case Difficulty::Never: return 0.0;
  }
  return 0.0;
}

//===----------------------------------------------------------------------===//
// Completion
//===----------------------------------------------------------------------===//

/// Injects a compile error into otherwise-valid output text.
static std::string corruptSource(const std::string &Src, Rng &R) {
  switch (R.below(3)) {
  case 0: {
    // Misspell an intrinsic.
    std::string Out = Src;
    size_t Pos = Out.find("_mm256_");
    if (Pos != std::string::npos) {
      Out.replace(Pos, 7, "_mm256x_");
      return Out;
    }
    return "int " + Out; // fallthrough corruption
  }
  case 1: {
    // Drop the last closing brace.
    std::string Out = Src;
    size_t Pos = Out.rfind('}');
    if (Pos != std::string::npos)
      Out.erase(Pos, 1);
    return Out;
  }
  default: {
    // Reference an undeclared helper variable.
    std::string Out = Src;
    size_t Pos = Out.find('{');
    if (Pos != std::string::npos)
      Out.insert(Pos + 1, "\n  tmp_vec = _mm256_setzero_si256();");
    return Out;
  }
  }
}

/// Faults applicable given the loop's features.
static std::vector<Fault> applicableFaults(const deps::LoopAnalysis &LA) {
  std::vector<Fault> Out;
  bool CondReads = false, CondWrites = false;
  for (const deps::ArrayAccess &A : LA.Accesses) {
    if (A.Conditional && !A.IsWrite)
      CondReads = true;
    if (A.Conditional && A.IsWrite)
      CondWrites = true;
  }
  if (CondReads)
    Out.push_back(Fault::SpeculativeLoad);
  if (CondWrites) {
    Out.push_back(Fault::UnsafeBlendStore);
    Out.push_back(Fault::UnsafeHoist);
  }
  for (const deps::ScalarUpdate &U : LA.Scalars) {
    if (U.K == deps::ScalarUpdate::Induction)
      Out.push_back(Fault::WrongInductionInit);
    if (U.K == deps::ScalarUpdate::Reduction)
      Out.push_back(Fault::WrongReductionInit);
  }
  for (const deps::Dependence &D : LA.Deps)
    if (D.MayBeSpurious)
      Out.push_back(Fault::OffByOneOffset);
  Out.push_back(Fault::BadBound);
  if (LA.Accesses.size() > 2)
    Out.push_back(Fault::DropStatement);
  return Out;
}

/// True if any failure feedback exposes the given fault class (the tester
/// agent's messages contain the distinguishing evidence).
static bool feedbackExposes(const std::vector<std::string> &Feedback,
                            Fault F) {
  auto contains = [&](const char *Needle) {
    for (const std::string &Msg : Feedback)
      if (Msg.find(Needle) != std::string::npos)
        return true;
    return false;
  };
  switch (F) {
  case Fault::BadBound:
    return contains("out-of-bounds") || contains("failed at");
  case Fault::CompileError:
    return contains("error:") || contains("expected");
  default:
    // Any concrete output mismatch teaches the model to recheck its
    // per-lane values, suppressing value-level faults.
    return contains("mismatch") || contains("differs");
  }
}

Completion SimulatedLLM::complete(const Prompt &P, uint64_t SampleIndex) {
  Completion Out;

  // Deterministic stream per (seed, prompt, sample).
  uint64_t H = hashCombine(Seed, hashString(P.ScalarSource.c_str()));
  H = hashCombine(H, SampleIndex + 1);
  for (const std::string &FB : P.FailureFeedback)
    H = hashCombine(H, hashString(FB.c_str()));
  Rng R(H);

  bool ParsedOk;
  deps::LoopAnalysis LA = analyzeSource(P.ScalarSource, ParsedOk);
  if (!ParsedOk) {
    Out.Source = P.ScalarSource; // echo back; downstream reports failure
    Out.Rationale = "could not parse the input";
    return Out;
  }

  Difficulty D = classifyDifficulty(P.ScalarSource);
  double PSuccess = successProbability(D);

  // Dependence feedback makes dependence-sensitive tests easier.
  if (!P.DependenceFeedback.empty())
    PSuccess = std::min(0.97, PSuccess * 2.0 + 0.06);
  // Repair loop: every round of failure feedback raises focus.
  if (!P.FailureFeedback.empty())
    PSuccess = std::min(0.97, PSuccess + 0.35 * static_cast<double>(
                                              P.FailureFeedback.size()));
  // Temperature widens the output distribution: more wrong samples.
  PSuccess *= std::max(0.25, 1.25 - 0.25 * P.Temperature);

  // Compile-error channel: structurally gnarly tests (gotos, gathers,
  // flattened multi-dimensional subscripts) often yield uncompilable
  // completions; Table 2's "Cannot compile" row decays from 15 at k=1
  // to 0 at k=100.
  double PCompileErr = 0.012;
  if (LA.HasGoto || LA.Nest.size() > 2)
    PCompileErr = 0.62;
  else if (D == Difficulty::Never &&
           (LA.HasIndirectAccess || LA.HasNonAffineAccess))
    PCompileErr = 0.24;
  if (feedbackExposes(P.FailureFeedback, Fault::CompileError))
    PCompileErr *= 0.2;

  FaultPlan Plan;
  bool WantCorrect = D != Difficulty::Never && R.chance(PSuccess);
  if (!WantCorrect && D != Difficulty::Never) {
    std::vector<Fault> Candidates = applicableFaults(LA);
    // Remove fault classes the feedback already exposed.
    Candidates.erase(std::remove_if(Candidates.begin(), Candidates.end(),
                                    [&](Fault F) {
                                      return feedbackExposes(
                                          P.FailureFeedback, F);
                                    }),
                     Candidates.end());
    if (Candidates.empty()) {
      WantCorrect = true; // nothing left to get wrong
    } else {
      Plan.Active.push_back(Candidates[R.below(Candidates.size())]);
      if (R.chance(0.2) && Candidates.size() > 1)
        Plan.Active.push_back(Candidates[R.below(Candidates.size())]);
    }
  }

  GenResult G = vectorizeFunction(
      *minic::parseFunction(P.ScalarSource).Fn, Plan,
      /*ForceNaive=*/D == Difficulty::Never);
  if (!G.Fn) {
    // The engine had no applicable strategy: the model emits a lightly
    // edited copy of the scalar code claiming vectorization; the tester
    // will reject it (signature-preserving, semantics-preserving, but not
    // vectorized — counted as a failed candidate upstream).
    minic::ParseResult PR = minic::parseFunction(P.ScalarSource);
    Out.Source = "#include <immintrin.h>\n" + minic::printFunction(*PR.Fn);
    Out.Rationale = "no-strategy fallback (echoed scalar code)";
    return Out;
  }

  std::string Text = "#include <immintrin.h>\n" + minic::printFunction(*G.Fn);
  if (R.chance(PCompileErr)) {
    Out.Source = corruptSource(Text, R);
    Out.Rationale = format("strategy=%s faults=compile-error",
                           G.Strategy.c_str());
    return Out;
  }
  Out.Source = std::move(Text);
  std::string FaultsDesc;
  for (Fault F : Plan.Active)
    FaultsDesc += std::string(FaultsDesc.empty() ? "" : ",") + faultName(F);
  Out.Rationale = format("strategy=%s faults=%s", G.Strategy.c_str(),
                         FaultsDesc.empty() ? "none" : FaultsDesc.c_str());
  return Out;
}
