//===- llm/Client.h - simulated LLM client ----------------------*- C++ -*-===//
///
/// \file
/// The LLM interface of LLM-Vectorizer and its simulated implementation.
///
/// The paper's tool holds a GPT-4 endpoint behind an agent abstraction; the
/// reproduction substitutes `SimulatedLLM`, which combines
///
///   (a) the rule-based AVX2 vectorizer (llm/Vectorizer.h) — the model's
///       "capability", and
///   (b) a seeded stochastic *competence model* — the model's reliability:
///       each completion draws success/failure from a per-test difficulty
///       derived from loop features, and failures materialize as faults
///       from the paper's observed error catalog (llm/Faults.h).
///
/// Determinism: completion k for a given prompt is a pure function of
/// (seed, prompt text, k), so Table 2 / Figure 5 / the FSM experiments are
/// exactly reproducible. Feedback in the prompt (dependence remarks,
/// failing I/O examples) raises the success probability and suppresses the
/// fault classes the feedback exposes — the mechanism behind the paper's
/// multi-agent repair results (§4.4).
///
//===----------------------------------------------------------------------===//

#ifndef LV_LLM_CLIENT_H
#define LV_LLM_CLIENT_H

#include "llm/Faults.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace lv {
namespace llm {

/// A request to the model.
struct Prompt {
  std::string ScalarSource;        ///< The C function to vectorize.
  std::string DependenceFeedback;  ///< Clang-style remarks ("" = none).
  std::vector<std::string> FailureFeedback; ///< Tester-agent reports.
  double Temperature = 1.0;
};

/// A model completion.
struct Completion {
  std::string Source;    ///< The "model output": C code text.
  std::string Rationale; ///< Transcript note (strategy + injected faults).
};

/// Infrastructure failure of a client call — the endpoint equivalent of a
/// 5xx / connection reset (Transient: worth retrying) or a 4xx / auth
/// failure (permanent: retrying cannot help). Orthogonal to the *semantic*
/// fault catalog in llm/Faults.h, which models wrong completions from a
/// healthy endpoint. The vectorization service retries transient errors
/// with deterministic backoff and classifies both kinds into the
/// Outcome failure taxonomy (src/svc/README.md "Failure model");
/// llm/Chaos.h injects them deterministically for the chaos harness.
class ClientError : public std::runtime_error {
public:
  ClientError(const std::string &Msg, bool Transient)
      : std::runtime_error(Msg), Transient(Transient) {}

  bool Transient; ///< True when a retry may succeed.
};

/// Abstract LLM endpoint.
///
/// Ownership/threading contract: a client instance is owned by exactly one
/// task at a time and is never shared across threads — the vectorization
/// service constructs one client per task through a ClientFactory.
/// Implementations therefore need no internal locking, but distinct
/// instances built from the same seed must produce identical streams
/// (complete() is a pure function of (seed, prompt, sample index)).
class LLMClient {
public:
  virtual ~LLMClient();

  /// Produces completion number \p SampleIndex for \p P.
  virtual Completion complete(const Prompt &P, uint64_t SampleIndex) = 0;
};

/// Builds a fresh client for one task from the request's seed. The default
/// factory (simulatedClientFactory) yields SimulatedLLM; swap in a factory
/// producing remote-endpoint clients to point the service at a real model.
using ClientFactory =
    std::function<std::unique_ptr<LLMClient>(uint64_t Seed)>;

/// Factory for the paper-reproduction client: SimulatedLLM(Seed).
ClientFactory simulatedClientFactory();

/// Difficulty tier assigned to a test by the competence model.
enum class Difficulty : uint8_t { Easy, Medium, Hard, Never };

/// The simulated GPT-4.
class SimulatedLLM : public LLMClient {
public:
  explicit SimulatedLLM(uint64_t Seed) : Seed(Seed) {}

  Completion complete(const Prompt &P, uint64_t SampleIndex) override;

  /// Exposed for tests/benches: the tier the competence model assigns.
  static Difficulty classifyDifficulty(const std::string &ScalarSource);

  /// Per-completion success probability for a tier (before feedback).
  static double successProbability(Difficulty D);

private:
  uint64_t Seed;
};

} // namespace llm
} // namespace lv

#endif // LV_LLM_CLIENT_H
