//===- llm/Faults.h - fault catalog for the simulated LLM ------*- C++ -*-===//
///
/// \file
/// The catalog of characteristic mistakes the simulated model can inject
/// while vectorizing. Every entry is taken from the paper's qualitative
/// findings: the s453 first-attempt induction bug (§4.4.2), the s124
/// speculative load (§3.1/Fig. 4), unsafe hoisting and dependence mistakes
/// (§4.1.3), and the "Cannot compile" row of Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef LV_LLM_FAULTS_H
#define LV_LLM_FAULTS_H

#include <cstdint>
#include <vector>

namespace lv {
namespace llm {

/// One injectable mistake.
enum class Fault : uint8_t {
  None,
  CompileError,       ///< Misspelled intrinsic / missing declaration.
  WrongInductionInit, ///< Broadcast of the scalar start instead of a lane
                      ///< ramp — exactly the paper's s453 first attempt.
  SpeculativeLoad,    ///< Plain loads for conditionally-read arrays — the
                      ///< s124 UB that only symbolic verification catches.
  UnsafeBlendStore,   ///< load+blend+store instead of a masked store for a
                      ///< conditionally-written array.
  BadBound,           ///< `i < E` instead of `i <= E - 8`: the last vector
                      ///< iteration overruns.
  OffByOneOffset,     ///< Drops a +1/-1 subscript offset (dependence slip).
  WrongReductionInit, ///< Accumulator seeded with garbage instead of zero.
  UnsafeHoist,        ///< Conditional statement hoisted out of its guard.
  DropStatement,      ///< One body statement silently dropped.
};

/// The set of faults active for one completion.
struct FaultPlan {
  std::vector<Fault> Active;

  bool has(Fault F) const {
    for (Fault A : Active)
      if (A == F)
        return true;
    return false;
  }
  bool clean() const { return Active.empty(); }
};

/// Short mnemonic for transcripts/tests.
const char *faultName(Fault F);

} // namespace llm
} // namespace lv

#endif // LV_LLM_FAULTS_H
