//===- llm/Resilience.cpp - breaker + hedging client decorators --------------===//

#include "llm/Resilience.h"

#include "obs/Metrics.h"
#include "support/Cancel.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

using namespace lv;
using namespace lv::llm;

namespace {

/// Circuit-breaker admission over an inner client. The breaker is the one
/// deliberately shared piece of the failure path (per-service); the inner
/// client keeps the one-task ownership contract.
class BreakerClient : public LLMClient {
public:
  BreakerClient(std::unique_ptr<LLMClient> Inner,
                support::CircuitBreaker *Breaker)
      : Inner(std::move(Inner)), Breaker(Breaker) {}

  Completion complete(const Prompt &P, uint64_t SampleIndex) override {
    if (!Breaker->admit()) {
      obs::counter("llm.breaker_rejected").inc();
      // Transient: the open state is expected to clear (the reject
      // countdown leads to a probe), so the retry machinery applies.
      throw ClientError("circuit breaker open", /*Transient=*/true);
    }
    try {
      Completion C = Inner->complete(P, SampleIndex);
      Breaker->onSuccess();
      return C;
    } catch (const ClientError &) {
      Breaker->onFailure();
      throw;
    } catch (...) {
      // Cancellation (or any non-client fault) says nothing about the
      // backend's health; just release a held probe slot.
      Breaker->onAbandoned();
      throw;
    }
  }

private:
  std::unique_ptr<LLMClient> Inner;
  support::CircuitBreaker *Breaker;
};

/// One arm's result in a hedged race.
struct ArmResult {
  bool Ok = false;
  Completion C;
  std::exception_ptr Err;
};

/// Hedged completion: late calls race the primary (inline) against the
/// secondary (helper thread); first successful arrival wins and cancels
/// the loser through per-arm tokens parented to the task's token.
class HedgeClient : public LLMClient {
public:
  HedgeClient(std::unique_ptr<LLMClient> Primary,
              std::unique_ptr<LLMClient> Secondary, uint64_t HedgeAfterCalls)
      : Primary(std::move(Primary)), Secondary(std::move(Secondary)),
        HedgeAfter(HedgeAfterCalls) {}

  Completion complete(const Prompt &P, uint64_t SampleIndex) override {
    uint64_t CI = Calls++;
    if (CI < HedgeAfter)
      return Primary->complete(P, SampleIndex);

    obs::counter("llm.hedges").inc();
    support::CancelToken *TaskTok = support::currentCancelToken();
    support::CancelToken PrimTok(TaskTok), SecTok(TaskTok);

    ArmResult Prim, Sec;
    std::mutex M;
    int Winner = -1; // 0 = primary, 1 = secondary; first success claims it.

    auto runArm = [&](LLMClient *C, support::CancelToken *Tok, ArmResult &R,
                      int Idx, support::CancelToken *Other) {
      support::CancelScope Scope(Tok);
      try {
        R.C = C->complete(P, SampleIndex);
        R.Ok = true;
      } catch (...) {
        R.Err = std::current_exception();
      }
      std::lock_guard<std::mutex> L(M);
      if (R.Ok && Winner < 0) {
        Winner = Idx;
        // The race is decided; the loser only wastes budget now.
        Other->requestCancel();
      }
    };

    std::thread T(
        [&] { runArm(Secondary.get(), &SecTok, Sec, 1, &PrimTok); });
    runArm(Primary.get(), &PrimTok, Prim, 0, &SecTok);
    T.join();

    if (Winner == 1) {
      obs::counter("llm.hedge_wins").inc();
      return Sec.C;
    }
    if (Winner == 0)
      return Prim.C;
    // Both arms failed. The primary's error is the canonical one: a task-
    // deadline cancellation surfaces there, and under scripted chaos it is
    // the arm whose fault schedule tests pin.
    std::rethrow_exception(Prim.Err);
  }

private:
  std::unique_ptr<LLMClient> Primary;
  std::unique_ptr<LLMClient> Secondary;
  uint64_t HedgeAfter;
  uint64_t Calls = 0;
};

} // namespace

std::unique_ptr<LLMClient> llm::wrapBreaker(std::unique_ptr<LLMClient> Inner,
                                            support::CircuitBreaker *Breaker) {
  if (!Breaker || !Breaker->config().Enabled)
    return Inner;
  return std::make_unique<BreakerClient>(std::move(Inner), Breaker);
}

std::unique_ptr<LLMClient> llm::wrapHedge(std::unique_ptr<LLMClient> Primary,
                                          std::unique_ptr<LLMClient> Secondary,
                                          uint64_t HedgeAfterCalls) {
  if (!Secondary || HedgeAfterCalls == 0)
    return Primary;
  return std::make_unique<HedgeClient>(std::move(Primary),
                                       std::move(Secondary), HedgeAfterCalls);
}
