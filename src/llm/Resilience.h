//===- llm/Resilience.h - breaker + hedging client decorators ---*- C++ -*-===//
///
/// \file
/// Serving-policy decorators over the `LLMClient` seam, composing with
/// `llm::wrapChaos` the same way chaos composes with any inner client:
///
///   * `wrapBreaker` gates every call through a shared
///     `support::CircuitBreaker`. A rejected call throws a *transient*
///     `ClientError` without touching the backend — the service's
///     existing retry/classification machinery then treats an open
///     breaker exactly like a fast-failing endpoint (retries spin the
///     breaker's reject countdown toward the half-open probe, and
///     exhaustion classifies as ClientTransient). The breaker learns from
///     the calls it admits: a success closes, client faults count toward
///     the trip threshold.
///
///   * `wrapHedge` races a second, independent client against the
///     primary for late calls in a task: once a task's per-client call
///     count reaches `HedgeAfterCalls`, each completion is issued on both
///     arms concurrently and the first arrival wins. The trigger is a
///     call *count*, not a latency threshold, for the same reason the
///     breaker is — schedule-independence. Because completions are
///     index-pure — both arms return byte-identical Sources on success —
///     hedging changes latency, never content, as long as content faults
///     (truncation/garbage) are off; see svc/README.md "Overload &
///     recovery" for the determinism argument. The loser is cancelled
///     through a CancelToken parented to the task's token, so a hedged
///     task still honours its deadline.
///
/// Both decorators preserve the one-task-one-client ownership contract:
/// the breaker pointer is the only shared state, and it is internally
/// locked.
///
//===----------------------------------------------------------------------===//

#ifndef LV_LLM_RESILIENCE_H
#define LV_LLM_RESILIENCE_H

#include "llm/Client.h"
#include "support/Breaker.h"

#include <memory>

namespace lv {
namespace llm {

/// Decorates \p Inner with circuit-breaker admission. \p Breaker is shared
/// per-service state and must outlive the returned client. Rejected calls
/// throw ClientError("circuit breaker open", Transient=true) and count in
/// the `llm.breaker_rejected` counter.
std::unique_ptr<LLMClient> wrapBreaker(std::unique_ptr<LLMClient> Inner,
                                       support::CircuitBreaker *Breaker);

/// Decorates \p Primary with hedging: calls numbered >= \p HedgeAfterCalls
/// (per-client counter, first call is 0) run the identical completion on
/// \p Secondary from a helper thread, racing the inline primary. The first
/// arm to finish wins; when both succeed the first arrival is kept (the
/// arms are index-pure, so the bytes agree). If the winning arm failed but
/// the other succeeded, the success is kept — a hedge absorbs one arm's
/// transient fault. The losing arm is cancelled via a CancelToken parented
/// to the caller's current token. Hedged calls and secondary-arm wins land
/// in `llm.hedges` / `llm.hedge_wins`.
std::unique_ptr<LLMClient> wrapHedge(std::unique_ptr<LLMClient> Primary,
                                     std::unique_ptr<LLMClient> Secondary,
                                     uint64_t HedgeAfterCalls);

} // namespace llm
} // namespace lv

#endif // LV_LLM_RESILIENCE_H
