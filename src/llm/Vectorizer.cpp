//===- llm/Vectorizer.cpp - rule-based AVX2 vectorizer -----------------------===//

#include "llm/Vectorizer.h"

#include "minic/GotoElim.h"
#include "minic/Intrinsics.h"
#include "minic/Printer.h"
#include "support/Format.h"

#include <map>
#include <set>

using namespace lv;
using namespace lv::llm;
using minic::BinOp;
using minic::Declarator;
using minic::Expr;
using minic::ExprPtr;
using minic::Function;
using minic::FunctionPtr;
using minic::Stmt;
using minic::StmtPtr;
using minic::Type;
using minic::UnOp;

const char *lv::llm::faultName(Fault F) {
  switch (F) {
  case Fault::None: return "none";
  case Fault::CompileError: return "compile-error";
  case Fault::WrongInductionInit: return "wrong-induction-init";
  case Fault::SpeculativeLoad: return "speculative-load";
  case Fault::UnsafeBlendStore: return "unsafe-blend-store";
  case Fault::BadBound: return "bad-bound";
  case Fault::OffByOneOffset: return "off-by-one-offset";
  case Fault::WrongReductionInit: return "wrong-reduction-init";
  case Fault::UnsafeHoist: return "unsafe-hoist";
  case Fault::DropStatement: return "drop-statement";
  }
  return "?";
}

namespace {

/// Expression-building shorthands.
ExprPtr var(const std::string &N) { return Expr::makeVarRef(N); }
ExprPtr lit(int64_t V) { return Expr::makeIntLit(V); }
ExprPtr call(const char *N, std::vector<ExprPtr> Args) {
  return Expr::makeCall(N, std::move(Args));
}
ExprPtr call1(const char *N, ExprPtr A) {
  std::vector<ExprPtr> V;
  V.push_back(std::move(A));
  return Expr::makeCall(N, std::move(V));
}
ExprPtr call2(const char *N, ExprPtr A, ExprPtr B) {
  std::vector<ExprPtr> V;
  V.push_back(std::move(A));
  V.push_back(std::move(B));
  return Expr::makeCall(N, std::move(V));
}
ExprPtr call3(const char *N, ExprPtr A, ExprPtr B, ExprPtr C) {
  std::vector<ExprPtr> V;
  V.push_back(std::move(A));
  V.push_back(std::move(B));
  V.push_back(std::move(C));
  return Expr::makeCall(N, std::move(V));
}
ExprPtr set1(ExprPtr A) { return call1("_mm256_set1_epi32", std::move(A)); }
/// (__m256i *)&base[idx]
ExprPtr vecPtrTo(const std::string &Array, ExprPtr Idx) {
  return Expr::makeCast(
      Type::VecPtr,
      Expr::makeUnary(UnOp::AddrOf,
                      Expr::makeIndex(var(Array), std::move(Idx))));
}
/// &base[idx] (int*)
ExprPtr intPtrTo(const std::string &Array, ExprPtr Idx) {
  return Expr::makeUnary(UnOp::AddrOf,
                         Expr::makeIndex(var(Array), std::move(Idx)));
}

/// The strategy-driven generator for one function.
class Generator {
public:
  Generator(const Function &Orig, const FaultPlan &Plan, bool ForceNaive)
      : Plan(Plan), ForceNaive(ForceNaive) {
    Clone = Orig.clone();
  }

  GenResult run();

private:
  FunctionPtr Clone;
  const FaultPlan &Plan;
  bool ForceNaive;
  deps::LoopAnalysis LA;

  // Generation state for the current vector iteration.
  std::vector<StmtPtr> *Emit = nullptr; ///< Current statement sink.
  std::map<std::string, std::string> VecTemps; ///< body-local -> vec name.
  /// Preloaded / forwarded vector names per (array, lane-0 subscript text).
  std::map<std::pair<std::string, std::string>, std::string> AvailVecs;
  std::set<std::string> WrittenArrays;
  std::map<std::string, int64_t> InductionStep; ///< name -> step.
  std::set<std::string> InductionUpdated; ///< update already emitted/passed.
  std::map<std::string, std::string> ReductionAcc; ///< scalar -> acc name.
  /// Wraparound scalars: at body entry of iteration i the variable holds
  /// i - depth (s291's im1 has depth 1, s292's im2 depth 2). Handled by
  /// peeling `depth` iterations and substituting i - depth.
  std::map<std::string, int64_t> WrapDepth;
  int TempCounter = 0;
  bool Failed = false;

  std::string fresh(const char *Base) {
    return format("%s_v%d", Base, TempCounter++);
  }
  void fail() { Failed = true; }

  /// Counts VarRef occurrences of \p Name in the statement subtree (each
  /// `x += e` update contributes one, as its LHS).
  static int countVarRefs(const Stmt &S, const std::string &Name) {
    int N = 0;
    std::vector<const Expr *> Exprs;
    std::vector<const Stmt *> Work = {&S};
    while (!Work.empty()) {
      const Stmt *W = Work.back();
      Work.pop_back();
      if (W->Cond)
        Exprs.push_back(W->Cond.get());
      if (W->StepExpr)
        Exprs.push_back(W->StepExpr.get());
      for (const Declarator &D : W->Decls)
        if (D.Init)
          Exprs.push_back(D.Init.get());
      if (W->InitStmt)
        Work.push_back(W->InitStmt.get());
      for (const StmtPtr &Sub : W->Body)
        if (Sub)
          Work.push_back(Sub.get());
    }
    while (!Exprs.empty()) {
      const Expr *E = Exprs.back();
      Exprs.pop_back();
      if (E->K == Expr::VarRef && E->Name == Name)
        ++N;
      for (const ExprPtr &Kid : E->Kids)
        if (Kid)
          Exprs.push_back(Kid.get());
    }
    return N;
  }

  /// True when the expression mentions no lane-varying variable (iterator,
  /// induction, or vectorized temp).
  bool isInvariantExpr(const Expr &E) const {
    if (E.K == Expr::VarRef) {
      if (E.Name == LA.inner().Iter || InductionStep.count(E.Name) ||
          VecTemps.count(E.Name))
        return false;
    }
    for (const ExprPtr &Kid : E.Kids)
      if (Kid && !isInvariantExpr(*Kid))
        return false;
    return true;
  }

  void emitStmt(StmtPtr S) { Emit->push_back(std::move(S)); }
  void emitVecDecl(const std::string &Name, ExprPtr Init) {
    emitStmt(Stmt::makeDecl(Type::M256i, Name, std::move(Init)));
  }

  bool analyzeBlockers();
  /// Lane-0 subscript for the vectorized loop: the original subscript with
  /// post-update induction variables shifted by their step.
  ExprPtr laneBase(const Expr &Subscript);
  std::string subscriptKey(const Expr &Subscript);
  ExprPtr vecExpr(const Expr &E, const std::string &Mask,
                  bool CondContext);
  ExprPtr vecLoad(const std::string &Array, const Expr &Subscript,
                  const std::string &Mask, bool CondContext);
  ExprPtr vecCond(const Expr &Cond, const std::string &Mask);
  void vecStmt(const Stmt &S, const std::string &Mask);
  void vecAssign(const Expr &E, const std::string &Mask);

  StmtPtr buildVectorLoop();
};

} // namespace

//===----------------------------------------------------------------------===//
// Blocker analysis
//===----------------------------------------------------------------------===//

bool Generator::analyzeBlockers() {
  if (!LA.HasLoop)
    return false;
  const deps::LoopShape &L = LA.inner();
  if (!L.Canonical || L.Step != 1 || !L.End.Valid)
    return false;
  if (LA.HasIndirectAccess || LA.HasNonAffineAccess || LA.HasBreakOrReturn)
    return false;
  for (const deps::ArrayAccess &A : LA.Accesses) {
    if (!A.Sub.Valid)
      return false;
    if (A.Sub.Coef == 1)
      continue;
    // Loop-invariant reads (a[0], a[m]) broadcast safely when no write to
    // the same array can alias them within the iteration space.
    if (A.Sub.Coef == 0 && !A.IsWrite) {
      bool Safe = true;
      for (const deps::ArrayAccess &W : LA.Accesses)
        if (W.IsWrite && W.Array == A.Array &&
            !(W.Sub.Valid && W.Sub.Coef == 1 && L.Start > A.Sub.Offset))
          Safe = false;
      if (Safe)
        continue;
    }
    return false;
  }
  // True recurrences: loop-carried dependence with non-positive distance.
  // Loop-carried *output* dependences (overlapping writes, s244-style) are
  // never safe for widening regardless of sign: the block's stores
  // interleave differently than the scalar iterations'.
  for (const deps::Dependence &D : LA.Deps) {
    if (D.LoopCarried && D.K == deps::Dependence::Output)
      return false;
    if (D.LoopCarried && !(D.DistanceKnown && D.Distance > 0))
      return false;
  }
  // Scalars: inductions ok (incl. the guarded-in-both-arms pattern);
  // reductions with += ok; everything else blocks.
  std::map<std::string, std::vector<const deps::ScalarUpdate *>> ByName;
  for (const deps::ScalarUpdate &U : LA.Scalars)
    ByName[U.Name].push_back(&U);
  for (auto &[Name, Us] : ByName) {
    const deps::ScalarUpdate &U0 = *Us[0];
    if (U0.K == deps::ScalarUpdate::Induction) {
      // A guarded `x += c` that is never used as a subscript is really a
      // masked accumulator (vcnt-style): vectorize as a reduction.
      if (U0.GuardedUpdate && Us.size() == 1 &&
          !LA.usedInSubscript(Name)) {
        ReductionAcc[Name] = "acc_" + Name;
        continue;
      }
      bool Uniform = true;
      for (const deps::ScalarUpdate *U : Us)
        if (U->K != deps::ScalarUpdate::Induction || U->Step != U0.Step)
          Uniform = false;
      // A single *conditional* update used for packing is the paper's
      // one-time-dependence bucket: unsupported.
      if (!Uniform || (Us.size() == 1 && U0.GuardedUpdate) || Us.size() > 2)
        return false;
      InductionStep[Name] = U0.Step;
      continue;
    }
    if (U0.K == deps::ScalarUpdate::Reduction) {
      // Guarded reductions become masked adds; several updates to the same
      // accumulator simply add into the same vector accumulator. A
      // reduction variable that is *read* anywhere else in the body
      // (prefix-sum, s3112) is a true recurrence: reject.
      bool AllRed = true;
      for (const deps::ScalarUpdate *U : Us)
        if (U->K != deps::ScalarUpdate::Reduction)
          AllRed = false;
      if (!AllRed || countVarRefs(*L.Loop->forBody(), Name) >
                         static_cast<int>(Us.size()))
        return false;
      ReductionAcc[Name] = "acc_" + Name;
      continue;
    }
    if (U0.K == deps::ScalarUpdate::Wraparound && Us.size() == 1 &&
        !U0.GuardedUpdate && U0.Step >= 1 && U0.Step <= 4) {
      // Resolved by the dependence analysis: entry value == i - Step.
      WrapDepth[Name] = U0.Step;
      continue;
    }
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Expression translation
//===----------------------------------------------------------------------===//

ExprPtr Generator::laneBase(const Expr &Subscript) {
  // Clone the subscript, shifting post-update induction variables.
  ExprPtr C = Subscript.clone();
  // Walk and rewrite VarRefs.
  std::vector<Expr *> Work = {C.get()};
  while (!Work.empty()) {
    Expr *E = Work.back();
    Work.pop_back();
    if (E->K == Expr::VarRef) {
      auto It = InductionStep.find(E->Name);
      if (It != InductionStep.end() && InductionUpdated.count(E->Name)) {
        // v -> (v + step): the value after this iteration's update.
        ExprPtr Repl = Expr::makeBinary(BinOp::Add, var(E->Name),
                                        lit(It->second));
        *E = std::move(*Repl);
        continue;
      }
    }
    for (ExprPtr &Kid : E->Kids)
      if (Kid)
        Work.push_back(Kid.get());
  }
  return C;
}

std::string Generator::subscriptKey(const Expr &Subscript) {
  return minic::printExpr(*laneBase(Subscript));
}

ExprPtr Generator::vecLoad(const std::string &Array, const Expr &Subscript,
                           const std::string &Mask, bool CondContext) {
  std::string Key = subscriptKey(Subscript);
  auto It = AvailVecs.find({Array, Key});
  if (It != AvailVecs.end())
    return var(It->second);
  ExprPtr Base = laneBase(Subscript);
  if (Plan.has(Fault::OffByOneOffset) && Base->K == Expr::Binary &&
      Base->BOp == BinOp::Add && Base->Kids[1]->K == Expr::IntLit &&
      Base->Kids[1]->Value != 0) {
    // Dependence slip: forget the offset.
    Base = Base->Kids[0]->clone();
  }
  bool UseMask = CondContext && !Mask.empty() &&
                 !Plan.has(Fault::SpeculativeLoad);
  ExprPtr LoadE =
      UseMask
          ? call2("_mm256_maskload_epi32", intPtrTo(Array, std::move(Base)),
                  var(Mask))
          : call1("_mm256_loadu_si256", vecPtrTo(Array, std::move(Base)));
  std::string Name = fresh((Array + "_vec").c_str());
  emitVecDecl(Name, std::move(LoadE));
  // Masked loads are context-specific: do not cache them for other paths.
  if (!UseMask)
    AvailVecs[{Array, Key}] = Name;
  return var(Name);
}

ExprPtr Generator::vecCond(const Expr &Cond, const std::string &Mask) {
  // Translates a scalar condition into an all-ones/zeros lane mask.
  switch (Cond.K) {
  case Expr::Binary: {
    switch (Cond.BOp) {
    case BinOp::Gt:
    case BinOp::Lt:
    case BinOp::Ge:
    case BinOp::Le:
    case BinOp::Eq:
    case BinOp::Ne: {
      ExprPtr A = vecExpr(*Cond.Kids[0], Mask, /*CondContext=*/false);
      ExprPtr B = vecExpr(*Cond.Kids[1], Mask, /*CondContext=*/false);
      if (!A || !B)
        return nullptr;
      switch (Cond.BOp) {
      case BinOp::Gt:
        return call2("_mm256_cmpgt_epi32", std::move(A), std::move(B));
      case BinOp::Lt:
        return call2("_mm256_cmpgt_epi32", std::move(B), std::move(A));
      case BinOp::Eq:
        return call2("_mm256_cmpeq_epi32", std::move(A), std::move(B));
      case BinOp::Ne:
        return call2("_mm256_xor_si256",
                     call2("_mm256_cmpeq_epi32", std::move(A), std::move(B)),
                     set1(lit(-1)));
      case BinOp::Ge: {
        // a >= b  ==  !(b > a)
        return call2("_mm256_xor_si256",
                     call2("_mm256_cmpgt_epi32", std::move(B), std::move(A)),
                     set1(lit(-1)));
      }
      case BinOp::Le:
        return call2("_mm256_xor_si256",
                     call2("_mm256_cmpgt_epi32", std::move(A), std::move(B)),
                     set1(lit(-1)));
      default:
        return nullptr;
      }
    }
    case BinOp::LAnd: {
      ExprPtr A = vecCond(*Cond.Kids[0], Mask);
      ExprPtr B = vecCond(*Cond.Kids[1], Mask);
      if (!A || !B)
        return nullptr;
      return call2("_mm256_and_si256", std::move(A), std::move(B));
    }
    case BinOp::LOr: {
      ExprPtr A = vecCond(*Cond.Kids[0], Mask);
      ExprPtr B = vecCond(*Cond.Kids[1], Mask);
      if (!A || !B)
        return nullptr;
      return call2("_mm256_or_si256", std::move(A), std::move(B));
    }
    default:
      break;
    }
    // Arithmetic condition: != 0.
    ExprPtr A = vecExpr(Cond, Mask, false);
    if (!A)
      return nullptr;
    return call2("_mm256_xor_si256",
                 call2("_mm256_cmpeq_epi32", std::move(A),
                       call("_mm256_setzero_si256", {})),
                 set1(lit(-1)));
  }
  case Expr::Unary:
    if (Cond.UOp == UnOp::LNot) {
      ExprPtr A = vecCond(*Cond.Kids[0], Mask);
      if (!A)
        return nullptr;
      return call2("_mm256_xor_si256", std::move(A), set1(lit(-1)));
    }
    break;
  default:
    break;
  }
  // value != 0 fallback.
  ExprPtr A = vecExpr(Cond, Mask, false);
  if (!A)
    return nullptr;
  return call2("_mm256_xor_si256",
               call2("_mm256_cmpeq_epi32", std::move(A),
                     call("_mm256_setzero_si256", {})),
               set1(lit(-1)));
}

ExprPtr Generator::vecExpr(const Expr &E, const std::string &Mask,
                           bool CondContext) {
  switch (E.K) {
  case Expr::IntLit:
    return set1(lit(E.Value));
  case Expr::VarRef: {
    auto VT = VecTemps.find(E.Name);
    if (VT != VecTemps.end())
      return var(VT->second);
    const deps::LoopShape &L = LA.inner();
    if (E.Name == L.Iter) {
      // i as a value: set1(i) + {0..7}.
      return call2("_mm256_add_epi32", set1(var(E.Name)),
                   call("_mm256_setr_epi32",
                        [] {
                          std::vector<ExprPtr> Ls;
                          for (int K = 0; K < 8; ++K)
                            Ls.push_back(lit(K));
                          return Ls;
                        }()));
    }
    auto Ind = InductionStep.find(E.Name);
    if (Ind != InductionStep.end()) {
      // Ramp: set1(v) + setr(step*(d+0), ..., step*(d+7)) where d is 1
      // after the update statement, 0 before.
      int64_t Step = Ind->second;
      int64_t D = InductionUpdated.count(E.Name) ? 1 : 0;
      if (Plan.has(Fault::WrongInductionInit)) {
        // The s453 first attempt: broadcast + one scalar step.
        return call2("_mm256_add_epi32", set1(var(E.Name)),
                     set1(lit(Step)));
      }
      std::vector<ExprPtr> Ls;
      for (int K = 0; K < 8; ++K)
        Ls.push_back(lit(Step * (D + K)));
      return call2("_mm256_add_epi32", set1(var(E.Name)),
                   call("_mm256_setr_epi32", std::move(Ls)));
    }
    // Loop-invariant scalar.
    return set1(var(E.Name));
  }
  case Expr::Index: {
    if (E.Kids[0]->K != Expr::VarRef)
      return nullptr;
    // Loop-invariant subscript: broadcast the scalar element.
    if (isInvariantExpr(*E.Kids[1]))
      return set1(E.clone());
    return vecLoad(E.Kids[0]->Name, *E.Kids[1], Mask, CondContext);
  }
  case Expr::Unary:
    switch (E.UOp) {
    case UnOp::Neg: {
      ExprPtr A = vecExpr(*E.Kids[0], Mask, CondContext);
      if (!A)
        return nullptr;
      return call2("_mm256_sub_epi32", call("_mm256_setzero_si256", {}),
                   std::move(A));
    }
    case UnOp::BNot: {
      ExprPtr A = vecExpr(*E.Kids[0], Mask, CondContext);
      if (!A)
        return nullptr;
      return call2("_mm256_xor_si256", std::move(A), set1(lit(-1)));
    }
    case UnOp::LNot: {
      ExprPtr A = vecExpr(*E.Kids[0], Mask, CondContext);
      if (!A)
        return nullptr;
      // !x as 0/1.
      return call2("_mm256_and_si256",
                   call2("_mm256_cmpeq_epi32", std::move(A),
                         call("_mm256_setzero_si256", {})),
                   set1(lit(1)));
    }
    default:
      return nullptr;
    }
  case Expr::Binary: {
    const char *Intrin = nullptr;
    switch (E.BOp) {
    case BinOp::Add: Intrin = "_mm256_add_epi32"; break;
    case BinOp::Sub: Intrin = "_mm256_sub_epi32"; break;
    case BinOp::Mul: Intrin = "_mm256_mullo_epi32"; break;
    case BinOp::And: Intrin = "_mm256_and_si256"; break;
    case BinOp::Or: Intrin = "_mm256_or_si256"; break;
    case BinOp::Xor: Intrin = "_mm256_xor_si256"; break;
    default: break;
    }
    if (Intrin) {
      ExprPtr A = vecExpr(*E.Kids[0], Mask, CondContext);
      ExprPtr B = vecExpr(*E.Kids[1], Mask, CondContext);
      if (!A || !B)
        return nullptr;
      return call2(Intrin, std::move(A), std::move(B));
    }
    if (E.BOp == BinOp::Shl || E.BOp == BinOp::Shr) {
      if (E.Kids[1]->K != Expr::IntLit)
        return nullptr;
      ExprPtr A = vecExpr(*E.Kids[0], Mask, CondContext);
      if (!A)
        return nullptr;
      const char *Sh =
          E.BOp == BinOp::Shl ? "_mm256_slli_epi32" : "_mm256_srai_epi32";
      return call2(Sh, std::move(A), lit(E.Kids[1]->Value));
    }
    // Comparison as a 0/1 value.
    if (E.BOp == BinOp::Gt || E.BOp == BinOp::Lt || E.BOp == BinOp::Ge ||
        E.BOp == BinOp::Le || E.BOp == BinOp::Eq || E.BOp == BinOp::Ne) {
      ExprPtr M = vecCond(E, Mask);
      if (!M)
        return nullptr;
      return call2("_mm256_and_si256", std::move(M), set1(lit(1)));
    }
    return nullptr; // division etc: not vectorizable on AVX2 i32
  }
  case Expr::Ternary: {
    ExprPtr M = vecCond(*E.Kids[0], Mask);
    ExprPtr A = vecExpr(*E.Kids[1], Mask, /*CondContext=*/true);
    ExprPtr B = vecExpr(*E.Kids[2], Mask, /*CondContext=*/true);
    if (!M || !A || !B)
      return nullptr;
    return call3("_mm256_blendv_epi8", std::move(B), std::move(A),
                 std::move(M));
  }
  case Expr::Call: {
    if (E.Name == "abs") {
      ExprPtr A = vecExpr(*E.Kids[0], Mask, CondContext);
      if (!A)
        return nullptr;
      return call1("_mm256_abs_epi32", std::move(A));
    }
    if (E.Name == "max" || E.Name == "min") {
      ExprPtr A = vecExpr(*E.Kids[0], Mask, CondContext);
      ExprPtr B = vecExpr(*E.Kids[1], Mask, CondContext);
      if (!A || !B)
        return nullptr;
      return call2(E.Name == "max" ? "_mm256_max_epi32"
                                   : "_mm256_min_epi32",
                   std::move(A), std::move(B));
    }
    return nullptr;
  }
  default:
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Statement translation
//===----------------------------------------------------------------------===//

void Generator::vecAssign(const Expr &E, const std::string &Mask) {
  const Expr &LHS = *E.Kids[0];
  // Scalar targets.
  if (LHS.K == Expr::VarRef) {
    const std::string &Name = LHS.Name;
    // Reduction: acc = add(acc, expr [masked]). A guarded accumulator
    // (`if (c) x += k`) arrives as a compound add; only += reductions are
    // supported, matching the engine's repertoire.
    auto Red = ReductionAcc.find(Name);
    if (Red != ReductionAcc.end()) {
      if (E.IsPlainAssign || E.BOp != BinOp::Add)
        return fail();
      ExprPtr V = vecExpr(*E.Kids[1], Mask, !Mask.empty());
      if (!V)
        return fail();
      if (!Mask.empty())
        V = call2("_mm256_and_si256", std::move(V), var(Mask));
      emitStmt(Stmt::makeExpr(Expr::makeAssign(
          var(Red->second),
          call2("_mm256_add_epi32", var(Red->second), std::move(V)))));
      return;
    }
    // Induction update: handled by marking (scalar maintenance added at the
    // end of the vector body).
    if (InductionStep.count(Name)) {
      InductionUpdated.insert(Name);
      return;
    }
    // Body-local temp.
    auto VT = VecTemps.find(Name);
    if (VT != VecTemps.end()) {
      ExprPtr V;
      if (E.IsPlainAssign) {
        V = vecExpr(*E.Kids[1], Mask, !Mask.empty());
      } else {
        Expr Read(Expr::VarRef);
        Read.Name = Name;
        ExprPtr Old = vecExpr(Read, Mask, false);
        ExprPtr RHS = vecExpr(*E.Kids[1], Mask, !Mask.empty());
        if (!Old || !RHS)
          return fail();
        switch (E.BOp) {
        case BinOp::Add:
          V = call2("_mm256_add_epi32", std::move(Old), std::move(RHS));
          break;
        case BinOp::Sub:
          V = call2("_mm256_sub_epi32", std::move(Old), std::move(RHS));
          break;
        case BinOp::Mul:
          V = call2("_mm256_mullo_epi32", std::move(Old), std::move(RHS));
          break;
        default:
          return fail();
        }
      }
      if (!V)
        return fail();
      if (!Mask.empty())
        V = call3("_mm256_blendv_epi8", var(VT->second), std::move(V),
                  var(Mask));
      emitStmt(Stmt::makeExpr(
          Expr::makeAssign(var(VT->second), std::move(V))));
      return;
    }
    return fail();
  }
  // Array element target.
  if (LHS.K != Expr::Index || LHS.Kids[0]->K != Expr::VarRef)
    return fail();
  const std::string &Array = LHS.Kids[0]->Name;
  const Expr &Sub = *LHS.Kids[1];
  ExprPtr RHSVec;
  if (E.IsPlainAssign) {
    RHSVec = vecExpr(*E.Kids[1], Mask, !Mask.empty());
  } else {
    ExprPtr Old = vecLoad(Array, Sub, Mask, !Mask.empty());
    ExprPtr R = vecExpr(*E.Kids[1], Mask, !Mask.empty());
    if (!Old || !R)
      return fail();
    switch (E.BOp) {
    case BinOp::Add:
      RHSVec = call2("_mm256_add_epi32", std::move(Old), std::move(R));
      break;
    case BinOp::Sub:
      RHSVec = call2("_mm256_sub_epi32", std::move(Old), std::move(R));
      break;
    case BinOp::Mul:
      RHSVec = call2("_mm256_mullo_epi32", std::move(Old), std::move(R));
      break;
    case BinOp::And:
      RHSVec = call2("_mm256_and_si256", std::move(Old), std::move(R));
      break;
    case BinOp::Or:
      RHSVec = call2("_mm256_or_si256", std::move(Old), std::move(R));
      break;
    case BinOp::Xor:
      RHSVec = call2("_mm256_xor_si256", std::move(Old), std::move(R));
      break;
    default:
      return fail();
    }
  }
  if (!RHSVec)
    return fail();
  // Bind the stored value to a name for store-to-load forwarding.
  std::string ValName = fresh((Array + "_st").c_str());
  emitVecDecl(ValName, std::move(RHSVec));
  std::string Key = subscriptKey(Sub);
  WrittenArrays.insert(Array);
  bool Hoisted = Plan.has(Fault::UnsafeHoist) && !Mask.empty();
  if (Mask.empty() || Hoisted) {
    emitStmt(Stmt::makeExpr(call2("_mm256_storeu_si256",
                                  vecPtrTo(Array, laneBase(Sub)),
                                  var(ValName))));
    AvailVecs[{Array, Key}] = ValName;
    return;
  }
  if (Plan.has(Fault::UnsafeBlendStore)) {
    // load + blend + store: writes lanes the scalar program never writes.
    ExprPtr Old = call1("_mm256_loadu_si256", vecPtrTo(Array, laneBase(Sub)));
    std::string Blend = fresh((Array + "_bl").c_str());
    emitVecDecl(Blend, call3("_mm256_blendv_epi8", std::move(Old),
                             var(ValName), var(Mask)));
    emitStmt(Stmt::makeExpr(call2("_mm256_storeu_si256",
                                  vecPtrTo(Array, laneBase(Sub)),
                                  var(Blend))));
  } else {
    emitStmt(Stmt::makeExpr(call3("_mm256_maskstore_epi32",
                                  intPtrTo(Array, laneBase(Sub)), var(Mask),
                                  var(ValName))));
  }
  // Under a mask the memory content is lane-dependent; conservatively
  // invalidate forwarding for this subscript.
  AvailVecs.erase({Array, Key});
}

void Generator::vecStmt(const Stmt &S, const std::string &Mask) {
  if (Failed)
    return;
  if (Plan.has(Fault::DropStatement) && S.K == Stmt::ExprSt &&
      !WrittenArrays.empty() && Mask.empty()) {
    // Drop the first unconditional statement after some work was emitted.
    return;
  }
  switch (S.K) {
  case Stmt::Block:
    for (const StmtPtr &Sub : S.Body)
      vecStmt(*Sub, Mask);
    return;
  case Stmt::Empty:
    return;
  case Stmt::Decl: {
    // Iteration-local temp: becomes a vector temp.
    for (const Declarator &D : S.Decls) {
      if (S.DeclTy.K != Type::Int || D.ArraySize >= 0)
        return fail();
      std::string VName = fresh((D.Name + "_vec").c_str());
      VecTemps[D.Name] = VName;
      ExprPtr Init;
      if (D.Init) {
        Init = vecExpr(*D.Init, Mask, !Mask.empty());
        if (!Init)
          return fail();
      } else {
        Init = call("_mm256_setzero_si256", {});
      }
      emitVecDecl(VName, std::move(Init));
    }
    return;
  }
  case Stmt::ExprSt: {
    const Expr &E = *S.Cond;
    if (E.K == Expr::Assign) {
      vecAssign(E, Mask);
      return;
    }
    if (E.K == Expr::Unary &&
        (E.UOp == UnOp::PostInc || E.UOp == UnOp::PreInc ||
         E.UOp == UnOp::PostDec || E.UOp == UnOp::PreDec) &&
        E.Kids[0]->K == Expr::VarRef &&
        InductionStep.count(E.Kids[0]->Name)) {
      InductionUpdated.insert(E.Kids[0]->Name);
      return;
    }
    return fail();
  }
  case Stmt::If: {
    ExprPtr M = vecCond(*S.Cond, Mask);
    if (!M)
      return fail();
    std::string MName = fresh("mask");
    emitVecDecl(MName, std::move(M));
    std::string ThenMask = MName;
    if (!Mask.empty()) {
      std::string Comb = fresh("mask_and");
      emitVecDecl(Comb,
                  call2("_mm256_and_si256", var(Mask), var(MName)));
      ThenMask = Comb;
    }
    if (S.thenArm())
      vecStmt(*S.Body[0], ThenMask);
    if (S.elseArm()) {
      std::string Inv = fresh("mask_not");
      emitVecDecl(Inv,
                  call2("_mm256_xor_si256", var(MName), set1(lit(-1))));
      std::string ElseMask = Inv;
      if (!Mask.empty()) {
        std::string Comb = fresh("mask_and");
        emitVecDecl(Comb,
                    call2("_mm256_and_si256", var(Mask), var(Inv)));
        ElseMask = Comb;
      }
      vecStmt(*S.Body[1], ElseMask);
    }
    return;
  }
  default:
    return fail();
  }
}

//===----------------------------------------------------------------------===//
// Loop assembly
//===----------------------------------------------------------------------===//

StmtPtr Generator::buildVectorLoop() {
  const deps::LoopShape &L = LA.inner();
  const Stmt &Loop = *L.Loop;

  // End expression (exclusive): bound, or bound+1 for inclusive loops.
  ExprPtr EndE = Loop.Cond->Kids[1]->clone();
  if (L.InclusiveEnd)
    EndE = Expr::makeBinary(BinOp::Add, std::move(EndE), lit(1));

  std::vector<StmtPtr> Out;

  // Reduction accumulators.
  for (auto &[Scalar, Acc] : ReductionAcc) {
    ExprPtr Init = Plan.has(Fault::WrongReductionInit)
                       ? set1(lit(1))
                       : call("_mm256_setzero_si256", {});
    Out.push_back(Stmt::makeDecl(Type::M256i, Acc, std::move(Init)));
  }

  // Iterator declaration: `int i = Start;`.
  Out.push_back(Stmt::makeDecl(Type::Int, L.Iter, lit(L.Start)));

  // Wraparound peel: run `maxDepth` leading iterations in scalar form so
  // every i - depth read stays in bounds (the loop-peeling transformation
  // the paper credits ICC with on s291/s292).
  if (!WrapDepth.empty()) {
    int64_t MaxD = 0;
    for (auto &[W, D] : WrapDepth)
      MaxD = std::max(MaxD, D);
    ExprPtr PeelCond = Expr::makeBinary(
        BinOp::LAnd,
        Expr::makeBinary(BinOp::Lt, var(L.Iter), lit(L.Start + MaxD)),
        Loop.Cond->clone());
    Out.push_back(Stmt::makeFor(
        Stmt::makeEmpty(), std::move(PeelCond),
        Loop.StepExpr ? Loop.StepExpr->clone() : nullptr,
        Loop.forBody()->clone()));
  }

  // Main loop: for (; i <= End - 8; i += 8)  (BadBound: i < End).
  ExprPtr CondE =
      Plan.has(Fault::BadBound)
          ? Expr::makeBinary(BinOp::Lt, var(L.Iter), EndE->clone())
          : Expr::makeBinary(
                BinOp::Le, var(L.Iter),
                Expr::makeBinary(BinOp::Sub, EndE->clone(), lit(8)));
  ExprPtr StepE = Expr::makeCompoundAssign(BinOp::Add, var(L.Iter), lit(8));

  std::vector<StmtPtr> BodyStmts;
  Emit = &BodyStmts;
  AvailVecs.clear();
  WrittenArrays.clear();
  InductionUpdated.clear();
  VecTemps.clear();

  // Preload reads of arrays that the body also writes (resolving spurious
  // positive-distance dependences by loading before any store).
  std::set<std::string> Written;
  for (const deps::ArrayAccess &A : LA.Accesses)
    if (A.IsWrite)
      Written.insert(A.Array);
  std::set<std::pair<std::string, std::string>> Preloaded;
  for (const deps::ArrayAccess &A : LA.Accesses) {
    if (A.IsWrite || !Written.count(A.Array))
      continue;
    // Find the subscript expression: re-walk is avoided by re-deriving the
    // lane-0 subscript from the affine form (coef 1): i + Offset.
    ExprPtr SubE = A.Sub.Offset == 0
                       ? var(L.Iter)
                       : Expr::makeBinary(A.Sub.Offset > 0 ? BinOp::Add
                                                           : BinOp::Sub,
                                          var(L.Iter),
                                          lit(std::abs(A.Sub.Offset)));
    std::string Key = minic::printExpr(*SubE);
    if (Preloaded.count({A.Array, Key}))
      continue;
    Preloaded.insert({A.Array, Key});
    ExprPtr Base = SubE->clone();
    if (Plan.has(Fault::OffByOneOffset) && A.Sub.Offset != 0)
      Base = var(L.Iter);
    std::string Name = fresh((A.Array + "_vec").c_str());
    emitVecDecl(Name,
                call1("_mm256_loadu_si256", vecPtrTo(A.Array, std::move(Base))));
    AvailVecs[{A.Array, Key}] = Name;
  }

  // Translate the body. Wraparound variables are substituted by their
  // entry value i - depth, and their reassignments dropped (the vector
  // body maintains them once per block below).
  const Stmt *Body = Loop.forBody();
  if (!Body)
    return nullptr;
  StmtPtr BodyForVec = Body->clone();
  if (!WrapDepth.empty()) {
    auto substWrap = [&](auto &&Self, Stmt &S) -> void {
      if (S.K == Stmt::ExprSt && S.Cond->K == Expr::Assign &&
          S.Cond->IsPlainAssign && S.Cond->Kids[0]->K == Expr::VarRef &&
          WrapDepth.count(S.Cond->Kids[0]->Name)) {
        S.K = Stmt::Empty;
        S.Cond = nullptr;
        return;
      }
      std::vector<Expr *> Exprs;
      if (S.Cond)
        Exprs.push_back(S.Cond.get());
      if (S.StepExpr)
        Exprs.push_back(S.StepExpr.get());
      for (minic::Declarator &D : S.Decls)
        if (D.Init)
          Exprs.push_back(D.Init.get());
      while (!Exprs.empty()) {
        Expr *E = Exprs.back();
        Exprs.pop_back();
        if (E->K == Expr::VarRef && WrapDepth.count(E->Name)) {
          int64_t D = WrapDepth[E->Name];
          ExprPtr Repl =
              Expr::makeBinary(BinOp::Sub, var(LA.inner().Iter), lit(D));
          *E = std::move(*Repl);
          continue;
        }
        for (ExprPtr &Kid : E->Kids)
          if (Kid)
            Exprs.push_back(Kid.get());
      }
      if (S.InitStmt)
        Self(Self, *S.InitStmt);
      for (StmtPtr &Sub : S.Body)
        if (Sub)
          Self(Self, *Sub);
    };
    substWrap(substWrap, *BodyForVec);
  }
  vecStmt(*BodyForVec, std::string());
  if (Failed)
    return nullptr;

  // Scalar maintenance for inductions: v += 8*step; wraparounds hold
  // i + 8 - depth after a vector block.
  for (auto &[Name, Step] : InductionStep)
    BodyStmts.push_back(Stmt::makeExpr(
        Expr::makeCompoundAssign(BinOp::Add, var(Name), lit(8 * Step))));
  for (auto &[Name, D] : WrapDepth)
    BodyStmts.push_back(Stmt::makeExpr(Expr::makeAssign(
        var(Name),
        Expr::makeBinary(BinOp::Add, var(L.Iter), lit(8 - D)))));

  Out.push_back(Stmt::makeFor(Stmt::makeEmpty(), std::move(CondE),
                              std::move(StepE),
                              Stmt::makeBlock(std::move(BodyStmts))));

  // Reduction finish: scalar += extracts.
  for (auto &[Scalar, Acc] : ReductionAcc) {
    ExprPtr Sum;
    for (int K = 0; K < 8; ++K) {
      ExprPtr Ext = call2("_mm256_extract_epi32", var(Acc), lit(K));
      Sum = Sum ? Expr::makeBinary(BinOp::Add, std::move(Sum), std::move(Ext))
                : std::move(Ext);
    }
    Out.push_back(Stmt::makeExpr(
        Expr::makeCompoundAssign(BinOp::Add, var(Scalar), std::move(Sum))));
  }

  // Epilogue: original loop with empty init (iterator continues).
  StmtPtr Epilogue = Stmt::makeFor(
      Stmt::makeEmpty(), Loop.Cond->clone(),
      Loop.StepExpr ? Loop.StepExpr->clone() : nullptr,
      Loop.forBody()->clone());
  Out.push_back(std::move(Epilogue));

  return Stmt::makeBlock(std::move(Out));
}

GenResult Generator::run() {
  GenResult R;
  // Restructure gotos first (the model "understands" the goto pattern).
  std::string GErr = minic::eliminateGotos(*Clone);
  if (!GErr.empty())
    return R;
  LA = deps::analyzeFunction(*Clone);
  bool Sound = analyzeBlockers();
  if (!Sound && !ForceNaive)
    return R;
  if (!Sound) {
    // Naive mode: pretend the blockers are not there — widen anyway when
    // the shapes allow it at all (wrong code, the model's failure mode).
    if (!LA.HasLoop || !LA.inner().Canonical || LA.inner().Step != 1 ||
        !LA.inner().End.Valid || LA.HasIndirectAccess ||
        LA.HasNonAffineAccess || LA.HasBreakOrReturn)
      return R;
    for (const deps::ArrayAccess &A : LA.Accesses)
      if (!A.Sub.Valid || A.Sub.Coef != 1)
        return R;
    // Treat every cross-iteration scalar as a (possibly bogus) induction.
    for (const deps::ScalarUpdate &U : LA.Scalars) {
      if (U.K == deps::ScalarUpdate::Induction ||
          U.K == deps::ScalarUpdate::Wraparound)
        InductionStep.emplace(U.Name, U.Step != 0 ? U.Step : 1);
      else if (U.K == deps::ScalarUpdate::Reduction)
        ReductionAcc.emplace(U.Name, "acc_" + U.Name);
      else
        InductionStep.emplace(U.Name, 1);
    }
  }

  // Replace the innermost loop statement inside the (goto-free) clone.
  StmtPtr NewLoop = buildVectorLoop();
  if (!NewLoop || Failed)
    return R;

  // Find and replace the loop statement in the clone (structural walk over
  // every child slot, covering unbraced nesting).
  const Stmt *Target = LA.inner().Loop;
  bool Replaced = false;
  auto replaceIn = [&](auto &&Self, StmtPtr &S) -> bool {
    if (S.get() == Target) {
      S = std::move(NewLoop);
      return true;
    }
    if (S->InitStmt && Self(Self, S->InitStmt))
      return true;
    for (StmtPtr &Sub : S->Body)
      if (Sub && Self(Self, Sub))
        return true;
    return false;
  };
  for (StmtPtr &S : Clone->BodyBlock->Body)
    if (replaceIn(replaceIn, S)) {
      Replaced = true;
      break;
    }
  if (!Replaced)
    return R;

  R.Fn = std::move(Clone);
  R.SoundByConstruction = Sound && Plan.clean();
  R.Strategy = !Sound ? "naive-widen"
               : (!ReductionAcc.empty()
                      ? "reduction"
                      : (LA.HasControlFlow ? "blend-ifconvert" : "widen"));
  return R;
}

GenResult lv::llm::vectorizeFunction(const Function &F, const FaultPlan &Plan,
                                     bool ForceNaive) {
  Generator G(F, Plan, ForceNaive);
  return G.run();
}
