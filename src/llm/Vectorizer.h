//===- llm/Vectorizer.h - rule-based AVX2 vectorizer -----------*- C++ -*-===//
///
/// \file
/// The code-generation engine inside the simulated LLM: a genuine
/// source-to-source vectorizer from scalar mini-C to AVX2-intrinsic mini-C.
/// It implements the transformation repertoire the paper observes GPT-4
/// using — plain widening, if-conversion via compare+blend (with masked
/// loads/stores where required for soundness), reduction vectorization with
/// a horizontal finish, derived-induction rewriting via lane ramps, and
/// load-before-store reordering for spurious anti dependences — plus the
/// fault hooks of llm/Faults.h so one engine can produce both GPT-4's
/// correct outputs and its characteristic wrong ones.
///
/// Loops outside the repertoire (true recurrences, strided or indirect
/// accesses, integer division in the body, non-canonical loops) yield
/// either a *naive* (wrong) widening or no output; the competence model
/// decides which, matching the paper's failure taxonomy (§4.1.3).
///
//===----------------------------------------------------------------------===//

#ifndef LV_LLM_VECTORIZER_H
#define LV_LLM_VECTORIZER_H

#include "deps/Analysis.h"
#include "llm/Faults.h"
#include "minic/AST.h"

#include <string>

namespace lv {
namespace llm {

/// What the generator produced.
struct GenResult {
  minic::FunctionPtr Fn; ///< Null when no strategy applies.
  std::string Strategy;  ///< "widen", "blend", "reduction", ...
  bool SoundByConstruction = false; ///< False for naive fallback output.
};

/// Vectorizes \p F (8 x i32 AVX2 target) under \p Plan's faults.
/// \p ForceNaive requests the wrong-but-plausible-looking naive widening
/// even when the loop has blocking dependences (used by the competence
/// model for "model does not understand the dependence" outcomes).
GenResult vectorizeFunction(const minic::Function &F, const FaultPlan &Plan,
                            bool ForceNaive = false);

} // namespace llm
} // namespace lv

#endif // LV_LLM_VECTORIZER_H
