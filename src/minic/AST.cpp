//===- minic/AST.cpp - mini-C AST implementation --------------------------===//

#include "minic/AST.h"

#include <cassert>

using namespace lv;
using namespace lv::minic;

const char *Type::str() const {
  switch (K) {
  case Void:
    return "void";
  case Int:
    return "int";
  case M256i:
    return "__m256i";
  case IntPtr:
    return "int *";
  case VecPtr:
    return "__m256i *";
  }
  return "<?>";
}

ExprPtr Expr::clone() const {
  auto E = std::make_unique<Expr>(K);
  E->Value = Value;
  E->Name = Name;
  E->BOp = BOp;
  E->UOp = UOp;
  E->IsPlainAssign = IsPlainAssign;
  E->CastTy = CastTy;
  E->Ty = Ty;
  E->Kids.reserve(Kids.size());
  for (const ExprPtr &Kid : Kids)
    E->Kids.push_back(Kid ? Kid->clone() : nullptr);
  return E;
}

ExprPtr Expr::makeIntLit(int64_t V) {
  auto E = std::make_unique<Expr>(IntLit);
  E->Value = V;
  return E;
}

ExprPtr Expr::makeVarRef(std::string Name) {
  auto E = std::make_unique<Expr>(VarRef);
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::makeIndex(ExprPtr Base, ExprPtr Idx) {
  auto E = std::make_unique<Expr>(Index);
  E->Kids.push_back(std::move(Base));
  E->Kids.push_back(std::move(Idx));
  return E;
}

ExprPtr Expr::makeUnary(UnOp Op, ExprPtr Sub) {
  auto E = std::make_unique<Expr>(Unary);
  E->UOp = Op;
  E->Kids.push_back(std::move(Sub));
  return E;
}

ExprPtr Expr::makeBinary(BinOp Op, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>(Binary);
  E->BOp = Op;
  E->Kids.push_back(std::move(L));
  E->Kids.push_back(std::move(R));
  return E;
}

ExprPtr Expr::makeAssign(ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>(Assign);
  E->IsPlainAssign = true;
  E->Kids.push_back(std::move(L));
  E->Kids.push_back(std::move(R));
  return E;
}

ExprPtr Expr::makeCompoundAssign(BinOp Op, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>(Assign);
  E->IsPlainAssign = false;
  E->BOp = Op;
  E->Kids.push_back(std::move(L));
  E->Kids.push_back(std::move(R));
  return E;
}

ExprPtr Expr::makeTernary(ExprPtr C, ExprPtr T, ExprPtr El) {
  auto E = std::make_unique<Expr>(Ternary);
  E->Kids.push_back(std::move(C));
  E->Kids.push_back(std::move(T));
  E->Kids.push_back(std::move(El));
  return E;
}

ExprPtr Expr::makeCall(std::string Callee, std::vector<ExprPtr> Args) {
  auto E = std::make_unique<Expr>(Call);
  E->Name = std::move(Callee);
  E->Kids = std::move(Args);
  return E;
}

ExprPtr Expr::makeCast(Type To, ExprPtr Sub) {
  auto E = std::make_unique<Expr>(Cast);
  E->CastTy = To;
  E->Kids.push_back(std::move(Sub));
  return E;
}

StmtPtr Stmt::clone() const {
  auto S = std::make_unique<Stmt>(K);
  S->DeclTy = DeclTy;
  S->Decls.reserve(Decls.size());
  for (const Declarator &D : Decls) {
    Declarator ND;
    ND.Name = D.Name;
    ND.Init = D.Init ? D.Init->clone() : nullptr;
    ND.ArraySize = D.ArraySize;
    S->Decls.push_back(std::move(ND));
  }
  S->Cond = Cond ? Cond->clone() : nullptr;
  S->InitStmt = InitStmt ? InitStmt->clone() : nullptr;
  S->StepExpr = StepExpr ? StepExpr->clone() : nullptr;
  S->Name = Name;
  S->Body.reserve(Body.size());
  for (const StmtPtr &B : Body)
    S->Body.push_back(B ? B->clone() : nullptr);
  return S;
}

StmtPtr Stmt::makeDecl(Type Ty, std::string Name, ExprPtr Init) {
  auto S = std::make_unique<Stmt>(Decl);
  S->DeclTy = Ty;
  Declarator D;
  D.Name = std::move(Name);
  D.Init = std::move(Init);
  S->Decls.push_back(std::move(D));
  return S;
}

StmtPtr Stmt::makeExpr(ExprPtr E) {
  auto S = std::make_unique<Stmt>(ExprSt);
  S->Cond = std::move(E);
  return S;
}

StmtPtr Stmt::makeBlock(std::vector<StmtPtr> Stmts) {
  auto S = std::make_unique<Stmt>(Block);
  S->Body = std::move(Stmts);
  return S;
}

StmtPtr Stmt::makeIf(ExprPtr C, StmtPtr Then, StmtPtr Else) {
  auto S = std::make_unique<Stmt>(If);
  S->Cond = std::move(C);
  S->Body.push_back(std::move(Then));
  S->Body.push_back(std::move(Else));
  return S;
}

StmtPtr Stmt::makeFor(StmtPtr Init, ExprPtr Cond, ExprPtr Step,
                      StmtPtr Body) {
  auto S = std::make_unique<Stmt>(For);
  S->InitStmt = std::move(Init);
  S->Cond = std::move(Cond);
  S->StepExpr = std::move(Step);
  S->Body.push_back(std::move(Body));
  return S;
}

StmtPtr Stmt::makeReturn(ExprPtr E) {
  auto S = std::make_unique<Stmt>(Return);
  S->Cond = std::move(E);
  return S;
}

StmtPtr Stmt::makeGoto(std::string L) {
  auto S = std::make_unique<Stmt>(Goto);
  S->Name = std::move(L);
  return S;
}

StmtPtr Stmt::makeLabel(std::string L) {
  auto S = std::make_unique<Stmt>(Label);
  S->Name = std::move(L);
  return S;
}

StmtPtr Stmt::makeEmpty() { return std::make_unique<Stmt>(Empty); }

FunctionPtr Function::clone() const {
  auto F = std::make_unique<Function>();
  F->Name = Name;
  F->RetTy = RetTy;
  F->Params = Params;
  F->BodyBlock = BodyBlock ? BodyBlock->clone() : nullptr;
  return F;
}
