//===- minic/AST.h - mini-C abstract syntax tree ---------------*- C++ -*-===//
///
/// \file
/// AST for the C subset used by the TSVC benchmark and by AVX2-intrinsic
/// vectorizations: int scalars/pointers, __m256i vectors, for/if/goto
/// control flow, and calls to SIMD intrinsics. Both the scalar inputs and
/// the LLM-generated vectorized candidates are values of this AST.
///
/// Nodes are tagged structs (single Expr/Stmt types with a Kind enum) rather
/// than a class hierarchy: every transformation in the pipeline (C-level
/// unrolling, spatial splitting, the simulated LLM's rewrites) clones and
/// edits trees, which is simplest over a uniform representation.
///
//===----------------------------------------------------------------------===//

#ifndef LV_MINIC_AST_H
#define LV_MINIC_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lv {
namespace minic {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Scalar/vector/pointer types of the mini-C subset.
struct Type {
  enum Kind : uint8_t {
    Void,
    Int,    ///< 32-bit signed int.
    M256i,  ///< 256-bit integer vector (8 x i32 in this project).
    IntPtr, ///< int *
    VecPtr, ///< __m256i *
  };

  Kind K = Void;

  Type() = default;
  /*implicit*/ Type(Kind K) : K(K) {}

  bool operator==(const Type &O) const { return K == O.K; }
  bool operator!=(const Type &O) const { return K != O.K; }

  bool isPointer() const { return K == IntPtr || K == VecPtr; }
  bool isVector() const { return K == M256i; }

  /// Type name as written in C.
  const char *str() const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operator kinds (also used for compound assignment).
enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr,
  Lt, Gt, Le, Ge, Eq, Ne,
  And, Or, Xor,       // bitwise
  LAnd, LOr,          // logical short-circuit
  Comma,              // sequence; only in for-loop headers
};

/// Unary operator kinds.
enum class UnOp : uint8_t {
  Neg, LNot, BNot,
  PreInc, PreDec, PostInc, PostDec,
  Deref, AddrOf,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A mini-C expression node.
struct Expr {
  enum Kind : uint8_t {
    IntLit,  ///< Value holds the literal.
    VarRef,  ///< Name holds the identifier.
    Index,   ///< Kids[0][Kids[1]].
    Unary,   ///< UOp applied to Kids[0].
    Binary,  ///< Kids[0] BOp Kids[1].
    Assign,  ///< Kids[0] op= Kids[1]; BOp is the compound op, IsPlainAssign
             ///< distinguishes plain '='.
    Ternary, ///< Kids[0] ? Kids[1] : Kids[2].
    Call,    ///< Name(Kids...).
    Cast,    ///< (CastTy)Kids[0].
  };

  Kind K;
  int64_t Value = 0;       ///< IntLit payload.
  std::string Name;        ///< VarRef / Call payload.
  BinOp BOp = BinOp::Add;  ///< Binary / Assign payload.
  UnOp UOp = UnOp::Neg;    ///< Unary payload.
  bool IsPlainAssign = true;
  Type CastTy;             ///< Cast payload.
  std::vector<ExprPtr> Kids;

  /// Type filled in by Sema; Void until then.
  Type Ty;

  explicit Expr(Kind K) : K(K) {}

  /// Deep copy.
  ExprPtr clone() const;

  //===--------------------------------------------------------------------===
  // Factories
  //===--------------------------------------------------------------------===

  static ExprPtr makeIntLit(int64_t V);
  static ExprPtr makeVarRef(std::string Name);
  static ExprPtr makeIndex(ExprPtr Base, ExprPtr Idx);
  static ExprPtr makeUnary(UnOp Op, ExprPtr Sub);
  static ExprPtr makeBinary(BinOp Op, ExprPtr L, ExprPtr R);
  static ExprPtr makeAssign(ExprPtr L, ExprPtr R);
  static ExprPtr makeCompoundAssign(BinOp Op, ExprPtr L, ExprPtr R);
  static ExprPtr makeTernary(ExprPtr C, ExprPtr T, ExprPtr E);
  static ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args);
  static ExprPtr makeCast(Type To, ExprPtr Sub);
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One declarator in a declaration statement: `int i = 0` or `int buf[8]`.
struct Declarator {
  std::string Name;
  ExprPtr Init;       ///< May be null.
  int64_t ArraySize = -1; ///< >= 0 for local array declarations.
};

/// A mini-C statement node.
struct Stmt {
  enum Kind : uint8_t {
    Decl,     ///< DeclTy Decls...;
    ExprSt,   ///< E;
    Block,    ///< { Body... }
    If,       ///< if (Cond) Body[0] else Body[1]; Body[1] may be null slot.
    For,      ///< for (InitStmt; Cond; StepExpr) Body[0].
    Goto,     ///< goto Name;
    Label,    ///< Name: (labels stand alone; following stmts are siblings).
    Break,
    Continue,
    Return,   ///< return Cond; (Cond may be null).
    Empty,    ///< ;
  };

  Kind K;
  Type DeclTy;                     ///< Decl payload.
  std::vector<Declarator> Decls;   ///< Decl payload.
  ExprPtr Cond;                    ///< If/For condition, ExprSt/Return expr.
  StmtPtr InitStmt;                ///< For init (Decl or ExprSt or Empty).
  ExprPtr StepExpr;                ///< For step (may be null).
  std::string Name;                ///< Goto/Label payload.
  std::vector<StmtPtr> Body;       ///< Block stmts / If arms / For body.

  explicit Stmt(Kind K) : K(K) {}

  /// Deep copy.
  StmtPtr clone() const;

  //===--------------------------------------------------------------------===
  // Factories
  //===--------------------------------------------------------------------===

  static StmtPtr makeDecl(Type Ty, std::string Name, ExprPtr Init);
  static StmtPtr makeExpr(ExprPtr E);
  static StmtPtr makeBlock(std::vector<StmtPtr> Stmts);
  static StmtPtr makeIf(ExprPtr C, StmtPtr Then, StmtPtr Else);
  static StmtPtr makeFor(StmtPtr Init, ExprPtr Cond, ExprPtr Step,
                         StmtPtr Body);
  static StmtPtr makeReturn(ExprPtr E);
  static StmtPtr makeGoto(std::string L);
  static StmtPtr makeLabel(std::string L);
  static StmtPtr makeEmpty();

  /// For If statements: then arm is Body[0], else arm Body[1] (may be null).
  Stmt *thenArm() const { return Body.empty() ? nullptr : Body[0].get(); }
  Stmt *elseArm() const { return Body.size() < 2 ? nullptr : Body[1].get(); }
  Stmt *forBody() const { return Body.empty() ? nullptr : Body[0].get(); }
};

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

/// A function parameter.
struct Param {
  Type Ty;
  std::string Name;
};

/// A mini-C function definition.
struct Function {
  std::string Name;
  Type RetTy = Type::Void;
  std::vector<Param> Params;
  StmtPtr BodyBlock; ///< Always a Block statement.

  /// Deep copy.
  std::unique_ptr<Function> clone() const;
};

using FunctionPtr = std::unique_ptr<Function>;

} // namespace minic
} // namespace lv

#endif // LV_MINIC_AST_H
