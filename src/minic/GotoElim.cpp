//===- minic/GotoElim.cpp - forward-goto elimination ------------------------===//

#include "minic/GotoElim.h"

#include "support/Format.h"

#include <set>
#include <vector>

using namespace lv;
using namespace lv::minic;

static bool stmtContainsGoto(const Stmt &S) {
  if (S.K == Stmt::Goto)
    return true;
  if (S.InitStmt && stmtContainsGoto(*S.InitStmt))
    return true;
  for (const StmtPtr &Sub : S.Body)
    if (Sub && stmtContainsGoto(*Sub))
      return true;
  return false;
}

bool lv::minic::containsGoto(const Function &F) {
  return F.BodyBlock && stmtContainsGoto(*F.BodyBlock);
}

namespace {

/// Rewrites gotos within one function.
class GotoEliminator {
public:
  std::string Error;

  void runOnList(std::vector<StmtPtr> &Stmts);

private:
  /// Recurses into nested blocks so their label scopes are processed first.
  void processNested(Stmt &S);

  static std::string flagName(const std::string &Label) {
    return "__skip_" + Label;
  }

  /// Replaces `goto L` with `__skip_L = 1` inside \p S (recursively), adding
  /// the affected labels to \p Escaping.
  void rewriteGotos(Stmt &S, std::set<std::string> &Escaping);

  /// Collects labels appearing directly in a statement list.
  static std::set<std::string> directLabels(const std::vector<StmtPtr> &L) {
    std::set<std::string> Out;
    for (const StmtPtr &S : L)
      if (S && S->K == Stmt::Label)
        Out.insert(S->Name);
    return Out;
  }

  /// Builds `!__skip_A && !__skip_B && ...` over the active labels.
  static ExprPtr makeGuard(const std::set<std::string> &Active) {
    ExprPtr Guard;
    for (const std::string &L : Active) {
      ExprPtr NotF =
          Expr::makeUnary(UnOp::LNot, Expr::makeVarRef(flagName(L)));
      Guard = Guard ? Expr::makeBinary(BinOp::LAnd, std::move(Guard),
                                       std::move(NotF))
                    : std::move(NotF);
    }
    return Guard;
  }
};

} // namespace

void GotoEliminator::rewriteGotos(Stmt &S, std::set<std::string> &Escaping) {
  if (S.K == Stmt::Goto) {
    std::string Flag = flagName(S.Name);
    Escaping.insert(S.Name);
    // goto L  ==>  __skip_L = 1;
    ExprPtr AssignE = Expr::makeAssign(Expr::makeVarRef(Flag),
                                       Expr::makeIntLit(1));
    S.K = Stmt::ExprSt;
    S.Cond = std::move(AssignE);
    S.Name.clear();
    return;
  }
  if (S.InitStmt)
    rewriteGotos(*S.InitStmt, Escaping);
  for (StmtPtr &Sub : S.Body)
    if (Sub)
      rewriteGotos(*Sub, Escaping);
}

void GotoEliminator::processNested(Stmt &S) {
  if (S.K == Stmt::Block) {
    runOnList(S.Body);
    return;
  }
  if (S.InitStmt)
    processNested(*S.InitStmt);
  for (StmtPtr &Sub : S.Body)
    if (Sub)
      processNested(*Sub);
}

void GotoEliminator::runOnList(std::vector<StmtPtr> &Stmts) {
  // Handle inner label scopes (nested blocks) first, at their own level.
  for (StmtPtr &S : Stmts)
    if (S)
      processNested(*S);

  std::set<std::string> Labels = directLabels(Stmts);
  // Gotos without a label at this level target an enclosing scope and are
  // rewritten there; leave the list untouched.
  if (Labels.empty())
    return;

  std::vector<StmtPtr> Out;
  // Declare one flag per label, initialized to zero, at the top of the list.
  for (const std::string &L : Labels)
    Out.push_back(Stmt::makeDecl(Type::Int, flagName(L), Expr::makeIntLit(0)));

  std::set<std::string> Active; // labels whose skip flag may be set
  for (StmtPtr &S : Stmts) {
    if (!S)
      continue;
    if (S->K == Stmt::Label) {
      Active.erase(S->Name);
      Labels.erase(S->Name);
      continue; // drop the label itself
    }
    std::set<std::string> Escaping;
    rewriteGotos(*S, Escaping);
    // Validate: escaping labels must be forward (still pending in Labels).
    for (const std::string &L : Escaping)
      if (!Labels.count(L))
        Error += format("unsupported backward goto '%s'\n", L.c_str());
    if (!Active.empty()) {
      // Declarations cannot be nested under a guard without breaking the
      // scope of the declared names: hoist the declaration, guard the inits.
      if (S->K == Stmt::Decl) {
        std::vector<StmtPtr> GuardedInits;
        for (Declarator &D : S->Decls) {
          if (!D.Init)
            continue;
          GuardedInits.push_back(Stmt::makeExpr(Expr::makeAssign(
              Expr::makeVarRef(D.Name), std::move(D.Init))));
          D.Init = nullptr;
        }
        Out.push_back(std::move(S));
        for (StmtPtr &GI : GuardedInits)
          Out.push_back(Stmt::makeIf(makeGuard(Active), std::move(GI),
                                     nullptr));
      } else {
        Out.push_back(
            Stmt::makeIf(makeGuard(Active), std::move(S), nullptr));
      }
    } else {
      Out.push_back(std::move(S));
    }
    for (const std::string &L : Escaping)
      Active.insert(L);
  }
  Stmts = std::move(Out);
}

std::string lv::minic::eliminateGotos(Function &F) {
  if (!containsGoto(F))
    return std::string();
  GotoEliminator GE;
  if (F.BodyBlock)
    GE.runOnList(F.BodyBlock->Body);
  if (GE.Error.empty() && containsGoto(F))
    return "goto elimination left residual gotos (unsupported jump shape)";
  return GE.Error;
}
