//===- minic/GotoElim.h - forward-goto elimination -------------*- C++ -*-===//
///
/// \file
/// Structured control-flow recovery for forward gotos. Several TSVC kernels
/// (e.g. s278) use forward gotos inside the loop body; the structured IR and
/// all analyses require goto-free code. The pass rewrites each `goto L` as
/// `__skip_L = 1` and guards every statement between the goto and the label
/// with the negation of the active skip flags (a simplified Erosa-Hendren
/// elimination restricted to forward jumps).
///
//===----------------------------------------------------------------------===//

#ifndef LV_MINIC_GOTOELIM_H
#define LV_MINIC_GOTOELIM_H

#include "minic/AST.h"

#include <string>

namespace lv {
namespace minic {

/// Rewrites all forward gotos in \p F into structured guards, in place.
/// Returns an empty string on success, or a diagnostic if the function
/// contains a backward goto (not supported; none occur in the TSVC subset).
std::string eliminateGotos(Function &F);

/// True if the function contains any goto statement.
bool containsGoto(const Function &F);

} // namespace minic
} // namespace lv

#endif // LV_MINIC_GOTOELIM_H
