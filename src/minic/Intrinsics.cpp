//===- minic/Intrinsics.cpp - AVX2 intrinsic catalog -----------------------===//

#include "minic/Intrinsics.h"

#include <unordered_map>

using namespace lv;
using namespace lv::minic;

static std::unordered_map<std::string, IntrinInfo> buildTable() {
  std::unordered_map<std::string, IntrinInfo> T;
  const Type V = Type::M256i;
  const Type I = Type::Int;
  const Type VP = Type::VecPtr;
  const Type IP = Type::IntPtr;

  auto add = [&](const char *Name, IntrinOp Op, Type Ret,
                 std::vector<Type> Params) {
    IntrinInfo Info;
    Info.Op = Op;
    Info.RetTy = Ret;
    Info.ParamTys = std::move(Params);
    T.emplace(Name, std::move(Info));
  };

  add("_mm256_loadu_si256", IntrinOp::LoadU, V, {VP});
  add("_mm256_load_si256", IntrinOp::LoadU, V, {VP});
  add("_mm256_storeu_si256", IntrinOp::StoreU, Type::Void, {VP, V});
  add("_mm256_store_si256", IntrinOp::StoreU, Type::Void, {VP, V});
  add("_mm256_maskload_epi32", IntrinOp::MaskLoad, V, {IP, V});
  add("_mm256_maskstore_epi32", IntrinOp::MaskStore, Type::Void, {IP, V, V});
  add("_mm256_add_epi32", IntrinOp::Add, V, {V, V});
  add("_mm256_sub_epi32", IntrinOp::Sub, V, {V, V});
  add("_mm256_mullo_epi32", IntrinOp::MulLo, V, {V, V});
  add("_mm256_min_epi32", IntrinOp::MinS, V, {V, V});
  add("_mm256_max_epi32", IntrinOp::MaxS, V, {V, V});
  add("_mm256_and_si256", IntrinOp::AndV, V, {V, V});
  add("_mm256_or_si256", IntrinOp::OrV, V, {V, V});
  add("_mm256_xor_si256", IntrinOp::XorV, V, {V, V});
  add("_mm256_andnot_si256", IntrinOp::AndNot, V, {V, V});
  add("_mm256_abs_epi32", IntrinOp::AbsV, V, {V});
  add("_mm256_set1_epi32", IntrinOp::Set1, V, {I});
  add("_mm256_setr_epi32", IntrinOp::SetR, V, {I, I, I, I, I, I, I, I});
  add("_mm256_set_epi32", IntrinOp::Set, V, {I, I, I, I, I, I, I, I});
  add("_mm256_setzero_si256", IntrinOp::SetZero, V, {});
  add("_mm256_cmpgt_epi32", IntrinOp::CmpGt, V, {V, V});
  add("_mm256_cmpeq_epi32", IntrinOp::CmpEq, V, {V, V});
  add("_mm256_blendv_epi8", IntrinOp::BlendV, V, {V, V, V});
  add("_mm256_slli_epi32", IntrinOp::ShlI, V, {V, I});
  add("_mm256_srli_epi32", IntrinOp::ShrLI, V, {V, I});
  add("_mm256_srai_epi32", IntrinOp::ShrAI, V, {V, I});
  add("_mm256_sllv_epi32", IntrinOp::ShlV, V, {V, V});
  add("_mm256_srlv_epi32", IntrinOp::ShrLV, V, {V, V});
  add("_mm256_srav_epi32", IntrinOp::ShrAV, V, {V, V});
  add("_mm256_extract_epi32", IntrinOp::Extract, I, {V, I});
  add("_mm256_permutevar8x32_epi32", IntrinOp::PermuteVar, V, {V, V});
  add("_mm256_hadd_epi32", IntrinOp::HAdd, V, {V, V});
  add("abs", IntrinOp::ScalarAbs, I, {I});
  add("max", IntrinOp::ScalarMax, I, {I, I});
  add("min", IntrinOp::ScalarMin, I, {I, I});
  return T;
}

const IntrinInfo &lv::minic::lookupIntrinsic(const std::string &Name) {
  static const std::unordered_map<std::string, IntrinInfo> Table =
      buildTable();
  static const IntrinInfo Unknown;
  auto It = Table.find(Name);
  return It == Table.end() ? Unknown : It->second;
}
