//===- minic/Intrinsics.h - AVX2 intrinsic catalog -------------*- C++ -*-===//
///
/// \file
/// Catalog of the AVX2 intrinsics (and scalar builtins) understood by the
/// toolchain. The table gives each intrinsic a signature (used by Sema) and
/// a vector-IR opcode (used by lowering). This plays the role Clang's
/// immintrin.h plays in the paper: defining what the LLM may call and how
/// each call maps onto IR operations.
///
//===----------------------------------------------------------------------===//

#ifndef LV_MINIC_INTRINSICS_H
#define LV_MINIC_INTRINSICS_H

#include "minic/AST.h"

#include <string>

namespace lv {
namespace minic {

/// Semantic operation an intrinsic lowers to. VL is the fixed vector length
/// (8 x i32) of the AVX2 target.
enum class IntrinOp : uint8_t {
  None,       ///< Not an intrinsic.
  LoadU,      ///< _mm256_loadu_si256
  StoreU,     ///< _mm256_storeu_si256
  MaskLoad,   ///< _mm256_maskload_epi32
  MaskStore,  ///< _mm256_maskstore_epi32
  Add,        ///< _mm256_add_epi32
  Sub,        ///< _mm256_sub_epi32
  MulLo,      ///< _mm256_mullo_epi32
  MinS,       ///< _mm256_min_epi32
  MaxS,       ///< _mm256_max_epi32
  AndV,       ///< _mm256_and_si256
  OrV,        ///< _mm256_or_si256
  XorV,       ///< _mm256_xor_si256
  AndNot,     ///< _mm256_andnot_si256 (~a & b)
  AbsV,       ///< _mm256_abs_epi32
  Set1,       ///< _mm256_set1_epi32
  SetR,       ///< _mm256_setr_epi32 (arg i -> lane i)
  Set,        ///< _mm256_set_epi32  (arg i -> lane 7-i)
  SetZero,    ///< _mm256_setzero_si256
  CmpGt,      ///< _mm256_cmpgt_epi32 (lanes all-ones/all-zeros)
  CmpEq,      ///< _mm256_cmpeq_epi32
  BlendV,     ///< _mm256_blendv_epi8 (mask MSB per byte; all-ones masks here)
  ShlI,       ///< _mm256_slli_epi32
  ShrLI,      ///< _mm256_srli_epi32
  ShrAI,      ///< _mm256_srai_epi32
  ShlV,       ///< _mm256_sllv_epi32
  ShrLV,      ///< _mm256_srlv_epi32
  ShrAV,      ///< _mm256_srav_epi32
  Extract,    ///< _mm256_extract_epi32 (imm lane)
  PermuteVar, ///< _mm256_permutevar8x32_epi32
  HAdd,       ///< _mm256_hadd_epi32
  ScalarAbs,  ///< abs()
  ScalarMax,  ///< max() helper used by some TSVC kernels
  ScalarMin,  ///< min() helper
};

/// Signature of an intrinsic.
struct IntrinInfo {
  IntrinOp Op = IntrinOp::None;
  Type RetTy = Type::Void;
  /// Parameter types; SetR/Set take 8 ints.
  std::vector<Type> ParamTys;
};

/// Looks up \p Name; returns info with Op == None when unknown.
const IntrinInfo &lookupIntrinsic(const std::string &Name);

/// Vector length of the AVX2 i32 target.
inline constexpr int VectorLanes = 8;

} // namespace minic
} // namespace lv

#endif // LV_MINIC_INTRINSICS_H
