//===- minic/Lexer.cpp - mini-C lexer --------------------------------------===//

#include "minic/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <unordered_map>

using namespace lv;
using namespace lv::minic;

const char *lv::minic::tokName(Tok K) {
  switch (K) {
  case Tok::Eof: return "<eof>";
  case Tok::Ident: return "identifier";
  case Tok::Number: return "number";
  case Tok::KwInt: return "int";
  case Tok::KwVoid: return "void";
  case Tok::KwM256i: return "__m256i";
  case Tok::KwFor: return "for";
  case Tok::KwIf: return "if";
  case Tok::KwElse: return "else";
  case Tok::KwGoto: return "goto";
  case Tok::KwBreak: return "break";
  case Tok::KwContinue: return "continue";
  case Tok::KwReturn: return "return";
  case Tok::KwConst: return "const";
  case Tok::KwUnsigned: return "unsigned";
  case Tok::LParen: return "(";
  case Tok::RParen: return ")";
  case Tok::LBrace: return "{";
  case Tok::RBrace: return "}";
  case Tok::LBracket: return "[";
  case Tok::RBracket: return "]";
  case Tok::Semi: return ";";
  case Tok::Comma: return ",";
  case Tok::Colon: return ":";
  case Tok::Question: return "?";
  case Tok::Plus: return "+";
  case Tok::Minus: return "-";
  case Tok::Star: return "*";
  case Tok::Slash: return "/";
  case Tok::Percent: return "%";
  case Tok::Amp: return "&";
  case Tok::Pipe: return "|";
  case Tok::Caret: return "^";
  case Tok::Tilde: return "~";
  case Tok::Bang: return "!";
  case Tok::Lt: return "<";
  case Tok::Gt: return ">";
  case Tok::Le: return "<=";
  case Tok::Ge: return ">=";
  case Tok::EqEq: return "==";
  case Tok::BangEq: return "!=";
  case Tok::Shl: return "<<";
  case Tok::Shr: return ">>";
  case Tok::AmpAmp: return "&&";
  case Tok::PipePipe: return "||";
  case Tok::Assign: return "=";
  case Tok::PlusEq: return "+=";
  case Tok::MinusEq: return "-=";
  case Tok::StarEq: return "*=";
  case Tok::SlashEq: return "/=";
  case Tok::PercentEq: return "%=";
  case Tok::ShlEq: return "<<=";
  case Tok::ShrEq: return ">>=";
  case Tok::AmpEq: return "&=";
  case Tok::PipeEq: return "|=";
  case Tok::CaretEq: return "^=";
  case Tok::PlusPlus: return "++";
  case Tok::MinusMinus: return "--";
  }
  return "<?>";
}

static Tok keywordKind(const std::string &S) {
  static const std::unordered_map<std::string, Tok> Map = {
      {"int", Tok::KwInt},           {"void", Tok::KwVoid},
      {"__m256i", Tok::KwM256i},     {"for", Tok::KwFor},
      {"if", Tok::KwIf},             {"else", Tok::KwElse},
      {"goto", Tok::KwGoto},         {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue}, {"return", Tok::KwReturn},
      {"const", Tok::KwConst},       {"unsigned", Tok::KwUnsigned},
  };
  auto It = Map.find(S);
  return It == Map.end() ? Tok::Ident : It->second;
}

std::vector<Token> lv::minic::lex(const std::string &Source,
                                  std::string &Error) {
  std::vector<Token> Out;
  size_t I = 0, N = Source.size();
  int Line = 1, Col = 1;

  auto advance = [&]() {
    if (I < N && Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };
  auto push = [&](Tok K, int L, int C) {
    Token T;
    T.K = K;
    T.Line = L;
    T.Col = C;
    Out.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    // Preprocessor lines: skip to end of line.
    if (C == '#' && Col == 1) {
      while (I < N && Source[I] != '\n')
        advance();
      continue;
    }
    if (C == '#') { // tolerated mid-line (from model output noise)
      while (I < N && Source[I] != '\n')
        advance();
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        advance();
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      advance();
      advance();
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/'))
        advance();
      if (I + 1 >= N) {
        Error += format("%d:%d: unterminated block comment\n", Line, Col);
        break;
      }
      advance();
      advance();
      continue;
    }
    int TLine = Line, TCol = Col;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string S;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_')) {
        S += Source[I];
        advance();
      }
      Tok K = keywordKind(S);
      Token T;
      T.K = K;
      T.Line = TLine;
      T.Col = TCol;
      if (K == Tok::Ident)
        T.Text = std::move(S);
      Out.push_back(std::move(T));
      continue;
    }
    // Numbers (decimal and hex).
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      if (C == '0' && I + 1 < N && (Source[I + 1] == 'x' ||
                                    Source[I + 1] == 'X')) {
        advance();
        advance();
        while (I < N &&
               std::isxdigit(static_cast<unsigned char>(Source[I]))) {
          char D = Source[I];
          int Digit = std::isdigit(static_cast<unsigned char>(D))
                          ? D - '0'
                          : std::tolower(D) - 'a' + 10;
          V = V * 16 + Digit;
          advance();
        }
      } else {
        while (I < N && std::isdigit(static_cast<unsigned char>(Source[I]))) {
          V = V * 10 + (Source[I] - '0');
          advance();
        }
      }
      // Swallow integer suffixes.
      while (I < N && (Source[I] == 'u' || Source[I] == 'U' ||
                       Source[I] == 'l' || Source[I] == 'L'))
        advance();
      Token T;
      T.K = Tok::Number;
      T.Value = V;
      T.Line = TLine;
      T.Col = TCol;
      Out.push_back(std::move(T));
      continue;
    }
    // Punctuation; longest-match.
    auto two = [&](char A, char B) {
      return C == A && I + 1 < N && Source[I + 1] == B;
    };
    auto three = [&](char A, char B, char D) {
      return C == A && I + 2 < N && Source[I + 1] == B && Source[I + 2] == D;
    };
    Tok K = Tok::Eof;
    int Len = 1;
    if (three('<', '<', '=')) { K = Tok::ShlEq; Len = 3; }
    else if (three('>', '>', '=')) { K = Tok::ShrEq; Len = 3; }
    else if (two('<', '<')) { K = Tok::Shl; Len = 2; }
    else if (two('>', '>')) { K = Tok::Shr; Len = 2; }
    else if (two('<', '=')) { K = Tok::Le; Len = 2; }
    else if (two('>', '=')) { K = Tok::Ge; Len = 2; }
    else if (two('=', '=')) { K = Tok::EqEq; Len = 2; }
    else if (two('!', '=')) { K = Tok::BangEq; Len = 2; }
    else if (two('&', '&')) { K = Tok::AmpAmp; Len = 2; }
    else if (two('|', '|')) { K = Tok::PipePipe; Len = 2; }
    else if (two('+', '=')) { K = Tok::PlusEq; Len = 2; }
    else if (two('-', '=')) { K = Tok::MinusEq; Len = 2; }
    else if (two('*', '=')) { K = Tok::StarEq; Len = 2; }
    else if (two('/', '=')) { K = Tok::SlashEq; Len = 2; }
    else if (two('%', '=')) { K = Tok::PercentEq; Len = 2; }
    else if (two('&', '=')) { K = Tok::AmpEq; Len = 2; }
    else if (two('|', '=')) { K = Tok::PipeEq; Len = 2; }
    else if (two('^', '=')) { K = Tok::CaretEq; Len = 2; }
    else if (two('+', '+')) { K = Tok::PlusPlus; Len = 2; }
    else if (two('-', '-')) { K = Tok::MinusMinus; Len = 2; }
    else {
      switch (C) {
      case '(': K = Tok::LParen; break;
      case ')': K = Tok::RParen; break;
      case '{': K = Tok::LBrace; break;
      case '}': K = Tok::RBrace; break;
      case '[': K = Tok::LBracket; break;
      case ']': K = Tok::RBracket; break;
      case ';': K = Tok::Semi; break;
      case ',': K = Tok::Comma; break;
      case ':': K = Tok::Colon; break;
      case '?': K = Tok::Question; break;
      case '+': K = Tok::Plus; break;
      case '-': K = Tok::Minus; break;
      case '*': K = Tok::Star; break;
      case '/': K = Tok::Slash; break;
      case '%': K = Tok::Percent; break;
      case '&': K = Tok::Amp; break;
      case '|': K = Tok::Pipe; break;
      case '^': K = Tok::Caret; break;
      case '~': K = Tok::Tilde; break;
      case '!': K = Tok::Bang; break;
      case '<': K = Tok::Lt; break;
      case '>': K = Tok::Gt; break;
      case '=': K = Tok::Assign; break;
      default:
        Error += format("%d:%d: unexpected character '%c'\n", Line, Col, C);
        advance();
        continue;
      }
    }
    push(K, TLine, TCol);
    for (int J = 0; J < Len; ++J)
      advance();
  }

  Token Eof;
  Eof.K = Tok::Eof;
  Eof.Line = Line;
  Eof.Col = Col;
  Out.push_back(std::move(Eof));
  return Out;
}
