//===- minic/Lexer.h - mini-C lexer ----------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the mini-C subset. Preprocessor lines (e.g. the
/// `#include <immintrin.h>` header of vectorized candidates) are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef LV_MINIC_LEXER_H
#define LV_MINIC_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace lv {
namespace minic {

/// Token kinds produced by the lexer.
enum class Tok : uint8_t {
  Eof,
  Ident,
  Number,
  // Keywords.
  KwInt, KwVoid, KwM256i, KwFor, KwIf, KwElse, KwGoto, KwBreak, KwContinue,
  KwReturn, KwConst, KwUnsigned,
  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Colon, Question,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Lt, Gt, Le, Ge, EqEq, BangEq,
  Shl, Shr,
  AmpAmp, PipePipe,
  Assign,
  PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
  ShlEq, ShrEq, AmpEq, PipeEq, CaretEq,
  PlusPlus, MinusMinus,
};

/// A lexed token with source location for diagnostics.
struct Token {
  Tok K = Tok::Eof;
  std::string Text;  ///< Ident spelling.
  int64_t Value = 0; ///< Number payload.
  int Line = 0;
  int Col = 0;
};

/// Lexes \p Source into tokens. On a lex error, appends a message to
/// \p Error and stops (the Eof token is still appended).
std::vector<Token> lex(const std::string &Source, std::string &Error);

/// Human-readable token kind name (for diagnostics).
const char *tokName(Tok K);

} // namespace minic
} // namespace lv

#endif // LV_MINIC_LEXER_H
