//===- minic/Parser.cpp - mini-C recursive-descent parser ------------------===//

#include "minic/Parser.h"

#include "minic/Lexer.h"
#include "support/Format.h"

#include <cassert>

using namespace lv;
using namespace lv::minic;

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string &Error)
      : Tokens(std::move(Tokens)), Error(Error) {}

  FunctionPtr parseFunctionDef();

private:
  std::vector<Token> Tokens;
  std::string &Error;
  size_t Pos = 0;
  bool Failed = false;

  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t N = 1) const {
    size_t I = Pos + N;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(Tok K) const { return cur().K == K; }
  void bump() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }
  bool accept(Tok K) {
    if (!at(K))
      return false;
    bump();
    return true;
  }
  bool expect(Tok K) {
    if (accept(K))
      return true;
    fail(format("%d:%d: expected '%s', found '%s'", cur().Line, cur().Col,
                tokName(K), describe(cur()).c_str()));
    return false;
  }
  void fail(const std::string &Msg) {
    if (!Failed)
      Error += Msg + "\n";
    Failed = true;
  }
  static std::string describe(const Token &T) {
    if (T.K == Tok::Ident)
      return T.Text;
    if (T.K == Tok::Number)
      return format("%lld", static_cast<long long>(T.Value));
    return tokName(T.K);
  }

  bool atTypeStart() const {
    switch (cur().K) {
    case Tok::KwInt:
    case Tok::KwVoid:
    case Tok::KwM256i:
    case Tok::KwUnsigned:
    case Tok::KwConst:
      return true;
    default:
      return false;
    }
  }

  Type parseType();
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseDecl();
  StmtPtr parseFor();
  StmtPtr parseIf();
  StmtPtr parseSimpleStmtForHeader();

  ExprPtr parseExpr() { return parseAssign(); }

  /// Parses a unary operand and wraps it with \p Op; null on failure.
  ExprPtr wrapOrNull(UnOp Op) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return Expr::makeUnary(Op, std::move(Sub));
  }

  ExprPtr parseCommaExpr();
  ExprPtr parseAssign();
  ExprPtr parseTernary();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
};

} // namespace

Type Parser::parseType() {
  while (accept(Tok::KwConst))
    ;
  Type Base = Type::Void;
  if (accept(Tok::KwInt) || accept(Tok::KwUnsigned)) {
    Base = Type::Int;
    accept(Tok::KwInt); // "unsigned int"
  } else if (accept(Tok::KwM256i)) {
    Base = Type::M256i;
  } else if (accept(Tok::KwVoid)) {
    Base = Type::Void;
  } else {
    fail(format("%d:%d: expected type, found '%s'", cur().Line, cur().Col,
                describe(cur()).c_str()));
  }
  while (accept(Tok::KwConst))
    ;
  bool IsPtr = false;
  while (accept(Tok::Star)) {
    IsPtr = true;
    // C99 `restrict` appears as an identifier; tolerate and skip it.
    if (at(Tok::Ident) && (cur().Text == "restrict" || cur().Text == "__restrict"))
      bump();
    while (accept(Tok::KwConst))
      ;
  }
  if (!IsPtr)
    return Base;
  if (Base.K == Type::M256i)
    return Type::VecPtr;
  return Type::IntPtr;
}

FunctionPtr Parser::parseFunctionDef() {
  auto Fn = std::make_unique<Function>();
  Fn->RetTy = parseType();
  if (!at(Tok::Ident)) {
    fail(format("%d:%d: expected function name", cur().Line, cur().Col));
    return nullptr;
  }
  Fn->Name = cur().Text;
  bump();
  if (!expect(Tok::LParen))
    return nullptr;
  if (!accept(Tok::RParen)) {
    do {
      if (at(Tok::KwVoid) && peek().K == Tok::RParen) { // f(void)
        bump();
        break;
      }
      Param P;
      P.Ty = parseType();
      if (!at(Tok::Ident)) {
        fail(format("%d:%d: expected parameter name", cur().Line, cur().Col));
        return nullptr;
      }
      P.Name = cur().Text;
      bump();
      Fn->Params.push_back(std::move(P));
    } while (accept(Tok::Comma));
    if (!expect(Tok::RParen))
      return nullptr;
  }
  Fn->BodyBlock = parseBlock();
  if (Failed || !Fn->BodyBlock)
    return nullptr;
  if (!at(Tok::Eof)) {
    fail(format("%d:%d: trailing tokens after function body", cur().Line,
                cur().Col));
    return nullptr;
  }
  return Fn;
}

StmtPtr Parser::parseBlock() {
  if (!expect(Tok::LBrace))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!at(Tok::RBrace) && !at(Tok::Eof) && !Failed) {
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Stmts.push_back(std::move(S));
  }
  if (!expect(Tok::RBrace))
    return nullptr;
  return Stmt::makeBlock(std::move(Stmts));
}

StmtPtr Parser::parseDecl() {
  Type Ty = parseType();
  auto S = std::make_unique<Stmt>(Stmt::Decl);
  S->DeclTy = Ty;
  do {
    if (!at(Tok::Ident)) {
      fail(format("%d:%d: expected declarator name", cur().Line, cur().Col));
      return nullptr;
    }
    Declarator D;
    D.Name = cur().Text;
    bump();
    if (accept(Tok::LBracket)) {
      if (!at(Tok::Number)) {
        fail(format("%d:%d: expected constant array size", cur().Line,
                    cur().Col));
        return nullptr;
      }
      D.ArraySize = cur().Value;
      bump();
      if (!expect(Tok::RBracket))
        return nullptr;
    }
    if (accept(Tok::Assign)) {
      D.Init = parseExpr();
      if (!D.Init)
        return nullptr;
    }
    S->Decls.push_back(std::move(D));
  } while (accept(Tok::Comma));
  if (!expect(Tok::Semi))
    return nullptr;
  return S;
}

StmtPtr Parser::parseSimpleStmtForHeader() {
  if (accept(Tok::Semi))
    return Stmt::makeEmpty();
  if (atTypeStart())
    return parseDecl(); // consumes ';'
  ExprPtr E = parseCommaExpr();
  if (!E)
    return nullptr;
  if (!expect(Tok::Semi))
    return nullptr;
  return Stmt::makeExpr(std::move(E));
}

StmtPtr Parser::parseFor() {
  expect(Tok::KwFor);
  if (!expect(Tok::LParen))
    return nullptr;
  StmtPtr Init = parseSimpleStmtForHeader();
  if (!Init)
    return nullptr;
  ExprPtr Cond;
  if (!at(Tok::Semi)) {
    Cond = parseExpr();
    if (!Cond)
      return nullptr;
  }
  if (!expect(Tok::Semi))
    return nullptr;
  ExprPtr Step;
  if (!at(Tok::RParen)) {
    Step = parseCommaExpr();
    if (!Step)
      return nullptr;
  }
  if (!expect(Tok::RParen))
    return nullptr;
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  return Stmt::makeFor(std::move(Init), std::move(Cond), std::move(Step),
                       std::move(Body));
}

StmtPtr Parser::parseIf() {
  expect(Tok::KwIf);
  if (!expect(Tok::LParen))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(Tok::RParen))
    return nullptr;
  StmtPtr Then = parseStmt();
  if (!Then)
    return nullptr;
  StmtPtr Else;
  if (accept(Tok::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Stmt::makeIf(std::move(Cond), std::move(Then), std::move(Else));
}

StmtPtr Parser::parseStmt() {
  switch (cur().K) {
  case Tok::LBrace:
    return parseBlock();
  case Tok::KwFor:
    return parseFor();
  case Tok::KwIf:
    return parseIf();
  case Tok::KwGoto: {
    bump();
    if (!at(Tok::Ident)) {
      fail(format("%d:%d: expected label after goto", cur().Line, cur().Col));
      return nullptr;
    }
    std::string L = cur().Text;
    bump();
    if (!expect(Tok::Semi))
      return nullptr;
    return Stmt::makeGoto(std::move(L));
  }
  case Tok::KwBreak:
    bump();
    if (!expect(Tok::Semi))
      return nullptr;
    return std::make_unique<Stmt>(Stmt::Break);
  case Tok::KwContinue:
    bump();
    if (!expect(Tok::Semi))
      return nullptr;
    return std::make_unique<Stmt>(Stmt::Continue);
  case Tok::KwReturn: {
    bump();
    ExprPtr E;
    if (!at(Tok::Semi)) {
      E = parseExpr();
      if (!E)
        return nullptr;
    }
    if (!expect(Tok::Semi))
      return nullptr;
    return Stmt::makeReturn(std::move(E));
  }
  case Tok::Semi:
    bump();
    return Stmt::makeEmpty();
  default:
    break;
  }
  if (atTypeStart())
    return parseDecl();
  // Label: `ident ':'`.
  if (at(Tok::Ident) && peek().K == Tok::Colon) {
    std::string L = cur().Text;
    bump();
    bump();
    return Stmt::makeLabel(std::move(L));
  }
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (!expect(Tok::Semi))
    return nullptr;
  return Stmt::makeExpr(std::move(E));
}

ExprPtr Parser::parseCommaExpr() {
  ExprPtr L = parseExpr();
  if (!L)
    return nullptr;
  while (accept(Tok::Comma)) {
    ExprPtr R = parseExpr();
    if (!R)
      return nullptr;
    L = Expr::makeBinary(BinOp::Comma, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseAssign() {
  ExprPtr L = parseTernary();
  if (!L)
    return nullptr;
  auto compound = [&](BinOp Op) -> ExprPtr {
    bump();
    ExprPtr R = parseAssign();
    if (!R)
      return nullptr;
    return Expr::makeCompoundAssign(Op, std::move(L), std::move(R));
  };
  switch (cur().K) {
  case Tok::Assign: {
    bump();
    ExprPtr R = parseAssign();
    if (!R)
      return nullptr;
    return Expr::makeAssign(std::move(L), std::move(R));
  }
  case Tok::PlusEq: return compound(BinOp::Add);
  case Tok::MinusEq: return compound(BinOp::Sub);
  case Tok::StarEq: return compound(BinOp::Mul);
  case Tok::SlashEq: return compound(BinOp::Div);
  case Tok::PercentEq: return compound(BinOp::Rem);
  case Tok::ShlEq: return compound(BinOp::Shl);
  case Tok::ShrEq: return compound(BinOp::Shr);
  case Tok::AmpEq: return compound(BinOp::And);
  case Tok::PipeEq: return compound(BinOp::Or);
  case Tok::CaretEq: return compound(BinOp::Xor);
  default:
    return L;
  }
}

ExprPtr Parser::parseTernary() {
  ExprPtr C = parseBinary(0);
  if (!C)
    return nullptr;
  if (!accept(Tok::Question))
    return C;
  ExprPtr T = parseAssign();
  if (!T)
    return nullptr;
  if (!expect(Tok::Colon))
    return nullptr;
  ExprPtr E = parseTernary();
  if (!E)
    return nullptr;
  return Expr::makeTernary(std::move(C), std::move(T), std::move(E));
}

/// Binary operator precedence table; higher binds tighter.
static int precOf(Tok K, BinOp &Op) {
  switch (K) {
  case Tok::PipePipe: Op = BinOp::LOr; return 1;
  case Tok::AmpAmp: Op = BinOp::LAnd; return 2;
  case Tok::Pipe: Op = BinOp::Or; return 3;
  case Tok::Caret: Op = BinOp::Xor; return 4;
  case Tok::Amp: Op = BinOp::And; return 5;
  case Tok::EqEq: Op = BinOp::Eq; return 6;
  case Tok::BangEq: Op = BinOp::Ne; return 6;
  case Tok::Lt: Op = BinOp::Lt; return 7;
  case Tok::Gt: Op = BinOp::Gt; return 7;
  case Tok::Le: Op = BinOp::Le; return 7;
  case Tok::Ge: Op = BinOp::Ge; return 7;
  case Tok::Shl: Op = BinOp::Shl; return 8;
  case Tok::Shr: Op = BinOp::Shr; return 8;
  case Tok::Plus: Op = BinOp::Add; return 9;
  case Tok::Minus: Op = BinOp::Sub; return 9;
  case Tok::Star: Op = BinOp::Mul; return 10;
  case Tok::Slash: Op = BinOp::Div; return 10;
  case Tok::Percent: Op = BinOp::Rem; return 10;
  default:
    return -1;
  }
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr L = parseUnary();
  if (!L)
    return nullptr;
  for (;;) {
    BinOp Op;
    int Prec = precOf(cur().K, Op);
    if (Prec < 0 || Prec < MinPrec)
      return L;
    bump();
    ExprPtr R = parseBinary(Prec + 1);
    if (!R)
      return nullptr;
    L = Expr::makeBinary(Op, std::move(L), std::move(R));
  }
}

ExprPtr Parser::parseUnary() {
  switch (cur().K) {
  case Tok::Minus:
    bump();
    return wrapOrNull(UnOp::Neg);
  case Tok::Bang:
    bump();
    return wrapOrNull(UnOp::LNot);
  case Tok::Tilde:
    bump();
    return wrapOrNull(UnOp::BNot);
  case Tok::Star:
    bump();
    return wrapOrNull(UnOp::Deref);
  case Tok::Amp:
    bump();
    return wrapOrNull(UnOp::AddrOf);
  case Tok::PlusPlus:
    bump();
    return wrapOrNull(UnOp::PreInc);
  case Tok::MinusMinus:
    bump();
    return wrapOrNull(UnOp::PreDec);
  case Tok::Plus: // unary plus: no-op
    bump();
    return parseUnary();
  case Tok::LParen: {
    // Cast if '(' starts a type.
    Tok Next = peek().K;
    if (Next == Tok::KwInt || Next == Tok::KwM256i || Next == Tok::KwConst ||
        Next == Tok::KwUnsigned || Next == Tok::KwVoid) {
      bump(); // '('
      Type Ty = parseType();
      if (!expect(Tok::RParen))
        return nullptr;
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return Expr::makeCast(Ty, std::move(Sub));
    }
    return parsePostfix();
  }
  default:
    return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  for (;;) {
    if (accept(Tok::LBracket)) {
      ExprPtr Idx = parseExpr();
      if (!Idx)
        return nullptr;
      if (!expect(Tok::RBracket))
        return nullptr;
      E = Expr::makeIndex(std::move(E), std::move(Idx));
      continue;
    }
    if (at(Tok::PlusPlus)) {
      bump();
      E = Expr::makeUnary(UnOp::PostInc, std::move(E));
      continue;
    }
    if (at(Tok::MinusMinus)) {
      bump();
      E = Expr::makeUnary(UnOp::PostDec, std::move(E));
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  if (at(Tok::Number)) {
    int64_t V = cur().Value;
    bump();
    return Expr::makeIntLit(V);
  }
  if (at(Tok::Ident)) {
    std::string Name = cur().Text;
    bump();
    if (accept(Tok::LParen)) {
      std::vector<ExprPtr> Args;
      if (!accept(Tok::RParen)) {
        do {
          ExprPtr A = parseExpr();
          if (!A)
            return nullptr;
          Args.push_back(std::move(A));
        } while (accept(Tok::Comma));
        if (!expect(Tok::RParen))
          return nullptr;
      }
      return Expr::makeCall(std::move(Name), std::move(Args));
    }
    return Expr::makeVarRef(std::move(Name));
  }
  if (accept(Tok::LParen)) {
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(Tok::RParen))
      return nullptr;
    return E;
  }
  fail(format("%d:%d: expected expression, found '%s'", cur().Line, cur().Col,
              describe(cur()).c_str()));
  return nullptr;
}

ParseResult lv::minic::parseFunction(const std::string &Source) {
  ParseResult R;
  std::vector<Token> Tokens = lex(Source, R.Error);
  if (!R.Error.empty())
    return R;
  Parser P(std::move(Tokens), R.Error);
  R.Fn = P.parseFunctionDef();
  if (!R.Fn && R.Error.empty())
    R.Error = "parse failed";
  return R;
}
