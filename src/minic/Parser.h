//===- minic/Parser.h - mini-C recursive-descent parser --------*- C++ -*-===//
///
/// \file
/// Parser producing a Function AST from mini-C source. Parse failures are
/// reported as diagnostics (no exceptions); a null result plus a non-empty
/// error string models the paper's "Cannot compile" outcome for malformed
/// LLM completions.
///
//===----------------------------------------------------------------------===//

#ifndef LV_MINIC_PARSER_H
#define LV_MINIC_PARSER_H

#include "minic/AST.h"

#include <string>

namespace lv {
namespace minic {

/// Result of parsing a translation unit that contains one function.
struct ParseResult {
  FunctionPtr Fn;    ///< Null on failure.
  std::string Error; ///< Diagnostics accumulated during parsing.

  bool ok() const { return Fn != nullptr; }
};

/// Parses \p Source, expecting exactly one function definition (preceded by
/// optional preprocessor lines, which are ignored).
ParseResult parseFunction(const std::string &Source);

} // namespace minic
} // namespace lv

#endif // LV_MINIC_PARSER_H
