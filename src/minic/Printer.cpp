//===- minic/Printer.cpp - AST -> C source pretty printer ------------------===//

#include "minic/Printer.h"

#include "support/Format.h"

#include <cassert>

using namespace lv;
using namespace lv::minic;

static const char *binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add: return "+";
  case BinOp::Sub: return "-";
  case BinOp::Mul: return "*";
  case BinOp::Div: return "/";
  case BinOp::Rem: return "%";
  case BinOp::Shl: return "<<";
  case BinOp::Shr: return ">>";
  case BinOp::Lt: return "<";
  case BinOp::Gt: return ">";
  case BinOp::Le: return "<=";
  case BinOp::Ge: return ">=";
  case BinOp::Eq: return "==";
  case BinOp::Ne: return "!=";
  case BinOp::And: return "&";
  case BinOp::Or: return "|";
  case BinOp::Xor: return "^";
  case BinOp::LAnd: return "&&";
  case BinOp::LOr: return "||";
  case BinOp::Comma: return ",";
  }
  return "?";
}

/// Precedence for parenthesization decisions; mirrors the parser table.
static int binOpPrec(BinOp Op) {
  switch (Op) {
  case BinOp::Comma: return 0;
  case BinOp::LOr: return 1;
  case BinOp::LAnd: return 2;
  case BinOp::Or: return 3;
  case BinOp::Xor: return 4;
  case BinOp::And: return 5;
  case BinOp::Eq:
  case BinOp::Ne: return 6;
  case BinOp::Lt:
  case BinOp::Gt:
  case BinOp::Le:
  case BinOp::Ge: return 7;
  case BinOp::Shl:
  case BinOp::Shr: return 8;
  case BinOp::Add:
  case BinOp::Sub: return 9;
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Rem: return 10;
  }
  return 0;
}

/// Precedence of an arbitrary expression for printing purposes.
static int exprPrec(const Expr &E) {
  switch (E.K) {
  case Expr::IntLit:
  case Expr::VarRef:
  case Expr::Call:
  case Expr::Index:
    return 100;
  case Expr::Unary:
    switch (E.UOp) {
    case UnOp::PostInc:
    case UnOp::PostDec:
      return 100;
    default:
      return 50;
    }
  case Expr::Cast:
    return 50;
  case Expr::Binary:
    return binOpPrec(E.BOp);
  case Expr::Ternary:
    return -1;
  case Expr::Assign:
    return -2;
  }
  return 0;
}

static std::string printWithMinPrec(const Expr &E, int MinPrec) {
  std::string S = printExpr(E);
  if (exprPrec(E) < MinPrec)
    return "(" + S + ")";
  return S;
}

std::string lv::minic::printExpr(const Expr &E) {
  switch (E.K) {
  case Expr::IntLit:
    return format("%lld", static_cast<long long>(E.Value));
  case Expr::VarRef:
    return E.Name;
  case Expr::Index:
    return printWithMinPrec(*E.Kids[0], 100) + "[" + printExpr(*E.Kids[1]) +
           "]";
  case Expr::Unary: {
    const std::string Sub = printWithMinPrec(*E.Kids[0], 50);
    switch (E.UOp) {
    case UnOp::Neg: return "-" + Sub;
    case UnOp::LNot: return "!" + Sub;
    case UnOp::BNot: return "~" + Sub;
    case UnOp::PreInc: return "++" + Sub;
    case UnOp::PreDec: return "--" + Sub;
    case UnOp::PostInc:
      return printWithMinPrec(*E.Kids[0], 100) + "++";
    case UnOp::PostDec:
      return printWithMinPrec(*E.Kids[0], 100) + "--";
    case UnOp::Deref: return "*" + Sub;
    case UnOp::AddrOf: return "&" + Sub;
    }
    return "?";
  }
  case Expr::Binary: {
    int Prec = binOpPrec(E.BOp);
    // Left-associative: left child may share precedence, right must bind
    // tighter.
    return printWithMinPrec(*E.Kids[0], Prec) + " " + binOpSpelling(E.BOp) +
           " " + printWithMinPrec(*E.Kids[1], Prec + 1);
  }
  case Expr::Assign: {
    std::string Op =
        E.IsPlainAssign ? "=" : std::string(binOpSpelling(E.BOp)) + "=";
    return printWithMinPrec(*E.Kids[0], 100) + " " + Op + " " +
           printWithMinPrec(*E.Kids[1], -2);
  }
  case Expr::Ternary:
    return printWithMinPrec(*E.Kids[0], 0) + " ? " + printExpr(*E.Kids[1]) +
           " : " + printExpr(*E.Kids[2]);
  case Expr::Call: {
    std::string S = E.Name + "(";
    for (size_t I = 0; I < E.Kids.size(); ++I) {
      if (I)
        S += ", ";
      S += printExpr(*E.Kids[I]);
    }
    return S + ")";
  }
  case Expr::Cast:
    return "(" + std::string(E.CastTy.str()) + ")" +
           printWithMinPrec(*E.Kids[0], 50);
  }
  return "?";
}

static void printStmtInto(const Stmt &S, int Indent, std::string &Out);

static std::string indentStr(int Indent) {
  return std::string(static_cast<size_t>(Indent) * 2, ' ');
}

/// Prints a statement used as a loop/if body: blocks inline, others on the
/// next line with extra indent.
static void printBodyInto(const Stmt *S, int Indent, std::string &Out) {
  if (!S) {
    Out += ";\n";
    return;
  }
  if (S->K == Stmt::Block) {
    Out += " {\n";
    for (const StmtPtr &Sub : S->Body)
      printStmtInto(*Sub, Indent + 1, Out);
    Out += indentStr(Indent) + "}";
    return;
  }
  Out += "\n";
  printStmtInto(*S, Indent + 1, Out);
  // Trim trailing newline so callers can decide.
  if (!Out.empty() && Out.back() == '\n')
    Out.pop_back();
}

/// Prints a declaration without trailing semicolon (used by for-init too).
static std::string printDeclCore(const Stmt &S) {
  std::string Out = S.DeclTy.K == Type::IntPtr
                        ? "int *"
                        : std::string(S.DeclTy.str()) + " ";
  if (S.DeclTy.K == Type::VecPtr)
    Out = "__m256i *";
  for (size_t I = 0; I < S.Decls.size(); ++I) {
    if (I)
      Out += ", ";
    Out += S.Decls[I].Name;
    if (S.Decls[I].ArraySize >= 0)
      Out += format("[%lld]", static_cast<long long>(S.Decls[I].ArraySize));
    if (S.Decls[I].Init)
      Out += " = " + printExpr(*S.Decls[I].Init);
  }
  return Out;
}

static void printStmtInto(const Stmt &S, int Indent, std::string &Out) {
  const std::string Ind = indentStr(Indent);
  switch (S.K) {
  case Stmt::Decl:
    Out += Ind + printDeclCore(S) + ";\n";
    return;
  case Stmt::ExprSt:
    Out += Ind + printExpr(*S.Cond) + ";\n";
    return;
  case Stmt::Block:
    Out += Ind + "{\n";
    for (const StmtPtr &Sub : S.Body)
      printStmtInto(*Sub, Indent + 1, Out);
    Out += Ind + "}\n";
    return;
  case Stmt::If: {
    Out += Ind + "if (" + printExpr(*S.Cond) + ")";
    printBodyInto(S.thenArm(), Indent, Out);
    if (const Stmt *Else = S.elseArm()) {
      if (Out.back() == '}')
        Out += " else";
      else
        Out += "\n" + Ind + "else";
      printBodyInto(Else, Indent, Out);
    }
    Out += "\n";
    return;
  }
  case Stmt::For: {
    Out += Ind + "for (";
    if (S.InitStmt) {
      switch (S.InitStmt->K) {
      case Stmt::Decl:
        Out += printDeclCore(*S.InitStmt);
        break;
      case Stmt::ExprSt:
        Out += printExpr(*S.InitStmt->Cond);
        break;
      default:
        break;
      }
    }
    Out += "; ";
    if (S.Cond)
      Out += printExpr(*S.Cond);
    Out += "; ";
    if (S.StepExpr)
      Out += printExpr(*S.StepExpr);
    Out += ")";
    printBodyInto(S.forBody(), Indent, Out);
    Out += "\n";
    return;
  }
  case Stmt::Goto:
    Out += Ind + "goto " + S.Name + ";\n";
    return;
  case Stmt::Label:
    Out += S.Name + ":\n";
    return;
  case Stmt::Break:
    Out += Ind + "break;\n";
    return;
  case Stmt::Continue:
    Out += Ind + "continue;\n";
    return;
  case Stmt::Return:
    if (S.Cond)
      Out += Ind + "return " + printExpr(*S.Cond) + ";\n";
    else
      Out += Ind + "return;\n";
    return;
  case Stmt::Empty:
    Out += Ind + ";\n";
    return;
  }
}

std::string lv::minic::printStmt(const Stmt &S, int Indent) {
  std::string Out;
  printStmtInto(S, Indent, Out);
  return Out;
}

std::string lv::minic::printFunction(const Function &F) {
  std::string Out;
  Out += std::string(F.RetTy.str());
  if (F.RetTy.K != Type::IntPtr && F.RetTy.K != Type::VecPtr)
    Out += " ";
  Out += F.Name + "(";
  for (size_t I = 0; I < F.Params.size(); ++I) {
    if (I)
      Out += ", ";
    const Param &P = F.Params[I];
    if (P.Ty.K == Type::IntPtr)
      Out += "int *" + P.Name;
    else if (P.Ty.K == Type::VecPtr)
      Out += "__m256i *" + P.Name;
    else
      Out += std::string(P.Ty.str()) + " " + P.Name;
  }
  Out += ")";
  if (!F.BodyBlock) {
    Out += ";\n";
    return Out;
  }
  Out += " ";
  std::string Body = printStmt(*F.BodyBlock, 0);
  // Body starts with "{\n"; keep as-is.
  Out += Body;
  return Out;
}
