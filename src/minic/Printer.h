//===- minic/Printer.h - AST -> C source pretty printer --------*- C++ -*-===//
///
/// \file
/// Regenerates compilable C text from a mini-C AST. Used for golden tests,
/// the agents' conversation transcripts, and the C-level-unrolling pipeline
/// stage (which round-trips through the AST).
///
//===----------------------------------------------------------------------===//

#ifndef LV_MINIC_PRINTER_H
#define LV_MINIC_PRINTER_H

#include "minic/AST.h"

#include <string>

namespace lv {
namespace minic {

/// Prints a whole function definition.
std::string printFunction(const Function &F);

/// Prints a single statement at the given indent level.
std::string printStmt(const Stmt &S, int Indent = 0);

/// Prints an expression.
std::string printExpr(const Expr &E);

} // namespace minic
} // namespace lv

#endif // LV_MINIC_PRINTER_H
