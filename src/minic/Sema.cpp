//===- minic/Sema.cpp - mini-C semantic checks -----------------------------===//

#include "minic/Sema.h"

#include "minic/Intrinsics.h"
#include "support/Format.h"

#include <cassert>
#include <set>
#include <unordered_map>
#include <vector>

using namespace lv;
using namespace lv::minic;

namespace {

/// Walks the AST checking symbols and types.
class Sema {
public:
  explicit Sema(Function &F) : F(F) {}

  std::string run();

private:
  Function &F;
  std::string Error;
  std::vector<std::unordered_map<std::string, Type>> Scopes;
  std::set<std::string> Labels;
  std::vector<std::string> Gotos;
  int LoopDepth = 0;

  void err(const std::string &Msg) { Error += Msg + "\n"; }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  bool declare(const std::string &Name, Type Ty) {
    auto &Top = Scopes.back();
    if (Top.count(Name)) {
      err(format("redeclaration of '%s'", Name.c_str()));
      return false;
    }
    Top.emplace(Name, Ty);
    return true;
  }

  const Type *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  void collectLabels(const Stmt &S);
  void checkStmt(Stmt &S);
  Type checkExpr(Expr &E);
  Type checkLValue(Expr &E);
};

} // namespace

void Sema::collectLabels(const Stmt &S) {
  if (S.K == Stmt::Label) {
    if (Labels.count(S.Name))
      err(format("duplicate label '%s'", S.Name.c_str()));
    Labels.insert(S.Name);
  }
  if (S.InitStmt)
    collectLabels(*S.InitStmt);
  for (const StmtPtr &Sub : S.Body)
    if (Sub)
      collectLabels(*Sub);
}

Type Sema::checkLValue(Expr &E) {
  Type Ty = checkExpr(E);
  switch (E.K) {
  case Expr::VarRef:
  case Expr::Index:
    return Ty;
  case Expr::Unary:
    if (E.UOp == UnOp::Deref)
      return Ty;
    [[fallthrough]];
  default:
    err("expression is not assignable");
    return Ty;
  }
}

Type Sema::checkExpr(Expr &E) {
  auto result = [&](Type Ty) {
    E.Ty = Ty;
    return Ty;
  };
  switch (E.K) {
  case Expr::IntLit:
    return result(Type::Int);
  case Expr::VarRef: {
    const Type *Ty = lookup(E.Name);
    if (!Ty) {
      err(format("use of undeclared identifier '%s'", E.Name.c_str()));
      return result(Type::Int);
    }
    return result(*Ty);
  }
  case Expr::Index: {
    Type Base = checkExpr(*E.Kids[0]);
    Type Idx = checkExpr(*E.Kids[1]);
    if (Idx.K != Type::Int)
      err("array subscript is not an integer");
    if (Base.K == Type::IntPtr)
      return result(Type::Int);
    if (Base.K == Type::VecPtr)
      return result(Type::M256i);
    err("subscripted value is not a pointer");
    return result(Type::Int);
  }
  case Expr::Unary: {
    switch (E.UOp) {
    case UnOp::Neg:
    case UnOp::LNot:
    case UnOp::BNot: {
      Type Sub = checkExpr(*E.Kids[0]);
      if (Sub.K != Type::Int)
        err("unary operator requires an int operand");
      return result(Type::Int);
    }
    case UnOp::PreInc:
    case UnOp::PreDec:
    case UnOp::PostInc:
    case UnOp::PostDec: {
      Type Sub = checkLValue(*E.Kids[0]);
      if (Sub.K != Type::Int && !Sub.isPointer())
        err("increment/decrement requires an int or pointer lvalue");
      return result(Sub);
    }
    case UnOp::Deref: {
      Type Sub = checkExpr(*E.Kids[0]);
      if (Sub.K == Type::IntPtr)
        return result(Type::Int);
      if (Sub.K == Type::VecPtr)
        return result(Type::M256i);
      err("cannot dereference a non-pointer");
      return result(Type::Int);
    }
    case UnOp::AddrOf: {
      Type Sub = checkExpr(*E.Kids[0]);
      if (E.Kids[0]->K != Expr::Index && E.Kids[0]->K != Expr::VarRef) {
        err("cannot take the address of this expression");
        return result(Type::IntPtr);
      }
      if (Sub.K == Type::Int)
        return result(Type::IntPtr);
      if (Sub.K == Type::M256i)
        return result(Type::VecPtr);
      err("address-of applied to unsupported operand");
      return result(Type::IntPtr);
    }
    }
    return result(Type::Int);
  }
  case Expr::Binary: {
    Type L = checkExpr(*E.Kids[0]);
    Type R = checkExpr(*E.Kids[1]);
    if (E.BOp == BinOp::Comma)
      return result(R);
    // Pointer arithmetic: ptr +/- int.
    if (L.isPointer() && (E.BOp == BinOp::Add || E.BOp == BinOp::Sub)) {
      if (R.K != Type::Int)
        err("pointer arithmetic requires an integer offset");
      return result(L);
    }
    if (R.isPointer() && E.BOp == BinOp::Add) {
      if (L.K != Type::Int)
        err("pointer arithmetic requires an integer offset");
      return result(R);
    }
    if (L.isPointer() && R.isPointer()) {
      // Pointer comparison / difference.
      if (E.BOp == BinOp::Sub || E.BOp == BinOp::Lt || E.BOp == BinOp::Gt ||
          E.BOp == BinOp::Le || E.BOp == BinOp::Ge || E.BOp == BinOp::Eq ||
          E.BOp == BinOp::Ne)
        return result(Type::Int);
      err("invalid operands to binary operator");
      return result(Type::Int);
    }
    if (L.K == Type::M256i || R.K == Type::M256i) {
      err("vector values require intrinsics, not scalar operators");
      return result(Type::M256i);
    }
    return result(Type::Int);
  }
  case Expr::Assign: {
    Type L = checkLValue(*E.Kids[0]);
    Type R = checkExpr(*E.Kids[1]);
    if (!E.IsPlainAssign && (L.K == Type::M256i || R.K == Type::M256i))
      err("compound assignment on vector values is not allowed");
    if (E.IsPlainAssign && L != R &&
        !(L.isPointer() && R.K == Type::Int) /* ptr = 0 */)
      err(format("assigning '%s' from incompatible type '%s'", L.str(),
                 R.str()));
    return result(L);
  }
  case Expr::Ternary: {
    Type C = checkExpr(*E.Kids[0]);
    if (C.K != Type::Int)
      err("ternary condition must be an int");
    Type T = checkExpr(*E.Kids[1]);
    Type El = checkExpr(*E.Kids[2]);
    if (T != El)
      err("ternary arms have mismatched types");
    return result(T);
  }
  case Expr::Call: {
    const IntrinInfo &Info = lookupIntrinsic(E.Name);
    if (Info.Op == IntrinOp::None) {
      err(format("call to unknown function '%s'", E.Name.c_str()));
      for (ExprPtr &A : E.Kids)
        checkExpr(*A);
      return result(Type::Int);
    }
    if (E.Kids.size() != Info.ParamTys.size()) {
      err(format("'%s' expects %zu arguments, got %zu", E.Name.c_str(),
                 Info.ParamTys.size(), E.Kids.size()));
      for (ExprPtr &A : E.Kids)
        checkExpr(*A);
      return result(Info.RetTy);
    }
    for (size_t I = 0; I < E.Kids.size(); ++I) {
      Type Got = checkExpr(*E.Kids[I]);
      Type Want = Info.ParamTys[I];
      if (Got == Want)
        continue;
      // Pointer casts are common ((__m256i*)&a[i]); accept any pointer where
      // a pointer is expected.
      if (Want.isPointer() && Got.isPointer())
        continue;
      err(format("argument %zu of '%s': expected '%s', got '%s'", I + 1,
                 E.Name.c_str(), Want.str(), Got.str()));
    }
    return result(Info.RetTy);
  }
  case Expr::Cast: {
    Type Sub = checkExpr(*E.Kids[0]);
    Type To = E.CastTy;
    if (To.isPointer() && !Sub.isPointer() && Sub.K != Type::Int)
      err("invalid cast to pointer type");
    if (To.K == Type::M256i && Sub.K != Type::M256i)
      err("cannot cast scalar to vector");
    return result(To);
  }
  }
  return result(Type::Int);
}

void Sema::checkStmt(Stmt &S) {
  switch (S.K) {
  case Stmt::Decl:
    for (Declarator &D : S.Decls) {
      Type Ty = S.DeclTy;
      if (D.ArraySize >= 0) {
        if (S.DeclTy.K == Type::Int)
          Ty = Type::IntPtr;
        else if (S.DeclTy.K == Type::M256i)
          Ty = Type::VecPtr;
        else
          err("array declarator requires int or __m256i element type");
      }
      if (D.Init) {
        Type Init = checkExpr(*D.Init);
        if (D.ArraySize >= 0)
          err("array declarations cannot have initializers");
        else if (Init != Ty && !(Ty.isPointer() && Init.K == Type::Int))
          err(format("initializing '%s' with incompatible type '%s'",
                     Ty.str(), Init.str()));
      }
      declare(D.Name, Ty);
    }
    return;
  case Stmt::ExprSt:
    checkExpr(*S.Cond);
    return;
  case Stmt::Block:
    pushScope();
    for (StmtPtr &Sub : S.Body)
      checkStmt(*Sub);
    popScope();
    return;
  case Stmt::If: {
    Type C = checkExpr(*S.Cond);
    if (C.K != Type::Int)
      err("if condition must be an int");
    if (S.thenArm()) {
      pushScope();
      checkStmt(*S.Body[0]);
      popScope();
    }
    if (S.elseArm()) {
      pushScope();
      checkStmt(*S.Body[1]);
      popScope();
    }
    return;
  }
  case Stmt::For: {
    pushScope();
    if (S.InitStmt)
      checkStmt(*S.InitStmt);
    if (S.Cond) {
      Type C = checkExpr(*S.Cond);
      if (C.K != Type::Int)
        err("for condition must be an int");
    }
    if (S.StepExpr)
      checkExpr(*S.StepExpr);
    ++LoopDepth;
    if (S.forBody()) {
      pushScope();
      checkStmt(*S.Body[0]);
      popScope();
    }
    --LoopDepth;
    popScope();
    return;
  }
  case Stmt::Goto:
    Gotos.push_back(S.Name);
    return;
  case Stmt::Label:
    return;
  case Stmt::Break:
  case Stmt::Continue:
    if (LoopDepth == 0)
      err("break/continue outside of a loop");
    return;
  case Stmt::Return:
    if (S.Cond) {
      Type R = checkExpr(*S.Cond);
      if (F.RetTy.K == Type::Void)
        err("void function returns a value");
      else if (R != F.RetTy)
        err("return type mismatch");
    } else if (F.RetTy.K != Type::Void) {
      err("non-void function returns nothing");
    }
    return;
  case Stmt::Empty:
    return;
  }
}

std::string Sema::run() {
  pushScope();
  for (const Param &P : F.Params)
    declare(P.Name, P.Ty);
  if (F.BodyBlock) {
    collectLabels(*F.BodyBlock);
    // The outermost block shares the parameter scope (C6.2.1): a local that
    // redeclares a parameter is an error, so iterate its children directly
    // rather than opening a fresh scope.
    for (StmtPtr &Sub : F.BodyBlock->Body)
      checkStmt(*Sub);
  }
  for (const std::string &G : Gotos)
    if (!Labels.count(G))
      err(format("goto targets unknown label '%s'", G.c_str()));
  popScope();
  return Error;
}

SemaResult lv::minic::checkFunction(Function &F) {
  SemaResult R;
  Sema S(F);
  R.Error = S.run();
  return R;
}
