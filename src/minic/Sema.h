//===- minic/Sema.h - mini-C semantic checks -------------------*- C++ -*-===//
///
/// \file
/// Semantic analysis: scoped symbol resolution, type checking (including
/// intrinsic signatures), and goto/label validation. Annotates Expr::Ty in
/// place. A candidate that fails Sema is the reproduction's "Cannot
/// compile" outcome (Table 2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef LV_MINIC_SEMA_H
#define LV_MINIC_SEMA_H

#include "minic/AST.h"

#include <string>

namespace lv {
namespace minic {

/// Result of semantic analysis.
struct SemaResult {
  std::string Error; ///< Empty when the function is well-formed.

  bool ok() const { return Error.empty(); }
};

/// Checks and type-annotates \p F.
SemaResult checkFunction(Function &F);

} // namespace minic
} // namespace lv

#endif // LV_MINIC_SEMA_H
