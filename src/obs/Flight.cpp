//===- obs/Flight.cpp - funnel flight recorder ----------------------------===//

#include "obs/Flight.h"

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>

namespace lv {
namespace obs {

namespace {

constexpr size_t RingCapacity = 256;
constexpr size_t SlowCapacity = 128;
constexpr uint64_t DefaultSlowThresholdNanos = 250'000'000; // 250 ms.

struct FlightState {
  std::mutex Mu;
  std::deque<TaskRecord> Ring;
  std::deque<TaskRecord> Slow;
  uint64_t TasksSeen = 0;
  uint64_t Failures = 0;
};

FlightState &flightState() {
  static FlightState S;
  return S;
}

std::atomic<bool> Enabled{false};
std::atomic<uint64_t> SlowThreshold{DefaultSlowThresholdNanos};

void appendRecord(std::string &Out, const TaskRecord &R) {
  char Line[512];
  std::snprintf(Line, sizeof(Line), "  %-14s %-8s %8.3f ms  %s%s\n",
                R.Name.c_str(), R.Mode.c_str(),
                static_cast<double>(R.WallNanos) / 1e6,
                R.Failed ? "FAILED " : "", R.Summary.c_str());
  Out += Line;
}

void recordLocked(FlightState &S, const TaskRecord &R) {
  ++S.TasksSeen;
  if (R.Failed)
    ++S.Failures;
  S.Ring.push_back(R);
  if (S.Ring.size() > RingCapacity)
    S.Ring.pop_front();
  if (R.WallNanos >= SlowThreshold.load(std::memory_order_relaxed)) {
    S.Slow.push_back(R);
    if (S.Slow.size() > SlowCapacity)
      S.Slow.pop_front();
  }
}

std::string textLocked(FlightState &S) {
  std::string Out;
  char Line[160];
  std::snprintf(Line, sizeof(Line),
                "flight recorder: %llu tasks seen, %llu failed, "
                "%zu in ring, %zu slow (threshold %.1f ms)\n",
                static_cast<unsigned long long>(S.TasksSeen),
                static_cast<unsigned long long>(S.Failures), S.Ring.size(),
                S.Slow.size(),
                static_cast<double>(
                    SlowThreshold.load(std::memory_order_relaxed)) /
                    1e6);
  Out += Line;
  if (!S.Ring.empty()) {
    Out += "recent tasks (oldest first):\n";
    for (const TaskRecord &R : S.Ring)
      appendRecord(Out, R);
  }
  if (!S.Slow.empty()) {
    Out += "slow tasks:\n";
    for (const TaskRecord &R : S.Slow)
      appendRecord(Out, R);
  }
  return Out;
}

} // namespace

bool flightEnabled() { return Enabled.load(std::memory_order_relaxed); }

void setFlightEnabled(bool E) {
  Enabled.store(E, std::memory_order_relaxed);
}

void setSlowTaskThresholdNanos(uint64_t Nanos) {
  SlowThreshold.store(Nanos, std::memory_order_relaxed);
}

uint64_t slowTaskThresholdNanos() {
  return SlowThreshold.load(std::memory_order_relaxed);
}

void recordTask(const TaskRecord &R) {
  if (!Enabled.load(std::memory_order_relaxed))
    return;
  FlightState &S = flightState();
  std::lock_guard<std::mutex> Lock(S.Mu);
  recordLocked(S, R);
}

void noteTrap(const TaskRecord &R) {
  if (!Enabled.load(std::memory_order_relaxed))
    return;
  FlightState &S = flightState();
  std::string Text;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    TaskRecord Failed = R;
    Failed.Failed = true;
    recordLocked(S, Failed);
    Text = textLocked(S);
  }
  std::fprintf(stderr, "=== obs flight dump (trap in %s) ===\n%s",
               R.Name.c_str(), Text.c_str());
}

std::string flightText() {
  FlightState &S = flightState();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return textLocked(S);
}

uint64_t flightTasksSeen() {
  FlightState &S = flightState();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.TasksSeen;
}

void resetFlight() {
  FlightState &S = flightState();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Ring.clear();
  S.Slow.clear();
  S.TasksSeen = 0;
  S.Failures = 0;
}

} // namespace obs
} // namespace lv
