//===- obs/Flight.h - funnel flight recorder --------------------*- C++ -*-===//
///
/// \file
/// A flight recorder for the verification funnel: a ring buffer of the
/// most recent task summaries plus a separate log of slow tasks (wall time
/// above a configurable threshold), dumped on demand (`flightText()`) or
/// automatically to stderr when a task fails (`noteTrap`). The point is
/// post-hoc diagnosability: when a budget-borderline SAT verdict flips or
/// an interpreter hang trips the fuel cap, the recorder shows what the
/// worker pool was doing in the moments before — without any tracing
/// enabled and at near-zero steady-state cost (one mutexed ring append per
/// completed task, nothing per span or per query).
///
/// Disabled by default; `svc` drivers flip it on alongside `--trace`.
///
//===----------------------------------------------------------------------===//

#ifndef LV_OBS_FLIGHT_H
#define LV_OBS_FLIGHT_H

#include <cstdint>
#include <string>

namespace lv {
namespace obs {

/// One completed task, as remembered by the recorder.
struct TaskRecord {
  std::string Name;    ///< Request name (e.g. TSVC test id).
  std::string Mode;    ///< Run mode ("pipeline", "sample", ...).
  std::string Summary; ///< One-line outcome (verdict / error).
  uint64_t WallNanos = 0;
  uint64_t EndNanos = 0; ///< traceClockNanos() at completion.
  bool Failed = false;
};

bool flightEnabled();
void setFlightEnabled(bool Enabled);

/// Wall-time threshold above which a task is additionally kept in the
/// slow-task log (default 250 ms).
void setSlowTaskThresholdNanos(uint64_t Nanos);
uint64_t slowTaskThresholdNanos();

/// Appends \p R to the ring (and the slow log when over threshold).
/// No-op while disabled.
void recordTask(const TaskRecord &R);

/// Marks a trap/failure: records \p R with Failed forced true and dumps
/// the recorder to stderr so the context is preserved even if the process
/// dies next. No-op while disabled.
void noteTrap(const TaskRecord &R);

/// Human-readable dump: recent ring (oldest first), then the slow-task
/// log, then counts of everything seen since the last reset.
std::string flightText();

/// Tasks observed since the last resetFlight() (recorded or not — the ring
/// only keeps the tail).
uint64_t flightTasksSeen();

/// Clears ring, slow log, and counts; keeps enablement and threshold.
void resetFlight();

} // namespace obs
} // namespace lv

#endif // LV_OBS_FLIGHT_H
