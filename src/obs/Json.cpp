//===- obs/Json.cpp - minimal JSON validation -----------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cstdio>

namespace lv {
namespace obs {
namespace json {

namespace {

constexpr int MaxDepth = 64;

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string *Err;

  explicit Parser(const std::string &Text, std::string *Err)
      : Text(Text), Err(Err) {}

  bool fail(const char *Msg) {
    if (Err && Err->empty()) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "%s at offset %zu", Msg, Pos);
      *Err = Buf;
    }
    return false;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!atEnd()) {
      char C = Text[Pos];
      if (C == ' ' || C == '\t' || C == '\n' || C == '\r')
        ++Pos;
      else
        break;
    }
  }

  bool consume(char C, const char *Msg) {
    skipWs();
    if (atEnd() || Text[Pos] != C)
      return fail(Msg);
    ++Pos;
    return true;
  }

  bool literal(const char *Word) {
    size_t Len = 0;
    while (Word[Len])
      ++Len;
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool string(std::string *Out) {
    if (atEnd() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (true) {
      if (atEnd())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("control character in string");
      if (C == '\\') {
        ++Pos;
        if (atEnd())
          return fail("unterminated escape");
        char E = Text[Pos];
        if (E == '"' || E == '\\' || E == '/' || E == 'b' || E == 'f' ||
            E == 'n' || E == 'r' || E == 't') {
          if (Out)
            *Out += E; // Close enough for key extraction.
          ++Pos;
        } else if (E == 'u') {
          ++Pos;
          for (int I = 0; I < 4; ++I, ++Pos) {
            if (atEnd() || !std::isxdigit(
                               static_cast<unsigned char>(Text[Pos])))
              return fail("invalid \\u escape");
          }
          if (Out)
            *Out += '?';
        } else {
          return fail("invalid escape");
        }
      } else {
        if (Out)
          *Out += static_cast<char>(C);
        ++Pos;
      }
    }
  }

  bool number() {
    size_t Start = Pos;
    if (!atEnd() && Text[Pos] == '-')
      ++Pos;
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("invalid number");
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    if (!atEnd() && Text[Pos] == '.') {
      ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("invalid fraction");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (!atEnd() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (!atEnd() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("invalid exponent");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value(int Depth, std::vector<std::string> *TopKeys) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (atEnd())
      return fail("unexpected end of input");
    char C = peek();
    if (C == '{')
      return object(Depth, TopKeys);
    if (C == '[')
      return array(Depth);
    if (C == '"')
      return string(nullptr);
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return number();
    return fail("unexpected character");
  }

  bool object(int Depth, std::vector<std::string> *TopKeys) {
    ++Pos; // '{'
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (!string(TopKeys ? &Key : nullptr))
        return false;
      if (TopKeys)
        TopKeys->push_back(std::move(Key));
      if (!consume(':', "expected ':'"))
        return false;
      if (!value(Depth + 1, nullptr))
        return false;
      skipWs();
      if (atEnd())
        return fail("unterminated object");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int Depth) {
    ++Pos; // '['
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      if (!value(Depth + 1, nullptr))
        return false;
      skipWs();
      if (atEnd())
        return fail("unterminated array");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

} // namespace

bool validate(const std::string &Text, std::string *Err,
              std::vector<std::string> *TopKeys) {
  if (Err)
    Err->clear();
  Parser P(Text, Err);
  if (!P.value(0, TopKeys))
    return false;
  P.skipWs();
  if (!P.atEnd())
    return P.fail("trailing content");
  return true;
}

bool validateFile(const std::string &Path, std::string *Err,
                  std::vector<std::string> *TopKeys) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return validate(Text, Err, TopKeys);
}

} // namespace json
} // namespace obs
} // namespace lv
