//===- obs/Json.h - minimal JSON validation ---------------------*- C++ -*-===//
///
/// \file
/// A dependency-free JSON well-formedness checker, just enough for the
/// bench gates and tests to assert that emitted trace/metrics/bench
/// artifacts parse and to extract their top-level object keys. Strict
/// (RFC 8259 grammar, depth-limited) but non-materializing: it validates
/// without building a DOM.
///
//===----------------------------------------------------------------------===//

#ifndef LV_OBS_JSON_H
#define LV_OBS_JSON_H

#include <string>
#include <vector>

namespace lv {
namespace obs {
namespace json {

/// Validates \p Text as a single JSON value. On failure returns false and,
/// when \p Err is non-null, describes the first error with its byte
/// offset. When the document is a top-level object and \p TopKeys is
/// non-null, the object's keys are appended in document order.
bool validate(const std::string &Text, std::string *Err = nullptr,
              std::vector<std::string> *TopKeys = nullptr);

/// Reads \p Path and validates its contents; a missing/unreadable file is
/// a validation failure.
bool validateFile(const std::string &Path, std::string *Err = nullptr,
                  std::vector<std::string> *TopKeys = nullptr);

} // namespace json
} // namespace obs
} // namespace lv

#endif // LV_OBS_JSON_H
