//===- obs/Metrics.cpp - process-wide metrics registry --------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace lv {
namespace obs {

namespace {

/// Registry maps are only touched at instrument registration / scrape /
/// reset; hot paths hold direct Counter&/Histogram& references. Values are
/// unique_ptrs so handed-out references survive map rehashing.
struct MetricsRegistry {
  std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

MetricsRegistry &metricsRegistry() {
  static MetricsRegistry R;
  return R;
}

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
}

} // namespace

Counter &counter(const std::string &Name) {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto &Slot = R.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Histogram &histogram(const std::string &Name) {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto &Slot = R.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

std::vector<CounterSample> snapshotCounters() {
  std::vector<CounterSample> Out;
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Out.reserve(R.Counters.size());
  for (const auto &KV : R.Counters)
    Out.push_back(CounterSample{KV.first, KV.second->value()});
  return Out; // std::map iteration is already name-sorted.
}

std::vector<HistogramSample> snapshotHistograms() {
  std::vector<HistogramSample> Out;
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Out.reserve(R.Histograms.size());
  for (const auto &KV : R.Histograms) {
    HistogramSample S;
    S.Name = KV.first;
    S.Count = KV.second->count();
    S.Sum = KV.second->sum();
    for (int I = 0; I < Histogram::NumBuckets; ++I) {
      uint64_t N = KV.second->bucket(I);
      if (N)
        S.Buckets.emplace_back(Histogram::bucketBound(I), N);
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

uint64_t counterValue(const std::string &Name) {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Counters.find(Name);
  return It == R.Counters.end() ? 0 : It->second->value();
}

std::string metricsJson() {
  std::vector<CounterSample> Cs = snapshotCounters();
  std::vector<HistogramSample> Hs = snapshotHistograms();

  std::string Out;
  Out.reserve(256 + Cs.size() * 48 + Hs.size() * 256);
  char Num[32];
  Out += "{\"schema_version\": 1,\n \"counters\": {";
  bool First = true;
  for (const CounterSample &C : Cs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"";
    appendEscaped(Out, C.Name);
    Out += "\": ";
    std::snprintf(Num, sizeof(Num), "%llu",
                  static_cast<unsigned long long>(C.Value));
    Out += Num;
  }
  Out += "\n },\n \"histograms\": {";
  First = true;
  for (const HistogramSample &H : Hs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"";
    appendEscaped(Out, H.Name);
    Out += "\": {\"count\": ";
    std::snprintf(Num, sizeof(Num), "%llu",
                  static_cast<unsigned long long>(H.Count));
    Out += Num;
    Out += ", \"sum_ns\": ";
    std::snprintf(Num, sizeof(Num), "%llu",
                  static_cast<unsigned long long>(H.Sum));
    Out += Num;
    Out += ", \"buckets\": [";
    bool FirstB = true;
    for (const auto &B : H.Buckets) {
      if (!FirstB)
        Out += ", ";
      FirstB = false;
      Out += "[";
      // The unbounded last bucket reports bound -1 (UINT64_MAX is not
      // representable in strict JSON readers that parse into int64).
      if (B.first == UINT64_MAX)
        Out += "-1";
      else {
        std::snprintf(Num, sizeof(Num), "%llu",
                      static_cast<unsigned long long>(B.first));
        Out += Num;
      }
      Out += ", ";
      std::snprintf(Num, sizeof(Num), "%llu",
                    static_cast<unsigned long long>(B.second));
      Out += Num;
      Out += "]";
    }
    Out += "]}";
  }
  Out += "\n }\n}\n";
  return Out;
}

bool writeMetricsJson(const std::string &Path) {
  std::string Json = metricsJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  return Written == Json.size();
}

void resetMetrics() {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &KV : R.Counters)
    KV.second->reset();
  for (auto &KV : R.Histograms)
    KV.second->reset();
}

} // namespace obs
} // namespace lv
