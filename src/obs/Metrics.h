//===- obs/Metrics.h - process-wide metrics registry ------------*- C++ -*-===//
///
/// \file
/// Named lock-free counters and fixed-bucket latency histograms, registered
/// once and aggregated at scrape time. Subsystems feed generic instruments
/// (`smt/Sat` → `sat.*`, `tv/Refine` → `tv.*`, `interp/Checksum` →
/// `interp.*`, `svc/Service` → `svc.*` and `equiv.*_ns`) instead of growing
/// more hand-rolled tally structs; bench drivers scrape everything at once
/// with metricsJson().
///
/// Instrument handles are stable for the process lifetime: look one up once
/// (a map + mutex, registration-time only) and cache the reference —
/// typically via a function-local static:
///
/// \code
///   static obs::Counter &Solves = obs::counter("sat.solves");
///   Solves.inc();
/// \endcode
///
/// after which the hot path is a single relaxed atomic add. Counters and
/// histograms never reset behind your back; resetMetrics() (bench phase
/// boundaries, tests) zeroes values but keeps every handle valid.
///
//===----------------------------------------------------------------------===//

#ifndef LV_OBS_METRICS_H
#define LV_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lv {
namespace obs {

/// Monotonic counter; inc()/add() are relaxed atomic adds.
class Counter {
public:
  void inc(uint64_t N = 1) { Val.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Val{0};
};

/// Fixed-bucket latency histogram over nanoseconds. Bucket I counts
/// observations with value < 2^I ns (the last bucket is unbounded), which
/// spans 1 ns .. ~9 s in 40 buckets — wide enough for a single SAT
/// propagation and a full funnel task alike. observe() is two relaxed
/// atomic adds plus one on the matching bucket; no locks, no allocation.
class Histogram {
public:
  static constexpr int NumBuckets = 40;

  void observe(uint64_t Nanos) {
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Nanos, std::memory_order_relaxed);
    Buckets[bucketFor(Nanos)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t bucket(int I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Upper bound (exclusive) of bucket \p I in nanoseconds; the final
  /// bucket reports UINT64_MAX.
  static uint64_t bucketBound(int I) {
    return I + 1 >= NumBuckets ? UINT64_MAX : (uint64_t(1) << (I + 1));
  }

  void reset() {
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
  }

private:
  static int bucketFor(uint64_t Nanos) {
    int I = 0;
    while (I + 1 < NumBuckets && Nanos >= (uint64_t(1) << (I + 1)))
      ++I;
    return I;
  }

  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// Returns the process-wide counter registered under \p Name, creating it
/// on first use. The reference stays valid for the process lifetime.
Counter &counter(const std::string &Name);

/// Returns the process-wide histogram registered under \p Name, creating
/// it on first use. The reference stays valid for the process lifetime.
Histogram &histogram(const std::string &Name);

/// Point-in-time scrape of one counter.
struct CounterSample {
  std::string Name;
  uint64_t Value = 0;
};

/// Point-in-time scrape of one histogram (non-empty buckets only).
struct HistogramSample {
  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::vector<std::pair<uint64_t, uint64_t>> Buckets; ///< (bound, count).
};

/// Name-sorted scrape of every registered instrument (deterministic, so
/// exports diff cleanly across runs).
std::vector<CounterSample> snapshotCounters();
std::vector<HistogramSample> snapshotHistograms();

/// Current value of the counter registered under \p Name (0 when absent —
/// an unexercised code path simply never registered its instrument).
uint64_t counterValue(const std::string &Name);

/// Scrape as JSON: {"schema_version": 1, "counters": {...},
/// "histograms": {...}} with histograms reporting count/sum_ns plus
/// non-empty (bound, count) bucket pairs.
std::string metricsJson();

/// metricsJson() to a file. Returns false when the file cannot be written.
bool writeMetricsJson(const std::string &Path);

/// Zeroes every registered instrument; handles stay valid. For bench phase
/// boundaries and tests — not thread-safe against concurrent observers in
/// the sense that in-flight increments may land on either side.
void resetMetrics();

} // namespace obs
} // namespace lv

#endif // LV_OBS_METRICS_H
