//===- obs/Trace.cpp - per-request tracing --------------------------------===//

#include "obs/Trace.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace lv {
namespace obs {

namespace {

/// Per-thread event cap. A full table-3 run with --trace records on the
/// order of 10^4 spans per worker; 2^20 leaves two orders of magnitude of
/// headroom while bounding worst-case memory at ~100 MB per runaway
/// thread.
constexpr size_t MaxEventsPerThread = size_t(1) << 20;

/// One thread's trace buffer. Owned by the global registry (not the
/// thread), so events survive thread exit — svc worker pools are torn
/// down before the driver exports the trace.
struct ThreadBuf {
  /// Guards Events. Uncontended in steady state: the owning thread
  /// appends; snapshot/reset (quiescent points) take it from outside.
  std::mutex Mu;
  std::vector<TraceEvent> Events;
  uint64_t Dropped = 0;
  uint32_t Tid = 0;
  /// Span nesting depth; touched only by the owning thread.
  uint32_t Depth = 0;
};

struct Registry {
  std::mutex Mu;
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;
};

Registry &registry() {
  static Registry R;
  return R;
}

std::atomic<bool> Enabled{false};

ThreadBuf &threadBuf() {
  thread_local ThreadBuf *Buf = [] {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto Owned = std::make_unique<ThreadBuf>();
    Owned->Tid = static_cast<uint32_t>(R.Bufs.size());
    ThreadBuf *Raw = Owned.get();
    R.Bufs.push_back(std::move(Owned));
    return Raw;
  }();
  return *Buf;
}

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

bool tracingEnabled() { return Enabled.load(std::memory_order_relaxed); }

void setTracingEnabled(bool E) {
  Enabled.store(E, std::memory_order_relaxed);
}

uint64_t traceClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Span::Span(const char *Cat, const char *Name, uint64_t *DurOut)
    : Cat(Cat), Name(Name), DurOut(DurOut) {
  Active = Enabled.load(std::memory_order_relaxed);
  if (!Active && !DurOut)
    return; // Disabled, no duration requested: one load + branch, done.
  T0 = traceClockNanos();
  if (Active)
    Depth = threadBuf().Depth++;
}

Span::~Span() {
  if (!Active) {
    if (DurOut)
      *DurOut += traceClockNanos() - T0;
    return;
  }
  uint64_t T1 = traceClockNanos();
  uint64_t Dur = T1 - T0;
  if (DurOut)
    *DurOut += Dur;
  ThreadBuf &Buf = threadBuf();
  --Buf.Depth;
  std::lock_guard<std::mutex> Lock(Buf.Mu);
  if (Buf.Events.size() >= MaxEventsPerThread) {
    ++Buf.Dropped;
    counter("obs.trace_dropped").inc();
    return;
  }
  TraceEvent Ev;
  Ev.Cat = Cat;
  Ev.Name = Name;
  Ev.StartNs = T0;
  Ev.DurNs = Dur;
  Ev.Tid = Buf.Tid;
  Ev.Depth = Buf.Depth;
  Ev.Args = std::move(Args);
  Ev.StrArgs = std::move(StrArgs);
  Buf.Events.push_back(std::move(Ev));
}

void Span::arg(const char *Key, uint64_t Val) {
  if (!Active)
    return;
  Args.push_back(TraceArg{Key, Val});
}

void Span::argStr(const char *Key, const std::string &Val) {
  if (!Active)
    return;
  StrArgs.push_back(TraceStrArg{Key, Val});
}

TraceStats traceStats() {
  TraceStats S;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  S.Threads = R.Bufs.size();
  for (auto &Buf : R.Bufs) {
    std::lock_guard<std::mutex> BLock(Buf->Mu);
    S.Events += Buf->Events.size();
    S.Dropped += Buf->Dropped;
  }
  return S;
}

void resetTrace() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &Buf : R.Bufs) {
    std::lock_guard<std::mutex> BLock(Buf->Mu);
    Buf->Events.clear();
    Buf->Dropped = 0;
  }
}

std::vector<TraceEvent> snapshotTrace() {
  std::vector<TraceEvent> Out;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &Buf : R.Bufs) {
    std::lock_guard<std::mutex> BLock(Buf->Mu);
    Out.insert(Out.end(), Buf->Events.begin(), Buf->Events.end());
  }
  return Out;
}

std::string traceChromeJson() {
  std::vector<TraceEvent> Events = snapshotTrace();
  std::sort(Events.begin(), Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.Tid < B.Tid;
            });
  // Rebase so the timeline starts near zero; chrome://tracing renders
  // microseconds.
  uint64_t Base = Events.empty() ? 0 : Events.front().StartNs;

  std::string Out;
  Out.reserve(128 + Events.size() * 160);
  Out += "{\"traceEvents\": [";
  char Num[64];
  bool First = true;
  for (const TraceEvent &Ev : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"name\": \"";
    appendJsonEscaped(Out, Ev.Name);
    Out += "\", \"cat\": \"";
    appendJsonEscaped(Out, Ev.Cat);
    Out += "\", \"ph\": \"X\", \"ts\": ";
    std::snprintf(Num, sizeof(Num), "%.3f",
                  static_cast<double>(Ev.StartNs - Base) / 1000.0);
    Out += Num;
    Out += ", \"dur\": ";
    std::snprintf(Num, sizeof(Num), "%.3f",
                  static_cast<double>(Ev.DurNs) / 1000.0);
    Out += Num;
    Out += ", \"pid\": 0, \"tid\": ";
    std::snprintf(Num, sizeof(Num), "%u", Ev.Tid);
    Out += Num;
    Out += ", \"args\": {";
    bool FirstArg = true;
    for (const TraceArg &A : Ev.Args) {
      if (!FirstArg)
        Out += ", ";
      FirstArg = false;
      Out += "\"";
      appendJsonEscaped(Out, A.Key);
      Out += "\": ";
      std::snprintf(Num, sizeof(Num), "%llu",
                    static_cast<unsigned long long>(A.Val));
      Out += Num;
    }
    for (const TraceStrArg &A : Ev.StrArgs) {
      if (!FirstArg)
        Out += ", ";
      FirstArg = false;
      Out += "\"";
      appendJsonEscaped(Out, A.Key);
      Out += "\": \"";
      appendJsonEscaped(Out, A.Val);
      Out += "\"";
    }
    Out += "}}";
  }
  Out += "\n]}\n";
  return Out;
}

bool writeTraceChromeJson(const std::string &Path) {
  std::string Json = traceChromeJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  return Written == Json.size();
}

} // namespace obs
} // namespace lv
