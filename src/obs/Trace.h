//===- obs/Trace.h - per-request tracing ------------------------*- C++ -*-===//
///
/// \file
/// The tracing half of the `lv::obs` observability spine: nanosecond spans
/// collected into per-thread buffers and exported as Chrome trace-event
/// JSON, so a whole bench run — funnel stages, SAT queries, checksum
/// batches — renders as a timeline in `chrome://tracing` or Perfetto.
///
/// Design contract (the "overhead contract", see src/obs/README.md):
///
///   * **Disabled is free.** With tracing disabled (the default), entering
///     and leaving a span is one relaxed atomic load and a branch: no
///     clock read, no allocation, no locking. Spans asked to accumulate a
///     duration (`DurOut`) additionally pay two clock reads — exactly the
///     cost of the `StageTimer` bookkeeping they replace.
///   * **Enabled is cheap.** A recorded span costs two clock reads plus
///     one append to a thread-local buffer guarded by an uncontended
///     per-thread mutex. Argument strings allocate only while recording.
///   * **Never perturbs verdicts.** Tracing touches no RNG stream, no
///     solver state, and no interpreter state; enabling it cannot move a
///     verdict, a cycle count, or a configHash.
///
/// Buffers are owned by a process-wide registry and outlive their threads,
/// so spans recorded by `svc` worker pools survive service destruction and
/// are still there when the driver exports the trace. Export/reset are
/// meant for quiescent points (between bench phases); per-thread caps drop
/// the newest events on overflow and count the drops (`obs.trace_dropped`
/// metric + TraceStats::Dropped) — no silent truncation.
///
//===----------------------------------------------------------------------===//

#ifndef LV_OBS_TRACE_H
#define LV_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace lv {
namespace obs {

/// One integer key/value attached to a span. Keys must be string literals
/// (the event stores the pointer, not a copy).
struct TraceArg {
  const char *Key = nullptr;
  uint64_t Val = 0;
};

/// One string key/value attached to a span.
struct TraceStrArg {
  const char *Key = nullptr;
  std::string Val;
};

/// A completed span. Start times come from one process-wide monotonic
/// clock, so events from different threads order correctly on a shared
/// timeline; the exporter rebases them so the trace starts near t=0.
struct TraceEvent {
  const char *Cat = "";  ///< Category ("svc", "equiv", "tv", "interp").
  const char *Name = ""; ///< Span name ("stage.alive2", "checksum.batch").
  uint64_t StartNs = 0;  ///< Monotonic start.
  uint64_t DurNs = 0;    ///< Wall duration.
  uint32_t Tid = 0;      ///< Stable per-thread id (registration order).
  uint32_t Depth = 0;    ///< Nesting depth on its thread at entry.
  std::vector<TraceArg> Args;
  std::vector<TraceStrArg> StrArgs;
};

/// Global enable flag (relaxed atomic; default off).
bool tracingEnabled();
void setTracingEnabled(bool Enabled);

/// Monotonic nanosecond clock used for span timestamps.
uint64_t traceClockNanos();

/// RAII span. Construction samples the clock and the thread's nesting
/// depth when tracing is enabled (or when \p DurOut is non-null);
/// destruction accumulates the duration into \p DurOut and, when enabled,
/// appends one TraceEvent to the calling thread's buffer.
///
/// \p Cat and \p Name must be string literals (or otherwise outlive the
/// trace); dynamic identity goes into argStr().
class Span {
public:
  explicit Span(const char *Cat, const char *Name,
                uint64_t *DurOut = nullptr);
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches an integer argument (no-op when not recording).
  void arg(const char *Key, uint64_t Val);
  /// Attaches a string argument (copies — and therefore allocates — only
  /// when recording).
  void argStr(const char *Key, const std::string &Val);

  /// True when this span will be recorded into the trace buffer.
  bool active() const { return Active; }

private:
  const char *Cat;
  const char *Name;
  uint64_t *DurOut;
  uint64_t T0 = 0;
  uint32_t Depth = 0;
  bool Active = false;
  std::vector<TraceArg> Args;
  std::vector<TraceStrArg> StrArgs;
};

/// Trace-buffer statistics.
struct TraceStats {
  size_t Events = 0;   ///< Recorded events across all thread buffers.
  uint64_t Dropped = 0; ///< Events dropped by the per-thread cap.
  size_t Threads = 0;  ///< Thread buffers ever registered.
};

TraceStats traceStats();

/// Clears every thread buffer (the buffers themselves persist, so
/// registered threads keep recording). Call at a quiescent point.
void resetTrace();

/// Copies every recorded event out of the thread buffers (unordered across
/// threads; sort by StartNs if needed). Call at a quiescent point.
std::vector<TraceEvent> snapshotTrace();

/// Renders the recorded events as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`), timestamps rebased to the earliest event.
/// Loadable directly in chrome://tracing and ui.perfetto.dev.
std::string traceChromeJson();

/// traceChromeJson() to a file. Returns false when the file cannot be
/// written.
bool writeTraceChromeJson(const std::string &Path);

} // namespace obs
} // namespace lv

#endif // LV_OBS_TRACE_H
