//===- smt/Blast.cpp - term -> CNF bit-blasting ------------------------------===//

#include "smt/Blast.h"

#include <cassert>

using namespace lv;
using namespace lv::smt;

BitBlaster::BitBlaster(const TermTable &TT, SatSolver &S) : TT(TT), S(S) {
  TrueLit = Lit(S.newVar(), false);
  S.addClause(TrueLit);
}

//===----------------------------------------------------------------------===//
// Gates
//===----------------------------------------------------------------------===//

static uint64_t gateKey(int Op, Lit A, Lit B) {
  // Commutative ops are normalized by the callers (sorted operands).
  return (static_cast<uint64_t>(Op) << 60) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(A.X)) << 30) ^
         static_cast<uint64_t>(static_cast<uint32_t>(B.X));
}

Lit BitBlaster::gAnd(Lit A, Lit B) {
  bool CA, CB;
  if (isConstLit(A, CA))
    return CA ? B : falseLit();
  if (isConstLit(B, CB))
    return CB ? A : falseLit();
  if (A == B)
    return A;
  if (A == ~B)
    return falseLit();
  if (B.X < A.X)
    std::swap(A, B);
  uint64_t Key = gateKey(1, A, B);
  Lit Z;
  if (GateCache.find(Key, Z))
    return Z;
  Z = freshLit();
  S.addClause(~Z, A);
  S.addClause(~Z, B);
  S.addClause(~A, ~B, Z);
  GateCache.insert(Key, Z);
  return Z;
}

Lit BitBlaster::gXor(Lit A, Lit B) {
  bool CA, CB;
  if (isConstLit(A, CA))
    return CA ? ~B : B;
  if (isConstLit(B, CB))
    return CB ? ~A : A;
  if (A == B)
    return falseLit();
  if (A == ~B)
    return TrueLit;
  // Normalize: strip polarity into a result flip.
  bool Flip = false;
  if (A.sign()) {
    A = ~A;
    Flip = !Flip;
  }
  if (B.sign()) {
    B = ~B;
    Flip = !Flip;
  }
  if (B.X < A.X)
    std::swap(A, B);
  uint64_t Key = gateKey(2, A, B);
  Lit Z;
  if (!GateCache.find(Key, Z)) {
    Z = freshLit();
    S.addClause(~Z, A, B);
    S.addClause(~Z, ~A, ~B);
    S.addClause(Z, ~A, B);
    S.addClause(Z, A, ~B);
    GateCache.insert(Key, Z);
  }
  return Flip ? ~Z : Z;
}

Lit BitBlaster::gMux(Lit Sel, Lit T, Lit E) {
  bool C;
  if (isConstLit(Sel, C))
    return C ? T : E;
  if (T == E)
    return T;
  if (T == ~E) // mux(s, ~e, e) = s XOR e
    return gXor(Sel, E);
  // Three disjoint 21-bit fields: collision-free up to ~1M variables.
  assert(Sel.X < (1 << 21) && T.X < (1 << 21) && E.X < (1 << 21));
  uint64_t Key = (3ULL << 63) |
                 (static_cast<uint64_t>(static_cast<uint32_t>(Sel.X)) << 42) |
                 (static_cast<uint64_t>(static_cast<uint32_t>(T.X)) << 21) |
                 static_cast<uint64_t>(static_cast<uint32_t>(E.X));
  Lit Z;
  if (GateCache.find(Key, Z))
    return Z;
  Z = freshLit();
  S.addClause(~Sel, ~T, Z);
  S.addClause(~Sel, T, ~Z);
  S.addClause(Sel, ~E, Z);
  S.addClause(Sel, E, ~Z);
  GateCache.insert(Key, Z);
  return Z;
}

//===----------------------------------------------------------------------===//
// Word helpers
//===----------------------------------------------------------------------===//

BitBlaster::Word BitBlaster::wConst(uint32_t V, int Width) {
  // Width can exceed 32 (e.g. double-width wMul accumulators); bits past
  // the value's width are zero, and shifting a uint32_t by >= 32 is UB.
  Word W(static_cast<size_t>(Width));
  for (int I = 0; I < Width; ++I)
    W[static_cast<size_t>(I)] = constLit(I < 32 && ((V >> I) & 1));
  return W;
}

BitBlaster::Word BitBlaster::wAdd(WordView A, WordView B, Lit CarryIn,
                                  Lit *CarryOut, Lit *CarryPrev) {
  size_t N = A.size();
  assert(B.size() == N);
  Word Sum(N);
  Lit C = CarryIn;
  Lit PrevC = CarryIn;
  for (size_t I = 0; I < N; ++I) {
    Lit AxB = gXor(A[I], B[I]);
    Sum[I] = gXor(AxB, C);
    PrevC = C;
    // carry = (a & b) | (c & (a ^ b))
    C = gOr(gAnd(A[I], B[I]), gAnd(C, AxB));
  }
  if (CarryOut)
    *CarryOut = C;
  if (CarryPrev)
    *CarryPrev = PrevC;
  return Sum;
}

BitBlaster::Word BitBlaster::wNeg(WordView A) {
  Word NotA(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    NotA[I] = ~A[I];
  return wAdd(NotA, wConst(0, static_cast<int>(A.size())), TrueLit, nullptr,
              nullptr);
}

BitBlaster::Word BitBlaster::wMux(Lit Sel, WordView T, WordView E) {
  Word R(T.size());
  for (size_t I = 0; I < T.size(); ++I)
    R[I] = gMux(Sel, T[I], E[I]);
  return R;
}

Lit BitBlaster::wUlt(WordView A, WordView B) {
  Lit Lt = falseLit();
  for (size_t I = 0; I < A.size(); ++I) {
    Lit Diff = gXor(A[I], B[I]);
    Lt = gMux(Diff, B[I], Lt);
  }
  return Lt;
}

Lit BitBlaster::wEq(WordView A, WordView B) {
  Lit Eq = TrueLit;
  for (size_t I = 0; I < A.size(); ++I)
    Eq = gAnd(Eq, gXnor(A[I], B[I]));
  return Eq;
}

BitBlaster::Word BitBlaster::wMul(WordView A, WordView B,
                                  int OutWidth) {
  size_t N = static_cast<size_t>(OutWidth);
  Word Acc = wConst(0, OutWidth);
  for (size_t I = 0; I < A.size() && I < N; ++I) {
    // Partial product: (B << I) & A[I], truncated to OutWidth.
    bool CA;
    if (isConstLit(A[I], CA) && !CA)
      continue;
    Word PP(N, falseLit());
    for (size_t J = 0; I + J < N && J < B.size(); ++J)
      PP[I + J] = gAnd(B[J], A[I]);
    Acc = wAdd(Acc, PP, falseLit(), nullptr, nullptr);
  }
  return Acc;
}

void BitBlaster::wUDivRem(WordView A, WordView B, Word &Q, Word &R) {
  size_t N = A.size();
  Q.assign(N, falseLit());
  R = wConst(0, static_cast<int>(N));
  for (size_t Step = N; Step-- > 0;) {
    // R = (R << 1) | A[Step]
    Word R2(N);
    R2[0] = A[Step];
    for (size_t I = 1; I < N; ++I)
      R2[I] = R[I - 1];
    // If R2 >= B: R = R2 - B, Q[Step] = 1.
    Lit Ge = ~wUlt(R2, B);
    Word Diff = wAdd(R2, wNeg(B), falseLit(), nullptr, nullptr);
    R = wMux(Ge, Diff, R2);
    Q[Step] = Ge;
  }
}

BitBlaster::Word BitBlaster::wAbs(WordView A) {
  Lit Sign = A.back();
  return wMux(Sign, wNeg(A), A);
}

//===----------------------------------------------------------------------===//
// Term blasting
//===----------------------------------------------------------------------===//

const BitBlaster::PackedWord &BitBlaster::blastBv(TermId Id) {
  if (const PackedWord *Cached = bvCached(Id))
    return *Cached;
  checkCancelTick();
  const Term &T = TT.get(Id);
  // Operand recursion runs before this term's own gates are built, so
  // restoring on exit attributes every fresh variable below to Id.
  TermId SavedOwner = CurOwner;
  CurOwner = Id;
  Word W;
  switch (T.K) {
  case TK::Const:
    W = wConst(T.CVal);
    break;
  case TK::Var: {
    W.resize(32);
    for (int I = 0; I < 32; ++I)
      W[static_cast<size_t>(I)] = freshLit();
    VarsSeen.push_back(Id);
    break;
  }
  case TK::Add:
    W = wAdd(blastBv(T.A), blastBv(T.B), falseLit(), nullptr, nullptr);
    break;
  case TK::Sub: {
    const auto &B = blastBv(T.B);
    Word NotB(B.size());
    for (size_t I = 0; I < B.size(); ++I)
      NotB[I] = ~B[I];
    W = wAdd(blastBv(T.A), NotB, TrueLit, nullptr, nullptr);
    break;
  }
  case TK::Mul:
    W = wMul(blastBv(T.A), blastBv(T.B), 32);
    break;
  case TK::SDiv:
  case TK::SRem: {
    const auto &A = blastBv(T.A);
    const auto &B = blastBv(T.B);
    Word AbsA = wAbs(A), AbsB = wAbs(B);
    Word Q, R;
    wUDivRem(AbsA, AbsB, Q, R);
    if (T.K == TK::SDiv) {
      Lit QNeg = gXor(A.back(), B.back());
      W = wMux(QNeg, wNeg(Q), Q);
    } else {
      // Remainder takes the dividend's sign (C truncated semantics).
      W = wMux(A.back(), wNeg(R), R);
    }
    break;
  }
  case TK::BvAnd: {
    const auto &A = blastBv(T.A), &B = blastBv(T.B);
    W.resize(32);
    for (size_t I = 0; I < 32; ++I)
      W[I] = gAnd(A[I], B[I]);
    break;
  }
  case TK::BvOr: {
    const auto &A = blastBv(T.A), &B = blastBv(T.B);
    W.resize(32);
    for (size_t I = 0; I < 32; ++I)
      W[I] = gOr(A[I], B[I]);
    break;
  }
  case TK::BvXor: {
    const auto &A = blastBv(T.A), &B = blastBv(T.B);
    W.resize(32);
    for (size_t I = 0; I < 32; ++I)
      W[I] = gXor(A[I], B[I]);
    break;
  }
  case TK::BvNot: {
    const auto &A = blastBv(T.A);
    W.resize(32);
    for (size_t I = 0; I < 32; ++I)
      W[I] = ~A[I];
    break;
  }
  case TK::Shl:
  case TK::LShr:
  case TK::AShr: {
    const auto &A = blastBv(T.A);
    uint32_t CAmt;
    if (TT.isConst(T.B, CAmt)) {
      CAmt &= 31;
      W.assign(32, falseLit());
      if (T.K == TK::AShr)
        W.assign(32, A[31]);
      for (int I = 0; I < 32; ++I) {
        int Src = T.K == TK::Shl ? I - static_cast<int>(CAmt)
                                 : I + static_cast<int>(CAmt);
        if (Src >= 0 && Src < 32)
          W[static_cast<size_t>(I)] = A[static_cast<size_t>(Src)];
      }
    } else {
      // Barrel shifter over the low 5 amount bits.
      const auto &Amt = blastBv(T.B);
      W.assign(A.begin(), A.end());
      for (int Stage = 0; Stage < 5; ++Stage) {
        int Sh = 1 << Stage;
        Word Shifted(32);
        for (int I = 0; I < 32; ++I) {
          int Src = T.K == TK::Shl ? I - Sh : I + Sh;
          Lit Fill = T.K == TK::AShr ? W[31] : falseLit();
          Shifted[static_cast<size_t>(I)] =
              (Src >= 0 && Src < 32) ? W[static_cast<size_t>(Src)] : Fill;
        }
        W = wMux(Amt[static_cast<size_t>(Stage)], Shifted, W);
      }
    }
    break;
  }
  case TK::Ite:
    W = wMux(blastBool(T.A), blastBv(T.B), blastBv(T.C));
    break;
  default:
    assert(false && "blastBv on a bool term");
    W = wConst(0);
  }
  assert(W.size() == 32 && "BV words are 32 bits");
  CurOwner = SavedOwner;
  return internBv(Id, W);
}

Lit BitBlaster::blastBool(TermId Id) {
  Lit Cached;
  if (boolCached(Id, Cached))
    return Cached;
  checkCancelTick();
  const Term &T = TT.get(Id);
  TermId SavedOwner = CurOwner;
  CurOwner = Id;
  Lit L;
  switch (T.K) {
  case TK::True:
    L = TrueLit;
    break;
  case TK::False:
    L = falseLit();
    break;
  case TK::BVar:
    L = freshLit();
    VarsSeen.push_back(Id);
    break;
  case TK::Not:
    L = ~blastBool(T.A);
    break;
  case TK::And:
    L = gAnd(blastBool(T.A), blastBool(T.B));
    break;
  case TK::Or:
    L = gOr(blastBool(T.A), blastBool(T.B));
    break;
  case TK::BIte:
    L = gMux(blastBool(T.A), blastBool(T.B), blastBool(T.C));
    break;
  case TK::Eq:
    L = wEq(blastBv(T.A), blastBv(T.B));
    break;
  case TK::Ult:
    L = wUlt(blastBv(T.A), blastBv(T.B));
    break;
  case TK::Slt: {
    // Signed compare: flip sign bits, compare unsigned.
    const auto &PA = blastBv(T.A);
    const auto &PB = blastBv(T.B);
    Word A2(PA.begin(), PA.end()), B2(PB.begin(), PB.end());
    A2[31] = ~A2[31];
    B2[31] = ~B2[31];
    L = wUlt(A2, B2);
    break;
  }
  case TK::AddOvf: {
    const auto &A = blastBv(T.A), &B = blastBv(T.B);
    Word Sum = wAdd(A, B, falseLit(), nullptr, nullptr);
    // Signed overflow: operands share a sign that differs from the result.
    Lit SameSign = gXnor(A[31], B[31]);
    L = gAnd(SameSign, gXor(Sum[31], A[31]));
    break;
  }
  case TK::SubOvf: {
    const auto &A = blastBv(T.A), &B = blastBv(T.B);
    Word NotB(B.size());
    for (size_t I = 0; I < B.size(); ++I)
      NotB[I] = ~B[I];
    Word Diff = wAdd(A, NotB, TrueLit, nullptr, nullptr);
    Lit DiffSign = gXor(A[31], B[31]);
    L = gAnd(DiffSign, gXor(Diff[31], A[31]));
    break;
  }
  case TK::MulOvf: {
    // Full 64-bit product of sign-extended operands; overflow iff the top
    // 33 bits are not a sign-extension of bit 31.
    const auto &PA = blastBv(T.A);
    const auto &PB = blastBv(T.B);
    Word A64(PA.begin(), PA.end()), B64(PB.begin(), PB.end());
    A64.resize(64, A64[31]);
    B64.resize(64, B64[31]);
    Word P = wMul(A64, B64, 64);
    Lit Ovf = falseLit();
    for (size_t I = 32; I < 64; ++I)
      Ovf = gOr(Ovf, gXor(P[I], P[31]));
    L = Ovf;
    break;
  }
  default:
    assert(false && "blastBool on a bv term");
    L = falseLit();
  }
  CurOwner = SavedOwner;
  return internBool(Id, L);
}

bool BitBlaster::modelOfVar(TermId Id, uint32_t &Out) const {
  const PackedWord *Cached = bvCached(Id);
  if (!Cached)
    return false;
  const PackedWord &Bits = *Cached;
  uint32_t V = 0;
  for (int I = 0; I < 32; ++I) {
    Lit L = Bits[static_cast<size_t>(I)];
    bool Bit;
    if (isConstLit(L, Bit)) {
      // constant
    } else {
      Bit = S.modelValue(L.var()) != L.sign();
    }
    if (Bit)
      V |= 1u << I;
  }
  Out = V;
  return true;
}

bool BitBlaster::modelOfBVar(TermId Id, bool &Out) const {
  Lit L;
  if (!boolCached(Id, L))
    return false;
  bool Bit;
  if (isConstLit(L, Bit)) {
    Out = Bit;
    return true;
  }
  Out = S.modelValue(L.var()) != L.sign();
  return true;
}
