//===- smt/Blast.h - term -> CNF bit-blasting -------------------*- C++ -*-===//
///
/// \file
/// Tseitin bit-blasting of bool/BV32 terms into a SatSolver: ripple-carry
/// adders, shift-add multipliers (with 64-bit products for the signed
/// multiplication-overflow predicate), barrel shifters for symbolic shift
/// amounts, and a restoring divider for symbolic divisors. Gates are
/// structurally hashed so shared subterms blast once.
///
//===----------------------------------------------------------------------===//

#ifndef LV_SMT_BLAST_H
#define LV_SMT_BLAST_H

#include "smt/Sat.h"
#include "support/Cancel.h"
#include "smt/Term.h"

#include <array>
#include <cstring>
#include <deque>
#include <vector>

namespace lv {
namespace smt {

/// Structural-hash gate memo: open-addressing so a fork is two flat vector
/// copies instead of a node-based hash-map rebuild. Keys are gate
/// signatures (never 0), values the defined output literal.
class GateTable {
public:
  GateTable() : Keys(1024, 0), Vals(1024) {}

  bool find(uint64_t Key, Lit &Out) const {
    size_t Mask = Keys.size() - 1;
    for (size_t I = Key & Mask;; I = (I + 1) & Mask) {
      if (Keys[I] == 0)
        return false;
      if (Keys[I] == Key) {
        Out = Vals[I];
        return true;
      }
    }
  }

  void insert(uint64_t Key, Lit Val) {
    if (Count * 10 >= Keys.size() * 7)
      grow();
    size_t Mask = Keys.size() - 1;
    size_t I = Key & Mask;
    while (Keys[I] != 0)
      I = (I + 1) & Mask;
    Keys[I] = Key;
    Vals[I] = Val;
    ++Count;
  }

private:
  void grow() {
    std::vector<uint64_t> OldK = std::move(Keys);
    std::vector<Lit> OldV = std::move(Vals);
    Keys.assign(OldK.size() * 2, 0);
    Vals.assign(OldK.size() * 2, Lit());
    size_t Mask = Keys.size() - 1;
    for (size_t I = 0; I < OldK.size(); ++I) {
      if (OldK[I] == 0)
        continue;
      size_t J = OldK[I] & Mask;
      while (Keys[J] != 0)
        J = (J + 1) & Mask;
      Keys[J] = OldK[I];
      Vals[J] = OldV[I];
    }
  }

  std::vector<uint64_t> Keys; ///< 0 = empty slot.
  std::vector<Lit> Vals;
  size_t Count = 0;
};

/// Blasts terms into CNF over a SatSolver. The blaster is persistent: it
/// memoizes per TermId against a long-lived TermTable, so a single instance
/// shared across many queries (see IncrementalSolver) blasts each shared
/// subterm exactly once.
class BitBlaster {
public:
  using Word = std::vector<Lit>;          ///< Working word, LSB first.
  using PackedWord = std::array<Lit, 32>; ///< Interned 32-bit result.

  BitBlaster(const TermTable &TT, SatSolver &S);

  /// Fork: copies every memo (bool/BV/gate caches, pool, seen vars) but
  /// binds the copy to \p NewS — which must be a copy of the original's
  /// solver, so all cached literals stay valid. Together with SatSolver's
  /// copy constructor this clones a blasted context in O(state) flat
  /// copies, without re-blasting anything.
  BitBlaster(const BitBlaster &O, SatSolver &NewS)
      : TT(O.TT), S(NewS), TrueLit(O.TrueLit), BoolCache(O.BoolCache),
        BvPool(O.BvPool), BvCache(O.BvCache), GateCache(O.GateCache),
        VarsSeen(O.VarsSeen), VarOwner(O.VarOwner), CurOwner(O.CurOwner),
        CT(O.CT) {}

  /// Re-forks in place: like the fork constructor, but reuses this
  /// instance's existing buffer capacity (repeated forking stays pure
  /// memcpy, no allocation churn). The bound solver is unchanged — assign
  /// it from the source's solver alongside this call.
  void assignFrom(const BitBlaster &O) {
    TrueLit = O.TrueLit;
    BoolCache = O.BoolCache;
    BvPool = O.BvPool;
    BvCache = O.BvCache;
    GateCache = O.GateCache;
    VarsSeen = O.VarsSeen;
    VarOwner = O.VarOwner;
    CurOwner = O.CurOwner;
    CT = O.CT;
  }

  /// Blasts a bool term; the returned literal is equivalent to the term.
  Lit blastBool(TermId Id);

  /// Blasts a BV term into 32 literals (LSB first). The reference points
  /// into a stable-address pool (deque): it stays valid across later
  /// blasts, so cache hits cost nothing instead of a 32-entry copy.
  const PackedWord &blastBv(TermId Id);

  /// After a Sat result, reads back the model value of a Var term that was
  /// reachable from the blasted query.
  bool modelOfVar(TermId Id, uint32_t &Out) const;
  bool modelOfBVar(TermId Id, bool &Out) const;

  /// Terms of kind Var/BVar encountered during blasting (for model dumps).
  const std::vector<TermId> &seenVars() const { return VarsSeen; }

  /// Owner term of solver variable \p V: the term whose blast created it
  /// (input bits belong to their Var/BVar term, internal gate variables
  /// to the term being blasted when they were introduced). NoTerm for
  /// vars not created by this blaster (the constant-true var). A gate
  /// reused across terms via the GateTable keeps its first owner, so a
  /// later query whose encoding shares it may see the gate as
  /// out-of-cone — that only narrows the projection (the lift phase
  /// keeps verdicts sound); in practice shared gates almost always come
  /// from shared (hash-consed) subterms, which are reachable from every
  /// query that uses them.
  TermId varOwner(Var V) const {
    return static_cast<size_t>(V) < VarOwner.size()
               ? VarOwner[static_cast<size_t>(V)]
               : NoTerm;
  }
  int numOwnedVars() const { return static_cast<int>(VarOwner.size()); }

  /// After a cone-projected solve: does any bit of var-term \p Id lie in
  /// the query cone? Used to restrict the SAT certificate to variables
  /// the query actually constrains.
  bool varInLastCone(TermId Id, const SatSolver &Solver) const {
    if (const PackedWord *W = bvCached(Id)) {
      for (const Lit &L : *W)
        if (Solver.inLastCone(L.var()))
          return true;
      return false;
    }
    Lit L;
    if (boolCached(Id, L))
      return Solver.inLastCone(L.var());
    return false;
  }

private:
  const TermTable &TT;
  SatSolver &S;
  Lit TrueLit;

  // Term-level caches are dense vectors indexed by TermId (ids are dense),
  // so forking them is a flat copy instead of a hash-map rebuild; the BV
  // pool holds fixed-size packed words (no per-entry heap allocation).
  std::vector<Lit> BoolCache;   ///< X == -2 means "not blasted yet".
  std::deque<PackedWord> BvPool; ///< Stable addresses across growth.
  std::vector<int32_t> BvCache; ///< TermId -> BvPool index, -1 when unset.
  GateTable GateCache;
  std::vector<TermId> VarsSeen;
  /// Per solver var: the term whose blast created it (see varOwner()).
  std::vector<TermId> VarOwner;
  /// Term currently being built (set on the cache-miss path of blastBool
  /// and blastBv; operand recursion finishes before a term's own gates
  /// are constructed, so the save/restore discipline attributes every
  /// fresh variable to the right term).
  TermId CurOwner = NoTerm;
  /// Captured at construction and preserved across fork()/assignFrom so
  /// blasters running on tv worker threads still honour the owning
  /// task's deadline. Null when no CancelScope is active.
  const support::CancelToken *CT = support::currentCancelToken();
  uint64_t BlastSteps = 0; ///< Fresh-blast tick for periodic cancel checks.

  void checkCancelTick() {
    if ((++BlastSteps & 0xFFF) == 0 && CT && CT->expired())
      throw support::CancelledError("smt.blast");
  }

  bool boolCached(TermId Id, Lit &Out) const {
    size_t I = static_cast<size_t>(Id);
    if (I < BoolCache.size() && BoolCache[I].X >= 0) {
      Out = BoolCache[I];
      return true;
    }
    return false;
  }
  const PackedWord *bvCached(TermId Id) const {
    size_t I = static_cast<size_t>(Id);
    if (I < BvCache.size() && BvCache[I] >= 0)
      return &BvPool[static_cast<size_t>(BvCache[I])];
    return nullptr;
  }
  const PackedWord &internBv(TermId Id, const Word &W) {
    PackedWord P;
    std::memcpy(P.data(), W.data(), sizeof(PackedWord));
    BvPool.push_back(P);
    size_t I = static_cast<size_t>(Id);
    if (I >= BvCache.size())
      BvCache.resize(I + 1, -1);
    BvCache[I] = static_cast<int32_t>(BvPool.size()) - 1;
    return BvPool.back();
  }
  Lit internBool(TermId Id, Lit L) {
    size_t I = static_cast<size_t>(Id);
    if (I >= BoolCache.size())
      BoolCache.resize(I + 1, Lit());
    BoolCache[I] = L;
    return L;
  }

  Lit falseLit() const { return ~TrueLit; }
  Lit constLit(bool B) const { return B ? TrueLit : ~TrueLit; }
  bool isConstLit(Lit L, bool &B) const {
    if (L == TrueLit) {
      B = true;
      return true;
    }
    if (L == ~TrueLit) {
      B = false;
      return true;
    }
    return false;
  }

  Lit freshLit() {
    Var V = S.newVar();
    if (static_cast<size_t>(V) >= VarOwner.size())
      VarOwner.resize(static_cast<size_t>(V) + 1, NoTerm);
    VarOwner[static_cast<size_t>(V)] = CurOwner;
    return Lit(V, false);
  }

  // Simplifying gate constructors.
  Lit gAnd(Lit A, Lit B);
  Lit gOr(Lit A, Lit B) { return ~gAnd(~A, ~B); }
  Lit gXor(Lit A, Lit B);
  Lit gXnor(Lit A, Lit B) { return ~gXor(A, B); }
  Lit gMux(Lit Sel, Lit T, Lit E);

  /// Read-only view over a word of literals; lets the helpers consume
  /// working vectors and interned packed words alike without copies.
  struct WordView {
    const Lit *Ptr;
    size_t Len;
    WordView(const Word &W) : Ptr(W.data()), Len(W.size()) {}
    WordView(const PackedWord &W) : Ptr(W.data()), Len(W.size()) {}
    const Lit &operator[](size_t I) const { return Ptr[I]; }
    size_t size() const { return Len; }
    const Lit &back() const { return Ptr[Len - 1]; }
  };

  // Word-level helpers over literal words (LSB first).
  Word wConst(uint32_t V, int Width = 32);
  Word wAdd(WordView A, WordView B, Lit CarryIn, Lit *CarryOut,
            Lit *CarryPrev);
  Word wNeg(WordView A);
  Word wMux(Lit Sel, WordView T, WordView E);
  Lit wUlt(WordView A, WordView B);
  Lit wEq(WordView A, WordView B);
  Word wMul(WordView A, WordView B, int OutWidth);
  void wUDivRem(WordView A, WordView B, Word &Q, Word &R);
  Word wAbs(WordView A);
};

} // namespace smt
} // namespace lv

#endif // LV_SMT_BLAST_H
