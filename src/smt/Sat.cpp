//===- smt/Sat.cpp - incremental CDCL SAT solver -----------------------------===//

#include "smt/Sat.h"
#include "obs/Metrics.h"
#include "support/Cancel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lv;
using namespace lv::smt;

Var SatSolver::newVar() {
  Var V = numVars();
  AssignLit.push_back(0);
  AssignLit.push_back(0);
  Model.push_back(LBool::Undef);
  Level.push_back(0);
  Reason.push_back(NoReason);
  Activity.push_back(0.0);
  Polarity.push_back(1); // default phase: false (MiniSat convention)
  Seen.push_back(0);
  HeapPos.push_back(-1);
  WatchHead.push_back(-1);
  WatchHead.push_back(-1);
  WatchTail.push_back(-1);
  WatchTail.push_back(-1);
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===//
// Activity heap
//===----------------------------------------------------------------------===//

void SatSolver::siftUp(int I) {
  Var V = Heap[static_cast<size_t>(I)];
  while (I > 0) {
    int P = (I - 1) >> 1;
    if (!heapLess(V, Heap[static_cast<size_t>(P)]))
      break;
    Heap[static_cast<size_t>(I)] = Heap[static_cast<size_t>(P)];
    HeapPos[static_cast<size_t>(Heap[static_cast<size_t>(I)])] = I;
    I = P;
  }
  Heap[static_cast<size_t>(I)] = V;
  HeapPos[static_cast<size_t>(V)] = I;
}

void SatSolver::siftDown(int I) {
  Var V = Heap[static_cast<size_t>(I)];
  int N = static_cast<int>(Heap.size());
  for (;;) {
    int L = 2 * I + 1;
    if (L >= N)
      break;
    int R = L + 1;
    int C = (R < N && heapLess(Heap[static_cast<size_t>(R)],
                               Heap[static_cast<size_t>(L)]))
                ? R
                : L;
    if (!heapLess(Heap[static_cast<size_t>(C)], V))
      break;
    Heap[static_cast<size_t>(I)] = Heap[static_cast<size_t>(C)];
    HeapPos[static_cast<size_t>(Heap[static_cast<size_t>(I)])] = I;
    I = C;
  }
  Heap[static_cast<size_t>(I)] = V;
  HeapPos[static_cast<size_t>(V)] = I;
}

void SatSolver::heapInsert(Var V) {
  if (HeapPos[static_cast<size_t>(V)] >= 0)
    return;
  Heap.push_back(V);
  HeapPos[static_cast<size_t>(V)] = static_cast<int>(Heap.size()) - 1;
  siftUp(static_cast<int>(Heap.size()) - 1);
}

void SatSolver::heapDecrease(Var V) {
  int I = HeapPos[static_cast<size_t>(V)];
  if (I >= 0)
    siftUp(I);
}

Var SatSolver::heapPop() {
  Var Top = Heap[0];
  HeapPos[static_cast<size_t>(Top)] = -1;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapPos[static_cast<size_t>(Last)] = 0;
    siftDown(0);
  }
  return Top;
}

void SatSolver::restoreHeuristics(const HeuristicSnapshot &S) {
  assert(decisionLevel() == 0);
  size_t N = Activity.size();
  size_t Old = S.Activity.size();
  std::copy(S.Activity.begin(), S.Activity.end(), Activity.begin());
  std::fill(Activity.begin() + static_cast<long>(std::min(Old, N)),
            Activity.end(), 0.0);
  std::copy(S.Polarity.begin(), S.Polarity.end(), Polarity.begin());
  std::fill(Polarity.begin() + static_cast<long>(std::min(Old, N)),
            Polarity.end(), static_cast<char>(1));
  VarInc = S.VarInc;
  // Heap in creation order, exactly as a never-searched solver (or a
  // fork of one) would hold it: every variable present, assigned ones
  // skipped lazily by pickBranchLit.
  Heap.resize(N);
  for (size_t I = 0; I < N; ++I) {
    Heap[I] = static_cast<Var>(I);
    HeapPos[I] = static_cast<int>(I);
  }
  // Equal-activity ties keep creation order only while activities are the
  // snapshot's; with a pristine snapshot (all zero) no sift is needed, and
  // non-zero snapshots restore by re-heapifying bottom-up.
  for (size_t I = N / 2; I-- > 0;)
    siftDown(static_cast<int>(I));
}

void SatSolver::bumpVar(Var V) {
  Activity[static_cast<size_t>(V)] += VarInc;
  if (Activity[static_cast<size_t>(V)] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  heapDecrease(V);
}

//===----------------------------------------------------------------------===//
// Clause arena
//===----------------------------------------------------------------------===//

SatSolver::CRef SatSolver::allocClause(const std::vector<Lit> &Lits,
                                       bool Learnt, uint32_t Lbd) {
  CRef C = static_cast<CRef>(Arena.size());
  Arena.push_back((static_cast<uint32_t>(Lits.size()) << 2) |
                  (Learnt ? LearntBit : 0u));
  Arena.push_back(Lbd);
  for (Lit L : Lits)
    Arena.push_back(static_cast<uint32_t>(L.X));
  (Learnt ? Learnts : ProblemClauses).push_back(C);
  Stats.ArenaWords = Arena.size();
  return C;
}

void SatSolver::attachClause(CRef C) {
  assert(clauseSize(C) >= 2);
  Lit L0 = litAt(C, 0), L1 = litAt(C, 1);
  uint32_t Flags = (clauseSize(C) == 2 ? WatchBinary : 0) |
                   (isSkipped(C) ? WatchSkip : 0);
  watchInsert((~L0).X, C, L1, Flags);
  watchInsert((~L1).X, C, L0, Flags);
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (!OkFlag)
    return false;
  assert(decisionLevel() == 0);
  // Normalize: sort, dedupe, drop false lits, detect tautology/satisfied.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.X < B.X; });
  std::vector<Lit> Out;
  Lit Prev;
  for (Lit L : Lits) {
    if (value(L) == LBool::True)
      return true; // already satisfied at level 0
    if (value(L) == LBool::False)
      continue; // drop
    if (!Out.empty() && L == Prev)
      continue;
    if (!Out.empty() && L == ~Prev)
      return true; // tautology
    Out.push_back(L);
    Prev = L;
  }
  if (Out.empty()) {
    OkFlag = false;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      OkFlag = false;
      return false;
    }
    return true;
  }
  CRef C = allocClause(Out, /*Learnt=*/false, /*Lbd=*/0);
  attachClause(C);
  return true;
}

bool SatSolver::locked(CRef C) const {
  Lit L0 = litAt(C, 0);
  size_t V = static_cast<size_t>(L0.var());
  return value(L0) == LBool::True && Reason[V] == C;
}

void SatSolver::reduceDB() {
  ++Stats.ReduceDBs;
  // Best clauses first: low LBD, then short. The worst half is dropped,
  // except "glue" clauses (LBD <= 2) and clauses locked as reasons.
  std::sort(Learnts.begin(), Learnts.end(), [this](CRef A, CRef B) {
    uint32_t LA = lbd(A), LB = lbd(B);
    if (LA != LB)
      return LA < LB;
    return clauseSize(A) < clauseSize(B);
  });
  size_t Keep = Learnts.size() / 2;
  std::vector<CRef> Kept;
  Kept.reserve(Learnts.size());
  for (size_t I = 0; I < Learnts.size(); ++I) {
    CRef C = Learnts[I];
    if (I >= Keep && lbd(C) > 2 && !locked(C)) {
      markDeleted(C);
      WastedWords += clauseSize(C) + 2;
      ++Stats.LearntDeleted;
    } else {
      Kept.push_back(C);
    }
  }
  Learnts = std::move(Kept);
  Stats.LearntLive = Learnts.size();
  // Purge watchers of deleted clauses (unlink into the free list).
  for (size_t L = 0; L < WatchHead.size(); ++L) {
    int32_t *Link = &WatchHead[L];
    int32_t Last = -1;
    while (*Link >= 0) {
      int32_t N = *Link;
      WatchNode &W = WatchPool[static_cast<size_t>(N)];
      if (isDeleted(W.C)) {
        *Link = W.Next;
        W.C = NoReason; // free-node marker: flag passes must skip it
        W.Next = WatchFree;
        WatchFree = N;
      } else {
        Last = N;
        Link = &W.Next;
      }
    }
    WatchTail[L] = Last;
  }
  if (WastedWords * 3 > Arena.size())
    garbageCollect();
}

void SatSolver::garbageCollect() {
  std::vector<uint32_t> NewArena;
  NewArena.reserve(Arena.size() - WastedWords);
  // Copy each surviving clause and leave a forwarding pointer in the old
  // clause's LBD slot so Reason references can be rewritten.
  auto Reloc = [&](CRef C) {
    CRef NC = static_cast<CRef>(NewArena.size());
    uint32_t N = clauseSize(C) + 2;
    for (uint32_t I = 0; I < N; ++I)
      NewArena.push_back(Arena[C + I]);
    Arena[C + 1] = NC;
    return NC;
  };
  for (CRef &C : ProblemClauses)
    C = Reloc(C);
  for (CRef &C : Learnts)
    C = Reloc(C);
  for (Lit L : Trail) {
    size_t V = static_cast<size_t>(L.var());
    if (Reason[V] != NoReason)
      Reason[V] = Arena[Reason[V] + 1];
  }
  Arena.swap(NewArena);
  WastedWords = 0;
  Stats.ArenaWords = Arena.size();
  WatchPool.clear();
  WatchFree = -1;
  std::fill(WatchHead.begin(), WatchHead.end(), -1);
  std::fill(WatchTail.begin(), WatchTail.end(), -1);
  for (CRef C : ProblemClauses)
    attachClause(C);
  for (CRef C : Learnts)
    attachClause(C);
}

//===----------------------------------------------------------------------===//
// Search
//===----------------------------------------------------------------------===//

void SatSolver::enqueue(Lit L, CRef From) {
  assert(value(L) == LBool::Undef);
  size_t V = static_cast<size_t>(L.var());
  AssignLit[static_cast<size_t>(L.X)] = 1;
  AssignLit[static_cast<size_t>(L.X ^ 1)] = -1;
  Level[V] = decisionLevel();
  Reason[V] = From;
  Polarity[V] = L.sign();
  Trail.push_back(L);
}

SatSolver::CRef SatSolver::propagate() {
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++];
    ++Stats.Propagations;
    // Walk P's watcher list in append order. Nodes never allocate during
    // propagation: a moved watcher is unlinked and appended onto the new
    // literal's list (tail insertion preserves the classic vector-list
    // visit order, which is search-visible).
    size_t PX = static_cast<size_t>(P.X);
    int32_t *Link = &WatchHead[PX];
    int32_t Prev = -1;
    while (*Link >= 0) {
      int32_t NI = *Link;
      WatchNode &W = WatchPool[static_cast<size_t>(NI)];
      // Blocking literal: skip the clause without touching its memory.
      LBool BlockerVal = value(W.Blocker);
      if (BlockerVal == LBool::True) {
        Prev = NI;
        Link = &W.Next;
        continue;
      }
      // Out-of-cone clause during a projected solve: it still holds an
      // unassigned out-of-cone literal (the restriction keeps it that
      // way), so it can be neither unit nor conflicting — pass over it
      // without touching clause memory.
      if (W.Flags & WatchSkip) {
        Prev = NI;
        Link = &W.Next;
        continue;
      }
      // Binary clause: the blocker IS the other literal — imply it
      // directly, no clause memory touched, watch never moves.
      if (W.Flags & WatchBinary) {
        if (BlockerVal == LBool::False) {
          QHead = Trail.size();
          return W.C;
        }
        enqueue(W.Blocker, W.C);
        Prev = NI;
        Link = &W.Next;
        continue;
      }
      CRef C = W.C;
      // Make sure the false literal is at slot 1.
      Lit NotP = ~P;
      Lit L0 = litAt(C, 0);
      if (L0 == NotP) {
        setLitAt(C, 0, litAt(C, 1));
        setLitAt(C, 1, NotP);
        L0 = litAt(C, 0);
      }
      assert(litAt(C, 1) == NotP);
      // If the first literal is true, the clause is satisfied.
      if (value(L0) == LBool::True) {
        W.Blocker = L0;
        Prev = NI;
        Link = &W.Next;
        continue;
      }
      // Look for a new literal to watch.
      uint32_t Sz = clauseSize(C);
      bool Found = false;
      for (uint32_t K = 2; K < Sz; ++K) {
        Lit LK = litAt(C, K);
        if (value(LK) != LBool::False) {
          setLitAt(C, 1, LK);
          setLitAt(C, K, NotP);
          // Unlink from P's list, append onto (~LK)'s list.
          *Link = W.Next;
          if (W.Next < 0)
            WatchTail[PX] = Prev;
          W.Blocker = L0;
          W.Next = -1;
          watchAppendNode((~LK).X, NI);
          Found = true;
          break;
        }
      }
      if (Found)
        continue;
      // Unit or conflicting.
      W.Blocker = L0;
      Prev = NI;
      Link = &W.Next;
      if (value(L0) == LBool::False) {
        QHead = Trail.size();
        return C;
      }
      enqueue(L0, C);
    }
  }
  return NoReason;
}

uint32_t SatSolver::computeLBD(const std::vector<Lit> &Lits) {
  ++StampGen;
  uint32_t N = 0;
  for (Lit L : Lits) {
    uint32_t Lvl =
        static_cast<uint32_t>(Level[static_cast<size_t>(L.var())]);
    if (Lvl >= LevelStamp.size())
      LevelStamp.resize(Lvl + 1, 0);
    if (LevelStamp[Lvl] != StampGen) {
      LevelStamp[Lvl] = StampGen;
      ++N;
    }
  }
  return N;
}

void SatSolver::analyze(CRef Confl, std::vector<Lit> &OutLearnt,
                        int &OutBtLevel, uint32_t &OutLbd) {
  OutLearnt.clear();
  OutLearnt.push_back(Lit()); // placeholder for the asserting literal
  int PathC = 0;
  Lit P;
  bool PValid = false;
  size_t Index = Trail.size();

  do {
    assert(Confl != NoReason);
    uint32_t Sz = clauseSize(Confl);
    for (uint32_t K = 0; K < Sz; ++K) {
      // When expanding a reason clause, skip the implied literal P itself;
      // the remaining literals are its antecedents.
      Lit Q = litAt(Confl, K);
      if (PValid && Q == P)
        continue;
      size_t V = static_cast<size_t>(Q.var());
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(Q.var());
      if (Level[V] >= decisionLevel())
        ++PathC;
      else
        OutLearnt.push_back(Q);
    }
    // Select next literal on the trail to expand.
    while (!Seen[static_cast<size_t>(Trail[Index - 1].var())])
      --Index;
    P = Trail[--Index];
    PValid = true;
    Confl = Reason[static_cast<size_t>(P.var())];
    Seen[static_cast<size_t>(P.var())] = 0;
    --PathC;
  } while (PathC > 0);
  OutLearnt[0] = ~P;

  // Clause minimization: drop tail literals implied by the rest of the
  // clause (self-subsumption over their reason clauses). Removed literals
  // keep their Seen mark until the final clearing below, which therefore
  // iterates the pre-minimization literal set.
  std::vector<Lit> ToClear = OutLearnt;
  size_t W = 1;
  for (size_t K = 1; K < OutLearnt.size(); ++K) {
    Lit Q = OutLearnt[K];
    CRef RC = Reason[static_cast<size_t>(Q.var())];
    bool Redundant = false;
    if (RC != NoReason) {
      Redundant = true;
      uint32_t RSz = clauseSize(RC);
      for (uint32_t RK = 0; RK < RSz; ++RK) {
        Lit RL = litAt(RC, RK);
        if (RL == ~Q || RL == Q)
          continue;
        size_t RV = static_cast<size_t>(RL.var());
        if (!Seen[RV] && Level[RV] != 0) {
          Redundant = false;
          break;
        }
      }
    }
    if (!Redundant)
      OutLearnt[W++] = Q;
  }
  OutLearnt.resize(W);

  // Compute backtrack level: max level among tail literals.
  OutBtLevel = 0;
  size_t MaxI = 1;
  for (size_t K = 1; K < OutLearnt.size(); ++K) {
    int L = Level[static_cast<size_t>(OutLearnt[K].var())];
    if (L > OutBtLevel) {
      OutBtLevel = L;
      MaxI = K;
    }
  }
  if (OutLearnt.size() > 1)
    std::swap(OutLearnt[1], OutLearnt[MaxI]);

  OutLbd = computeLBD(OutLearnt);

  for (Lit L : ToClear)
    Seen[static_cast<size_t>(L.var())] = 0;
}

void SatSolver::cancelUntil(int Lvl) {
  if (decisionLevel() <= Lvl)
    return;
  size_t Bound = static_cast<size_t>(TrailLim[static_cast<size_t>(Lvl)]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    Lit L = Trail[I - 1];
    size_t V = static_cast<size_t>(L.var());
    AssignLit[static_cast<size_t>(L.X)] = 0;
    AssignLit[static_cast<size_t>(L.X ^ 1)] = 0;
    Reason[V] = NoReason;
    heapInsert(static_cast<Var>(V));
  }
  Trail.resize(Bound);
  TrailLim.resize(static_cast<size_t>(Lvl));
  QHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  while (!heapEmpty()) {
    Var V = heapPop();
    if (!isUnassigned(V))
      continue;
    if (ConeActive && !coneMarked(V)) {
      // Out-of-cone: park it until the restriction lifts. Every clause
      // that could need this variable is skip-flagged out of propagation
      // (clauses with all unfixed vars in the cone stay active and never
      // mention it), so deferring cannot hide an implication.
      ConeDeferred.push_back(V);
      continue;
    }
    return Lit(V, Polarity[static_cast<size_t>(V)]);
  }
  return Lit();
}

/// Luby sequence for restart scheduling.
double lv::smt::luby(double Y, int X) {
  int Size, Seq;
  for (Size = 1, Seq = 0; Size < X + 1; ++Seq, Size = 2 * Size + 1)
    ;
  while (Size - 1 != X) {
    Size = (Size - 1) >> 1;
    --Seq;
    X = X % Size;
  }
  return std::pow(Y, Seq);
}

//===----------------------------------------------------------------------===//
// Cone-of-influence projection
//===----------------------------------------------------------------------===//

void SatSolver::markConeByConnectivity(const std::vector<Lit> &Assumps,
                                       uint64_t &NumVars) {
  // Live clause list: skip deleted clauses and clauses already satisfied
  // at level 0 (they can never propagate again, so they conduct nothing).
  LiveScratch.clear();
  auto ScanList = [&](const std::vector<CRef> &List) {
    for (CRef C : List) {
      if (isDeleted(C))
        continue;
      uint32_t Sz = clauseSize(C);
      bool Satisfied = false;
      for (uint32_t K = 0; K < Sz && !Satisfied; ++K)
        Satisfied = value(litAt(C, K)) == LBool::True;
      if (!Satisfied)
        LiveScratch.push_back(C);
    }
  };
  ScanList(ProblemClauses);
  ScanList(Learnts);

  // Occurrence index (CSR over unfixed variables), rebuilt per solve: an
  // O(live literals) build, i.e. about one propagation pass.
  OccCount.assign(static_cast<size_t>(numVars()) + 1, 0);
  for (CRef C : LiveScratch) {
    uint32_t Sz = clauseSize(C);
    for (uint32_t K = 0; K < Sz; ++K) {
      Lit L = litAt(C, K);
      if (value(L) == LBool::Undef)
        ++OccCount[static_cast<size_t>(L.var()) + 1];
    }
  }
  for (size_t V = 1; V < OccCount.size(); ++V)
    OccCount[V] += OccCount[V - 1];
  OccList.assign(OccCount.back(), 0);
  std::vector<uint32_t> Fill(OccCount.begin(), OccCount.end() - 1);
  for (uint32_t I = 0; I < LiveScratch.size(); ++I) {
    CRef C = LiveScratch[static_cast<size_t>(I)];
    uint32_t Sz = clauseSize(C);
    for (uint32_t K = 0; K < Sz; ++K) {
      Lit L = litAt(C, K);
      if (value(L) == LBool::Undef)
        OccList[Fill[static_cast<size_t>(L.var())]++] = I;
    }
  }

  // BFS from the (unfixed) assumption variables.
  std::vector<uint8_t> Reached(LiveScratch.size(), 0);
  ConeQueue.clear();
  auto Mark = [&](Var V) {
    if (ConeStamp[static_cast<size_t>(V)] != ConeGen) {
      ConeStamp[static_cast<size_t>(V)] = ConeGen;
      ConeQueue.push_back(V);
      ++NumVars;
    }
  };
  for (Lit A : Assumps)
    if (value(A) == LBool::Undef)
      Mark(A.var());
  while (!ConeQueue.empty()) {
    Var V = ConeQueue.back();
    ConeQueue.pop_back();
    size_t Lo = OccCount[static_cast<size_t>(V)];
    size_t Hi = OccCount[static_cast<size_t>(V) + 1];
    for (size_t I = Lo; I < Hi; ++I) {
      uint32_t CI = OccList[I];
      if (Reached[CI])
        continue;
      Reached[CI] = 1;
      CRef C = LiveScratch[CI];
      uint32_t Sz = clauseSize(C);
      for (uint32_t K = 0; K < Sz; ++K) {
        Lit L = litAt(C, K);
        if (value(L) == LBool::Undef)
          Mark(L.var());
      }
    }
  }

  // Scratch is only needed during setup; empty it so forking the solver
  // copies sizes, not dead contents.
  LiveScratch.clear();
  OccCount.clear();
  OccList.clear();
}

void SatSolver::setupCone(const std::vector<Lit> &Assumps,
                          const std::vector<Var> *ExternalCone) {
  ConeEntryMark = Trail.size(); // level-0 prefix, fully propagated already
  if (ConeStamp.size() < static_cast<size_t>(numVars()))
    ConeStamp.resize(static_cast<size_t>(numVars()), 0);
  if (++ConeGen == 0) { // generation wrap: invalidate all stale stamps
    std::fill(ConeStamp.begin(), ConeStamp.end(), 0u);
    ConeGen = 1;
  }

  uint64_t NumVars = 0;
  if (ExternalCone) {
    // Caller-computed (definitional) cone, e.g. the blaster's term cone.
    // The assumption variables must be decidable whatever the caller sent.
    for (Var V : *ExternalCone)
      if (static_cast<size_t>(V) < ConeStamp.size() &&
          ConeStamp[static_cast<size_t>(V)] != ConeGen) {
        ConeStamp[static_cast<size_t>(V)] = ConeGen;
        if (isUnassigned(V))
          ++NumVars;
      }
    for (Lit A : Assumps) {
      Var V = A.var();
      if (ConeStamp[static_cast<size_t>(V)] != ConeGen) {
        ConeStamp[static_cast<size_t>(V)] = ConeGen;
        if (isUnassigned(V))
          ++NumVars;
      }
    }
  } else {
    markConeByConnectivity(Assumps, NumVars);
  }

  ConeActive = NumVars > 0;
  LastConeUsed = ConeActive;
  if (!ConeActive) {
    Stats.ConeVars = 0;
    Stats.ConeClauses = 0;
    return;
  }

  // Classify every live clause — skip iff it still has an unfixed
  // out-of-cone literal (such a literal stays unassigned for the whole
  // projected phase, so the clause can never propagate) — and mirror the
  // verdict into the watcher nodes so the hot loop never touches skipped
  // clause memory.
  uint64_t NumClauses = 0;
  auto Classify = [&](const std::vector<CRef> &List) {
    for (CRef C : List) {
      if (isDeleted(C))
        continue;
      uint32_t Sz = clauseSize(C);
      bool Skip = false;
      for (uint32_t K = 0; K < Sz; ++K) {
        Lit L = litAt(C, K);
        if (value(L) == LBool::Undef && !coneMarked(L.var())) {
          Skip = true;
          break;
        }
      }
      if (Skip)
        Arena[C + 1] |= SkipBit;
      else {
        Arena[C + 1] &= ~SkipBit;
        ++NumClauses;
      }
    }
  };
  Classify(ProblemClauses);
  Classify(Learnts);
  for (WatchNode &W : WatchPool) {
    if (W.C == NoReason)
      continue; // free-list node
    if (isSkipped(W.C))
      W.Flags |= WatchSkip;
    else
      W.Flags &= ~WatchSkip;
  }
  ConeFlagged = true;

  Stats.ConeVars = NumVars;
  Stats.ConeClauses = NumClauses;
}

void SatSolver::clearConeFlags() {
  if (!ConeFlagged)
    return;
  for (CRef C : ProblemClauses)
    Arena[C + 1] &= ~SkipBit;
  for (CRef C : Learnts)
    Arena[C + 1] &= ~SkipBit;
  for (WatchNode &W : WatchPool)
    W.Flags &= ~WatchSkip;
  ConeFlagged = false;
}

void SatSolver::liftCone() {
  ConeActive = false;
  // Restart before re-enabling the skipped clauses. Replaying a deep
  // search trail against them is not conflict-safe: a replay conflict
  // would backjump with QHead snapped past the unreplayed positions,
  // leaving re-enabled clauses permanently blind to surviving trail
  // literals (a later Sat could then violate one of them). At level 0
  // the replay below covers exactly the literals fixed while the flags
  // were on, and a replay conflict is a genuine root contradiction.
  cancelUntil(0);
  for (Var V : ConeDeferred)
    if (isUnassigned(V))
      heapInsert(V);
  ConeDeferred.clear();
  clearConeFlags();
  // Replay every root literal fixed since the projected phase began
  // against the re-enabled clauses: their skipped watchers never moved,
  // so without this the solver would go blind to those clauses forever.
  // Older trail entries were fully propagated before the phase started.
  QHead = std::min(ConeEntryMark, Trail.size());
}

SatResult SatSolver::solve(const SatBudget &Budget) {
  static const std::vector<Lit> NoAssumps;
  return solve(NoAssumps, Budget);
}

namespace {
/// Publishes per-call deltas of the cumulative SatStats to the obs
/// metrics registry on every exit path (solve has several). Relaxed
/// atomic adds only; never touches search state.
struct SolveMetricsGuard {
  const SatStats &S;
  uint64_t C0, P0, R0, D0;
  explicit SolveMetricsGuard(const SatStats &S)
      : S(S), C0(S.Conflicts), P0(S.Propagations), R0(S.Restarts),
        D0(S.Decisions) {}
  ~SolveMetricsGuard() {
    static obs::Counter &Solves = obs::counter("sat.solves");
    static obs::Counter &Conflicts = obs::counter("sat.conflicts");
    static obs::Counter &Props = obs::counter("sat.propagations");
    static obs::Counter &Restarts = obs::counter("sat.restarts");
    static obs::Counter &Decisions = obs::counter("sat.decisions");
    Solves.inc();
    Conflicts.inc(S.Conflicts - C0);
    Props.inc(S.Propagations - P0);
    Restarts.inc(S.Restarts - R0);
    Decisions.inc(S.Decisions - D0);
  }
};
} // namespace

SatResult SatSolver::solve(const std::vector<Lit> &Assumps,
                           const SatBudget &Budget, const SatOptions &Opts,
                           const std::vector<Var> *ExternalCone) {
  SolveMetricsGuard Metrics(Stats);
  if (!OkFlag)
    return SatResult::Unsat;
  assert(decisionLevel() == 0);
  if (propagate() != NoReason) {
    OkFlag = false;
    return SatResult::Unsat;
  }

  Stats.ConeVars = 0;
  Stats.ConeClauses = 0;
  LastConeUsed = false;
  ConeActive = false;
  if (Opts.ConeProjection && !Assumps.empty())
    setupCone(Assumps, ExternalCone);

  // Non-Sat exits of a projected solve must lift the restriction and run
  // the catch-up propagation themselves (the Sat path lifts mid-search):
  // the solver outlives the query, and later queries rely on complete
  // watcher state.
  auto ProjectedExit = [&](SatResult R) {
    if (ConeActive || ConeFlagged) {
      liftCone();
      if (OkFlag && propagate() != NoReason)
        OkFlag = false; // catch-up exposed a root-level contradiction
    }
    return R;
  };

  // Budgets are per call: measure against the counters at entry so an
  // incremental solver gets a fresh allowance for every query.
  const uint64_t StartConflicts = Stats.Conflicts;
  const uint64_t StartProps = Stats.Propagations;

  // A task deadline must be able to stop a long solve between conflicts
  // and between decisions; budgets alone only bound the conflict path.
  // Expiry exits through the ordinary Unknown path (solver stays usable,
  // caller's next stage checkpoint raises the cancellation) rather than
  // throwing from inside the search loop. Clock reads are amortised.
  const support::CancelToken *CT = support::currentCancelToken();
  uint64_t CancelTick = 0;

  int RestartNum = 0;
  uint64_t RestartLimit =
      static_cast<uint64_t>(100 * luby(2.0, RestartNum));
  uint64_t ConflictsAtRestart = 0;
  std::vector<Lit> Learnt;

  for (;;) {
    CRef Confl = propagate();
    if (Confl != NoReason) {
      ++Stats.Conflicts;
      ++ConflictsAtRestart;
      if (decisionLevel() == 0) {
        OkFlag = false;
        return ProjectedExit(SatResult::Unsat);
      }
      int BtLevel;
      uint32_t Lbd;
      analyze(Confl, Learnt, BtLevel, Lbd);
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
        Lbd = 1;
      } else {
        CRef C = allocClause(Learnt, /*Learnt=*/true, Lbd);
        attachClause(C);
        enqueue(Learnt[0], C);
        Stats.LearntLive = Learnts.size();
      }
      ++Stats.LearntTotal;
      Stats.SumLBD += Lbd;
      decayActivities();
      if (Stats.Conflicts - StartConflicts >= Budget.MaxConflicts ||
          Stats.Propagations - StartProps >= Budget.MaxPropagations ||
          ((Stats.Conflicts & 0x3F) == 0 && CT && CT->expired())) {
        cancelUntil(0);
        return ProjectedExit(SatResult::Unknown);
      }
      // Learnt-DB reduction: long-budget runs otherwise drown propagation
      // in stale learnt clauses.
      if (Stats.Conflicts >= NextReduce) {
        reduceDB();
        NextReduce =
            Stats.Conflicts + 2000 + ReduceIncrement * Stats.ReduceDBs;
      }
      continue;
    }
    // No conflict.
    if (ConflictsAtRestart >= RestartLimit) {
      ConflictsAtRestart = 0;
      RestartLimit = static_cast<uint64_t>(100 * luby(2.0, ++RestartNum));
      ++Stats.Restarts;
      int Keep = 0;
      if (Opts.TrailReuse && decisionLevel() > 0) {
        // Keep the assumption prefix of the trail: those decisions are
        // re-made verbatim by the next round anyway, and re-deriving
        // their propagation — the whole shared context — is the dominant
        // propagation cost of budget-bound incremental queries. Search
        // levels above the assumptions still cancel, preserving the point
        // of the restart.
        Keep = std::min(static_cast<int>(Assumps.size()), decisionLevel());
        if (Keep > 0) {
          size_t Bound = Keep < decisionLevel()
                             ? static_cast<size_t>(
                                   TrailLim[static_cast<size_t>(Keep)])
                             : Trail.size();
          Stats.TrailReused += Bound - static_cast<size_t>(TrailLim[0]);
        }
      }
      cancelUntil(Keep);
      continue;
    }
    // Take pending assumptions first, one decision level each.
    Lit Next;
    while (decisionLevel() < static_cast<int>(Assumps.size())) {
      Lit P = Assumps[static_cast<size_t>(decisionLevel())];
      LBool V = value(P);
      if (V == LBool::True) {
        // Already satisfied: open a dummy level to keep the
        // assumption-index == decision-level correspondence.
        TrailLim.push_back(static_cast<int>(Trail.size()));
      } else if (V == LBool::False) {
        // The clause DB (plus earlier assumptions) refutes this
        // assumption: Unsat under assumptions, solver stays usable.
        cancelUntil(0);
        return ProjectedExit(SatResult::Unsat);
      } else {
        Next = P;
        break;
      }
    }
    if (Next.X < 0)
      Next = pickBranchLit();
    if (Next.X < 0 && ConeActive) {
      // Cone exhausted without conflict: every cone clause is satisfied.
      // Lift the restriction (a restart plus root-trail replay) and let
      // ordinary CDCL re-derive and complete the assignment over the
      // full DB — so Sat is never claimed from the cone alone.
      liftCone();
      continue;
    }
    if (Next.X < 0) {
      // All variables assigned: SAT.
      for (size_t V = 0; V < Model.size(); ++V)
        Model[V] = static_cast<LBool>(AssignLit[2 * V]);
      cancelUntil(0);
      return SatResult::Sat;
    }
    if ((++CancelTick & 0x3FF) == 0 && CT && CT->expired()) {
      cancelUntil(0);
      return ProjectedExit(SatResult::Unknown);
    }
    ++Stats.Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Next, NoReason);
  }
}
