//===- smt/Sat.h - incremental CDCL SAT solver ------------------*- C++ -*-===//
///
/// \file
/// A compact incremental CDCL SAT solver (two-watched-literal propagation
/// with blocking literals, 1UIP clause learning with backjumping, VSIDS
/// branching, phase saving, Luby restarts, glucose-style learnt-clause DB
/// reduction) with a per-call conflict budget. Exceeding the budget yields
/// Unknown — this is how the reproduction models Alive2/Z3 timeouts: harder
/// refinement encodings blow the budget, cheaper domain-specific encodings
/// (C-level unrolling, spatial splitting) fit, producing the paper's
/// Table 3 funnel.
///
/// The solver is incremental: clauses may be added between solve() calls,
/// and solve(assumptions) decides satisfiability under a set of assumption
/// literals that are retracted afterwards. Each assumption occupies its own
/// decision level below all search decisions, so learnt clauses derived
/// under one set of assumptions remain valid for every later query — this
/// is what lets the spatial-splitting stage share one solver across all
/// per-cell queries.
///
/// Clauses live in a flat uint32 arena addressed by CRef offsets (header
/// word, LBD word, then literals), so propagation walks contiguous memory
/// instead of chasing per-clause std::vector allocations.
///
//===----------------------------------------------------------------------===//

#ifndef LV_SMT_SAT_H
#define LV_SMT_SAT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lv {
namespace smt {

/// Propositional variable (0-based).
using Var = int;

/// Literal encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  int X = -2;

  Lit() = default;
  Lit(Var V, bool Neg) : X(2 * V + (Neg ? 1 : 0)) {}

  Var var() const { return X >> 1; }
  bool sign() const { return X & 1; } ///< True when negated.
  Lit operator~() const {
    Lit L;
    L.X = X ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }
};

/// Tri-state assignment.
enum class LBool : int8_t { False = -1, Undef = 0, True = 1 };

/// Solver result.
enum class SatResult : uint8_t { Sat, Unsat, Unknown };

/// Resource limits; conflicts are the primary budget knob. Budgets are
/// per-solve-call: an incremental solver that has already spent conflicts
/// on earlier queries gets a fresh allowance for each new query. MaxClauses
/// bounds the blasted formula size (the memout analogue): solving is
/// refused when exceeded.
struct SatBudget {
  uint64_t MaxConflicts = 200'000;
  uint64_t MaxPropagations = UINT64_MAX;
  uint64_t MaxClauses = 3'000'000;
};

/// Query-scoped solving knobs, per solve() call. Both techniques perturb
/// search order (and therefore which budget-bound queries come back
/// Unknown), so callers that need verdict stability across configurations
/// gate them behind a parity harness — see bench_table3_equivalence.
struct SatOptions {
  /// Cone-of-influence projection: restrict the search to the query's
  /// cone. Decisions only pick cone variables, and clauses with an
  /// unfixed out-of-cone literal are excluded from propagation entirely
  /// (a skip flag mirrored into their watcher nodes), so a query against
  /// a large shared clause DB no longer pays propagation proportional to
  /// the whole DB. The cone is either supplied by the caller (the query
  /// layer passes the blaster's definitional cone — see
  /// IncrementalSolver) or, by default, computed here as clause
  /// connectivity from the assumption roots, stopping at level-0-fixed
  /// variables.
  ///
  /// Soundness: out-of-cone variables are never assigned while the
  /// restriction holds, so a skipped clause always retains an unassigned
  /// literal and can be neither falsified nor unit — conflicts found in
  /// the cone are conflicts of the full DB (Unsat stays sound). When the
  /// cone is fully assigned without conflict, the restriction lifts and
  /// ordinary CDCL finishes the job: the search restarts to level 0,
  /// skip flags clear, the root trail replays against the re-enabled
  /// clauses, and search continues to a full model — so Sat is never
  /// claimed from the cone alone. Every exit replays the root trail the
  /// same way, keeping the watcher invariants of the shared solver
  /// intact for later queries.
  bool ConeProjection = false;
  /// Restart trail reuse: after a Luby restart, keep the assumption
  /// prefix of the trail (those decisions are re-made verbatim by the
  /// very next round, and re-deriving their propagation — the whole
  /// shared context — is the dominant propagation cost of budget-bound
  /// incremental queries) instead of cancelling to level 0. Search
  /// decisions above the assumptions are still cancelled, preserving the
  /// purpose of the restart.
  bool TrailReuse = false;
};

/// Aggregate solver statistics (cumulative across solve() calls).
struct SatStats {
  uint64_t Conflicts = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t Decisions = 0;
  uint64_t LearntTotal = 0;   ///< Clauses ever learnt.
  uint64_t LearntLive = 0;    ///< Learnt clauses currently in the DB.
  uint64_t LearntDeleted = 0; ///< Removed by reduceDB.
  uint64_t ReduceDBs = 0;     ///< Reduction passes run.
  uint64_t SumLBD = 0;        ///< Over all learnt clauses (for the mean).
  uint64_t ArenaWords = 0;    ///< Current clause-arena footprint.
  // Query-scoped solving (SatOptions). TrailReused is cumulative;
  // ConeVars/ConeClauses describe the most recent solve() call (0 when
  // projection did not run).
  uint64_t TrailReused = 0;   ///< Trail literals kept across restarts.
  uint64_t ConeVars = 0;      ///< Cone size of the last projected solve.
  uint64_t ConeClauses = 0;   ///< Live clauses in that cone.

  double avgLBD() const {
    return LearntTotal ? static_cast<double>(SumLBD) /
                             static_cast<double>(LearntTotal)
                       : 0.0;
  }
};

/// The solver.
class SatSolver {
public:
  SatSolver() = default;

  /// Creates a fresh variable.
  Var newVar();

  int numVars() const { return static_cast<int>(Activity.size()); }

  /// Adds a clause; returns false if the formula became trivially UNSAT.
  bool addClause(std::vector<Lit> Lits);

  /// Convenience for small clauses.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Solves under the given budget.
  SatResult solve(const SatBudget &Budget = SatBudget());

  /// Solves under \p Assumps: satisfiability of the clause DB with every
  /// assumption literal forced true. Assumptions are retracted on return,
  /// and Unsat-under-assumptions leaves the solver usable (only a conflict
  /// at decision level zero marks the DB permanently UNSAT). \p Opts
  /// selects the query-scoped techniques (cone projection, trail reuse);
  /// the defaults reproduce the classic search exactly. \p ExternalCone,
  /// when given with ConeProjection, is the caller-computed cone variable
  /// set (e.g. the blaster's definitional cone); otherwise the cone is
  /// derived here by clause connectivity.
  SatResult solve(const std::vector<Lit> &Assumps, const SatBudget &Budget,
                  const SatOptions &Opts = SatOptions(),
                  const std::vector<Var> *ExternalCone = nullptr);

  /// Model access after Sat.
  bool modelValue(Var V) const {
    return Model[static_cast<size_t>(V)] == LBool::True;
  }

  /// True when the last solve() ran cone-projected (it had assumptions,
  /// projection was requested, and the cone was non-empty).
  bool lastConeActive() const { return LastConeUsed; }

  /// After a projected solve: was \p V inside the query cone? The model is
  /// total either way (the lift phase completes it), but certificates
  /// should be read cone-restricted — out-of-cone values are an arbitrary
  /// satisfying extension of unrelated structure.
  bool inLastCone(Var V) const {
    return LastConeUsed && static_cast<size_t>(V) < ConeStamp.size() &&
           ConeStamp[static_cast<size_t>(V)] == ConeGen;
  }

  /// Branching-heuristic state (VSIDS activity, saved phases, the decay
  /// bump). Shared-learnt sessions snapshot it at the fork point and
  /// restore before every query, so what is shared across queries is the
  /// clause DB — learnt lemmas included — and not heuristic warmth, which
  /// is the dominant source of cross-query search drift.
  struct HeuristicSnapshot {
    std::vector<double> Activity;
    std::vector<char> Polarity;
    double VarInc = 1.0;
  };
  void saveHeuristics(HeuristicSnapshot &Out) const {
    Out.Activity = Activity;
    Out.Polarity = Polarity;
    Out.VarInc = VarInc;
  }
  /// Restores a snapshot: snapshot values for vars that existed then,
  /// fresh-var defaults for newer ones, and the decision heap rebuilt to
  /// creation order — exactly the state a fork taken at the snapshot
  /// would present to its next query.
  void restoreHeuristics(const HeuristicSnapshot &S);

  /// Statistics.
  uint64_t conflicts() const { return Stats.Conflicts; }
  uint64_t propagations() const { return Stats.Propagations; }
  uint64_t numClauses() const {
    return ProblemClauses.size() + Learnts.size();
  }
  const SatStats &stats() const { return Stats; }

  /// True unless a level-0 conflict proved the clause DB UNSAT outright.
  bool ok() const { return OkFlag; }

private:
  /// Offset of a clause in the arena; header word, LBD word, literals.
  using CRef = uint32_t;
  static constexpr CRef NoReason = UINT32_MAX;

  // Header encoding: [size:30][learnt:1][deleted:1].
  static constexpr uint32_t LearntBit = 2;
  static constexpr uint32_t DeletedBit = 1;

  /// Watcher node in a flat pool; per-literal lists are intrusive singly
  /// linked lists through Next. Flat storage keeps propagation cache
  /// friendly and makes copying the solver (forking) a plain vector copy
  /// instead of ~2*vars heap allocations. Binary clauses are specialized:
  /// the watcher carries the other literal (Blocker) and WatchBinary set,
  /// so propagation implies it without touching clause memory, and the
  /// watch never moves — gate CNF is roughly half binary clauses.
  /// WatchSkip mirrors the clause's out-of-cone flag during a projected
  /// solve, so skipping costs one branch on the already-loaded node
  /// instead of a clause-memory touch.
  static constexpr uint32_t WatchBinary = 1;
  static constexpr uint32_t WatchSkip = 2;
  struct WatchNode {
    CRef C = NoReason;
    Lit Blocker;
    int32_t Next = -1;
    uint32_t Flags = 0;
  };

  std::vector<uint32_t> Arena;
  std::vector<CRef> ProblemClauses;
  std::vector<CRef> Learnts;
  uint64_t WastedWords = 0;

  /// Assignment indexed per *literal* (Lit.X): 1 = true, -1 = false,
  /// 0 = undef. One load answers value(L) — no sign branch on the hot
  /// propagation path.
  std::vector<int8_t> AssignLit;

  // Per-literal lists are kept in append order (insertion at tail), the
  // same visit order as classic vector watch lists — propagation visit
  // order is search-visible, and keeping it stable keeps verdicts stable.
  std::vector<WatchNode> WatchPool;
  std::vector<int32_t> WatchHead; ///< Indexed by Lit.X; -1 = empty.
  std::vector<int32_t> WatchTail; ///< Indexed by Lit.X; -1 = empty.
  int32_t WatchFree = -1;         ///< Free list threaded through Next.
  std::vector<LBool> Model;
  std::vector<int> Level;
  std::vector<CRef> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  static constexpr double VarDecay = 0.95;
  std::vector<char> Polarity; ///< Phase saving (last assigned sign).
  std::vector<char> Seen;

  // Level stamps for LBD computation (generation-tagged).
  std::vector<uint32_t> LevelStamp;
  uint32_t StampGen = 0;

  // Indexed max-heap over variable activity.
  std::vector<Var> Heap;
  std::vector<int> HeapPos; ///< -1 when not in heap.

  bool OkFlag = true;
  SatStats Stats;

  // Cone-of-influence state (SatOptions::ConeProjection). ConeStamp is
  // generation-tagged so consecutive queries never pay an O(vars) clear;
  // the scratch buffers used to build the per-solve occurrence index are
  // emptied after setup so forking copies only their (zero) sizes.
  std::vector<uint32_t> ConeStamp; ///< Var in cone <=> stamp == ConeGen.
  uint32_t ConeGen = 0;
  bool ConeActive = false;   ///< Mid-solve: search restricted to cone.
  bool ConeFlagged = false;  ///< Skip flags currently applied to the DB.
  bool LastConeUsed = false; ///< Last solve ran projected (certificates).
  size_t ConeEntryMark = 0;  ///< Trail size at projected-solve entry: the
                             ///< catch-up replay starts here — everything
                             ///< below was fully propagated before.
  std::vector<Var> ConeDeferred; ///< Out-of-cone vars popped from the heap.
  std::vector<Var> ConeQueue;    ///< BFS worklist (scratch).
  std::vector<uint32_t> OccCount, OccList; ///< Occurrence CSR (scratch).
  std::vector<CRef> LiveScratch;           ///< Live clauses (scratch).

  // Clause skip flag: high bit of the LBD word (LBDs are tiny). Survives
  // the arena GC because relocation copies the word before forwarding.
  static constexpr uint32_t SkipBit = 0x80000000u;
  bool isSkipped(CRef C) const { return Arena[C + 1] & SkipBit; }

  /// Marks the cone variable set for this solve: the caller-supplied
  /// \p ExternalCone when present, else clause connectivity from the
  /// assumption roots. Then classifies every live clause (skip iff it has
  /// an unfixed out-of-cone literal), mirrors the flags into the watcher
  /// nodes, and turns the search restriction on. No-op (cone stays off)
  /// when the resulting cone is empty.
  void setupCone(const std::vector<Lit> &Assumps,
                 const std::vector<Var> *ExternalCone);
  void markConeByConnectivity(const std::vector<Lit> &Assumps,
                              uint64_t &NumVars);
  /// Ends the projected phase: restarts to level 0, clears the skip
  /// flags, returns deferred vars to the heap, and rewinds QHead so the
  /// next propagate() replays the root trail against the full DB —
  /// catching up the watcher state (and any implication a skipped clause
  /// was withholding). Callers on exit paths must run that propagation
  /// before returning.
  void liftCone();
  void clearConeFlags();
  bool coneMarked(Var V) const {
    return ConeStamp[static_cast<size_t>(V)] == ConeGen;
  }

  // Learnt-DB reduction schedule.
  uint64_t NextReduce = 2000;
  static constexpr uint64_t ReduceIncrement = 1000;

  // Arena accessors.
  uint32_t clauseSize(CRef C) const { return Arena[C] >> 2; }
  bool isLearnt(CRef C) const { return Arena[C] & LearntBit; }
  bool isDeleted(CRef C) const { return Arena[C] & DeletedBit; }
  void markDeleted(CRef C) { Arena[C] |= DeletedBit; }
  uint32_t lbd(CRef C) const { return Arena[C + 1] & ~SkipBit; }
  void setLbd(CRef C, uint32_t L) {
    Arena[C + 1] = (Arena[C + 1] & SkipBit) | L;
  }
  Lit litAt(CRef C, uint32_t I) const {
    Lit L;
    L.X = static_cast<int>(Arena[C + 2 + I]);
    return L;
  }
  void setLitAt(CRef C, uint32_t I, Lit L) {
    Arena[C + 2 + I] = static_cast<uint32_t>(L.X);
  }
  CRef allocClause(const std::vector<Lit> &Lits, bool Learnt, uint32_t Lbd);

  void watchInsert(int LitX, CRef C, Lit Blocker, uint32_t Flags) {
    int32_t N;
    if (WatchFree >= 0) {
      N = WatchFree;
      WatchFree = WatchPool[static_cast<size_t>(N)].Next;
    } else {
      N = static_cast<int32_t>(WatchPool.size());
      WatchPool.emplace_back();
    }
    WatchNode &W = WatchPool[static_cast<size_t>(N)];
    W.C = C;
    W.Blocker = Blocker;
    W.Next = -1;
    W.Flags = Flags;
    watchAppendNode(LitX, N);
  }

  void watchAppendNode(int LitX, int32_t N) {
    size_t L = static_cast<size_t>(LitX);
    if (WatchTail[L] >= 0)
      WatchPool[static_cast<size_t>(WatchTail[L])].Next = N;
    else
      WatchHead[L] = N;
    WatchTail[L] = N;
  }

  LBool value(Lit L) const {
    return static_cast<LBool>(AssignLit[static_cast<size_t>(L.X)]);
  }
  bool isUnassigned(Var V) const {
    return AssignLit[static_cast<size_t>(2 * V)] == 0;
  }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  void enqueue(Lit L, CRef From);
  CRef propagate();
  void analyze(CRef Confl, std::vector<Lit> &OutLearnt, int &OutBtLevel,
               uint32_t &OutLbd);
  void cancelUntil(int Lvl);
  Lit pickBranchLit();
  void attachClause(CRef C);
  uint32_t computeLBD(const std::vector<Lit> &Lits);
  bool locked(CRef C) const;
  void reduceDB();
  void garbageCollect();

  // Heap helpers.
  void heapInsert(Var V);
  void heapDecrease(Var V); ///< Activity increased: sift up.
  Var heapPop();
  bool heapEmpty() const { return Heap.empty(); }
  void siftUp(int I);
  void siftDown(int I);
  bool heapLess(Var A, Var B) const {
    return Activity[static_cast<size_t>(A)] >
           Activity[static_cast<size_t>(B)];
  }

  void bumpVar(Var V);
  void decayActivities() { VarInc /= VarDecay; }
};

/// Reluctant-doubling (Luby) sequence value for restart \p X (0-based),
/// scaled by base \p Y: 1,1,Y,1,1,Y,Y^2,... for Y=2. Exposed for the
/// restart-schedule unit tests.
double luby(double Y, int X);

} // namespace smt
} // namespace lv

#endif // LV_SMT_SAT_H
