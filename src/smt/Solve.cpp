//===- smt/Solve.cpp - satisfiability queries --------------------------------===//

#include "smt/Solve.h"

#include "support/Format.h"

using namespace lv;
using namespace lv::smt;

void IncrementalSolver::assertAlways(TermId T) {
  if (RootUnsat || TT.isTrue(T))
    return;
  if (TT.isFalse(T)) {
    RootUnsat = true;
    return;
  }
  Lit Root = B.blastBool(T);
  if (!S.addClause(Root))
    RootUnsat = true;
}

SmtResult IncrementalSolver::check(TermId Query, const SatBudget &Budget) {
  SmtResult Out;
  if (RootUnsat || !S.ok()) {
    Out.R = SatResult::Unsat;
    return Out;
  }
  // Fast path: a query the rewriter reduced to false is unsat regardless
  // of the asserted context. The converse is NOT a fast path — a
  // trivially-true query still asks "is the asserted context
  // satisfiable?", so it falls through to a real solve (blastBool yields
  // the constant-true literal and the assumption is vacuous).
  if (TT.isFalse(Query)) {
    Out.R = SatResult::Unsat;
    return Out;
  }

  const SatStats &St = S.stats();
  const uint64_t C0 = St.Conflicts;
  const uint64_t P0 = St.Propagations;
  const uint64_t R0 = St.Restarts;

  Lit Root = B.blastBool(Query);
  Out.ClauseCount = S.numClauses();
  Out.VarCount = static_cast<uint64_t>(S.numVars());
  if (S.numClauses() > Budget.MaxClauses) {
    // Formula too large to attempt: the memout analogue.
    Out.R = SatResult::Unknown;
    return Out;
  }
  if (!S.ok()) {
    // Blasting itself derived a root-level contradiction.
    Out.R = SatResult::Unsat;
    return Out;
  }
  // The Tseitin root literal is *equivalent* to the query term, so solving
  // under it as an assumption decides exactly F && Query — and leaves the
  // clause DB reusable for the next query.
  Out.R = S.solve(std::vector<Lit>{Root}, Budget);
  Out.ConflictsUsed = St.Conflicts - C0;
  Out.PropagationsUsed = St.Propagations - P0;
  Out.RestartsUsed = St.Restarts - R0;
  Out.ClauseCount = S.numClauses();
  Out.LearntLive = St.LearntLive;
  Out.AvgLBD = St.avgLBD();
  if (Out.R == SatResult::Sat) {
    for (TermId V : B.seenVars()) {
      if (TT.isBv(V)) {
        uint32_t Val;
        if (B.modelOfVar(V, Val))
          Out.Model.emplace(V, Val);
      } else {
        bool Bit;
        if (B.modelOfBVar(V, Bit))
          Out.Model.emplace(V, Bit ? 1u : 0u);
      }
    }
  }
  return Out;
}

SmtResult lv::smt::checkSat(const TermTable &TT, TermId Query,
                            const SatBudget &Budget) {
  IncrementalSolver IS(TT);
  return IS.check(Query, Budget);
}

std::string
lv::smt::printModel(const TermTable &TT,
                    const std::unordered_map<TermId, uint32_t> &Model) {
  std::string Out;
  for (const auto &KV : Model) {
    const std::string &Name = TT.varName(KV.first);
    appendf(Out, "%s = %d\n",
            Name.empty() ? format("v%d", KV.first).c_str() : Name.c_str(),
            static_cast<int32_t>(KV.second));
  }
  return Out;
}
