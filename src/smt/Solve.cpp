//===- smt/Solve.cpp - satisfiability queries --------------------------------===//

#include "smt/Solve.h"

#include "support/Format.h"

using namespace lv;
using namespace lv::smt;

void IncrementalSolver::assertAlways(TermId T) {
  if (RootUnsat || TT.isTrue(T))
    return;
  if (TT.isFalse(T)) {
    RootUnsat = true;
    return;
  }
  AssertedRoots.push_back(T); // every query's cone includes the context
  Lit Root = B.blastBool(T);
  if (!S.addClause(Root))
    RootUnsat = true;
}

void IncrementalSolver::computeQueryCone(TermId Query) {
  // Stamp every term reachable from the query or an asserted root.
  if (TermStamp.size() < TT.size())
    TermStamp.resize(TT.size(), 0);
  if (++TermGen == 0) {
    std::fill(TermStamp.begin(), TermStamp.end(), 0u);
    TermGen = 1;
  }
  WalkStack.clear();
  auto Push = [&](TermId Id) {
    if (Id != NoTerm && TermStamp[static_cast<size_t>(Id)] != TermGen) {
      TermStamp[static_cast<size_t>(Id)] = TermGen;
      WalkStack.push_back(Id);
    }
  };
  Push(Query);
  for (TermId R : AssertedRoots)
    Push(R);
  while (!WalkStack.empty()) {
    const Term &T = TT.get(WalkStack.back());
    WalkStack.pop_back();
    Push(T.A);
    Push(T.B);
    Push(T.C);
  }

  // Collect the solver variables those terms own: their interned bit
  // literals plus every internal gate variable introduced while blasting
  // them. One linear pass over the var table — about the cost of a single
  // propagation sweep, replacing per-DB search costs.
  ConeScratch.clear();
  int N = B.numOwnedVars();
  for (Var V = 0; V < N; ++V) {
    TermId Owner = B.varOwner(V);
    if (Owner != NoTerm && TermStamp[static_cast<size_t>(Owner)] == TermGen)
      ConeScratch.push_back(V);
  }
}

SmtResult IncrementalSolver::check(TermId Query, const SatBudget &Budget) {
  SmtResult Out;
  if (RootUnsat || !S.ok()) {
    Out.R = SatResult::Unsat;
    return Out;
  }
  // Fast path: a query the rewriter reduced to false is unsat regardless
  // of the asserted context. The converse is NOT a fast path — a
  // trivially-true query still asks "is the asserted context
  // satisfiable?", so it falls through to a real solve (blastBool yields
  // the constant-true literal and the assumption is vacuous).
  if (TT.isFalse(Query)) {
    Out.R = SatResult::Unsat;
    return Out;
  }

  const SatStats &St = S.stats();
  const uint64_t C0 = St.Conflicts;
  const uint64_t P0 = St.Propagations;
  const uint64_t R0 = St.Restarts;
  const uint64_t T0 = St.TrailReused;

  Lit Root = B.blastBool(Query);
  Out.ClauseCount = S.numClauses();
  Out.VarCount = static_cast<uint64_t>(S.numVars());
  if (S.numClauses() > Budget.MaxClauses) {
    // Formula too large to attempt: the memout analogue.
    Out.R = SatResult::Unknown;
    return Out;
  }
  if (!S.ok()) {
    // Blasting itself derived a root-level contradiction.
    Out.R = SatResult::Unsat;
    return Out;
  }
  // The Tseitin root literal is *equivalent* to the query term, so solving
  // under it as an assumption decides exactly F && Query — and leaves the
  // clause DB reusable for the next query. Projected solves get the
  // blaster's definitional cone: the context, the query's own encoding,
  // and nothing a sibling query left behind.
  const std::vector<Var> *Cone = nullptr;
  if (SolveOpts.ConeProjection) {
    computeQueryCone(Query);
    Cone = &ConeScratch;
  }
  Out.R = S.solve(std::vector<Lit>{Root}, Budget, SolveOpts, Cone);
  Out.ConflictsUsed = St.Conflicts - C0;
  Out.PropagationsUsed = St.Propagations - P0;
  Out.RestartsUsed = St.Restarts - R0;
  Out.TrailReused = St.TrailReused - T0;
  Out.ConeVars = St.ConeVars;
  Out.ConeClauses = St.ConeClauses;
  Out.ClauseCount = S.numClauses();
  Out.LearntLive = St.LearntLive;
  Out.AvgLBD = St.avgLBD();
  if (Out.R == SatResult::Sat) {
    for (TermId V : B.seenVars()) {
      // Cone-projected queries report a cone-restricted certificate: a
      // variable none of whose bits lie in the query cone carries only an
      // arbitrary satisfying extension of unrelated structure (in shared
      // solvers, typically an earlier query's inputs).
      if (S.lastConeActive() && !B.varInLastCone(V, S))
        continue;
      if (TT.isBv(V)) {
        uint32_t Val;
        if (B.modelOfVar(V, Val))
          Out.Model.emplace(V, Val);
      } else {
        bool Bit;
        if (B.modelOfBVar(V, Bit))
          Out.Model.emplace(V, Bit ? 1u : 0u);
      }
    }
  }
  return Out;
}

SmtResult lv::smt::checkSat(const TermTable &TT, TermId Query,
                            const SatBudget &Budget) {
  IncrementalSolver IS(TT);
  return IS.check(Query, Budget);
}

std::string
lv::smt::printModel(const TermTable &TT,
                    const std::unordered_map<TermId, uint32_t> &Model) {
  std::string Out;
  for (const auto &KV : Model) {
    const std::string &Name = TT.varName(KV.first);
    appendf(Out, "%s = %d\n",
            Name.empty() ? format("v%d", KV.first).c_str() : Name.c_str(),
            static_cast<int32_t>(KV.second));
  }
  return Out;
}
