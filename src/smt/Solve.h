//===- smt/Solve.h - satisfiability queries ---------------------*- C++ -*-===//
///
/// \file
/// Query interfaces over the SAT backend.
///
/// checkSat() is the one-shot entry point: satisfiability of a boolean term
/// under a resource budget, with model extraction for counterexample
/// reporting. The translation validator asks "can the refinement be
/// violated?": Unsat => Equivalent, Sat => Inequivalent (model =
/// distinguishing input), Unknown => Inconclusive (the paper's timeout
/// outcome).
///
/// IncrementalSolver is the persistent variant: one SatSolver plus one
/// BitBlaster kept alive across queries over a shared TermTable. Because
/// the Tseitin encoding is a full equivalence (root literal <=> term), each
/// query is decided by passing its root literal as a SAT *assumption* — no
/// clause is ever retracted and the shared encoding blasts exactly once.
/// Repeated check() calls on one instance additionally share learnt
/// clauses (useful when queries are related and budgets generous); the
/// translation validator instead forks a pristine instance per query for
/// verdict stability — see tv::RefinementSession. Either way the
/// spatial-splitting stage pays O(formula + cells) blasting instead of
/// O(cells * formula).
///
//===----------------------------------------------------------------------===//

#ifndef LV_SMT_SOLVE_H
#define LV_SMT_SOLVE_H

#include "smt/Blast.h"
#include "smt/Sat.h"
#include "smt/Term.h"

#include <string>
#include <unordered_map>

namespace lv {
namespace smt {

/// Result of a satisfiability query. Statistics are per-query deltas, so
/// incremental and one-shot solving report comparable numbers.
struct SmtResult {
  SatResult R = SatResult::Unknown;
  /// Model for Var/BVar terms appearing in the query (valid when Sat).
  std::unordered_map<TermId, uint32_t> Model;
  // Statistics (per query).
  uint64_t ConflictsUsed = 0;
  uint64_t PropagationsUsed = 0;
  uint64_t RestartsUsed = 0;
  uint64_t TrailReused = 0; ///< Trail literals kept across restarts.
  uint64_t ConeVars = 0;    ///< Cone size when projection ran (else 0).
  uint64_t ConeClauses = 0; ///< Live clauses in that cone.
  uint64_t ClauseCount = 0;
  uint64_t VarCount = 0;
  uint64_t LearntLive = 0; ///< Learnt-DB size after the query.
  double AvgLBD = 0.0;     ///< Mean LBD over all clauses learnt so far.

  bool sat() const { return R == SatResult::Sat; }
  bool unsat() const { return R == SatResult::Unsat; }
  bool unknown() const { return R == SatResult::Unknown; }
};

/// Persistent solver context for a family of queries over one TermTable.
/// Queries run under assumption literals, so results are independent but
/// the blasted encoding and learnt clauses are shared.
class IncrementalSolver {
public:
  explicit IncrementalSolver(const TermTable &TT) : TT(TT), B(TT, S) {}

  /// Fork: an exact copy of \p O — clause arena, watchers, level-0
  /// assignments, heuristic state, and all blaster memos — in flat copies,
  /// with no re-blasting. A fork of a pristine base behaves bit-for-bit
  /// like a scratch solver that blasted the same context, so queries run
  /// in throwaway forks are guaranteed to reproduce one-shot verdicts
  /// while still paying the shared encoding's blast cost only once.
  IncrementalSolver(const IncrementalSolver &O)
      : TT(O.TT), S(O.S), B(O.B, S), SolveOpts(O.SolveOpts),
        AssertedRoots(O.AssertedRoots), HeurSnap(O.HeurSnap),
        HasHeurSnap(O.HasHeurSnap), RootUnsat(O.RootUnsat) {}

  IncrementalSolver &operator=(const IncrementalSolver &) = delete;

  /// Re-forks in place from \p O (same TermTable), reusing this fork's
  /// buffer capacity so repeated per-query forking costs flat memcpys.
  void assignFrom(const IncrementalSolver &O) {
    S = O.S;
    B.assignFrom(O.B);
    SolveOpts = O.SolveOpts;
    AssertedRoots = O.AssertedRoots;
    HeurSnap = O.HeurSnap;
    HasHeurSnap = O.HasHeurSnap;
    RootUnsat = O.RootUnsat;
  }

  /// Query-scoped solving knobs applied to every subsequent check().
  void setOptions(const SatOptions &O) { SolveOpts = O; }
  const SatOptions &options() const { return SolveOpts; }

  /// Shared-learnt sessions: record the branching-heuristic state at the
  /// fork point; restoreHeuristics() then rewinds to it before a query so
  /// only the clause DB (learnt lemmas included) is shared across
  /// queries, not heuristic warmth.
  void snapshotHeuristics() {
    S.saveHeuristics(HeurSnap);
    HasHeurSnap = true;
  }
  void restoreHeuristics() {
    if (HasHeurSnap)
      S.restoreHeuristics(HeurSnap);
  }

  /// Permanently asserts \p T (e.g. the shared assumption prefix all
  /// queries conjoin). Cheaper than carrying it per query: its root
  /// literal is fixed at decision level 0.
  void assertAlways(TermId T);

  /// Checks satisfiability of \p Query (conjoined with all prior
  /// assertAlways terms) under \p Budget. Repeatable: the query is
  /// retracted afterwards.
  SmtResult check(TermId Query, const SatBudget &Budget = SatBudget());

  /// Cumulative statistics of the underlying solver.
  const SatStats &stats() const { return S.stats(); }
  uint64_t numClauses() const { return S.numClauses(); }
  int numVars() const { return S.numVars(); }

private:
  const TermTable &TT;
  SatSolver S;
  BitBlaster B;
  SatOptions SolveOpts;   ///< Cone projection / trail reuse per check().
  /// Terms asserted via assertAlways — roots of every query's cone.
  std::vector<TermId> AssertedRoots;
  /// Definitional-cone scratch (per check(); see computeQueryCone).
  /// Generation-stamped so repeated queries pay no clears; emptied or
  /// small so forks copy almost nothing.
  std::vector<uint32_t> TermStamp;
  uint32_t TermGen = 0;
  std::vector<TermId> WalkStack;
  std::vector<Var> ConeScratch;
  SatSolver::HeuristicSnapshot HeurSnap; ///< See snapshotHeuristics().
  bool HasHeurSnap = false;
  bool RootUnsat = false; ///< An assertAlways made the context UNSAT.

  /// Computes the definitional cone of \p Query: solver variables owned
  /// by terms reachable (in the term DAG) from the query or any asserted
  /// root. Unlike clause connectivity, this excludes sibling queries'
  /// gates even though they share input variables — which is what makes
  /// shared-learnt solving pay per-query instead of per-DB costs.
  void computeQueryCone(TermId Query);
};

/// Checks satisfiability of \p Query (a bool term in \p TT).
SmtResult checkSat(const TermTable &TT, TermId Query,
                   const SatBudget &Budget = SatBudget());

/// Renders a model as "name=value" lines using the table's variable names.
std::string printModel(const TermTable &TT,
                       const std::unordered_map<TermId, uint32_t> &Model);

} // namespace smt
} // namespace lv

#endif // LV_SMT_SOLVE_H
