//===- smt/Term.cpp - hash-consed bit-vector/bool terms ---------------------===//

#include "smt/Term.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace lv;
using namespace lv::smt;

bool lv::smt::isBvKind(TK K) {
  switch (K) {
  case TK::Const:
  case TK::Var:
  case TK::Add:
  case TK::Sub:
  case TK::Mul:
  case TK::SDiv:
  case TK::SRem:
  case TK::BvAnd:
  case TK::BvOr:
  case TK::BvXor:
  case TK::BvNot:
  case TK::Shl:
  case TK::LShr:
  case TK::AShr:
  case TK::Ite:
    return true;
  default:
    return false;
  }
}

TermTable::TermTable() {
  Term T;
  T.K = TK::True;
  TrueId = intern(T);
  T.K = TK::False;
  FalseId = intern(T);
}

void TermTable::reserve(size_t Expected) {
  // Clamp: MaxTerms is an upper *bound* (memout analogue), not an estimate;
  // reserving the full default 2M would cost ~50MB per session up front.
  constexpr size_t MaxReserve = size_t(1) << 20;
  size_t N = std::min(Expected, MaxReserve);
  Terms.reserve(N);
  VarNames.reserve(N);
  Unique.reserve(N);
  size_t Cap = size_t(1) << 12;
  while (Cap < N)
    Cap <<= 1;
  if (Memo.size() < Cap)
    memoGrow(Cap);
}

TermId TermTable::intern(Term T) {
  auto It = Unique.find(T);
  if (It != Unique.end())
    return It->second;
  TermId Id = static_cast<TermId>(Terms.size());
  Terms.push_back(T);
  VarNames.emplace_back();
  Unique.emplace(T, Id);
  return Id;
}

const std::string &TermTable::varName(TermId Id) const {
  return VarNames[static_cast<size_t>(Id)];
}

//===----------------------------------------------------------------------===//
// Rewrite memo
//===----------------------------------------------------------------------===//

TermId TermTable::memoGet(TK K, TermId A, TermId B, TermId C) const {
  if (Memo.empty())
    return NoTerm;
  size_t Mask = Memo.size() - 1;
  for (size_t I = memoIndex(K, A, B, C, Mask);; I = (I + 1) & Mask) {
    const MemoEntry &E = Memo[I];
    if (E.R == NoTerm)
      return NoTerm;
    if (E.K == K && E.A == A && E.B == B && E.C == C)
      return E.R;
  }
}

void TermTable::memoGrow(size_t NewCap) {
  std::vector<MemoEntry> Old = std::move(Memo);
  Memo.assign(NewCap, MemoEntry());
  size_t Mask = NewCap - 1;
  for (const MemoEntry &E : Old) {
    if (E.R == NoTerm)
      continue;
    size_t I = memoIndex(E.K, E.A, E.B, E.C, Mask);
    while (Memo[I].R != NoTerm)
      I = (I + 1) & Mask;
    Memo[I] = E;
  }
}

void TermTable::memoPut(TK K, TermId A, TermId B, TermId C, TermId R) {
  if (Memo.empty())
    memoGrow(size_t(1) << 12);
  else if (MemoLive * 10 >= Memo.size() * 6) // 60% load
    memoGrow(Memo.size() * 2);
  size_t Mask = Memo.size() - 1;
  size_t I = memoIndex(K, A, B, C, Mask);
  while (Memo[I].R != NoTerm) {
    if (Memo[I].K == K && Memo[I].A == A && Memo[I].B == B && Memo[I].C == C)
      return; // raced with a recursive rewrite of the same application
    I = (I + 1) & Mask;
  }
  Memo[I] = MemoEntry{K, A, B, C, R};
  ++MemoLive;
}

// Public constructors: memo probe first, rewrite chain on miss.
TermId TermTable::mkNot(TermId X) {
  return memoized(TK::Not, X, NoTerm, NoTerm, [&] { return rwNot(X); });
}
TermId TermTable::mkAnd(TermId X, TermId Y) {
  return memoized(TK::And, X, Y, NoTerm, [&] { return rwAnd(X, Y); });
}
TermId TermTable::mkOr(TermId X, TermId Y) {
  return memoized(TK::Or, X, Y, NoTerm, [&] { return rwOr(X, Y); });
}
TermId TermTable::mkBIte(TermId C, TermId T, TermId E) {
  return memoized(TK::BIte, C, T, E, [&] { return rwBIte(C, T, E); });
}
TermId TermTable::mkEq(TermId X, TermId Y) {
  return memoized(TK::Eq, X, Y, NoTerm, [&] { return rwEq(X, Y); });
}
TermId TermTable::mkUlt(TermId X, TermId Y) {
  return memoized(TK::Ult, X, Y, NoTerm, [&] { return rwUlt(X, Y); });
}
TermId TermTable::mkSlt(TermId X, TermId Y) {
  return memoized(TK::Slt, X, Y, NoTerm, [&] { return rwSlt(X, Y); });
}
TermId TermTable::mkAddOvf(TermId X, TermId Y) {
  return memoized(TK::AddOvf, X, Y, NoTerm, [&] { return rwAddOvf(X, Y); });
}
TermId TermTable::mkSubOvf(TermId X, TermId Y) {
  return memoized(TK::SubOvf, X, Y, NoTerm, [&] { return rwSubOvf(X, Y); });
}
TermId TermTable::mkMulOvf(TermId X, TermId Y) {
  return memoized(TK::MulOvf, X, Y, NoTerm, [&] { return rwMulOvf(X, Y); });
}
TermId TermTable::mkAdd(TermId X, TermId Y) {
  return memoized(TK::Add, X, Y, NoTerm, [&] { return rwAdd(X, Y); });
}
TermId TermTable::mkSub(TermId X, TermId Y) {
  return memoized(TK::Sub, X, Y, NoTerm, [&] { return rwSub(X, Y); });
}
TermId TermTable::mkMul(TermId X, TermId Y) {
  return memoized(TK::Mul, X, Y, NoTerm, [&] { return rwMul(X, Y); });
}
TermId TermTable::mkSDiv(TermId X, TermId Y) {
  return memoized(TK::SDiv, X, Y, NoTerm, [&] { return rwSDiv(X, Y); });
}
TermId TermTable::mkSRem(TermId X, TermId Y) {
  return memoized(TK::SRem, X, Y, NoTerm, [&] { return rwSRem(X, Y); });
}
TermId TermTable::mkBvAnd(TermId X, TermId Y) {
  return memoized(TK::BvAnd, X, Y, NoTerm, [&] { return rwBvAnd(X, Y); });
}
TermId TermTable::mkBvOr(TermId X, TermId Y) {
  return memoized(TK::BvOr, X, Y, NoTerm, [&] { return rwBvOr(X, Y); });
}
TermId TermTable::mkBvXor(TermId X, TermId Y) {
  return memoized(TK::BvXor, X, Y, NoTerm, [&] { return rwBvXor(X, Y); });
}
TermId TermTable::mkBvNot(TermId X) {
  return memoized(TK::BvNot, X, NoTerm, NoTerm, [&] { return rwBvNot(X); });
}
TermId TermTable::mkShl(TermId X, TermId Y) {
  return memoized(TK::Shl, X, Y, NoTerm, [&] { return rwShl(X, Y); });
}
TermId TermTable::mkLShr(TermId X, TermId Y) {
  return memoized(TK::LShr, X, Y, NoTerm, [&] { return rwLShr(X, Y); });
}
TermId TermTable::mkAShr(TermId X, TermId Y) {
  return memoized(TK::AShr, X, Y, NoTerm, [&] { return rwAShr(X, Y); });
}
TermId TermTable::mkIte(TermId C, TermId T, TermId E) {
  return memoized(TK::Ite, C, T, E, [&] { return rwIte(C, T, E); });
}

TermId TermTable::mkBVar(const std::string &Name) {
  Term T;
  T.K = TK::BVar;
  T.CVal = NextVarOrdinal++;
  TermId Id = intern(T);
  VarNames[static_cast<size_t>(Id)] = Name;
  return Id;
}

TermId TermTable::mkVar(const std::string &Name) {
  Term T;
  T.K = TK::Var;
  T.CVal = NextVarOrdinal++;
  TermId Id = intern(T);
  VarNames[static_cast<size_t>(Id)] = Name;
  return Id;
}

TermId TermTable::mkConst(uint32_t V) {
  Term T;
  T.K = TK::Const;
  T.CVal = V;
  return intern(T);
}

//===----------------------------------------------------------------------===//
// Bool constructors
//===----------------------------------------------------------------------===//

TermId TermTable::rwNot(TermId X) {
  if (X == TrueId)
    return FalseId;
  if (X == FalseId)
    return TrueId;
  const Term &TX = get(X);
  if (TX.K == TK::Not)
    return TX.A; // !!x = x
  Term T;
  T.K = TK::Not;
  T.A = X;
  return intern(T);
}

TermId TermTable::rwAnd(TermId X, TermId Y) {
  if (X == FalseId || Y == FalseId)
    return FalseId;
  if (X == TrueId)
    return Y;
  if (Y == TrueId)
    return X;
  if (X == Y)
    return X;
  // x && !x = false
  if (get(X).K == TK::Not && get(X).A == Y)
    return FalseId;
  if (get(Y).K == TK::Not && get(Y).A == X)
    return FalseId;
  if (X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::And;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwOr(TermId X, TermId Y) {
  if (X == TrueId || Y == TrueId)
    return TrueId;
  if (X == FalseId)
    return Y;
  if (Y == FalseId)
    return X;
  if (X == Y)
    return X;
  if (get(X).K == TK::Not && get(X).A == Y)
    return TrueId;
  if (get(Y).K == TK::Not && get(Y).A == X)
    return TrueId;
  if (X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::Or;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwBIte(TermId C, TermId T0, TermId E) {
  if (C == TrueId)
    return T0;
  if (C == FalseId)
    return E;
  if (T0 == E)
    return T0;
  if (T0 == TrueId && E == FalseId)
    return C;
  if (T0 == FalseId && E == TrueId)
    return mkNot(C);
  if (get(C).K == TK::Not)
    return mkBIte(get(C).A, E, T0);
  Term T;
  T.K = TK::BIte;
  T.A = C;
  T.B = T0;
  T.C = E;
  return intern(T);
}

TermId TermTable::rwEq(TermId X, TermId Y) {
  if (X == Y)
    return TrueId;
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkBool(CX == CY);
  // (x + c1) == c2  ->  x == c2 - c1  (normalizes unrolled index checks)
  if (isConst(Y, CY)) {
    const Term &TX0 = get(X);
    uint32_t C1;
    if (TX0.K == TK::Add && isConst(TX0.B, C1))
      return mkEq(TX0.A, mkConst(CY - C1));
  }
  // Ite-hoisting: the refinement queries compare guarded memory writes
  // `ite(g_src, v, base)` against `ite(g_tgt, v', base')`. Hoisting the
  // conditions out of the equality lets shared values cancel syntactically
  // instead of dragging their circuits (multipliers!) into the SAT search.
  {
    const Term TX = get(X);
    const Term TY = get(Y);
    if (TX.K == TK::Ite && TY.K == TK::Ite && TX.B == TY.B &&
        TX.C == TY.C) {
      // Equal when the conditions agree, else when the arms coincide.
      TermId Iff = mkOr(mkAnd(TX.A, TY.A), mkAnd(mkNot(TX.A), mkNot(TY.A)));
      return mkOr(Iff, mkEq(TX.B, TX.C));
    }
    if (TX.K == TK::Ite && (TX.B == Y || TX.C == Y)) {
      // ite(c, Y, b) == Y  ->  c || (b == Y); dual for the other arm.
      if (TX.B == Y)
        return mkOr(TX.A, mkEq(TX.C, Y));
      return mkOr(mkNot(TX.A), mkEq(TX.B, Y));
    }
    if (TY.K == TK::Ite && (TY.B == X || TY.C == X)) {
      if (TY.B == X)
        return mkOr(TY.A, mkEq(TY.C, X));
      return mkOr(mkNot(TY.A), mkEq(TY.B, X));
    }
  }
  if (X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::Eq;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwUlt(TermId X, TermId Y) {
  if (X == Y)
    return FalseId;
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkBool(CX < CY);
  if (isConst(Y, CY) && CY == 0)
    return FalseId; // x <u 0 is false
  Term T;
  T.K = TK::Ult;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwSlt(TermId X, TermId Y) {
  if (X == Y)
    return FalseId;
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkBool(static_cast<int32_t>(CX) < static_cast<int32_t>(CY));
  Term T;
  T.K = TK::Slt;
  T.A = X;
  T.B = Y;
  return intern(T);
}

static bool addOvf(int32_t A, int32_t B) {
  int64_t R = static_cast<int64_t>(A) + B;
  return R < INT32_MIN || R > INT32_MAX;
}
static bool subOvf(int32_t A, int32_t B) {
  int64_t R = static_cast<int64_t>(A) - B;
  return R < INT32_MIN || R > INT32_MAX;
}
static bool mulOvf(int32_t A, int32_t B) {
  int64_t R = static_cast<int64_t>(A) * B;
  return R < INT32_MIN || R > INT32_MAX;
}

TermId TermTable::rwAddOvf(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkBool(addOvf(static_cast<int32_t>(CX), static_cast<int32_t>(CY)));
  if (isConst(X, CX) && CX == 0)
    return FalseId;
  if (isConst(Y, CY) && CY == 0)
    return FalseId;
  if (X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::AddOvf;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwSubOvf(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkBool(subOvf(static_cast<int32_t>(CX), static_cast<int32_t>(CY)));
  if (isConst(Y, CY) && CY == 0)
    return FalseId;
  if (X == Y)
    return FalseId;
  Term T;
  T.K = TK::SubOvf;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwMulOvf(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkBool(mulOvf(static_cast<int32_t>(CX), static_cast<int32_t>(CY)));
  if ((isConst(X, CX) && (CX == 0 || CX == 1)) ||
      (isConst(Y, CY) && (CY == 0 || CY == 1)))
    return FalseId;
  if (X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::MulOvf;
  T.A = X;
  T.B = Y;
  return intern(T);
}

//===----------------------------------------------------------------------===//
// BV constructors
//===----------------------------------------------------------------------===//

TermId TermTable::rwAdd(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkConst(CX + CY);
  if (isConst(X, CX) && CX == 0)
    return Y;
  if (isConst(Y, CY) && CY == 0)
    return X;
  // Keep constants on the right and flatten (x + c1) + c2.
  if (isConst(X))
    std::swap(X, Y);
  if (isConst(Y, CY)) {
    const Term &TX = get(X);
    uint32_t C1;
    if (TX.K == TK::Add && isConst(TX.B, C1))
      return mkAdd(TX.A, mkConst(C1 + CY));
    if (TX.K == TK::Sub && isConst(TX.B, C1))
      return mkAdd(TX.A, mkConst(CY - C1));
  }
  if (!isConst(Y) && X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::Add;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwSub(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkConst(CX - CY);
  if (isConst(Y, CY) && CY == 0)
    return X;
  if (X == Y)
    return mkConst(0);
  if (isConst(Y, CY))
    return mkAdd(X, mkConst(-CY)); // normalize x - c to x + (-c)
  Term T;
  T.K = TK::Sub;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwMul(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkConst(CX * CY);
  if (isConst(X))
    std::swap(X, Y);
  if (isConst(Y, CY)) {
    if (CY == 0)
      return mkConst(0);
    if (CY == 1)
      return X;
  }
  if (!isConst(Y) && X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::Mul;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwSDiv(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY) && CY != 0 &&
      !(CX == 0x80000000u && CY == 0xffffffffu))
    return mkConstS(static_cast<int32_t>(CX) / static_cast<int32_t>(CY));
  if (isConst(Y, CY) && CY == 1)
    return X;
  Term T;
  T.K = TK::SDiv;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwSRem(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY) && CY != 0 &&
      !(CX == 0x80000000u && CY == 0xffffffffu))
    return mkConstS(static_cast<int32_t>(CX) % static_cast<int32_t>(CY));
  if (isConst(Y, CY) && CY == 1)
    return mkConst(0);
  // x % 2^k  ->  ite(x >=s 0, x & (2^k-1), -((-x) & (2^k-1))).
  // This keeps the common divisibility assumptions out of the divider
  // circuit entirely.
  if (isConst(Y, CY) && CY != 0 && (CY & (CY - 1)) == 0) {
    TermId Mask = mkConst(CY - 1);
    TermId NonNeg = mkSge(X, mkConst(0));
    TermId PosCase = mkBvAnd(X, Mask);
    TermId NegCase = mkNeg(mkBvAnd(mkNeg(X), Mask));
    return mkIte(NonNeg, PosCase, NegCase);
  }
  Term T;
  T.K = TK::SRem;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwBvAnd(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkConst(CX & CY);
  if (X == Y)
    return X;
  if (isConst(X))
    std::swap(X, Y);
  if (isConst(Y, CY)) {
    if (CY == 0)
      return mkConst(0);
    if (CY == 0xffffffffu)
      return X;
  }
  if (!isConst(Y) && X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::BvAnd;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwBvOr(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkConst(CX | CY);
  if (X == Y)
    return X;
  if (isConst(X))
    std::swap(X, Y);
  if (isConst(Y, CY)) {
    if (CY == 0)
      return X;
    if (CY == 0xffffffffu)
      return mkConst(0xffffffffu);
  }
  if (!isConst(Y) && X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::BvOr;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwBvXor(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(X, CX) && isConst(Y, CY))
    return mkConst(CX ^ CY);
  if (X == Y)
    return mkConst(0);
  if (isConst(X))
    std::swap(X, Y);
  if (isConst(Y, CY) && CY == 0)
    return X;
  if (!isConst(Y) && X > Y)
    std::swap(X, Y);
  Term T;
  T.K = TK::BvXor;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwBvNot(TermId X) {
  uint32_t CX;
  if (isConst(X, CX))
    return mkConst(~CX);
  if (get(X).K == TK::BvNot)
    return get(X).A;
  Term T;
  T.K = TK::BvNot;
  T.A = X;
  return intern(T);
}

TermId TermTable::rwShl(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(Y, CY)) {
    CY &= 31;
    if (isConst(X, CX))
      return mkConst(CX << CY);
    if (CY == 0)
      return X;
    Y = mkConst(CY);
  }
  Term T;
  T.K = TK::Shl;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwLShr(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(Y, CY)) {
    CY &= 31;
    if (isConst(X, CX))
      return mkConst(CX >> CY);
    if (CY == 0)
      return X;
    Y = mkConst(CY);
  }
  Term T;
  T.K = TK::LShr;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwAShr(TermId X, TermId Y) {
  uint32_t CX, CY;
  if (isConst(Y, CY)) {
    CY &= 31;
    if (isConst(X, CX))
      return mkConstS(static_cast<int32_t>(CX) >> CY);
    if (CY == 0)
      return X;
    Y = mkConst(CY);
  }
  Term T;
  T.K = TK::AShr;
  T.A = X;
  T.B = Y;
  return intern(T);
}

TermId TermTable::rwIte(TermId C, TermId T0, TermId E) {
  if (C == TrueId)
    return T0;
  if (C == FalseId)
    return E;
  if (T0 == E)
    return T0;
  if (get(C).K == TK::Not)
    return mkIte(get(C).A, E, T0);
  // Nested ite with the same condition.
  if (get(T0).K == TK::Ite && get(T0).A == C)
    return mkIte(C, get(T0).B, E);
  if (get(E).K == TK::Ite && get(E).A == C)
    return mkIte(C, T0, get(E).C);
  Term T;
  T.K = TK::Ite;
  T.A = C;
  T.B = T0;
  T.C = E;
  return intern(T);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

uint32_t TermTable::evalRec(
    TermId Id, const std::unordered_map<TermId, uint32_t> &Env,
    std::unordered_map<TermId, uint32_t> &Memo) const {
  auto Found = Memo.find(Id);
  if (Found != Memo.end())
    return Found->second;
  const Term &T = get(Id);
  uint32_t R = 0;
  auto B = [&](TermId K) { return evalRec(K, Env, Memo); };
  switch (T.K) {
  case TK::True: R = 1; break;
  case TK::False: R = 0; break;
  case TK::BVar:
  case TK::Var: {
    auto It = Env.find(Id);
    R = It == Env.end() ? 0u : It->second;
    break;
  }
  case TK::Not: R = B(T.A) ? 0 : 1; break;
  case TK::And: R = (B(T.A) && B(T.B)) ? 1 : 0; break;
  case TK::Or: R = (B(T.A) || B(T.B)) ? 1 : 0; break;
  case TK::BIte: R = B(T.A) ? B(T.B) : B(T.C); break;
  case TK::Eq: R = B(T.A) == B(T.B) ? 1 : 0; break;
  case TK::Ult: R = B(T.A) < B(T.B) ? 1 : 0; break;
  case TK::Slt:
    R = static_cast<int32_t>(B(T.A)) < static_cast<int32_t>(B(T.B)) ? 1 : 0;
    break;
  case TK::AddOvf:
    R = addOvf(static_cast<int32_t>(B(T.A)), static_cast<int32_t>(B(T.B)));
    break;
  case TK::SubOvf:
    R = subOvf(static_cast<int32_t>(B(T.A)), static_cast<int32_t>(B(T.B)));
    break;
  case TK::MulOvf:
    R = mulOvf(static_cast<int32_t>(B(T.A)), static_cast<int32_t>(B(T.B)));
    break;
  case TK::Const: R = T.CVal; break;
  case TK::Add: R = B(T.A) + B(T.B); break;
  case TK::Sub: R = B(T.A) - B(T.B); break;
  case TK::Mul: R = B(T.A) * B(T.B); break;
  case TK::SDiv: {
    int32_t N = static_cast<int32_t>(B(T.A));
    int32_t D = static_cast<int32_t>(B(T.B));
    R = (D == 0 || (N == INT32_MIN && D == -1))
            ? 0u
            : static_cast<uint32_t>(N / D);
    break;
  }
  case TK::SRem: {
    int32_t N = static_cast<int32_t>(B(T.A));
    int32_t D = static_cast<int32_t>(B(T.B));
    R = (D == 0 || (N == INT32_MIN && D == -1))
            ? 0u
            : static_cast<uint32_t>(N % D);
    break;
  }
  case TK::BvAnd: R = B(T.A) & B(T.B); break;
  case TK::BvOr: R = B(T.A) | B(T.B); break;
  case TK::BvXor: R = B(T.A) ^ B(T.B); break;
  case TK::BvNot: R = ~B(T.A); break;
  case TK::Shl: R = B(T.A) << (B(T.B) & 31); break;
  case TK::LShr: R = B(T.A) >> (B(T.B) & 31); break;
  case TK::AShr:
    R = static_cast<uint32_t>(static_cast<int32_t>(B(T.A)) >>
                              (B(T.B) & 31));
    break;
  case TK::Ite: R = B(T.A) ? B(T.B) : B(T.C); break;
  }
  Memo.emplace(Id, R);
  return R;
}

uint32_t
TermTable::evalBv(TermId Id,
                  const std::unordered_map<TermId, uint32_t> &Env) const {
  std::unordered_map<TermId, uint32_t> Memo;
  return evalRec(Id, Env, Memo);
}

bool TermTable::evalBool(
    TermId Id, const std::unordered_map<TermId, uint32_t> &Env) const {
  std::unordered_map<TermId, uint32_t> Memo;
  return evalRec(Id, Env, Memo) != 0;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static const char *kindName(TK K) {
  switch (K) {
  case TK::True: return "true";
  case TK::False: return "false";
  case TK::BVar: return "bvar";
  case TK::Not: return "not";
  case TK::And: return "and";
  case TK::Or: return "or";
  case TK::BIte: return "bite";
  case TK::Eq: return "=";
  case TK::Ult: return "bvult";
  case TK::Slt: return "bvslt";
  case TK::AddOvf: return "saddo";
  case TK::SubOvf: return "ssubo";
  case TK::MulOvf: return "smulo";
  case TK::Const: return "const";
  case TK::Var: return "var";
  case TK::Add: return "bvadd";
  case TK::Sub: return "bvsub";
  case TK::Mul: return "bvmul";
  case TK::SDiv: return "bvsdiv";
  case TK::SRem: return "bvsrem";
  case TK::BvAnd: return "bvand";
  case TK::BvOr: return "bvor";
  case TK::BvXor: return "bvxor";
  case TK::BvNot: return "bvnot";
  case TK::Shl: return "bvshl";
  case TK::LShr: return "bvlshr";
  case TK::AShr: return "bvashr";
  case TK::Ite: return "ite";
  }
  return "?";
}

std::string TermTable::print(TermId Id) const {
  const Term &T = get(Id);
  switch (T.K) {
  case TK::True: return "true";
  case TK::False: return "false";
  case TK::Const:
    return format("#x%08x", T.CVal);
  case TK::Var:
  case TK::BVar: {
    const std::string &N = varName(Id);
    return N.empty() ? format("v%u", T.CVal) : N;
  }
  default:
    break;
  }
  std::string S = std::string("(") + kindName(T.K);
  if (T.A != NoTerm)
    S += " " + print(T.A);
  if (T.B != NoTerm)
    S += " " + print(T.B);
  if (T.C != NoTerm)
    S += " " + print(T.C);
  return S + ")";
}
