//===- smt/Term.h - hash-consed bit-vector/bool terms ----------*- C++ -*-===//
///
/// \file
/// The SMT term layer: immutable, hash-consed DAG of boolean and 32-bit
/// bit-vector terms with aggressive construction-time rewriting. This plays
/// Z3's role for the bounded translation validator. The rewriter matters as
/// much as the SAT core: after guarded unrolling, most refinement
/// obligations between structurally similar scalar/vector programs collapse
/// to `false` (no violation) syntactically, and array indices normalize to
/// constants so the memory model can resolve read-over-write without case
/// splits.
///
//===----------------------------------------------------------------------===//

#ifndef LV_SMT_TERM_H
#define LV_SMT_TERM_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lv {
namespace smt {

/// Index of a term in its TermTable.
using TermId = int32_t;
inline constexpr TermId NoTerm = -1;

/// Term kinds. Bool-sorted and BV32-sorted kinds share one table.
enum class TK : uint8_t {
  // Bool sort.
  True, False,
  BVar,      ///< Named boolean variable.
  Not, And, Or,
  BIte,      ///< (bool, bool, bool)
  Eq,        ///< (bv, bv) -> bool
  Ult, Slt,  ///< (bv, bv) -> bool
  AddOvf, SubOvf, MulOvf, ///< signed-overflow predicates (bv, bv) -> bool
  // BV32 sort.
  Const,
  Var,       ///< Named 32-bit variable.
  Add, Sub, Mul,
  SDiv, SRem,///< truncated signed division; callers guard division by zero
  BvAnd, BvOr, BvXor, BvNot,
  Shl, LShr, AShr, ///< shift amounts masked to [0,31] by construction
  Ite,       ///< (bool, bv, bv) -> bv
};

/// One hash-consed term.
struct Term {
  TK K;
  TermId A = NoTerm, B = NoTerm, C = NoTerm;
  uint32_t CVal = 0;  ///< Const payload / variable ordinal.

  bool operator==(const Term &O) const {
    return K == O.K && A == O.A && B == O.B && C == O.C && CVal == O.CVal;
  }
};

/// Returns true for BV32-sorted kinds.
bool isBvKind(TK K);

/// The term manager: hash-consing plus construction-time simplification.
class TermTable {
public:
  TermTable();

  /// Pre-reserves the term vector and hash-cons buckets for \p Expected
  /// terms (clamped to 2^20) so symbolic execution does not pay rehash
  /// churn while growing the DAG. Call with EquivConfig::MaxTerms.
  void reserve(size_t Expected);

  //===--------------------------------------------------------------------===
  // Constructors (simplifying)
  //===--------------------------------------------------------------------===

  TermId mkTrue() const { return TrueId; }
  TermId mkFalse() const { return FalseId; }
  TermId mkBool(bool B) const { return B ? TrueId : FalseId; }
  TermId mkBVar(const std::string &Name);
  TermId mkNot(TermId X);
  TermId mkAnd(TermId X, TermId Y);
  TermId mkOr(TermId X, TermId Y);
  TermId mkImplies(TermId X, TermId Y) { return mkOr(mkNot(X), Y); }
  TermId mkBIte(TermId C, TermId T, TermId E);
  TermId mkEq(TermId X, TermId Y);
  TermId mkNe(TermId X, TermId Y) { return mkNot(mkEq(X, Y)); }
  TermId mkUlt(TermId X, TermId Y);
  TermId mkSlt(TermId X, TermId Y);
  TermId mkSle(TermId X, TermId Y) { return mkNot(mkSlt(Y, X)); }
  TermId mkSgt(TermId X, TermId Y) { return mkSlt(Y, X); }
  TermId mkSge(TermId X, TermId Y) { return mkNot(mkSlt(X, Y)); }
  TermId mkAddOvf(TermId X, TermId Y);
  TermId mkSubOvf(TermId X, TermId Y);
  TermId mkMulOvf(TermId X, TermId Y);

  TermId mkConst(uint32_t V);
  TermId mkConstS(int32_t V) { return mkConst(static_cast<uint32_t>(V)); }
  TermId mkVar(const std::string &Name);
  TermId mkAdd(TermId X, TermId Y);
  TermId mkSub(TermId X, TermId Y);
  TermId mkNeg(TermId X) { return mkSub(mkConst(0), X); }
  TermId mkMul(TermId X, TermId Y);
  TermId mkSDiv(TermId X, TermId Y);
  TermId mkSRem(TermId X, TermId Y);
  TermId mkBvAnd(TermId X, TermId Y);
  TermId mkBvOr(TermId X, TermId Y);
  TermId mkBvXor(TermId X, TermId Y);
  TermId mkBvNot(TermId X);
  TermId mkShl(TermId X, TermId Y);
  TermId mkLShr(TermId X, TermId Y);
  TermId mkAShr(TermId X, TermId Y);
  TermId mkIte(TermId C, TermId T, TermId E);

  /// Converts a bool term to a 0/1 bit-vector.
  TermId boolToBv(TermId B) { return mkIte(B, mkConst(1), mkConst(0)); }
  /// Converts a bv to bool (!= 0).
  TermId bvToBool(TermId X) { return mkNe(X, mkConst(0)); }

  //===--------------------------------------------------------------------===
  // Inspection
  //===--------------------------------------------------------------------===

  const Term &get(TermId Id) const { return Terms[static_cast<size_t>(Id)]; }
  size_t size() const { return Terms.size(); }
  bool isBv(TermId Id) const { return isBvKind(get(Id).K); }

  bool isConst(TermId Id) const { return get(Id).K == TK::Const; }
  bool isConst(TermId Id, uint32_t &V) const {
    if (!isConst(Id))
      return false;
    V = get(Id).CVal;
    return true;
  }
  bool isTrue(TermId Id) const { return Id == TrueId; }
  bool isFalse(TermId Id) const { return Id == FalseId; }

  /// Variable names for model/diagnostic printing.
  const std::string &varName(TermId Id) const;

  /// Rewrite-memo statistics (hits short-circuit the simplification chain
  /// of a constructor; misses ran it). Exposed for tests and benchmarks.
  uint64_t rewriteMemoHits() const { return MemoHits; }
  uint64_t rewriteMemoMisses() const { return MemoMisses; }

  /// Pretty-prints (s-expression style, for debugging and tests).
  std::string print(TermId Id) const;

  /// Evaluates a term under an assignment of variables (by ordinal).
  /// Missing variables default to zero. Used for model validation and
  /// property tests against the bit-blaster. Memoized per call: shared
  /// subterms evaluate once (final TV states are deep shared DAGs).
  uint32_t evalBv(TermId Id,
                  const std::unordered_map<TermId, uint32_t> &Env) const;
  bool evalBool(TermId Id,
                const std::unordered_map<TermId, uint32_t> &Env) const;

private:
  uint32_t evalRec(TermId Id,
                   const std::unordered_map<TermId, uint32_t> &Env,
                   std::unordered_map<TermId, uint32_t> &Memo) const;

public:

private:
  struct TermHash {
    size_t operator()(const Term &T) const {
      uint64_t H = static_cast<uint64_t>(T.K);
      H = H * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(T.A);
      H = H * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(T.B);
      H = H * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(T.C);
      H = H * 0x9e3779b97f4a7c15ULL + T.CVal;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

  std::vector<Term> Terms;
  std::unordered_map<Term, TermId, TermHash> Unique;
  std::vector<std::string> VarNames; ///< Sparse: indexed by term id.
  TermId TrueId = NoTerm, FalseId = NoTerm;
  uint32_t NextVarOrdinal = 0;

  TermId intern(Term T);

  // Simplifying constructor bodies; the public mk* wrappers route through
  // the rewrite memo before running these.
  TermId rwNot(TermId X);
  TermId rwAnd(TermId X, TermId Y);
  TermId rwOr(TermId X, TermId Y);
  TermId rwBIte(TermId C, TermId T, TermId E);
  TermId rwEq(TermId X, TermId Y);
  TermId rwUlt(TermId X, TermId Y);
  TermId rwSlt(TermId X, TermId Y);
  TermId rwAddOvf(TermId X, TermId Y);
  TermId rwSubOvf(TermId X, TermId Y);
  TermId rwMulOvf(TermId X, TermId Y);
  TermId rwAdd(TermId X, TermId Y);
  TermId rwSub(TermId X, TermId Y);
  TermId rwMul(TermId X, TermId Y);
  TermId rwSDiv(TermId X, TermId Y);
  TermId rwSRem(TermId X, TermId Y);
  TermId rwBvAnd(TermId X, TermId Y);
  TermId rwBvOr(TermId X, TermId Y);
  TermId rwBvXor(TermId X, TermId Y);
  TermId rwBvNot(TermId X);
  TermId rwShl(TermId X, TermId Y);
  TermId rwLShr(TermId X, TermId Y);
  TermId rwAShr(TermId X, TermId Y);
  TermId rwIte(TermId C, TermId T, TermId E);

  //===--------------------------------------------------------------------===
  // Rewrite memo
  //===--------------------------------------------------------------------===
  //
  // (kind, operands) -> constructor result. Distinct from hash-consing
  // (`Unique`), which only dedups the *post-rewrite* term: the memo
  // short-circuits the simplification chain itself when the same
  // pre-rewrite application recurs — symbolic execution rebuilds the same
  // guarded updates and index arithmetic constantly. Sound because every
  // rewrite is a pure function of operand identities, and the table only
  // grows. Open-addressing flat table so probes stay one cache line.

  struct MemoEntry {
    TK K;
    TermId A = NoTerm, B = NoTerm, C = NoTerm;
    TermId R = NoTerm; ///< NoTerm marks an empty slot.
  };
  std::vector<MemoEntry> Memo;
  size_t MemoLive = 0;
  uint64_t MemoHits = 0, MemoMisses = 0;

  static size_t memoIndex(TK K, TermId A, TermId B, TermId C, size_t Mask) {
    uint64_t H = static_cast<uint64_t>(K) * 0x9e3779b97f4a7c15ULL;
    H = (H + static_cast<uint32_t>(A)) * 0x9e3779b97f4a7c15ULL;
    H = (H + static_cast<uint32_t>(B)) * 0x9e3779b97f4a7c15ULL;
    H = (H + static_cast<uint32_t>(C)) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(H ^ (H >> 32)) & Mask;
  }

  TermId memoGet(TK K, TermId A, TermId B, TermId C) const;
  void memoPut(TK K, TermId A, TermId B, TermId C, TermId R);
  void memoGrow(size_t NewCap);

  /// Wraps one simplifying constructor body: replay a memoized result or
  /// run \p Rewrite and record it.
  template <class F>
  TermId memoized(TK K, TermId A, TermId B, TermId C, F Rewrite) {
    TermId Hit = memoGet(K, A, B, C);
    if (Hit != NoTerm) {
      ++MemoHits;
      return Hit;
    }
    ++MemoMisses;
    TermId R = Rewrite();
    memoPut(K, A, B, C, R);
    return R;
  }
};

} // namespace smt
} // namespace lv

#endif // LV_SMT_TERM_H
