//===- store/Framing.h - shared on-disk framing primitives ------*- C++ -*-===//
///
/// \file
/// The byte-level building blocks every append-only log in `src/store/`
/// shares: a little-endian writer/reader pair and the CRC32 used to frame
/// records. Extracted from Store.cpp so the batch journal (Journal.h) and
/// the service's Outcome wire format reuse one implementation of the
/// record contract instead of three diverging copies.
///
/// The framing contract (identical for ResultStore and BatchJournal):
///
///   file   := header record*
///   record := RecordMagic(u32) payloadLen(u32) crc32(payload)(u32) payload
///
/// A reader walks records until magic/CRC/decoding fails, treats
/// everything after the last good record as a torn tail, and truncates it
/// away. Writers flush after every record so a kill leaves at most one
/// torn record. Each log type has its own *file* magic and header layout;
/// the *record* frame is shared.
///
//===----------------------------------------------------------------------===//

#ifndef LV_STORE_FRAMING_H
#define LV_STORE_FRAMING_H

#include "support/Rng.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace lv {
namespace store {
namespace framing {

/// Frame constants shared by every record log.
constexpr uint32_t RecordMagic = 0x4C565243; // "LVRC"
constexpr size_t FrameBytes = 4 + 4 + 4;     // magic + payload len + CRC.

/// Table-driven CRC32 (reflected, poly 0xEDB88320) over the payload; the
/// standard zlib polynomial, implemented locally to keep the store
/// dependency-free.
inline uint32_t crc32(const uint8_t *P, size_t N) {
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < N; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

inline uint32_t crc32(const std::string &S) {
  return crc32(reinterpret_cast<const uint8_t *>(S.data()), S.size());
}

/// Little-endian append-only writer over a std::string (explicit shifts,
/// so the on-disk layout is host-endianness-independent).
struct Wr {
  std::string &Out;
  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void d(double V) { u64(bitsOfDouble(V)); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }
};

/// Bounds-checked reader; any short read or range violation latches Fail
/// (the caller treats a failed parse as corruption, never as data).
struct Rd {
  const uint8_t *P;
  const uint8_t *End;
  bool Fail = false;

  explicit Rd(const std::string &S)
      : P(reinterpret_cast<const uint8_t *>(S.data())), End(P + S.size()) {}
  Rd(const uint8_t *Begin, size_t N) : P(Begin), End(Begin + N) {}

  bool need(size_t N) {
    if (Fail || static_cast<size_t>(End - P) < N) {
      Fail = true;
      return false;
    }
    return true;
  }
  bool done() const { return !Fail && P == End; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return *P++;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(P[I]) << (8 * I);
    P += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(P[I]) << (8 * I);
    P += 8;
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double d() {
    uint64_t U = u64();
    double V;
    std::memcpy(&V, &U, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return std::string();
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }
};

} // namespace framing
} // namespace store
} // namespace lv

#endif // LV_STORE_FRAMING_H
