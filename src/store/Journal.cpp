//===- store/Journal.cpp - crash-recovery batch journal ----------------------===//

#include "store/Journal.h"

#include "agents/Fsm.h"
#include "core/Equivalence.h"
#include "interp/Checksum.h"
#include "obs/Metrics.h"
#include "store/Framing.h"

#include <filesystem>
#include <system_error>

using namespace lv;
using namespace lv::store;

namespace fs = std::filesystem;

namespace {

using framing::crc32;
using framing::FrameBytes;
using framing::Rd;
using framing::RecordMagic;
using framing::Wr;

constexpr uint32_t FileMagic = 0x4C564A4E; // "LVJN"
constexpr size_t HeaderBytes = 4 + 4 + 3 * 8;

enum RecordKind : uint8_t {
  KindBatchBegin = 1,
  KindTaskDone = 2,
};

/// Header = magic + schema version + the three default configHash goldens
/// — the same version pin as ResultStore, because journaled payloads are
/// serialized Outcomes whose meaning depends on the same config layouts.
std::string currentHeader() {
  std::string Out;
  Wr W{Out};
  W.u32(FileMagic);
  W.u32(BatchJournal::SchemaVersion);
  W.u64(interp::ChecksumConfig().configHash());
  W.u64(core::EquivConfig().configHash());
  W.u64(agents::FsmConfig().configHash());
  return Out;
}

bool parseHeader(const std::string &Bytes) {
  if (Bytes.size() < HeaderBytes)
    return false;
  Rd R(reinterpret_cast<const uint8_t *>(Bytes.data()), HeaderBytes);
  if (R.u32() != FileMagic || R.u32() != BatchJournal::SchemaVersion)
    return false;
  return R.u64() == interp::ChecksumConfig().configHash() &&
         R.u64() == core::EquivConfig().configHash() &&
         R.u64() == agents::FsmConfig().configHash();
}

} // namespace

BatchJournal::BatchJournal(const std::string &D) : Dir(D) {
  LogPath = Dir + "/journal.log";
  std::error_code EC;
  fs::create_directories(Dir, EC);
  load();
}

BatchJournal::~BatchJournal() {
  std::lock_guard<std::mutex> L(M);
  if (Log)
    std::fclose(Log);
  Log = nullptr;
}

void BatchJournal::setAside() {
  std::error_code EC;
  fs::rename(LogPath, LogPath + ".skipped", EC);
  if (EC)
    fs::remove(LogPath, EC);
  Stats.VersionSkipped++;
  obs::counter("journal.version_skipped").inc();
}

void BatchJournal::openFresh() {
  std::string Tmp = LogPath + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return;
  std::string H = currentHeader();
  size_t Written = std::fwrite(H.data(), 1, H.size(), F);
  std::fclose(F);
  if (Written != H.size())
    return;
  std::error_code EC;
  fs::rename(Tmp, LogPath, EC);
  if (EC)
    return;
  Log = std::fopen(LogPath.c_str(), "ab");
}

void BatchJournal::load() {
  std::string Bytes;
  {
    std::FILE *F = std::fopen(LogPath.c_str(), "rb");
    if (F) {
      std::fseek(F, 0, SEEK_END);
      long Size = std::ftell(F);
      std::fseek(F, 0, SEEK_SET);
      if (Size > 0) {
        Bytes.resize(static_cast<size_t>(Size));
        if (std::fread(&Bytes[0], 1, Bytes.size(), F) != Bytes.size())
          Bytes.clear();
      }
      std::fclose(F);
    }
  }

  if (Bytes.empty()) {
    openFresh();
    return;
  }
  if (!parseHeader(Bytes)) {
    setAside();
    openFresh();
    return;
  }

  size_t Off = HeaderBytes;
  size_t LastGood = Off;
  while (Off < Bytes.size()) {
    Rd Frame(reinterpret_cast<const uint8_t *>(Bytes.data()) + Off,
             Bytes.size() - Off);
    if (Frame.u32() != RecordMagic)
      break;
    uint32_t Len = Frame.u32();
    uint32_t Crc = Frame.u32();
    if (Frame.Fail || !Frame.need(Len))
      break;
    const uint8_t *Payload = Frame.P;
    if (crc32(Payload, Len) != Crc)
      break;
    Rd R(Payload, Len);
    bool Ok = false;
    switch (R.u8()) {
    case KindBatchBegin: {
      uint32_t N = R.u32();
      if (N > 1u << 24)
        R.Fail = true;
      for (uint32_t I = 0; I < N && !R.Fail; ++I)
        (void)R.u64();
      if (!R.Fail && R.done()) {
        Stats.LoadedBatches++;
        Ok = true;
      }
      break;
    }
    case KindTaskDone: {
      uint64_t Key = R.u64();
      DoneEntry E;
      E.Verify = R.str();
      E.Payload = R.str();
      if (!R.Fail && R.done()) {
        Done.emplace(Key, std::move(E));
        Stats.LoadedDone++;
        Ok = true;
      }
      break;
    }
    default:
      break;
    }
    if (!Ok)
      break; // decodes-short after a good CRC: treat as corruption, drop
             // the suffix (append-only — everything after is suspect).
    Off += FrameBytes + Len;
    LastGood = Off;
  }
  if (LastGood < Bytes.size()) {
    Stats.CorruptSkipped++;
    obs::counter("journal.corrupt_skipped").inc();
    std::error_code EC;
    fs::resize_file(LogPath, LastGood, EC);
  }
  Log = std::fopen(LogPath.c_str(), "ab");
}

void BatchJournal::appendRecord(const std::string &Payload) {
  if (!Log)
    return;
  std::string Frame;
  Wr W{Frame};
  W.u32(RecordMagic);
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u32(crc32(Payload));
  Frame += Payload;
  if (std::fwrite(Frame.data(), 1, Frame.size(), Log) != Frame.size()) {
    // Disk full / I/O error: stop journaling, keep running (losing the
    // journal costs re-execution after a crash, never correctness).
    std::fclose(Log);
    Log = nullptr;
    Stats.AppendFailed++;
    obs::counter("journal.append_failed").inc();
    return;
  }
  // Flush per record: a kill leaves at most the final record torn, which
  // the next load's CRC framing drops.
  std::fflush(Log);
  Stats.Writes++;
  obs::counter("journal.writes").inc();
}

size_t BatchJournal::beginBatch(const std::vector<uint64_t> &Keys) {
  std::lock_guard<std::mutex> L(M);
  size_t AlreadyDone = 0;
  for (uint64_t K : Keys)
    if (Done.count(K))
      ++AlreadyDone;
  std::string Payload;
  Wr W{Payload};
  W.u8(KindBatchBegin);
  W.u32(static_cast<uint32_t>(Keys.size()));
  for (uint64_t K : Keys)
    W.u64(K);
  appendRecord(Payload);
  return AlreadyDone;
}

bool BatchJournal::lookupDone(uint64_t Key, const std::string &Verify,
                              std::string &Payload) {
  std::lock_guard<std::mutex> L(M);
  auto It = Done.find(Key);
  if (It == Done.end() || It->second.Verify != Verify)
    return false;
  Payload = It->second.Payload;
  Stats.ReplayHits++;
  obs::counter("journal.replay_hits").inc();
  return true;
}

void BatchJournal::recordDone(uint64_t Key, const std::string &Verify,
                              const std::string &Payload) {
  std::lock_guard<std::mutex> L(M);
  auto Ins = Done.emplace(Key, DoneEntry{Verify, Payload});
  if (!Ins.second)
    return; // already journaled (replayed task or duplicate key)
  std::string Rec;
  Wr W{Rec};
  W.u8(KindTaskDone);
  W.u64(Key);
  W.str(Verify);
  W.str(Payload);
  appendRecord(Rec);
}

void BatchJournal::flush() {
  std::lock_guard<std::mutex> L(M);
  if (Log)
    std::fflush(Log);
}

JournalStats BatchJournal::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}
