//===- store/Journal.h - crash-recovery batch journal -----------*- C++ -*-===//
///
/// \file
/// A write-ahead journal that makes a batch survive process death. The
/// service appends one `BatchBegin` record when a batch is admitted
/// (membership = the content-addressed task keys) and one `TaskDone`
/// record per completed task (the task's fully serialized Outcome). A
/// process killed mid-batch reopens the journal, finds the completed
/// subset, and re-runs only the remainder — because every task is a pure
/// function of its Request, replayed outcomes are byte-identical to what
/// the re-run would have produced, so an interrupted batch converges on
/// exactly the uninterrupted result.
///
/// The on-disk contract is the `ResultStore` contract (see Framing.h and
/// store/README.md): a versioned header ('LVJN' magic + schema version +
/// the three default configHash goldens), CRC-framed records flushed one
/// by one, a torn or flipped tail truncated back to the last good record
/// on load, and an incompatible header set aside (`journal.log.skipped`)
/// rather than trusted or destroyed. Only *completed* outcomes are
/// journaled and lookups re-check the request identity string, so a
/// replay can skip work but never change a result.
///
/// Threading: one mutex, same as ResultStore. The journal is an append
/// log plus an in-memory index; it is shared by all workers of a service.
///
//===----------------------------------------------------------------------===//

#ifndef LV_STORE_JOURNAL_H
#define LV_STORE_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lv {
namespace store {

/// Journal counters, mirroring StoreStats' salvage taxonomy.
struct JournalStats {
  uint64_t LoadedDone = 0;     ///< TaskDone records replayed on open.
  uint64_t LoadedBatches = 0;  ///< BatchBegin records replayed on open.
  uint64_t ReplayHits = 0;     ///< Lookups served from a prior process.
  uint64_t Writes = 0;         ///< Records appended this session.
  uint64_t CorruptSkipped = 0; ///< Damaged tails dropped on load.
  uint64_t VersionSkipped = 0; ///< Incompatible journals set aside.
  uint64_t AppendFailed = 0;   ///< Appends lost to I/O failure.

  void add(const JournalStats &O) {
    LoadedDone += O.LoadedDone;
    LoadedBatches += O.LoadedBatches;
    ReplayHits += O.ReplayHits;
    Writes += O.Writes;
    CorruptSkipped += O.CorruptSkipped;
    VersionSkipped += O.VersionSkipped;
    AppendFailed += O.AppendFailed;
  }
};

class BatchJournal {
public:
  /// On-disk schema version; bump when the record layout or the service's
  /// Outcome wire format (svc::serializeOutcome) changes.
  static constexpr uint32_t SchemaVersion = 1;

  /// Opens (or creates) `<Dir>/journal.log`, replaying completed-task
  /// records into the in-memory index. Same degradation ladder as
  /// ResultStore: unreadable/incompatible logs become an empty journal,
  /// never an error.
  explicit BatchJournal(const std::string &Dir);
  ~BatchJournal();

  BatchJournal(const BatchJournal &) = delete;
  BatchJournal &operator=(const BatchJournal &) = delete;

  const std::string &dir() const { return Dir; }

  /// True when the log is open for appending (replay works either way).
  bool ok() const { return Log != nullptr; }

  /// Records a batch's membership and returns how many of its tasks are
  /// already completed in the journal (i.e. will replay instead of run).
  size_t beginBatch(const std::vector<uint64_t> &Keys);

  /// Fetches the serialized Outcome of a completed task. \p Verify is the
  /// request identity string (svc builds it from the request's name and
  /// sources); a key hit with a different identity degrades to a miss —
  /// the same collision discipline as the result store.
  bool lookupDone(uint64_t Key, const std::string &Verify,
                  std::string &Payload);

  /// Appends a completed task's serialized Outcome. Idempotent per key:
  /// the first record wins (re-recording a replayed task is a no-op).
  void recordDone(uint64_t Key, const std::string &Verify,
                  const std::string &Payload);

  /// Forces buffered bytes to the OS (appends already flush per record).
  void flush();

  JournalStats stats() const;

private:
  struct DoneEntry {
    std::string Verify;
    std::string Payload;
  };

  void load();
  void openFresh();
  void setAside();
  void appendRecord(const std::string &Payload);

  std::string Dir;
  std::string LogPath;
  mutable std::mutex M;
  std::FILE *Log = nullptr;
  std::unordered_map<uint64_t, DoneEntry> Done;
  JournalStats Stats;
};

} // namespace store
} // namespace lv

#endif // LV_STORE_JOURNAL_H
