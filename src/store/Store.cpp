//===- store/Store.cpp - persistent content-addressed result store -----------===//

#include "store/Store.h"

#include "agents/Fsm.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "store/Framing.h"
#include "support/Rng.h"

#include <cstring>
#include <filesystem>
#include <system_error>

using namespace lv;
using namespace lv::store;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Framing primitives (shared with Journal.cpp — see store/Framing.h)
//===----------------------------------------------------------------------===//

namespace {

using framing::crc32;
using framing::FrameBytes;
using framing::Rd;
using framing::RecordMagic;
using framing::Wr;

constexpr uint32_t FileMagic = 0x4C565354; // "LVST"
constexpr size_t HeaderBytes = 4 + 4 + 3 * 8;

enum RecordKind : uint8_t {
  KindEquiv = 1,
  KindChecksum = 2,
  KindProgram = 3,
};

//===----------------------------------------------------------------------===//
// Value serialization
//===----------------------------------------------------------------------===//

void putInterpWork(Wr &W, const interp::InterpWork &V) {
  W.u64(V.Instrs);
  W.u32(static_cast<uint32_t>(interp::kNumOpClasses));
  for (size_t I = 0; I < interp::kNumOpClasses; ++I)
    W.u64(V.Hist[I]);
}

bool getInterpWork(Rd &R, interp::InterpWork &V) {
  V.Instrs = R.u64();
  if (R.u32() != interp::kNumOpClasses)
    R.Fail = true;
  for (size_t I = 0; I < interp::kNumOpClasses && !R.Fail; ++I)
    V.Hist[I] = R.u64();
  return !R.Fail;
}

void putChecksum(Wr &W, const interp::ChecksumOutcome &O) {
  W.u8(static_cast<uint8_t>(O.Verdict));
  W.str(O.FirstMismatch.Where);
  W.i32(O.FirstMismatch.N);
  W.i32(O.FirstMismatch.Expected);
  W.i32(O.FirstMismatch.Actual);
  W.str(O.FirstMismatch.TrapMsg);
  W.str(O.Detail);
  W.u64(O.Work.InputSets);
  W.u64(O.Work.CandRuns);
  W.u64(O.Work.ScalarRuns);
  W.u64(O.Work.ScalarRunsSaved);
  putInterpWork(W, O.Work.Cand);
  putInterpWork(W, O.Work.Scalar);
  W.u8(static_cast<uint8_t>(O.Work.CandTrap));
  W.u8(O.Work.CandHang ? 1 : 0);
}

bool getChecksum(Rd &R, interp::ChecksumOutcome &O) {
  uint8_t Verdict = R.u8();
  if (Verdict > static_cast<uint8_t>(interp::TestVerdict::Error))
    R.Fail = true;
  O.Verdict = static_cast<interp::TestVerdict>(Verdict);
  O.FirstMismatch.Where = R.str();
  O.FirstMismatch.N = R.i32();
  O.FirstMismatch.Expected = R.i32();
  O.FirstMismatch.Actual = R.i32();
  O.FirstMismatch.TrapMsg = R.str();
  O.Detail = R.str();
  O.Work.InputSets = R.u64();
  O.Work.CandRuns = R.u64();
  O.Work.ScalarRuns = R.u64();
  O.Work.ScalarRunsSaved = R.u64();
  getInterpWork(R, O.Work.Cand);
  getInterpWork(R, O.Work.Scalar);
  uint8_t Trap = R.u8();
  if (Trap > static_cast<uint8_t>(interp::TrapKind::Unknown))
    R.Fail = true;
  O.Work.CandTrap = static_cast<interp::TrapKind>(Trap);
  O.Work.CandHang = R.u8() != 0;
  return !R.Fail;
}

void putTV(Wr &W, const tv::TVResult &V) {
  W.u8(static_cast<uint8_t>(V.V));
  W.str(V.Counterexample);
  W.str(V.Detail);
  W.u64(V.Conflicts);
  W.u64(V.Propagations);
  W.u64(V.Restarts);
  W.u64(V.TrailReused);
  W.u64(V.ConeVars);
  W.u64(V.ConeClauses);
  W.u64(V.Clauses);
  W.u64(V.SatVars);
  W.u64(V.LearntLive);
  W.d(V.AvgLBD);
  W.u64(V.SolveNanos);
  W.u64(static_cast<uint64_t>(V.TermCount));
  W.u8(V.PortfolioArm);
  W.u64(V.FastConflicts);
  W.u64(V.FastPropagations);
  W.u64(V.FastRestarts);
  W.u64(V.FastTrailReused);
  W.u64(V.FastConeVars);
  W.u64(V.FastConeClauses);
}

bool getTV(Rd &R, tv::TVResult &V) {
  uint8_t Verdict = R.u8();
  if (Verdict > static_cast<uint8_t>(tv::TVVerdict::Unsupported))
    R.Fail = true;
  V.V = static_cast<tv::TVVerdict>(Verdict);
  V.Counterexample = R.str();
  V.Detail = R.str();
  V.Conflicts = R.u64();
  V.Propagations = R.u64();
  V.Restarts = R.u64();
  V.TrailReused = R.u64();
  V.ConeVars = R.u64();
  V.ConeClauses = R.u64();
  V.Clauses = R.u64();
  V.SatVars = R.u64();
  V.LearntLive = R.u64();
  V.AvgLBD = R.d();
  V.SolveNanos = R.u64();
  V.TermCount = static_cast<size_t>(R.u64());
  uint8_t Arm = R.u8();
  if (Arm > 2)
    R.Fail = true;
  V.PortfolioArm = Arm;
  V.FastConflicts = R.u64();
  V.FastPropagations = R.u64();
  V.FastRestarts = R.u64();
  V.FastTrailReused = R.u64();
  V.FastConeVars = R.u64();
  V.FastConeClauses = R.u64();
  return !R.Fail;
}

void putEquiv(Wr &W, const core::EquivResult &E) {
  W.u8(static_cast<uint8_t>(E.Final));
  W.u8(static_cast<uint8_t>(E.DecidedBy));
  W.str(E.Detail);
  W.str(E.Counterexample);
  putChecksum(W, E.ChecksumRes);
  putTV(W, E.Alive2Res);
  putTV(W, E.CUnrollRes);
  W.u32(static_cast<uint32_t>(E.SplitRes.size()));
  for (const tv::TVResult &S : E.SplitRes)
    putTV(W, S);
  W.u8(E.SplittingEligible ? 1 : 0);
  W.u64(E.ChecksumNanos);
  W.u64(E.Alive2Nanos);
  W.u64(E.CUnrollNanos);
  W.u64(E.SplitNanos);
}

bool getEquiv(Rd &R, core::EquivResult &E) {
  uint8_t Final = R.u8();
  if (Final > static_cast<uint8_t>(core::EquivResult::Inconclusive))
    R.Fail = true;
  E.Final = static_cast<core::EquivResult::Outcome>(Final);
  uint8_t Stage = R.u8();
  if (Stage > static_cast<uint8_t>(core::Stage::Splitting))
    R.Fail = true;
  E.DecidedBy = static_cast<core::Stage>(Stage);
  E.Detail = R.str();
  E.Counterexample = R.str();
  getChecksum(R, E.ChecksumRes);
  getTV(R, E.Alive2Res);
  getTV(R, E.CUnrollRes);
  uint32_t NSplit = R.u32();
  // A corrupt length must not allocate unbounded memory before the CRC
  // framing already vetted the payload; still, cap defensively.
  if (NSplit > 1u << 20)
    R.Fail = true;
  E.SplitRes.clear();
  for (uint32_t I = 0; I < NSplit && !R.Fail; ++I) {
    tv::TVResult S;
    getTV(R, S);
    E.SplitRes.push_back(std::move(S));
  }
  E.SplittingEligible = R.u8() != 0;
  E.ChecksumNanos = R.u64();
  E.Alive2Nanos = R.u64();
  E.CUnrollNanos = R.u64();
  E.SplitNanos = R.u64();
  return !R.Fail;
}

void putProgram(Wr &W, const interp::BytecodeProgram &P) {
  W.str(P.Key);
  W.u32(static_cast<uint32_t>(P.Code.size()));
  for (const interp::BInst &I : P.Code) {
    W.u8(static_cast<uint8_t>(I.Op));
    W.u8(I.Cls);
    W.i32(I.Rd);
    W.i32(I.A);
    W.i32(I.B);
    W.i32(I.C);
    W.i64(I.Imm);
  }
  W.u32(static_cast<uint32_t>(P.Extra.size()));
  for (int32_t V : P.Extra)
    W.i32(V);
  W.i32(P.NumRegs);
  W.u8(P.ReturnsValue ? 1 : 0);
  W.u32(static_cast<uint32_t>(P.Params.size()));
  for (const interp::BytecodeProgram::ParamBind &B : P.Params) {
    W.u8(B.IsPointer ? 1 : 0);
    W.i32(B.Reg);
  }
  W.u32(static_cast<uint32_t>(P.Mems.size()));
  for (const interp::BytecodeProgram::MemBind &B : P.Mems) {
    W.str(B.Name);
    W.u8(B.IsParam ? 1 : 0);
    W.i64(B.LocalSize);
  }
}

bool getProgram(Rd &R, interp::BytecodeProgram &P) {
  P.Key = R.str();
  uint32_t NCode = R.u32();
  if (NCode > 1u << 24)
    R.Fail = true;
  P.Code.clear();
  for (uint32_t I = 0; I < NCode && !R.Fail; ++I) {
    interp::BInst Inst;
    uint8_t Op = R.u8();
    if (Op >= interp::kNumBC)
      R.Fail = true;
    Inst.Op = static_cast<interp::BC>(Op);
    Inst.Cls = R.u8();
    if (Inst.Cls >= interp::kNumOpClasses)
      R.Fail = true;
    Inst.Rd = R.i32();
    Inst.A = R.i32();
    Inst.B = R.i32();
    Inst.C = R.i32();
    Inst.Imm = R.i64();
    P.Code.push_back(Inst);
  }
  uint32_t NExtra = R.u32();
  if (NExtra > 1u << 24)
    R.Fail = true;
  P.Extra.clear();
  for (uint32_t I = 0; I < NExtra && !R.Fail; ++I)
    P.Extra.push_back(R.i32());
  P.NumRegs = R.i32();
  P.ReturnsValue = R.u8() != 0;
  uint32_t NParams = R.u32();
  if (NParams > 1u << 16)
    R.Fail = true;
  P.Params.clear();
  for (uint32_t I = 0; I < NParams && !R.Fail; ++I) {
    interp::BytecodeProgram::ParamBind B;
    B.IsPointer = R.u8() != 0;
    B.Reg = R.i32();
    P.Params.push_back(B);
  }
  uint32_t NMems = R.u32();
  if (NMems > 1u << 16)
    R.Fail = true;
  P.Mems.clear();
  for (uint32_t I = 0; I < NMems && !R.Fail; ++I) {
    interp::BytecodeProgram::MemBind B;
    B.Name = R.str();
    B.IsParam = R.u8() != 0;
    B.LocalSize = R.i64();
    P.Mems.push_back(std::move(B));
  }
  return !R.Fail && !P.Key.empty();
}

//===----------------------------------------------------------------------===//
// Bytecode persistence hook (process-global, one owner)
//===----------------------------------------------------------------------===//

std::mutex HookM;
ResultStore *HookOwner = nullptr;

// Chaos file-fault hooks (see ChaosFileHooks in Store.h).
std::mutex ChaosM;
lv::store::ChaosFileHooks ChaosHooks;

bool chaosFailAppend() {
  std::function<bool()> F;
  {
    std::lock_guard<std::mutex> L(ChaosM);
    F = ChaosHooks.FailAppend;
  }
  return F && F();
}

bool chaosFailLoad() {
  std::function<bool()> F;
  {
    std::lock_guard<std::mutex> L(ChaosM);
    F = ChaosHooks.FailLoad;
  }
  return F && F();
}

} // namespace

void lv::store::setChaosFileHooks(ChaosFileHooks H) {
  std::lock_guard<std::mutex> L(ChaosM);
  ChaosHooks = std::move(H);
}

std::string lv::store::serializeEquivResult(const core::EquivResult &R) {
  std::string Out;
  Wr W{Out};
  putEquiv(W, R);
  return Out;
}

bool lv::store::deserializeEquivResult(const std::string &Bytes,
                                       core::EquivResult &Out) {
  Rd R(Bytes);
  return getEquiv(R, Out) && R.done();
}

std::string
lv::store::serializeChecksumOutcome(const interp::ChecksumOutcome &O) {
  std::string Out;
  Wr W{Out};
  putChecksum(W, O);
  return Out;
}

bool lv::store::deserializeChecksumOutcome(const std::string &Bytes,
                                           interp::ChecksumOutcome &Out) {
  Rd R(Bytes);
  return getChecksum(R, Out) && R.done();
}

std::string lv::store::serializeProgram(const interp::BytecodeProgram &P) {
  std::string Out;
  Wr W{Out};
  putProgram(W, P);
  return Out;
}

bool lv::store::deserializeProgram(const std::string &Bytes,
                                   interp::BytecodeProgram &Out) {
  Rd R(Bytes);
  return getProgram(R, Out) && R.done();
}

//===----------------------------------------------------------------------===//
// ResultStore
//===----------------------------------------------------------------------===//

size_t ResultStore::Key3Hash::operator()(const Key3 &K) const {
  return static_cast<size_t>(
      hashCombine(hashCombine(K.Scalar, K.Candidate), K.Config));
}

ResultStore::ResultStore(const std::string &D) : Dir(D) {
  LogPath = Dir + "/records.log";
  std::error_code EC;
  fs::create_directories(Dir, EC);
  load();
}

ResultStore::~ResultStore() {
  disableBytecodePersistence();
  std::lock_guard<std::mutex> L(M);
  if (Log)
    std::fclose(Log);
  Log = nullptr;
}

/// Builds the header bytes for the current build: schema version plus the
/// three default configHash() golden values (pinned in test_svc.cpp). Any
/// change to a config layout or hash scheme changes these, so incompatible
/// stores are detected without reading a single record.
static std::string currentHeader() {
  std::string Out;
  Wr W{Out};
  W.u32(FileMagic);
  W.u32(ResultStore::SchemaVersion);
  W.u64(interp::ChecksumConfig().configHash());
  W.u64(core::EquivConfig().configHash());
  W.u64(agents::FsmConfig().configHash());
  return Out;
}

bool ResultStore::parseHeader(const std::string &Bytes, size_t &Off) {
  if (Bytes.size() < HeaderBytes)
    return false;
  Rd R(reinterpret_cast<const uint8_t *>(Bytes.data()), HeaderBytes);
  if (R.u32() != FileMagic || R.u32() != SchemaVersion)
    return false;
  if (R.u64() != interp::ChecksumConfig().configHash() ||
      R.u64() != core::EquivConfig().configHash() ||
      R.u64() != agents::FsmConfig().configHash())
    return false;
  Off = HeaderBytes;
  return true;
}

/// Renames the incompatible/undecodable log aside (never deletes data a
/// different build may still want) and starts fresh.
void ResultStore::setAside(const char *Why) {
  std::error_code EC;
  fs::rename(LogPath, LogPath + ".skipped", EC);
  if (EC)
    fs::remove(LogPath, EC); // rename failed (e.g. target busy): drop it
  Stats.VersionSkipped++;
  obs::counter("store.version_skipped").inc();
  (void)Why;
}

/// Creates a fresh log via temp file + atomic rename: a crash between the
/// two steps leaves either no log (next open recreates) or a complete
/// header, never a torn one.
void ResultStore::openFresh() {
  std::string Tmp = LogPath + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return;
  std::string H = currentHeader();
  size_t Written = std::fwrite(H.data(), 1, H.size(), F);
  std::fclose(F);
  if (Written != H.size())
    return;
  std::error_code EC;
  fs::rename(Tmp, LogPath, EC);
  if (EC)
    return;
  Log = std::fopen(LogPath.c_str(), "ab");
}

void ResultStore::load() {
  obs::Span LoadSpan("store", "store.load");
  LoadSpan.argStr("dir", Dir);

  if (chaosFailLoad()) {
    // Injected unreadable log. Degrade to a memory-only empty store and
    // leave the file alone: openFresh() would rename a new header over a
    // log that is merely unreadable right now, destroying good records a
    // later open could still replay.
    Stats.ReadFailed++;
    obs::counter("store.read_failed").inc();
    return;
  }

  std::string Bytes;
  {
    std::FILE *F = std::fopen(LogPath.c_str(), "rb");
    if (F) {
      std::fseek(F, 0, SEEK_END);
      long Size = std::ftell(F);
      std::fseek(F, 0, SEEK_SET);
      if (Size > 0) {
        Bytes.resize(static_cast<size_t>(Size));
        if (std::fread(&Bytes[0], 1, Bytes.size(), F) != Bytes.size())
          Bytes.clear();
      }
      std::fclose(F);
    }
  }

  if (Bytes.empty()) {
    // No store yet (or unreadable): start fresh.
    openFresh();
  } else {
    size_t Off = 0;
    if (!parseHeader(Bytes, Off)) {
      // Written by an incompatible build (or not a store at all): set the
      // file aside and start fresh — never an error, never stale replays.
      setAside("header mismatch");
      openFresh();
    } else {
      size_t LastGood = Off;
      while (Off < Bytes.size()) {
        Rd Frame(reinterpret_cast<const uint8_t *>(Bytes.data()) + Off,
                 Bytes.size() - Off);
        if (Frame.u32() != RecordMagic)
          break;
        uint32_t Len = Frame.u32();
        uint32_t Crc = Frame.u32();
        if (Frame.Fail || !Frame.need(Len))
          break;
        const uint8_t *Payload = Frame.P;
        if (crc32(Payload, Len) != Crc)
          break;
        Rd R(Payload, Len);
        uint8_t Kind = R.u8();
        bool Ok = false;
        switch (Kind) {
        case KindEquiv: {
          Key3 K{R.u64(), R.u64(), R.u64()};
          Entry<core::EquivResult> E;
          E.ScalarSrc = R.str();
          E.CandSrc = R.str();
          if (getEquiv(R, E.Value) && R.done()) {
            Equiv.emplace(K, std::move(E));
            Stats.LoadedEquiv++;
            Ok = true;
          }
          break;
        }
        case KindChecksum: {
          Key3 K{R.u64(), R.u64(), R.u64()};
          Entry<interp::ChecksumOutcome> E;
          E.ScalarSrc = R.str();
          E.CandSrc = R.str();
          if (getChecksum(R, E.Value) && R.done()) {
            Checksum.emplace(K, std::move(E));
            Stats.LoadedChecksum++;
            Ok = true;
          }
          break;
        }
        case KindProgram: {
          auto P = std::make_shared<interp::BytecodeProgram>();
          if (getProgram(R, *P) && R.done()) {
            std::string Key = P->Key;
            Programs.emplace(std::move(Key), std::move(P));
            Stats.LoadedPrograms++;
            Ok = true;
          }
          break;
        }
        default:
          break;
        }
        if (!Ok)
          break; // CRC passed but the payload didn't decode: treat as
                 // corruption and drop the suffix (append-only: anything
                 // after a bad record is suspect).
        Off += FrameBytes + Len;
        LastGood = Off;
      }
      if (LastGood < Bytes.size()) {
        // Damaged suffix: everything up to LastGood replayed cleanly;
        // truncate the file back so the next append lands on a clean tail.
        Stats.CorruptSkipped++;
        obs::counter("store.corrupt_skipped").inc();
        std::error_code EC;
        fs::resize_file(LogPath, LastGood, EC);
      }
      Log = std::fopen(LogPath.c_str(), "ab");
    }
  }

  LoadSpan.arg("equiv", Stats.LoadedEquiv);
  LoadSpan.arg("checksum", Stats.LoadedChecksum);
  LoadSpan.arg("programs", Stats.LoadedPrograms);
  LoadSpan.arg("corrupt_skipped", Stats.CorruptSkipped);
  LoadSpan.arg("version_skipped", Stats.VersionSkipped);
}

void ResultStore::appendRecord(uint8_t Kind, const std::string &Payload) {
  (void)Kind; // already the payload's first byte; kept for call-site clarity
  if (!Log)
    return;
  std::string Frame;
  Wr W{Frame};
  W.u32(RecordMagic);
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u32(crc32(reinterpret_cast<const uint8_t *>(Payload.data()),
              Payload.size()));
  Frame += Payload;
  // An injected failure short-circuits before fwrite, so nothing lands in
  // the log (a simulated EIO must not leave real bytes behind).
  if (chaosFailAppend() ||
      std::fwrite(Frame.data(), 1, Frame.size(), Log) != Frame.size()) {
    // Disk full / I/O error: stop persisting, keep serving from memory.
    std::fclose(Log);
    Log = nullptr;
    Stats.AppendFailed++;
    obs::counter("store.append_failed").inc();
    return;
  }
  // Flush per record: a kill leaves at most the final record torn, which
  // the next load's CRC framing drops.
  std::fflush(Log);
  Stats.Writes++;
  obs::counter("store.writes").inc();
}

bool ResultStore::lookupEquiv(uint64_t ScalarH, uint64_t CandH, uint64_t CfgH,
                              const std::string &ScalarSrc,
                              const std::string &CandSrc,
                              core::EquivResult &Out) {
  std::lock_guard<std::mutex> L(M);
  auto It = Equiv.find(Key3{ScalarH, CandH, CfgH});
  if (It == Equiv.end() || It->second.ScalarSrc != ScalarSrc ||
      It->second.CandSrc != CandSrc) {
    Stats.Misses++;
    obs::counter("store.misses").inc();
    return false;
  }
  Stats.Hits++;
  obs::counter("store.hits").inc();
  Out = It->second.Value;
  return true;
}

void ResultStore::storeEquiv(uint64_t ScalarH, uint64_t CandH, uint64_t CfgH,
                             const std::string &ScalarSrc,
                             const std::string &CandSrc,
                             const core::EquivResult &R) {
  std::lock_guard<std::mutex> L(M);
  auto Ins = Equiv.emplace(Key3{ScalarH, CandH, CfgH},
                           Entry<core::EquivResult>{ScalarSrc, CandSrc, R});
  if (!Ins.second)
    return; // already persisted (or a colliding key owns the slot)
  std::string Payload;
  Wr W{Payload};
  W.u8(KindEquiv);
  W.u64(ScalarH);
  W.u64(CandH);
  W.u64(CfgH);
  W.str(ScalarSrc);
  W.str(CandSrc);
  putEquiv(W, R);
  appendRecord(KindEquiv, Payload);
}

bool ResultStore::lookupChecksum(uint64_t ScalarH, uint64_t CandH,
                                 uint64_t CfgH, const std::string &ScalarSrc,
                                 const std::string &CandSrc,
                                 interp::ChecksumOutcome &Out) {
  std::lock_guard<std::mutex> L(M);
  auto It = Checksum.find(Key3{ScalarH, CandH, CfgH});
  if (It == Checksum.end() || It->second.ScalarSrc != ScalarSrc ||
      It->second.CandSrc != CandSrc) {
    Stats.Misses++;
    obs::counter("store.misses").inc();
    return false;
  }
  Stats.Hits++;
  obs::counter("store.hits").inc();
  Out = It->second.Value;
  return true;
}

void ResultStore::storeChecksum(uint64_t ScalarH, uint64_t CandH,
                                uint64_t CfgH, const std::string &ScalarSrc,
                                const std::string &CandSrc,
                                const interp::ChecksumOutcome &O) {
  std::lock_guard<std::mutex> L(M);
  auto Ins =
      Checksum.emplace(Key3{ScalarH, CandH, CfgH},
                       Entry<interp::ChecksumOutcome>{ScalarSrc, CandSrc, O});
  if (!Ins.second)
    return;
  std::string Payload;
  Wr W{Payload};
  W.u8(KindChecksum);
  W.u64(ScalarH);
  W.u64(CandH);
  W.u64(CfgH);
  W.str(ScalarSrc);
  W.str(CandSrc);
  putChecksum(W, O);
  appendRecord(KindChecksum, Payload);
}

std::shared_ptr<const interp::BytecodeProgram>
ResultStore::lookupProgram(const std::string &Key) {
  std::lock_guard<std::mutex> L(M);
  auto It = Programs.find(Key);
  if (It == Programs.end()) {
    Stats.Misses++;
    obs::counter("store.misses").inc();
    return nullptr;
  }
  Stats.Hits++;
  obs::counter("store.hits").inc();
  return It->second;
}

void ResultStore::storeProgram(const interp::BytecodeProgram &P) {
  if (P.Key.empty())
    return; // only content-keyed programs are addressable
  std::lock_guard<std::mutex> L(M);
  auto Ins =
      Programs.emplace(P.Key, std::make_shared<interp::BytecodeProgram>(P));
  if (!Ins.second)
    return;
  std::string Payload;
  Wr W{Payload};
  W.u8(KindProgram);
  putProgram(W, P);
  appendRecord(KindProgram, Payload);
}

void ResultStore::enableBytecodePersistence() {
  std::lock_guard<std::mutex> L(HookM);
  HookOwner = this;
  interp::setBytecodeStoreHooks(interp::BytecodeStoreHooks{
      [this](const std::string &Key) { return lookupProgram(Key); },
      [this](const interp::BytecodeProgram &P) { storeProgram(P); }});
  {
    std::lock_guard<std::mutex> L2(M);
    OwnsBytecodeHook = true;
  }
}

void ResultStore::disableBytecodePersistence() {
  std::lock_guard<std::mutex> L(HookM);
  {
    std::lock_guard<std::mutex> L2(M);
    if (!OwnsBytecodeHook)
      return;
    OwnsBytecodeHook = false;
  }
  if (HookOwner == this) {
    HookOwner = nullptr;
    interp::setBytecodeStoreHooks(interp::BytecodeStoreHooks{});
  }
}

void ResultStore::flush() {
  std::lock_guard<std::mutex> L(M);
  if (Log)
    std::fflush(Log);
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}
