//===- store/Store.h - persistent content-addressed result store -*- C++ -*-===//
///
/// \file
/// On-disk persistence for the two process-lifetime caches that make
/// repeat traffic cheap: `svc::VerdictCache` entries (full `EquivResult`
/// and `ChecksumOutcome` objects, keyed by (scalar hash, candidate hash,
/// configHash)) and compiled bytecode programs (keyed by
/// `interp::bytecodeKey`). A verified verdict never expires, so a store
/// directory turns every bench rerun, CI job, and service restart from a
/// cold start into a warm one.
///
/// Layout: one append-only record log (`<dir>/records.log`) holding a
/// versioned header followed by CRC-framed records, plus an in-memory
/// index rebuilt on open. The contract mirrors the in-memory caches:
///
///   * **Never a wrong verdict.** Lookups verify the stored source texts
///     against the probe, so a 64-bit key collision degrades to a miss.
///     Damaged bytes degrade the same way: a record that fails its CRC or
///     parses short drops the rest of the log (append-only means
///     everything after a torn write is suspect) and the file is
///     truncated back to the last good record.
///   * **Kill-safe.** Records are framed and appended with a flush per
///     record; a process killed mid-append leaves at most one torn record
///     at the tail, which the next open drops. Fresh stores are created
///     via temp file + atomic rename, so a header is never partially
///     visible.
///   * **Version-pinned.** The header embeds the schema version and the
///     three default `configHash()` golden values (checksum / equivalence
///     / FSM). A store written by an incompatible build is set aside
///     (renamed to `records.log.skipped`) and replaced by a fresh one —
///     logged via the `store.version_skipped` counter, never an error.
///
/// See src/store/README.md for the byte-level record format and the key
/// discipline shared with svc::VerdictCache.
///
//===----------------------------------------------------------------------===//

#ifndef LV_STORE_STORE_H
#define LV_STORE_STORE_H

#include "core/Equivalence.h"
#include "interp/Bytecode.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace lv {
namespace store {

/// Store counters. Hits/Misses cover backing-store lookups of all three
/// record kinds; Writes counts records appended this session;
/// CorruptSkipped / VersionSkipped count load-time salvage events (also
/// exported as `store.corrupt_skipped` / `store.version_skipped`).
struct StoreStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Writes = 0;
  uint64_t CorruptSkipped = 0;  ///< Damaged tail records dropped on load.
  uint64_t VersionSkipped = 0;  ///< Incompatible stores set aside on load.
  uint64_t AppendFailed = 0;    ///< Appends lost to I/O failure (then
                                ///< memory-only; `store.append_failed`).
  uint64_t ReadFailed = 0;      ///< Loads aborted by read failure (then
                                ///< memory-only; `store.read_failed`).
  uint64_t LoadedEquiv = 0;     ///< Equivalence records loaded on open.
  uint64_t LoadedChecksum = 0;  ///< Checksum records loaded on open.
  uint64_t LoadedPrograms = 0;  ///< Bytecode programs loaded on open.

  void add(const StoreStats &O) {
    Hits += O.Hits;
    Misses += O.Misses;
    Writes += O.Writes;
    CorruptSkipped += O.CorruptSkipped;
    VersionSkipped += O.VersionSkipped;
    AppendFailed += O.AppendFailed;
    ReadFailed += O.ReadFailed;
    LoadedEquiv += O.LoadedEquiv;
    LoadedChecksum += O.LoadedChecksum;
    LoadedPrograms += O.LoadedPrograms;
  }
};

/// Fault-injection hooks for persistent-store I/O, the storage analogue of
/// llm/Chaos.h's transport faults (see src/svc/README.md "Failure model").
/// Process-global: set before opening/driving stores under test, clear by
/// setting empty hooks. Each callback is polled once per candidate I/O and
/// returns true to inject a failure:
///   * FailAppend — the next record append fails as if fwrite hit EIO /
///     disk-full: the log closes, the store degrades to memory-only
///     (`StoreStats::AppendFailed`, `store.append_failed`). Nothing is
///     written for the failed record, so the on-disk log stays clean.
///   * FailLoad — the next open fails to read the log: the store starts
///     memory-only and empty (`StoreStats::ReadFailed`, `store.read_failed`)
///     WITHOUT touching the existing file — a transient read failure must
///     never clobber a good log with a fresh one.
struct ChaosFileHooks {
  std::function<bool()> FailAppend;
  std::function<bool()> FailLoad;
};
void setChaosFileHooks(ChaosFileHooks H);

/// The persistent store. Thread-safe (one mutex over index + log handle);
/// shareable between service instances via svc::ServiceConfig::SharedStore
/// exactly like the in-memory cache.
class ResultStore {
public:
  /// On-disk schema version; bump when any serialized layout changes.
  static constexpr uint32_t SchemaVersion = 1;

  /// Opens (or creates) the store under \p Dir, replaying the record log
  /// into the in-memory index (`store.load` span). A missing directory is
  /// created; an unreadable or incompatible one degrades to an empty
  /// in-memory store (ok() stays true as long as appends can be written —
  /// a store must never turn a warm start into a failed run).
  explicit ResultStore(const std::string &Dir);
  ~ResultStore();

  ResultStore(const ResultStore &) = delete;
  ResultStore &operator=(const ResultStore &) = delete;

  const std::string &dir() const { return Dir; }

  /// True when the log file is open for appending (lookups work either
  /// way; a read-only filesystem just loses write-through).
  bool ok() const { return Log != nullptr; }

  /// Lookups verify stored sources against the probe — the same
  /// collision-degrades-to-miss discipline as svc::VerdictCache.
  bool lookupEquiv(uint64_t ScalarH, uint64_t CandH, uint64_t CfgH,
                   const std::string &ScalarSrc, const std::string &CandSrc,
                   core::EquivResult &Out);
  void storeEquiv(uint64_t ScalarH, uint64_t CandH, uint64_t CfgH,
                  const std::string &ScalarSrc, const std::string &CandSrc,
                  const core::EquivResult &R);
  bool lookupChecksum(uint64_t ScalarH, uint64_t CandH, uint64_t CfgH,
                      const std::string &ScalarSrc,
                      const std::string &CandSrc,
                      interp::ChecksumOutcome &Out);
  void storeChecksum(uint64_t ScalarH, uint64_t CandH, uint64_t CfgH,
                     const std::string &ScalarSrc, const std::string &CandSrc,
                     const interp::ChecksumOutcome &O);

  /// Program lookup by full `interp::bytecodeKey` content key (the key is
  /// an injective serialization, so exactness is inherent — no source
  /// re-check needed).
  std::shared_ptr<const interp::BytecodeProgram>
  lookupProgram(const std::string &Key);
  void storeProgram(const interp::BytecodeProgram &P);

  /// Routes `interp::compileBytecodeCached` misses through this store
  /// (process-global hook; at most one store owns it at a time — a second
  /// enable steals it, the owner's destructor releases it).
  void enableBytecodePersistence();
  void disableBytecodePersistence();

  /// Forces buffered log bytes to the OS (appendRecord already flushes per
  /// record; drain calls this so teardown is explicit about durability).
  void flush();

  StoreStats stats() const;

private:
  struct Key3 {
    uint64_t Scalar = 0, Candidate = 0, Config = 0;
    bool operator==(const Key3 &O) const {
      return Scalar == O.Scalar && Candidate == O.Candidate &&
             Config == O.Config;
    }
  };
  struct Key3Hash {
    size_t operator()(const Key3 &K) const;
  };
  template <class V> struct Entry {
    std::string ScalarSrc, CandSrc; ///< Exactness check on hit.
    V Value;
  };

  void load();
  bool parseHeader(const std::string &Bytes, size_t &Off);
  void appendRecord(uint8_t Kind, const std::string &Payload);
  void setAside(const char *Why);
  void openFresh();

  std::string Dir;
  std::string LogPath;
  mutable std::mutex M;
  std::FILE *Log = nullptr; ///< Append handle; null when writes failed.
  std::unordered_map<Key3, Entry<core::EquivResult>, Key3Hash> Equiv;
  std::unordered_map<Key3, Entry<interp::ChecksumOutcome>, Key3Hash> Checksum;
  std::unordered_map<std::string,
                     std::shared_ptr<const interp::BytecodeProgram>>
      Programs;
  StoreStats Stats;
  bool OwnsBytecodeHook = false;
};

/// Canonical binary serializations, exposed so tests and the bench gates
/// can assert *bit*-identity of replayed verdicts (string equality of the
/// serialized form is exactly the store's round-trip contract).
std::string serializeEquivResult(const core::EquivResult &R);
bool deserializeEquivResult(const std::string &Bytes, core::EquivResult &Out);
std::string serializeChecksumOutcome(const interp::ChecksumOutcome &O);
bool deserializeChecksumOutcome(const std::string &Bytes,
                                interp::ChecksumOutcome &Out);
std::string serializeProgram(const interp::BytecodeProgram &P);
bool deserializeProgram(const std::string &Bytes,
                        interp::BytecodeProgram &Out);

} // namespace store
} // namespace lv

#endif // LV_STORE_STORE_H
