//===- support/Breaker.h - counter-based circuit breaker --------*- C++ -*-===//
///
/// \file
/// A circuit breaker for the LLM client seam, deliberately keyed off
/// *call counts* instead of wall time so that breaker behaviour is a pure
/// function of the sequence of call results — runs at different worker
/// counts (or on different hardware) that see the same per-task fault
/// schedule drive the breaker through the same transitions.
///
/// State machine (classic three-state, counters only):
///
///   Closed   -- TripFailures consecutive failures -->        Open
///   Open     -- OpenRejects rejected admissions  -->         HalfOpen
///   HalfOpen -- probe call succeeds -->                      Closed
///   HalfOpen -- probe call fails -->                         Open
///
/// "Failure" means a fault the taxonomy already classifies as a client
/// fault (transient or permanent); a success resets the consecutive-
/// failure counter. In Open state every admission is rejected without
/// touching the backend; after OpenRejects rejections the next admission
/// is let through as the half-open probe. Exactly one probe is in flight
/// at a time (admit() hands out the probe slot under the mutex).
///
/// Thread safety: one mutex guards all counters; the breaker is shared by
/// every task of a service, which is precisely the point — it is the one
/// deliberate piece of cross-task coupling in the failure path, and is
/// therefore OFF by default and excluded from the bit-identity parity
/// gates (see svc/README.md "Overload & recovery" for the determinism
/// argument).
///
//===----------------------------------------------------------------------===//

#ifndef LV_SUPPORT_BREAKER_H
#define LV_SUPPORT_BREAKER_H

#include <cstdint>
#include <mutex>

namespace lv {
namespace support {

/// Tuning knobs for CircuitBreaker. Defaults keep it disabled; enabling
/// it is a per-service serving-policy decision, not a config-hash input
/// (breaker state never changes a verdict, only whether a call is
/// attempted).
struct BreakerConfig {
  bool Enabled = false;
  /// Consecutive client failures that trip Closed -> Open.
  uint32_t TripFailures = 5;
  /// Admissions rejected while Open before the next one becomes the
  /// half-open probe.
  uint32_t OpenRejects = 8;
};

/// Monotonic tallies for reporting (bench JSON envelope, tests).
struct BreakerStats {
  uint64_t Admitted = 0; ///< calls let through (incl. probes)
  uint64_t Rejected = 0; ///< calls refused while Open
  uint64_t Trips = 0;    ///< Closed/HalfOpen -> Open transitions
  uint64_t Probes = 0;   ///< half-open probe calls issued
  uint64_t Reclosed = 0; ///< HalfOpen -> Closed recoveries
};

class CircuitBreaker {
public:
  enum class State { Closed, Open, HalfOpen };

  explicit CircuitBreaker(const BreakerConfig &C = BreakerConfig()) : Cfg(C) {}

  /// Asks permission to issue one backend call. Returns false when the
  /// breaker is Open and the call must be rejected; a true return from
  /// HalfOpen state is the probe call. Every admitted call MUST be
  /// followed by exactly one onSuccess()/onFailure().
  bool admit() {
    if (!Cfg.Enabled)
      return true;
    std::lock_guard<std::mutex> L(M);
    switch (St) {
    case State::Closed:
      ++Stats.Admitted;
      return true;
    case State::Open:
      if (++RejectsWhileOpen >= Cfg.OpenRejects && !ProbeInFlight) {
        St = State::HalfOpen;
        ProbeInFlight = true;
        ++Stats.Probes;
        ++Stats.Admitted;
        return true;
      }
      ++Stats.Rejected;
      return false;
    case State::HalfOpen:
      if (!ProbeInFlight) {
        ProbeInFlight = true;
        ++Stats.Probes;
        ++Stats.Admitted;
        return true;
      }
      ++Stats.Rejected;
      return false;
    }
    return true; // unreachable
  }

  /// Reports a successful admitted call.
  void onSuccess() {
    if (!Cfg.Enabled)
      return;
    std::lock_guard<std::mutex> L(M);
    ConsecutiveFailures = 0;
    if (St == State::HalfOpen) {
      St = State::Closed;
      ProbeInFlight = false;
      RejectsWhileOpen = 0;
      ++Stats.Reclosed;
    }
  }

  /// Reports a failed admitted call (client fault, transient or
  /// permanent).
  void onFailure() {
    if (!Cfg.Enabled)
      return;
    std::lock_guard<std::mutex> L(M);
    if (St == State::HalfOpen) {
      // Probe failed: back to Open, restart the reject countdown.
      St = State::Open;
      ProbeInFlight = false;
      RejectsWhileOpen = 0;
      ConsecutiveFailures = 0;
      ++Stats.Trips;
      return;
    }
    if (St == State::Closed && ++ConsecutiveFailures >= Cfg.TripFailures) {
      St = State::Open;
      RejectsWhileOpen = 0;
      ConsecutiveFailures = 0;
      ++Stats.Trips;
    }
  }

  /// Reports an admitted call that completed without evidence either way
  /// (e.g. cancelled by its task's deadline before the backend answered).
  /// Frees a held probe slot without counting success or failure.
  void onAbandoned() {
    if (!Cfg.Enabled)
      return;
    std::lock_guard<std::mutex> L(M);
    if (St == State::HalfOpen && ProbeInFlight)
      ProbeInFlight = false;
  }

  State state() const {
    std::lock_guard<std::mutex> L(M);
    return St;
  }

  BreakerStats stats() const {
    std::lock_guard<std::mutex> L(M);
    return Stats;
  }

  const BreakerConfig &config() const { return Cfg; }

private:
  BreakerConfig Cfg;
  mutable std::mutex M;
  State St = State::Closed;
  uint32_t ConsecutiveFailures = 0;
  uint32_t RejectsWhileOpen = 0;
  bool ProbeInFlight = false;
  BreakerStats Stats;
};

} // namespace support
} // namespace lv

#endif // LV_SUPPORT_BREAKER_H
