//===- support/Cancel.h - cooperative cancellation --------------*- C++ -*-===//
///
/// \file
/// Cooperative per-task cancellation for the service stack. A
/// `CancelToken` carries a cancel flag plus an optional steady-clock
/// deadline; long-running stages poll it at named checkpoints and unwind
/// with `CancelledError` when it has expired.
///
/// Threading model: the vectorization service installs the current task's
/// token into thread-local storage (`CancelScope`) for the task's
/// duration, so the stages below it — FSM attempts, interpreter fuel
/// checks, SAT budget loops — can poll without any config plumbing (and
/// therefore without perturbing any configHash() the verdict cache and
/// persistent store key on). Code that fans work out to helper threads
/// captures `currentCancelToken()` before spawning and either re-installs
/// it with a `CancelScope` or polls the captured pointer directly.
///
/// Determinism: a token that never expires makes every check a no-op, so
/// deadline-free runs are bit-identical to builds without any checks. An
/// expired token only ever converts a result into a *cancelled partial*
/// result, which the service classifies as TimedOut and never caches or
/// persists — cancellation can delay a verdict but never change one.
///
//===----------------------------------------------------------------------===//

#ifndef LV_SUPPORT_CANCEL_H
#define LV_SUPPORT_CANCEL_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

namespace lv {
namespace support {

/// Monotonic clock reading in nanoseconds (steady_clock; deadline math
/// must not move with wall-clock adjustments).
inline uint64_t steadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared cancellation state for one task. Cheap to poll (two relaxed
/// loads and a clock read only when a deadline is armed). A token may be
/// linked to a parent token (hedged request arms parent to the task
/// token): the child expires as soon as either its own state or the
/// parent's does, so cancelling a task cancels every arm derived from it
/// while each arm can still be cancelled individually. The parent must
/// outlive the child (the service stack guarantees this by scoping arm
/// tokens inside the task's stack frame).
class CancelToken {
public:
  CancelToken() = default;
  explicit CancelToken(CancelToken *ParentTok) : Parent(ParentTok) {}

  /// Requests cancellation explicitly (independent of any deadline).
  void requestCancel() { Cancelled.store(true, std::memory_order_relaxed); }

  /// Arms a deadline \p Nanos from now. 0 disarms.
  void setDeadlineAfter(uint64_t Nanos) {
    DeadlineNs.store(Nanos ? steadyNowNanos() + Nanos : 0,
                     std::memory_order_relaxed);
  }

  /// True once cancelled or past the armed deadline (own state or any
  /// ancestor's).
  bool expired() const {
    if (Cancelled.load(std::memory_order_relaxed))
      return true;
    uint64_t D = DeadlineNs.load(std::memory_order_relaxed);
    if (D != 0 && steadyNowNanos() >= D)
      return true;
    return Parent && Parent->expired();
  }

private:
  std::atomic<bool> Cancelled{false};
  std::atomic<uint64_t> DeadlineNs{0}; ///< steady nanos; 0 = no deadline.
  CancelToken *Parent = nullptr;       ///< not owned; must outlive this.
};

/// Thrown by cooperative checkpoints when the current token has expired.
/// what() names the checkpoint, so a timed-out Outcome records where the
/// deadline landed.
class CancelledError : public std::runtime_error {
public:
  explicit CancelledError(const std::string &Where)
      : std::runtime_error("cancelled at " + Where) {}
};

namespace detail {
inline CancelToken *&tlsToken() {
  thread_local CancelToken *T = nullptr;
  return T;
}
} // namespace detail

/// The token installed for the current thread (null outside any task
/// scope — every check is then a no-op).
inline CancelToken *currentCancelToken() { return detail::tlsToken(); }

/// RAII installation of a token into the current thread. Nestable; the
/// previous token is restored on scope exit. Pass the parent's token when
/// entering a helper thread that should observe the task's deadline.
class CancelScope {
public:
  explicit CancelScope(CancelToken *T) : Prev(detail::tlsToken()) {
    detail::tlsToken() = T;
  }
  ~CancelScope() { detail::tlsToken() = Prev; }
  CancelScope(const CancelScope &) = delete;
  CancelScope &operator=(const CancelScope &) = delete;

private:
  CancelToken *Prev;
};

/// True when the current thread's token (if any) has expired.
inline bool cancelRequested() {
  CancelToken *T = currentCancelToken();
  return T && T->expired();
}

/// Named cooperative checkpoint: unwinds with CancelledError when the
/// current token has expired.
inline void throwIfCancelled(const char *Where) {
  if (cancelRequested())
    throw CancelledError(Where);
}

/// Sleeps ~\p Nanos in short slices, aborting with CancelledError the
/// moment the current token expires — so injected latency and retry
/// backoff can never hold a worker past its task deadline by more than
/// one slice.
inline void cancellableSleepNanos(uint64_t Nanos, const char *Where) {
  constexpr uint64_t SliceNs = 2'000'000; // 2 ms granularity
  uint64_t End = steadyNowNanos() + Nanos;
  for (;;) {
    throwIfCancelled(Where);
    uint64_t Now = steadyNowNanos();
    if (Now >= End)
      return;
    uint64_t Left = End - Now;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(Left < SliceNs ? Left : SliceNs));
  }
}

} // namespace support
} // namespace lv

#endif // LV_SUPPORT_CANCEL_H
