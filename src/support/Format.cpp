//===- support/Format.cpp - printf-style string formatting ---------------===//

#include "support/Format.h"

#include <cstdio>
#include <vector>

using namespace lv;

std::string lv::formatv(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string lv::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatv(Fmt, Args);
  va_end(Args);
  return Out;
}

void lv::appendf(std::string &Out, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  Out += formatv(Fmt, Args);
  va_end(Args);
}
