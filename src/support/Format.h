//===- support/Format.h - printf-style string formatting -------*- C++ -*-===//
//
// Part of the llm-vectorizer project, reproducing "LLM-Vectorizer: LLM-based
// Verified Loop Vectorizer" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small printf-style formatting helpers returning std::string. The project
/// avoids <iostream> in library code per the LLVM coding standards; all
/// diagnostics and printers build strings through these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef LV_SUPPORT_FORMAT_H
#define LV_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace lv {

/// Formats like printf into a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of format().
std::string formatv(const char *Fmt, va_list Args);

/// Appends printf-formatted text to \p Out.
void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace lv

#endif // LV_SUPPORT_FORMAT_H
