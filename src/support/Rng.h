//===- support/Rng.h - deterministic pseudo-random numbers -----*- C++ -*-===//
///
/// \file
/// SplitMix64-based deterministic RNG. Every stochastic component in the
/// reproduction (checksum test inputs, the simulated LLM's sampling) draws
/// from this generator so experiments are exactly repeatable.
///
//===----------------------------------------------------------------------===//

#ifndef LV_SUPPORT_RNG_H
#define LV_SUPPORT_RNG_H

#include <cstdint>
#include <cstring>

namespace lv {

/// Deterministic 64-bit RNG (SplitMix64). Cheap to seed and fork.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform 32-bit signed value in [Lo, Hi] inclusive.
  int32_t rangeInt(int32_t Lo, int32_t Hi) {
    return Lo + static_cast<int32_t>(below(
                    static_cast<uint64_t>(static_cast<int64_t>(Hi) - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Derives an independent stream from this seed and a stream label.
  Rng fork(uint64_t Label) const {
    Rng Child(State ^ (0xd1342543de82ef95ULL * (Label + 1)));
    (void)Child.next();
    return Child;
  }

private:
  uint64_t State;
};

/// FNV-1a over a string, used to derive per-test RNG streams.
inline uint64_t hashString(const char *S) {
  uint64_t H = 1469598103934665603ULL;
  for (; *S; ++S) {
    H ^= static_cast<uint8_t>(*S);
    H *= 1099511628211ULL;
  }
  return H;
}

/// Mixes two hashes.
inline uint64_t hashCombine(uint64_t A, uint64_t B) {
  A ^= B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2);
  return A;
}

/// Mixes a tagged field into a canonical config hash. The tag encodes the
/// field's *identity*, so two configs whose values were swapped between
/// same-typed fields (the classic hand-rolled-hash bug) cannot collide.
/// Every configHash() in the project goes through this helper.
inline uint64_t hashField(uint64_t H, uint32_t Tag, uint64_t Value) {
  return hashCombine(hashCombine(H, 0xF1E1DULL + Tag), Value);
}

/// Bit pattern of a double for hashing (hashing the value would conflate
/// -0.0/0.0 and break on NaN; configs are compared representationally).
inline uint64_t bitsOfDouble(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

} // namespace lv

#endif // LV_SUPPORT_RNG_H
