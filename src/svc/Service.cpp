//===- svc/Service.cpp - batched, parallel vectorization service -------------===//

#include "svc/Service.h"

#include "obs/Flight.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "store/Store.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vir/Compile.h"

#include <chrono>
#include <stdexcept>

using namespace lv;
using namespace lv::svc;

const char *lv::svc::runModeName(RunMode M) {
  switch (M) {
  case RunMode::Pipeline: return "pipeline";
  case RunMode::Generate: return "generate";
  case RunMode::Verify: return "verify";
  case RunMode::Sample: return "sample";
  }
  return "?";
}

const char *lv::svc::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None: return "none";
  case FailureKind::ClientTransient: return "client-transient";
  case FailureKind::ClientPermanent: return "client-permanent";
  case FailureKind::TimedOut: return "timed-out";
  case FailureKind::StageDegraded: return "stage-degraded";
  case FailureKind::Internal: return "internal";
  }
  return "?";
}

uint64_t lv::svc::taskSeed(uint64_t Seed, const std::string &Name) {
  return hashCombine(Seed, hashString(Name.c_str()));
}

//===----------------------------------------------------------------------===//
// VerdictCache
//===----------------------------------------------------------------------===//

VerdictCache::Key VerdictCache::makeKey(const std::string &ScalarSrc,
                                        const std::string &CandidateSrc,
                                        uint64_t ConfigHash) {
  Key K;
  K.Scalar = hashString(ScalarSrc.c_str());
  K.Candidate = hashString(CandidateSrc.c_str());
  K.Config = ConfigHash;
  return K;
}

size_t VerdictCache::KeyHash::operator()(const Key &K) const {
  return static_cast<size_t>(
      hashCombine(hashCombine(K.Scalar, K.Candidate), K.Config));
}

bool VerdictCache::lookupEquiv(const Key &K, const std::string &ScalarSrc,
                               const std::string &CandidateSrc,
                               core::EquivResult &Out) {
  std::lock_guard<std::mutex> L(M);
  auto It = Equiv.find(K);
  if (It != Equiv.end() && It->second.ScalarSrc == ScalarSrc &&
      It->second.CandidateSrc == CandidateSrc) {
    ++Hits;
    Out = It->second.Value;
    return true;
  }
  if (Backing && Backing->lookupEquiv(K.Scalar, K.Candidate, K.Config,
                                      ScalarSrc, CandidateSrc, Out)) {
    // A persisted verdict replays exactly like an in-process one: hydrate
    // the memory map so later lookups stay local, count it as a hit.
    Equiv.emplace(K, Entry<core::EquivResult>{ScalarSrc, CandidateSrc, Out});
    ++Hits;
    return true;
  }
  ++Misses;
  return false;
}

void VerdictCache::storeEquiv(const Key &K, const std::string &ScalarSrc,
                              const std::string &CandidateSrc,
                              const core::EquivResult &R) {
  std::lock_guard<std::mutex> L(M);
  // A concurrent duplicate computed the same value; first insert wins.
  auto Ins =
      Equiv.emplace(K, Entry<core::EquivResult>{ScalarSrc, CandidateSrc, R});
  if (Ins.second && Backing)
    Backing->storeEquiv(K.Scalar, K.Candidate, K.Config, ScalarSrc,
                        CandidateSrc, R);
}

bool VerdictCache::lookupChecksum(const Key &K, const std::string &ScalarSrc,
                                  const std::string &CandidateSrc,
                                  interp::ChecksumOutcome &Out) {
  std::lock_guard<std::mutex> L(M);
  auto It = Checksum.find(K);
  if (It != Checksum.end() && It->second.ScalarSrc == ScalarSrc &&
      It->second.CandidateSrc == CandidateSrc) {
    ++Hits;
    Out = It->second.Value;
    return true;
  }
  if (Backing && Backing->lookupChecksum(K.Scalar, K.Candidate, K.Config,
                                         ScalarSrc, CandidateSrc, Out)) {
    Checksum.emplace(
        K, Entry<interp::ChecksumOutcome>{ScalarSrc, CandidateSrc, Out});
    ++Hits;
    return true;
  }
  ++Misses;
  return false;
}

void VerdictCache::storeChecksum(const Key &K, const std::string &ScalarSrc,
                                 const std::string &CandidateSrc,
                                 const interp::ChecksumOutcome &O) {
  std::lock_guard<std::mutex> L(M);
  auto Ins = Checksum.emplace(
      K, Entry<interp::ChecksumOutcome>{ScalarSrc, CandidateSrc, O});
  if (Ins.second && Backing)
    Backing->storeChecksum(K.Scalar, K.Candidate, K.Config, ScalarSrc,
                           CandidateSrc, O);
}

void VerdictCache::noteBypass() {
  std::lock_guard<std::mutex> L(M);
  ++Bypassed;
}

void VerdictCache::setBacking(store::ResultStore *Store) {
  std::lock_guard<std::mutex> L(M);
  Backing = Store;
}

CacheStats VerdictCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  CacheStats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Bypassed = Bypassed;
  S.Entries = Equiv.size() + Checksum.size();
  return S;
}

//===----------------------------------------------------------------------===//
// VectorizerService
//===----------------------------------------------------------------------===//

VectorizerService::VectorizerService(ServiceConfig C) : Cfg(std::move(C)) {
  NumWorkers = Cfg.Workers < 1 ? 1 : Cfg.Workers;
  Cache = Cfg.SharedCache ? Cfg.SharedCache : &OwnCache;
  if (Cfg.EnableVerdictCache) {
    // Persistence is a tier below the verdict cache: without the cache
    // there is nothing to read results through into (and A/B benches that
    // disable the cache must not silently replay persisted work either).
    if (Cfg.SharedStore) {
      Store = Cfg.SharedStore;
    } else if (!Cfg.StorePath.empty()) {
      OwnStore.reset(new store::ResultStore(Cfg.StorePath));
      Store = OwnStore.get();
      // The bytecode-compile hook is process-global, so only a privately
      // owned store claims it; a SharedStore's owner decides.
      Store->enableBytecodePersistence();
    }
    if (Store)
      Cache->setBacking(Store);
  }
  if (!Cfg.MakeClient)
    Cfg.MakeClient = llm::simulatedClientFactory();
  Pool.reserve(static_cast<size_t>(NumWorkers));
  for (int I = 0; I < NumWorkers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
}

VectorizerService::~VectorizerService() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Pool)
    T.join();
  // Detach before OwnStore is destroyed; a shared cache must not keep a
  // dangling pointer to a store this service owned.
  if (Store)
    Cache->setBacking(nullptr);
}

Ticket VectorizerService::submit(Request R) {
  Ticket T;
  {
    std::lock_guard<std::mutex> L(M);
    T = Tasks.size();
    Tasks.push_back(std::unique_ptr<Task>(new Task()));
    Tasks.back()->Req = std::move(R);
    Pending.push_back(T);
  }
  WorkCv.notify_one();
  return T;
}

std::vector<Ticket> VectorizerService::submitBatch(std::vector<Request> B) {
  std::vector<Ticket> Out;
  Out.reserve(B.size());
  {
    std::lock_guard<std::mutex> L(M);
    for (Request &R : B) {
      Out.push_back(Tasks.size());
      Tasks.push_back(std::unique_ptr<Task>(new Task()));
      Tasks.back()->Req = std::move(R);
      Pending.push_back(Out.back());
    }
  }
  WorkCv.notify_all();
  return Out;
}

const Outcome &VectorizerService::wait(Ticket T) {
  std::unique_lock<std::mutex> L(M);
  Task &Tk = *Tasks.at(T);
  DoneCv.wait(L, [&] { return Tk.Done; });
  return Tk.Out;
}

std::vector<Outcome>
VectorizerService::waitBatch(const std::vector<Ticket> &Tickets) {
  std::vector<Outcome> Out;
  Out.reserve(Tickets.size());
  for (Ticket T : Tickets)
    Out.push_back(wait(T));
  return Out;
}

const Outcome *VectorizerService::waitFor(Ticket T, uint64_t TimeoutNanos) {
  std::unique_lock<std::mutex> L(M);
  Task &Tk = *Tasks.at(T);
  if (!DoneCv.wait_for(L, std::chrono::nanoseconds(TimeoutNanos),
                       [&] { return Tk.Done; }))
    return nullptr; // timed-out sentinel: the task keeps running
  return &Tk.Out;
}

std::vector<const Outcome *>
VectorizerService::waitBatchFor(const std::vector<Ticket> &Tickets,
                                uint64_t TimeoutNanos) {
  // One absolute deadline shared by the whole batch: ticket i gets
  // whatever budget the first i-1 waits left over.
  uint64_t Deadline = support::steadyNowNanos() + TimeoutNanos;
  std::vector<const Outcome *> Out;
  Out.reserve(Tickets.size());
  for (Ticket T : Tickets) {
    uint64_t Now = support::steadyNowNanos();
    Out.push_back(waitFor(T, Now < Deadline ? Deadline - Now : 0));
  }
  return Out;
}

CacheStats VectorizerService::cacheStats() const { return Cache->stats(); }

VectorizerService::ResilienceStats VectorizerService::resilienceStats() const {
  std::lock_guard<std::mutex> L(M);
  return RStats;
}

namespace {

std::string outcomeSummary(const Outcome &O) {
  if (O.Failed)
    return std::string(failureKindName(O.Failure)) + ": " +
           (O.Error.empty() ? "failed" : O.Error);
  if (O.VerifyRan)
    return core::outcomeName(O.Equiv.Final);
  if (O.Mode == RunMode::Sample)
    return format("%zu samples", O.Samples.size());
  if (O.GenerateRan)
    return "generated";
  return "done";
}

/// Post-task observability: registry counters/histograms plus the flight
/// recorder. Runs after the worker's try/catch, so failed tasks (their
/// wall filled in by the unwinding task span) are covered too.
void publishOutcome(const Outcome &O) {
  static obs::Counter &Tasks = obs::counter("svc.tasks");
  static obs::Counter &TasksFailed = obs::counter("svc.tasks_failed");
  static obs::Counter &Timeouts = obs::counter("svc.timeouts");
  static obs::Counter &Degraded = obs::counter("svc.degraded");
  Tasks.inc();
  if (O.Failed)
    TasksFailed.inc();
  if (O.Failure == FailureKind::TimedOut)
    Timeouts.inc();
  if (O.Failure == FailureKind::StageDegraded)
    Degraded.inc();
  obs::histogram("svc.task_ns").observe(O.WallNanos);
  if (O.VerifyRan) {
    // Per-stage wall nanos, sourced from the equiv stage spans.
    obs::histogram("equiv.checksum_ns").observe(O.Equiv.ChecksumNanos);
    obs::histogram("equiv.alive2_ns").observe(O.Equiv.Alive2Nanos);
    obs::histogram("equiv.cunroll_ns").observe(O.Equiv.CUnrollNanos);
    obs::histogram("equiv.split_ns").observe(O.Equiv.SplitNanos);
  }
  if (!obs::flightEnabled())
    return;
  obs::TaskRecord R;
  R.Name = O.Name;
  R.Mode = runModeName(O.Mode);
  R.Summary = outcomeSummary(O);
  R.WallNanos = O.WallNanos;
  R.EndNanos = obs::traceClockNanos();
  R.Failed = O.Failed;
  if (O.Failed)
    obs::noteTrap(R);
  else
    obs::recordTask(R);
}

} // namespace

void VectorizerService::workerLoop() {
  for (;;) {
    Task *T;
    {
      std::unique_lock<std::mutex> L(M);
      WorkCv.wait(L, [&] { return Stopping || !Pending.empty(); });
      if (Stopping)
        return; // queued-but-unstarted tasks are abandoned on shutdown
      T = Tasks[Pending.front()].get(); // stable: deque of owning pointers
      Pending.pop_front();
    }
    try {
      runTask(*T);
    } catch (const std::exception &E) {
      // Keep the failure on the task; a throw escaping a worker thread
      // would std::terminate the whole service. runTask classifies its
      // own failures — anything reaching here escaped that net.
      T->Out.Failed = true;
      T->Out.Error = E.what();
      if (T->Out.Failure == FailureKind::None)
        T->Out.Failure = FailureKind::Internal;
    } catch (...) {
      T->Out.Failed = true;
      T->Out.Error = "unknown exception";
      if (T->Out.Failure == FailureKind::None)
        T->Out.Failure = FailureKind::Internal;
    }
    publishOutcome(T->Out);
    {
      std::lock_guard<std::mutex> L(M);
      const Outcome &O = T->Out;
      RStats.Retries += static_cast<uint64_t>(O.Retries);
      switch (O.Failure) {
      case FailureKind::None: break;
      case FailureKind::ClientTransient: ++RStats.ClientTransient; break;
      case FailureKind::ClientPermanent: ++RStats.ClientPermanent; break;
      case FailureKind::TimedOut: ++RStats.Timeouts; break;
      case FailureKind::StageDegraded: ++RStats.Degraded; break;
      case FailureKind::Internal: ++RStats.Internal; break;
      }
      T->Done = true;
    }
    DoneCv.notify_all();
  }
}

core::EquivResult
VectorizerService::checkCached(const std::string &ScalarSrc,
                               const std::string &CandidateSrc,
                               const core::EquivConfig &Cfg2, bool &Hit) {
  Hit = false;
  // Callbacks have no content identity: never cache around an override.
  if (!Cfg.EnableVerdictCache || Cfg2.SplitCellOverride) {
    if (Cfg2.SplitCellOverride)
      Cache->noteBypass();
    return core::checkEquivalence(ScalarSrc, CandidateSrc, Cfg2);
  }
  VerdictCache::Key K =
      VerdictCache::makeKey(ScalarSrc, CandidateSrc, Cfg2.configHash());
  core::EquivResult R;
  if (Cache->lookupEquiv(K, ScalarSrc, CandidateSrc, R)) {
    Hit = true;
    return R;
  }
  R = core::checkEquivalence(ScalarSrc, CandidateSrc, Cfg2);
  // A cancelled result reflects this task's deadline, not the pair: caching
  // it would poison every later lookup with a spurious Inconclusive.
  if (!R.Cancelled)
    Cache->storeEquiv(K, ScalarSrc, CandidateSrc, R);
  return R;
}

interp::ChecksumOutcome VectorizerService::testCached(
    const std::string &ScalarSrc, const std::string &CandidateSrc,
    const vir::VFunction &Scalar, const vir::VFunction &Vec,
    const interp::ChecksumConfig &CCfg, interp::ScalarRefMemo *Memo) {
  if (!Cfg.EnableVerdictCache)
    return interp::runChecksumTest(Scalar, Vec, CCfg, Memo);
  VerdictCache::Key K =
      VerdictCache::makeKey(ScalarSrc, CandidateSrc, CCfg.configHash());
  interp::ChecksumOutcome O;
  if (Cache->lookupChecksum(K, ScalarSrc, CandidateSrc, O))
    return O;
  O = interp::runChecksumTest(Scalar, Vec, CCfg, Memo);
  Cache->storeChecksum(K, ScalarSrc, CandidateSrc, O);
  return O;
}

/// Derives the per-stage SAT-work aggregates from the equivalence result.
static void aggregateSatWork(Outcome &O) {
  O.Alive2Work = StageSatWork();
  O.CUnrollWork = StageSatWork();
  O.SplitWork = StageSatWork();
  O.Alive2Work.add(O.Equiv.Alive2Res);
  O.CUnrollWork.add(O.Equiv.CUnrollRes);
  for (const tv::TVResult &S : O.Equiv.SplitRes)
    O.SplitWork.add(S);
}

static const char *taskSpanName(RunMode M) {
  switch (M) {
  case RunMode::Pipeline: return "task.pipeline";
  case RunMode::Generate: return "task.generate";
  case RunMode::Verify: return "task.verify";
  case RunMode::Sample: return "task.sample";
  }
  return "task";
}

void VectorizerService::backoffSleep(int Attempt) {
  if (!Cfg.RetryBackoffNanos)
    return;
  // Deterministic exponential backoff: attempt k sleeps Base << k. The
  // sleep is cancellable, so backoff never outlives the task deadline
  // (expiry unwinds into the TimedOut classification like any stage).
  int Shift = Attempt < 20 ? Attempt : 20;
  support::cancellableSleepNanos(Cfg.RetryBackoffNanos << Shift,
                                 "svc.retry_backoff");
}

void VectorizerService::runTask(Task &T) {
  const Request &R = T.Req;
  Outcome &O = T.Out;
  O.Name = R.Name;
  O.Mode = R.Mode;
  O.DeadlineNanos = R.DeadlineNanos;
  // The span owns the task wall clock: its destructor accumulates into
  // O.WallNanos even when a stage throws (workerLoop records the failed
  // task afterwards, wall included).
  obs::Span TaskSpan("svc", taskSpanName(R.Mode), &O.WallNanos);
  TaskSpan.argStr("task", R.Name);

  // Arm the cooperative per-task deadline. The scope installs the token
  // thread-locally so every checkpoint below this frame — FSM attempt
  // loop, interpreter fuel checks, SAT budget loops, chaos latency
  // sleeps — polls it without any config plumbing (and therefore without
  // perturbing the configHash-keyed caches).
  support::CancelToken Token;
  if (R.DeadlineNanos)
    Token.setDeadlineAfter(R.DeadlineNanos);
  support::CancelScope Scope(&Token);

  try {
    runStages(T, Token);
  } catch (const support::CancelledError &E) {
    // Deadline expiry in a stage without its own partial-result recovery.
    O.Failed = true;
    O.Failure = FailureKind::TimedOut;
    O.Error = std::string("timed out: ") + E.what();
  } catch (const llm::ClientError &E) {
    // Client error that escaped the retry loops (permanent, or thrown
    // outside a retryable stage).
    O.Failed = true;
    O.Failure = E.Transient ? FailureKind::ClientTransient
                            : FailureKind::ClientPermanent;
    O.Error = E.what();
  } catch (const std::exception &E) {
    // Graceful degradation: if any stage already produced usable output,
    // the outcome keeps it and the failure is classified as degraded
    // rather than opaque-internal.
    O.Failed = true;
    O.Failure = (O.GenerateRan || O.VerifyRan || !O.Samples.empty())
                    ? FailureKind::StageDegraded
                    : FailureKind::Internal;
    O.Error = E.what();
  }
}

void VectorizerService::runStages(Task &T, support::CancelToken &Token) {
  const Request &R = T.Req;
  Outcome &O = T.Out;

  switch (R.Mode) {
  case RunMode::Generate:
  case RunMode::Pipeline: {
    std::unique_ptr<llm::LLMClient> Client = Cfg.MakeClient(
        Cfg.PerTaskSeedDerivation ? taskSeed(R.Seed, R.Name) : R.Seed);
    if (Cfg.Chaos.enabled())
      Client = llm::wrapChaos(std::move(Client), Cfg.Chaos,
                              taskSeed(R.Seed, R.Name));
    agents::FsmConfig FC = R.Fsm;
    // The task-scoped reference memo: the scalar runs once per input set
    // across every repair attempt the FSM makes.
    interp::ScalarRefMemo Memo;
    if (!FC.Tester) {
      // Route the tester agent's checksum runs through the outcome cache:
      // the FSM's repair loop re-tests recurring candidates, and sampled
      // corpora re-generate the same completion text constantly.
      const std::string &ScalarSrc = R.ScalarSource;
      FC.Tester = [this, &ScalarSrc, &O,
                   &Memo](const std::string &CandidateSrc,
                          const vir::VFunction &Scalar,
                          const vir::VFunction &Vec,
                          const interp::ChecksumConfig &CCfg) {
        interp::ChecksumOutcome CO =
            testCached(ScalarSrc, CandidateSrc, Scalar, Vec, CCfg, &Memo);
        O.ChecksumWork.add(CO);
        return CO;
      };
    }
    agents::MultiAgentFsm Fsm(*Client, FC);
    // Bounded retries for transient client aborts. The SAME client runs
    // every attempt: the chaos decorator's call index has advanced past
    // the consumed fault and the inner completion stream is index-pure,
    // so a successful retry replays the fault-free dialogue exactly —
    // per-attempt state (FSM result, checksum tallies) resets so the
    // surviving outcome is bit-identical to a run that never faulted.
    for (int Attempt = 0;; ++Attempt) {
      O.Fsm = agents::FsmResult();
      O.ChecksumWork = StageInterpWork();
      O.Fsm = Fsm.run(R.ScalarSource);
      if (O.Fsm.Abort != agents::FsmAbort::ClientTransient ||
          Attempt >= Cfg.ClientRetries || Token.expired())
        break;
      ++O.Retries;
      obs::counter("svc.retries").inc();
      backoffSleep(Attempt);
    }
    O.GenerateRan = true;
    switch (O.Fsm.Abort) {
    case agents::FsmAbort::None:
      break;
    case agents::FsmAbort::ClientTransient:
      O.Failed = true;
      O.Failure = FailureKind::ClientTransient;
      O.Error = "client error (retries exhausted): " + O.Fsm.AbortMsg;
      break;
    case agents::FsmAbort::ClientPermanent:
      O.Failed = true;
      O.Failure = FailureKind::ClientPermanent;
      O.Error = "client error: " + O.Fsm.AbortMsg;
      break;
    case agents::FsmAbort::Cancelled:
      O.Failed = true;
      O.Failure = FailureKind::TimedOut;
      O.Error = "timed out: " + O.Fsm.AbortMsg;
      break;
    }
    if (!O.Failed && R.Mode == RunMode::Pipeline && O.Fsm.Plausible) {
      O.Equiv = checkCached(R.ScalarSource, O.Fsm.FinalCandidate, R.Equiv,
                            O.VerdictCacheHit);
      O.VerifyRan = true;
      aggregateSatWork(O);
      if (O.Equiv.Final != core::EquivResult::CannotCompile)
        O.ChecksumWork.add(O.Equiv.ChecksumRes);
      if (O.Equiv.Cancelled) {
        O.Failed = true;
        O.Failure = FailureKind::TimedOut;
        O.Error = "timed out: " + O.Equiv.Detail;
      }
    }
    break;
  }

  case RunMode::Verify:
    O.Equiv = checkCached(R.ScalarSource, R.CandidateSource, R.Equiv,
                          O.VerdictCacheHit);
    O.VerifyRan = true;
    aggregateSatWork(O);
    if (O.Equiv.Final != core::EquivResult::CannotCompile)
      O.ChecksumWork.add(O.Equiv.ChecksumRes);
    if (O.Equiv.Cancelled) {
      // The deadline cut the check short: the partial evidence stays on
      // the outcome, the verdict is classified instead of trusted.
      O.Failed = true;
      O.Failure = FailureKind::TimedOut;
      O.Error = "timed out: " + O.Equiv.Detail;
    }
    break;

  case RunMode::Sample: {
    // The §4.1.1 "code completions" setting: K independent samples, no
    // feedback, each classified by checksum testing. Classification is
    // batched: all completions are generated and compiled first, cache
    // hits replay stored outcomes, and the remaining distinct candidates
    // run through one runChecksumBatch — the random images are built and
    // the scalar reference executed once per input set for the whole
    // candidate set instead of once per sample.
    std::unique_ptr<llm::LLMClient> Client = Cfg.MakeClient(
        Cfg.PerTaskSeedDerivation ? taskSeed(R.Seed, R.Name) : R.Seed);
    if (Cfg.Chaos.enabled())
      Client = llm::wrapChaos(std::move(Client), Cfg.Chaos,
                              taskSeed(R.Seed, R.Name));
    vir::CompileResult SC = vir::compileFunction(R.ScalarSource);
    // One attempt of the whole sampling pass; completions are drawn by
    // explicit index, so a retry on the same client replays the exact
    // fault-free sample stream (see the Generate-mode retry note).
    auto SampleAttempt = [&] {
      llm::Prompt P;
      P.ScalarSource = R.ScalarSource;
      O.Samples.reserve(static_cast<size_t>(R.SampleCount));
      struct PendingCand {
        std::string Source;
        vir::VFunctionPtr Fn;
        std::vector<size_t> Samples; ///< Sample indices sharing this source.
      };
      std::vector<PendingCand> Pending;
      std::unordered_map<std::string, size_t> PendIdx;
      uint64_t CCfgHash = R.Fsm.Checksum.configHash();
      for (int I = 0; I < R.SampleCount; ++I) {
        llm::Completion C = Client->complete(P, static_cast<uint64_t>(I));
        SampleVerdict V;
        V.Source = C.Source;
        vir::CompileResult VC = vir::compileFunction(C.Source);
        V.Compiles = VC.ok();
        if (V.Compiles && SC.ok() &&
            C.Source.find("_mm256_") != std::string::npos) {
          interp::ChecksumOutcome CO;
          bool Hit = false;
          if (Cfg.EnableVerdictCache) {
            VerdictCache::Key K =
                VerdictCache::makeKey(R.ScalarSource, C.Source, CCfgHash);
            Hit = Cache->lookupChecksum(K, R.ScalarSource, C.Source, CO);
          }
          if (Hit) {
            V.Plausible = CO.Verdict == interp::TestVerdict::Plausible;
            O.ChecksumWork.add(CO);
          } else {
            auto It = PendIdx.find(C.Source);
            if (It != PendIdx.end()) {
              Pending[It->second].Samples.push_back(O.Samples.size());
            } else {
              PendIdx.emplace(C.Source, Pending.size());
              Pending.push_back(
                  {C.Source, std::move(VC.Fn), {O.Samples.size()}});
            }
          }
        }
        O.Samples.push_back(std::move(V));
      }
      if (!Pending.empty()) {
        std::vector<const vir::VFunction *> Fns;
        Fns.reserve(Pending.size());
        for (const PendingCand &PC : Pending)
          Fns.push_back(PC.Fn.get());
        interp::ChecksumBatchResult BR =
            interp::runChecksumBatch(*SC.Fn, Fns, R.Fsm.Checksum);
        uint64_t BatchSets = 0;
        for (size_t I = 0; I < Pending.size(); ++I) {
          const interp::ChecksumOutcome &CO = BR.Outcomes[I];
          if (Cfg.EnableVerdictCache) {
            VerdictCache::Key K = VerdictCache::makeKey(
                R.ScalarSource, Pending[I].Source, CCfgHash);
            Cache->storeChecksum(K, R.ScalarSource, Pending[I].Source, CO);
          }
          bool Plausible = CO.Verdict == interp::TestVerdict::Plausible;
          for (size_t SI : Pending[I].Samples)
            O.Samples[SI].Plausible = Plausible;
          O.ChecksumWork.add(CO);
          BatchSets += CO.Work.InputSets;
        }
        // Shared reference work, counted once at batch level; every input
        // set a candidate consumed beyond the references actually executed
        // was a saved scalar run.
        O.ChecksumWork.ScalarRuns += BR.ScalarRuns;
        O.ChecksumWork.addWork(BR.ScalarWork);
        if (BatchSets > BR.ScalarRuns)
          O.ChecksumWork.ScalarRunsSaved += BatchSets - BR.ScalarRuns;
      }
    };
    for (int Attempt = 0;; ++Attempt) {
      try {
        SampleAttempt();
        break;
      } catch (const llm::ClientError &E) {
        if (!E.Transient || Attempt >= Cfg.ClientRetries || Token.expired())
          throw; // runTask classifies it
        // Drop the attempt's partial progress so the retry rebuilds the
        // sample list from index 0 (cache hits replay identical verdicts).
        O.Samples.clear();
        O.ChecksumWork = StageInterpWork();
        ++O.Retries;
        obs::counter("svc.retries").inc();
        backoffSleep(Attempt);
      }
    }
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// Serialization (determinism-parity comparisons)
//===----------------------------------------------------------------------===//

static void appendTV(std::string &S, const char *Label,
                     const tv::TVResult &R) {
  appendf(S, "  %s: verdict=%d conflicts=%llu clauses=%llu "
             "portfolio=%d fastc=%llu detail=%s\n",
          Label, static_cast<int>(R.V),
          static_cast<unsigned long long>(R.Conflicts),
          static_cast<unsigned long long>(R.Clauses),
          static_cast<int>(R.PortfolioArm),
          static_cast<unsigned long long>(R.FastConflicts), R.Detail.c_str());
}

std::string lv::svc::debugString(const Outcome &O) {
  std::string S;
  appendf(S, "outcome %s mode=%s\n", O.Name.c_str(), runModeName(O.Mode));
  if (O.Failed)
    appendf(S, " failed: %s\n", O.Error.c_str());
  // Always printed: parity comparisons that expect retry tallies to
  // differ (absorbed-fault vs fault-free runs) strip exactly this line.
  appendf(S, " resilience: failure=%s retries=%d\n",
          failureKindName(O.Failure), O.Retries);
  if (O.GenerateRan) {
    appendf(S, " fsm: plausible=%d attempts=%d\n", O.Fsm.Plausible ? 1 : 0,
            O.Fsm.Attempts);
    S += " transitions:";
    for (agents::State St : O.Fsm.Transitions)
      S += std::string(" ") + agents::stateName(St);
    S += "\n";
    for (const agents::Message &Msg : O.Fsm.Transcript)
      appendf(S, " msg %s->%s: %s\n", Msg.From.c_str(), Msg.To.c_str(),
              Msg.Content.c_str());
    appendf(S, " final-candidate:\n%s\n", O.Fsm.FinalCandidate.c_str());
  }
  if (O.VerifyRan) {
    appendf(S, " equiv: %s decided-by=%s detail=%s\n",
            core::outcomeName(O.Equiv.Final),
            core::stageName(O.Equiv.DecidedBy), O.Equiv.Detail.c_str());
    if (!O.Equiv.Counterexample.empty())
      appendf(S, " cex: %s\n", O.Equiv.Counterexample.c_str());
    appendTV(S, "alive2", O.Equiv.Alive2Res);
    appendTV(S, "c-unroll", O.Equiv.CUnrollRes);
    appendf(S, "  splitting-eligible=%d cells=%zu\n",
            O.Equiv.SplittingEligible ? 1 : 0, O.Equiv.SplitRes.size());
    for (size_t I = 0; I < O.Equiv.SplitRes.size(); ++I)
      appendTV(S, format("cell%zu", I).c_str(), O.Equiv.SplitRes[I]);
  }
  for (const SampleVerdict &V : O.Samples) {
    appendf(S, " sample compiles=%d plausible=%d:\n%s\n", V.Compiles ? 1 : 0,
            V.Plausible ? 1 : 0, V.Source.c_str());
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Single-task wrappers
//===----------------------------------------------------------------------===//

Outcome lv::svc::runOne(Request R) {
  return runOne(std::move(R), ServiceConfig());
}

Outcome lv::svc::runOne(Request R, const ServiceConfig &SC) {
  ServiceConfig C = SC;
  C.Workers = 1;
  VectorizerService S(std::move(C));
  Ticket T = S.submit(std::move(R));
  Outcome O = S.wait(T);
  // The wrappers replace direct calls that let exceptions propagate;
  // restore that contract instead of returning a default-looking Outcome.
  if (O.Failed)
    throw std::runtime_error("svc task '" + O.Name + "' failed: " + O.Error);
  return O;
}

core::EquivResult lv::svc::verifyPair(const std::string &ScalarSrc,
                                      const std::string &CandidateSrc,
                                      const core::EquivConfig &Cfg) {
  Request R;
  R.Mode = RunMode::Verify;
  R.ScalarSource = ScalarSrc;
  R.CandidateSource = CandidateSrc;
  R.Equiv = Cfg;
  return runOne(std::move(R)).Equiv;
}

Outcome lv::svc::vectorizeAndVerify(const std::string &Name,
                                    const std::string &ScalarSrc,
                                    uint64_t Seed,
                                    const agents::FsmConfig &Fsm,
                                    const core::EquivConfig &Equiv) {
  Request R;
  R.Mode = RunMode::Pipeline;
  R.Name = Name;
  R.ScalarSource = ScalarSrc;
  R.Seed = Seed;
  R.Fsm = Fsm;
  R.Equiv = Equiv;
  return runOne(std::move(R));
}
