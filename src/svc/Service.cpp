//===- svc/Service.cpp - batched, parallel vectorization service -------------===//

#include "svc/Service.h"

#include "llm/Resilience.h"
#include "obs/Flight.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "store/Framing.h"
#include "store/Journal.h"
#include "store/Store.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vir/Compile.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

using namespace lv;
using namespace lv::svc;

const char *lv::svc::runModeName(RunMode M) {
  switch (M) {
  case RunMode::Pipeline: return "pipeline";
  case RunMode::Generate: return "generate";
  case RunMode::Verify: return "verify";
  case RunMode::Sample: return "sample";
  }
  return "?";
}

const char *lv::svc::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None: return "none";
  case FailureKind::ClientTransient: return "client-transient";
  case FailureKind::ClientPermanent: return "client-permanent";
  case FailureKind::TimedOut: return "timed-out";
  case FailureKind::StageDegraded: return "stage-degraded";
  case FailureKind::Internal: return "internal";
  case FailureKind::Shed: return "shed";
  }
  return "?";
}

uint64_t lv::svc::taskSeed(uint64_t Seed, const std::string &Name) {
  return hashCombine(Seed, hashString(Name.c_str()));
}

//===----------------------------------------------------------------------===//
// VerdictCache
//===----------------------------------------------------------------------===//

VerdictCache::Key VerdictCache::makeKey(const std::string &ScalarSrc,
                                        const std::string &CandidateSrc,
                                        uint64_t ConfigHash) {
  Key K;
  K.Scalar = hashString(ScalarSrc.c_str());
  K.Candidate = hashString(CandidateSrc.c_str());
  K.Config = ConfigHash;
  return K;
}

size_t VerdictCache::KeyHash::operator()(const Key &K) const {
  return static_cast<size_t>(
      hashCombine(hashCombine(K.Scalar, K.Candidate), K.Config));
}

bool VerdictCache::lookupEquiv(const Key &K, const std::string &ScalarSrc,
                               const std::string &CandidateSrc,
                               core::EquivResult &Out) {
  std::lock_guard<std::mutex> L(M);
  auto It = Equiv.find(K);
  if (It != Equiv.end() && It->second.ScalarSrc == ScalarSrc &&
      It->second.CandidateSrc == CandidateSrc) {
    ++Hits;
    Out = It->second.Value;
    return true;
  }
  if (Backing && Backing->lookupEquiv(K.Scalar, K.Candidate, K.Config,
                                      ScalarSrc, CandidateSrc, Out)) {
    // A persisted verdict replays exactly like an in-process one: hydrate
    // the memory map so later lookups stay local, count it as a hit.
    Equiv.emplace(K, Entry<core::EquivResult>{ScalarSrc, CandidateSrc, Out});
    ++Hits;
    return true;
  }
  ++Misses;
  return false;
}

void VerdictCache::storeEquiv(const Key &K, const std::string &ScalarSrc,
                              const std::string &CandidateSrc,
                              const core::EquivResult &R) {
  std::lock_guard<std::mutex> L(M);
  // A concurrent duplicate computed the same value; first insert wins.
  auto Ins =
      Equiv.emplace(K, Entry<core::EquivResult>{ScalarSrc, CandidateSrc, R});
  if (Ins.second && Backing)
    Backing->storeEquiv(K.Scalar, K.Candidate, K.Config, ScalarSrc,
                        CandidateSrc, R);
}

bool VerdictCache::lookupChecksum(const Key &K, const std::string &ScalarSrc,
                                  const std::string &CandidateSrc,
                                  interp::ChecksumOutcome &Out) {
  std::lock_guard<std::mutex> L(M);
  auto It = Checksum.find(K);
  if (It != Checksum.end() && It->second.ScalarSrc == ScalarSrc &&
      It->second.CandidateSrc == CandidateSrc) {
    ++Hits;
    Out = It->second.Value;
    return true;
  }
  if (Backing && Backing->lookupChecksum(K.Scalar, K.Candidate, K.Config,
                                         ScalarSrc, CandidateSrc, Out)) {
    Checksum.emplace(
        K, Entry<interp::ChecksumOutcome>{ScalarSrc, CandidateSrc, Out});
    ++Hits;
    return true;
  }
  ++Misses;
  return false;
}

void VerdictCache::storeChecksum(const Key &K, const std::string &ScalarSrc,
                                 const std::string &CandidateSrc,
                                 const interp::ChecksumOutcome &O) {
  std::lock_guard<std::mutex> L(M);
  auto Ins = Checksum.emplace(
      K, Entry<interp::ChecksumOutcome>{ScalarSrc, CandidateSrc, O});
  if (Ins.second && Backing)
    Backing->storeChecksum(K.Scalar, K.Candidate, K.Config, ScalarSrc,
                           CandidateSrc, O);
}

void VerdictCache::noteBypass() {
  std::lock_guard<std::mutex> L(M);
  ++Bypassed;
}

void VerdictCache::setBacking(store::ResultStore *Store) {
  std::lock_guard<std::mutex> L(M);
  Backing = Store;
}

CacheStats VerdictCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  CacheStats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Bypassed = Bypassed;
  S.Entries = Equiv.size() + Checksum.size();
  return S;
}

//===----------------------------------------------------------------------===//
// VectorizerService
//===----------------------------------------------------------------------===//

namespace {
void publishOutcome(const Outcome &O); // defined with the worker loop below
} // namespace

/// Hashes the serving-policy knobs that can alter a *completed* outcome's
/// bytes (chaos schedule, seed derivation, retry budget, breaker, hedging)
/// so journal task keys never collide across configs whose outcomes could
/// differ — a journal shared between a chaos run and a clean run must not
/// replay one into the other.
static uint64_t servingSalt(const ServiceConfig &C) {
  uint64_t H = 0x5A17;
  H = hashField(H, 1, C.PerTaskSeedDerivation ? 1 : 0);
  H = hashField(H, 2, static_cast<uint64_t>(C.ClientRetries));
  H = hashField(H, 3, C.Chaos.ChaosSeed);
  H = hashField(H, 4, bitsOfDouble(C.Chaos.TransientRate));
  H = hashField(H, 5, bitsOfDouble(C.Chaos.PermanentRate));
  H = hashField(H, 6, bitsOfDouble(C.Chaos.TruncateRate));
  H = hashField(H, 7, bitsOfDouble(C.Chaos.GarbageRate));
  H = hashField(H, 8, bitsOfDouble(C.Chaos.LatencyRate));
  H = hashField(H, 9, C.Chaos.TransientCallScript.size());
  for (uint64_t I : C.Chaos.TransientCallScript)
    H = hashCombine(H, I);
  H = hashField(H, 10, C.Breaker.Enabled ? 1 : 0);
  H = hashField(H, 11, C.Breaker.TripFailures);
  H = hashField(H, 12, C.Breaker.OpenRejects);
  H = hashField(H, 13, C.HedgeAfterCalls);
  return H;
}

VectorizerService::VectorizerService(ServiceConfig C)
    : Cfg(std::move(C)), Breaker(Cfg.Breaker) {
  NumWorkers = Cfg.Workers < 1 ? 1 : Cfg.Workers;
  Cache = Cfg.SharedCache ? Cfg.SharedCache : &OwnCache;
  if (Cfg.EnableVerdictCache) {
    // Persistence is a tier below the verdict cache: without the cache
    // there is nothing to read results through into (and A/B benches that
    // disable the cache must not silently replay persisted work either).
    if (Cfg.SharedStore) {
      Store = Cfg.SharedStore;
    } else if (!Cfg.StorePath.empty()) {
      OwnStore.reset(new store::ResultStore(Cfg.StorePath));
      Store = OwnStore.get();
      // The bytecode-compile hook is process-global, so only a privately
      // owned store claims it; a SharedStore's owner decides.
      Store->enableBytecodePersistence();
    }
    if (Store)
      Cache->setBacking(Store);
  }
  if (!Cfg.JournalPath.empty()) {
    Journal.reset(new store::BatchJournal(Cfg.JournalPath));
    JournalSalt = servingSalt(Cfg);
  }
  if (!Cfg.MakeClient)
    Cfg.MakeClient = llm::simulatedClientFactory();
  Pool.reserve(static_cast<size_t>(NumWorkers));
  for (int I = 0; I < NumWorkers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
}

VectorizerService::~VectorizerService() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Pool)
    T.join();
  // Detach before OwnStore is destroyed; a shared cache must not keep a
  // dangling pointer to a store this service owned.
  if (Store)
    Cache->setBacking(nullptr);
}

uint64_t VectorizerService::taskKey(const Request &R) const {
  return hashCombine(requestKey(R), JournalSalt);
}

/// Marks \p T shed (M held). The outcome is complete immediately — a shed
/// task is an answered task whose answer is "the service refused it".
void VectorizerService::shedLocked(Task &T, const char *Why) {
  T.Out.Name = T.Req.Name;
  T.Out.Mode = T.Req.Mode;
  T.Out.DeadlineNanos = T.Req.DeadlineNanos;
  T.Out.Failed = true;
  T.Out.Failure = FailureKind::Shed;
  T.Out.Error = std::string("shed: ") + Why;
  T.Done = true;
  ++RStats.Shed;
}

/// Post-lock publication of shed tasks: counters + flight recorder (the
/// shed decision itself must stay inside the admission critical section,
/// but obs sinks have their own locks and don't belong under M).
void VectorizerService::publishShed(const std::vector<Ticket> &Shed) {
  if (Shed.empty())
    return;
  for (Ticket T : Shed) {
    obs::counter("svc.shed").inc();
    publishOutcome(Tasks[T]->Out); // Tasks entries are append-only: safe
                                   // to read Out after Done without M.
  }
  DoneCv.notify_all();
}

/// The admission decision for one request, M held via \p L. Returns the
/// ticket (always valid; a shed request's task is Done immediately).
Ticket VectorizerService::admitLocked(std::unique_lock<std::mutex> &L,
                                      Request R, std::vector<Ticket> &ShedOut) {
  Ticket T = Tasks.size();
  Tasks.push_back(std::unique_ptr<Task>(new Task()));
  Task &Tk = *Tasks.back();
  Tk.Req = std::move(R);

  // A draining service sheds everything new.
  if (Draining || Stopping) {
    shedLocked(Tk, "service draining");
    ShedOut.push_back(T);
    return T;
  }

  // Crash recovery: a task whose identity is already journaled replays
  // the stored outcome instead of running. Replay is exact (identity
  // string verified) and complete (the serialized form covers every
  // semantically meaningful field), so the batch converges on the same
  // bytes an uninterrupted run would produce.
  if (Journal) {
    Tk.JournalKey = taskKey(Tk.Req);
    std::string Payload;
    if (Journal->lookupDone(Tk.JournalKey, requestIdentity(Tk.Req),
                            Payload) &&
        deserializeOutcome(Payload, Tk.Out)) {
      Tk.Out.JournalReplayed = true;
      Tk.Done = true;
      ++RStats.JournalReplayed;
      obs::counter("svc.journal_replayed").inc();
      DoneCv.notify_all();
      return T;
    }
  }

  // Bounded admission queue.
  if (Cfg.MaxQueueDepth > 0 && Pending.size() >= Cfg.MaxQueueDepth) {
    if (Cfg.Admission == ServiceConfig::AdmissionPolicy::Block) {
      // Backpressure: wait for a slot (workers drain Pending without
      // needing this lock's waiter — wait() releases M).
      auto HasSlot = [&] {
        return Stopping || Draining || Pending.size() < Cfg.MaxQueueDepth;
      };
      if (Cfg.AdmissionBlockNanos == 0) {
        AdmitCv.wait(L, HasSlot);
      } else if (!AdmitCv.wait_for(
                     L, std::chrono::nanoseconds(Cfg.AdmissionBlockNanos),
                     HasSlot)) {
        shedLocked(Tk, "admission queue full (block deadline)");
        ShedOut.push_back(T);
        return T;
      }
      if (Stopping || Draining) {
        shedLocked(Tk, "service draining");
        ShedOut.push_back(T);
        return T;
      }
    } else {
      // Deterministic priority shedding: find the weakest pending task —
      // lowest priority, latest submission on ties (so ties keep older
      // work). The incoming request must strictly beat it to enter.
      auto Weakest = std::min_element(
          Pending.begin(), Pending.end(), [&](size_t A, size_t B) {
            int PA = Tasks[A]->Req.Priority, PB = Tasks[B]->Req.Priority;
            if (PA != PB)
              return PA < PB;
            return A > B; // later submission is weaker
          });
      if (Weakest != Pending.end() &&
          Tk.Req.Priority > Tasks[*Weakest]->Req.Priority) {
        Task &Victim = *Tasks[*Weakest];
        shedLocked(Victim, "evicted by higher-priority admission");
        ShedOut.push_back(*Weakest);
        Pending.erase(Weakest);
      } else {
        shedLocked(Tk, "admission queue full");
        ShedOut.push_back(T);
        return T;
      }
    }
  }

  Pending.push_back(T);
  // Wake a worker now, not at the end of the batch: Block-policy
  // admission of a *later* batch member may sleep on AdmitCv waiting for
  // workers to drain this very task — a batch-end notify would deadlock
  // against it.
  WorkCv.notify_one();
  return T;
}

Ticket VectorizerService::submit(Request R) {
  std::vector<Ticket> Shed;
  Ticket T;
  {
    std::unique_lock<std::mutex> L(M);
    T = admitLocked(L, std::move(R), Shed);
  }
  publishShed(Shed);
  WorkCv.notify_one();
  return T;
}

std::vector<Ticket> VectorizerService::submitBatch(std::vector<Request> B) {
  std::vector<Ticket> Out;
  std::vector<Ticket> Shed;
  Out.reserve(B.size());

  // Journal the batch membership up front (batch identity = member task
  // keys), so a post-kill inspection can tell a finished batch from one
  // that died mid-flight.
  if (Journal) {
    std::vector<uint64_t> Keys;
    Keys.reserve(B.size());
    for (const Request &R : B)
      Keys.push_back(taskKey(R));
    Journal->beginBatch(Keys);
  }

  {
    // The whole batch is admitted under one mutex hold (Shed policy;
    // Block waits release it), so admission decisions are a pure function
    // of batch content + queue state, never of worker scheduling — the
    // overload arm's shed-set identity across worker counts rests on
    // this.
    std::unique_lock<std::mutex> L(M);
    for (Request &R : B)
      Out.push_back(admitLocked(L, std::move(R), Shed));
  }
  publishShed(Shed);
  WorkCv.notify_all();
  return Out;
}

const Outcome &VectorizerService::wait(Ticket T) {
  std::unique_lock<std::mutex> L(M);
  Task &Tk = *Tasks.at(T);
  DoneCv.wait(L, [&] { return Tk.Done; });
  return Tk.Out;
}

std::vector<Outcome>
VectorizerService::waitBatch(const std::vector<Ticket> &Tickets) {
  std::vector<Outcome> Out;
  Out.reserve(Tickets.size());
  for (Ticket T : Tickets)
    Out.push_back(wait(T));
  return Out;
}

const Outcome *VectorizerService::waitFor(Ticket T, uint64_t TimeoutNanos) {
  std::unique_lock<std::mutex> L(M);
  Task &Tk = *Tasks.at(T);
  if (!DoneCv.wait_for(L, std::chrono::nanoseconds(TimeoutNanos),
                       [&] { return Tk.Done; }))
    return nullptr; // timed-out sentinel: the task keeps running
  return &Tk.Out;
}

std::vector<VectorizerService::TaskStatus>
VectorizerService::waitBatchFor(const std::vector<Ticket> &Tickets,
                                uint64_t TimeoutNanos) {
  // One absolute deadline shared by the whole batch: ticket i gets
  // whatever budget the first i-1 waits left over.
  uint64_t Deadline = support::steadyNowNanos() + TimeoutNanos;
  std::vector<TaskStatus> Out;
  Out.reserve(Tickets.size());
  for (Ticket T : Tickets) {
    uint64_t Now = support::steadyNowNanos();
    TaskStatus S;
    S.Out = waitFor(T, Now < Deadline ? Deadline - Now : 0);
    if (S.Out)
      S.State = S.Out->Failure == FailureKind::Shed ? TaskState::Shed
                                                    : TaskState::Done;
    Out.push_back(S);
  }
  return Out;
}

VectorizerService::DrainResult
VectorizerService::drain(uint64_t DeadlineNanos) {
  DrainResult DR;
  std::vector<Ticket> Shed;
  {
    std::unique_lock<std::mutex> L(M);
    Draining = true;
    AdmitCv.notify_all(); // blocked submitters wake up and shed

    size_t DoneBefore = 0;
    for (const std::unique_ptr<Task> &T : Tasks)
      if (T->Done)
        ++DoneBefore;

    // Grace period: queued + in-flight work may still finish.
    if (DeadlineNanos > 0)
      DoneCv.wait_for(L, std::chrono::nanoseconds(DeadlineNanos),
                      [&] { return Pending.empty() && Inflight == 0; });

    size_t DoneInGrace = 0;
    for (const std::unique_ptr<Task> &T : Tasks)
      if (T->Done)
        ++DoneInGrace;
    DR.Completed = DoneInGrace - DoneBefore;

    // Past the deadline: work that never started is shed ...
    while (!Pending.empty()) {
      size_t Idx = Pending.front();
      Pending.pop_front();
      shedLocked(*Tasks[Idx], "drain deadline");
      Shed.push_back(Idx);
      ++DR.Shed;
    }
    // ... and work in flight is cancelled through its token; the workers
    // unwind at the next cooperative checkpoint into TimedOut outcomes
    // with their partial evidence intact.
    for (const std::unique_ptr<Task> &T : Tasks)
      if (T->Started && !T->Done) {
        T->Token.requestCancel();
        ++DR.Cancelled;
      }
    DoneCv.wait(L, [&] { return Inflight == 0; });
  }
  publishShed(Shed);

  // Durability before teardown: everything the batch produced is on disk
  // when drain returns.
  if (Journal)
    Journal->flush();
  if (Store)
    Store->flush();
  return DR;
}

CacheStats VectorizerService::cacheStats() const { return Cache->stats(); }

VectorizerService::ResilienceStats VectorizerService::resilienceStats() const {
  std::lock_guard<std::mutex> L(M);
  return RStats;
}

namespace {

std::string outcomeSummary(const Outcome &O) {
  if (O.Failed)
    return std::string(failureKindName(O.Failure)) + ": " +
           (O.Error.empty() ? "failed" : O.Error);
  if (O.VerifyRan)
    return core::outcomeName(O.Equiv.Final);
  if (O.Mode == RunMode::Sample)
    return format("%zu samples", O.Samples.size());
  if (O.GenerateRan)
    return "generated";
  return "done";
}

/// Post-task observability: registry counters/histograms plus the flight
/// recorder. Runs after the worker's try/catch, so failed tasks (their
/// wall filled in by the unwinding task span) are covered too.
void publishOutcome(const Outcome &O) {
  static obs::Counter &Tasks = obs::counter("svc.tasks");
  static obs::Counter &TasksFailed = obs::counter("svc.tasks_failed");
  static obs::Counter &Timeouts = obs::counter("svc.timeouts");
  static obs::Counter &Degraded = obs::counter("svc.degraded");
  Tasks.inc();
  if (O.Failed)
    TasksFailed.inc();
  if (O.Failure == FailureKind::TimedOut)
    Timeouts.inc();
  if (O.Failure == FailureKind::StageDegraded)
    Degraded.inc();
  obs::histogram("svc.task_ns").observe(O.WallNanos);
  if (O.VerifyRan) {
    // Per-stage wall nanos, sourced from the equiv stage spans.
    obs::histogram("equiv.checksum_ns").observe(O.Equiv.ChecksumNanos);
    obs::histogram("equiv.alive2_ns").observe(O.Equiv.Alive2Nanos);
    obs::histogram("equiv.cunroll_ns").observe(O.Equiv.CUnrollNanos);
    obs::histogram("equiv.split_ns").observe(O.Equiv.SplitNanos);
  }
  if (!obs::flightEnabled())
    return;
  obs::TaskRecord R;
  R.Name = O.Name;
  R.Mode = runModeName(O.Mode);
  R.Summary = outcomeSummary(O);
  R.WallNanos = O.WallNanos;
  R.EndNanos = obs::traceClockNanos();
  R.Failed = O.Failed;
  if (O.Failed)
    obs::noteTrap(R);
  else
    obs::recordTask(R);
}

} // namespace

void VectorizerService::workerLoop() {
  // RAII in-flight slot: released exactly once per dequeued task, on every
  // exit path (normal completion, classified failure, a throw from the
  // publication code below). Losing a slot would wedge MaxInflight gating
  // and leave drain() waiting on Inflight forever.
  struct SlotGuard {
    VectorizerService *S;
    ~SlotGuard() {
      {
        std::lock_guard<std::mutex> L(S->M);
        --S->Inflight;
      }
      S->WorkCv.notify_all();  // an inflight-capped worker may proceed
      S->AdmitCv.notify_all(); // a blocked submitter may re-check
      S->DoneCv.notify_all();  // drain() waits on Inflight == 0
    }
  };
  for (;;) {
    Task *T;
    {
      std::unique_lock<std::mutex> L(M);
      WorkCv.wait(L, [&] {
        return Stopping ||
               (!Pending.empty() &&
                (Cfg.MaxInflight == 0 || Inflight < Cfg.MaxInflight));
      });
      if (Stopping)
        return; // queued-but-unstarted tasks are abandoned on shutdown
      T = Tasks[Pending.front()].get(); // stable: deque of owning pointers
      Pending.pop_front();
      T->Started = true;
      ++Inflight;
    }
    AdmitCv.notify_all(); // a queue slot freed up
    SlotGuard Slot{this};
    try {
      runTask(*T);
    } catch (const std::exception &E) {
      // Keep the failure on the task; a throw escaping a worker thread
      // would std::terminate the whole service. runTask classifies its
      // own failures — anything reaching here escaped that net.
      T->Out.Failed = true;
      T->Out.Error = E.what();
      if (T->Out.Failure == FailureKind::None)
        T->Out.Failure = FailureKind::Internal;
    } catch (...) {
      T->Out.Failed = true;
      T->Out.Error = "unknown exception";
      if (T->Out.Failure == FailureKind::None)
        T->Out.Failure = FailureKind::Internal;
    }
    publishOutcome(T->Out);
    // Journal the completion before announcing it: a crash after the
    // notify but before the append would let a caller observe a result
    // that a restart then recomputes — harmless, but the reverse order
    // keeps "observed => durable" simple. Only settled work is recorded;
    // failures re-run on resume.
    if (Journal && !T->Out.Failed)
      Journal->recordDone(T->JournalKey, requestIdentity(T->Req),
                          serializeOutcome(T->Out));
    {
      std::lock_guard<std::mutex> L(M);
      const Outcome &O = T->Out;
      RStats.Retries += static_cast<uint64_t>(O.Retries);
      switch (O.Failure) {
      case FailureKind::None: break;
      case FailureKind::ClientTransient: ++RStats.ClientTransient; break;
      case FailureKind::ClientPermanent: ++RStats.ClientPermanent; break;
      case FailureKind::TimedOut: ++RStats.Timeouts; break;
      case FailureKind::StageDegraded: ++RStats.Degraded; break;
      case FailureKind::Internal: ++RStats.Internal; break;
      case FailureKind::Shed: ++RStats.Shed; break; // defensive: sheds bypass workers
      }
      T->Done = true;
    }
    DoneCv.notify_all();
  }
}

core::EquivResult
VectorizerService::checkCached(const std::string &ScalarSrc,
                               const std::string &CandidateSrc,
                               const core::EquivConfig &Cfg2, bool &Hit) {
  Hit = false;
  // Callbacks have no content identity: never cache around an override.
  if (!Cfg.EnableVerdictCache || Cfg2.SplitCellOverride) {
    if (Cfg2.SplitCellOverride)
      Cache->noteBypass();
    return core::checkEquivalence(ScalarSrc, CandidateSrc, Cfg2);
  }
  VerdictCache::Key K =
      VerdictCache::makeKey(ScalarSrc, CandidateSrc, Cfg2.configHash());
  core::EquivResult R;
  if (Cache->lookupEquiv(K, ScalarSrc, CandidateSrc, R)) {
    Hit = true;
    return R;
  }
  R = core::checkEquivalence(ScalarSrc, CandidateSrc, Cfg2);
  // A cancelled result reflects this task's deadline, not the pair: caching
  // it would poison every later lookup with a spurious Inconclusive.
  if (!R.Cancelled)
    Cache->storeEquiv(K, ScalarSrc, CandidateSrc, R);
  return R;
}

interp::ChecksumOutcome VectorizerService::testCached(
    const std::string &ScalarSrc, const std::string &CandidateSrc,
    const vir::VFunction &Scalar, const vir::VFunction &Vec,
    const interp::ChecksumConfig &CCfg, interp::ScalarRefMemo *Memo) {
  if (!Cfg.EnableVerdictCache)
    return interp::runChecksumTest(Scalar, Vec, CCfg, Memo);
  VerdictCache::Key K =
      VerdictCache::makeKey(ScalarSrc, CandidateSrc, CCfg.configHash());
  interp::ChecksumOutcome O;
  if (Cache->lookupChecksum(K, ScalarSrc, CandidateSrc, O))
    return O;
  O = interp::runChecksumTest(Scalar, Vec, CCfg, Memo);
  Cache->storeChecksum(K, ScalarSrc, CandidateSrc, O);
  return O;
}

/// Derives the per-stage SAT-work aggregates from the equivalence result.
static void aggregateSatWork(Outcome &O) {
  O.Alive2Work = StageSatWork();
  O.CUnrollWork = StageSatWork();
  O.SplitWork = StageSatWork();
  O.Alive2Work.add(O.Equiv.Alive2Res);
  O.CUnrollWork.add(O.Equiv.CUnrollRes);
  for (const tv::TVResult &S : O.Equiv.SplitRes)
    O.SplitWork.add(S);
}

static const char *taskSpanName(RunMode M) {
  switch (M) {
  case RunMode::Pipeline: return "task.pipeline";
  case RunMode::Generate: return "task.generate";
  case RunMode::Verify: return "task.verify";
  case RunMode::Sample: return "task.sample";
  }
  return "task";
}

void VectorizerService::backoffSleep(int Attempt) {
  if (!Cfg.RetryBackoffNanos)
    return;
  // Deterministic exponential backoff: attempt k sleeps Base << k. The
  // sleep is cancellable, so backoff never outlives the task deadline
  // (expiry unwinds into the TimedOut classification like any stage).
  int Shift = Attempt < 20 ? Attempt : 20;
  support::cancellableSleepNanos(Cfg.RetryBackoffNanos << Shift,
                                 "svc.retry_backoff");
}

void VectorizerService::runTask(Task &T) {
  const Request &R = T.Req;
  Outcome &O = T.Out;
  O.Name = R.Name;
  O.Mode = R.Mode;
  O.DeadlineNanos = R.DeadlineNanos;
  // The span owns the task wall clock: its destructor accumulates into
  // O.WallNanos even when a stage throws (workerLoop records the failed
  // task afterwards, wall included).
  obs::Span TaskSpan("svc", taskSpanName(R.Mode), &O.WallNanos);
  TaskSpan.argStr("task", R.Name);

  // Arm the cooperative per-task deadline. The scope installs the token
  // thread-locally so every checkpoint below this frame — FSM attempt
  // loop, interpreter fuel checks, SAT budget loops, chaos latency
  // sleeps — polls it without any config plumbing (and therefore without
  // perturbing the configHash-keyed caches). The token lives on the Task
  // (not this stack frame) so drain() can cancel in-flight work.
  support::CancelToken &Token = T.Token;
  if (R.DeadlineNanos)
    Token.setDeadlineAfter(R.DeadlineNanos);
  support::CancelScope Scope(&Token);

  try {
    runStages(T, Token);
  } catch (const support::CancelledError &E) {
    // Deadline expiry in a stage without its own partial-result recovery.
    O.Failed = true;
    O.Failure = FailureKind::TimedOut;
    O.Error = std::string("timed out: ") + E.what();
  } catch (const llm::ClientError &E) {
    // Client error that escaped the retry loops (permanent, or thrown
    // outside a retryable stage).
    O.Failed = true;
    O.Failure = E.Transient ? FailureKind::ClientTransient
                            : FailureKind::ClientPermanent;
    O.Error = E.what();
  } catch (const std::exception &E) {
    // Graceful degradation: if any stage already produced usable output,
    // the outcome keeps it and the failure is classified as degraded
    // rather than opaque-internal.
    O.Failed = true;
    O.Failure = (O.GenerateRan || O.VerifyRan || !O.Samples.empty())
                    ? FailureKind::StageDegraded
                    : FailureKind::Internal;
    O.Error = E.what();
  }
}

std::unique_ptr<llm::LLMClient>
VectorizerService::makeTaskClient(const Request &R) {
  uint64_t TS = taskSeed(R.Seed, R.Name);
  // ChaosSalt 0 keeps the primary arm's fault schedule byte-for-byte what
  // it was before hedging existed; the secondary arm gets an independent
  // schedule so the two arms don't fault in lockstep (a hedge that always
  // fails with its primary absorbs nothing).
  auto Build = [&](uint64_t ChaosSalt) {
    std::unique_ptr<llm::LLMClient> C =
        Cfg.MakeClient(Cfg.PerTaskSeedDerivation ? TS : R.Seed);
    if (Cfg.Chaos.enabled())
      C = llm::wrapChaos(std::move(C), Cfg.Chaos,
                         ChaosSalt ? hashCombine(TS, ChaosSalt) : TS);
    // Breaker sits above chaos: injected faults count toward the trip
    // threshold, and a rejected call never consumes a chaos call index.
    return llm::wrapBreaker(std::move(C), &Breaker);
  };
  std::unique_ptr<llm::LLMClient> Primary = Build(0);
  if (Cfg.HedgeAfterCalls == 0)
    return Primary;
  // Both arms share the factory seed, so the inner completion streams are
  // identical (index-pure): whichever arm wins returns the same bytes.
  return llm::wrapHedge(std::move(Primary), Build(0x48ED6E),
                        Cfg.HedgeAfterCalls);
}

void VectorizerService::runStages(Task &T, support::CancelToken &Token) {
  const Request &R = T.Req;
  Outcome &O = T.Out;

  switch (R.Mode) {
  case RunMode::Generate:
  case RunMode::Pipeline: {
    std::unique_ptr<llm::LLMClient> Client = makeTaskClient(R);
    agents::FsmConfig FC = R.Fsm;
    // The task-scoped reference memo: the scalar runs once per input set
    // across every repair attempt the FSM makes.
    interp::ScalarRefMemo Memo;
    if (!FC.Tester) {
      // Route the tester agent's checksum runs through the outcome cache:
      // the FSM's repair loop re-tests recurring candidates, and sampled
      // corpora re-generate the same completion text constantly.
      const std::string &ScalarSrc = R.ScalarSource;
      FC.Tester = [this, &ScalarSrc, &O,
                   &Memo](const std::string &CandidateSrc,
                          const vir::VFunction &Scalar,
                          const vir::VFunction &Vec,
                          const interp::ChecksumConfig &CCfg) {
        interp::ChecksumOutcome CO =
            testCached(ScalarSrc, CandidateSrc, Scalar, Vec, CCfg, &Memo);
        O.ChecksumWork.add(CO);
        return CO;
      };
    }
    agents::MultiAgentFsm Fsm(*Client, FC);
    // Bounded retries for transient client aborts. The SAME client runs
    // every attempt: the chaos decorator's call index has advanced past
    // the consumed fault and the inner completion stream is index-pure,
    // so a successful retry replays the fault-free dialogue exactly —
    // per-attempt state (FSM result, checksum tallies) resets so the
    // surviving outcome is bit-identical to a run that never faulted.
    for (int Attempt = 0;; ++Attempt) {
      O.Fsm = agents::FsmResult();
      O.ChecksumWork = StageInterpWork();
      O.Fsm = Fsm.run(R.ScalarSource);
      if (O.Fsm.Abort != agents::FsmAbort::ClientTransient ||
          Attempt >= Cfg.ClientRetries || Token.expired())
        break;
      ++O.Retries;
      obs::counter("svc.retries").inc();
      backoffSleep(Attempt);
    }
    O.GenerateRan = true;
    switch (O.Fsm.Abort) {
    case agents::FsmAbort::None:
      break;
    case agents::FsmAbort::ClientTransient:
      O.Failed = true;
      O.Failure = FailureKind::ClientTransient;
      O.Error = "client error (retries exhausted): " + O.Fsm.AbortMsg;
      break;
    case agents::FsmAbort::ClientPermanent:
      O.Failed = true;
      O.Failure = FailureKind::ClientPermanent;
      O.Error = "client error: " + O.Fsm.AbortMsg;
      break;
    case agents::FsmAbort::Cancelled:
      O.Failed = true;
      O.Failure = FailureKind::TimedOut;
      O.Error = "timed out: " + O.Fsm.AbortMsg;
      break;
    }
    if (!O.Failed && R.Mode == RunMode::Pipeline && O.Fsm.Plausible) {
      O.Equiv = checkCached(R.ScalarSource, O.Fsm.FinalCandidate, R.Equiv,
                            O.VerdictCacheHit);
      O.VerifyRan = true;
      aggregateSatWork(O);
      if (O.Equiv.Final != core::EquivResult::CannotCompile)
        O.ChecksumWork.add(O.Equiv.ChecksumRes);
      if (O.Equiv.Cancelled) {
        O.Failed = true;
        O.Failure = FailureKind::TimedOut;
        O.Error = "timed out: " + O.Equiv.Detail;
      }
    }
    break;
  }

  case RunMode::Verify:
    O.Equiv = checkCached(R.ScalarSource, R.CandidateSource, R.Equiv,
                          O.VerdictCacheHit);
    O.VerifyRan = true;
    aggregateSatWork(O);
    if (O.Equiv.Final != core::EquivResult::CannotCompile)
      O.ChecksumWork.add(O.Equiv.ChecksumRes);
    if (O.Equiv.Cancelled) {
      // The deadline cut the check short: the partial evidence stays on
      // the outcome, the verdict is classified instead of trusted.
      O.Failed = true;
      O.Failure = FailureKind::TimedOut;
      O.Error = "timed out: " + O.Equiv.Detail;
    }
    break;

  case RunMode::Sample: {
    // The §4.1.1 "code completions" setting: K independent samples, no
    // feedback, each classified by checksum testing. Classification is
    // batched: all completions are generated and compiled first, cache
    // hits replay stored outcomes, and the remaining distinct candidates
    // run through one runChecksumBatch — the random images are built and
    // the scalar reference executed once per input set for the whole
    // candidate set instead of once per sample.
    std::unique_ptr<llm::LLMClient> Client = makeTaskClient(R);
    vir::CompileResult SC = vir::compileFunction(R.ScalarSource);
    // One attempt of the whole sampling pass; completions are drawn by
    // explicit index, so a retry on the same client replays the exact
    // fault-free sample stream (see the Generate-mode retry note).
    auto SampleAttempt = [&] {
      llm::Prompt P;
      P.ScalarSource = R.ScalarSource;
      O.Samples.reserve(static_cast<size_t>(R.SampleCount));
      struct PendingCand {
        std::string Source;
        vir::VFunctionPtr Fn;
        std::vector<size_t> Samples; ///< Sample indices sharing this source.
      };
      std::vector<PendingCand> Pending;
      std::unordered_map<std::string, size_t> PendIdx;
      uint64_t CCfgHash = R.Fsm.Checksum.configHash();
      for (int I = 0; I < R.SampleCount; ++I) {
        llm::Completion C = Client->complete(P, static_cast<uint64_t>(I));
        SampleVerdict V;
        V.Source = C.Source;
        vir::CompileResult VC = vir::compileFunction(C.Source);
        V.Compiles = VC.ok();
        if (V.Compiles && SC.ok() &&
            C.Source.find("_mm256_") != std::string::npos) {
          interp::ChecksumOutcome CO;
          bool Hit = false;
          if (Cfg.EnableVerdictCache) {
            VerdictCache::Key K =
                VerdictCache::makeKey(R.ScalarSource, C.Source, CCfgHash);
            Hit = Cache->lookupChecksum(K, R.ScalarSource, C.Source, CO);
          }
          if (Hit) {
            V.Plausible = CO.Verdict == interp::TestVerdict::Plausible;
            O.ChecksumWork.add(CO);
          } else {
            auto It = PendIdx.find(C.Source);
            if (It != PendIdx.end()) {
              Pending[It->second].Samples.push_back(O.Samples.size());
            } else {
              PendIdx.emplace(C.Source, Pending.size());
              Pending.push_back(
                  {C.Source, std::move(VC.Fn), {O.Samples.size()}});
            }
          }
        }
        O.Samples.push_back(std::move(V));
      }
      if (!Pending.empty()) {
        std::vector<const vir::VFunction *> Fns;
        Fns.reserve(Pending.size());
        for (const PendingCand &PC : Pending)
          Fns.push_back(PC.Fn.get());
        interp::ChecksumBatchResult BR =
            interp::runChecksumBatch(*SC.Fn, Fns, R.Fsm.Checksum);
        uint64_t BatchSets = 0;
        for (size_t I = 0; I < Pending.size(); ++I) {
          const interp::ChecksumOutcome &CO = BR.Outcomes[I];
          if (Cfg.EnableVerdictCache) {
            VerdictCache::Key K = VerdictCache::makeKey(
                R.ScalarSource, Pending[I].Source, CCfgHash);
            Cache->storeChecksum(K, R.ScalarSource, Pending[I].Source, CO);
          }
          bool Plausible = CO.Verdict == interp::TestVerdict::Plausible;
          for (size_t SI : Pending[I].Samples)
            O.Samples[SI].Plausible = Plausible;
          O.ChecksumWork.add(CO);
          BatchSets += CO.Work.InputSets;
        }
        // Shared reference work, counted once at batch level; every input
        // set a candidate consumed beyond the references actually executed
        // was a saved scalar run.
        O.ChecksumWork.ScalarRuns += BR.ScalarRuns;
        O.ChecksumWork.addWork(BR.ScalarWork);
        if (BatchSets > BR.ScalarRuns)
          O.ChecksumWork.ScalarRunsSaved += BatchSets - BR.ScalarRuns;
      }
    };
    for (int Attempt = 0;; ++Attempt) {
      try {
        SampleAttempt();
        break;
      } catch (const llm::ClientError &E) {
        if (!E.Transient || Attempt >= Cfg.ClientRetries || Token.expired())
          throw; // runTask classifies it
        // Drop the attempt's partial progress so the retry rebuilds the
        // sample list from index 0 (cache hits replay identical verdicts).
        O.Samples.clear();
        O.ChecksumWork = StageInterpWork();
        ++O.Retries;
        obs::counter("svc.retries").inc();
        backoffSleep(Attempt);
      }
    }
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// Outcome wire format (crash-recovery batch journal)
//===----------------------------------------------------------------------===//

uint64_t lv::svc::requestKey(const Request &R) {
  uint64_t H = 0x52454B59; // "REKY"
  H = hashField(H, 1, hashString(R.Name.c_str()));
  H = hashField(H, 2, static_cast<uint64_t>(R.Mode));
  H = hashField(H, 3, hashString(R.ScalarSource.c_str()));
  H = hashField(H, 4, hashString(R.CandidateSource.c_str()));
  H = hashField(H, 5, R.Seed);
  H = hashField(H, 6, static_cast<uint64_t>(R.SampleCount));
  H = hashField(H, 7, R.Fsm.configHash());
  H = hashField(H, 8, R.Equiv.configHash());
  return H;
}

std::string lv::svc::requestIdentity(const Request &R) {
  std::string S;
  store::framing::Wr W{S};
  W.str(R.Name);
  W.u8(static_cast<uint8_t>(R.Mode));
  W.str(R.ScalarSource);
  W.str(R.CandidateSource);
  W.u64(R.Seed);
  W.i32(R.SampleCount);
  W.u64(R.Fsm.configHash());
  W.u64(R.Equiv.configHash());
  return S;
}

namespace {

void putSatWork(store::framing::Wr &W, const StageSatWork &SW) {
  W.u64(SW.Conflicts);
  W.u64(SW.Propagations);
  W.u64(SW.Restarts);
  W.u64(SW.TrailReused);
  W.u64(SW.PortfolioFastWins);
  W.u64(SW.PortfolioSoundWins);
  W.u64(SW.PortfolioFallbacks);
  W.u64(SW.FastConflicts);
  W.u64(SW.FastPropagations);
}

void getSatWork(store::framing::Rd &R, StageSatWork &SW) {
  SW.Conflicts = R.u64();
  SW.Propagations = R.u64();
  SW.Restarts = R.u64();
  SW.TrailReused = R.u64();
  SW.PortfolioFastWins = R.u64();
  SW.PortfolioSoundWins = R.u64();
  SW.PortfolioFallbacks = R.u64();
  SW.FastConflicts = R.u64();
  SW.FastPropagations = R.u64();
}

} // namespace

std::string lv::svc::serializeOutcome(const Outcome &O) {
  std::string S;
  store::framing::Wr W{S};
  W.str(O.Name);
  W.u8(static_cast<uint8_t>(O.Mode));

  W.u8(O.GenerateRan ? 1 : 0);
  W.u8(O.Fsm.Plausible ? 1 : 0);
  W.i32(O.Fsm.Attempts);
  W.str(O.Fsm.FinalCandidate);
  W.str(store::serializeChecksumOutcome(O.Fsm.LastChecksum));
  W.u32(static_cast<uint32_t>(O.Fsm.Transcript.size()));
  for (const agents::Message &Msg : O.Fsm.Transcript) {
    W.str(Msg.From);
    W.str(Msg.To);
    W.str(Msg.Content);
  }
  W.u32(static_cast<uint32_t>(O.Fsm.Transitions.size()));
  for (agents::State St : O.Fsm.Transitions)
    W.u8(static_cast<uint8_t>(St));
  W.u8(static_cast<uint8_t>(O.Fsm.Abort));
  W.str(O.Fsm.AbortMsg);

  W.u8(O.VerifyRan ? 1 : 0);
  W.str(store::serializeEquivResult(O.Equiv));
  // Work aggregates are serialized, not recomputed on replay: cache-replay
  // aggregates describe what the stored verdict originally cost, and the
  // journal keeps that contract so resumed bench tallies match.
  putSatWork(W, O.Alive2Work);
  putSatWork(W, O.CUnrollWork);
  putSatWork(W, O.SplitWork);
  W.u64(O.ChecksumWork.ChecksumCalls);
  W.u64(O.ChecksumWork.InputSets);
  W.u64(O.ChecksumWork.CandRuns);
  W.u64(O.ChecksumWork.ScalarRuns);
  W.u64(O.ChecksumWork.ScalarRunsSaved);
  W.u64(O.ChecksumWork.Instrs);
  W.u64(O.ChecksumWork.Loads);
  W.u64(O.ChecksumWork.Stores);
  W.u64(O.ChecksumWork.Branches);
  W.u64(O.ChecksumWork.Traps);
  W.u64(O.ChecksumWork.Hangs);

  W.u32(static_cast<uint32_t>(O.Samples.size()));
  for (const SampleVerdict &V : O.Samples) {
    W.str(V.Source);
    W.u8(V.Compiles ? 1 : 0);
    W.u8(V.Plausible ? 1 : 0);
  }

  W.u8(O.Failed ? 1 : 0);
  W.str(O.Error);
  W.u8(static_cast<uint8_t>(O.Failure));
  W.i32(O.Retries);
  W.u64(O.DeadlineNanos);
  return S;
}

bool lv::svc::deserializeOutcome(const std::string &Bytes, Outcome &Out) {
  store::framing::Rd R(Bytes);
  Outcome O;
  O.Name = R.str();
  uint8_t Mode = R.u8();
  if (Mode > static_cast<uint8_t>(RunMode::Sample))
    return false;
  O.Mode = static_cast<RunMode>(Mode);

  O.GenerateRan = R.u8() != 0;
  O.Fsm.Plausible = R.u8() != 0;
  O.Fsm.Attempts = R.i32();
  O.Fsm.FinalCandidate = R.str();
  if (!store::deserializeChecksumOutcome(R.str(), O.Fsm.LastChecksum))
    return false;
  uint32_t NMsg = R.u32();
  if (R.Fail)
    return false;
  for (uint32_t I = 0; I < NMsg && !R.Fail; ++I) {
    agents::Message Msg;
    Msg.From = R.str();
    Msg.To = R.str();
    Msg.Content = R.str();
    O.Fsm.Transcript.push_back(std::move(Msg));
  }
  uint32_t NTrans = R.u32();
  if (R.Fail)
    return false;
  for (uint32_t I = 0; I < NTrans && !R.Fail; ++I) {
    uint8_t St = R.u8();
    if (St > static_cast<uint8_t>(agents::State::Failed))
      return false;
    O.Fsm.Transitions.push_back(static_cast<agents::State>(St));
  }
  uint8_t Abort = R.u8();
  if (Abort > static_cast<uint8_t>(agents::FsmAbort::Cancelled))
    return false;
  O.Fsm.Abort = static_cast<agents::FsmAbort>(Abort);
  O.Fsm.AbortMsg = R.str();

  O.VerifyRan = R.u8() != 0;
  if (!store::deserializeEquivResult(R.str(), O.Equiv))
    return false;
  getSatWork(R, O.Alive2Work);
  getSatWork(R, O.CUnrollWork);
  getSatWork(R, O.SplitWork);
  O.ChecksumWork.ChecksumCalls = R.u64();
  O.ChecksumWork.InputSets = R.u64();
  O.ChecksumWork.CandRuns = R.u64();
  O.ChecksumWork.ScalarRuns = R.u64();
  O.ChecksumWork.ScalarRunsSaved = R.u64();
  O.ChecksumWork.Instrs = R.u64();
  O.ChecksumWork.Loads = R.u64();
  O.ChecksumWork.Stores = R.u64();
  O.ChecksumWork.Branches = R.u64();
  O.ChecksumWork.Traps = R.u64();
  O.ChecksumWork.Hangs = R.u64();

  uint32_t NSamples = R.u32();
  if (R.Fail)
    return false;
  for (uint32_t I = 0; I < NSamples && !R.Fail; ++I) {
    SampleVerdict V;
    V.Source = R.str();
    V.Compiles = R.u8() != 0;
    V.Plausible = R.u8() != 0;
    O.Samples.push_back(std::move(V));
  }

  O.Failed = R.u8() != 0;
  O.Error = R.str();
  uint8_t FK = R.u8();
  if (FK > static_cast<uint8_t>(FailureKind::Shed))
    return false;
  O.Failure = static_cast<FailureKind>(FK);
  O.Retries = R.i32();
  O.DeadlineNanos = R.u64();
  if (R.Fail || !R.done())
    return false;
  Out = std::move(O);
  return true;
}

//===----------------------------------------------------------------------===//
// Serialization (determinism-parity comparisons)
//===----------------------------------------------------------------------===//

static void appendTV(std::string &S, const char *Label,
                     const tv::TVResult &R) {
  appendf(S, "  %s: verdict=%d conflicts=%llu clauses=%llu "
             "portfolio=%d fastc=%llu detail=%s\n",
          Label, static_cast<int>(R.V),
          static_cast<unsigned long long>(R.Conflicts),
          static_cast<unsigned long long>(R.Clauses),
          static_cast<int>(R.PortfolioArm),
          static_cast<unsigned long long>(R.FastConflicts), R.Detail.c_str());
}

std::string lv::svc::debugString(const Outcome &O) {
  std::string S;
  appendf(S, "outcome %s mode=%s\n", O.Name.c_str(), runModeName(O.Mode));
  if (O.Failed)
    appendf(S, " failed: %s\n", O.Error.c_str());
  // Always printed: parity comparisons that expect retry tallies to
  // differ (absorbed-fault vs fault-free runs) strip exactly this line.
  appendf(S, " resilience: failure=%s retries=%d\n",
          failureKindName(O.Failure), O.Retries);
  if (O.GenerateRan) {
    appendf(S, " fsm: plausible=%d attempts=%d\n", O.Fsm.Plausible ? 1 : 0,
            O.Fsm.Attempts);
    S += " transitions:";
    for (agents::State St : O.Fsm.Transitions)
      S += std::string(" ") + agents::stateName(St);
    S += "\n";
    for (const agents::Message &Msg : O.Fsm.Transcript)
      appendf(S, " msg %s->%s: %s\n", Msg.From.c_str(), Msg.To.c_str(),
              Msg.Content.c_str());
    appendf(S, " final-candidate:\n%s\n", O.Fsm.FinalCandidate.c_str());
  }
  if (O.VerifyRan) {
    appendf(S, " equiv: %s decided-by=%s detail=%s\n",
            core::outcomeName(O.Equiv.Final),
            core::stageName(O.Equiv.DecidedBy), O.Equiv.Detail.c_str());
    if (!O.Equiv.Counterexample.empty())
      appendf(S, " cex: %s\n", O.Equiv.Counterexample.c_str());
    appendTV(S, "alive2", O.Equiv.Alive2Res);
    appendTV(S, "c-unroll", O.Equiv.CUnrollRes);
    appendf(S, "  splitting-eligible=%d cells=%zu\n",
            O.Equiv.SplittingEligible ? 1 : 0, O.Equiv.SplitRes.size());
    for (size_t I = 0; I < O.Equiv.SplitRes.size(); ++I)
      appendTV(S, format("cell%zu", I).c_str(), O.Equiv.SplitRes[I]);
  }
  for (const SampleVerdict &V : O.Samples) {
    appendf(S, " sample compiles=%d plausible=%d:\n%s\n", V.Compiles ? 1 : 0,
            V.Plausible ? 1 : 0, V.Source.c_str());
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Single-task wrappers
//===----------------------------------------------------------------------===//

Outcome lv::svc::runOne(Request R) {
  return runOne(std::move(R), ServiceConfig());
}

Outcome lv::svc::runOne(Request R, const ServiceConfig &SC) {
  ServiceConfig C = SC;
  C.Workers = 1;
  VectorizerService S(std::move(C));
  Ticket T = S.submit(std::move(R));
  Outcome O = S.wait(T);
  // The wrappers replace direct calls that let exceptions propagate;
  // restore that contract instead of returning a default-looking Outcome.
  if (O.Failed)
    throw std::runtime_error("svc task '" + O.Name + "' failed: " + O.Error);
  return O;
}

core::EquivResult lv::svc::verifyPair(const std::string &ScalarSrc,
                                      const std::string &CandidateSrc,
                                      const core::EquivConfig &Cfg) {
  Request R;
  R.Mode = RunMode::Verify;
  R.ScalarSource = ScalarSrc;
  R.CandidateSource = CandidateSrc;
  R.Equiv = Cfg;
  return runOne(std::move(R)).Equiv;
}

Outcome lv::svc::vectorizeAndVerify(const std::string &Name,
                                    const std::string &ScalarSrc,
                                    uint64_t Seed,
                                    const agents::FsmConfig &Fsm,
                                    const core::EquivConfig &Equiv) {
  Request R;
  R.Mode = RunMode::Pipeline;
  R.Name = Name;
  R.ScalarSource = ScalarSrc;
  R.Seed = Seed;
  R.Fsm = Fsm;
  R.Equiv = Equiv;
  return runOne(std::move(R));
}
