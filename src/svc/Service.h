//===- svc/Service.h - batched, parallel vectorization service -*- C++ -*-===//
///
/// \file
/// `VectorizerService` — the canonical API for running the paper's funnel
/// (generate via the multi-agent FSM, checksum-test, formally verify) over
/// many functions. It replaces the hand-wired per-function call chain
/// (`agents::MultiAgentFsm::run` + `core::checkEquivalence`) every driver
/// used to repeat:
///
///   * **Batching.** submit()/submitBatch() enqueue work; wait() collects
///     an Outcome per ticket, in any order.
///   * **Parallelism.** A fixed-size worker pool runs independent
///     functions concurrently. Each task owns its entire state — LLM
///     client, interpreter images, TermTable, solvers — so nothing below
///     the service needs to be thread-safe.
///   * **Determinism.** A task's result is a pure function of its Request:
///     the default client derives per-task RNG streams from (seed,
///     function source, sample index) internally (see llm/Client.h), and
///     checksum inputs come from the config seed. For client factories
///     without internal prompt namespacing, ServiceConfig::
///     PerTaskSeedDerivation seeds each task with taskSeed(seed, name)
///     instead. Either way no task reads another task's state, so
///     verdicts, stage attribution, and FSM transcripts are bit-identical
///     at any worker count (tests/test_svc.cpp pins 1/2/8 workers).
///   * **Caching.** A content-addressed verdict cache keyed by
///     (scalar hash, candidate hash, configHash) lets repeated candidates
///     — across FSM repair attempts, across tests, across bench arms
///     sharing a service — skip re-execution of checksum testing and
///     Algorithm 1. Hits replay the identical stored result, so caching
///     never perturbs verdicts.
///
/// See src/svc/README.md for the threading/ownership model and the
/// cache-key scheme.
///
//===----------------------------------------------------------------------===//

#ifndef LV_SVC_SERVICE_H
#define LV_SVC_SERVICE_H

#include "agents/Fsm.h"
#include "core/Equivalence.h"
#include "llm/Chaos.h"
#include "llm/Client.h"
#include "support/Breaker.h"
#include "support/Cancel.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lv {

namespace store {
class BatchJournal;
class ResultStore;
}

namespace svc {

/// What the service runs for one request.
enum class RunMode : uint8_t {
  Pipeline, ///< FSM generation, then Algorithm-1 verification (Fig. 2).
  Generate, ///< FSM generation only.
  Verify,   ///< Algorithm 1 on a supplied candidate.
  Sample,   ///< K feedback-free completions, checksum-classified (§4.1.1).
};

const char *runModeName(RunMode M);

/// Failure taxonomy: how a task failed, when it did. Every Failed outcome
/// carries exactly one kind; see src/svc/README.md "Failure model" for
/// the full semantics, counters, and retry policy per kind.
enum class FailureKind : uint8_t {
  None,            ///< Not failed.
  ClientTransient, ///< Retryable client error; retries were exhausted.
  ClientPermanent, ///< Non-retryable client error.
  TimedOut,        ///< Request.DeadlineNanos expired (cooperative cancel).
  StageDegraded,   ///< A stage threw but earlier stages produced usable
                   ///< partial results (kept on the Outcome).
  Internal,        ///< Unexpected failure before any stage produced output.
  Shed,            ///< Refused admission (queue full, lower priority than
                   ///< the competition, or the service was draining). The
                   ///< task never ran; nothing is cached or journaled.
};

const char *failureKindName(FailureKind K);

/// Derives a per-task RNG stream from the experiment seed and the task's
/// stable name. Order- and thread-count-independent by construction.
uint64_t taskSeed(uint64_t Seed, const std::string &Name);

/// One unit of work: a scalar function plus everything needed to run the
/// funnel on it. Subsumes the (source, FsmConfig, EquivConfig, seed)
/// tuples the drivers used to thread by hand.
struct Request {
  std::string Name;         ///< Stable identity (test name); metadata + RNG.
  std::string ScalarSource; ///< The C function to vectorize.
  std::string CandidateSource; ///< Verify mode: the candidate to check.
  RunMode Mode = RunMode::Pipeline;
  agents::FsmConfig Fsm;    ///< FSM knobs; Fsm.Checksum also classifies
                            ///< Sample-mode completions.
  core::EquivConfig Equiv;
  uint64_t Seed = 0xC60;    ///< LLM stream seed (Generate/Pipeline/Sample).
  int SampleCount = 1;      ///< Sample mode: completions to draw.
  /// Per-task deadline (0 = none). Enforced cooperatively: the worker
  /// arms a support::CancelToken that the FSM attempt loop, interpreter
  /// fuel checks, and SAT budget loops poll; an expired task unwinds into
  /// a classified TimedOut outcome with its partial progress intact.
  uint64_t DeadlineNanos = 0;
  /// Admission priority under overload (higher = keep). When the bounded
  /// queue is full under the Shed policy, the lowest-priority pending
  /// task loses its slot; ties keep the earlier submission. Priority is
  /// serving metadata, not task identity — it does not participate in
  /// cache keys or the journal task key.
  int Priority = 0;
};

/// One classified completion (Sample mode).
struct SampleVerdict {
  std::string Source;
  bool Compiles = false;
  bool Plausible = false;
};

/// SAT work one formal stage performed, summed over its queries (per-query
/// deltas from tv::TVResult, so fork-per-query and shared-learnt solving
/// report comparable numbers). Aggregated per task into Outcome; the bench
/// drivers sum tasks into the BENCH_*.json perf trajectory.
struct StageSatWork {
  uint64_t Conflicts = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t TrailReused = 0;

  /// Portfolio-mode attribution (all zero outside portfolio sessions).
  /// Queries are classified by which racer produced the verdict:
  /// fast-arm decided / sound fallback ran (and, of those, how many the
  /// sound arm decided). The headline counters above already total both
  /// racers' work; FastConflicts/FastPropagations break out the fast
  /// racer's share (sound share = total - fast).
  uint64_t PortfolioFastWins = 0;
  uint64_t PortfolioSoundWins = 0;
  uint64_t PortfolioFallbacks = 0;
  uint64_t FastConflicts = 0;
  uint64_t FastPropagations = 0;

  void add(const tv::TVResult &R) {
    Conflicts += R.Conflicts;
    Propagations += R.Propagations;
    Restarts += R.Restarts;
    TrailReused += R.TrailReused;
    FastConflicts += R.FastConflicts;
    FastPropagations += R.FastPropagations;
    if (R.PortfolioArm == 1)
      ++PortfolioFastWins;
    else if (R.PortfolioArm == 2) {
      ++PortfolioFallbacks;
      if (R.decided())
        ++PortfolioSoundWins;
    }
  }
  void add(const StageSatWork &O) {
    Conflicts += O.Conflicts;
    Propagations += O.Propagations;
    Restarts += O.Restarts;
    TrailReused += O.TrailReused;
    PortfolioFastWins += O.PortfolioFastWins;
    PortfolioSoundWins += O.PortfolioSoundWins;
    PortfolioFallbacks += O.PortfolioFallbacks;
    FastConflicts += O.FastConflicts;
    FastPropagations += O.FastPropagations;
  }
};

/// Interpreter work one task's checksum testing performed, aggregated
/// over every checksum invocation the task made (FSM tester runs, the
/// Algorithm-1 stage-1 run, Sample-mode classification). The per-candidate
/// counters come from interp::ChecksumWork — replayed verbatim on cache
/// hits, so they always describe what the stored verdict originally cost;
/// the batch path's shared scalar-reference work is added batch-level.
/// Mirrors StageSatWork for the testing stage; bench_table2_checksum sums
/// tasks into BENCH_table2.json.
struct StageInterpWork {
  uint64_t ChecksumCalls = 0; ///< Checksum invocations aggregated.
  uint64_t InputSets = 0;     ///< (N, run) input sets consumed.
  uint64_t CandRuns = 0;      ///< Candidate executions.
  uint64_t ScalarRuns = 0;    ///< Scalar reference executions performed.
  uint64_t ScalarRunsSaved = 0; ///< References reused via memo/batch.
  uint64_t Instrs = 0;        ///< Charged interpreter events, both sides.
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Branches = 0;
  uint64_t Traps = 0;         ///< Candidate runs that trapped.
  uint64_t Hangs = 0;         ///< Candidate runs that exhausted fuel.

  void add(const interp::ChecksumOutcome &O) {
    ++ChecksumCalls;
    InputSets += O.Work.InputSets;
    CandRuns += O.Work.CandRuns;
    ScalarRuns += O.Work.ScalarRuns;
    ScalarRunsSaved += O.Work.ScalarRunsSaved;
    addWork(O.Work.Cand);
    addWork(O.Work.Scalar);
    if (O.Work.CandTrap != interp::TrapKind::None)
      ++Traps;
    if (O.Work.CandHang)
      ++Hangs;
  }
  void addWork(const interp::InterpWork &W) {
    Instrs += W.Instrs;
    Loads += W.loads();
    Stores += W.stores();
    Branches += W.branches();
  }
  void add(const StageInterpWork &O) {
    ChecksumCalls += O.ChecksumCalls;
    InputSets += O.InputSets;
    CandRuns += O.CandRuns;
    ScalarRuns += O.ScalarRuns;
    ScalarRunsSaved += O.ScalarRunsSaved;
    Instrs += O.Instrs;
    Loads += O.Loads;
    Stores += O.Stores;
    Branches += O.Branches;
    Traps += O.Traps;
    Hangs += O.Hangs;
  }
};

/// Everything one request produced: the FSM transcript, the per-stage
/// equivalence verdicts, and wall time. Subsumes the ad-hoc
/// FsmResult/EquivResult pairs of the per-function call chain.
struct Outcome {
  std::string Name;
  RunMode Mode = RunMode::Pipeline;

  bool GenerateRan = false;
  agents::FsmResult Fsm; ///< Transcript + transitions (Generate/Pipeline).

  bool VerifyRan = false;
  core::EquivResult Equiv; ///< Per-stage verdicts (Verify/Pipeline).

  /// Per-stage SAT-work aggregates derived from Equiv (valid when
  /// VerifyRan; recomputed on cache replays, so they always describe the
  /// work the stored verdict originally cost).
  StageSatWork Alive2Work, CUnrollWork, SplitWork;

  /// Testing-stage interpreter work, aggregated over every checksum run
  /// the task made (FSM tester, Algorithm-1 stage 1, Sample batches).
  StageInterpWork ChecksumWork;

  std::vector<SampleVerdict> Samples; ///< Sample mode.

  uint64_t WallNanos = 0;      ///< Task wall time on its worker.
  bool VerdictCacheHit = false; ///< Equivalence verdict served from cache.
  /// Served from the crash-recovery batch journal instead of running
  /// (run-variant metadata like WallNanos — excluded from debugString, so
  /// resumed batches stay byte-identical to uninterrupted ones).
  bool JournalReplayed = false;

  /// Set when the task threw instead of completing (e.g. encoding memout
  /// escalated to bad_alloc); the failure stays on this task instead of
  /// tearing down the worker. Other fields reflect progress made before
  /// the throw.
  bool Failed = false;
  std::string Error;

  /// Failure taxonomy + resilience tallies. Failure is None unless Failed;
  /// Retries counts transient-error retries consumed (a retried task that
  /// eventually succeeded has Failed=false, Retries>0, and — by the retry
  /// determinism contract — results bit-identical to a fault-free run).
  FailureKind Failure = FailureKind::None;
  int Retries = 0;
  uint64_t DeadlineNanos = 0; ///< Echo of Request.DeadlineNanos.

  /// Convenience: the funnel's final word on this function.
  bool verified() const {
    return VerifyRan && Equiv.Final == core::EquivResult::Equivalent;
  }
};

/// Deterministic serialization of everything semantically meaningful in an
/// Outcome — verdicts, stage attribution, transcripts, sample
/// classifications — excluding wall times and cache metadata (the only
/// fields that may legitimately vary run to run). The determinism-parity
/// tests compare these byte-for-byte across worker counts.
std::string debugString(const Outcome &O);

/// Cache counters. Hits/Misses cover both cached artifact kinds
/// (equivalence verdicts and checksum outcomes); Bypassed counts lookups
/// skipped because the config carried an unhashable callback.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Bypassed = 0;
  size_t Entries = 0;
};

/// Content-addressed verdict cache. Keys are (scalar source hash,
/// candidate source hash, configHash) triples; values are the full result
/// objects, replayed verbatim on a hit. Thread-safe; shareable between
/// service instances via ServiceConfig::SharedCache.
class VerdictCache {
public:
  struct Key {
    uint64_t Scalar = 0, Candidate = 0, Config = 0;
    bool operator==(const Key &O) const {
      return Scalar == O.Scalar && Candidate == O.Candidate &&
             Config == O.Config;
    }
  };

  static Key makeKey(const std::string &ScalarSrc,
                     const std::string &CandidateSrc, uint64_t ConfigHash);

  /// Lookups verify the stored sources against the probe (a 64-bit hash
  /// collision must degrade to a miss, never replay a wrong verdict —
  /// this is a verification tool).
  bool lookupEquiv(const Key &K, const std::string &ScalarSrc,
                   const std::string &CandidateSrc, core::EquivResult &Out);
  void storeEquiv(const Key &K, const std::string &ScalarSrc,
                  const std::string &CandidateSrc,
                  const core::EquivResult &R);
  bool lookupChecksum(const Key &K, const std::string &ScalarSrc,
                      const std::string &CandidateSrc,
                      interp::ChecksumOutcome &Out);
  void storeChecksum(const Key &K, const std::string &ScalarSrc,
                     const std::string &CandidateSrc,
                     const interp::ChecksumOutcome &O);
  void noteBypass();
  CacheStats stats() const;

  /// Attaches (or detaches, with null) a persistent backing store: memory
  /// misses read through to it (a backing hit hydrates the memory map and
  /// counts as a cache hit, so warm replays are indistinguishable from
  /// in-process hits), and first-time stores write through. The store must
  /// outlive the attachment; VectorizerService detaches before tearing its
  /// own store down.
  void setBacking(store::ResultStore *Store);

private:
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };
  template <class V> struct Entry {
    std::string ScalarSrc, CandidateSrc; ///< Exactness check on hit.
    V Value;
  };

  mutable std::mutex M;
  std::unordered_map<Key, Entry<core::EquivResult>, KeyHash> Equiv;
  std::unordered_map<Key, Entry<interp::ChecksumOutcome>, KeyHash> Checksum;
  uint64_t Hits = 0, Misses = 0, Bypassed = 0;
  store::ResultStore *Backing = nullptr; ///< Optional persistent tier.
};

/// Service configuration.
struct ServiceConfig {
  int Workers = 1;                ///< Worker threads (clamped to >= 1).
  bool EnableVerdictCache = true; ///< Content-addressed result reuse.
  llm::ClientFactory MakeClient;  ///< Null: SimulatedLLM(seed below).
  VerdictCache *SharedCache = nullptr; ///< Null: service-owned cache.
  /// Directory of a persistent result store (see store/Store.h). When set
  /// (and the verdict cache is enabled), the service opens the store at
  /// construction, reads verdicts through on cache misses, writes fresh
  /// verdicts through, and persists compiled bytecode programs — so a new
  /// process replays bit-identical results instead of recomputing them.
  /// Empty: no persistence (the seed behaviour).
  std::string StorePath;
  /// Already-open store shared between service instances (overrides
  /// StorePath; must outlive the service). Null: open StorePath privately.
  store::ResultStore *SharedStore = nullptr;
  /// Seed each task's client with taskSeed(Request.Seed, Request.Name)
  /// instead of Request.Seed verbatim. Decorrelates streams between
  /// same-seed requests whose prompts coincide — needed for client
  /// factories that do not namespace by prompt internally. Off by
  /// default: the simulated client derives its stream from
  /// (seed, prompt, sample index) itself, and the paper-reproduction
  /// benches pin their expected streams to the verbatim layout.
  bool PerTaskSeedDerivation = false;
  /// Retry budget for transient client errors (llm::ClientError with
  /// Transient set), per task. The whole failed stage re-runs on the SAME
  /// client instance, so a deterministic chaos schedule advances past the
  /// consumed fault and a successful retry is bit-identical to a
  /// fault-free run (see llm/Chaos.h).
  int ClientRetries = 2;
  /// Base backoff before retry k: RetryBackoffNanos << k (cancellable
  /// sleep, so backoff never outlives the task deadline). 0 disables.
  uint64_t RetryBackoffNanos = 1'000'000;
  /// Transport-fault injection (llm/Chaos.h). When enabled, every task's
  /// client is wrapped in the chaos decorator keyed by
  /// taskSeed(Request.Seed, Request.Name) — per-task deterministic
  /// schedules regardless of PerTaskSeedDerivation.
  llm::ChaosConfig Chaos;

  //===------------------------------------------------------------------===//
  // Overload protection + crash recovery (see svc/README.md "Overload &
  // recovery"). All defaults preserve the pre-overload behaviour exactly:
  // unbounded admission, no breaker, no hedging, no journal.
  //===------------------------------------------------------------------===//

  /// What a full admission queue does with new work.
  enum class AdmissionPolicy : uint8_t {
    Shed, ///< Deterministic priority eviction: the lowest-priority pending
          ///< task is shed (ties keep the earlier submission); an incoming
          ///< request that does not beat the weakest pending one is shed
          ///< itself. Decisions depend only on queue content, never on
          ///< worker scheduling, so the shed set is identical at any
          ///< worker count for a burst into an idle service.
    Block, ///< submit() blocks until a slot frees or AdmissionBlockNanos
           ///< elapses (then the request is shed). Backpressure for
           ///< callers that prefer waiting to losing work.
  };

  /// Pending tasks the admission queue holds (0 = unbounded, the seed
  /// behaviour). Tasks already running do not count against the depth.
  size_t MaxQueueDepth = 0;
  /// Concurrently *running* tasks (0 = no cap beyond Workers). Lets a
  /// wide pool be throttled without resizing it, e.g. while draining.
  size_t MaxInflight = 0;
  AdmissionPolicy Admission = AdmissionPolicy::Shed;
  /// Block policy: how long submit() may wait for a queue slot before
  /// shedding the request anyway. 0 = wait forever.
  uint64_t AdmissionBlockNanos = 0;

  /// Circuit breaker over every task's LLM client (support/Breaker.h).
  /// Per-service shared state, counter-driven; disabled by default — an
  /// enabled breaker deliberately couples tasks through the failure path,
  /// so the worker-count bit-identity gates run with it off.
  support::BreakerConfig Breaker;
  /// Hedged generate requests: per-client calls numbered >=
  /// HedgeAfterCalls race a second index-pure completion stream and keep
  /// the first arrival (0 = disabled). Content-deterministic as long as
  /// content chaos (Truncate/Garbage) is off — both arms return identical
  /// bytes on success.
  uint64_t HedgeAfterCalls = 0;

  /// Directory of the crash-recovery batch journal (store/Journal.h).
  /// When set, completed (non-failed) task outcomes are journaled as they
  /// finish, and submissions whose task key is already journaled replay
  /// the stored outcome instead of running — so a process killed
  /// mid-batch re-runs only the remainder after restart. Empty: off.
  std::string JournalPath;
};

/// Handle for one submitted request.
using Ticket = size_t;

/// The batched, parallel, cache-aware funnel runner.
class VectorizerService {
public:
  explicit VectorizerService(ServiceConfig Cfg = ServiceConfig());

  /// Joins the pool. Tasks already running finish; tasks still queued are
  /// abandoned unrun (their tickets must not be waited on afterwards —
  /// destruction is the caller declaring it no longer wants the results).
  ~VectorizerService();

  VectorizerService(const VectorizerService &) = delete;
  VectorizerService &operator=(const VectorizerService &) = delete;

  /// Enqueues one request; workers pick it up immediately. Under a full
  /// bounded queue the request (or a weaker pending one) is shed per the
  /// admission policy — the ticket is always valid, and a shed task is
  /// immediately Done with FailureKind::Shed.
  Ticket submit(Request R);

  /// Enqueues a batch; tickets are in input order. With a journal
  /// attached, batch membership is journaled and already-completed tasks
  /// replay their stored outcomes instead of running.
  std::vector<Ticket> submitBatch(std::vector<Request> Batch);

  /// Blocks until the ticket's task finished. The reference stays valid
  /// for the service's lifetime.
  const Outcome &wait(Ticket T);

  /// Blocks until every listed task finished; outcomes in ticket order.
  std::vector<Outcome> waitBatch(const std::vector<Ticket> &Tickets);

  /// wait() with a timeout: returns the outcome, or null when the task
  /// has not finished within \p TimeoutNanos (the timed-out sentinel —
  /// the task keeps running; poll again, wait(), or walk away). First
  /// step toward the async poll API of ROADMAP item 1.
  const Outcome *waitFor(Ticket T, uint64_t TimeoutNanos);

  /// Per-task disposition of a timed batch wait: a slow task and a shed
  /// one are different answers, and callers should not have to parse
  /// debugString to tell them apart.
  enum class TaskState : uint8_t {
    Done,    ///< Finished (successfully or with any non-shed failure).
    Pending, ///< Still queued or running when the wait deadline fired.
    Shed,    ///< Refused admission; the Outcome carries FailureKind::Shed.
  };
  struct TaskStatus {
    TaskState State = TaskState::Pending;
    const Outcome *Out = nullptr; ///< Null exactly when State == Pending.
  };

  /// waitFor over a batch against ONE shared deadline \p TimeoutNanos
  /// from now: entry i reports ticket i's state at (or before) that
  /// deadline, in ticket order. Pending tasks keep running — poll again,
  /// wait(), or walk away.
  std::vector<TaskStatus> waitBatchFor(const std::vector<Ticket> &Tickets,
                                       uint64_t TimeoutNanos);

  CacheStats cacheStats() const;
  int workers() const { return NumWorkers; }

  /// The attached persistent store (own or shared); null when the service
  /// runs without persistence.
  store::ResultStore *resultStore() const { return Store; }

  /// Resilience tallies aggregated over every finished task.
  struct ResilienceStats {
    uint64_t Retries = 0;  ///< Transient retries consumed (incl. absorbed).
    uint64_t Timeouts = 0; ///< Tasks failed TimedOut.
    uint64_t Degraded = 0; ///< Tasks failed StageDegraded.
    uint64_t ClientTransient = 0; ///< Tasks failed ClientTransient.
    uint64_t ClientPermanent = 0; ///< Tasks failed ClientPermanent.
    uint64_t Internal = 0;        ///< Tasks failed Internal.
    uint64_t Shed = 0;            ///< Tasks shed at admission or drain.
    uint64_t JournalReplayed = 0; ///< Tasks served from the batch journal.
  };
  ResilienceStats resilienceStats() const;

  /// The per-service circuit breaker's tallies (all zero when disabled).
  support::BreakerStats breakerStats() const { return Breaker.stats(); }

  /// The attached batch journal; null when JournalPath was empty.
  store::BatchJournal *journal() const { return Journal.get(); }

  /// What drain() did with the work it found.
  struct DrainResult {
    size_t Completed = 0; ///< Tasks that finished inside the deadline.
    size_t Cancelled = 0; ///< In-flight tasks cancelled at the deadline.
    size_t Shed = 0;      ///< Queued tasks shed at the deadline.
  };

  /// Graceful teardown: stops admission (later submits are shed), gives
  /// queued + in-flight work \p DeadlineNanos to finish, then sheds what
  /// never started and cancels what is still running via the per-task
  /// CancelTokens (cancelled tasks classify TimedOut, with partial
  /// evidence intact, exactly like a per-task deadline). Flushes the
  /// journal and the result store before returning, so a process exit
  /// right after drain() loses nothing. Idempotent; the destructor may
  /// still be used alone (drain is opt-in politeness, not a prerequisite).
  DrainResult drain(uint64_t DeadlineNanos);

private:
  struct Task {
    Request Req;
    Outcome Out;
    bool Done = false;
    bool Started = false;          ///< Dequeued by a worker (under M).
    support::CancelToken Token;    ///< Cancellation seam; drain() + the
                                   ///< per-task deadline both use it.
    uint64_t JournalKey = 0;       ///< taskKey(Req); 0 when journaling off.
  };

  void workerLoop();
  void runTask(Task &T);
  void runStages(Task &T, support::CancelToken &Token);
  /// Builds a task's LLM client stack: factory client, then the chaos,
  /// breaker, and hedging decorators as configured (innermost first).
  std::unique_ptr<llm::LLMClient> makeTaskClient(const Request &R);
  void backoffSleep(int Attempt);
  core::EquivResult checkCached(const std::string &ScalarSrc,
                                const std::string &CandidateSrc,
                                const core::EquivConfig &Cfg, bool &Hit);
  interp::ChecksumOutcome testCached(const std::string &ScalarSrc,
                                     const std::string &CandidateSrc,
                                     const vir::VFunction &Scalar,
                                     const vir::VFunction &Vec,
                                     const interp::ChecksumConfig &Cfg,
                                     interp::ScalarRefMemo *Memo = nullptr);

  /// Admits \p R under the mutex (already held): journal replay, drain
  /// shedding, and bounded-queue policy. Appends any evicted victim's
  /// ticket to \p ShedOut so the caller can publish it outside the lock.
  Ticket admitLocked(std::unique_lock<std::mutex> &L, Request R,
                     std::vector<Ticket> &ShedOut);
  /// Marks an un-run task shed (under M) — outcome, stats, wakeups.
  void shedLocked(Task &T, const char *Why);
  /// Publishes counters/flight records for tasks shed while M was held.
  void publishShed(const std::vector<Ticket> &Shed);
  /// The journal identity of a request under this service's config.
  uint64_t taskKey(const Request &R) const;

  ServiceConfig Cfg;
  int NumWorkers = 1;
  VerdictCache OwnCache;
  VerdictCache *Cache = nullptr;
  std::unique_ptr<store::ResultStore> OwnStore; ///< Opened from StorePath.
  store::ResultStore *Store = nullptr;
  support::CircuitBreaker Breaker; ///< Internally locked; shared by tasks.
  std::unique_ptr<store::BatchJournal> Journal; ///< From JournalPath.
  uint64_t JournalSalt = 0; ///< Serving-config hash mixed into task keys.

  mutable std::mutex M;
  std::condition_variable WorkCv;  ///< Signals workers: queue or shutdown.
  std::condition_variable DoneCv;  ///< Signals waiters: a task finished.
  std::condition_variable AdmitCv; ///< Signals Block-policy submitters.
  std::deque<std::unique_ptr<Task>> Tasks; ///< Stable storage per ticket.
  std::deque<size_t> Pending;
  size_t Inflight = 0;    ///< Started-but-unfinished tasks (guarded by M).
  ResilienceStats RStats; ///< Guarded by M.
  bool Stopping = false;
  bool Draining = false;  ///< drain() ran: all new admissions shed.
  std::vector<std::thread> Pool;
};

//===----------------------------------------------------------------------===//
// Outcome wire format (crash-recovery batch journal)
//===----------------------------------------------------------------------===//

/// Content hash of a request's *task identity* — everything that
/// determines its outcome (name, mode, sources, seed, sample count,
/// config hashes) and nothing that doesn't (deadline, priority: only
/// completed outcomes are journaled, and completed outcomes are pure
/// functions of the identity fields). Serving-policy knobs that can alter
/// outcomes (chaos schedule, seed derivation, hedging) are mixed in by
/// the service on top of this (see ServiceConfig::JournalPath).
uint64_t requestKey(const Request &R);

/// Exactness string compared on journal hits, so a 64-bit key collision
/// degrades to a re-run instead of replaying a wrong outcome — the same
/// discipline as VerdictCache and ResultStore.
std::string requestIdentity(const Request &R);

/// Full binary serialization of an Outcome (store/Framing.h wire format):
/// everything debugString covers plus the work aggregates — so a journal
/// replay is byte-identical to the original run in every semantically
/// meaningful field. WallNanos/VerdictCacheHit/JournalReplayed are
/// run-variant and are not round-tripped.
std::string serializeOutcome(const Outcome &O);
bool deserializeOutcome(const std::string &Bytes, Outcome &Out);

//===----------------------------------------------------------------------===//
// Thin single-task wrappers (the old per-function call chain, routed
// through a one-worker service so every entry point shares one code path).
//===----------------------------------------------------------------------===//

/// Runs one request to completion on a throwaway single-worker service.
Outcome runOne(Request R);

/// runOne on a throwaway service built from \p SC (Workers forced to 1) —
/// lets the example drivers thread --store and other service knobs through
/// the single-task convenience path.
Outcome runOne(Request R, const ServiceConfig &SC);

/// Algorithm 1 on one (scalar, candidate) pair — drop-in for direct
/// core::checkEquivalence call sites.
core::EquivResult verifyPair(const std::string &ScalarSrc,
                             const std::string &CandidateSrc,
                             const core::EquivConfig &Cfg =
                                 core::EquivConfig());

/// FSM generation + verification for one function — the quickstart chain.
Outcome vectorizeAndVerify(const std::string &Name,
                           const std::string &ScalarSrc,
                           uint64_t Seed,
                           const agents::FsmConfig &Fsm = agents::FsmConfig(),
                           const core::EquivConfig &Equiv =
                               core::EquivConfig());

} // namespace svc
} // namespace lv

#endif // LV_SVC_SERVICE_H
