//===- tsvc/Suite.cpp - TSVC benchmark dataset ---------------------------------===//

#include "tsvc/Suite.h"

#include <unordered_map>

using namespace lv;
using namespace lv::tsvc;

const char *lv::tsvc::categoryName(Category C) {
  switch (C) {
  case Category::ControlFlow: return "Control Flow";
  case Category::Dependence: return "Dependence";
  case Category::DependenceControlFlow: return "Dependence+Control Flow";
  case Category::NaivelyVectorizable: return "Naively Vectorizable";
  case Category::Reduction: return "Reduction";
  case Category::ReductionControlFlow: return "Reduction+Control Flow";
  }
  return "?";
}

namespace {

using C = Category;

struct RawTest {
  const char *Name;
  Category Cat;
  const char *Source;
};

// clang-format off
const RawTest Tests[] = {
// ---------------------------------------------------------------- linear --
{"s000", C::NaivelyVectorizable, R"(
void s000(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + 1;
  }
})"},
{"s111", C::Dependence, R"(
void s111(int n, int *a, int *b) {
  for (int i = 1; i < n; i += 2) {
    a[i] = a[i - 1] + b[i];
  }
})"},
{"s112", C::Dependence, R"(
void s112(int n, int *a, int *b) {
  for (int i = n - 2; i >= 0; i--) {
    a[i + 1] = a[i] + b[i];
  }
})"},
{"s113", C::Dependence, R"(
void s113(int n, int *a, int *b) {
  for (int i = 1; i < n; i++) {
    a[i] = a[0] + b[i];
  }
})"},
{"s114", C::Dependence, R"(
void s114(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i * 32 + i] = a[i * 32 + i] + b[i];
  }
})"},
{"s115", C::Dependence, R"(
void s115(int n, int *a, int *b) {
  for (int j = 0; j < n; j++) {
    for (int i = j + 1; i < n; i++) {
      a[i] = a[i] - a[j] * b[i * 32 + j];
    }
  }
})"},
{"s116", C::Dependence, R"(
void s116(int n, int *a) {
  for (int i = 0; i < n - 5; i += 5) {
    a[i] = a[i + 1] * a[i];
    a[i + 1] = a[i + 2] * a[i + 1];
    a[i + 2] = a[i + 3] * a[i + 2];
    a[i + 3] = a[i + 4] * a[i + 3];
    a[i + 4] = a[i + 5] * a[i + 4];
  }
})"},
{"s118", C::Dependence, R"(
void s118(int n, int *a, int *b) {
  for (int i = 1; i < n; i++) {
    for (int j = 0; j <= i - 1; j++) {
      a[i] = a[i] + b[i * 32 + j] * a[i - j - 1];
    }
  }
})"},
{"s119", C::Dependence, R"(
void s119(int n, int *a, int *b) {
  for (int i = 1; i < n; i++) {
    a[i] = a[i - 1] + b[i];
  }
})"},
// ------------------------------------------------------------- induction --
{"s121", C::Dependence, R"(
void s121(int n, int *a, int *b) {
  int j;
  for (int i = 0; i < n - 1; i++) {
    j = i + 1;
    a[i] = a[j] + b[i];
  }
})"},
{"s122", C::Dependence, R"(
void s122(int n, int n1, int n3, int *a, int *b) {
  int j = 1;
  int k = 0;
  for (int i = n1 - 1; i < n; i += n3) {
    k = k + j;
    a[i] = a[i] + b[n - k];
  }
})"},
{"s124", C::DependenceControlFlow, R"(
void s124(int *a, int *b, int *c, int *d, int *e, int n) {
  int j;
  j = -1;
  for (int i = 0; i < n; i++) {
    if (b[i] > 0) {
      j++;
      a[j] = b[i] + d[i] * e[i];
    } else {
      j++;
      a[j] = c[i] + d[i] * e[i];
    }
  }
})"},
{"s125", C::NaivelyVectorizable, R"(
void s125(int n, int *a, int *b, int *c) {
  int k = -1;
  for (int i = 0; i < n; i++) {
    k++;
    a[k] = b[i] + c[i];
  }
})"},
{"s126", C::Dependence, R"(
void s126(int n, int *a, int *b) {
  int k = 1;
  for (int i = 0; i < n; i++) {
    for (int j = 1; j < n; j++) {
      b[i * 32 + j] = b[i * 32 + j - 1] + a[k - 1];
      k++;
    }
    k++;
  }
})"},
{"s127", C::Dependence, R"(
void s127(int n, int *a, int *b, int *c, int *d) {
  int j = -1;
  for (int i = 0; i < n / 2; i++) {
    j++;
    a[j] = b[i] + c[i] * d[i];
    j++;
    a[j] = b[i] + d[i] * d[i];
  }
})"},
{"s128", C::Dependence, R"(
void s128(int n, int *a, int *b, int *c, int *d) {
  int j = 0;
  int k;
  for (int i = 0; i < n / 2; i++) {
    k = j + 1;
    a[i] = b[k] - d[i];
    j = k + 1;
    b[k] = a[i] + c[k];
  }
})"},
// ----------------------------------------------------- global data flow ---
{"s131", C::Dependence, R"(
void s131(int n, int *a, int *b) {
  int m = 1;
  for (int i = 0; i < n - 1; i++) {
    a[i] = a[i + m] + b[i];
  }
})"},
{"s132", C::Dependence, R"(
void s132(int n, int *a, int *b, int *c) {
  int m = 0;
  int j = m;
  int k = m + 1;
  for (int i = 1; i < n; i++) {
    a[i * 32 + j] = a[(i - 1) * 32 + k] + b[i] * c[1];
  }
})"},
{"s141", C::Dependence, R"(
void s141(int n, int *a, int *b) {
  int k;
  for (int i = 0; i < n; i++) {
    k = i * (i + 1) / 2 + i;
    for (int j = i; j < n; j++) {
      a[k] = a[k] + b[j];
      k = k + j + 1;
    }
  }
})"},
{"s151", C::NaivelyVectorizable, R"(
void s151(int n, int *a, int *b) {
  for (int i = 0; i < n - 1; i++) {
    a[i] = a[i + 1] + b[i];
  }
})"},
{"s152", C::Dependence, R"(
void s152(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    b[i] = d[i] * e_const(i);
    a[i] = a[i] + b[i] * c[i];
  }
})"},
// ----------------------------------------------------------- control flow --
{"s161", C::DependenceControlFlow, R"(
void s161(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    if (b[i] < 0) {
      c[i + 1] = a[i] + d[i] * d[i];
    } else {
      a[i] = c[i] + d[i] * e_val;
    }
  }
})"},
{"s162", C::Dependence, R"(
void s162(int n, int k, int *a, int *b, int *c) {
  if (k > 0) {
    for (int i = 0; i < n - 1; i++) {
      a[i] = a[i + k] + b[i] * c[i];
    }
  }
})"},
{"s171", C::Dependence, R"(
void s171(int n, int inc, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i * inc] = a[i * inc] + b[i];
  }
})"},
{"s172", C::Dependence, R"(
void s172(int n, int n1, int n3, int *a, int *b) {
  for (int i = n1 - 1; i < n; i += n3) {
    a[i] = a[i] + b[i];
  }
})"},
{"s173", C::NaivelyVectorizable, R"(
void s173(int n, int *a, int *b) {
  int k = n / 2;
  for (int i = 0; i < n / 2; i++) {
    a[i + k] = a[i] + b[i];
  }
})"},
{"s174", C::NaivelyVectorizable, R"(
void s174(int n, int m, int *a, int *b) {
  for (int i = 0; i < m; i++) {
    a[i + m] = a[i] + b[i];
  }
})"},
{"s175", C::Dependence, R"(
void s175(int n, int inc, int *a, int *b) {
  for (int i = 0; i < n - 1; i += inc) {
    a[i] = a[i + inc] + b[i];
  }
})"},
{"s176", C::Dependence, R"(
void s176(int n, int *a, int *b, int *c) {
  int m = n / 2;
  for (int j = 0; j < m; j++) {
    for (int i = 0; i < m; i++) {
      a[i] = a[i] + b[i + m - j - 1] * c[j];
    }
  }
})"},
// ------------------------------------------------------ statement reorder --
{"s211", C::Dependence, R"(
void s211(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 1; i < n - 1; i++) {
    a[i] = b[i - 1] + c[i] * d[i];
    b[i] = b[i + 1] - e[i] * d[i];
  }
})"},
{"s212", C::Dependence, R"(
void s212(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    a[i] *= c[i];
    b[i] += a[i + 1] * d[i];
  }
})"},
{"s1213", C::Dependence, R"(
void s1213(int n, int *a, int *b, int *c, int *d) {
  for (int i = 1; i < n - 1; i++) {
    a[i] = b[i - 1] + c[i];
    b[i] = a[i + 1] * d[i];
  }
})"},
// ------------------------------------------------------- loop distribution --
{"s221", C::Dependence, R"(
void s221(int n, int *a, int *b, int *c, int *d) {
  for (int i = 1; i < n; i++) {
    a[i] = a[i] + c[i] * d[i];
    b[i] = b[i - 1] + a[i] + d[i];
  }
})"},
{"s222", C::Dependence, R"(
void s222(int n, int *a, int *b, int *e) {
  for (int i = 1; i < n; i++) {
    a[i] = a[i] + b[i] * b[i];
    e[i] = e[i - 1] * e[i - 1];
    a[i] = a[i] - b[i] * b[i];
  }
})"},
// ------------------------------------------------------- loop interchange --
{"s231", C::Dependence, R"(
void s231(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    for (int j = 1; j < n; j++) {
      a[j * 32 + i] = a[(j - 1) * 32 + i] + b[j * 32 + i];
    }
  }
})"},
{"s232", C::Dependence, R"(
void s232(int n, int *a, int *b) {
  for (int j = 1; j < n; j++) {
    for (int i = 1; i <= j; i++) {
      a[j * 32 + i] = a[j * 32 + i - 1] * a[j * 32 + i - 1] + b[j * 32 + i];
    }
  }
})"},
{"s235", C::Dependence, R"(
void s235(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + b[i] * c[i];
    for (int j = 1; j < n; j++) {
      a[j * 32 + i] = a[(j - 1) * 32 + i] + b[j * 32 + i] * a[i];
    }
  }
})"},
// --------------------------------------------------------- node splitting --
{"s241", C::Dependence, R"(
void s241(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    a[i] = b[i] * c[i] * d[i];
    b[i] = a[i] * a[i + 1] * d[i];
  }
})"},
{"s242", C::Dependence, R"(
void s242(int n, int s1, int s2, int *a, int *b, int *c, int *d) {
  for (int i = 1; i < n; i++) {
    a[i] = a[i - 1] + s1 + s2 + b[i] + c[i] + d[i];
  }
})"},
{"s243", C::Dependence, R"(
void s243(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n - 1; i++) {
    a[i] = b[i] + c[i] * d[i];
    b[i] = a[i] + d[i] * e[i];
    a[i] = b[i] + a[i + 1] * d[i];
  }
})"},
{"s244", C::Dependence, R"(
void s244(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    a[i] = b[i] + c[i] * d[i];
    b[i] = c[i] + b[i];
    a[i + 1] = b[i] + a[i + 1] * d[i];
  }
})"},
{"s1244", C::Dependence, R"(
void s1244(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    a[i] = b[i] + c[i] * c[i] + b[i] * b[i] + c[i];
    d[i] = a[i] + a[i + 1];
  }
})"},
{"s2244", C::Dependence, R"(
void s2244(int n, int *a, int *b, int *c, int *e) {
  for (int i = 0; i < n - 1; i++) {
    a[i + 1] = b[i] + e[i];
    a[i] = b[i] + c[i];
  }
})"},
// -------------------------------------------------------------- expansion --
{"s251", C::NaivelyVectorizable, R"(
void s251(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    int s = b[i] + c[i] * d[i];
    a[i] = s * s;
  }
})"},
{"s1251", C::NaivelyVectorizable, R"(
void s1251(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    int s = b[i] + c[i];
    b[i] = a[i] + d[i];
    a[i] = s * e[i];
  }
})"},
{"s2251", C::Dependence, R"(
void s2251(int n, int *a, int *b, int *c, int *d, int *e) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    a[i] = s * e[i];
    s = b[i] + c[i];
    b[i] = a[i] + d[i];
  }
})"},
{"s252", C::Dependence, R"(
void s252(int n, int *a, int *b, int *c) {
  int t = 0;
  for (int i = 0; i < n; i++) {
    int s = b[i] * c[i];
    a[i] = s + t;
    t = s;
  }
})"},
{"s253", C::DependenceControlFlow, R"(
void s253(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    if (a[i] > b[i]) {
      int s = a[i] - b[i] * d[i];
      c[i] = c[i] + s;
      a[i] = s;
    }
  }
})"},
{"s254", C::Dependence, R"(
void s254(int n, int *a, int *b) {
  int x = b[n - 1];
  for (int i = 0; i < n; i++) {
    a[i] = (b[i] + x) / 2;
    x = b[i];
  }
})"},
{"s255", C::Dependence, R"(
void s255(int n, int *a, int *b) {
  int x = b[n - 1];
  int y = b[n - 2];
  for (int i = 0; i < n; i++) {
    a[i] = (b[i] + x + y) / 3;
    y = x;
    x = b[i];
  }
})"},
{"s256", C::Dependence, R"(
void s256(int n, int *a, int *b, int *d) {
  for (int i = 0; i < n; i++) {
    for (int j = 1; j < n; j++) {
      a[j] = (b[j * 32 + i] - a[j - 1]) * d[j * 32 + i];
      b[j * 32 + i] = a[j] + d[j * 32 + i] + 5;
    }
  }
})"},
{"s258", C::DependenceControlFlow, R"(
void s258(int n, int *a, int *b, int *c, int *d, int *e) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      s = d[i] * d[i];
    }
    b[i] = s * c[i] + d[i];
    e[i] = (s + 1) * 3;
  }
})"},
// ------------------------------------------------------ crossing thresholds
{"s271", C::ControlFlow, R"(
void s271(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    if (b[i] > 0) {
      a[i] = a[i] + b[i] * c[i];
    }
  }
})"},
{"s272", C::ControlFlow, R"(
void s272(int n, int t, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    if (e[i] >= t) {
      a[i] = a[i] + c[i] * d[i];
      b[i] = b[i] + c[i] * c[i];
    }
  }
})"},
{"s273", C::ControlFlow, R"(
void s273(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + d[i] * e[i];
    if (a[i] < 0) {
      b[i] = b[i] + d[i] * e[i];
    }
    c[i] = c[i] + a[i] * d[i];
  }
})"},
{"s274", C::DependenceControlFlow, R"(
void s274(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    a[i] = c[i] + e[i] * d[i];
    if (a[i] > 0) {
      b[i] = a[i] + b[i];
    } else {
      a[i] = d[i] * e[i];
    }
  }
})"},
{"s275", C::DependenceControlFlow, R"(
void s275(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      for (int j = 1; j < n; j++) {
        a[j * 32 + i] = a[(j - 1) * 32 + i] + b[j * 32 + i] * c[j * 32 + i];
      }
    }
  }
})"},
{"s2275", C::ControlFlow, R"(
void s2275(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    if (b[i] > 0) {
      a[i] = a[i] + b[i] * c[i];
    } else {
      a[i] = a[i] + c[i] * c[i];
    }
    d[i] = b[i] + c[i];
  }
})"},
{"s276", C::ControlFlow, R"(
void s276(int n, int m, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    if (i + 1 < m) {
      a[i] = a[i] + b[i] * c[i];
    } else {
      a[i] = a[i] + b[i] * d[i];
    }
  }
})"},
{"s277", C::DependenceControlFlow, R"(
void s277(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n - 1; i++) {
    if (a[i] < 0) {
      if (b[i] < 0) {
        a[i] = a[i] + c[i] * d[i];
      }
      b[i + 1] = c[i] + d[i] * e[i];
    }
  }
})"},
{"s278", C::ControlFlow, R"(
void s278(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      goto L20;
    }
    b[i] = -b[i] + d[i] * e[i];
    goto L30;
L20:
    c[i] = -c[i] + d[i] * e[i];
L30:
    a[i] = b[i] + c[i] * d[i];
  }
})"},
{"s279", C::ControlFlow, R"(
void s279(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      goto L20;
    }
    b[i] = -b[i] + d[i] * d[i];
    if (b[i] <= a[i]) {
      goto L30;
    }
    c[i] = -c[i] + e[i] * e[i];
    goto L30;
L20:
    c[i] = -c[i] + d[i] * e[i];
L30:
    a[i] = b[i] + c[i] * d[i];
  }
})"},
{"s1279", C::ControlFlow, R"(
void s1279(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    if (a[i] < 0) {
      if (b[i] > a[i]) {
        c[i] = c[i] + d[i] * e[i];
      }
    }
  }
})"},
{"s2710", C::ControlFlow, R"(
void s2710(int n, int t, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    if (a[i] > b[i]) {
      a[i] = a[i] + b[i] * d[i];
      if (n > 10) {
        c[i] = c[i] + d[i] * d[i];
      } else {
        c[i] = c[i] + e[i] * e[i] + 1;
      }
    } else {
      b[i] = a[i] + e[i] * e[i];
      if (t > 0) {
        c[i] = a[i] + d[i] * d[i];
      } else {
        c[i] = c[i] + e[i] * e[i];
      }
    }
  }
})"},
{"s2711", C::ControlFlow, R"(
void s2711(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    if (b[i] != 0) {
      a[i] = a[i] + b[i] * c[i];
    }
  }
})"},
{"s2712", C::ControlFlow, R"(
void s2712(int n, int t, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    if (a[i] > t) {
      a[i] = a[i] + b[i] * c[i];
    }
  }
})"},
{"s281", C::Dependence, R"(
void s281(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    int x = a[n - i - 1] + b[i] * c[i];
    a[i] = x - 1;
    b[i] = x;
  }
})"},
{"s291", C::NaivelyVectorizable, R"(
void s291(int n, int *a, int *b) {
  int im1 = n - 1;
  for (int i = 0; i < n; i++) {
    a[i] = (b[i] + b[im1]) * 2;
    im1 = i;
  }
})"},
{"s292", C::NaivelyVectorizable, R"(
void s292(int n, int *a, int *b) {
  int im1 = n - 1;
  int im2 = n - 2;
  for (int i = 0; i < n; i++) {
    a[i] = (b[i] + b[im1] + b[im2]) * 3;
    im2 = im1;
    im1 = i;
  }
})"},
{"s293", C::NaivelyVectorizable, R"(
void s293(int n, int *a) {
  for (int i = 0; i < n; i++) {
    a[i] = a[0];
  }
})"},
// -------------------------------------------------------------- reductions
{"s311", C::Reduction, R"(
int s311(int n, int *a) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum += a[i];
  }
  return sum;
})"},
{"s312", C::Reduction, R"(
int s312(int n, int *a) {
  int prod = 1;
  for (int i = 0; i < n; i++) {
    prod *= a[i];
  }
  return prod;
})"},
{"s313", C::Reduction, R"(
int s313(int n, int *a, int *b) {
  int dot = 0;
  for (int i = 0; i < n; i++) {
    dot += a[i] * b[i];
  }
  return dot;
})"},
{"s314", C::Reduction, R"(
int s314(int n, int *a) {
  int x = a[0];
  for (int i = 0; i < n; i++) {
    if (a[i] > x) {
      x = a[i];
    }
  }
  return x;
})"},
{"s315", C::Reduction, R"(
int s315(int n, int *a) {
  int x = a[0];
  int index = 0;
  for (int i = 0; i < n; i++) {
    if (a[i] > x) {
      x = a[i];
      index = i;
    }
  }
  return x + index + 1;
})"},
{"s316", C::Reduction, R"(
int s316(int n, int *a) {
  int x = a[0];
  for (int i = 1; i < n; i++) {
    if (a[i] < x) {
      x = a[i];
    }
  }
  return x;
})"},
{"s318", C::Reduction, R"(
int s318(int n, int inc, int *a) {
  int k = 0;
  int index = 0;
  int max = abs(a[0]);
  k += inc;
  for (int i = 1; i < n; i++) {
    if (abs(a[k]) > max) {
      index = i;
      max = abs(a[k]);
    }
    k += inc;
  }
  return max + index + 1;
})"},
{"s319", C::Reduction, R"(
int s319(int n, int *a, int *b, int *c, int *d, int *e) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    a[i] = c[i] + d[i];
    sum += a[i];
    b[i] = c[i] + e[i];
    sum += b[i];
  }
  return sum;
})"},
{"s3110", C::Reduction, R"(
int s3110(int n, int *a) {
  int max = a[0];
  int xindex = 0;
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      if (a[i * 32 + j] > max) {
        max = a[i * 32 + j];
        xindex = i;
      }
    }
  }
  return max + xindex + 1;
})"},
{"s3111", C::ReductionControlFlow, R"(
int s3111(int n, int *a) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      sum += a[i];
    }
  }
  return sum;
})"},
{"s3112", C::Dependence, R"(
int s3112(int n, int *a, int *b) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum += a[i];
    b[i] = sum;
  }
  return sum;
})"},
{"s3113", C::Reduction, R"(
int s3113(int n, int *a) {
  int max = abs(a[0]);
  for (int i = 0; i < n; i++) {
    if (abs(a[i]) > max) {
      max = abs(a[i]);
    }
  }
  return max;
})"},
// ------------------------------------------------------------- recurrences
{"s321", C::Dependence, R"(
void s321(int n, int *a, int *b) {
  for (int i = 1; i < n; i++) {
    a[i] = a[i - 1] + b[i];
  }
})"},
{"s322", C::Dependence, R"(
void s322(int n, int *a, int *b, int *c) {
  for (int i = 2; i < n; i++) {
    a[i] = a[i] + a[i - 1] * b[i] + a[i - 2] * c[i];
  }
})"},
{"s323", C::Dependence, R"(
void s323(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 1; i < n; i++) {
    a[i] = b[i - 1] + c[i] * d[i];
    b[i] = a[i] + c[i] * e[i];
  }
})"},
// ------------------------------------------------------------ search loops
{"s331", C::Dependence, R"(
int s331(int n, int *a) {
  int j = -1;
  for (int i = 0; i < n; i++) {
    if (a[i] < 0) {
      j = i;
    }
  }
  return j + 1;
})"},
{"s332", C::ControlFlow, R"(
int s332(int n, int t, int *a) {
  int index = -2;
  int value = -1;
  for (int i = 0; i < n; i++) {
    if (a[i] > t) {
      index = i;
      value = a[i];
      break;
    }
  }
  return value + index + 1;
})"},
// ----------------------------------------------------------------- packing
{"s341", C::DependenceControlFlow, R"(
void s341(int n, int *a, int *b) {
  int j = -1;
  for (int i = 0; i < n; i++) {
    if (b[i] > 0) {
      j++;
      a[j] = b[i];
    }
  }
})"},
{"s342", C::DependenceControlFlow, R"(
void s342(int n, int *a, int *b) {
  int j = -1;
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      j++;
      a[i] = b[j];
    }
  }
})"},
{"s343", C::DependenceControlFlow, R"(
void s343(int n, int *a, int *b) {
  int k = -1;
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      if (b[i * 32 + j] > 0) {
        k++;
        a[k] = b[i * 32 + j];
      }
    }
  }
})"},
// --------------------------------------------------------- loop rerolling
{"s351", C::NaivelyVectorizable, R"(
void s351(int n, int alpha, int *a, int *b) {
  for (int i = 0; i < n; i += 5) {
    a[i] += alpha * b[i];
    a[i + 1] += alpha * b[i + 1];
    a[i + 2] += alpha * b[i + 2];
    a[i + 3] += alpha * b[i + 3];
    a[i + 4] += alpha * b[i + 4];
  }
})"},
{"s352", C::Reduction, R"(
int s352(int n, int *a, int *b) {
  int dot = 0;
  for (int i = 0; i < n; i += 5) {
    dot = dot + a[i] * b[i] + a[i + 1] * b[i + 1] + a[i + 2] * b[i + 2]
        + a[i + 3] * b[i + 3] + a[i + 4] * b[i + 4];
  }
  return dot;
})"},
{"s353", C::Dependence, R"(
void s353(int n, int alpha, int *a, int *b, int *ip) {
  for (int i = 0; i < n; i += 5) {
    a[i] += alpha * b[ip[i]];
    a[i + 1] += alpha * b[ip[i + 1]];
    a[i + 2] += alpha * b[ip[i + 2]];
    a[i + 3] += alpha * b[ip[i + 3]];
    a[i + 4] += alpha * b[ip[i + 4]];
  }
})"},
// ----------------------------------------------------------- equivalencing
{"s421", C::Dependence, R"(
void s421(int n, int *a, int *b) {
  for (int i = 0; i < n - 1; i++) {
    a[i] = a[i + 1] + b[i];
  }
})"},
{"s422", C::Dependence, R"(
void s422(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i + 4] = a[i + 8] + b[i];
  }
})"},
{"s423", C::Dependence, R"(
void s423(int n, int *a, int *b) {
  for (int i = 0; i < n - 1; i++) {
    a[i + 1] = a[i] + b[i];
  }
})"},
{"s424", C::Dependence, R"(
void s424(int n, int *a, int *b) {
  for (int i = 0; i < n - 1; i++) {
    a[i + 1] = a[i] + b[i + 1];
  }
})"},
{"s431", C::NaivelyVectorizable, R"(
void s431(int n, int *a, int *b) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    a[i] = a[i + k] + b[i];
  }
})"},
{"s441", C::ControlFlow, R"(
void s441(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    if (d[i] < 0) {
      a[i] = a[i] + b[i] * c[i];
    } else if (d[i] == 0) {
      a[i] = a[i] + b[i] * b[i];
    } else {
      a[i] = a[i] + c[i] * c[i];
    }
  }
})"},
{"s442", C::ControlFlow, R"(
void s442(int n, int *a, int *b, int *c, int *d, int *e, int *ix) {
  for (int i = 0; i < n; i++) {
    if (ix[i] == 1) {
      a[i] = a[i] + b[i] * b[i];
    } else if (ix[i] == 2) {
      a[i] = a[i] + c[i] * c[i];
    } else if (ix[i] == 3) {
      a[i] = a[i] + d[i] * d[i];
    } else {
      a[i] = a[i] + e[i] * e[i];
    }
  }
})"},
{"s443", C::ControlFlow, R"(
void s443(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    if (d[i] <= 0) {
      a[i] = a[i] + b[i] * c[i];
    } else {
      a[i] = a[i] + b[i] * b[i];
    }
  }
})"},
{"s451", C::NaivelyVectorizable, R"(
void s451(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] * c[i] + b[i];
  }
})"},
{"s452", C::NaivelyVectorizable, R"(
void s452(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + c[i] * (i + 1);
  }
})"},
{"s453", C::Dependence, R"(
void s453(int *a, int *b, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    s += 2;
    a[i] = s * b[i];
  }
})"},
{"s471", C::Dependence, R"(
void s471(int n, int m, int *a, int *b, int *c, int *d, int *e, int *x) {
  for (int i = 0; i < n; i++) {
    x[i] = b[i] + d[i] * d[i];
    b[i] = c[i] + d[i] * e[i];
  }
})"},
{"s481", C::ControlFlow, R"(
void s481(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    if (d[i] < 0) {
      break;
    }
    a[i] = a[i] + b[i] * c[i];
  }
})"},
{"s482", C::ControlFlow, R"(
void s482(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + b[i] * c[i];
    if (c[i] > b[i]) {
      break;
    }
  }
})"},
{"s491", C::Dependence, R"(
void s491(int n, int *a, int *b, int *c, int *d, int *ip) {
  for (int i = 0; i < n; i++) {
    a[ip[i]] = b[i] + c[i] * d[i];
  }
})"},
// ---------------------------------------------------------------- indirect
{"s4112", C::Dependence, R"(
void s4112(int n, int s, int *a, int *b, int *ip) {
  for (int i = 0; i < n; i++) {
    a[i] = b[ip[i]] + s;
  }
})"},
{"s4113", C::Dependence, R"(
void s4113(int n, int *a, int *b, int *c, int *ip) {
  for (int i = 0; i < n; i++) {
    a[ip[i]] = b[ip[i]] + c[i];
  }
})"},
{"s4114", C::Dependence, R"(
void s4114(int n, int k, int *a, int *b, int *c, int *d, int *ip) {
  for (int i = 0; i < n; i++) {
    int j = ip[i];
    a[i] = b[i] + c[n - j - 1] * d[i];
  }
})"},
{"s4115", C::Reduction, R"(
int s4115(int n, int *a, int *b, int *ip) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[ip[i]];
  }
  return sum;
})"},
{"s4116", C::Reduction, R"(
int s4116(int n, int inc, int j, int *a, int *ip) {
  int sum = 0;
  int off = inc + 1;
  for (int i = 0; i < n - 1; i++) {
    sum += a[off] * a[ip[i] * 32 + j - 1];
    off += inc;
  }
  return sum;
})"},
{"s4117", C::Dependence, R"(
void s4117(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + c[i / 2] * d[i];
  }
})"},
{"s4121", C::NaivelyVectorizable, R"(
void s4121(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + b[i] * c[i];
  }
})"},
// ------------------------------------------------------------ vt baseline
{"va", C::NaivelyVectorizable, R"(
void va(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i];
  }
})"},
{"vag", C::Dependence, R"(
void vag(int n, int *a, int *b, int *ip) {
  for (int i = 0; i < n; i++) {
    a[i] = b[ip[i]];
  }
})"},
{"vas", C::Dependence, R"(
void vas(int n, int *a, int *b, int *ip) {
  for (int i = 0; i < n; i++) {
    a[ip[i]] = b[i];
  }
})"},
{"vif", C::ControlFlow, R"(
void vif(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    if (b[i] > 0) {
      a[i] = b[i];
    }
  }
})"},
{"vpv", C::NaivelyVectorizable, R"(
void vpv(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + b[i];
  }
})"},
{"vtv", C::NaivelyVectorizable, R"(
void vtv(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] * b[i];
  }
})"},
{"vpvtv", C::NaivelyVectorizable, R"(
void vpvtv(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + b[i] * c[i];
  }
})"},
{"vpvts", C::NaivelyVectorizable, R"(
void vpvts(int n, int s, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + b[i] * s;
  }
})"},
{"vpvpv", C::NaivelyVectorizable, R"(
void vpvpv(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + b[i] + c[i];
  }
})"},
{"vtvtv", C::NaivelyVectorizable, R"(
void vtvtv(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] * b[i] * c[i];
  }
})"},
{"vsumr", C::Reduction, R"(
int vsumr(int n, int *a) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum += a[i];
  }
  return sum;
})"},
{"vdotr", C::Reduction, R"(
int vdotr(int n, int *a, int *b) {
  int dot = 0;
  for (int i = 0; i < n; i++) {
    dot += a[i] * b[i];
  }
  return dot;
})"},
{"vbor", C::NaivelyVectorizable, R"(
void vbor(int n, int *a, int *b, int *c, int *d, int *e, int *x) {
  for (int i = 0; i < n; i++) {
    int s1 = b[i] * c[i] + d[i] * e[i];
    int s2 = b[i] * d[i] + c[i] * e[i];
    x[i] = s1 + s2;
  }
})"},
};
// clang-format on

/// Additional synthesized members filling out the 149-test dataset:
/// parameterized variants in the style of the TSVC families above
/// (different operators, offsets, guards), keeping the category mix close
/// to the original suite.
struct VariantSpec {
  const char *Name;
  Category Cat;
  const char *Source;
};

// clang-format off
const VariantSpec Variants[] ={
{"s1112", C::NaivelyVectorizable, R"(
void s1112(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + 1;
    a[i] = a[i] + 2;
  }
})"},
{"s1119", C::Dependence, R"(
void s1119(int n, int *a, int *b) {
  for (int i = 1; i < n; i++) {
    for (int j = 0; j < n; j++) {
      a[i * 32 + j] = a[(i - 1) * 32 + j] + b[i * 32 + j];
    }
  }
})"},
{"s1161", C::ControlFlow, R"(
void s1161(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    if (c[i] < 0) {
      b[i] = a[i] + d[i] * d[i];
    } else {
      a[i] = c[i] + d[i] * d[i];
    }
  }
})"},
{"s1221", C::Dependence, R"(
void s1221(int n, int *a, int *b) {
  for (int i = 4; i < n; i++) {
    b[i] = b[i - 4] + a[i];
  }
})"},
{"s1281", C::Dependence, R"(
void s1281(int n, int *a, int *b, int *c, int *d, int *e, int *x) {
  for (int i = 0; i < n; i++) {
    int w = b[i] * c[i] + a[i] * d[i] + e[i];
    a[i] = w - 1;
    b[i] = w;
  }
})"},
{"vsum_gt", C::ReductionControlFlow, R"(
int vsum_gt(int n, int t, int *a) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    if (a[i] > t) {
      sum += a[i];
    }
  }
  return sum;
})"},
{"vsum_if2", C::ReductionControlFlow, R"(
int vsum_if2(int n, int *a, int *b) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    if (a[i] > b[i]) {
      sum += a[i] - b[i];
    } else {
      sum += b[i] - a[i];
    }
  }
  return sum;
})"},
{"vcnt", C::ReductionControlFlow, R"(
int vcnt(int n, int *a) {
  int cnt = 0;
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      cnt += 1;
    }
  }
  return cnt;
})"},
{"vabs", C::NaivelyVectorizable, R"(
void vabs(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = abs(b[i]);
  }
})"},
{"vsel3", C::ControlFlow, R"(
void vsel3(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] > c[i] ? b[i] + d[i] : c[i] - d[i];
  }
})"},
{"vshift", C::NaivelyVectorizable, R"(
void vshift(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = (b[i] << 2) + (b[i] >> 1);
  }
})"},
{"vneg", C::NaivelyVectorizable, R"(
void vneg(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    a[i] = -b[i];
  }
})"},
{"vind2", C::Dependence, R"(
void vind2(int n, int *a, int *b) {
  int k = 0;
  for (int i = 0; i < n; i++) {
    k += 3;
    a[i] = k * b[i];
  }
})"},
{"vcf_guard_dep", C::DependenceControlFlow, R"(
void vcf_guard_dep(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + c[i];
    if (a[i] > 100) {
      b[i] = a[i] - c[i];
    }
  }
})"},
{"vpreload", C::Dependence, R"(
void vpreload(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n - 2; i++) {
    a[i] = a[i + 2] * b[i] + c[i];
  }
})"},
{"vwrap2", C::NaivelyVectorizable, R"(
void vwrap2(int n, int *a, int *b) {
  int last = b[n - 1];
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + last;
    last = b[i];
  }
})"},
{"vif_chain3", C::ControlFlow, R"(
void vif_chain3(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    if (b[i] > 100) {
      a[i] = 3;
    } else if (b[i] > 10) {
      a[i] = 2;
    } else if (b[i] > 0) {
      a[i] = 1;
    } else {
      a[i] = 0;
    }
  }
})"},
{"viota", C::NaivelyVectorizable, R"(
void viota(int n, int *a) {
  for (int i = 0; i < n; i++) {
    a[i] = i;
  }
})"},
{"vgoto_guard", C::ControlFlow, R"(
void vgoto_guard(int n, int *a, int *b) {
  for (int i = 0; i < n; i++) {
    if (b[i] < 0) {
      goto Lskip;
    }
    a[i] = b[i] * 2;
Lskip:
    b[i] = b[i] + 1;
  }
})"},
{"vflag_local", C::ControlFlow, R"(
void vflag_local(int n, int *a, int *b, int *c) {
  for (int i = 0; i < n; i++) {
    int f = 0;
    if (b[i] > c[i]) {
      f = 1;
    }
    if (f) {
      a[i] = b[i];
    } else {
      a[i] = c[i];
    }
  }
})"},
{"vguarded_ind", C::DependenceControlFlow, R"(
void vguarded_ind(int n, int *a, int *b) {
  int j = 0;
  for (int i = 0; i < n; i++) {
    if (b[i] > 0) {
      a[j] = b[i];
      j++;
    }
  }
})"},
};
// clang-format on

} // namespace

const std::vector<TsvcTest> &lv::tsvc::suite() {
  static const std::vector<TsvcTest> All = [] {
    std::vector<TsvcTest> Out;
    auto addAll = [&Out](auto &Arr) {
      for (const auto &T : Arr) {
        TsvcTest X;
        X.Name = T.Name;
        X.Cat = T.Cat;
        // Resolve helper placeholders used by a couple of transcriptions.
        std::string Src = T.Source;
        size_t Pos;
        while ((Pos = Src.find("e_const(i)")) != std::string::npos)
          Src.replace(Pos, 10, "(i + 1)");
        while ((Pos = Src.find("e_val")) != std::string::npos)
          Src.replace(Pos, 5, "3");
        X.Source = Src;
        Out.push_back(std::move(X));
      }
    };
    addAll(Tests);
    addAll(Variants);
    return Out;
  }();
  return All;
}

const TsvcTest *lv::tsvc::findTest(const std::string &Name) {
  for (const TsvcTest &T : suite())
    if (T.Name == Name)
      return &T;
  return nullptr;
}

std::vector<const TsvcTest *> lv::tsvc::suiteSample(size_t Stride,
                                                    size_t Max) {
  std::vector<const TsvcTest *> Out;
  if (Stride == 0)
    Stride = 1;
  const std::vector<TsvcTest> &All = suite();
  for (size_t I = 0; I < All.size() && Out.size() < Max; I += Stride)
    Out.push_back(&All[I]);
  return Out;
}
