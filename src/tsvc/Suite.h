//===- tsvc/Suite.h - TSVC benchmark dataset --------------------*- C++ -*-===//
///
/// \file
/// The Test Suite for Vectorizing Compilers (TSVC, Maleki et al. [18]) as
/// used by the paper: 149 `for` loops over int arrays. Each test is one
/// function in the mini-C subset, tagged with the paper's Figure 6
/// category. Loops with constructs outside the int-pointer subset
/// (two-dimensional arrays) are transcribed with flattened subscripts;
/// DESIGN.md records the transcription rules.
///
//===----------------------------------------------------------------------===//

#ifndef LV_TSVC_SUITE_H
#define LV_TSVC_SUITE_H

#include <string>
#include <vector>

namespace lv {
namespace tsvc {

/// Paper Figure 6 categories.
enum class Category : uint8_t {
  ControlFlow,
  Dependence,
  DependenceControlFlow,
  NaivelyVectorizable,
  Reduction,
  ReductionControlFlow,
};

const char *categoryName(Category C);

/// One TSVC test program.
struct TsvcTest {
  std::string Name;
  Category Cat;
  std::string Source;
};

/// The full 149-test dataset (stable order).
const std::vector<TsvcTest> &suite();

/// Lookup by name; null when absent.
const TsvcTest *findTest(const std::string &Name);

/// Deterministic subsample: every \p Stride-th test in suite order, at
/// most \p Max entries. The fast slices the ablation benchmarks run on.
std::vector<const TsvcTest *> suiteSample(size_t Stride, size_t Max);

} // namespace tsvc
} // namespace lv

#endif // LV_TSVC_SUITE_H
