//===- tv/Refine.cpp - bounded translation validation -------------------------===//

#include "tv/Refine.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/Solve.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>

using namespace lv;
using namespace lv::tv;
using namespace lv::vir;
using smt::TermId;
using smt::TermTable;

const char *lv::tv::verdictName(TVVerdict V) {
  switch (V) {
  case TVVerdict::Equivalent: return "Equivalent";
  case TVVerdict::Inequivalent: return "Inequivalent";
  case TVVerdict::Inconclusive: return "Inconclusive";
  case TVVerdict::Unsupported: return "Unsupported";
  }
  return "?";
}

/// `t refines s`: violated when s is defined but t is poison or different.
static TermId refineViolation(TermTable &T, const SymVal &S, const SymVal &V) {
  return T.mkAnd(T.mkNot(S.Poison),
                 T.mkOr(V.Poison, T.mkNe(S.Val, V.Val)));
}

/// Finds the memory for region \p Name in a state ('s param regions).
static const SymMemory *findMem(const SymState &St, const VFunction &F,
                                const std::string &Name) {
  for (size_t I = 0; I < F.Memories.size(); ++I)
    if (F.Memories[I].IsParam && F.Memories[I].Name == Name)
      return &St.Mems[I];
  return nullptr;
}

//===----------------------------------------------------------------------===//
// RefinementSession
//===----------------------------------------------------------------------===//

struct RefinementSession::Impl {
  RefineOptions Opts;
  TermTable T;
  SharedInputs In;
  SymState SS, ST;
  /// Param-region pairs compared cell-by-cell (source side / target side).
  std::vector<std::pair<const SymMemory *, const SymMemory *>> MemPairs;
  /// UB_tgt plus the return-value obligations — common to every query.
  TermId BaseViol = smt::NoTerm;
  smt::IncrementalSolver IS;
  /// Reusable fork target for isolated queries (capacity persists across
  /// queries, so re-forking is allocation-free).
  std::unique_ptr<smt::IncrementalSolver> Fork;
  /// Verdicts of completed isolated queries, keyed by the violation
  /// TermId (hash-consing makes syntactic equality an id compare) and
  /// guarded by exact budget equality. An identical query against a
  /// pristine fork is deterministic, so replaying the verdict is exact —
  /// common in spatial splitting when several cells compare syntactically
  /// equal and collapse to the same base violation.
  struct MemoEntry {
    smt::SatBudget Budget;
    TVResult Result;
  };
  std::unordered_map<TermId, MemoEntry> QueryMemo;
  /// Verdict fixed at construction (compile/shape failures); every query
  /// returns it unchanged.
  bool HasImmediate = false;
  TVResult Immediate;
  /// T.size() right after construction — the term count a scratch session
  /// would start from. Per-query term accounting is BaseTerms plus the
  /// terms that query itself built, so the MaxTerms memout check stays
  /// order-independent instead of charging each query for every earlier
  /// query's terms.
  size_t BaseTerms = 0;

  Impl(const VFunction &Src, const VFunction &Tgt, const RefineOptions &O)
      : Opts(O), In(T), IS(T) {
    IS.setOptions(Opts.Solver); // forks inherit via copy/assignFrom
    T.reserve(Opts.MaxTerms);
    SS = executeSymbolic(Src, T, In, Opts.SrcExec);
    ST = executeSymbolic(Tgt, T, In, Opts.TgtExec);
    if (!SS.ok() || !ST.ok()) {
      Immediate.V = TVVerdict::Unsupported;
      Immediate.Detail = !SS.ok() ? SS.Error : ST.Error;
      HasImmediate = true;
      return;
    }

    // Assumptions: unroll exhaustion on both sides, size domains, scalar
    // parameter domain, and the alignment divisibility constraints.
    TermId A = T.mkAnd(SS.Assum, ST.Assum);
    for (const SymMemory &M : SS.Mems)
      A = T.mkAnd(A, M.sizeDomain());
    for (const SymMemory &M : ST.Mems)
      A = T.mkAnd(A, M.sizeDomain());
    for (const std::string &Name : In.scalarNames()) {
      TermId P = In.scalar(Name);
      A = T.mkAnd(A, T.mkAnd(T.mkSge(P, T.mkConst(0)),
                             T.mkSle(P, T.mkConstS(Opts.ScalarMax))));
    }
    for (const DivAssumption &D : Opts.Divs) {
      TermId P = In.scalar(D.Param);
      TermId E = T.mkAdd(P, T.mkConstS(D.Offset));
      A = T.mkAnd(A, T.mkAnd(T.mkSge(E, T.mkConst(0)),
                             T.mkEq(T.mkSRem(E, T.mkConstS(D.Mod)),
                                    T.mkConst(0))));
    }

    // Violations shared by every query: target UB and return obligations.
    BaseViol = ST.UB;
    if (Src.ReturnsValue && Tgt.ReturnsValue) {
      TermId RetMismatch =
          T.mkOr(T.mkAnd(SS.RetCond, T.mkNot(ST.RetCond)),
                 T.mkAnd(ST.RetCond, T.mkNot(SS.RetCond)));
      TermId RetDiff =
          T.mkAnd(T.mkAnd(SS.RetCond, ST.RetCond),
                  refineViolation(T, SS.RetVal, ST.RetVal));
      BaseViol = T.mkOr(BaseViol, T.mkOr(RetMismatch, RetDiff));
    } else if (Src.ReturnsValue != Tgt.ReturnsValue) {
      Immediate.V = TVVerdict::Inequivalent;
      Immediate.Detail = "return type mismatch";
      HasImmediate = true;
      return;
    }

    for (size_t I = 0; I < Src.Memories.size(); ++I) {
      if (!Src.Memories[I].IsParam)
        continue;
      const SymMemory *MT = findMem(ST, Tgt, Src.Memories[I].Name);
      if (!MT) {
        Immediate.V = TVVerdict::Inequivalent;
        Immediate.Detail =
            format("target lacks array parameter '%s'",
                   Src.Memories[I].Name.c_str());
        HasImmediate = true;
        return;
      }
      MemPairs.emplace_back(&SS.Mems[I], MT);
    }

    // The common prefix A && !UB_src is asserted once; per-query
    // violations then run under an assumption literal against it.
    IS.assertAlways(T.mkAnd(A, T.mkNot(SS.UB)));
    // Shared-learnt sessions rewind branching heuristics to this point
    // before every query: sharing covers the clause DB (learnt lemmas),
    // not VSIDS/phase warmth — warm heuristics are the main way one
    // query's search distorts the next one's budget-bound verdict.
    if (Opts.SharedLearnt)
      IS.snapshotHeuristics();
    BaseTerms = T.size();
  }

  TVResult query(int CellLo, int CellHi, const smt::SatBudget &Budget,
                 bool Isolate);
  TVResult queryBody(int CellLo, int CellHi, const smt::SatBudget &Budget,
                     bool Isolate);
};

/// Every session query funnels through here (checkFull, checkCell, and
/// the one-shot wrapper alike): one "tv.query" span plus registry
/// counters whose deltas are exactly the fields StageSatWork::add(TVResult)
/// aggregates — the bench parity gates rely on that equality.
TVResult RefinementSession::Impl::query(int CellLo, int CellHi,
                                        const smt::SatBudget &Budget,
                                        bool Isolate) {
  obs::Span S("tv", "tv.query");
  TVResult Out = queryBody(CellLo, CellHi, Budget, Isolate);
  S.arg("cell_lo", static_cast<uint64_t>(std::max(CellLo, 0)));
  S.arg("cells", static_cast<uint64_t>(std::max(CellHi - CellLo, 0)));
  S.arg("conflicts", Out.Conflicts);
  S.arg("propagations", Out.Propagations);
  S.arg("restarts", Out.Restarts);
  S.arg("trail_reused", Out.TrailReused);
  static obs::Counter &Queries = obs::counter("tv.queries");
  static obs::Counter &Conflicts = obs::counter("tv.conflicts");
  static obs::Counter &Props = obs::counter("tv.propagations");
  static obs::Counter &Restarts = obs::counter("tv.restarts");
  static obs::Counter &Reused = obs::counter("tv.trail_reused");
  static obs::Histogram &QueryNs = obs::histogram("tv.query_ns");
  Queries.inc();
  Conflicts.inc(Out.Conflicts);
  Props.inc(Out.Propagations);
  Restarts.inc(Out.Restarts);
  Reused.inc(Out.TrailReused);
  QueryNs.observe(Out.SolveNanos);
  return Out;
}

/// \p Isolate runs the query in a throwaway fork of the session's base
/// solver. The base stays pristine (the common encoding is asserted but
/// never searched), so every isolated query starts from exactly the state
/// a scratch solver would have built — same verdicts as one-shot solving,
/// minus the per-query symbolic execution and common-encoding blast.
TVResult RefinementSession::Impl::queryBody(int CellLo, int CellHi,
                                            const smt::SatBudget &Budget,
                                            bool Isolate) {
  if (HasImmediate)
    return Immediate;
  auto Start = std::chrono::steady_clock::now();
  TVResult Out;

  size_t TermsBefore = T.size();
  TermId Viol = BaseViol;
  for (const auto &Pair : MemPairs) {
    const SymMemory &MS = *Pair.first;
    const SymMemory &MT = *Pair.second;
    int Lo = std::max(CellLo, 0);
    int Hi = std::min(CellHi, MS.capacity());
    for (int J = Lo; J < Hi; ++J) {
      TermId Off = T.mkConst(static_cast<uint32_t>(J));
      SymVal CS = MS.read(Off);
      SymVal CT = MT.read(Off);
      if (CS.Val == CT.Val && CS.Poison == CT.Poison)
        continue; // syntactically identical
      Viol = T.mkOr(Viol, refineViolation(T, CS, CT));
    }
  }

  // Memo hit: an isolated query is deterministic from the pristine base,
  // so a syntactically identical violation (same TermId, thanks to
  // hash-consing) under the exact same budget replays its verdict — with
  // none of the SAT work. Budget equality covers every field: a retry
  // with a loosened propagation/clause budget must re-solve. Shared-learnt
  // sessions memoize too: replaying the first occurrence's verdict keeps
  // duplicate cells verdict-identical to the fork modes (re-solving in a
  // now-warmer solver would not be).
  {
    auto It = QueryMemo.find(Viol);
    if (It != QueryMemo.end() &&
        It->second.Budget.MaxConflicts == Budget.MaxConflicts &&
        It->second.Budget.MaxPropagations == Budget.MaxPropagations &&
        It->second.Budget.MaxClauses == Budget.MaxClauses) {
      obs::counter("tv.memo_hits").inc();
      TVResult Cached = It->second.Result;
      // Report only work actually done by this replay.
      Cached.Conflicts = Cached.Propagations = Cached.Restarts = 0;
      Cached.TrailReused = 0;
      Cached.ConeVars = Cached.ConeClauses = 0;
      Cached.SolveNanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count());
      return Cached;
    }
  }

  // Memout check on this query's own footprint: the base encoding plus
  // whatever this query built. The shared table holds earlier queries'
  // terms too, but charging them here would make verdicts depend on query
  // order (a scratch session never sees them).
  size_t QueryTerms = BaseTerms + (T.size() - TermsBefore);
  Out.TermCount = QueryTerms;
  if (QueryTerms > Opts.MaxTerms) {
    Out.V = TVVerdict::Inconclusive;
    Out.Detail = format("term limit exceeded (%zu terms): encoding too "
                        "large (out-of-memory analogue)",
                        QueryTerms);
    return Out;
  }
  smt::SmtResult R;
  if (Isolate) {
    if (!Fork)
      Fork.reset(new smt::IncrementalSolver(IS));
    else
      Fork->assignFrom(IS);
    R = Fork->check(Viol, Budget);
  } else {
    IS.restoreHeuristics(); // no-op outside shared-learnt sessions
    R = IS.check(Viol, Budget);
  }
  Out.Conflicts = R.ConflictsUsed;
  Out.Propagations = R.PropagationsUsed;
  Out.Restarts = R.RestartsUsed;
  Out.TrailReused = R.TrailReused;
  Out.ConeVars = R.ConeVars;
  Out.ConeClauses = R.ConeClauses;
  Out.Clauses = R.ClauseCount;
  Out.SatVars = R.VarCount;
  Out.LearntLive = R.LearntLive;
  Out.AvgLBD = R.AvgLBD;
  Out.SolveNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  switch (R.R) {
  case smt::SatResult::Unsat:
    Out.V = TVVerdict::Equivalent;
    Out.Detail = "refinement holds on the bounded domain";
    break;
  case smt::SatResult::Unknown:
    Out.V = TVVerdict::Inconclusive;
    Out.Detail = format("solver budget exhausted (%llu conflicts)",
                        static_cast<unsigned long long>(R.ConflictsUsed));
    break;
  case smt::SatResult::Sat: {
    Out.V = TVVerdict::Inequivalent;
    // Render the counterexample: scalar params, array sizes, initial
    // cells.
    std::string CE;
    for (const std::string &Name : In.scalarNames()) {
      TermId P = In.scalar(Name);
      auto It = R.Model.find(P);
      if (It != R.Model.end())
        appendf(CE, "%s = %d\n", Name.c_str(),
                static_cast<int32_t>(It->second));
    }
    for (const std::string &Name : In.arrayNames()) {
      TermId SZ = In.arraySize(Name);
      auto It = R.Model.find(SZ);
      if (It != R.Model.end())
        appendf(CE, "alloc-size(%s) = %d\n", Name.c_str(),
                static_cast<int32_t>(It->second));
      const std::vector<SymVal> &Base =
          In.arrayBase(Name, /*Cap=*/0); // existing entries only
      std::string Cells;
      for (size_t K = 0; K < Base.size() && K < 8; ++K) {
        auto CIt = R.Model.find(Base[K].Val);
        appendf(Cells, "%s%d", K ? ", " : "",
                CIt == R.Model.end() ? 0
                                     : static_cast<int32_t>(CIt->second));
      }
      if (!Cells.empty())
        appendf(CE, "%s[0..] = {%s}\n", Name.c_str(), Cells.c_str());
    }
    Out.Counterexample = CE;
    Out.Detail = "refinement violated; counterexample found";
    break;
  }
  }
  QueryMemo[Viol] = MemoEntry{Budget, Out};
  return Out;
}

RefinementSession::RefinementSession(const VFunction &Src,
                                     const VFunction &Tgt,
                                     const RefineOptions &Opts)
    : I(new Impl(Src, Tgt, Opts)) {}

RefinementSession::~RefinementSession() = default;
RefinementSession::RefinementSession(RefinementSession &&) noexcept = default;

TVResult RefinementSession::checkFull(const smt::SatBudget &Budget) {
  int Lo = 0, Hi = I->Opts.CompareWindow;
  if (I->Opts.CellFilter >= 0) {
    Lo = I->Opts.CellFilter;
    Hi = I->Opts.CellFilter + 1;
  }
  return I->query(Lo, Hi, Budget, /*Isolate=*/!I->Opts.SharedLearnt);
}

TVResult RefinementSession::checkCell(int Cell, const smt::SatBudget &Budget) {
  return I->query(Cell, Cell + 1, Budget, /*Isolate=*/!I->Opts.SharedLearnt);
}

//===----------------------------------------------------------------------===//
// One-shot wrapper
//===----------------------------------------------------------------------===//

TVResult lv::tv::checkRefinement(const VFunction &Src, const VFunction &Tgt,
                                 const RefineOptions &Opts) {
  // Single-use session: solve directly in the base, no fork needed.
  RefinementSession S(Src, Tgt, Opts);
  int Lo = 0, Hi = Opts.CompareWindow;
  if (Opts.CellFilter >= 0) {
    Lo = Opts.CellFilter;
    Hi = Opts.CellFilter + 1;
  }
  return S.I->query(Lo, Hi, Opts.Budget, /*Isolate=*/false);
}
